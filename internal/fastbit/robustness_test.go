package fastbit

import (
	"bytes"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// Serialized index files may arrive truncated or corrupted (partial
// writes, bad storage). Deserialization must return errors, never panic,
// and lazy loading must fail cleanly too.

func serializedFixture(t *testing.T) []byte {
	t.Helper()
	si, _, _ := buildTestStep(t, 500, 91, IndexOptions{Bins: 8})
	var buf bytes.Buffer
	if _, err := si.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestReadStepIndexTruncationNeverPanics(t *testing.T) {
	data := serializedFixture(t)
	for _, cut := range []int{1, 4, 8, 16, 17, 40, 100, len(data) / 2, len(data) - 1} {
		if cut >= len(data) {
			continue
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic at truncation %d: %v", cut, r)
				}
			}()
			if _, err := ReadStepIndex(bytes.NewReader(data[:cut])); err == nil {
				t.Fatalf("truncation at %d accepted", cut)
			}
		}()
	}
}

func TestReadStepIndexRandomCorruptionNeverPanics(t *testing.T) {
	data := serializedFixture(t)
	rng := rand.New(rand.NewSource(92))
	for trial := 0; trial < 200; trial++ {
		corrupt := append([]byte(nil), data...)
		// Flip a few random bytes.
		for k := 0; k < 1+rng.Intn(4); k++ {
			corrupt[rng.Intn(len(corrupt))] ^= byte(1 + rng.Intn(255))
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on corrupted input (trial %d): %v", trial, r)
				}
			}()
			// Either an error or a decodable (but possibly wrong) index is
			// acceptable; a panic is not.
			si, err := ReadStepIndex(bytes.NewReader(corrupt))
			if err == nil && si != nil {
				// Exercise the decoded structures a little.
				for _, ix := range si.Columns {
					_ = ix.BinCounts()
				}
			}
		}()
	}
}

func TestOpenLazyTruncatedFile(t *testing.T) {
	data := serializedFixture(t)
	dir := t.TempDir()
	for _, cut := range []int{4, 16, 60} {
		path := dir + "/trunc.idx"
		if err := writeFile(path, data[:cut]); err != nil {
			t.Fatal(err)
		}
		if _, err := OpenLazy(path); err == nil {
			t.Fatalf("truncated header (%d bytes) accepted by OpenLazy", cut)
		}
	}
	// A file with a valid directory but truncated sections must fail on
	// section access, not at open.
	path := dir + "/body.idx"
	// Find a cut point past the header but inside the first section: the
	// header is small, so half the file is safely beyond it.
	if err := writeFile(path, data[:len(data)/2]); err != nil {
		t.Fatal(err)
	}
	ls, err := OpenLazy(path)
	if err != nil {
		// Acceptable: the directory may extend past the cut for tiny files.
		return
	}
	defer ls.Close()
	sawError := false
	for _, name := range ls.Columns() {
		if _, err := ls.Column(name); err != nil {
			sawError = true
		}
	}
	if _, err := ls.IDIndex(); err != nil {
		sawError = true
	}
	if !sawError {
		t.Fatal("no section access failed despite truncated body")
	}
}

func writeFile(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}

// TestSectionCRCDetectsBitFlips flips one byte inside every section's
// payload and checks the per-section checksum catches it — on the eager
// read path and on the lazy section-load path.
func TestSectionCRCDetectsBitFlips(t *testing.T) {
	data := serializedFixture(t)
	d, err := readDirectory(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}

	checkFlip := func(what string, sec section, lazyLoad func(*LazyStep) error) {
		t.Helper()
		corrupt := append([]byte(nil), data...)
		corrupt[sec.offset+sec.size/2] ^= 0x10

		if _, err := ReadStepIndex(bytes.NewReader(corrupt)); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: eager read of flipped payload: err = %v, want ErrCorrupt", what, err)
		}

		// The directory is intact, so lazy open succeeds; the damage must
		// surface when the flipped section is actually loaded.
		path := filepath.Join(t.TempDir(), "flip.idx")
		if err := os.WriteFile(path, corrupt, 0o644); err != nil {
			t.Fatal(err)
		}
		ls, err := OpenLazy(path)
		if err != nil {
			t.Fatalf("%s: OpenLazy rejected a file with a healthy directory: %v", what, err)
		}
		defer ls.Close()
		if err := lazyLoad(ls); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: lazy load of flipped payload: err = %v, want ErrCorrupt", what, err)
		}
	}

	for _, name := range d.order {
		name := name
		checkFlip("column "+name, d.cols[name], func(ls *LazyStep) error {
			_, err := ls.Column(name)
			return err
		})
	}
	if d.hasID {
		checkFlip("id index", d.idSec, func(ls *LazyStep) error {
			_, err := ls.IDIndex()
			return err
		})
	}
}

// TestWriteFileAtomic checks the write-then-rename discipline: the target
// appears fully formed, overwrites are clean, and no temp files survive.
func TestWriteFileAtomic(t *testing.T) {
	si, _, _ := buildTestStep(t, 300, 17, IndexOptions{Bins: 8})
	dir := t.TempDir()
	path := filepath.Join(dir, "step.idx")
	for i := 0; i < 2; i++ { // fresh write, then overwrite
		if err := si.WriteFile(path); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ReadFile(path); err != nil {
		t.Fatalf("written index unreadable: %v", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			t.Fatalf("temp file left behind: %s", e.Name())
		}
	}
	if len(entries) != 1 {
		t.Fatalf("expected only step.idx in dir, found %d entries", len(entries))
	}

	// A failed write (unwritable destination dir) must leave no debris.
	if err := si.WriteFile(filepath.Join(dir, "missing", "step.idx")); err == nil {
		t.Fatal("write into missing directory succeeded")
	}
	entries, _ = os.ReadDir(dir)
	if len(entries) != 1 {
		t.Fatalf("failed write left debris: %d entries", len(entries))
	}
}
