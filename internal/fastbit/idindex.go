package fastbit

import (
	"sort"
)

// IDIndex is an inverted index over a particle-identifier column: the
// (id, row) pairs sorted by id. It answers `ID IN (id1, …, idn)` queries
// in O(n log N + hits) time, which reproduces the paper's observation that
// FastBit's worst-case cost for identifier queries is proportional to the
// number of records found (Section V-B), versus the custom scan's
// O(N log n).
type IDIndex struct {
	ids []int64  // sorted
	pos []uint64 // row of ids[i]
	n   uint64   // total records
}

// BuildIDIndex constructs the index from a timestep's identifier column.
func BuildIDIndex(ids []int64) *IDIndex {
	x := &IDIndex{
		ids: append([]int64(nil), ids...),
		pos: make([]uint64, len(ids)),
		n:   uint64(len(ids)),
	}
	for i := range x.pos {
		x.pos[i] = uint64(i)
	}
	sort.Sort(byID{x})
	return x
}

type byID struct{ x *IDIndex }

func (s byID) Len() int { return len(s.x.ids) }
func (s byID) Less(i, j int) bool {
	if s.x.ids[i] != s.x.ids[j] {
		return s.x.ids[i] < s.x.ids[j]
	}
	return s.x.pos[i] < s.x.pos[j]
}
func (s byID) Swap(i, j int) {
	s.x.ids[i], s.x.ids[j] = s.x.ids[j], s.x.ids[i]
	s.x.pos[i], s.x.pos[j] = s.x.pos[j], s.x.pos[i]
}

// Len returns the number of indexed records.
func (x *IDIndex) Len() uint64 { return x.n }

// SizeBytes returns the approximate in-memory size of the index.
func (x *IDIndex) SizeBytes() int { return 16 * len(x.ids) }

// LookupOne returns the rows holding the given identifier.
func (x *IDIndex) LookupOne(id int64) []uint64 {
	i := sort.Search(len(x.ids), func(k int) bool { return x.ids[k] >= id })
	var out []uint64
	for ; i < len(x.ids) && x.ids[i] == id; i++ {
		out = append(out, x.pos[i])
	}
	return out
}

// Lookup returns the sorted row positions whose identifier appears in the
// search set. Small sets use one binary search per identifier
// (O(n log N + hits)); sets comparable to the index size switch to a
// merge join over the sorted identifier array (O(n log n + N)).
func (x *IDIndex) Lookup(set []int64) []uint64 {
	var out []uint64
	if uint64(len(set))*16 < x.n {
		for _, id := range set {
			out = append(out, x.LookupOne(id)...)
		}
	} else {
		sorted := append([]int64(nil), set...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		si := 0
		for i, id := range x.ids {
			for si < len(sorted) && sorted[si] < id {
				si++
			}
			if si == len(sorted) {
				break
			}
			if sorted[si] == id {
				out = append(out, x.pos[i])
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	// Dedup in case the search set contains duplicates.
	dedup := out[:0]
	for i, p := range out {
		if i == 0 || p != out[i-1] {
			dedup = append(dedup, p)
		}
	}
	return dedup
}

// IDsAt returns the identifiers stored at the given rows. It performs one
// binary search per row over the position-sorted view and is used only in
// tests; production code reads the raw column instead.
func (x *IDIndex) IDsAt(rows []uint64) []int64 {
	// Build the inverse mapping lazily: pos -> id.
	inv := make(map[uint64]int64, len(rows))
	want := make(map[uint64]bool, len(rows))
	for _, r := range rows {
		want[r] = true
	}
	for i, p := range x.pos {
		if want[p] {
			inv[p] = x.ids[i]
		}
	}
	out := make([]int64, len(rows))
	for i, r := range rows {
		out[i] = inv[r]
	}
	return out
}
