package fastbit

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/query"
)

func writeLazyFixture(t *testing.T) (string, *StepIndex, MemReader, []int64) {
	t.Helper()
	si, mem, ids := buildTestStep(t, 3000, 71, IndexOptions{Bins: 32})
	path := filepath.Join(t.TempDir(), "step.idx")
	if err := si.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	return path, si, mem, ids
}

func TestLazyStepDirectory(t *testing.T) {
	path, si, _, _ := writeLazyFixture(t)
	ls, err := OpenLazy(path)
	if err != nil {
		t.Fatal(err)
	}
	defer ls.Close()
	if ls.N() != si.N {
		t.Fatalf("N = %d, want %d", ls.N(), si.N)
	}
	if ls.IDVar() != "id" {
		t.Fatalf("IDVar = %q", ls.IDVar())
	}
	cols := ls.Columns()
	if len(cols) != len(si.Columns) {
		t.Fatalf("Columns = %v", cols)
	}
	if !ls.HasColumn("px") || ls.HasColumn("nope") {
		t.Fatal("HasColumn wrong")
	}
	// Opening reads only the directory, far less than the file size.
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if ls.IndexBytesRead() != 0 {
		t.Fatalf("open loaded %d section bytes", ls.IndexBytesRead())
	}
	_ = st
}

func TestLazyStepLoadsOnDemand(t *testing.T) {
	path, _, mem, ids := writeLazyFixture(t)
	ls, err := OpenLazy(path)
	if err != nil {
		t.Fatal(err)
	}
	defer ls.Close()

	// An ID lookup loads only the identifier section.
	idIdx, err := ls.IDIndex()
	if err != nil {
		t.Fatal(err)
	}
	pos := idIdx.Lookup([]int64{ids[7]})
	if len(pos) != 1 || pos[0] != 7 {
		t.Fatalf("Lookup = %v", pos)
	}
	afterID := ls.IndexBytesRead()
	if afterID == 0 {
		t.Fatal("ID section not counted")
	}
	st, _ := os.Stat(path)
	if afterID >= uint64(st.Size()) {
		t.Fatalf("ID lookup loaded %d of %d bytes — not lazy", afterID, st.Size())
	}
	// No column section was touched: loading every column afterwards must
	// add the remaining bulk of the file.
	for _, name := range ls.Columns() {
		if _, err := ls.Column(name); err != nil {
			t.Fatal(err)
		}
	}
	if full := ls.IndexBytesRead(); full <= afterID || full >= uint64(st.Size()) {
		t.Fatalf("sections loaded: id=%d full=%d file=%d", afterID, full, st.Size())
	}
	// Reset expectations for the per-column checks below.
	ls.Close()
	ls, err = OpenLazy(path)
	if err != nil {
		t.Fatal(err)
	}
	defer ls.Close()
	if _, err := ls.IDIndex(); err != nil {
		t.Fatal(err)
	}
	afterID = ls.IndexBytesRead()

	// Loading a column adds its section once; a repeat is cached.
	if _, err := ls.Column("px"); err != nil {
		t.Fatal(err)
	}
	afterPx := ls.IndexBytesRead()
	if afterPx <= afterID {
		t.Fatal("px section not loaded")
	}
	if _, err := ls.Column("px"); err != nil {
		t.Fatal(err)
	}
	if ls.IndexBytesRead() != afterPx {
		t.Fatal("cached column reloaded")
	}
	if _, err := ls.Column("nope"); err == nil {
		t.Fatal("unknown column accepted")
	}
	_ = mem
}

func TestLazyEvaluatorMatchesEager(t *testing.T) {
	path, si, mem, _ := writeLazyFixture(t)
	ls, err := OpenLazy(path)
	if err != nil {
		t.Fatal(err)
	}
	defer ls.Close()
	queries := []string{
		"px > 1e9 && y > 0",
		"id in (0, 3, 6, 9)",
		"!(px > 0) || x > 5e-4",
	}
	for _, q := range queries {
		e := query.MustParse(q)
		lazy, err := ls.Evaluator(mem).Select(e)
		if err != nil {
			t.Fatalf("%q lazy: %v", q, err)
		}
		eager, err := si.Evaluator(mem).Select(e)
		if err != nil {
			t.Fatalf("%q eager: %v", q, err)
		}
		if len(lazy) != len(eager) {
			t.Fatalf("%q: lazy %d vs eager %d", q, len(lazy), len(eager))
		}
		for i := range lazy {
			if lazy[i] != eager[i] {
				t.Fatalf("%q: position %d differs", q, i)
			}
		}
	}
}

func TestOpenLazyErrors(t *testing.T) {
	if _, err := OpenLazy(filepath.Join(t.TempDir(), "missing.idx")); err == nil {
		t.Fatal("missing file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.idx")
	if err := os.WriteFile(bad, []byte("garbage......"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenLazy(bad); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestEvaluatorLookupFallbacks(t *testing.T) {
	si, mem, _ := buildTestStep(t, 500, 72, IndexOptions{Bins: 8})
	// Static map takes priority; lookup serves the rest.
	ev := &Evaluator{
		N:       si.N,
		Indexes: map[string]*Index{"px": si.Columns["px"]},
		LookupIndex: func(name string) (*Index, error) {
			ix, ok := si.Columns[name]
			if !ok {
				return nil, os.ErrNotExist
			}
			return ix, nil
		},
		IDVar: "id",
		Raw:   mem,
	}
	if _, err := ev.Select(query.MustParse("px > 0 && y > 0")); err != nil {
		t.Fatal(err)
	}
	if _, err := ev.Select(query.MustParse("zz > 0")); err == nil {
		t.Fatal("unknown var accepted via lookup")
	}
	// No lookup, no static entry.
	ev2 := &Evaluator{N: si.N, Indexes: map[string]*Index{}, Raw: mem}
	if _, err := ev2.Select(query.MustParse("px > 0")); err == nil {
		t.Fatal("missing index accepted")
	}
}

func TestIDLookupDiskSearch(t *testing.T) {
	path, si, _, ids := writeLazyFixture(t)
	ls, err := OpenLazy(path)
	if err != nil {
		t.Fatal(err)
	}
	defer ls.Close()

	// Small set: resolved by on-disk binary search without loading the
	// full ID section.
	set := []int64{ids[3], ids[1500], ids[3], -99} // dup + miss
	got, err := ls.IDLookup(set)
	if err != nil {
		t.Fatal(err)
	}
	want := si.ID.Lookup(set)
	if len(got) != len(want) {
		t.Fatalf("disk lookup: %d hits, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("hit %d differs: %d vs %d", i, got[i], want[i])
		}
	}
	// Fewer bytes than the whole section were read (at 4 KiB block
	// granularity the saving is modest for this small fixture and grows
	// with index size).
	idSectionBytes := uint64(16 * len(ids))
	if ls.IndexBytesRead() >= idSectionBytes {
		t.Fatalf("disk search read %d bytes of a %d-byte section", ls.IndexBytesRead(), idSectionBytes)
	}

	// Large set: falls back to loading and caching the full index.
	big := make([]int64, len(ids)/2)
	copy(big, ids[:len(big)])
	got, err = ls.IDLookup(big)
	if err != nil {
		t.Fatal(err)
	}
	want = si.ID.Lookup(big)
	if len(got) != len(want) {
		t.Fatalf("big lookup: %d hits, want %d", len(got), len(want))
	}
	// Subsequent lookups use the cached index.
	after := ls.IndexBytesRead()
	if _, err := ls.IDLookup(set); err != nil {
		t.Fatal(err)
	}
	if ls.IndexBytesRead() != after {
		t.Fatal("cached ID index re-read from disk")
	}
}

func TestIDLookupWithoutIDIndex(t *testing.T) {
	// Build an index file without an identifier index.
	si, _, _ := buildTestStep(t, 200, 73, IndexOptions{Bins: 8})
	si.ID = nil
	si.IDVar = ""
	path := t.TempDir() + "/noid.idx"
	if err := si.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	ls, err := OpenLazy(path)
	if err != nil {
		t.Fatal(err)
	}
	defer ls.Close()
	if _, err := ls.IDLookup([]int64{1}); err == nil {
		t.Fatal("IDLookup without ID index accepted")
	}
	if _, err := ls.IDIndex(); err == nil {
		t.Fatal("IDIndex without ID index accepted")
	}
}
