package fastbit

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/query"
	"repro/internal/scan"
)

// testData builds a column with a dense bulk and a sparse high tail, the
// momentum-like shape the paper's threshold sweeps rely on.
func testData(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	for i := range out {
		if rng.Float64() < 0.02 {
			out[i] = math.Pow(10, 9+rng.Float64()*2) // accelerated tail
		} else {
			out[i] = rng.NormFloat64() * 1e8 // thermal bulk
		}
	}
	return out
}

func TestBuildIndexBasics(t *testing.T) {
	vals := testData(10000, 1)
	ix, err := BuildIndex("px", vals, IndexOptions{Bins: 64})
	if err != nil {
		t.Fatal(err)
	}
	if ix.Bins() != 64 {
		t.Fatalf("Bins = %d", ix.Bins())
	}
	if ix.N != 10000 {
		t.Fatalf("N = %d", ix.N)
	}
	// Bitmaps partition the rows: each row in exactly one bin.
	var total uint64
	for _, c := range ix.BinCounts() {
		total += c
	}
	if total != ix.N {
		t.Fatalf("bin counts sum to %d, want %d", total, ix.N)
	}
	lo, hi := scan.MinMax(vals)
	if ix.Min() != lo || ix.Max() != hi {
		t.Fatalf("range [%g,%g], want [%g,%g]", ix.Min(), ix.Max(), lo, hi)
	}
	if ix.SizeBytes() <= 0 {
		t.Fatal("SizeBytes nonpositive")
	}
}

func TestBuildIndexRejectsBadInput(t *testing.T) {
	if _, err := BuildIndex("x", nil, IndexOptions{}); err == nil {
		t.Fatal("empty column accepted")
	}
	if _, err := BuildIndex("x", []float64{1, math.NaN()}, IndexOptions{}); err == nil {
		t.Fatal("NaN accepted")
	}
}

func TestBuildIndexConstantColumn(t *testing.T) {
	vals := []float64{5, 5, 5, 5}
	ix, err := BuildIndex("c", vals, IndexOptions{Bins: 8})
	if err != nil {
		t.Fatal(err)
	}
	var total uint64
	for _, c := range ix.BinCounts() {
		total += c
	}
	if total != 4 {
		t.Fatalf("constant column counts = %v", ix.BinCounts())
	}
	raw := func(pos []uint64) ([]float64, error) {
		out := make([]float64, len(pos))
		for i, p := range pos {
			out[i] = vals[p]
		}
		return out, nil
	}
	v, _, err := ix.Evaluate(query.Interval{Lo: 5, Hi: 5}, raw)
	if err != nil {
		t.Fatal(err)
	}
	if v.Count() != 4 {
		t.Fatalf("eq on constant column found %d", v.Count())
	}
}

// evalBoth evaluates an interval through the index and through a direct
// scan and compares the results.
func evalBoth(t *testing.T, ix *Index, vals []float64, iv query.Interval) EvalStats {
	t.Helper()
	raw := func(pos []uint64) ([]float64, error) {
		out := make([]float64, len(pos))
		for i, p := range pos {
			out[i] = vals[p]
		}
		return out, nil
	}
	got, st, err := ix.Evaluate(iv, raw)
	if err != nil {
		t.Fatalf("Evaluate(%v): %v", iv, err)
	}
	if got.Len() != uint64(len(vals)) {
		t.Fatalf("result length %d, want %d", got.Len(), len(vals))
	}
	var want uint64
	wi := 0
	gotPos := got.Positions()
	for row, v := range vals {
		if iv.Contains(v) {
			want++
			if wi >= len(gotPos) || gotPos[wi] != uint64(row) {
				t.Fatalf("interval %v: row %d (v=%g) missing or misordered", iv, row, v)
			}
			wi++
		}
	}
	if uint64(len(gotPos)) != want {
		t.Fatalf("interval %v: got %d hits, want %d", iv, len(gotPos), want)
	}
	return st
}

func TestEvaluateMatchesScan(t *testing.T) {
	vals := testData(20000, 2)
	for _, bins := range []int{4, 64, 301} {
		ix, err := BuildIndex("px", vals, IndexOptions{Bins: bins})
		if err != nil {
			t.Fatal(err)
		}
		inf := math.Inf(1)
		intervals := []query.Interval{
			{Lo: -inf, Hi: 0, HiOpen: true},
			{Lo: 0, Hi: inf, LoOpen: true},
			{Lo: 1e9, Hi: inf, LoOpen: true},
			{Lo: -1e8, Hi: 1e8},
			{Lo: ix.Min(), Hi: ix.Max()},
			{Lo: ix.Min(), Hi: ix.Max(), LoOpen: true, HiOpen: true},
			{Lo: ix.Bounds[1], Hi: ix.Bounds[2]},               // aligned
			{Lo: ix.Bounds[1], Hi: ix.Bounds[2], HiOpen: true}, // aligned half-open
			{Lo: vals[0], Hi: vals[0]},                         // point query
			{Lo: 1e20, Hi: inf},                                // empty above
			{Lo: -inf, Hi: -1e20},                              // empty below
		}
		for _, iv := range intervals {
			evalBoth(t, ix, vals, iv)
		}
	}
}

func TestEvaluateRandomIntervalsProperty(t *testing.T) {
	vals := testData(3000, 3)
	ix, err := BuildIndex("px", vals, IndexOptions{Bins: 32})
	if err != nil {
		t.Fatal(err)
	}
	f := func(aRaw, bRaw float64, loOpen, hiOpen bool) bool {
		if math.IsNaN(aRaw) || math.IsNaN(bRaw) {
			return true
		}
		// Map the raw floats into the data range.
		span := ix.Max() - ix.Min()
		a := ix.Min() + math.Mod(math.Abs(aRaw), 1)*span
		b := ix.Min() + math.Mod(math.Abs(bRaw), 1)*span
		if a > b {
			a, b = b, a
		}
		iv := query.Interval{Lo: a, Hi: b, LoOpen: loOpen, HiOpen: hiOpen}
		raw := func(pos []uint64) ([]float64, error) {
			out := make([]float64, len(pos))
			for i, p := range pos {
				out[i] = vals[p]
			}
			return out, nil
		}
		got, _, err := ix.Evaluate(iv, raw)
		if err != nil {
			return false
		}
		var want uint64
		for _, v := range vals {
			if iv.Contains(v) {
				want++
			}
		}
		return got.Count() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestAlignedQueryNeedsNoCandidateCheck(t *testing.T) {
	vals := testData(5000, 4)
	ix, err := BuildIndex("px", vals, IndexOptions{Bins: 16})
	if err != nil {
		t.Fatal(err)
	}
	// Interval exactly on bin boundaries, half-open: pure index answer.
	iv := query.Interval{Lo: ix.Bounds[3], Hi: ix.Bounds[7], HiOpen: true}
	got, st, err := ix.Evaluate(iv, nil) // nil raw reader must be fine
	if err != nil {
		t.Fatal(err)
	}
	if st.CandidateChecks != 0 {
		t.Fatalf("aligned query did %d candidate checks", st.CandidateChecks)
	}
	var want uint64
	for _, v := range vals {
		if iv.Contains(v) {
			want++
		}
	}
	if got.Count() != want {
		t.Fatalf("aligned query count %d, want %d", got.Count(), want)
	}
}

func TestUnalignedQueryWithoutRawReaderFails(t *testing.T) {
	vals := testData(1000, 5)
	ix, err := BuildIndex("px", vals, IndexOptions{Bins: 16})
	if err != nil {
		t.Fatal(err)
	}
	// Pick a cut that provably separates two actual values inside one bin,
	// so granule metadata cannot resolve it and a candidate check is
	// unavoidable.
	var cut float64
	found := false
	for b := 0; b < ix.Bins() && !found; b++ {
		if ix.BinMin[b] < ix.BinMax[b] {
			cut = (ix.BinMin[b] + ix.BinMax[b]) / 2
			if cut > ix.BinMin[b] && cut < ix.BinMax[b] {
				found = true
			}
		}
	}
	if !found {
		t.Skip("no straddleable bin in test data")
	}
	if _, _, err := ix.Evaluate(query.Interval{Lo: cut, Hi: math.Inf(1)}, nil); err == nil {
		t.Fatal("unaligned query without raw reader succeeded")
	}
}

func TestAlignedEdges(t *testing.T) {
	vals := testData(1000, 6)
	ix, err := BuildIndex("px", vals, IndexOptions{Bins: 16})
	if err != nil {
		t.Fatal(err)
	}
	if !ix.AlignedEdges([]float64{ix.Bounds[0], ix.Bounds[4], ix.Bounds[16]}) {
		t.Fatal("aligned edges reported unaligned")
	}
	if ix.AlignedEdges([]float64{ix.Bounds[0], (ix.Bounds[4] + ix.Bounds[5]) / 2}) {
		t.Fatal("unaligned edge reported aligned")
	}
}

func TestPrecisionBounds(t *testing.T) {
	b := precisionBounds(0, 100, 1, 4096)
	// 1-digit boundaries in (0,100): 1..9 (x1), 10..90 (x10) plus endpoints,
	// plus clamped tiny decades.
	seen := map[float64]bool{}
	for _, v := range b {
		seen[v] = true
	}
	for _, want := range []float64{1, 2, 9, 10, 20, 90, 0, 100} {
		if !seen[want] {
			t.Errorf("precision bounds missing %g (got %v)", want, b)
		}
	}
	for i := 1; i < len(b); i++ {
		if !(b[i] > b[i-1]) {
			t.Fatalf("bounds not increasing: %v", b)
		}
	}
}

func TestPrecisionBoundsNegativeRange(t *testing.T) {
	b := precisionBounds(-50, 50, 1, 4096)
	seen := map[float64]bool{}
	for _, v := range b {
		seen[v] = true
	}
	for _, want := range []float64{-50, -40, -10, -1, 0, 1, 10, 40, 50} {
		if !seen[want] {
			t.Errorf("missing %g in %v", want, b)
		}
	}
}

func TestPrecisionBoundsCap(t *testing.T) {
	b := precisionBounds(-1e12, 1e12, 3, 128)
	if len(b)-1 > 128 {
		t.Fatalf("cap exceeded: %d bins", len(b)-1)
	}
	for i := 1; i < len(b); i++ {
		if !(b[i] > b[i-1]) {
			t.Fatalf("bounds not increasing after thinning")
		}
	}
	if b[0] != -1e12 || b[len(b)-1] != 1e12 {
		t.Fatal("endpoints lost in thinning")
	}
}

func TestPrecisionIndexAnswersLowPrecisionQueriesExactly(t *testing.T) {
	vals := testData(20000, 7)
	ix, err := BuildIndex("px", vals, IndexOptions{Precision: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Low-precision constants must be answered index-only: no candidate
	// checks (this is the design property of precision binning).
	for _, c := range []float64{1e9, 2.5e8, -1e8, 5e9} {
		if c < ix.Min() || c > ix.Max() {
			continue
		}
		iv := query.Interval{Lo: c, Hi: math.Inf(1), LoOpen: true}
		st := evalBoth(t, ix, vals, iv)
		if st.CandidateChecks != 0 {
			t.Errorf("precision index did %d candidate checks for threshold %g", st.CandidateChecks, c)
		}
	}
	// High-precision constants still work (with candidate checks).
	iv := query.Interval{Lo: 1.23456789e8, Hi: math.Inf(1), LoOpen: true}
	evalBoth(t, ix, vals, iv)
}

func TestNextPrecisionValue(t *testing.T) {
	cases := []struct {
		v, want float64
		p       int
	}{
		{1, 2, 1},
		{9, 10, 1},
		{10, 20, 1},
		{1.0, 1.1, 2},
		{9.9, 10, 2},
		{99, 100, 2},
		{2.5e8, 2.6e8, 2},
	}
	for _, c := range cases {
		if got := nextPrecisionValue(c.v, c.p); math.Abs(got-c.want) > 1e-9*c.want {
			t.Errorf("nextPrecisionValue(%g, %d) = %g, want %g", c.v, c.p, got, c.want)
		}
	}
}

func TestBinCountsMatchHistogram(t *testing.T) {
	vals := testData(5000, 8)
	ix, err := BuildIndex("px", vals, IndexOptions{Bins: 32})
	if err != nil {
		t.Fatal(err)
	}
	counts := ix.BinCounts()
	// Recompute with the scan baseline over the same edges.
	h, err := scan.Histogram1D(scan.Columns{"px": vals}, "px", nil, ix.Bounds)
	if err != nil {
		t.Fatal(err)
	}
	for i := range counts {
		if counts[i] != h.Counts[i] {
			t.Fatalf("bin %d: index %d vs scan %d", i, counts[i], h.Counts[i])
		}
	}
}

func TestExactIndexLowCardinality(t *testing.T) {
	// A categorical column, like the paper's "gender" example: species
	// codes 0, 1, 2.
	rng := rand.New(rand.NewSource(51))
	vals := make([]float64, 5000)
	for i := range vals {
		vals[i] = float64(rng.Intn(3))
	}
	ix, err := BuildIndex("species", vals, IndexOptions{Exact: true})
	if err != nil {
		t.Fatal(err)
	}
	if ix.Bins() != 3 {
		t.Fatalf("Bins = %d, want 3", ix.Bins())
	}
	// Every equality and range query resolves index-only: zero candidate
	// checks even with a nil raw reader.
	for _, iv := range []query.Interval{
		{Lo: 1, Hi: 1},                          // == 1
		{Lo: 0, Hi: 1, HiOpen: true},            // == 0 via [0,1)
		{Lo: 0.5, Hi: math.Inf(1)},              // >= 0.5
		{Lo: math.Inf(-1), Hi: 2, HiOpen: true}, // < 2
	} {
		got, st, err := ix.Evaluate(iv, nil)
		if err != nil {
			t.Fatalf("%v: %v", iv, err)
		}
		if st.CandidateChecks != 0 {
			t.Fatalf("%v: %d candidate checks", iv, st.CandidateChecks)
		}
		var want uint64
		for _, v := range vals {
			if iv.Contains(v) {
				want++
			}
		}
		if got.Count() != want {
			t.Fatalf("%v: count %d, want %d", iv, got.Count(), want)
		}
	}
}

func TestExactIndexCardinalityCap(t *testing.T) {
	vals := make([]float64, 100)
	for i := range vals {
		vals[i] = float64(i)
	}
	if _, err := BuildIndex("v", vals, IndexOptions{Exact: true, MaxBins: 10}); err == nil {
		t.Fatal("over-cardinality exact index accepted")
	}
	// Single distinct value works.
	one := []float64{7, 7, 7}
	ix, err := BuildIndex("v", one, IndexOptions{Exact: true})
	if err != nil || ix.Bins() != 1 {
		t.Fatalf("constant exact index: bins=%d err=%v", ixBins(ix), err)
	}
}

func ixBins(ix *Index) int {
	if ix == nil {
		return -1
	}
	return ix.Bins()
}

func TestExactIndexAdjacentFloats(t *testing.T) {
	a := 1.0
	b := math.Nextafter(a, 2)
	vals := []float64{a, b, a, b, a}
	ix, err := BuildIndex("v", vals, IndexOptions{Exact: true})
	if err != nil {
		t.Fatal(err)
	}
	got, st, err := ix.Evaluate(query.Interval{Lo: b, Hi: b}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.CandidateChecks != 0 || got.Count() != 2 {
		t.Fatalf("adjacent float equality: count=%d checks=%d", got.Count(), st.CandidateChecks)
	}
}
