package fastbit

import (
	"bytes"
	"testing"

	"repro/internal/histogram"
	"repro/internal/query"
	"repro/internal/scan"
)

func TestUnconditionalHistogram2DMatchesScan(t *testing.T) {
	si, mem, _ := buildTestStep(t, 6000, 31, IndexOptions{Bins: 64})
	ev := si.Evaluator(mem)
	spec := histogram.NewSpec2D("x", "px", 32, 32)
	got, err := ev.Histogram2D(nil, spec)
	if err != nil {
		t.Fatal(err)
	}
	want, err := scan.Histogram2D(scanColumns(mem), "x", "px", got.XEdges, got.YEdges)
	if err != nil {
		t.Fatal(err)
	}
	if got.Total() != want.Total() || got.Total() != 6000 {
		t.Fatalf("totals: fastbit %d scan %d", got.Total(), want.Total())
	}
	for i := range got.Counts {
		if got.Counts[i] != want.Counts[i] {
			t.Fatalf("bin %d: %d vs %d", i, got.Counts[i], want.Counts[i])
		}
	}
}

func TestConditionalHistogram2DMatchesScan(t *testing.T) {
	si, mem, _ := buildTestStep(t, 6000, 32, IndexOptions{Bins: 64})
	ev := si.Evaluator(mem)
	cond := query.MustParse("px > 1e9")
	spec := histogram.NewSpec2D("x", "px", 16, 16).WithXRange(0, 1e-3).WithYRange(1e9, 1e11)
	got, err := ev.Histogram2D(cond, spec)
	if err != nil {
		t.Fatal(err)
	}
	want, err := scan.ConditionalHistogram2D(scanColumns(mem), "x", "px", cond, got.XEdges, got.YEdges)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got.Counts {
		if got.Counts[i] != want.Counts[i] {
			t.Fatalf("bin %d: %d vs %d", i, got.Counts[i], want.Counts[i])
		}
	}
	if got.Total() == 0 {
		t.Fatal("conditional histogram empty — test data has no accelerated tail?")
	}
}

func TestConditionalHistogramDerivedRange(t *testing.T) {
	si, mem, _ := buildTestStep(t, 4000, 33, IndexOptions{Bins: 32})
	ev := si.Evaluator(mem)
	cond := query.MustParse("px > 1e9")
	spec := histogram.NewSpec2D("x", "px", 8, 8) // ranges derived from selection
	h, err := ev.Histogram2D(cond, spec)
	if err != nil {
		t.Fatal(err)
	}
	cnt, err := ev.Count(cond)
	if err != nil {
		t.Fatal(err)
	}
	// Derived ranges cover the selected values exactly, so no mass is lost.
	if h.Total() != cnt {
		t.Fatalf("histogram total %d != selection count %d", h.Total(), cnt)
	}
	if h.YEdges[0] <= 1e9 {
		// The derived Y range must come from the selected values only.
		t.Fatalf("derived y range starts at %g, expected above threshold", h.YEdges[0])
	}
}

func TestAdaptiveHistogram2D(t *testing.T) {
	si, mem, _ := buildTestStep(t, 8000, 34, IndexOptions{Bins: 64})
	ev := si.Evaluator(mem)
	spec := histogram.NewSpec2D("x", "px", 16, 16).WithBinning(histogram.Adaptive)
	h, err := ev.Histogram2D(nil, spec)
	if err != nil {
		t.Fatal(err)
	}
	if h.Total() != 8000 {
		t.Fatalf("adaptive histogram total %d", h.Total())
	}
	// Equal-weight property along each axis (marginals roughly balanced).
	mx := h.MarginalX()
	target := float64(mx.Total()) / float64(mx.Bins())
	for i, c := range mx.Counts {
		if float64(c) > 4*target {
			t.Errorf("adaptive x bin %d holds %d, target %.0f", i, c, target)
		}
	}
	// Edges strictly increasing, non-uniform in general.
	for i := 1; i < len(h.XEdges); i++ {
		if !(h.XEdges[i] > h.XEdges[i-1]) {
			t.Fatal("adaptive x edges not increasing")
		}
	}
}

func TestHistogram1DFromIndexCounts(t *testing.T) {
	si, mem, _ := buildTestStep(t, 5000, 35, IndexOptions{Bins: 32})
	ev := si.Evaluator(mem)
	spec := histogram.NewSpec1D("px", 32) // matches index bins exactly
	h, err := ev.Histogram1D(nil, spec)
	if err != nil {
		t.Fatal(err)
	}
	want, err := scan.Histogram1D(scanColumns(mem), "px", nil, h.Edges)
	if err != nil {
		t.Fatal(err)
	}
	for i := range h.Counts {
		if h.Counts[i] != want.Counts[i] {
			t.Fatalf("bin %d: %d vs %d", i, h.Counts[i], want.Counts[i])
		}
	}
	if h.Total() != 5000 {
		t.Fatalf("total %d", h.Total())
	}
}

func TestHistogram1DConditionalAndAdaptive(t *testing.T) {
	si, mem, _ := buildTestStep(t, 5000, 36, IndexOptions{Bins: 32})
	ev := si.Evaluator(mem)
	cond := query.MustParse("px > 0")
	spec := histogram.Spec1D{Var: "px", Bins: 10, Binning: histogram.Adaptive,
		Lo: 0, Hi: si.Columns["px"].Max()}
	h, err := ev.Histogram1D(cond, spec)
	if err != nil {
		t.Fatal(err)
	}
	cnt, _ := ev.Count(cond)
	// Values equal to 0 are excluded by the condition but lie on the low
	// edge; totals must still match the selection size.
	if h.Total() != cnt {
		t.Fatalf("1D conditional total %d != count %d", h.Total(), cnt)
	}
	// Unknown variable errors.
	if _, err := ev.Histogram1D(nil, histogram.NewSpec1D("zz", 8)); err == nil {
		t.Fatal("unknown variable accepted")
	}
}

func TestHistogramRequiresRawReader(t *testing.T) {
	si, mem, _ := buildTestStep(t, 100, 37, IndexOptions{Bins: 8})
	ev := si.Evaluator(mem)
	ev.Raw = nil
	if _, err := ev.Histogram2D(nil, histogram.NewSpec2D("x", "px", 4, 4)); err == nil {
		t.Fatal("nil raw reader accepted")
	}
	if _, err := ev.Histogram1D(nil, histogram.NewSpec1D("x", 4)); err == nil {
		t.Fatal("nil raw reader accepted")
	}
}

func TestStepIndexSerializationRoundTrip(t *testing.T) {
	si, mem, ids := buildTestStep(t, 3000, 38, IndexOptions{Bins: 24})
	var buf bytes.Buffer
	if _, err := si.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	si2, err := ReadStepIndex(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if si2.N != si.N || si2.IDVar != "id" || si2.ID == nil {
		t.Fatalf("round trip meta: %+v", si2)
	}
	if len(si2.Columns) != len(si.Columns) {
		t.Fatalf("column count %d vs %d", len(si2.Columns), len(si.Columns))
	}
	// Same query answers through both.
	e := query.MustParse("px > 1e9 && y > 0")
	got, err := si2.Evaluator(mem).Select(e)
	if err != nil {
		t.Fatal(err)
	}
	want, err := si.Evaluator(mem).Select(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("deserialized index: %d hits vs %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("hit %d differs", i)
		}
	}
	// ID index survived.
	p1 := si.ID.Lookup([]int64{ids[5]})
	p2 := si2.ID.Lookup([]int64{ids[5]})
	if len(p1) != len(p2) || p1[0] != p2[0] {
		t.Fatalf("ID lookup differs after round trip")
	}
	if si2.SizeBytes() <= 0 {
		t.Fatal("SizeBytes nonpositive")
	}
}

func TestStepIndexFileRoundTrip(t *testing.T) {
	si, _, _ := buildTestStep(t, 500, 39, IndexOptions{Bins: 8})
	path := t.TempDir() + "/step.idx"
	if err := si.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	si2, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if si2.N != si.N {
		t.Fatalf("N = %d, want %d", si2.N, si.N)
	}
	if _, err := ReadFile(path + ".missing"); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestReadStepIndexRejectsGarbage(t *testing.T) {
	if _, err := ReadStepIndex(bytes.NewReader([]byte("nope"))); err == nil {
		t.Fatal("garbage magic accepted")
	}
	if _, err := ReadStepIndex(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty stream accepted")
	}
	// Valid magic, bad version.
	var buf bytes.Buffer
	buf.Write(indexMagic[:])
	buf.Write([]byte{99, 0, 0, 0})
	if _, err := ReadStepIndex(&buf); err == nil {
		t.Fatal("bad version accepted")
	}
}

func TestWAHSpaceAdvantageOnIndexBitmaps(t *testing.T) {
	// Index bitmaps are sparse (each row sets one bit across all bins), so
	// WAH compression should keep the whole index well under the
	// uncompressed equivalent of bins × N bits.
	si, _, _ := buildTestStep(t, 50000, 40, IndexOptions{Bins: 256})
	ix := si.Columns["px"]
	uncompressed := ix.Bins() * int(ix.N) / 8
	if ix.SizeBytes() >= uncompressed/4 {
		t.Fatalf("index %d bytes, uncompressed equivalent %d — WAH not earning its keep",
			ix.SizeBytes(), uncompressed)
	}
}

func TestHistogram1DFromBitmapsMatchesScan(t *testing.T) {
	si, mem, _ := buildTestStep(t, 6000, 41, IndexOptions{Bins: 24})
	ev := si.Evaluator(mem)
	cond := query.MustParse("y > 0")
	got, err := ev.Histogram1DFromBitmaps(cond, "px")
	if err != nil {
		t.Fatal(err)
	}
	want, err := scan.Histogram1D(scanColumns(mem), "px", cond, got.Edges)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got.Counts {
		if got.Counts[i] != want.Counts[i] {
			t.Fatalf("bin %d: %d vs %d", i, got.Counts[i], want.Counts[i])
		}
	}
	// Unconditional comes straight from bin counts.
	un, err := ev.Histogram1DFromBitmaps(nil, "px")
	if err != nil {
		t.Fatal(err)
	}
	if un.Total() != si.N {
		t.Fatalf("unconditional total = %d, want %d", un.Total(), si.N)
	}
	if _, err := ev.Histogram1DFromBitmaps(nil, "nope"); err == nil {
		t.Fatal("unknown variable accepted")
	}
	if _, err := ev.Histogram1DFromBitmaps(query.MustParse("zz > 0"), "px"); err == nil {
		t.Fatal("bad condition accepted")
	}
}

func TestHistogram2DFromBitmapsMatchesScan(t *testing.T) {
	si, mem, _ := buildTestStep(t, 4000, 42, IndexOptions{Bins: 16})
	ev := si.Evaluator(mem)
	for _, cond := range []query.Expr{nil, query.MustParse("y > 0")} {
		got, err := ev.Histogram2DFromBitmaps(cond, "x", "px")
		if err != nil {
			t.Fatal(err)
		}
		want, err := scan.ConditionalHistogram2D(scanColumns(mem), "x", "px", cond, got.XEdges, got.YEdges)
		if err != nil {
			t.Fatal(err)
		}
		for i := range got.Counts {
			if got.Counts[i] != want.Counts[i] {
				t.Fatalf("cond=%v bin %d: %d vs %d", cond, i, got.Counts[i], want.Counts[i])
			}
		}
	}
	if _, err := ev.Histogram2DFromBitmaps(nil, "nope", "px"); err == nil {
		t.Fatal("unknown x accepted")
	}
	if _, err := ev.Histogram2DFromBitmaps(nil, "x", "nope"); err == nil {
		t.Fatal("unknown y accepted")
	}
	if _, err := ev.Histogram2DFromBitmaps(query.MustParse("zz > 0"), "x", "px"); err == nil {
		t.Fatal("bad condition accepted")
	}
}
