package fastbit

import (
	"context"
	"fmt"
	"strconv"

	"repro/internal/bitmap"
	"repro/internal/histogram"
	"repro/internal/obs"
	"repro/internal/query"
	"repro/internal/scan"
)

// Histogram2D computes a 2D histogram, conditional when cond is non-nil.
//
// The unconditional path reads both columns fully and bins them with a
// flat counts array — like FastBit, it must examine every record, so its
// cost is insensitive to the bin count (paper Fig. 11).
//
// The conditional path is FastBit's two-step algorithm (paper Section
// V-A2): (1) evaluate the condition against the bitmap indexes, producing
// the matching record positions; (2) gather the two columns' values at
// those positions into an intermediate array and bin them. The
// intermediate array has one element per hit, which is why index-assisted
// histograms win for selective conditions and lose to a sequential scan
// once the selection approaches the whole dataset.
func (ev *Evaluator) Histogram2D(cond query.Expr, spec histogram.Spec2D) (*histogram.Hist2D, error) {
	return ev.Histogram2DCtx(context.Background(), cond, spec)
}

// Histogram2DCtx is Histogram2D with cooperative cancellation: ctx is
// observed during condition evaluation and during the binning pass over
// the gathered values.
func (ev *Evaluator) Histogram2DCtx(ctx context.Context, cond query.Expr, spec histogram.Spec2D) (*histogram.Hist2D, error) {
	if ev.Raw == nil {
		return nil, fmt.Errorf("fastbit: histograms require a raw reader")
	}
	var xs, ys []float64
	if cond == nil {
		_, gsp := obs.StartSpan(ctx, "gather-values")
		var err error
		if xs, err = ev.Raw.Column(spec.XVar); err != nil {
			gsp.End()
			return nil, err
		}
		if ys, err = ev.Raw.Column(spec.YVar); err != nil {
			gsp.End()
			return nil, err
		}
		gsp.End()
	} else {
		hits, err := ev.EvalCtx(ctx, cond)
		if err != nil {
			return nil, err
		}
		_, gsp := obs.StartSpan(ctx, "gather-values")
		positions := hits.Positions()
		gsp.SetAttr("hits", strconv.Itoa(len(positions)))
		if xs, err = ev.Raw.ValuesAt(spec.XVar, positions); err != nil {
			gsp.End()
			return nil, err
		}
		if ys, err = ev.Raw.ValuesAt(spec.YVar, positions); err != nil {
			gsp.End()
			return nil, err
		}
		gsp.End()
	}
	bctx, bsp := obs.StartSpan(ctx, "histogram-binning")
	h, err := binPairs(bctx, xs, ys, spec, ev)
	bsp.End()
	return h, err
}

// indexOrNil resolves an index, returning nil when unavailable; used
// where the index is an optimisation (range metadata) rather than a
// requirement.
func (ev *Evaluator) indexOrNil(name string) *Index {
	ix, err := ev.index(name)
	if err != nil {
		return nil
	}
	return ix
}

// Histogram1D computes a 1D histogram, conditional when cond is non-nil,
// using the same two-step strategy as Histogram2D.
func (ev *Evaluator) Histogram1D(cond query.Expr, spec histogram.Spec1D) (*histogram.Hist1D, error) {
	return ev.Histogram1DCtx(context.Background(), cond, spec)
}

// Histogram1DCtx is Histogram1D with cooperative cancellation.
func (ev *Evaluator) Histogram1DCtx(ctx context.Context, cond query.Expr, spec histogram.Spec1D) (*histogram.Hist1D, error) {
	if ev.Raw == nil {
		return nil, fmt.Errorf("fastbit: histograms require a raw reader")
	}
	var vs []float64
	if cond == nil {
		// Unconditional 1D histograms aligned with the index bins come
		// straight from bitmap counts, with no data access at all: this is
		// the "efficient method for computing a histogram" of Section II-B.
		if ix := ev.indexOrNil(spec.Var); ix != nil && !spec.HasRange() &&
			spec.Binning == histogram.Uniform && spec.Bins == ix.Bins() && ix.Precision == 0 {
			return &histogram.Hist1D{
				Var:    spec.Var,
				Edges:  append([]float64(nil), ix.Bounds...),
				Counts: ix.BinCounts(),
			}, nil
		}
		var err error
		if vs, err = ev.Raw.Column(spec.Var); err != nil {
			return nil, err
		}
	} else {
		hits, err := ev.EvalCtx(ctx, cond)
		if err != nil {
			return nil, err
		}
		_, gsp := obs.StartSpan(ctx, "gather-values")
		if vs, err = ev.Raw.ValuesAt(spec.Var, hits.Positions()); err != nil {
			gsp.End()
			return nil, err
		}
		gsp.End()
	}
	lo, hi := spec.Lo, spec.Hi
	if !spec.HasRange() {
		lo, hi = scan.MinMax(vs)
	}
	var edges []float64
	var err error
	if spec.Binning == histogram.Adaptive {
		edges, err = histogram.AdaptiveEdges(vs, lo, hi, spec.Bins, spec.MinDensity)
		if err != nil {
			return nil, err
		}
	} else {
		edges = histogram.UniformEdges(lo, hi, spec.Bins)
	}
	bctx, bsp := obs.StartSpan(ctx, "histogram-binning")
	h, err := histogram.Compute1DCtx(bctx, spec.Var, vs, edges)
	bsp.End()
	return h, err
}

// Histogram1DFromBitmaps computes a conditional 1D histogram entirely in
// index space: the condition's bitmap is ANDed with every bin bitmap of
// the variable's index and the ones are counted. No raw data is touched.
// The bin boundaries are the index's own; this is the algorithm family of
// Stockinger et al. for conditional histograms on SMP machines (paper
// Section II-C), provided here as the ablation counterpart to the
// two-step gather-then-bin strategy used by Histogram1D/2D.
func (ev *Evaluator) Histogram1DFromBitmaps(cond query.Expr, name string) (*histogram.Hist1D, error) {
	return ev.Histogram1DFromBitmapsCtx(context.Background(), cond, name)
}

// Histogram1DFromBitmapsCtx is Histogram1DFromBitmaps with cooperative
// cancellation.
func (ev *Evaluator) Histogram1DFromBitmapsCtx(ctx context.Context, cond query.Expr, name string) (*histogram.Hist1D, error) {
	ix, err := ev.index(name)
	if err != nil {
		return nil, err
	}
	h := &histogram.Hist1D{
		Var:    name,
		Edges:  append([]float64(nil), ix.Bounds...),
		Counts: make([]uint64, ix.Bins()),
	}
	if cond == nil {
		copy(h.Counts, ix.BinCounts())
		return h, nil
	}
	hits, err := ev.EvalCtx(ctx, cond)
	if err != nil {
		return nil, err
	}
	for b, bm := range ix.Bitmaps {
		h.Counts[b] = hits.AndCount(bm)
	}
	return h, nil
}

// Histogram2DFromBitmaps computes a (conditional) 2D histogram entirely in
// index space: for every (x-bin, y-bin) cell the two bin bitmaps — and the
// condition bitmap, when present — are intersected and counted. No raw
// data is touched; the cell grid is the cross product of the two indexes'
// bins, which is exactly the histogram "cross product" interface of the
// paper's network-analysis predecessor (Section II-C). Quadratic in bin
// count, so intended for coarse overview grids.
func (ev *Evaluator) Histogram2DFromBitmaps(cond query.Expr, xvar, yvar string) (*histogram.Hist2D, error) {
	return ev.Histogram2DFromBitmapsCtx(context.Background(), cond, xvar, yvar)
}

// Histogram2DFromBitmapsCtx is Histogram2DFromBitmaps with cooperative
// cancellation: ctx is observed per y-bin row of the cell grid.
func (ev *Evaluator) Histogram2DFromBitmapsCtx(ctx context.Context, cond query.Expr, xvar, yvar string) (*histogram.Hist2D, error) {
	ixX, err := ev.index(xvar)
	if err != nil {
		return nil, err
	}
	ixY, err := ev.index(yvar)
	if err != nil {
		return nil, err
	}
	h := &histogram.Hist2D{
		XVar: xvar, YVar: yvar,
		XEdges: append([]float64(nil), ixX.Bounds...),
		YEdges: append([]float64(nil), ixY.Bounds...),
		Counts: make([]uint64, ixX.Bins()*ixY.Bins()),
	}
	var hits *bitmap.Vector
	if cond != nil {
		if hits, err = ev.EvalCtx(ctx, cond); err != nil {
			return nil, err
		}
	}
	nx := ixX.Bins()
	for iy, bmY := range ixY.Bitmaps {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		row := bmY
		if hits != nil {
			row = bmY.And(hits)
		}
		if row.Count() == 0 {
			continue
		}
		for ix, bmX := range ixX.Bitmaps {
			if c := row.AndCount(bmX); c != 0 {
				h.Counts[iy*nx+ix] = c
			}
		}
	}
	return h, nil
}

// binPairs bins gathered (x, y) pairs per the spec. Unset ranges fall back
// to the column index's min/max when available (no data pass needed) and
// otherwise to a min/max scan of the gathered values — the extra work the
// paper observes for adaptive binning over large selections.
func binPairs(ctx context.Context, xs, ys []float64, spec histogram.Spec2D, ev *Evaluator) (*histogram.Hist2D, error) {
	ixX, ixY := ev.indexOrNil(spec.XVar), ev.indexOrNil(spec.YVar)
	xlo, xhi := rangeFor(xs, spec.XLo, spec.XHi, spec.HasXRange(), ixX, len(xs) == indexLen(ixX))
	ylo, yhi := rangeFor(ys, spec.YLo, spec.YHi, spec.HasYRange(), ixY, len(ys) == indexLen(ixY))

	var xEdges, yEdges []float64
	var err error
	if spec.Binning == histogram.Adaptive {
		if xEdges, err = histogram.AdaptiveEdges(xs, xlo, xhi, spec.XBins, spec.MinDensity); err != nil {
			return nil, err
		}
		if yEdges, err = histogram.AdaptiveEdges(ys, ylo, yhi, spec.YBins, spec.MinDensity); err != nil {
			return nil, err
		}
	} else {
		xEdges = histogram.UniformEdges(xlo, xhi, spec.XBins)
		yEdges = histogram.UniformEdges(ylo, yhi, spec.YBins)
	}
	return histogram.Compute2DCtx(ctx, spec.XVar, spec.YVar, xs, ys, xEdges, yEdges)
}

func indexLen(ix *Index) int {
	if ix == nil {
		return -1
	}
	return int(ix.N)
}

// rangeFor picks the binning range: an explicit spec range wins; a full
// (unconditional) column with an index uses the index's min/max; anything
// else scans the gathered values.
func rangeFor(vs []float64, lo, hi float64, has bool, ix *Index, full bool) (float64, float64) {
	if has {
		return lo, hi
	}
	if ix != nil && full {
		return ix.Min(), ix.Max()
	}
	return scan.MinMax(vs)
}
