package fastbit

import (
	"encoding/binary"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
)

// LazyStep is an index file opened for on-demand section loading: the
// directory is read at open time (a few hundred bytes), and each column's
// index — or the identifier index — is read from disk only when a query
// first touches it, then cached. This mirrors FastBit's behaviour of
// reading only the bitmaps a query requires, and it is what keeps
// identifier-tracking queries from paying for the momentum and position
// indexes they never use.
type LazyStep struct {
	path string
	f    *os.File
	dir  *directory

	mu      sync.Mutex
	cols    map[string]*Index
	idIdx   *IDIndex
	ioBytes uint64
	blocks  map[uint64][]byte // 4 KiB block cache for point reads
}

// blockSize is the granularity of cached point reads; binary searches over
// the on-disk identifier array share the upper-level blocks, so caching
// them collapses the syscall count from O(n log N) to roughly O(n).
const blockSize = 4096

// OpenLazy opens an index file for on-demand loading. The directory is
// validated against the file size so truncated index files (e.g. from a
// crash mid-write under a non-atomic writer) are rejected here, not when
// a query first touches the missing tail.
func OpenLazy(path string) (*LazyStep, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("fastbit: %w", err)
	}
	d, err := readDirectory(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("fastbit: stat index: %w", err)
	}
	if err := d.validate(st.Size()); err != nil {
		f.Close()
		return nil, err
	}
	return &LazyStep{path: path, f: f, dir: d, cols: map[string]*Index{}}, nil
}

// Close releases the underlying file.
func (ls *LazyStep) Close() error { return ls.f.Close() }

// N returns the number of records the index covers.
func (ls *LazyStep) N() uint64 { return ls.dir.n }

// IDVar returns the identifier variable name ("" when absent).
func (ls *LazyStep) IDVar() string { return ls.dir.idVar }

// HasColumn reports whether a range index exists for the variable.
func (ls *LazyStep) HasColumn(name string) bool {
	_, ok := ls.dir.cols[name]
	return ok
}

// Columns lists the indexed variables.
func (ls *LazyStep) Columns() []string {
	return append([]string(nil), ls.dir.order...)
}

// IndexBytesRead returns the cumulative bytes of index data loaded, for
// I/O accounting.
func (ls *LazyStep) IndexBytesRead() uint64 {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	return ls.ioBytes
}

// Column loads (or returns the cached) range index for one variable.
func (ls *LazyStep) Column(name string) (*Index, error) {
	return ls.ColumnCost(name, nil)
}

// ColumnCost is Column with per-query cost attribution: when the load
// misses the cache, the section bytes actually read (measured as the
// ioBytes delta under the lock, so attribution is exact) and the load
// itself are charged to c.
func (ls *LazyStep) ColumnCost(name string, c *obs.Cost) (*Index, error) {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	if ix, ok := ls.cols[name]; ok {
		return ix, nil
	}
	sec, ok := ls.dir.cols[name]
	if !ok {
		return nil, fmt.Errorf("fastbit: no index for variable %q in %s", name, ls.path)
	}
	start := time.Now()
	bytesBefore := ls.ioBytes
	blob, err := ls.readSection(sec)
	if err != nil {
		return nil, err
	}
	ix, err := decodeColumn(name, ls.dir.n, blob)
	if err != nil {
		return nil, err
	}
	metricIndexLoads.Inc()
	metricIndexLoadSeconds.ObserveSince(start)
	c.AddIndexBytes(ls.ioBytes - bytesBefore)
	c.AddIndexLoads(1)
	ls.cols[name] = ix
	return ix, nil
}

// IDIndex loads (or returns the cached) identifier index.
func (ls *LazyStep) IDIndex() (*IDIndex, error) {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	if ls.idIdx != nil {
		return ls.idIdx, nil
	}
	if !ls.dir.hasID {
		return nil, fmt.Errorf("fastbit: %s has no identifier index", ls.path)
	}
	start := time.Now()
	blob, err := ls.readSection(ls.dir.idSec)
	if err != nil {
		return nil, err
	}
	id, err := decodeIDIndex(ls.dir.n, blob)
	if err != nil {
		return nil, err
	}
	metricIndexLoads.Inc()
	metricIndexLoadSeconds.ObserveSince(start)
	ls.idIdx = id
	return id, nil
}

// IDLookup returns the sorted row positions of the identifiers in set.
// Small sets binary-search the on-disk sorted identifier array directly,
// reading only O(n log N) eight-byte values instead of the whole section
// — the FastBit property that makes particle tracking cost proportional
// to the hits found, not the data size. Large sets (or a previously
// cached index) fall back to the in-memory index.
func (ls *LazyStep) IDLookup(set []int64) ([]uint64, error) {
	ls.mu.Lock()
	cached := ls.idIdx
	ls.mu.Unlock()
	if cached != nil {
		return cached.Lookup(set), nil
	}
	if !ls.dir.hasID {
		return nil, fmt.Errorf("fastbit: %s has no identifier index", ls.path)
	}
	// Heuristic: when the query set is a large fraction of the index,
	// loading it once is cheaper than many scattered reads.
	if uint64(len(set))*64 >= ls.dir.n {
		idIdx, err := ls.IDIndex()
		if err != nil {
			return nil, err
		}
		return idIdx.Lookup(set), nil
	}
	// Sorting the query set maximises block-cache locality in the leaf
	// levels of the binary searches.
	sorted := append([]int64(nil), set...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	out := make([]uint64, 0, len(sorted))
	for i, id := range sorted {
		if i > 0 && id == sorted[i-1] {
			continue
		}
		pos, err := ls.idSearchDisk(id)
		if err != nil {
			return nil, err
		}
		out = append(out, pos...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	dedup := out[:0]
	for i, p := range out {
		if i == 0 || p != out[i-1] {
			dedup = append(dedup, p)
		}
	}
	return dedup, nil
}

// idSearchDisk binary-searches the on-disk sorted identifier array for
// one identifier and gathers the row positions of every occurrence.
func (ls *LazyStep) idSearchDisk(id int64) ([]uint64, error) {
	sec := ls.dir.idSec
	cnt, err := ls.u64At(sec.offset)
	if err != nil {
		return nil, err
	}
	if 8+16*cnt > sec.size {
		return nil, fmt.Errorf("fastbit: id index section inconsistent")
	}
	idsOff := sec.offset + 8
	posOff := idsOff + 8*cnt
	// Find the first index with ids[i] >= id.
	lo, hi := uint64(0), cnt
	var searchErr error
	for lo < hi {
		mid := (lo + hi) / 2
		v, err := ls.u64At(idsOff + 8*mid)
		if err != nil {
			searchErr = err
			break
		}
		if int64(v) < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if searchErr != nil {
		return nil, searchErr
	}
	var out []uint64
	for i := lo; i < cnt; i++ {
		v, err := ls.u64At(idsOff + 8*i)
		if err != nil {
			return nil, err
		}
		if int64(v) != id {
			break
		}
		p, err := ls.u64At(posOff + 8*i)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// u64At reads one little-endian u64 at an absolute file offset through
// the block cache.
func (ls *LazyStep) u64At(off uint64) (uint64, error) {
	base := off &^ (blockSize - 1)
	ls.mu.Lock()
	if ls.blocks == nil {
		ls.blocks = map[uint64][]byte{}
	}
	blk, ok := ls.blocks[base]
	ls.mu.Unlock()
	if !ok {
		buf := make([]byte, blockSize)
		n, err := ls.f.ReadAt(buf, int64(base))
		if err != nil && n == 0 {
			return 0, fmt.Errorf("fastbit: read index: %w", err)
		}
		blk = buf[:n]
		ls.mu.Lock()
		ls.blocks[base] = blk
		ls.ioBytes += uint64(n)
		ls.mu.Unlock()
	}
	rel := off - base
	if rel+8 > uint64(len(blk)) {
		// Value straddles a block boundary or the file end; fall back to
		// a direct read.
		var b [8]byte
		if _, err := ls.f.ReadAt(b[:], int64(off)); err != nil {
			return 0, fmt.Errorf("fastbit: read index: %w", err)
		}
		ls.mu.Lock()
		ls.ioBytes += 8
		ls.mu.Unlock()
		return binary.LittleEndian.Uint64(b[:]), nil
	}
	return binary.LittleEndian.Uint64(blk[rel:]), nil
}

func (ls *LazyStep) readSection(sec section) ([]byte, error) {
	st, err := ls.f.Stat()
	if err != nil {
		return nil, fmt.Errorf("fastbit: stat index: %w", err)
	}
	if sec.offset+sec.size > uint64(st.Size()) {
		return nil, fmt.Errorf("fastbit: index section [%d,+%d) beyond file size %d",
			sec.offset, sec.size, st.Size())
	}
	blob := make([]byte, sec.size)
	if _, err := ls.f.ReadAt(blob, int64(sec.offset)); err != nil {
		return nil, fmt.Errorf("fastbit: read index section: %w", err)
	}
	if err := sec.verify(ls.path, blob); err != nil {
		return nil, err
	}
	ls.ioBytes += sec.size
	return blob, nil
}

// Evaluator returns a query evaluator that loads indexes on demand.
func (ls *LazyStep) Evaluator(raw RawReader) *Evaluator {
	return ls.CostEvaluator(raw, nil)
}

// CostEvaluator is Evaluator with per-query cost attribution: index
// loads triggered by the returned evaluator are charged to c, and the
// evaluator itself charges its bitmap and candidate-check work there.
func (ls *LazyStep) CostEvaluator(raw RawReader, c *obs.Cost) *Evaluator {
	return &Evaluator{
		N: ls.dir.n,
		LookupIndex: func(name string) (*Index, error) {
			return ls.ColumnCost(name, c)
		},
		IDVar:    ls.dir.idVar,
		LookupID: ls.IDIndex,
		Raw:      raw,
		Cost:     c,
	}
}
