package fastbit

import (
	"repro/internal/obs"
)

// Package-level instruments, registered once in the process-wide registry
// so every Evaluator and LazyStep — across servers and cluster workers —
// reports into the same series.
var (
	metricEvalRows = obs.Default().Counter("fastbit_eval_rows_total",
		"Records covered by index-assisted query evaluations.")
	metricEvals = obs.Default().Counter("fastbit_evals_total",
		"Index-assisted query evaluations performed.")
	metricCandidateChecks = obs.Default().Counter("fastbit_candidate_checks_total",
		"Raw-data candidate checks performed for boundary bins.")
	metricIndexLoads = obs.Default().Counter("fastbit_index_loads_total",
		"Index sections loaded from disk (cache misses).")
	metricIndexLoadSeconds = obs.Default().Histogram("fastbit_index_load_seconds",
		"Wall time loading one index section from disk.", nil)
	metricEvalSeconds = obs.Default().Histogram("fastbit_eval_seconds",
		"Wall time of one index-assisted query evaluation.", nil)
)

func init() {
	// The candidate-check fraction is the paper's headline index-quality
	// signal: the share of records that had to be verified against raw
	// data because they fell in boundary bins.
	obs.Default().GaugeFunc("fastbit_candidate_check_fraction",
		"Candidate checks divided by records covered by evaluations.",
		func() float64 {
			rows := metricEvalRows.Load()
			if rows == 0 {
				return 0
			}
			return float64(metricCandidateChecks.Load()) / float64(rows)
		})
}
