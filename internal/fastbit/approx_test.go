package fastbit

import (
	"context"
	"testing"

	"repro/internal/query"
)

// TestEvaluateApproxSupersetProperty: the index-only path admits boundary
// bins wholesale, so for negation-free queries its result must contain
// every exact match (a superset) while touching no raw data.
func TestEvaluateApproxSupersetProperty(t *testing.T) {
	si, mem, _ := buildTestStep(t, 8000, 31, IndexOptions{Bins: 64})
	// Negation flips a superset into a subset, so the guarantee is stated
	// for monotone queries only — the shapes the brownout path serves.
	queries := []string{
		"px > 1e9",
		"px > 1e9 && y > 0",
		"px > 1e9 && y < 1e-5 && x > 5e-4",
		"px < -1e8 || px > 1e9",
		"x >= 0.0005 && x < 0.0006",
		"px > 1e20",   // empty
		"px >= -1e20", // everything
	}
	for _, q := range queries {
		e := query.MustParse(q)

		exact := si.Evaluator(mem)
		want, err := exact.Select(e)
		if err != nil {
			t.Fatalf("%q exact: %v", q, err)
		}

		approx := si.Evaluator(nil) // no raw reader: index-only must not need one
		approx.Approx = true
		got, err := approx.Eval(e)
		if err != nil {
			t.Fatalf("%q approx: %v", q, err)
		}
		if got.Count() < uint64(len(want)) {
			t.Fatalf("%q: approx %d hits < exact %d — not a superset", q, got.Count(), len(want))
		}
		for _, p := range want {
			if !got.Get(p) {
				t.Fatalf("%q: exact match at position %d missing from approx result", q, p)
			}
		}
		if approx.Stats.CandidateChecks != 0 {
			t.Fatalf("%q: approx path performed %d candidate checks", q, approx.Stats.CandidateChecks)
		}
	}
}

// TestEvaluateApproxCtxCountsApproxRows: a query whose interval cuts
// through bin interiors must report its wholesale admissions, and the
// overcount must equal exactly the non-matching rows of boundary bins.
func TestEvaluateApproxCtxCountsApproxRows(t *testing.T) {
	si, mem, _ := buildTestStep(t, 4000, 32, IndexOptions{Bins: 32})
	ix := si.Columns["px"]
	if ix == nil {
		t.Fatal("no px index")
	}
	// An interval straddling bin interiors: pick a threshold strictly
	// inside the value range so at least one boundary bin exists.
	iv := query.Interval{Lo: 0, Hi: ix.Max()}
	raw := func(positions []uint64) ([]float64, error) {
		return mem.ValuesAt("px", positions)
	}

	exactV, exactSt, err := ix.EvaluateCtx(context.Background(), iv, raw)
	if err != nil {
		t.Fatal(err)
	}
	approxV, approxSt, err := ix.EvaluateApproxCtx(context.Background(), iv)
	if err != nil {
		t.Fatal(err)
	}
	if exactSt.BoundaryBins == 0 {
		t.Skip("threshold landed on a bin edge; no boundary bins to approximate")
	}
	if approxSt.ApproxRows == 0 {
		t.Fatal("boundary bins present but ApproxRows = 0")
	}
	if approxSt.CandidateChecks != 0 {
		t.Fatalf("approx evaluation candidate-checked %d rows", approxSt.CandidateChecks)
	}
	if approxV.Count() < exactV.Count() {
		t.Fatalf("approx count %d < exact %d", approxV.Count(), exactV.Count())
	}
	// Every approx-admitted row is in a boundary bin: the overcount is
	// bounded by the wholesale admissions minus the checks that would have
	// passed.
	over := approxV.Count() - exactV.Count()
	if over > approxSt.ApproxRows {
		t.Fatalf("overcount %d exceeds ApproxRows %d", over, approxSt.ApproxRows)
	}
}

// TestEvalStatsAccumulateApproxRows: ApproxRows must survive the
// per-term accumulation used by the evaluator.
func TestEvalStatsAccumulateApproxRows(t *testing.T) {
	si, mem, _ := buildTestStep(t, 4000, 33, IndexOptions{Bins: 32})
	ev := si.Evaluator(mem)
	ev.Approx = true
	if _, err := ev.Eval(query.MustParse("px > 1 && x > 1e-4")); err != nil {
		t.Fatal(err)
	}
	if ev.Stats.ApproxRows == 0 {
		t.Fatal("compound approx eval accumulated no ApproxRows")
	}
}
