package fastbit

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/query"
	"repro/internal/scan"
)

// buildTestStep builds an in-memory step with momentum-like and position-
// like columns plus an identifier column.
func buildTestStep(t *testing.T, n int, seed int64, opt IndexOptions) (*StepIndex, MemReader, []int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	px := make([]float64, n)
	x := make([]float64, n)
	y := make([]float64, n)
	ids := make([]int64, n)
	perm := rng.Perm(n)
	for i := range px {
		if rng.Float64() < 0.03 {
			px[i] = math.Pow(10, 9+rng.Float64()*2)
		} else {
			px[i] = rng.NormFloat64() * 1e8
		}
		x[i] = rng.Float64() * 1e-3
		y[i] = rng.NormFloat64() * 1e-5
		ids[i] = int64(perm[i]) * 3 // sparse, shuffled ids
	}
	cols := map[string][]float64{"px": px, "x": x, "y": y}
	si, err := BuildStepIndex(cols, ids, "id", opt)
	if err != nil {
		t.Fatal(err)
	}
	mem := MemReader{"px": px, "x": x, "y": y}
	idf := make([]float64, n)
	for i, id := range ids {
		idf[i] = float64(id)
	}
	mem["id"] = idf
	return si, mem, ids
}

// scanColumns adapts a MemReader to the scan baseline's column map.
func scanColumns(mem MemReader) scan.Columns {
	c := scan.Columns{}
	for name, col := range mem {
		c[name] = col
	}
	return c
}

func TestEvaluatorMatchesScanOnCompoundQueries(t *testing.T) {
	si, mem, _ := buildTestStep(t, 8000, 21, IndexOptions{Bins: 64})
	ev := si.Evaluator(mem)
	cols := scanColumns(mem)
	queries := []string{
		"px > 1e9",
		"px > 1e9 && y > 0",
		"px > 1e9 && y < 1e-5 && x > 5e-4", // the paper's query shape
		"px < -1e8 || px > 1e9",
		"!(px > 0)",
		"x >= 0.0005 && x < 0.0006",
		"px == 0",
		"px != 0",
		"(x > 1e-4 || y > 0) && px > -1e7",
		"px > 1e20",   // empty
		"px >= -1e20", // everything
	}
	for _, q := range queries {
		e := query.MustParse(q)
		want, err := scan.Select(cols, e)
		if err != nil {
			t.Fatalf("%q scan: %v", q, err)
		}
		got, err := ev.Select(e)
		if err != nil {
			t.Fatalf("%q fastbit: %v", q, err)
		}
		if len(got) != len(want) {
			t.Fatalf("%q: fastbit %d hits, scan %d hits", q, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%q: position %d differs: %d vs %d", q, i, got[i], want[i])
			}
		}
	}
}

func TestEvaluatorCount(t *testing.T) {
	si, mem, _ := buildTestStep(t, 2000, 22, IndexOptions{Bins: 32})
	ev := si.Evaluator(mem)
	e := query.MustParse("px > 0")
	cnt, err := ev.Count(e)
	if err != nil {
		t.Fatal(err)
	}
	sel, err := ev.Select(e)
	if err != nil {
		t.Fatal(err)
	}
	if cnt != uint64(len(sel)) {
		t.Fatalf("Count %d != len(Select) %d", cnt, len(sel))
	}
}

func TestEvaluatorUnknownVariable(t *testing.T) {
	si, mem, _ := buildTestStep(t, 100, 23, IndexOptions{Bins: 8})
	ev := si.Evaluator(mem)
	if _, err := ev.Eval(query.MustParse("nope > 0")); err == nil {
		t.Fatal("unknown variable accepted")
	}
	if _, err := ev.Eval(query.MustParse("nope in (1,2)")); err == nil {
		t.Fatal("unknown in-variable accepted")
	}
}

func TestEvaluatorIDQuery(t *testing.T) {
	si, mem, ids := buildTestStep(t, 5000, 24, IndexOptions{Bins: 32})
	ev := si.Evaluator(mem)
	// Pick some identifiers that exist and some that do not.
	want := []int64{ids[0], ids[4999], ids[2500], ids[2500] + 1} // +1 never a multiple of 3
	vals := make([]float64, len(want))
	for i, id := range want {
		vals[i] = float64(id)
	}
	in := query.NewIn("id", vals)
	got, err := ev.Select(in)
	if err != nil {
		t.Fatal(err)
	}
	ref := scan.FindIDs(ids, want)
	if len(got) != len(ref) {
		t.Fatalf("ID query: %d hits, want %d", len(got), len(ref))
	}
	for i := range got {
		if got[i] != ref[i] {
			t.Fatalf("ID query position %d: %d vs %d", i, got[i], ref[i])
		}
	}
}

func TestEvaluatorInOnNonIDColumn(t *testing.T) {
	si, mem, _ := buildTestStep(t, 3000, 25, IndexOptions{Bins: 32})
	ev := si.Evaluator(mem)
	px := mem["px"]
	in := query.NewIn("px", []float64{px[17], px[1234], 1e300})
	got, err := ev.Select(in)
	if err != nil {
		t.Fatal(err)
	}
	want, err := scan.Select(scanColumns(mem), in)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("in on px: %d vs %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("in on px: position %d differs", i)
		}
	}
}

func TestEvaluatorRandomThresholdProperty(t *testing.T) {
	si, mem, _ := buildTestStep(t, 2000, 26, IndexOptions{Bins: 48})
	ev := si.Evaluator(mem)
	cols := scanColumns(mem)
	f := func(u float64, ge bool) bool {
		if math.IsNaN(u) || math.IsInf(u, 0) {
			return true
		}
		ix := si.Columns["px"]
		thr := ix.Min() + math.Mod(math.Abs(u), 1)*(ix.Max()-ix.Min())
		op := ">"
		if ge {
			op = ">="
		}
		e := query.MustParse("px " + op + " " + formatG(thr))
		got, err := ev.Count(e)
		if err != nil {
			return false
		}
		want, err := scan.Count(cols, e)
		if err != nil {
			return false
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func formatG(v float64) string {
	// strconv via query formatting: reuse Compare.String.
	c := query.Compare{Var: "t", Op: query.GT, Value: v}
	s := c.String()
	return s[len("t > "):]
}

func TestSelectIDs(t *testing.T) {
	si, mem, ids := buildTestStep(t, 4000, 27, IndexOptions{Bins: 32})
	ev := si.Evaluator(mem)
	e := query.MustParse("px > 1e9")
	got, err := ev.SelectIDs(e)
	if err != nil {
		t.Fatal(err)
	}
	pos, err := scan.Select(scanColumns(mem), e)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(pos) {
		t.Fatalf("SelectIDs returned %d, want %d", len(got), len(pos))
	}
	for i, p := range pos {
		if got[i] != ids[p] {
			t.Fatalf("SelectIDs[%d] = %d, want %d", i, got[i], ids[p])
		}
	}
}

func TestIDIndexLookup(t *testing.T) {
	ids := []int64{50, 10, 30, 10, 90}
	x := BuildIDIndex(ids)
	if x.Len() != 5 {
		t.Fatalf("Len = %d", x.Len())
	}
	got := x.LookupOne(10)
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("LookupOne(10) = %v", got)
	}
	if got := x.LookupOne(11); len(got) != 0 {
		t.Fatalf("LookupOne(11) = %v", got)
	}
	all := x.Lookup([]int64{90, 10, 10})
	if len(all) != 3 || all[0] != 1 || all[1] != 3 || all[2] != 4 {
		t.Fatalf("Lookup = %v", all)
	}
	if x.SizeBytes() <= 0 {
		t.Fatal("SizeBytes nonpositive")
	}
}

func TestIDIndexMatchesScanProperty(t *testing.T) {
	f := func(idsRaw []int64, setRaw []int64) bool {
		x := BuildIDIndex(idsRaw)
		got := x.Lookup(setRaw)
		want := scan.FindIDs(idsRaw, setRaw)
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIDIndexIDsAt(t *testing.T) {
	ids := []int64{7, 3, 9, 1}
	x := BuildIDIndex(ids)
	got := x.IDsAt([]uint64{2, 0})
	if got[0] != 9 || got[1] != 7 {
		t.Fatalf("IDsAt = %v", got)
	}
}

func TestEvalStatsAccumulate(t *testing.T) {
	si, mem, _ := buildTestStep(t, 3000, 28, IndexOptions{Bins: 16})
	ev := si.Evaluator(mem)
	// Find an unaligned threshold inside a straddled bin.
	ix := si.Columns["px"]
	var thr float64
	for b := 0; b < ix.Bins(); b++ {
		if ix.BinMin[b] < ix.BinMax[b] {
			thr = (ix.BinMin[b] + ix.BinMax[b]) / 2
			if thr > ix.BinMin[b] && thr < ix.BinMax[b] {
				break
			}
		}
	}
	if _, err := ev.Eval(&query.Compare{Var: "px", Op: query.GT, Value: thr}); err != nil {
		t.Fatal(err)
	}
	if ev.Stats.CandidateChecks == 0 {
		t.Fatal("expected candidate checks for unaligned threshold")
	}
}

func TestMemReaderErrors(t *testing.T) {
	m := MemReader{"x": {1, 2, 3}}
	if _, err := m.Column("nope"); err == nil {
		t.Fatal("missing column accepted")
	}
	if _, err := m.ValuesAt("nope", []uint64{0}); err == nil {
		t.Fatal("missing column accepted")
	}
	if _, err := m.ValuesAt("x", []uint64{5}); err == nil {
		t.Fatal("out of range position accepted")
	}
	got, err := m.ValuesAt("x", []uint64{2, 0})
	if err != nil || got[0] != 3 || got[1] != 1 {
		t.Fatalf("ValuesAt = %v, %v", got, err)
	}
}

func TestBuildStepIndexValidation(t *testing.T) {
	if _, err := BuildStepIndex(map[string][]float64{
		"a": {1, 2}, "b": {1, 2, 3},
	}, nil, "id", IndexOptions{Bins: 4}); err == nil {
		t.Fatal("ragged columns accepted")
	}
	if _, err := BuildStepIndex(map[string][]float64{
		"a": {1, 2},
	}, []int64{1}, "id", IndexOptions{Bins: 4}); err == nil {
		t.Fatal("ragged id column accepted")
	}
	si, err := BuildStepIndex(nil, []int64{5, 6}, "id", IndexOptions{})
	if err != nil || si.N != 2 || si.ID == nil {
		t.Fatalf("ids-only step: %+v, %v", si, err)
	}
}

func TestEvaluatorPositionsSorted(t *testing.T) {
	si, mem, _ := buildTestStep(t, 2000, 29, IndexOptions{Bins: 16})
	ev := si.Evaluator(mem)
	pos, err := ev.Select(query.MustParse("px > 1e8 || y > 0"))
	if err != nil {
		t.Fatal(err)
	}
	if !sort.SliceIsSorted(pos, func(i, j int) bool { return pos[i] < pos[j] }) {
		t.Fatal("Select positions not sorted")
	}
}

func TestAndShortCircuitSkipsCandidateChecks(t *testing.T) {
	si, mem, _ := buildTestStep(t, 3000, 52, IndexOptions{Bins: 16})
	ev := si.Evaluator(mem)
	// The first term matches nothing (px beyond the data range); the
	// second would need a candidate check, but must never run.
	ix := si.Columns["px"]
	var cut float64
	for b := 0; b < ix.Bins(); b++ {
		if ix.BinMin[b] < ix.BinMax[b] {
			mid := (ix.BinMin[b] + ix.BinMax[b]) / 2
			if mid > ix.BinMin[b] && mid < ix.BinMax[b] {
				cut = mid
				break
			}
		}
	}
	e := &query.And{Terms: []query.Expr{
		&query.Compare{Var: "px", Op: query.GT, Value: ix.Max() + 1},
		&query.Compare{Var: "px", Op: query.GT, Value: cut},
	}}
	got, err := ev.Eval(e)
	if err != nil {
		t.Fatal(err)
	}
	if got.Count() != 0 {
		t.Fatalf("impossible conjunction matched %d", got.Count())
	}
	if got.Len() != si.N {
		t.Fatalf("short-circuit result has length %d, want %d", got.Len(), si.N)
	}
	if ev.Stats.CandidateChecks != 0 {
		t.Fatalf("short circuit still did %d candidate checks", ev.Stats.CandidateChecks)
	}
}
