package fastbit

import (
	"context"
	"fmt"
	"math"

	"repro/internal/bitmap"
	"repro/internal/histogram"
	"repro/internal/query"
)

// Index is a binned bitmap index over one column: Bounds partitions
// [min, max] into bins, and Bitmaps[i] marks the records whose value falls
// in bin i (the last bin includes its upper bound). Every record belongs
// to exactly one bin.
type Index struct {
	Name      string
	N         uint64
	Bounds    []float64 // len = bins+1
	Bitmaps   []*bitmap.Vector
	Precision int // >0 when built with precision boundaries

	// BinMin and BinMax record the actual smallest and largest value in
	// each bin (like FastBit's per-bin granule metadata). They let a
	// boundary bin be resolved exactly without a candidate check whenever
	// the query cut does not pass between the bin's actual values — in
	// particular, strict comparisons on exact bin boundaries. Empty bins
	// hold +Inf/-Inf.
	BinMin, BinMax []float64
}

// RawValues fetches raw column values at sorted record positions; it is
// how the index performs candidate checks against the base data.
type RawValues func(positions []uint64) ([]float64, error)

// BuildIndex constructs the bitmap index for a column. Out-of-range
// values cannot occur (bounds are derived from the data), and NaN values
// are rejected.
func BuildIndex(name string, values []float64, opt IndexOptions) (*Index, error) {
	bounds, err := boundsFor(values, opt)
	if err != nil {
		return nil, fmt.Errorf("fastbit: index %q: %w", name, err)
	}
	loc, err := histogram.NewLocator(bounds)
	if err != nil {
		return nil, fmt.Errorf("fastbit: index %q: %w", name, err)
	}
	nb := loc.Bins()
	ix := &Index{
		Name:      name,
		N:         uint64(len(values)),
		Bounds:    bounds,
		Bitmaps:   make([]*bitmap.Vector, nb),
		Precision: opt.Precision,
	}
	ix.BinMin = make([]float64, nb)
	ix.BinMax = make([]float64, nb)
	for i := range ix.Bitmaps {
		ix.Bitmaps[i] = bitmap.New(ix.N)
		ix.BinMin[i] = math.Inf(1)
		ix.BinMax[i] = math.Inf(-1)
	}
	// Streaming build: cursor[b] is the number of bits already appended to
	// bitmap b; append the gap of zeros, then the one.
	cursor := make([]uint64, nb)
	for row, v := range values {
		b := loc.Bin(v)
		if b < 0 { // clamp rounding stragglers to the nearest edge bin
			if v < bounds[0] {
				b = 0
			} else {
				b = nb - 1
			}
		}
		ix.Bitmaps[b].AppendRun(false, uint64(row)-cursor[b])
		ix.Bitmaps[b].AppendBit(true)
		cursor[b] = uint64(row) + 1
		if v < ix.BinMin[b] {
			ix.BinMin[b] = v
		}
		if v > ix.BinMax[b] {
			ix.BinMax[b] = v
		}
	}
	for b := range ix.Bitmaps {
		ix.Bitmaps[b].AppendRun(false, ix.N-cursor[b])
	}
	return ix, nil
}

// Bins returns the number of bins.
func (ix *Index) Bins() int { return len(ix.Bitmaps) }

// Min returns the smallest indexed value.
func (ix *Index) Min() float64 { return ix.Bounds[0] }

// Max returns the largest indexed value.
func (ix *Index) Max() float64 { return ix.Bounds[len(ix.Bounds)-1] }

// BinCounts returns the number of records per bin, read off the bitmaps.
func (ix *Index) BinCounts() []uint64 {
	out := make([]uint64, len(ix.Bitmaps))
	for i, bm := range ix.Bitmaps {
		out[i] = bm.Count()
	}
	return out
}

// SizeBytes returns the approximate compressed size of the index.
func (ix *Index) SizeBytes() int {
	s := 8 * len(ix.Bounds)
	for _, bm := range ix.Bitmaps {
		s += bm.SizeBytes()
	}
	return s
}

// EvalStats reports how a range evaluation was resolved. CandidateChecks
// counts records whose raw values had to be read; zero means the query
// was answered from the index alone (the case precision binning
// guarantees for low-precision constants).
type EvalStats struct {
	FullBins        int
	BoundaryBins    int
	CandidateChecks uint64
	// ApproxRows counts records admitted wholesale from boundary bins by
	// the approximate (index-only) evaluation path instead of being
	// candidate-checked; nonzero means the result is a superset.
	ApproxRows uint64
}

// Evaluate returns the bitmap of records whose value lies in iv. raw is
// consulted only for records in boundary bins; it may be nil when the
// interval is aligned with bin boundaries.
func (ix *Index) Evaluate(iv query.Interval, raw RawValues) (*bitmap.Vector, EvalStats, error) {
	return ix.EvaluateCtx(context.Background(), iv, raw)
}

// EvaluateCtx is Evaluate with cooperative cancellation: the candidate
// check loop observes ctx every checkpointRows records.
func (ix *Index) EvaluateCtx(ctx context.Context, iv query.Interval, raw RawValues) (*bitmap.Vector, EvalStats, error) {
	var st EvalStats
	nb := ix.Bins()
	min, max := ix.Min(), ix.Max()

	// Entirely outside the data range.
	if iv.Hi < min || (iv.Hi == min && iv.HiOpen) || iv.Lo > max || (iv.Lo == max && iv.LoOpen) {
		v := bitmap.New(ix.N)
		v.AppendRun(false, ix.N)
		return v, st, nil
	}
	// Entire data range covered.
	if iv.Contains(min) && iv.Contains(max) {
		v := bitmap.New(ix.N)
		v.AppendRun(true, ix.N)
		st.FullBins = nb
		return v, st, nil
	}

	var full []*bitmap.Vector
	var boundary []int
	for b := 0; b < nb; b++ {
		blo, bhi := ix.Bounds[b], ix.Bounds[b+1]
		last := b == nb-1
		if !binOverlaps(iv, blo, bhi, last) {
			continue
		}
		switch {
		case binInside(iv, blo, bhi, last):
			full = append(full, ix.Bitmaps[b])
		case ix.binResolvedByGranule(iv, b):
			// The bin's actual value range decides the bin without
			// touching raw data.
			if iv.Contains(ix.BinMin[b]) {
				full = append(full, ix.Bitmaps[b])
			}
			// Otherwise no actual value matches: skip the bin entirely.
		default:
			boundary = append(boundary, b)
		}
	}
	st.FullBins = len(full)
	st.BoundaryBins = len(boundary)

	result := bitmap.OrAll(full)
	if result.Len() == 0 {
		result = bitmap.New(ix.N)
		result.AppendRun(false, ix.N)
	}
	if len(boundary) == 0 {
		return result, st, nil
	}
	if raw == nil {
		return nil, st, fmt.Errorf("fastbit: %q: interval %v needs a candidate check but no raw reader was provided", ix.Name, iv)
	}
	cand := make([]*bitmap.Vector, len(boundary))
	for i, b := range boundary {
		cand[i] = ix.Bitmaps[b]
	}
	candBits := bitmap.OrAll(cand)
	positions := candBits.Positions()
	st.CandidateChecks = uint64(len(positions))
	values, err := raw(positions)
	if err != nil {
		return nil, st, fmt.Errorf("fastbit: %q: candidate check: %w", ix.Name, err)
	}
	hits := positions[:0]
	for i, p := range positions {
		if i&(checkpointRows-1) == 0 {
			if err := ctx.Err(); err != nil {
				return nil, st, err
			}
		}
		if iv.Contains(values[i]) {
			hits = append(hits, p)
		}
	}
	exact, err := bitmap.FromPositions(ix.N, hits)
	if err != nil {
		return nil, st, fmt.Errorf("fastbit: %q: %w", ix.Name, err)
	}
	return result.Or(exact), st, nil
}

// EvaluateApproxCtx is EvaluateCtx without candidate checks: boundary
// bins are included wholesale, so the returned bitmap is a superset of
// the exact answer and never touches the raw data. This is the server's
// brownout path — under overload a slightly-too-inclusive histogram now
// beats an exact one after the user has given up. st.ApproxRows reports
// how many records were admitted without being checked (0 means the
// result happens to be exact).
func (ix *Index) EvaluateApproxCtx(ctx context.Context, iv query.Interval) (*bitmap.Vector, EvalStats, error) {
	var st EvalStats
	if err := ctx.Err(); err != nil {
		return nil, st, err
	}
	nb := ix.Bins()
	min, max := ix.Min(), ix.Max()

	// The two trivial cases are exact even here.
	if iv.Hi < min || (iv.Hi == min && iv.HiOpen) || iv.Lo > max || (iv.Lo == max && iv.LoOpen) {
		v := bitmap.New(ix.N)
		v.AppendRun(false, ix.N)
		return v, st, nil
	}
	if iv.Contains(min) && iv.Contains(max) {
		v := bitmap.New(ix.N)
		v.AppendRun(true, ix.N)
		st.FullBins = nb
		return v, st, nil
	}

	var full []*bitmap.Vector
	for b := 0; b < nb; b++ {
		blo, bhi := ix.Bounds[b], ix.Bounds[b+1]
		last := b == nb-1
		if !binOverlaps(iv, blo, bhi, last) {
			continue
		}
		switch {
		case binInside(iv, blo, bhi, last):
			full = append(full, ix.Bitmaps[b])
			st.FullBins++
		case ix.binResolvedByGranule(iv, b):
			if iv.Contains(ix.BinMin[b]) {
				full = append(full, ix.Bitmaps[b])
				st.FullBins++
			}
		default:
			// Boundary bin: take it wholesale instead of checking raw values.
			full = append(full, ix.Bitmaps[b])
			st.BoundaryBins++
			st.ApproxRows += ix.Bitmaps[b].Count()
		}
	}
	result := bitmap.OrAll(full)
	if result.Len() == 0 {
		result = bitmap.New(ix.N)
		result.AppendRun(false, ix.N)
	}
	return result, st, nil
}

// binResolvedByGranule reports whether bin b's actual min/max values
// decide the bin's membership wholesale: either every actual value lies in
// iv or none does. Empty bins (min=+Inf) are trivially resolved.
func (ix *Index) binResolvedByGranule(iv query.Interval, b int) bool {
	if ix.BinMin == nil || ix.BinMax == nil {
		return false
	}
	lo, hi := ix.BinMin[b], ix.BinMax[b]
	if lo > hi { // empty bin
		return true
	}
	allIn := iv.Contains(lo) && iv.Contains(hi)
	noneIn := hi < iv.Lo || (hi == iv.Lo && iv.LoOpen) ||
		lo > iv.Hi || (lo == iv.Hi && iv.HiOpen)
	return allIn || noneIn
}

// binOverlaps reports whether bin [blo, bhi) (closed at bhi for the last
// bin) intersects iv.
func binOverlaps(iv query.Interval, blo, bhi float64, last bool) bool {
	// Bin is below the interval.
	if bhi < iv.Lo {
		return false
	}
	if bhi == iv.Lo && !last {
		// Bin excludes bhi, interval starts at or above it.
		return false
	}
	if bhi == iv.Lo && last {
		return iv.Contains(bhi)
	}
	// Bin is above the interval.
	if blo > iv.Hi || (blo == iv.Hi && (iv.HiOpen || blo == bhi)) {
		return false
	}
	if blo == iv.Hi {
		return iv.Contains(blo)
	}
	return true
}

// binInside reports whether every value that can fall in the bin is
// contained in iv.
func binInside(iv query.Interval, blo, bhi float64, last bool) bool {
	if !iv.Contains(blo) {
		return false
	}
	if last {
		return iv.Contains(bhi)
	}
	// Bin holds values in [blo, bhi); it is inside when bhi <= iv.Hi, or
	// bhi == iv.Hi with any openness (the bin never produces bhi itself).
	return bhi < iv.Hi || bhi == iv.Hi
}

// AlignedEdges reports whether every edge is (within floating point
// tolerance) one of the index's bin boundaries, meaning histograms over
// these edges can be computed from bitmap counts alone.
func (ix *Index) AlignedEdges(edges []float64) bool {
	bi := 0
	for _, e := range edges {
		for bi < len(ix.Bounds) && ix.Bounds[bi] < e && !eq(ix.Bounds[bi], e) {
			bi++
		}
		if bi >= len(ix.Bounds) || !eq(ix.Bounds[bi], e) {
			return false
		}
	}
	return true
}

func eq(a, b float64) bool {
	if a == b {
		return true
	}
	d := math.Abs(a - b)
	return d <= 1e-12*(math.Abs(a)+math.Abs(b))
}
