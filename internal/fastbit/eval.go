package fastbit

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strconv"
	"time"

	"repro/internal/bitmap"
	"repro/internal/obs"
	"repro/internal/query"
)

// checkpointRows is the cancellation checkpoint interval of the candidate
// check loops: ctx is tested once every checkpointRows records.
const checkpointRows = 64 * 1024

// RawReader provides access to the base data for candidate checks and for
// the value-gather step of conditional histograms.
type RawReader interface {
	// ValuesAt returns the values of a column at sorted record positions.
	ValuesAt(name string, positions []uint64) ([]float64, error)
	// Column returns the whole column.
	Column(name string) ([]float64, error)
}

// MemReader is a RawReader over in-memory columns, used by tests and by
// code paths that already hold the data.
type MemReader map[string][]float64

// ValuesAt implements RawReader.
func (m MemReader) ValuesAt(name string, positions []uint64) ([]float64, error) {
	col, ok := m[name]
	if !ok {
		return nil, fmt.Errorf("fastbit: no column %q", name)
	}
	out := make([]float64, len(positions))
	for i, p := range positions {
		if p >= uint64(len(col)) {
			return nil, fmt.Errorf("fastbit: position %d out of range %d", p, len(col))
		}
		out[i] = col[p]
	}
	return out, nil
}

// Column implements RawReader.
func (m MemReader) Column(name string) ([]float64, error) {
	col, ok := m[name]
	if !ok {
		return nil, fmt.Errorf("fastbit: no column %q", name)
	}
	return col, nil
}

// Evaluator resolves query expressions to record bitmaps using the
// per-column indexes, consulting the raw reader only for boundary bins.
// Indexes may be provided statically (Indexes, IDIdx) or on demand
// (LookupIndex, LookupID — used with lazily loaded index files).
type Evaluator struct {
	N       uint64
	Indexes map[string]*Index
	// LookupIndex, when set, resolves indexes not found in Indexes.
	LookupIndex func(name string) (*Index, error)
	// IDVar names the identifier column served by the ID index.
	IDVar string
	IDIdx *IDIndex
	// LookupID, when set, resolves the ID index on first use.
	LookupID func() (*IDIndex, error)
	Raw      RawReader

	// Approx switches evaluation to the index-only approximate path:
	// boundary bins are admitted wholesale instead of candidate-checked,
	// yielding a superset bitmap without touching raw data. Set before the
	// first Eval call; Stats.ApproxRows reports the unchecked admissions.
	Approx bool

	// Stats accumulates candidate-check work across Eval calls.
	Stats EvalStats

	// Cost, when set, receives per-query charges (bitmap ORs, candidate
	// checks, approx admissions) for the explain surface. Nil-safe.
	Cost *obs.Cost
}

// index resolves the range index for a variable.
func (ev *Evaluator) index(name string) (*Index, error) {
	if ix, ok := ev.Indexes[name]; ok {
		return ix, nil
	}
	if ev.LookupIndex != nil {
		return ev.LookupIndex(name)
	}
	return nil, fmt.Errorf("fastbit: no index for variable %q", name)
}

// idIndex resolves the identifier index, or nil when unavailable.
func (ev *Evaluator) idIndex() *IDIndex {
	if ev.IDIdx != nil {
		return ev.IDIdx
	}
	if ev.LookupID != nil {
		if id, err := ev.LookupID(); err == nil {
			ev.IDIdx = id
			return id
		}
	}
	return nil
}

// Eval computes the bitmap of records matching e.
func (ev *Evaluator) Eval(e query.Expr) (*bitmap.Vector, error) {
	return ev.EvalCtx(context.Background(), e)
}

// EvalCtx is Eval with cooperative cancellation: ctx is observed between
// boolean terms and inside candidate-check loops, so a canceled query
// stops within one checkpoint interval. Each top-level evaluation records
// one "bitmap-eval" span and feeds the fastbit_* instruments.
func (ev *Evaluator) EvalCtx(ctx context.Context, e query.Expr) (*bitmap.Vector, error) {
	ctx, sp := obs.StartSpan(ctx, "bitmap-eval")
	start := time.Now()
	statsBefore := ev.Stats
	v, err := ev.evalCtx(ctx, e)
	metricEvalSeconds.ObserveSince(start)
	metricEvals.Inc()
	metricEvalRows.Add(ev.N)
	checks := ev.Stats.CandidateChecks - statsBefore.CandidateChecks
	metricCandidateChecks.Add(checks)
	ev.Cost.AddCandidateChecks(checks)
	ev.Cost.AddBitmapOps(uint64((ev.Stats.FullBins - statsBefore.FullBins) +
		(ev.Stats.BoundaryBins - statsBefore.BoundaryBins)))
	ev.Cost.AddApproxRows(ev.Stats.ApproxRows - statsBefore.ApproxRows)
	if sp != nil {
		sp.SetAttr("rows", strconv.FormatUint(ev.N, 10))
		sp.SetAttr("candidate_checks", strconv.FormatUint(checks, 10))
		if v != nil {
			sp.SetAttr("hits", strconv.FormatUint(v.Count(), 10))
		}
		sp.End()
	}
	return v, err
}

// evalCtx is the recursive evaluation body behind EvalCtx.
func (ev *Evaluator) evalCtx(ctx context.Context, e query.Expr) (*bitmap.Vector, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	switch t := e.(type) {
	case *query.Compare:
		return ev.evalCompare(ctx, t)
	case *query.In:
		return ev.evalIn(ctx, t)
	case *query.And:
		return ev.evalAnd(ctx, t.Terms)
	case *query.Or:
		return ev.evalNary(ctx, t.Terms, func(a, b *bitmap.Vector) *bitmap.Vector { return a.Or(b) })
	case *query.Not:
		inner, err := ev.evalCtx(ctx, t.Term)
		if err != nil {
			return nil, err
		}
		return inner.Not(), nil
	default:
		return nil, fmt.Errorf("fastbit: unsupported expression %T", e)
	}
}

// evalAnd evaluates a conjunction with an empty-result short circuit:
// once the running intersection has no bits set, the remaining terms'
// bitmaps (and especially their candidate checks) are never computed.
func (ev *Evaluator) evalAnd(ctx context.Context, terms []query.Expr) (*bitmap.Vector, error) {
	if len(terms) == 0 {
		return nil, fmt.Errorf("fastbit: empty boolean term list")
	}
	var acc *bitmap.Vector
	for _, t := range terms {
		v, err := ev.evalCtx(ctx, t)
		if err != nil {
			return nil, err
		}
		if acc == nil {
			acc = v
		} else {
			acc = acc.And(v)
		}
		if acc.Count() == 0 {
			// Preserve the full record length for downstream ops.
			empty := bitmap.New(ev.N)
			empty.AppendRun(false, ev.N)
			return empty, nil
		}
	}
	return acc, nil
}

func (ev *Evaluator) evalNary(ctx context.Context, terms []query.Expr, combine func(a, b *bitmap.Vector) *bitmap.Vector) (*bitmap.Vector, error) {
	var acc *bitmap.Vector
	for _, t := range terms {
		v, err := ev.evalCtx(ctx, t)
		if err != nil {
			return nil, err
		}
		if acc == nil {
			acc = v
		} else {
			acc = combine(acc, v)
		}
	}
	if acc == nil {
		return nil, fmt.Errorf("fastbit: empty boolean term list")
	}
	return acc, nil
}

func (ev *Evaluator) evalCompare(ctx context.Context, c *query.Compare) (*bitmap.Vector, error) {
	_, lsp := obs.StartSpan(ctx, "index-load")
	lsp.SetAttr("var", c.Var)
	ix, err := ev.index(c.Var)
	lsp.End()
	if err != nil {
		return nil, err
	}
	if c.Op == query.NE {
		eqv, err := ev.evalCompare(ctx, &query.Compare{Var: c.Var, Op: query.EQ, Value: c.Value})
		if err != nil {
			return nil, err
		}
		return eqv.Not(), nil
	}
	iv, ok := query.CompareInterval(c)
	if !ok {
		return nil, fmt.Errorf("fastbit: cannot evaluate operator %v", c.Op)
	}
	cctx, csp := obs.StartSpan(ctx, "candidate-check")
	csp.SetAttr("var", c.Var)
	var (
		v  *bitmap.Vector
		st EvalStats
	)
	if ev.Approx {
		v, st, err = ix.EvaluateApproxCtx(cctx, iv)
	} else {
		v, st, err = ix.EvaluateCtx(cctx, iv, ev.rawFor(c.Var))
	}
	if csp != nil {
		csp.SetAttr("checks", strconv.FormatUint(st.CandidateChecks, 10))
		csp.End()
	}
	ev.accumulate(st)
	return v, err
}

// evalIn resolves a membership condition. The identifier column uses the
// dedicated ID index; any other variable is resolved through its range
// index with a single grouped candidate check.
func (ev *Evaluator) evalIn(ctx context.Context, in *query.In) (*bitmap.Vector, error) {
	if in.Var == ev.IDVar {
		if idIdx := ev.idIndex(); idIdx != nil {
			ids := make([]int64, len(in.Values))
			for i, v := range in.Values {
				ids[i] = int64(v)
			}
			pos := idIdx.Lookup(ids)
			return bitmap.FromPositions(ev.N, pos)
		}
	}
	ix, err := ev.index(in.Var)
	if err != nil {
		return nil, err
	}
	// Gather the candidate bins holding any of the wanted values, check
	// raw values once.
	binsWanted := map[int]bool{}
	for _, v := range in.Values {
		if v < ix.Min() || v > ix.Max() {
			continue
		}
		b := sort.SearchFloat64s(ix.Bounds, v)
		if b < len(ix.Bounds) && ix.Bounds[b] == v {
			// Value on a boundary can fall in the bin above it, or is the
			// top of the last bin.
			if b < ix.Bins() {
				binsWanted[b] = true
			}
			if b == len(ix.Bounds)-1 {
				binsWanted[ix.Bins()-1] = true
			}
		} else if b > 0 {
			binsWanted[b-1] = true
		}
	}
	if len(binsWanted) == 0 {
		v := bitmap.New(ev.N)
		v.AppendRun(false, ev.N)
		return v, nil
	}
	cand := make([]*bitmap.Vector, 0, len(binsWanted))
	for b := range binsWanted {
		cand = append(cand, ix.Bitmaps[b])
	}
	if ev.Approx {
		// Index-only: every record in a candidate bin is admitted wholesale.
		v := bitmap.OrAll(cand)
		if v.Len() == 0 {
			v = bitmap.New(ev.N)
			v.AppendRun(false, ev.N)
		}
		ev.Stats.ApproxRows += v.Count()
		return v, nil
	}
	positions := bitmap.OrAll(cand).Positions()
	ev.Stats.CandidateChecks += uint64(len(positions))
	values, err := ev.rawFor(in.Var)(positions)
	if err != nil {
		return nil, err
	}
	hits := positions[:0]
	for i, p := range positions {
		if i&(checkpointRows-1) == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		if in.Contains(values[i]) {
			hits = append(hits, p)
		}
	}
	return bitmap.FromPositions(ev.N, hits)
}

func (ev *Evaluator) rawFor(name string) RawValues {
	if ev.Raw == nil {
		return nil
	}
	return func(positions []uint64) ([]float64, error) {
		return ev.Raw.ValuesAt(name, positions)
	}
}

func (ev *Evaluator) accumulate(st EvalStats) {
	ev.Stats.FullBins += st.FullBins
	ev.Stats.BoundaryBins += st.BoundaryBins
	ev.Stats.CandidateChecks += st.CandidateChecks
	ev.Stats.ApproxRows += st.ApproxRows
}

// Count returns the number of records matching e.
func (ev *Evaluator) Count(e query.Expr) (uint64, error) {
	return ev.CountCtx(context.Background(), e)
}

// CountCtx is Count with cooperative cancellation.
func (ev *Evaluator) CountCtx(ctx context.Context, e query.Expr) (uint64, error) {
	v, err := ev.EvalCtx(ctx, e)
	if err != nil {
		return 0, err
	}
	return v.Count(), nil
}

// Select returns the sorted record positions matching e.
func (ev *Evaluator) Select(e query.Expr) ([]uint64, error) {
	return ev.SelectCtx(context.Background(), e)
}

// SelectCtx is Select with cooperative cancellation.
func (ev *Evaluator) SelectCtx(ctx context.Context, e query.Expr) ([]uint64, error) {
	v, err := ev.EvalCtx(ctx, e)
	if err != nil {
		return nil, err
	}
	return v.Positions(), nil
}

// SelectIDs returns the identifiers of records matching e, read from the
// identifier column at the matching positions.
func (ev *Evaluator) SelectIDs(e query.Expr) ([]int64, error) {
	return ev.SelectIDsCtx(context.Background(), e)
}

// SelectIDsCtx is SelectIDs with cooperative cancellation.
func (ev *Evaluator) SelectIDsCtx(ctx context.Context, e query.Expr) ([]int64, error) {
	pos, err := ev.SelectCtx(ctx, e)
	if err != nil {
		return nil, err
	}
	if ev.Raw == nil {
		return nil, fmt.Errorf("fastbit: SelectIDs requires a raw reader")
	}
	vals, err := ev.Raw.ValuesAt(ev.IDVar, pos)
	if err != nil {
		return nil, err
	}
	out := make([]int64, len(vals))
	for i, v := range vals {
		if v != math.Trunc(v) {
			return nil, fmt.Errorf("fastbit: non-integer identifier %g", v)
		}
		out[i] = int64(v)
	}
	return out, nil
}
