package fastbit

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/bitmap"
)

// ErrCorrupt marks index files whose bytes fail validation — truncated
// sections or CRC mismatches. Callers can test for it with errors.Is and
// degrade to a scan backend instead of failing the timestep.
var ErrCorrupt = errors.New("index corrupt")

// StepIndex bundles all index structures for one timestep: a range index
// per indexed variable plus the identifier index. It corresponds to the
// per-timestep FastBit index data the paper stores next to each HDF5 file
// (~2 GB of index per 7 GB timestep in their 3D dataset).
//
// The on-disk format carries a section directory so that readers can load
// a single column's index (or just the identifier index) without touching
// the rest — FastBit likewise reads only the bitmaps a query needs.
type StepIndex struct {
	N       uint64
	Columns map[string]*Index
	IDVar   string
	ID      *IDIndex
}

// BuildStepIndex indexes the given float columns and, when ids is
// non-nil, builds the identifier index under idVar.
func BuildStepIndex(cols map[string][]float64, ids []int64, idVar string, opt IndexOptions) (*StepIndex, error) {
	si := &StepIndex{Columns: map[string]*Index{}, IDVar: idVar}
	first := true
	for name, values := range cols {
		if first {
			si.N = uint64(len(values))
			first = false
		} else if uint64(len(values)) != si.N {
			return nil, fmt.Errorf("fastbit: column %q has %d rows, expected %d", name, len(values), si.N)
		}
		ix, err := BuildIndex(name, values, opt)
		if err != nil {
			return nil, err
		}
		si.Columns[name] = ix
	}
	if ids != nil {
		if first {
			si.N = uint64(len(ids))
		} else if uint64(len(ids)) != si.N {
			return nil, fmt.Errorf("fastbit: id column has %d rows, expected %d", len(ids), si.N)
		}
		si.ID = BuildIDIndex(ids)
	}
	return si, nil
}

// Evaluator returns a query evaluator over this step backed by raw.
func (si *StepIndex) Evaluator(raw RawReader) *Evaluator {
	return &Evaluator{
		N:       si.N,
		Indexes: si.Columns,
		IDVar:   si.IDVar,
		IDIdx:   si.ID,
		Raw:     raw,
	}
}

// SizeBytes returns the approximate total index size.
func (si *StepIndex) SizeBytes() int {
	s := 0
	for _, ix := range si.Columns {
		s += ix.SizeBytes()
	}
	if si.ID != nil {
		s += si.ID.SizeBytes()
	}
	return s
}

var indexMagic = [4]byte{'L', 'W', 'I', 'X'}

const indexVersion = 3

// File layout (little-endian):
//
//	"LWIX" magic, u32 version, u64 N
//	u32 ncols; per column: string name, u64 offset, u64 size, u32 crc
//	u32 hasID; when 1: string idVar, u64 offset, u64 size, u32 crc
//	column sections…, id section
//
// Offsets are absolute file positions. The per-section crc (CRC-32/IEEE of
// the section bytes, added in version 3) lets readers detect bit flips
// before decoding; version-2 files are still read, with crc checks skipped.
// A crc of 0 means "not recorded".

// encodeColumn serializes one column index section.
func encodeColumn(ix *Index) []byte {
	var buf bytes.Buffer
	writeU32(&buf, uint32(ix.Precision))
	writeU32(&buf, uint32(len(ix.Bounds)))
	for _, b := range ix.Bounds {
		writeU64(&buf, math.Float64bits(b))
	}
	for _, v := range ix.BinMin {
		writeU64(&buf, math.Float64bits(v))
	}
	for _, v := range ix.BinMax {
		writeU64(&buf, math.Float64bits(v))
	}
	writeU32(&buf, uint32(len(ix.Bitmaps)))
	for _, bm := range ix.Bitmaps {
		bm.WriteTo(&buf) //nolint:errcheck // bytes.Buffer cannot fail
	}
	return buf.Bytes()
}

// decodeColumn deserializes one column index section.
func decodeColumn(name string, n uint64, data []byte) (*Index, error) {
	r := bufio.NewReader(bytes.NewReader(data))
	prec, err := readU32(r)
	if err != nil {
		return nil, err
	}
	nbounds, err := readU32(r)
	if err != nil {
		return nil, err
	}
	if nbounds < 2 || nbounds > 1<<22 {
		return nil, fmt.Errorf("fastbit: index %q: implausible bound count %d", name, nbounds)
	}
	// The section must be large enough for its fixed-size arrays.
	if need := 8 + 24*(uint64(nbounds)-1) + 8; uint64(len(data)) < need {
		return nil, fmt.Errorf("fastbit: index %q: section %d bytes, need at least %d", name, len(data), need)
	}
	ix := &Index{Name: name, N: n, Precision: int(prec)}
	ix.Bounds = make([]float64, nbounds)
	for i := range ix.Bounds {
		u, err := readU64(r)
		if err != nil {
			return nil, err
		}
		ix.Bounds[i] = math.Float64frombits(u)
	}
	ix.BinMin = make([]float64, nbounds-1)
	ix.BinMax = make([]float64, nbounds-1)
	for i := range ix.BinMin {
		u, err := readU64(r)
		if err != nil {
			return nil, err
		}
		ix.BinMin[i] = math.Float64frombits(u)
	}
	for i := range ix.BinMax {
		u, err := readU64(r)
		if err != nil {
			return nil, err
		}
		ix.BinMax[i] = math.Float64frombits(u)
	}
	nbm, err := readU32(r)
	if err != nil {
		return nil, err
	}
	if uint64(nbm)+1 != uint64(nbounds) {
		return nil, fmt.Errorf("fastbit: index %q: %d bitmaps for %d bounds", name, nbm, nbounds)
	}
	for i := uint32(0); i < nbm; i++ {
		bm := new(bitmap.Vector)
		if _, err := bm.ReadFrom(r); err != nil {
			return nil, fmt.Errorf("fastbit: index %q bitmap %d: %w", name, i, err)
		}
		ix.Bitmaps = append(ix.Bitmaps, bm)
	}
	return ix, nil
}

// encodeIDIndex serializes the identifier index section.
func encodeIDIndex(id *IDIndex) []byte {
	var buf bytes.Buffer
	writeU64(&buf, uint64(len(id.ids)))
	for _, v := range id.ids {
		writeU64(&buf, uint64(v))
	}
	for _, p := range id.pos {
		writeU64(&buf, p)
	}
	return buf.Bytes()
}

// decodeIDIndex deserializes the identifier index section with direct
// little-endian slice access (the section is hot on the tracking path).
func decodeIDIndex(n uint64, data []byte) (*IDIndex, error) {
	if len(data) < 8 {
		return nil, fmt.Errorf("fastbit: id index section truncated")
	}
	cnt := binary.LittleEndian.Uint64(data)
	if uint64(len(data)) < 8+16*cnt {
		return nil, fmt.Errorf("fastbit: id index section holds %d bytes for %d entries", len(data), cnt)
	}
	id := &IDIndex{ids: make([]int64, cnt), pos: make([]uint64, cnt), n: n}
	ids := data[8 : 8+8*cnt]
	pos := data[8+8*cnt : 8+16*cnt]
	for i := range id.ids {
		id.ids[i] = int64(binary.LittleEndian.Uint64(ids[8*i:]))
	}
	for i := range id.pos {
		id.pos[i] = binary.LittleEndian.Uint64(pos[8*i:])
	}
	return id, nil
}

// WriteTo serializes the step index with its section directory.
func (si *StepIndex) WriteTo(w io.Writer) (int64, error) {
	names := make([]string, 0, len(si.Columns))
	for name := range si.Columns {
		names = append(names, name)
	}
	sort.Strings(names)

	sections := make([][]byte, 0, len(names)+1)
	var header bytes.Buffer
	header.Write(indexMagic[:])
	writeU32(&header, indexVersion)
	writeU64(&header, si.N)
	writeU32(&header, uint32(len(names)))

	// First pass: compute the header size so offsets are absolute.
	headerSize := header.Len()
	for _, name := range names {
		headerSize += 4 + len(name) + 20
	}
	headerSize += 4 // hasID
	if si.ID != nil {
		headerSize += 4 + len(si.IDVar) + 20
	}

	offset := uint64(headerSize)
	for _, name := range names {
		blob := encodeColumn(si.Columns[name])
		writeString(&header, name)
		writeU64(&header, offset)
		writeU64(&header, uint64(len(blob)))
		writeU32(&header, crc32.ChecksumIEEE(blob))
		sections = append(sections, blob)
		offset += uint64(len(blob))
	}
	if si.ID != nil {
		blob := encodeIDIndex(si.ID)
		writeU32(&header, 1)
		writeString(&header, si.IDVar)
		writeU64(&header, offset)
		writeU64(&header, uint64(len(blob)))
		writeU32(&header, crc32.ChecksumIEEE(blob))
		sections = append(sections, blob)
	} else {
		writeU32(&header, 0)
	}
	if header.Len() != headerSize {
		return 0, fmt.Errorf("fastbit: internal error: header size %d != computed %d", header.Len(), headerSize)
	}

	var written int64
	n, err := w.Write(header.Bytes())
	written += int64(n)
	if err != nil {
		return written, err
	}
	for _, blob := range sections {
		n, err := w.Write(blob)
		written += int64(n)
		if err != nil {
			return written, err
		}
	}
	return written, nil
}

// section locates one directory entry. crc is the CRC-32/IEEE of the
// section bytes; 0 means not recorded (version-2 files).
type section struct {
	offset uint64
	size   uint64
	crc    uint32
}

// verify checks blob against the recorded checksum.
func (s section) verify(what string, blob []byte) error {
	if s.crc == 0 {
		return nil
	}
	if got := crc32.ChecksumIEEE(blob); got != s.crc {
		return fmt.Errorf("fastbit: section %s: crc %08x, want %08x: %w", what, got, s.crc, ErrCorrupt)
	}
	return nil
}

// directory is the parsed index file header.
type directory struct {
	n     uint64
	cols  map[string]section
	order []string
	idVar string
	idSec section
	hasID bool
}

func readDirectory(r io.Reader) (*directory, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("fastbit: read index magic: %w", err)
	}
	if magic != indexMagic {
		return nil, fmt.Errorf("fastbit: bad index magic %q: %w", magic[:], ErrCorrupt)
	}
	ver, err := readU32(br)
	if err != nil {
		return nil, err
	}
	if ver != 2 && ver != indexVersion {
		return nil, fmt.Errorf("fastbit: unsupported index version %d", ver)
	}
	d := &directory{cols: map[string]section{}}
	if d.n, err = readU64(br); err != nil {
		return nil, err
	}
	ncols, err := readU32(br)
	if err != nil {
		return nil, err
	}
	for i := uint32(0); i < ncols; i++ {
		name, err := readString(br)
		if err != nil {
			return nil, err
		}
		off, err := readU64(br)
		if err != nil {
			return nil, err
		}
		size, err := readU64(br)
		if err != nil {
			return nil, err
		}
		var crc uint32
		if ver >= 3 {
			if crc, err = readU32(br); err != nil {
				return nil, err
			}
		}
		d.cols[name] = section{off, size, crc}
		d.order = append(d.order, name)
	}
	hasID, err := readU32(br)
	if err != nil {
		return nil, err
	}
	if hasID == 1 {
		d.hasID = true
		if d.idVar, err = readString(br); err != nil {
			return nil, err
		}
		if d.idSec.offset, err = readU64(br); err != nil {
			return nil, err
		}
		if d.idSec.size, err = readU64(br); err != nil {
			return nil, err
		}
		if ver >= 3 {
			if d.idSec.crc, err = readU32(br); err != nil {
				return nil, err
			}
		}
	}
	return d, nil
}

// validate checks every directory section against the actual file size, so
// a truncated index file is rejected at open time rather than when a query
// first touches the missing tail.
func (d *directory) validate(fileSize int64) error {
	for name, sec := range d.cols {
		if sec.offset+sec.size > uint64(fileSize) {
			return fmt.Errorf("fastbit: truncated: section %q [%d,+%d) beyond file size %d: %w",
				name, sec.offset, sec.size, fileSize, ErrCorrupt)
		}
	}
	if d.hasID && d.idSec.offset+d.idSec.size > uint64(fileSize) {
		return fmt.Errorf("fastbit: truncated: id section [%d,+%d) beyond file size %d: %w",
			d.idSec.offset, d.idSec.size, fileSize, ErrCorrupt)
	}
	return nil
}

// ReadStepIndex deserializes a step index eagerly (all sections loaded).
func ReadStepIndex(r io.Reader) (*StepIndex, error) {
	// Buffer the whole stream, then use the directory to slice sections.
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("fastbit: read index: %w", err)
	}
	d, err := readDirectory(bytes.NewReader(data))
	if err != nil {
		return nil, err
	}
	si := &StepIndex{N: d.n, Columns: map[string]*Index{}, IDVar: d.idVar}
	for _, name := range d.order {
		sec := d.cols[name]
		if sec.offset+sec.size > uint64(len(data)) {
			return nil, fmt.Errorf("fastbit: index section %q out of range", name)
		}
		blob := data[sec.offset : sec.offset+sec.size]
		if err := sec.verify(fmt.Sprintf("%q", name), blob); err != nil {
			return nil, err
		}
		ix, err := decodeColumn(name, d.n, blob)
		if err != nil {
			return nil, err
		}
		si.Columns[name] = ix
	}
	if d.hasID {
		if d.idSec.offset+d.idSec.size > uint64(len(data)) {
			return nil, fmt.Errorf("fastbit: id index section out of range")
		}
		blob := data[d.idSec.offset : d.idSec.offset+d.idSec.size]
		if err := d.idSec.verify("id", blob); err != nil {
			return nil, err
		}
		id, err := decodeIDIndex(d.n, blob)
		if err != nil {
			return nil, err
		}
		si.ID = id
	}
	return si, nil
}

// WriteFile writes the step index to a file atomically: the bytes go to a
// temp file in the same directory, which is fsynced and then renamed over
// the destination. A crash at any point leaves either the old file or no
// file — never a partial index (the corruption the graceful-degradation
// path in fastquery exists to survive, but better never to create).
func (si *StepIndex) WriteFile(path string) error {
	return atomicWrite(path, func(w io.Writer) error {
		_, err := si.WriteTo(w)
		return err
	})
}

// atomicWrite streams content to a temp file next to path, fsyncs it, and
// renames it into place. The temp file is removed on any failure.
func atomicWrite(path string, write func(io.Writer) error) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("fastbit: %w", err)
	}
	defer func() {
		if tmp != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	bw := bufio.NewWriter(tmp)
	if err := write(bw); err != nil {
		return fmt.Errorf("fastbit: write index: %w", err)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("fastbit: write index: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		return fmt.Errorf("fastbit: sync index: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("fastbit: close index: %w", err)
	}
	name := tmp.Name()
	tmp = nil // disarm cleanup: only the rename remains
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return fmt.Errorf("fastbit: rename index: %w", err)
	}
	// Persist the rename itself so a crash cannot roll it back.
	if d, err := os.Open(dir); err == nil {
		d.Sync() //nolint:errcheck // advisory: rename is already visible
		d.Close()
	}
	return nil
}

// ReadFile reads a step index from a file eagerly.
func ReadFile(path string) (*StepIndex, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("fastbit: %w", err)
	}
	defer f.Close()
	return ReadStepIndex(f)
}

func writeU32(w io.Writer, v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	w.Write(b[:]) //nolint:errcheck // buffered writers report errors later
}

func writeU64(w io.Writer, v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	w.Write(b[:]) //nolint:errcheck
}

func writeString(w io.Writer, s string) {
	writeU32(w, uint32(len(s)))
	io.WriteString(w, s) //nolint:errcheck
}

func readU32(r io.Reader) (uint32, error) {
	var b [4]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, fmt.Errorf("fastbit: short read: %w", err)
	}
	return binary.LittleEndian.Uint32(b[:]), nil
}

func readU64(r io.Reader) (uint64, error) {
	var b [8]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, fmt.Errorf("fastbit: short read: %w", err)
	}
	return binary.LittleEndian.Uint64(b[:]), nil
}

func readString(r io.Reader) (string, error) {
	n, err := readU32(r)
	if err != nil {
		return "", err
	}
	if n > 1<<16 {
		return "", fmt.Errorf("fastbit: unreasonable string length %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", fmt.Errorf("fastbit: short read: %w", err)
	}
	return string(buf), nil
}
