package pcoords

import (
	"image/color"
	"math/rand"
	"testing"

	"repro/internal/histogram"
)

var (
	green = color.RGBA{80, 220, 120, 255}
	red   = color.RGBA{230, 60, 60, 255}
)

func testAxes() []Axis {
	return []Axis{
		{Var: "x", Min: 0, Max: 1},
		{Var: "px", Min: -1, Max: 1},
		{Var: "y", Min: 0, Max: 10},
	}
}

// testValues builds correlated columns for the test axes.
func testValues(n int, seed int64) map[string][]float64 {
	rng := rand.New(rand.NewSource(seed))
	xs := make([]float64, n)
	pxs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = rng.Float64()
		pxs[i] = 2*xs[i] - 1 + 0.1*rng.NormFloat64()
		ys[i] = 5 + 4*pxs[i] + 0.5*rng.NormFloat64()
	}
	return map[string][]float64{"x": xs, "px": pxs, "y": ys}
}

// pairHists builds per-pair histograms matching the test axes.
func pairHists(t *testing.T, vals map[string][]float64, axes []Axis, bins int) []*histogram.Hist2D {
	t.Helper()
	out := make([]*histogram.Hist2D, len(axes)-1)
	for i := 0; i < len(axes)-1; i++ {
		a, b := axes[i], axes[i+1]
		h, err := histogram.Compute2D(a.Var, b.Var, vals[a.Var], vals[b.Var],
			histogram.UniformEdges(a.Min, a.Max, bins),
			histogram.UniformEdges(b.Min, b.Max, bins))
		if err != nil {
			t.Fatal(err)
		}
		out[i] = h
	}
	return out
}

func TestNewValidation(t *testing.T) {
	if _, err := New([]Axis{{Var: "x", Min: 0, Max: 1}}, DefaultOptions()); err == nil {
		t.Fatal("single axis accepted")
	}
	bad := testAxes()
	bad[1].Max = bad[1].Min
	if _, err := New(bad, DefaultOptions()); err == nil {
		t.Fatal("empty axis range accepted")
	}
	opt := DefaultOptions()
	opt.Width = 5
	if _, err := New(testAxes(), opt); err == nil {
		t.Fatal("tiny canvas accepted")
	}
	opt = DefaultOptions()
	opt.Gamma = -1
	if _, err := New(testAxes(), opt); err == nil {
		t.Fatal("negative gamma accepted")
	}
}

func TestHistLayerValidation(t *testing.T) {
	p, err := New(testAxes(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	vals := testValues(500, 1)
	hists := pairHists(t, vals, testAxes(), 16)
	if err := p.AddHistLayer(&HistLayer{Hists: hists[:1], Color: green}); err == nil {
		t.Fatal("wrong histogram count accepted")
	}
	swapped := []*histogram.Hist2D{hists[1], hists[0]}
	if err := p.AddHistLayer(&HistLayer{Hists: swapped, Color: green}); err == nil {
		t.Fatal("mismatched variables accepted")
	}
	if err := p.AddHistLayer(&HistLayer{Hists: []*histogram.Hist2D{nil, nil}, Color: green}); err == nil {
		t.Fatal("nil histogram accepted")
	}
	if err := p.AddHistLayer(&HistLayer{Hists: hists, Color: green}); err != nil {
		t.Fatal(err)
	}
}

func TestRenderHistogramPlot(t *testing.T) {
	p, err := New(testAxes(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	vals := testValues(2000, 2)
	if err := p.AddHistLayer(&HistLayer{Hists: pairHists(t, vals, testAxes(), 32), Color: green}); err != nil {
		t.Fatal(err)
	}
	c, err := p.Render()
	if err != nil {
		t.Fatal(err)
	}
	// The positively correlated data must light pixels between the axes.
	var lit int
	w, h := c.Size()
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			px := c.At(x, y)
			if px.G > 100 && px.G > px.R {
				lit++
			}
		}
	}
	if lit < 500 {
		t.Fatalf("histogram plot lit only %d greenish pixels", lit)
	}
}

func TestGammaCullsSparseBins(t *testing.T) {
	axes := testAxes()
	vals := testValues(3000, 3)
	countLit := func(gamma float64) int {
		p, err := New(axes, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		if err := p.AddHistLayer(&HistLayer{
			Hists: pairHists(t, vals, axes, 32),
			Color: green,
			Gamma: gamma,
		}); err != nil {
			t.Fatal(err)
		}
		c, err := p.Render()
		if err != nil {
			t.Fatal(err)
		}
		var lit int
		w, h := c.Size()
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				if px := c.At(x, y); px.G > 30 && px.G > px.R {
					lit++
				}
			}
		}
		return lit
	}
	bright := countLit(2.0)
	dim := countLit(0.3)
	if dim >= bright {
		t.Fatalf("low gamma (%d px) not dimmer than high gamma (%d px)", dim, bright)
	}
}

func TestLineLayer(t *testing.T) {
	p, err := New(testAxes(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	vals := testValues(50, 4)
	if err := p.AddLineLayer(&LineLayer{Values: vals, Color: red, Alpha: 0.5}); err != nil {
		t.Fatal(err)
	}
	c, err := p.Render()
	if err != nil {
		t.Fatal(err)
	}
	var lit int
	w, h := c.Size()
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if px := c.At(x, y); px.R > 60 && px.R > px.G {
				lit++
			}
		}
	}
	if lit < 100 {
		t.Fatalf("line plot lit only %d pixels", lit)
	}
}

func TestLineLayerValidation(t *testing.T) {
	p, _ := New(testAxes(), DefaultOptions())
	vals := testValues(10, 5)
	delete(vals, "y")
	if err := p.AddLineLayer(&LineLayer{Values: vals, Color: red, Alpha: 0.5}); err == nil {
		t.Fatal("missing column accepted")
	}
	vals = testValues(10, 5)
	vals["y"] = vals["y"][:5]
	if err := p.AddLineLayer(&LineLayer{Values: vals, Color: red, Alpha: 0.5}); err == nil {
		t.Fatal("ragged columns accepted")
	}
	vals = testValues(10, 5)
	if err := p.AddLineLayer(&LineLayer{Values: vals, Color: red, Alpha: 0}); err == nil {
		t.Fatal("zero alpha accepted")
	}
}

func TestFocusOverContext(t *testing.T) {
	axes := testAxes()
	p, err := New(axes, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	all := testValues(3000, 6)
	// Focus: upper half in y.
	focus := map[string][]float64{"x": nil, "px": nil, "y": nil}
	for i := range all["y"] {
		if all["y"][i] > 5 {
			for k := range focus {
				focus[k] = append(focus[k], all[k][i])
			}
		}
	}
	if err := p.AddHistLayer(&HistLayer{Hists: pairHists(t, all, axes, 32), Color: color.RGBA{120, 120, 130, 255}}); err != nil {
		t.Fatal(err)
	}
	if err := p.AddHistLayer(&HistLayer{Hists: pairHists(t, focus, axes, 64), Color: green}); err != nil {
		t.Fatal(err)
	}
	c, err := p.Render()
	if err != nil {
		t.Fatal(err)
	}
	// Greenish pixels (focus) must appear mostly in the upper half of the
	// rightmost axis region.
	w, h := c.Size()
	var upper, lower int
	for y := 0; y < h; y++ {
		for x := 3 * w / 4; x < w; x++ {
			if px := c.At(x, y); px.G > 120 && px.G > px.R+40 {
				if y < h/2 {
					upper++
				} else {
					lower++
				}
			}
		}
	}
	if upper <= lower*2 {
		t.Fatalf("focus not concentrated in upper half: %d upper vs %d lower", upper, lower)
	}
}

func TestAdaptiveLayerUsesDensityOrdering(t *testing.T) {
	axes := testAxes()
	vals := testValues(3000, 7)
	// Build adaptive histograms per pair.
	hists := make([]*histogram.Hist2D, len(axes)-1)
	for i := 0; i < len(axes)-1; i++ {
		a, b := axes[i], axes[i+1]
		xe, err := histogram.AdaptiveEdges(vals[a.Var], a.Min, a.Max, 8, 0)
		if err != nil {
			t.Fatal(err)
		}
		ye, err := histogram.AdaptiveEdges(vals[b.Var], b.Min, b.Max, 8, 0)
		if err != nil {
			t.Fatal(err)
		}
		h, err := histogram.Compute2D(a.Var, b.Var, vals[a.Var], vals[b.Var], xe, ye)
		if err != nil {
			t.Fatal(err)
		}
		hists[i] = h
	}
	p, err := New(axes, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := p.AddHistLayer(&HistLayer{Hists: hists, Color: green}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Render(); err != nil {
		t.Fatal(err)
	}
}

func TestOutlierRecords(t *testing.T) {
	axes := testAxes()
	vals := testValues(2000, 8)
	// Plant one extreme outlier record.
	vals["x"] = append(vals["x"], 0.99)
	vals["px"] = append(vals["px"], -0.99)
	vals["y"] = append(vals["y"], 9.9)
	hists := pairHists(t, vals, axes, 16)
	out, err := OutlierRecords(axes, hists, vals, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range out {
		if r == len(vals["x"])-1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("planted outlier not detected (found %d outliers)", len(out))
	}
	if len(out) > len(vals["x"])/4 {
		t.Fatalf("too many outliers: %d", len(out))
	}
	// Error paths.
	if _, err := OutlierRecords(axes, hists[:1], vals, 0.05); err == nil {
		t.Fatal("wrong hist count accepted")
	}
	delete(vals, "y")
	if _, err := OutlierRecords(axes, hists, vals, 0.05); err == nil {
		t.Fatal("missing column accepted")
	}
}

func TestAxisLabelsToggle(t *testing.T) {
	opt := DefaultOptions()
	opt.DrawLabels = false
	p, err := New(testAxes(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Render(); err != nil {
		t.Fatal(err)
	}
	if got := p.Axes(); len(got) != 3 {
		t.Fatalf("Axes = %d", len(got))
	}
}

func TestFormatAxisValue(t *testing.T) {
	cases := map[float64]string{
		8.872e10: "8.87e+10",
		0.5:      "0.5",
		0:        "0",
	}
	for v, want := range cases {
		if got := formatAxisValue(v); got != want {
			t.Errorf("formatAxisValue(%g) = %q, want %q", v, got, want)
		}
	}
}
