// Package pcoords renders histogram-based parallel coordinates plots
// (paper Section III-A). Instead of one polyline per record, each
// adjacent-axis pair is drawn from a 2D histogram: one quadrilateral per
// non-empty bin, connecting the bin's value range on the left axis to its
// value range on the right axis.
//
// Features reproduced from the paper:
//
//   - Brightness reflects records per bin; bins are drawn back-to-front by
//     count (uniform bins) or by record density h(i,j)/a(i,j) (adaptive
//     bins), so dense trends end up on top.
//   - A user gamma controls overall plot brightness and can cull sparse
//     bins entirely, decluttering the view (Fig. 2c).
//   - Focus layers render over context layers in a different colour, both
//     histogram-based, at independent resolutions (Section III-A2).
//   - Temporal plots stack one layer per timestep, each with its own
//     colour (Fig. 9).
//   - Traditional polyline rendering is available for comparison (Fig. 2a)
//     and for the hybrid outlier display (records from under-dense bins
//     drawn as individual lines, Section III-A3).
package pcoords

import (
	"fmt"
	"image/color"
	"math"
	"sort"

	"repro/internal/histogram"
	"repro/internal/render"
)

// Axis describes one parallel axis: a variable and its displayed range.
type Axis struct {
	Var      string
	Min, Max float64
}

// Options controls plot geometry and appearance.
type Options struct {
	Width, Height int
	Margin        int     // pixels around the plot area
	Gamma         float64 // default layer gamma; 1 when zero
	Background    color.RGBA
	AxisColor     color.RGBA
	LabelColor    color.RGBA
	DrawLabels    bool
}

// DefaultOptions returns the standard dark plot styling.
func DefaultOptions() Options {
	return Options{
		Width:      900,
		Height:     500,
		Margin:     40,
		Gamma:      1,
		Background: color.RGBA{10, 10, 14, 255},
		AxisColor:  color.RGBA{150, 150, 160, 255},
		LabelColor: color.RGBA{210, 210, 220, 255},
		DrawLabels: true,
	}
}

// Layer is anything that can draw itself between the axes.
type Layer interface {
	draw(p *Plot, c *render.Canvas) error
}

// Plot is a parallel coordinates plot under construction.
type Plot struct {
	axes   []Axis
	layers []Layer
	opt    Options
}

// New creates a plot over the given axes.
func New(axes []Axis, opt Options) (*Plot, error) {
	if len(axes) < 2 {
		return nil, fmt.Errorf("pcoords: need at least 2 axes, got %d", len(axes))
	}
	for i, a := range axes {
		if !(a.Max > a.Min) {
			return nil, fmt.Errorf("pcoords: axis %d (%s) has empty range [%g, %g]", i, a.Var, a.Min, a.Max)
		}
	}
	if opt.Width < 10*len(axes) || opt.Height < 40 {
		return nil, fmt.Errorf("pcoords: canvas %dx%d too small", opt.Width, opt.Height)
	}
	if opt.Gamma == 0 {
		opt.Gamma = 1
	}
	if opt.Gamma < 0 {
		return nil, fmt.Errorf("pcoords: negative gamma %g", opt.Gamma)
	}
	return &Plot{axes: append([]Axis(nil), axes...), opt: opt}, nil
}

// Axes returns the plot's axes.
func (p *Plot) Axes() []Axis { return append([]Axis(nil), p.axes...) }

// axisX returns the pixel x of axis i.
func (p *Plot) axisX(i int) float64 {
	usable := float64(p.opt.Width - 2*p.opt.Margin)
	return float64(p.opt.Margin) + usable*float64(i)/float64(len(p.axes)-1)
}

// valueY maps a value on axis i to a pixel y (top = max).
func (p *Plot) valueY(i int, v float64) float64 {
	a := p.axes[i]
	t := (v - a.Min) / (a.Max - a.Min)
	if t < 0 {
		t = 0
	}
	if t > 1 {
		t = 1
	}
	usable := float64(p.opt.Height - 2*p.opt.Margin)
	return float64(p.opt.Height-p.opt.Margin) - usable*t
}

// HistLayer renders one 2D histogram per adjacent axis pair.
type HistLayer struct {
	// Hists[i] is the histogram over (axes[i].Var, axes[i+1].Var).
	Hists []*histogram.Hist2D
	Color color.RGBA
	// Gamma overrides the plot gamma when nonzero. Lower values dim the
	// plot and cull sparse bins (paper Fig. 2c).
	Gamma float64
	// MinBrightness culls bins whose computed brightness falls below it;
	// the default of 1/255 culls only invisible bins.
	MinBrightness float64
}

// AddHistLayer validates and appends a histogram layer.
func (p *Plot) AddHistLayer(l *HistLayer) error {
	if len(l.Hists) != len(p.axes)-1 {
		return fmt.Errorf("pcoords: layer has %d histograms for %d axes", len(l.Hists), len(p.axes))
	}
	for i, h := range l.Hists {
		if h == nil {
			return fmt.Errorf("pcoords: nil histogram for axis pair %d", i)
		}
		if h.XVar != p.axes[i].Var || h.YVar != p.axes[i+1].Var {
			return fmt.Errorf("pcoords: histogram %d is over (%s,%s), axes are (%s,%s)",
				i, h.XVar, h.YVar, p.axes[i].Var, p.axes[i+1].Var)
		}
	}
	p.layers = append(p.layers, l)
	return nil
}

// LineLayer renders records as traditional polylines.
type LineLayer struct {
	// Values holds one column per axis variable; all must share a length.
	Values map[string][]float64
	Color  color.RGBA
	Alpha  float64 // per-line opacity; low values reproduce overdraw accumulation
}

// AddLineLayer validates and appends a polyline layer.
func (p *Plot) AddLineLayer(l *LineLayer) error {
	n := -1
	for _, a := range p.axes {
		col, ok := l.Values[a.Var]
		if !ok {
			return fmt.Errorf("pcoords: line layer missing variable %q", a.Var)
		}
		if n == -1 {
			n = len(col)
		} else if len(col) != n {
			return fmt.Errorf("pcoords: line layer column %q has %d records, expected %d", a.Var, len(col), n)
		}
	}
	if l.Alpha <= 0 || l.Alpha > 1 {
		return fmt.Errorf("pcoords: line layer alpha %g outside (0, 1]", l.Alpha)
	}
	p.layers = append(p.layers, l)
	return nil
}

// Render draws axes and layers onto a fresh canvas.
func (p *Plot) Render() (*render.Canvas, error) {
	c, err := render.NewCanvas(p.opt.Width, p.opt.Height, p.opt.Background)
	if err != nil {
		return nil, err
	}
	for _, l := range p.layers {
		if err := l.draw(p, c); err != nil {
			return nil, err
		}
	}
	p.drawAxes(c)
	return c, nil
}

func (p *Plot) drawAxes(c *render.Canvas) {
	top := p.opt.Margin
	bot := p.opt.Height - p.opt.Margin
	for i, a := range p.axes {
		x := int(math.Round(p.axisX(i)))
		c.VLine(x, top, bot, p.opt.AxisColor, 1)
		if p.opt.DrawLabels {
			c.TextCentered(x, bot+8, a.Var, p.opt.LabelColor)
			c.TextCentered(x, top-16, formatAxisValue(a.Max), p.opt.LabelColor)
			c.TextCentered(x, bot+20, formatAxisValue(a.Min), p.opt.LabelColor)
		}
	}
}

func formatAxisValue(v float64) string {
	av := math.Abs(v)
	if av != 0 && (av >= 1e4 || av < 1e-2) {
		return fmt.Sprintf("%.2e", v)
	}
	return fmt.Sprintf("%.3g", v)
}

// binQuad is one renderable bin with its draw weight.
type binQuad struct {
	pair   int
	ix, iy int
	weight float64 // count (uniform) or density (adaptive)
}

func (l *HistLayer) draw(p *Plot, c *render.Canvas) error {
	gamma := l.Gamma
	if gamma == 0 {
		gamma = p.opt.Gamma
	}
	minB := l.MinBrightness
	if minB <= 0 {
		minB = 1.0 / 255
	}
	for pair, h := range l.Hists {
		adaptive := !uniformEdges(h.XEdges) || !uniformEdges(h.YEdges)
		var quads []binQuad
		var wmax float64
		h.NonEmpty(func(ix, iy int, count uint64) {
			w := float64(count)
			if adaptive {
				w = h.Density(ix, iy)
			}
			if w > wmax {
				wmax = w
			}
			quads = append(quads, binQuad{pair: pair, ix: ix, iy: iy, weight: w})
		})
		if wmax == 0 {
			continue
		}
		// Back-to-front: sparse first, dense last (dense trends on top).
		sort.Slice(quads, func(i, j int) bool { return quads[i].weight < quads[j].weight })
		xl := p.axisX(pair)
		xr := p.axisX(pair + 1)
		for _, q := range quads {
			// Brightness b = (w/wmax)^(1/gamma); low gamma suppresses
			// sparse bins, eventually culling them.
			b := math.Pow(q.weight/wmax, 1/gamma)
			if b < minB {
				continue
			}
			yl0 := p.valueY(pair, h.XEdges[q.ix])
			yl1 := p.valueY(pair, h.XEdges[q.ix+1])
			yr0 := p.valueY(pair+1, h.YEdges[q.iy])
			yr1 := p.valueY(pair+1, h.YEdges[q.iy+1])
			c.FillTrapezoid(xl, yl0, yl1, xr, yr0, yr1, l.Color, b)
		}
	}
	return nil
}

func (l *LineLayer) draw(p *Plot, c *render.Canvas) error {
	n := len(l.Values[p.axes[0].Var])
	for r := 0; r < n; r++ {
		for i := 0; i < len(p.axes)-1; i++ {
			x0 := p.axisX(i)
			x1 := p.axisX(i + 1)
			y0 := p.valueY(i, l.Values[p.axes[i].Var][r])
			y1 := p.valueY(i+1, l.Values[p.axes[i+1].Var][r])
			c.Line(x0, y0, x1, y1, l.Color, l.Alpha)
		}
	}
	return nil
}

func uniformEdges(edges []float64) bool {
	if len(edges) < 3 {
		return true
	}
	step := (edges[len(edges)-1] - edges[0]) / float64(len(edges)-1)
	for i := 1; i < len(edges); i++ {
		want := edges[0] + float64(i)*step
		if math.Abs(edges[i]-want) > 1e-9*math.Max(math.Abs(want), step) {
			return false
		}
	}
	return true
}

// OutlierRecords returns the indices of records that fall in bins whose
// record density is below relFloor × the histogram's maximum density in
// any adjacent-pair histogram — the hybrid outlier-preserving display of
// Section III-A3 (outliers are then drawn as individual polylines over
// the binned plot). values must hold a column per axis variable. The
// floor is relative so it is insensitive to axis units.
func OutlierRecords(axes []Axis, hists []*histogram.Hist2D, values map[string][]float64, relFloor float64) ([]int, error) {
	if len(hists) != len(axes)-1 {
		return nil, fmt.Errorf("pcoords: %d histograms for %d axes", len(hists), len(axes))
	}
	n := -1
	for _, a := range axes {
		col, ok := values[a.Var]
		if !ok {
			return nil, fmt.Errorf("pcoords: missing variable %q", a.Var)
		}
		if n == -1 {
			n = len(col)
		} else if len(col) != n {
			return nil, fmt.Errorf("pcoords: ragged columns")
		}
	}
	locs := make([]struct{ x, y *histogram.Locator }, len(hists))
	for i, h := range hists {
		lx, err := histogram.NewLocator(h.XEdges)
		if err != nil {
			return nil, err
		}
		ly, err := histogram.NewLocator(h.YEdges)
		if err != nil {
			return nil, err
		}
		locs[i] = struct{ x, y *histogram.Locator }{lx, ly}
	}
	floors := make([]float64, len(hists))
	for i, h := range hists {
		floors[i] = relFloor * h.MaxDensity()
	}
	var out []int
	for r := 0; r < n; r++ {
		for i, h := range hists {
			xv := values[axes[i].Var][r]
			yv := values[axes[i+1].Var][r]
			ix := locs[i].x.Bin(xv)
			iy := locs[i].y.Bin(yv)
			if ix < 0 || iy < 0 {
				continue
			}
			if h.Density(ix, iy) < floors[i] {
				out = append(out, r)
				break
			}
		}
	}
	return out, nil
}
