package obs

import (
	"context"
	"sync/atomic"
)

// Cost is a per-query resource accumulator: the kernels charge rows,
// bytes and index work into it as they execute, and the explain surface
// snapshots it per fragment. Like Span, every method is nil-safe so the
// kernels charge unconditionally — a request that did not ask for a
// profile carries a nil *Cost and pays one nil check per charge site.
type Cost struct {
	rows       atomic.Uint64 // records visited by sequential scans
	valuesRead atomic.Uint64 // raw column values fetched (candidate checks, gathers)
	dataBytes  atomic.Uint64 // bytes read from columnar data files
	indexBytes atomic.Uint64 // bytes of index sections loaded from disk
	indexLoads atomic.Uint64 // index sections loaded (cache misses)
	bitmapOps  atomic.Uint64 // bitmaps OR-ed during index evaluation
	candChecks atomic.Uint64 // raw-data candidate checks for boundary bins
	approxRows atomic.Uint64 // rows admitted without check (index-only eval)
}

// AddRows charges n sequentially scanned records.
func (c *Cost) AddRows(n uint64) {
	if c != nil {
		c.rows.Add(n)
	}
}

// AddValues charges n raw column values fetched.
func (c *Cost) AddValues(n uint64) {
	if c != nil {
		c.valuesRead.Add(n)
	}
}

// AddDataBytes charges n bytes read from columnar data files.
func (c *Cost) AddDataBytes(n uint64) {
	if c != nil {
		c.dataBytes.Add(n)
	}
}

// AddIndexBytes charges n bytes of index sections loaded from disk.
func (c *Cost) AddIndexBytes(n uint64) {
	if c != nil {
		c.indexBytes.Add(n)
	}
}

// AddIndexLoads charges n index-section loads (cache misses).
func (c *Cost) AddIndexLoads(n uint64) {
	if c != nil {
		c.indexLoads.Add(n)
	}
}

// AddBitmapOps charges n bitmap OR operations.
func (c *Cost) AddBitmapOps(n uint64) {
	if c != nil {
		c.bitmapOps.Add(n)
	}
}

// AddCandidateChecks charges n boundary-bin candidate checks.
func (c *Cost) AddCandidateChecks(n uint64) {
	if c != nil {
		c.candChecks.Add(n)
	}
}

// AddApproxRows charges n rows admitted without a raw-data check.
func (c *Cost) AddApproxRows(n uint64) {
	if c != nil {
		c.approxRows.Add(n)
	}
}

// Snapshot captures the accumulator's current values. A nil Cost
// snapshots to the zero value.
func (c *Cost) Snapshot() CostSnapshot {
	if c == nil {
		return CostSnapshot{}
	}
	return CostSnapshot{
		Rows:            c.rows.Load(),
		ValuesRead:      c.valuesRead.Load(),
		DataBytes:       c.dataBytes.Load(),
		IndexBytes:      c.indexBytes.Load(),
		IndexLoads:      c.indexLoads.Load(),
		BitmapOps:       c.bitmapOps.Load(),
		CandidateChecks: c.candChecks.Load(),
		ApproxRows:      c.approxRows.Load(),
	}
}

// CostSnapshot is the JSON- and gob-friendly view of a Cost. The fields
// are additive: the frontend sums per-fragment snapshots into query
// totals, and the explain identity tests assert the sums are exact.
type CostSnapshot struct {
	Rows            uint64 `json:"rows_scanned,omitempty"`
	ValuesRead      uint64 `json:"values_read,omitempty"`
	DataBytes       uint64 `json:"data_bytes,omitempty"`
	IndexBytes      uint64 `json:"index_bytes,omitempty"`
	IndexLoads      uint64 `json:"index_loads,omitempty"`
	BitmapOps       uint64 `json:"bitmap_ops,omitempty"`
	CandidateChecks uint64 `json:"candidate_checks,omitempty"`
	ApproxRows      uint64 `json:"approx_rows,omitempty"`
}

// Add folds another snapshot into this one.
func (s *CostSnapshot) Add(o CostSnapshot) {
	s.Rows += o.Rows
	s.ValuesRead += o.ValuesRead
	s.DataBytes += o.DataBytes
	s.IndexBytes += o.IndexBytes
	s.IndexLoads += o.IndexLoads
	s.BitmapOps += o.BitmapOps
	s.CandidateChecks += o.CandidateChecks
	s.ApproxRows += o.ApproxRows
}

// IsZero reports whether nothing was charged.
func (s CostSnapshot) IsZero() bool { return s == CostSnapshot{} }

type costCtxKey struct{}

// WithCost returns a context carrying the cost accumulator. Kernels
// retrieve it with CostFromContext and charge into it; a nil c is legal
// and yields a context whose charges are no-ops.
func WithCost(ctx context.Context, c *Cost) context.Context {
	return context.WithValue(ctx, costCtxKey{}, c)
}

// CostFromContext returns the context's cost accumulator, or nil when
// the request is not being profiled. The nil result is safe to charge.
func CostFromContext(ctx context.Context) *Cost {
	c, _ := ctx.Value(costCtxKey{}).(*Cost)
	return c
}
