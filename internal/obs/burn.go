package obs

import (
	"sync"
	"time"
)

// BurnWindow is one burn-rate evaluation window.
type BurnWindow struct {
	Name string        // label value, e.g. "5m"
	Dur  time.Duration // lookback
}

// BurnConfig configures a multi-window SLO burn-rate monitor.
type BurnConfig struct {
	// Budget is the tolerated bad-request fraction (the error budget);
	// <= 0 defaults to 0.05. Burn rate is badFraction / Budget, so a
	// burn of 1.0 means the service is consuming budget exactly as fast
	// as it accrues.
	Budget float64
	// Fast and Slow are the two evaluation windows. A breach requires
	// the burn rate over BOTH windows to reach Threshold — the classic
	// multi-window rule: the slow window proves it is not a blip, the
	// fast window proves it is still happening. Zero durations default
	// to 5m / 1h.
	Fast, Slow time.Duration
	// Threshold is the burn rate at which both windows must sit for a
	// breach; <= 0 defaults to 1.
	Threshold float64
	// Cooldown is the minimum gap between breach firings; <= 0 defaults
	// to the slow window, so one incident triggers one capture.
	Cooldown time.Duration
	// OnBreach, when set, fires (edge-triggered, outside the monitor
	// lock) each time a new breach is detected.
	OnBreach func(fast, slow float64)

	nowFn func() time.Time // injectable clock for tests
}

// burnBucket is one second's worth of request outcomes.
type burnBucket struct {
	sec       int64 // unix second this bucket covers
	good, bad uint64
}

// BurnMonitor tracks SLO burn rate over multiple lookback windows from a
// ring of per-second good/bad buckets, and fires an edge-triggered breach
// callback when every window's burn rate crosses the threshold.
type BurnMonitor struct {
	cfg BurnConfig

	mu       sync.Mutex
	ring     []burnBucket // one bucket per second, len = slow window seconds
	breaches uint64
	lastFire time.Time
	firing   bool
}

// NewBurnMonitor creates a burn-rate monitor.
func NewBurnMonitor(cfg BurnConfig) *BurnMonitor {
	if cfg.Budget <= 0 {
		cfg.Budget = 0.05
	}
	if cfg.Fast <= 0 {
		cfg.Fast = 5 * time.Minute
	}
	if cfg.Slow <= 0 {
		cfg.Slow = time.Hour
	}
	if cfg.Slow < cfg.Fast {
		cfg.Slow = cfg.Fast
	}
	if cfg.Threshold <= 0 {
		cfg.Threshold = 1
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = cfg.Slow
	}
	if cfg.nowFn == nil {
		cfg.nowFn = time.Now
	}
	secs := int(cfg.Slow/time.Second) + 1
	if secs < 2 {
		secs = 2
	}
	return &BurnMonitor{cfg: cfg, ring: make([]burnBucket, secs)}
}

// Record folds one request outcome into the current second's bucket and
// re-evaluates the breach condition. good should be false for requests
// that burned error budget (5xx or SLO-violating latency).
func (m *BurnMonitor) Record(good bool) {
	if m == nil {
		return
	}
	now := m.cfg.nowFn()
	sec := now.Unix()
	var onBreach func(fast, slow float64)
	var fast, slow float64

	m.mu.Lock()
	b := &m.ring[sec%int64(len(m.ring))]
	if b.sec != sec {
		*b = burnBucket{sec: sec}
	}
	if good {
		b.good++
	} else {
		b.bad++
	}
	fast = m.rateLocked(now, m.cfg.Fast)
	slow = m.rateLocked(now, m.cfg.Slow)
	breaching := fast >= m.cfg.Threshold && slow >= m.cfg.Threshold
	if breaching {
		if !m.firing && now.Sub(m.lastFire) >= m.cfg.Cooldown {
			m.firing = true
			m.lastFire = now
			m.breaches++
			onBreach = m.cfg.OnBreach
		}
	} else {
		m.firing = false
	}
	m.mu.Unlock()

	if onBreach != nil {
		onBreach(fast, slow)
	}
}

// rateLocked computes the burn rate over the trailing window ending now.
func (m *BurnMonitor) rateLocked(now time.Time, window time.Duration) float64 {
	lo := now.Unix() - int64(window/time.Second)
	var good, bad uint64
	for i := range m.ring {
		b := &m.ring[i]
		if b.sec > lo && b.sec <= now.Unix() {
			good += b.good
			bad += b.bad
		}
	}
	total := good + bad
	if total == 0 {
		return 0
	}
	return float64(bad) / float64(total) / m.cfg.Budget
}

// Rate returns the current burn rate over the given trailing window.
func (m *BurnMonitor) Rate(window time.Duration) float64 {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.rateLocked(m.cfg.nowFn(), window)
}

// FastRate returns the burn rate over the fast window.
func (m *BurnMonitor) FastRate() float64 {
	if m == nil {
		return 0
	}
	return m.Rate(m.cfg.Fast)
}

// SlowRate returns the burn rate over the slow window.
func (m *BurnMonitor) SlowRate() float64 {
	if m == nil {
		return 0
	}
	return m.Rate(m.cfg.Slow)
}

// Breaches returns how many distinct breaches have fired.
func (m *BurnMonitor) Breaches() uint64 {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.breaches
}

// Windows returns the configured fast and slow window durations.
func (m *BurnMonitor) Windows() (fast, slow time.Duration) {
	return m.cfg.Fast, m.cfg.Slow
}
