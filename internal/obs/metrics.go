package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/histogram"
)

// Label is one name=value metric dimension.
type Label struct {
	Key   string
	Value string
}

// L builds a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing metric.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Load returns the current value.
func (c *Counter) Load() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down. The value is a float64
// stored as bits in one atomic word.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds delta to the gauge (CAS loop).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Load returns the current value.
func (g *Gauge) Load() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket latency histogram. Bucket location eats our
// own dog food: the bin for each observation is found by an
// internal/histogram Locator over the bucket boundaries, exactly the
// machinery that bins the physics data.
type Histogram struct {
	loc     *histogram.Locator
	upper   []float64 // bucket upper bounds, ascending
	bins    []atomic.Uint64
	over    atomic.Uint64 // observations beyond the last bound (+Inf bucket)
	count   atomic.Uint64
	sumBits atomic.Uint64
	// exemplars holds one last-wins exemplar per bucket (index len(upper)
	// is the +Inf bucket), linking a latency bucket to the trace that
	// landed there most recently — so a p99 bucket resolves to a profile.
	exemplars []atomic.Pointer[Exemplar]
}

// Exemplar ties one observation to the trace that produced it.
type Exemplar struct {
	TraceID string  `json:"trace_id"`
	Value   float64 `json:"value"`
}

// DefLatencyBuckets is the default latency bucket boundary set, in
// seconds: roughly exponential from 0.5ms to 10s, chosen so interactive
// drill-down latencies (the paper's sub-second budget) land mid-range.
var DefLatencyBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

func newHistogram(upper []float64) *Histogram {
	if len(upper) == 0 {
		upper = DefLatencyBuckets
	}
	edges := make([]float64, 0, len(upper)+1)
	edges = append(edges, 0)
	edges = append(edges, upper...)
	loc, err := histogram.NewLocator(edges)
	if err != nil {
		panic(fmt.Sprintf("obs: bad histogram buckets %v: %v", upper, err))
	}
	return &Histogram{
		loc:       loc,
		upper:     append([]float64(nil), upper...),
		bins:      make([]atomic.Uint64, len(upper)),
		exemplars: make([]atomic.Pointer[Exemplar], len(upper)+1),
	}
}

// Observe records one value (typically seconds). No-op while obs is
// disabled, so a no-op-obs run pays one atomic load here.
func (h *Histogram) Observe(v float64) {
	if h == nil || !enabled.Load() {
		return
	}
	if v < 0 || math.IsNaN(v) {
		v = 0
	}
	if i := h.loc.Bin(v); i >= 0 {
		h.bins[i].Add(1)
	} else {
		h.over.Add(1)
	}
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			break
		}
	}
}

// ObserveWithExemplar records one value and attaches the trace ID as the
// landing bucket's exemplar (last observation wins). No-op while obs is
// disabled or when traceID is empty.
func (h *Histogram) ObserveWithExemplar(v float64, traceID string) {
	if h == nil || !enabled.Load() {
		return
	}
	h.Observe(v)
	if traceID == "" {
		return
	}
	if v < 0 || math.IsNaN(v) {
		v = 0
	}
	i := h.loc.Bin(v)
	if i < 0 {
		i = len(h.upper) // +Inf bucket
	}
	h.exemplars[i].Store(&Exemplar{TraceID: traceID, Value: v})
}

// BucketExemplars returns the per-bucket exemplars, index len(upper)
// being the +Inf bucket; entries are nil where no exemplar landed.
func (h *Histogram) BucketExemplars() []*Exemplar {
	if h == nil {
		return nil
	}
	out := make([]*Exemplar, len(h.exemplars))
	for i := range h.exemplars {
		out[i] = h.exemplars[i].Load()
	}
	return out
}

// ObserveSince records the elapsed time since start, in seconds.
func (h *Histogram) ObserveSince(start time.Time) {
	if h == nil {
		return
	}
	h.Observe(time.Since(start).Seconds())
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Buckets returns the upper bounds and cumulative counts (Prometheus
// "le" semantics, excluding +Inf).
func (h *Histogram) Buckets() (upper []float64, cumulative []uint64) {
	upper = append([]float64(nil), h.upper...)
	cumulative = make([]uint64, len(h.bins))
	var acc uint64
	for i := range h.bins {
		acc += h.bins[i].Load()
		cumulative[i] = acc
	}
	return upper, cumulative
}

// Quantile returns an estimate of the q-quantile (0..1) from the bucket
// counts, by linear interpolation within the containing bucket.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var acc uint64
	lo := 0.0
	for i := range h.bins {
		n := h.bins[i].Load()
		if float64(acc)+float64(n) >= rank && n > 0 {
			frac := (rank - float64(acc)) / float64(n)
			return lo + frac*(h.upper[i]-lo)
		}
		acc += n
		lo = h.upper[i]
	}
	return lo
}

// Metric is the JSON-friendly snapshot of one metric series. It is also
// the unit of metrics federation: a shard ships its registry as a
// []Metric over RPC and the frontend re-renders the fleet as one
// exposition, so the struct must stay gob-friendly.
type Metric struct {
	Name    string            `json:"name"`
	Type    string            `json:"type"` // counter | gauge | histogram
	Help    string            `json:"help,omitempty"`
	Labels  map[string]string `json:"labels,omitempty"`
	Value   float64           `json:"value,omitempty"`
	Sum     float64           `json:"sum,omitempty"`
	Count   uint64            `json:"count,omitempty"`
	Buckets []Bucket          `json:"buckets,omitempty"`
	// InfExemplar is the +Inf bucket's exemplar, if any (finite buckets
	// carry theirs inline).
	InfExemplar *Exemplar `json:"inf_exemplar,omitempty"`
}

// Bucket is one cumulative histogram bucket in a Metric snapshot. Bounds
// are finite (the implicit +Inf bucket equals the series count).
type Bucket struct {
	LE       float64   `json:"le"`
	Count    uint64    `json:"count"`
	Exemplar *Exemplar `json:"exemplar,omitempty"`
}

// series is one registered metric with a concrete label set.
type series struct {
	labels    []Label
	counter   *Counter
	counterFn func() uint64
	gauge     *Gauge
	gaugeFn   func() float64
	hist      *Histogram
}

// family groups every series sharing one metric name.
type family struct {
	name   string
	help   string
	typ    string
	series map[string]*series
	order  []string
}

// Registry holds named metrics and renders them as Prometheus text
// exposition or JSON. Registration is idempotent: asking for an existing
// name+labels returns the existing instrument, so package-level
// instruments and repeated Server construction in tests coexist.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry used by package-level
// instruments (fastbit, scan, cluster).
func Default() *Registry { return defaultRegistry }

func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	parts := make([]string, len(labels))
	for i, l := range labels {
		parts[i] = l.Key + "\x1f" + l.Value
	}
	return strings.Join(parts, "\x1e")
}

func sortLabels(labels []Label) []Label {
	out := append([]Label(nil), labels...)
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// register resolves (or creates) the series for name+labels, checking
// type consistency.
func (r *Registry) register(name, help, typ string, labels []Label) *series {
	labels = sortLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, series: map[string]*series{}}
		r.families[name] = f
		r.order = append(r.order, name)
	}
	if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %q registered as %s and %s", name, f.typ, typ))
	}
	key := labelKey(labels)
	s, ok := f.series[key]
	if !ok {
		s = &series{labels: labels}
		f.series[key] = s
		f.order = append(f.order, key)
	}
	return s
}

// Counter registers (or returns) a counter.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	s := r.register(name, help, "counter", labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.counter == nil && s.counterFn == nil {
		s.counter = &Counter{}
	}
	return s.counter
}

// CounterFunc registers a counter whose value is read from fn at export
// time; fn must be monotonic. Re-registering replaces fn (last wins), so
// a fresh Server in tests rebinds the callback.
func (r *Registry) CounterFunc(name, help string, fn func() uint64, labels ...Label) {
	s := r.register(name, help, "counter", labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	s.counter = nil
	s.counterFn = fn
}

// Gauge registers (or returns) a settable gauge.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	s := r.register(name, help, "gauge", labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.gauge == nil && s.gaugeFn == nil {
		s.gauge = &Gauge{}
	}
	return s.gauge
}

// GaugeFunc registers a gauge read from fn at export time. Re-registering
// replaces fn (last wins).
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	s := r.register(name, help, "gauge", labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	s.gauge = nil
	s.gaugeFn = fn
}

// Histogram registers (or returns) a histogram with the given bucket
// upper bounds (nil means DefLatencyBuckets).
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	s := r.register(name, help, "histogram", labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.hist == nil {
		s.hist = newHistogram(buckets)
	}
	return s.hist
}

// exportSeries is an immutable view of one series captured under the
// registry lock, with value callbacks already resolved to instruments or
// functions safe to call outside it.
type exportSeries struct {
	labels    []Label
	counter   *Counter
	counterFn func() uint64
	gauge     *Gauge
	gaugeFn   func() float64
	hist      *Histogram
}

type exportFamily struct {
	name, help, typ string
	series          []exportSeries
}

// export captures families and series in registration order under one
// lock acquisition, so scrapes never race concurrent registration.
func (r *Registry) export() []exportFamily {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]exportFamily, 0, len(r.order))
	for _, name := range r.order {
		f := r.families[name]
		ef := exportFamily{name: f.name, help: f.help, typ: f.typ}
		for _, key := range f.order {
			s := f.series[key]
			ef.series = append(ef.series, exportSeries{
				labels:    s.labels,
				counter:   s.counter,
				counterFn: s.counterFn,
				gauge:     s.gauge,
				gaugeFn:   s.gaugeFn,
				hist:      s.hist,
			})
		}
		out = append(out, ef)
	}
	return out
}

func promLabels(labels []Label, extra ...Label) string {
	all := append(append([]Label(nil), labels...), extra...)
	if len(all) == 0 {
		return ""
	}
	parts := make([]string, len(all))
	for i, l := range all {
		v := strings.NewReplacer(`\`, `\\`, "\n", `\n`, `"`, `\"`).Replace(l.Value)
		parts[i] = fmt.Sprintf("%s=%q", l.Key, v)
	}
	return "{" + strings.Join(parts, ",") + "}"
}

func promFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	default:
		return strconv.FormatFloat(v, 'g', -1, 64)
	}
}

// WritePrometheus renders every metric in Prometheus text exposition
// format (version 0.0.4).
func (r *Registry) WritePrometheus(w io.Writer) {
	r.writePrometheus(w, false)
}

// promExemplar renders an OpenMetrics-style exemplar suffix. Classic
// 0.0.4 parsers reject the syntax, so callers gate it on an explicit
// exemplars=1 request or an OpenMetrics Accept header.
func promExemplar(e *Exemplar) string {
	if e == nil {
		return ""
	}
	return fmt.Sprintf(" # {trace_id=%q} %s", e.TraceID, promFloat(e.Value))
}

func (r *Registry) writePrometheus(w io.Writer, exemplars bool) {
	for _, f := range r.export() {
		fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ)
		for _, s := range f.series {
			switch f.typ {
			case "counter":
				v := s.counter.Load()
				if s.counterFn != nil {
					v = s.counterFn()
				}
				fmt.Fprintf(w, "%s%s %d\n", f.name, promLabels(s.labels), v)
			case "gauge":
				v := s.gauge.Load()
				if s.gaugeFn != nil {
					v = s.gaugeFn()
				}
				fmt.Fprintf(w, "%s%s %s\n", f.name, promLabels(s.labels), promFloat(v))
			case "histogram":
				upper, cum := s.hist.Buckets()
				var exs []*Exemplar
				if exemplars {
					exs = s.hist.BucketExemplars()
				}
				for i, ub := range upper {
					suffix := ""
					if exemplars && i < len(exs) {
						suffix = promExemplar(exs[i])
					}
					fmt.Fprintf(w, "%s_bucket%s %d%s\n", f.name,
						promLabels(s.labels, L("le", promFloat(ub))), cum[i], suffix)
				}
				suffix := ""
				if exemplars && len(exs) > len(upper) {
					suffix = promExemplar(exs[len(upper)])
				}
				fmt.Fprintf(w, "%s_bucket%s %d%s\n", f.name,
					promLabels(s.labels, L("le", "+Inf")), s.hist.Count(), suffix)
				fmt.Fprintf(w, "%s_sum%s %s\n", f.name, promLabels(s.labels), promFloat(s.hist.Sum()))
				fmt.Fprintf(w, "%s_count%s %d\n", f.name, promLabels(s.labels), s.hist.Count())
			}
		}
	}
}

// Snapshot returns a JSON-friendly view of every metric series. Histogram
// +Inf buckets are represented by the total count; bucket LE bounds are
// finite.
func (r *Registry) Snapshot() []Metric {
	var out []Metric
	for _, f := range r.export() {
		for _, s := range f.series {
			m := Metric{Name: f.name, Type: f.typ, Help: f.help}
			if len(s.labels) > 0 {
				m.Labels = map[string]string{}
				for _, l := range s.labels {
					m.Labels[l.Key] = l.Value
				}
			}
			switch f.typ {
			case "counter":
				v := s.counter.Load()
				if s.counterFn != nil {
					v = s.counterFn()
				}
				m.Value = float64(v)
			case "gauge":
				v := s.gauge.Load()
				if s.gaugeFn != nil {
					v = s.gaugeFn()
				}
				m.Value = v
			case "histogram":
				upper, cum := s.hist.Buckets()
				exs := s.hist.BucketExemplars()
				m.Sum = s.hist.Sum()
				m.Count = s.hist.Count()
				m.Buckets = make([]Bucket, len(upper))
				for i := range upper {
					m.Buckets[i] = Bucket{LE: upper[i], Count: cum[i]}
					if i < len(exs) {
						m.Buckets[i].Exemplar = exs[i]
					}
				}
				if len(exs) > len(upper) {
					m.InfExemplar = exs[len(upper)]
				}
			}
			out = append(out, m)
		}
	}
	return out
}

// wantExemplars reports whether a scrape asked for exemplar suffixes —
// either explicitly (?exemplars=1) or by accepting OpenMetrics. Classic
// 0.0.4 text parsers reject the inline syntax, so it is opt-in.
func wantExemplars(r *http.Request) bool {
	return WantExemplars(r)
}

// WantExemplars reports whether a scrape request opted into exemplar
// suffixes, either explicitly (?exemplars=1) or via an OpenMetrics
// Accept header; federated expositions share the gate.
func WantExemplars(r *http.Request) bool {
	if r.URL.Query().Get("exemplars") == "1" {
		return true
	}
	return strings.Contains(r.Header.Get("Accept"), "application/openmetrics-text")
}

// Handler serves the given registries concatenated in Prometheus text
// format — typically the server's own registry plus Default() for the
// package-level backend instruments.
func Handler(regs ...*Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		ex := wantExemplars(r)
		for _, reg := range regs {
			reg.writePrometheus(w, ex)
		}
	})
}

// SnapshotAll merges the JSON snapshots of several registries.
func SnapshotAll(regs ...*Registry) []Metric {
	var out []Metric
	for _, reg := range regs {
		out = append(out, reg.Snapshot()...)
	}
	return out
}

// MetricsGroup is one source's snapshot in a federated exposition, with
// extra labels (e.g. shard="2") stamped onto every series.
type MetricsGroup struct {
	Extra   []Label
	Metrics []Metric
}

// WriteFederated renders several metric snapshots as one Prometheus text
// exposition: families sharing a name across groups are merged under a
// single HELP/TYPE header (first group's help wins), and each group's
// series carry its extra labels. The frontend uses this to expose its
// own registry unlabeled next to every shard's registry labeled
// shard="N" on one scrape.
func WriteFederated(w io.Writer, exemplars bool, groups ...MetricsGroup) {
	type fedSeries struct {
		m     Metric
		extra []Label
	}
	type fedFamily struct {
		name, help, typ string
		series          []fedSeries
	}
	var order []string
	families := map[string]*fedFamily{}
	for _, g := range groups {
		for _, m := range g.Metrics {
			f, ok := families[m.Name]
			if !ok {
				f = &fedFamily{name: m.Name, help: m.Help, typ: m.Type}
				families[m.Name] = f
				order = append(order, m.Name)
			}
			if f.typ != m.Type {
				// A name registered with different types across processes
				// cannot merge; keep the first and drop the stragglers
				// rather than emit an inconsistent exposition.
				continue
			}
			if f.help == "" {
				f.help = m.Help
			}
			f.series = append(f.series, fedSeries{m: m, extra: g.Extra})
		}
	}
	for _, name := range order {
		f := families[name]
		fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ)
		for _, s := range f.series {
			labels := metricLabels(s.m, s.extra)
			switch f.typ {
			case "counter":
				fmt.Fprintf(w, "%s%s %s\n", f.name, promLabels(labels),
					strconv.FormatFloat(s.m.Value, 'f', -1, 64))
			case "gauge":
				fmt.Fprintf(w, "%s%s %s\n", f.name, promLabels(labels), promFloat(s.m.Value))
			case "histogram":
				for _, b := range s.m.Buckets {
					suffix := ""
					if exemplars {
						suffix = promExemplar(b.Exemplar)
					}
					fmt.Fprintf(w, "%s_bucket%s %d%s\n", f.name,
						promLabels(labels, L("le", promFloat(b.LE))), b.Count, suffix)
				}
				suffix := ""
				if exemplars {
					suffix = promExemplar(s.m.InfExemplar)
				}
				fmt.Fprintf(w, "%s_bucket%s %d%s\n", f.name,
					promLabels(labels, L("le", "+Inf")), s.m.Count, suffix)
				fmt.Fprintf(w, "%s_sum%s %s\n", f.name, promLabels(labels), promFloat(s.m.Sum))
				fmt.Fprintf(w, "%s_count%s %d\n", f.name, promLabels(labels), s.m.Count)
			}
		}
	}
}

// metricLabels flattens a Metric's label map (sorted) plus extras.
func metricLabels(m Metric, extra []Label) []Label {
	var out []Label
	for k, v := range m.Labels {
		out = append(out, L(k, v))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return append(out, extra...)
}
