package obs

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "a counter")
	c.Inc()
	c.Add(4)
	if got := c.Load(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	// Idempotent registration returns the same instrument.
	if again := r.Counter("test_total", "a counter"); again != c {
		t.Fatal("re-registration returned a different counter")
	}
	g := r.Gauge("test_gauge", "a gauge")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Load(); got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}
	// Nil instruments are safe no-ops.
	var nc *Counter
	nc.Inc()
	var ng *Gauge
	ng.Set(1)
}

func TestCounterLabelsSeparateSeries(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("req_total", "requests", L("code", "200"))
	b := r.Counter("req_total", "requests", L("code", "500"))
	if a == b {
		t.Fatal("distinct label sets shared a series")
	}
	// Label order must not matter.
	x := r.Counter("multi_total", "m", L("a", "1"), L("b", "2"))
	y := r.Counter("multi_total", "m", L("b", "2"), L("a", "1"))
	if x != y {
		t.Fatal("label order created distinct series")
	}
}

func TestRegisterTypeMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "x")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on type mismatch")
		}
	}()
	r.Gauge("x_total", "x")
}

func TestHistogramObserveAndQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "latency", []float64{0.01, 0.1, 1})
	for i := 0; i < 90; i++ {
		h.Observe(0.005) // first bucket
	}
	for i := 0; i < 10; i++ {
		h.Observe(0.5) // third bucket
	}
	h.Observe(5) // +Inf
	if got := h.Count(); got != 101 {
		t.Fatalf("count = %d, want 101", got)
	}
	upper, cum := h.Buckets()
	if len(upper) != 3 || cum[0] != 90 || cum[1] != 90 || cum[2] != 100 {
		t.Fatalf("buckets = %v %v", upper, cum)
	}
	p50 := h.Quantile(0.5)
	if p50 <= 0 || p50 > 0.01 {
		t.Fatalf("p50 = %v, want within first bucket", p50)
	}
	wantSum := 90*0.005 + 10*0.5 + 5
	if math.Abs(h.Sum()-wantSum) > 1e-9 {
		t.Fatalf("sum = %v, want %v", h.Sum(), wantSum)
	}
}

func TestHistogramDisabledSkipsObserve(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("off_seconds", "x", nil)
	SetEnabled(false)
	defer SetEnabled(true)
	h.Observe(1)
	if h.Count() != 0 {
		t.Fatal("observe recorded while disabled")
	}
}

// promLineRE matches a Prometheus sample line: name{labels} value.
var promLineRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? (-?[0-9.e+-]+|\+Inf|-Inf|NaN)$`)

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("fmt_total", "counter help", L("kind", "a")).Add(3)
	r.Gauge("fmt_gauge", "gauge help").Set(1.25)
	r.Histogram("fmt_seconds", "hist help", []float64{0.1, 1}).Observe(0.05)
	r.CounterFunc("fmt_fn_total", "fn counter", func() uint64 { return 7 })

	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	text := buf.String()

	for _, want := range []string{
		"# HELP fmt_total counter help",
		"# TYPE fmt_total counter",
		`fmt_total{kind="a"} 3`,
		"fmt_gauge 1.25",
		`fmt_seconds_bucket{le="0.1"} 1`,
		`fmt_seconds_bucket{le="+Inf"} 1`,
		"fmt_seconds_sum 0.05",
		"fmt_seconds_count 1",
		"fmt_fn_total 7",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("missing %q in output:\n%s", want, text)
		}
	}
	// Every non-comment line must match the sample-line grammar.
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !promLineRE.MatchString(line) {
			t.Errorf("malformed exposition line: %q", line)
		}
	}
}

func TestSnapshotJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("snap_total", "c", L("x", "y")).Add(2)
	r.Histogram("snap_seconds", "h", []float64{1}).Observe(0.5)
	ms := r.Snapshot()
	if len(ms) != 2 {
		t.Fatalf("snapshot len = %d, want 2", len(ms))
	}
	if ms[0].Name != "snap_total" || ms[0].Value != 2 || ms[0].Labels["x"] != "y" {
		t.Fatalf("counter snapshot = %+v", ms[0])
	}
	if ms[1].Count != 1 || len(ms[1].Buckets) != 1 || ms[1].Buckets[0].Count != 1 {
		t.Fatalf("histogram snapshot = %+v", ms[1])
	}
	if _, err := json.Marshal(ms); err != nil {
		t.Fatalf("snapshot not JSON-marshalable: %v", err)
	}
}

func TestHandlerConcatenatesRegistries(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.Counter("ha_total", "a").Inc()
	b.Counter("hb_total", "b").Inc()
	rec := httptest.NewRecorder()
	Handler(a, b).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content-type = %q", ct)
	}
	body := rec.Body.String()
	if !strings.Contains(body, "ha_total 1") || !strings.Contains(body, "hb_total 1") {
		t.Fatalf("handler output missing series:\n%s", body)
	}
}

func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				r.Counter("conc_total", "c", L("w", fmt.Sprint(i%3))).Inc()
				r.Histogram("conc_seconds", "h", nil).Observe(0.001)
				var buf bytes.Buffer
				r.WritePrometheus(&buf)
			}
		}(i)
	}
	wg.Wait()
}

func TestTraceSpanTree(t *testing.T) {
	tr := NewTrace("", "request")
	if tr == nil {
		t.Fatal("NewTrace returned nil while enabled")
	}
	if len(tr.ID) != 16 {
		t.Fatalf("trace ID = %q, want 16 hex chars", tr.ID)
	}
	ctx := ContextWithSpan(context.Background(), tr.Root())
	ctx, s1 := StartSpan(ctx, "stage-one")
	_, s2 := StartSpan(ctx, "stage-two")
	s2.SetAttr("rows", "100")
	s2.End()
	s1.End()
	tr.Root().End()

	d := tr.Data()
	if d.Name != "request" || len(d.Children) != 1 {
		t.Fatalf("root = %+v", d)
	}
	two := d.Find("stage-two")
	if two == nil || two.Attrs["rows"] != "100" {
		t.Fatalf("stage-two = %+v", two)
	}
	if d.Find("missing") != nil {
		t.Fatal("Find invented a span")
	}
	var names []string
	d.Walk(func(sd *SpanData) { names = append(names, sd.Name) })
	if len(names) != 3 {
		t.Fatalf("walk visited %v", names)
	}
}

func TestTraceDisabled(t *testing.T) {
	SetEnabled(false)
	defer SetEnabled(true)
	if tr := NewTrace("", "x"); tr != nil {
		t.Fatal("NewTrace should return nil while disabled")
	}
	// All nil-receiver paths must be safe.
	var tr *Trace
	_ = tr.Data()
	tr.Root().End()
	ctx, s := StartSpan(context.Background(), "orphan")
	if s != nil {
		t.Fatal("StartSpan with no parent should return nil span")
	}
	_ = ctx
}

func TestRemoteSpanAttachment(t *testing.T) {
	// Simulate a worker-side trace crossing an RPC boundary.
	wtr := NewTrace("abc123", "worker:hist2d")
	_, ws := StartSpan(ContextWithSpan(context.Background(), wtr.Root()), "bitmap-eval")
	ws.End()
	wtr.Root().End()
	wire := wtr.Data()

	tr := NewTrace("abc123", "request")
	ctx := ContextWithSpan(context.Background(), tr.Root())
	_, rpc := StartSpan(ctx, "rpc-worker")
	rpc.AttachRemote(wire)
	rpc.End()

	d := tr.Data()
	worker := d.Find("worker:hist2d")
	if worker == nil || !worker.Remote {
		t.Fatalf("remote worker span missing or unmarked: %+v", worker)
	}
	if d.Find("bitmap-eval") == nil {
		t.Fatal("nested remote child missing")
	}
}

func TestCarrySpan(t *testing.T) {
	tr := NewTrace("", "request")
	src := ContextWithSpan(context.Background(), tr.Root())
	dst := CarrySpan(context.Background(), src)
	if SpanFromContext(dst) != tr.Root() {
		t.Fatal("CarrySpan did not transplant the span")
	}
}

func TestSlowLogRing(t *testing.T) {
	l := NewSlowLog(3)
	for i := 1; i <= 5; i++ {
		l.Add(SlowEntry{TraceID: fmt.Sprint(i), DurationMS: float64(i)})
	}
	if l.Len() != 3 {
		t.Fatalf("len = %d, want 3", l.Len())
	}
	snap := l.Snapshot()
	if snap[0].TraceID != "5" || snap[1].TraceID != "4" || snap[2].TraceID != "3" {
		t.Fatalf("snapshot order = %+v", snap)
	}
	rec := httptest.NewRecorder()
	l.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/v1/debug/slow", nil))
	var got []SlowEntry
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatalf("handler JSON: %v", err)
	}
	if len(got) != 3 || got[0].TraceID != "5" {
		t.Fatalf("handler entries = %+v", got)
	}
}

func TestLoggerJSONLines(t *testing.T) {
	var buf bytes.Buffer
	lg := NewLogger(&buf, "test")
	lg.Info("hello", "addr", ":8080", "n", 3, "err", fmt.Errorf("boom"), "dur", 50*time.Millisecond)
	lg.Error("bad")
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d, want 2", len(lines))
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("line 0 not JSON: %v", err)
	}
	if rec["level"] != "info" || rec["component"] != "test" || rec["msg"] != "hello" {
		t.Fatalf("record = %v", rec)
	}
	if rec["addr"] != ":8080" || rec["err"] != "boom" || rec["dur"] != "50ms" {
		t.Fatalf("kv fields = %v", rec)
	}
	if err := json.Unmarshal([]byte(lines[1]), &rec); err != nil || rec["level"] != "error" {
		t.Fatalf("line 1: %v %v", err, rec)
	}
	// Nil logger discards without panicking.
	var nl *Logger
	nl.Info("ignored")
	nl.With("x").Error("ignored")
}

func TestSpanDataGobRoundTrip(t *testing.T) {
	// SpanData crosses net/rpc in gob form; ensure it round-trips JSON too.
	d := &SpanData{Name: "root", DurationMS: 1.5, Children: []*SpanData{{Name: "child", Attrs: map[string]string{"k": "v"}}}}
	b, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	var back SpanData
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Children[0].Attrs["k"] != "v" {
		t.Fatalf("round trip lost attrs: %+v", back)
	}
}
