package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// Logger emits structured JSON-lines log records, one object per line:
//
//	{"ts":"2008-11-15T12:00:00Z","level":"info","component":"qserve","msg":"listening","addr":":8080"}
//
// It replaces the scattered log.Printf calls in cmd/qserve and
// internal/serve so operational output is machine-parseable. A nil
// *Logger discards everything, letting library code log unconditionally.
type Logger struct {
	mu        sync.Mutex
	w         io.Writer
	component string
}

// NewLogger creates a logger writing to w, tagging each record with the
// component name.
func NewLogger(w io.Writer, component string) *Logger {
	return &Logger{w: w, component: component}
}

// With returns a logger sharing the same writer under a new component
// name, so subsystems tag their own records.
func (l *Logger) With(component string) *Logger {
	if l == nil {
		return nil
	}
	return &Logger{w: l.w, component: component}
}

// Info emits one record at level "info". kv is alternating key, value
// pairs; values are rendered with %v unless already a string, number, or
// bool (which JSON-encode natively).
func (l *Logger) Info(msg string, kv ...any) { l.emit("info", msg, kv) }

// Error emits one record at level "error".
func (l *Logger) Error(msg string, kv ...any) { l.emit("error", msg, kv) }

func (l *Logger) emit(level, msg string, kv []any) {
	if l == nil {
		return
	}
	rec := make(map[string]any, 4+len(kv)/2)
	rec["ts"] = time.Now().UTC().Format(time.RFC3339Nano)
	rec["level"] = level
	rec["component"] = l.component
	rec["msg"] = msg
	for i := 0; i+1 < len(kv); i += 2 {
		key, ok := kv[i].(string)
		if !ok {
			key = fmt.Sprintf("%v", kv[i])
		}
		switch v := kv[i+1].(type) {
		case string, bool, int, int64, uint64, float64, float32, nil, json.Marshaler:
			rec[key] = v
		case error:
			rec[key] = v.Error()
		case time.Duration:
			rec[key] = v.String()
		default:
			rec[key] = fmt.Sprintf("%v", v)
		}
	}
	line, err := json.Marshal(rec)
	if err != nil {
		// A value that defeats json.Marshal should not silence the record.
		line = []byte(fmt.Sprintf(`{"ts":%q,"level":%q,"component":%q,"msg":%q,"log_error":%q}`,
			rec["ts"], level, l.component, msg, err.Error()))
	}
	l.mu.Lock()
	l.w.Write(append(line, '\n'))
	l.mu.Unlock()
}
