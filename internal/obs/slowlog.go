package obs

import (
	"encoding/json"
	"net/http"
	"sync"
	"time"
)

// SlowEntry is one completed over-threshold request kept in the slow log.
// The execution-context fields (Shards onward) distinguish the reasons a
// request can be slow — a marked-partial scatter whose budget ran out is
// a different incident than a clean slow scan, and /v1/debug/slow should
// say which one happened.
type SlowEntry struct {
	Time       time.Time `json:"time"`
	TraceID    string    `json:"trace_id"`
	Endpoint   string    `json:"endpoint"`
	DurationMS float64   `json:"duration_ms"`
	Status     int       `json:"status"`
	Detail     string    `json:"detail,omitempty"`
	Trace      *SpanData `json:"trace,omitempty"`

	Shards          int    `json:"shards,omitempty"`           // scatter fan-out (0 = local)
	Fragments       int    `json:"fragments,omitempty"`        // plan fragments executed
	CachedFrags     int    `json:"cached_fragments,omitempty"` // answered from a fragment cache
	Partial         bool   `json:"partial,omitempty"`          // merged with failed shards
	Degraded        string `json:"degraded,omitempty"`         // brownout mode served, if any
	BudgetExhausted bool   `json:"budget_exhausted,omitempty"` // deadline budget ran out mid-plan
	CacheSource     string `json:"cache_source,omitempty"`     // result | coalesced | fragment | coarse
}

// SlowLog is a bounded in-memory ring of slow-query entries, newest kept.
// It backs GET /v1/debug/slow on the admin surface.
type SlowLog struct {
	mu      sync.Mutex
	max     int
	entries []SlowEntry
	next    int
	full    bool
}

// NewSlowLog creates a slow log retaining at most max entries (max <= 0
// defaults to 128).
func NewSlowLog(max int) *SlowLog {
	if max <= 0 {
		max = 128
	}
	return &SlowLog{max: max, entries: make([]SlowEntry, max)}
}

// Add records one entry, evicting the oldest once the ring is full.
func (l *SlowLog) Add(e SlowEntry) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.entries[l.next] = e
	l.next++
	if l.next == l.max {
		l.next = 0
		l.full = true
	}
	l.mu.Unlock()
}

// Snapshot returns the retained entries, newest first.
func (l *SlowLog) Snapshot() []SlowEntry {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	n := l.next
	if l.full {
		n = l.max
	}
	out := make([]SlowEntry, 0, n)
	for i := 0; i < n; i++ {
		idx := l.next - 1 - i
		if idx < 0 {
			idx += l.max
		}
		out = append(out, l.entries[idx])
	}
	return out
}

// Len returns the number of retained entries.
func (l *SlowLog) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.full {
		return l.max
	}
	return l.next
}

// Handler serves the slow log as a JSON array, newest first.
func (l *SlowLog) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		entries := l.Snapshot()
		if entries == nil {
			entries = []SlowEntry{}
		}
		_ = enc.Encode(entries)
	})
}
