package obs

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestBurnMonitorMultiWindowBreach drives a fake clock through a burn
// episode and checks the multi-window rule: a breach fires only while
// BOTH windows sit at or above the threshold, fires once per episode
// (edge-triggered), and re-fires only after the cooldown.
func TestBurnMonitorMultiWindowBreach(t *testing.T) {
	now := time.Unix(1000, 0)
	fires := 0
	m := NewBurnMonitor(BurnConfig{
		Budget:    0.1,
		Fast:      10 * time.Second,
		Slow:      60 * time.Second,
		Threshold: 1,
		Cooldown:  30 * time.Second,
		OnBreach:  func(fast, slow float64) { fires++ },
		nowFn:     func() time.Time { return now },
	})

	// All-good traffic burns nothing.
	for i := 0; i < 9; i++ {
		m.Record(true)
	}
	if r := m.FastRate(); r != 0 {
		t.Fatalf("fast rate after good traffic = %v, want 0", r)
	}

	// The 10th request is bad: 10% bad over a 10% budget is a burn rate
	// of exactly 1.0 in both windows, the breach edge.
	m.Record(false)
	if fires != 1 || m.Breaches() != 1 {
		t.Fatalf("fires=%d breaches=%d after first breach, want 1/1", fires, m.Breaches())
	}
	if r := m.FastRate(); r < 1 {
		t.Fatalf("fast rate at breach = %v, want >= 1", r)
	}

	// Still breaching: edge-triggering must not refire.
	m.Record(false)
	if fires != 1 {
		t.Fatalf("fires=%d while still breaching, want 1 (edge-triggered)", fires)
	}

	// Recovery traffic drops the fast burn below threshold and rearms.
	now = now.Add(5 * time.Second)
	for i := 0; i < 20; i++ {
		m.Record(true)
	}
	if r := m.FastRate(); r >= 1 {
		t.Fatalf("fast rate after recovery = %v, want < 1", r)
	}

	// Past the cooldown, a fresh burst must breach again. Two bads: the
	// first sits inside the cooldown-free fast window but the slow window
	// still remembers the good recovery traffic.
	now = now.Add(27 * time.Second)
	m.Record(false)
	m.Record(false)
	if fires != 2 || m.Breaches() != 2 {
		t.Fatalf("fires=%d breaches=%d after second episode, want 2/2", fires, m.Breaches())
	}

	if fast, slow := m.Windows(); fast != 10*time.Second || slow != 60*time.Second {
		t.Fatalf("Windows() = %v/%v", fast, slow)
	}
}

// TestBurnMonitorSlowWindowGate: a burst that saturates the fast window
// but not the slow one must not breach — the slow window is the
// "not just a blip" proof.
func TestBurnMonitorSlowWindowGate(t *testing.T) {
	now := time.Unix(2000, 0)
	fires := 0
	m := NewBurnMonitor(BurnConfig{
		Budget:    0.1,
		Fast:      5 * time.Second,
		Slow:      60 * time.Second,
		Threshold: 1,
		OnBreach:  func(fast, slow float64) { fires++ },
		nowFn:     func() time.Time { return now },
	})
	// A long good history dilutes the slow window.
	for i := 0; i < 200; i++ {
		m.Record(true)
	}
	now = now.Add(30 * time.Second)
	m.Record(false) // fast: 100% bad; slow: 1/201 bad
	if fires != 0 {
		t.Fatalf("breach fired on a fast-window blip (fast=%v slow=%v)", m.FastRate(), m.SlowRate())
	}
	if m.FastRate() < 1 {
		t.Fatalf("fast rate = %v, want >= 1", m.FastRate())
	}
	if m.SlowRate() >= 1 {
		t.Fatalf("slow rate = %v, want < 1", m.SlowRate())
	}
}

// TestBurnMonitorNilSafe: every method must be a no-op on nil so servers
// without a monitor pay nothing.
func TestBurnMonitorNilSafe(t *testing.T) {
	var m *BurnMonitor
	m.Record(true)
	m.Record(false)
	if m.FastRate() != 0 || m.SlowRate() != 0 || m.Rate(time.Minute) != 0 || m.Breaches() != 0 {
		t.Fatal("nil monitor reported non-zero state")
	}
}

// TestFlightRecorderCaptureSpool: a capture writes the full evidence set
// into a fresh directory, and the spool trims to the configured bound.
func TestFlightRecorderCaptureSpool(t *testing.T) {
	dir := t.TempDir()
	fr, err := NewFlightRecorder(dir, 2, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	slow := NewSlowLog(4)
	slow.Add(SlowEntry{TraceID: "t1", Endpoint: "query", DurationMS: 500, Status: 200})

	for i := 0; i < 3; i++ {
		if !fr.CaptureSync("test-breach", slow, map[string]any{"fast_burn": 2.5}) {
			t.Fatalf("capture %d refused", i)
		}
	}
	if fr.Captures() != 3 {
		t.Fatalf("Captures() = %d, want 3", fr.Captures())
	}

	last := fr.LastCaptureDir()
	if last == "" {
		t.Fatal("no last capture dir")
	}
	for _, f := range []string{"cpu.pprof", "heap.pprof", "slow.json", "meta.json"} {
		if _, err := os.Stat(filepath.Join(last, f)); err != nil {
			t.Errorf("capture missing %s: %v", f, err)
		}
	}
	meta, err := os.ReadFile(filepath.Join(last, "meta.json"))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"reason": "test-breach"`, `"fast_burn": 2.5`} {
		if !strings.Contains(string(meta), want) {
			t.Errorf("meta.json missing %s:\n%s", want, meta)
		}
	}
	sj, err := os.ReadFile(filepath.Join(last, "slow.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(sj), `"trace_id": "t1"`) {
		t.Errorf("slow.json missing the ring entry:\n%s", sj)
	}

	// Spool bound: 3 captures, max 2 kept.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	kept := 0
	for _, e := range entries {
		if e.IsDir() && strings.HasPrefix(e.Name(), "capture-") {
			kept++
		}
	}
	if kept != 2 {
		t.Fatalf("spool kept %d captures, want 2", kept)
	}
}

// TestFlightRecorderNilAndErrors: nil recorders swallow captures, and a
// recorder without a directory is a construction error.
func TestFlightRecorderNilAndErrors(t *testing.T) {
	var fr *FlightRecorder
	if fr.Capture("x", nil, nil) || fr.CaptureSync("x", nil, nil) {
		t.Fatal("nil recorder accepted a capture")
	}
	if fr.Captures() != 0 || fr.Dropped() != 0 || fr.LastCaptureDir() != "" {
		t.Fatal("nil recorder reported state")
	}
	if _, err := NewFlightRecorder("", 4, time.Second); err == nil {
		t.Fatal("empty dir accepted")
	}
}
