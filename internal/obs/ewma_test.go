package obs

import (
	"math"
	"testing"
)

func TestEWMASeedAndSmooth(t *testing.T) {
	e := NewEWMA(0.5)
	if v := e.Value(); v != 0 {
		t.Fatalf("empty value = %v, want 0", v)
	}
	e.Observe(10)
	if v := e.Value(); v != 10 {
		t.Fatalf("seed value = %v, want 10", v)
	}
	e.Observe(20) // 0.5*20 + 0.5*10
	if v := e.Value(); v != 15 {
		t.Fatalf("after second obs = %v, want 15", v)
	}
	e.Observe(math.NaN())
	if v := e.Value(); v != 15 {
		t.Fatalf("NaN must be dropped, value = %v", v)
	}
	if n := e.Count(); n != 2 {
		t.Fatalf("count = %d, want 2", n)
	}
}

func TestEWMAAlphaClamp(t *testing.T) {
	for _, alpha := range []float64{0, -1, 1.5, math.NaN()} {
		e := NewEWMA(alpha)
		e.Observe(1)
		e.Observe(2)
		v := e.Value()
		if v <= 1 || v >= 2 {
			t.Fatalf("alpha %v: value %v outside (1,2)", alpha, v)
		}
	}
}

func TestWindowQuantile(t *testing.T) {
	w := NewWindow(100)
	if q := w.Quantile(0.95); q != 0 {
		t.Fatalf("empty quantile = %v", q)
	}
	for i := 1; i <= 100; i++ {
		w.Observe(float64(i))
	}
	cases := []struct {
		q    float64
		want float64
	}{
		{0, 1}, {0.5, 50}, {0.95, 95}, {0.99, 99}, {1, 100},
	}
	for _, c := range cases {
		if got := w.Quantile(c.q); got != c.want {
			t.Fatalf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if n := w.Len(); n != 100 {
		t.Fatalf("len = %d", n)
	}
}

func TestWindowEvictsOldest(t *testing.T) {
	w := NewWindow(4)
	for i := 1; i <= 8; i++ { // leaves 5,6,7,8
		w.Observe(float64(i))
	}
	if got := w.Quantile(0); got != 5 {
		t.Fatalf("min after wrap = %v, want 5", got)
	}
	if got := w.Quantile(1); got != 8 {
		t.Fatalf("max after wrap = %v, want 8", got)
	}
	w.Reset()
	if w.Len() != 0 || w.Quantile(0.5) != 0 {
		t.Fatal("reset did not empty the window")
	}
	w.Observe(42)
	if got := w.Quantile(1); got != 42 {
		t.Fatalf("post-reset observe = %v", got)
	}
}
