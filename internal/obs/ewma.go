package obs

import (
	"math"
	"sort"
	"sync"
)

// EWMA is a thread-safe exponentially weighted moving average. The first
// observation seeds the average; each later one folds in with weight
// alpha. Control loops use it where a full histogram is overkill — e.g.
// the admission gate's release-interval estimate behind Retry-After.
type EWMA struct {
	mu    sync.Mutex
	alpha float64
	val   float64
	n     uint64
}

// NewEWMA creates an average with the given smoothing factor in (0, 1];
// out-of-range values are clamped. Larger alpha follows recent samples
// more closely.
func NewEWMA(alpha float64) *EWMA {
	if alpha <= 0 || alpha > 1 || math.IsNaN(alpha) {
		alpha = 0.2
	}
	return &EWMA{alpha: alpha}
}

// Observe folds one sample into the average. NaN samples are dropped.
func (e *EWMA) Observe(x float64) {
	if math.IsNaN(x) {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.n == 0 {
		e.val = x
	} else {
		e.val = e.alpha*x + (1-e.alpha)*e.val
	}
	e.n++
}

// Value returns the current average, 0 before any observation.
func (e *EWMA) Value() float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.val
}

// Count returns how many samples have been observed.
func (e *EWMA) Count() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.n
}

// Window is a thread-safe fixed-capacity ring of recent observations with
// exact quantiles over its contents. It is the rolling-latency view a
// control loop steers on: cheap to feed from the hot path, queried once
// per adjustment interval.
type Window struct {
	mu   sync.Mutex
	buf  []float64
	n    int // total observations ever; buf holds the most recent min(n, cap)
	next int // ring write cursor
}

// NewWindow creates a window over the last capacity observations
// (capacity < 1 is clamped to 1).
func NewWindow(capacity int) *Window {
	if capacity < 1 {
		capacity = 1
	}
	return &Window{buf: make([]float64, capacity)}
}

// Observe records one sample, displacing the oldest once full. NaN
// samples are dropped.
func (w *Window) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.buf[w.next] = v
	w.next = (w.next + 1) % len(w.buf)
	w.n++
}

// Len returns how many samples the window currently holds.
func (w *Window) Len() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.lenLocked()
}

func (w *Window) lenLocked() int {
	if w.n < len(w.buf) {
		return w.n
	}
	return len(w.buf)
}

// Quantile returns the q-quantile (q in [0, 1]) of the samples currently
// held, by sorting a copy; 0 when the window is empty. Nearest-rank, so
// Quantile(1) is the maximum and Quantile(0) the minimum.
func (w *Window) Quantile(q float64) float64 {
	w.mu.Lock()
	n := w.lenLocked()
	if n == 0 {
		w.mu.Unlock()
		return 0
	}
	s := append([]float64(nil), w.buf[:n]...)
	w.mu.Unlock()
	sort.Float64s(s)
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	idx := int(math.Ceil(q*float64(n))) - 1
	if idx < 0 {
		idx = 0
	}
	return s[idx]
}

// Reset empties the window.
func (w *Window) Reset() {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.n = 0
	w.next = 0
}
