package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// FlightRecorder captures post-hoc incident evidence — a CPU profile, a
// heap profile, the slow-query ring and a metadata document — into a
// bounded on-disk spool of capture directories. It exists so an SLO
// breach at 3am leaves enough behind for next-morning analysis without
// an operator attached to pprof at the time.
//
// Captures are single-flight: a breach that fires while a capture is
// already running is dropped (the running capture covers the incident).
// The spool keeps the most recent MaxCaptures directories; older ones
// are removed after each successful capture.
type FlightRecorder struct {
	dir    string
	max    int
	cpuDur time.Duration

	busy     atomic.Bool
	seq      atomic.Uint64
	captures atomic.Uint64
	dropped  atomic.Uint64

	mu   sync.Mutex // serializes spool trimming
	last atomic.Value
}

// NewFlightRecorder creates a recorder spooling into dir, keeping the
// maxCaptures most recent capture directories (<= 0 defaults to 8).
// cpuDur is how long the CPU profile samples (<= 0 defaults to 2s).
func NewFlightRecorder(dir string, maxCaptures int, cpuDur time.Duration) (*FlightRecorder, error) {
	if dir == "" {
		return nil, fmt.Errorf("obs: flight recorder needs a directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("obs: flight recorder: %w", err)
	}
	if maxCaptures <= 0 {
		maxCaptures = 8
	}
	if cpuDur <= 0 {
		cpuDur = 2 * time.Second
	}
	return &FlightRecorder{dir: dir, max: maxCaptures, cpuDur: cpuDur}, nil
}

// Captures returns how many captures completed.
func (fr *FlightRecorder) Captures() uint64 {
	if fr == nil {
		return 0
	}
	return fr.captures.Load()
}

// Dropped returns how many capture requests were dropped because a
// capture was already in flight.
func (fr *FlightRecorder) Dropped() uint64 {
	if fr == nil {
		return 0
	}
	return fr.dropped.Load()
}

// LastCaptureDir returns the directory of the most recent completed
// capture ("" before the first).
func (fr *FlightRecorder) LastCaptureDir() string {
	if fr == nil {
		return ""
	}
	if v, ok := fr.last.Load().(string); ok {
		return v
	}
	return ""
}

// Capture asynchronously writes one capture — meta.json, slow.json,
// cpu.pprof, heap.pprof — into a fresh capture directory, then trims the
// spool. reason and meta land in meta.json. It returns immediately; the
// work (including the CPU-profile sampling window) runs in a goroutine.
// Returns false if a capture was already in flight.
func (fr *FlightRecorder) Capture(reason string, slow *SlowLog, meta map[string]any) bool {
	if fr == nil {
		return false
	}
	if !fr.busy.CompareAndSwap(false, true) {
		fr.dropped.Add(1)
		return false
	}
	go func() {
		defer fr.busy.Store(false)
		fr.capture(reason, slow, meta)
	}()
	return true
}

// CaptureSync is Capture but blocking; tests and shutdown paths use it.
func (fr *FlightRecorder) CaptureSync(reason string, slow *SlowLog, meta map[string]any) bool {
	if fr == nil {
		return false
	}
	if !fr.busy.CompareAndSwap(false, true) {
		fr.dropped.Add(1)
		return false
	}
	defer fr.busy.Store(false)
	fr.capture(reason, slow, meta)
	return true
}

func (fr *FlightRecorder) capture(reason string, slow *SlowLog, meta map[string]any) {
	start := time.Now()
	name := fmt.Sprintf("capture-%s-%03d", start.UTC().Format("20060102T150405"), fr.seq.Add(1)%1000)
	dir := filepath.Join(fr.dir, name)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return
	}

	// CPU profile first: it is the only part with a sampling window, and
	// profiling while the incident is still hot is the whole point. A
	// concurrent CPU profile (e.g. an operator on /debug/pprof) makes
	// StartCPUProfile fail; the capture still writes everything else.
	cpuErr := fr.writeCPUProfile(filepath.Join(dir, "cpu.pprof"))
	heapErr := writeHeapProfile(filepath.Join(dir, "heap.pprof"))

	if slow != nil {
		if buf, err := json.MarshalIndent(slow.Snapshot(), "", "  "); err == nil {
			os.WriteFile(filepath.Join(dir, "slow.json"), append(buf, '\n'), 0o644)
		}
	}

	doc := map[string]any{
		"reason":      reason,
		"started_at":  start.UTC().Format(time.RFC3339Nano),
		"duration_ms": float64(time.Since(start)) / float64(time.Millisecond),
		"goroutines":  runtime.NumGoroutine(),
	}
	if cpuErr != nil {
		doc["cpu_profile_error"] = cpuErr.Error()
	}
	if heapErr != nil {
		doc["heap_profile_error"] = heapErr.Error()
	}
	for k, v := range meta {
		doc[k] = v
	}
	if buf, err := json.MarshalIndent(doc, "", "  "); err == nil {
		os.WriteFile(filepath.Join(dir, "meta.json"), append(buf, '\n'), 0o644)
	}

	fr.captures.Add(1)
	fr.last.Store(dir)
	fr.trim()
}

func (fr *FlightRecorder) writeCPUProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := pprof.StartCPUProfile(f); err != nil {
		os.Remove(path)
		return err
	}
	time.Sleep(fr.cpuDur)
	pprof.StopCPUProfile()
	return nil
}

func writeHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return pprof.Lookup("heap").WriteTo(f, 0)
}

// trim removes the oldest capture directories beyond the spool bound.
// Directory names sort chronologically (UTC timestamp prefix).
func (fr *FlightRecorder) trim() {
	fr.mu.Lock()
	defer fr.mu.Unlock()
	entries, err := os.ReadDir(fr.dir)
	if err != nil {
		return
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() && strings.HasPrefix(e.Name(), "capture-") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	for len(names) > fr.max {
		os.RemoveAll(filepath.Join(fr.dir, names[0]))
		names = names[1:]
	}
}
