package obs

import (
	"context"
	"sync"
	"time"
)

// Trace is one request's tree of timed stages. A trace is created at the
// request boundary (or on a worker from a propagated trace ID), carried
// through the stack on the context, and snapshotted with Data for the
// ?debug=trace response, the slow-query log, and cross-RPC attachment.
type Trace struct {
	ID   string
	root *Span
}

// Span is one timed stage. All mutation is serialized on the owning
// trace's lock; a nil *Span is a valid no-op receiver, which is what
// keeps instrumented code free of "is tracing on?" conditionals.
type Span struct {
	tr       *Trace
	name     string
	start    time.Time
	end      time.Time
	attrs    map[string]string
	children []*Span
	remote   []*SpanData
}

// SpanData is the serializable snapshot of a span subtree. It crosses
// process boundaries (net/rpc gob and JSON), so durations are
// self-contained rather than clock-relative.
type SpanData struct {
	Name       string            `json:"name"`
	StartUnixN int64             `json:"start_unix_ns"`
	DurationMS float64           `json:"duration_ms"`
	Attrs      map[string]string `json:"attrs,omitempty"`
	Remote     bool              `json:"remote,omitempty"`
	Children   []*SpanData       `json:"children,omitempty"`
}

// traceMu guards span trees. One process-wide mutex is deliberate: span
// operations are O(1) appends on request paths; a per-trace mutex would
// add a word per span for no measurable win at serving rates.
var traceMu sync.Mutex

// NewTrace creates a trace with an open root span. id == "" generates a
// fresh trace ID. Returns nil while obs is disabled; every method on a
// nil trace or span is a no-op, so callers thread the result through
// unconditionally.
func NewTrace(id, rootName string) *Trace {
	if !enabled.Load() {
		return nil
	}
	if id == "" {
		id = NewTraceID()
	}
	tr := &Trace{ID: id}
	tr.root = &Span{tr: tr, name: rootName, start: time.Now()}
	return tr
}

// Root returns the root span (nil for a nil trace).
func (t *Trace) Root() *Span {
	if t == nil {
		return nil
	}
	return t.root
}

// Data snapshots the whole span tree. Spans that have not ended yet
// report their duration up to now, so an in-flight trace can be embedded
// in a response body before the request fully completes.
func (t *Trace) Data() *SpanData {
	if t == nil {
		return nil
	}
	traceMu.Lock()
	defer traceMu.Unlock()
	return t.root.dataLocked(time.Now())
}

func (s *Span) dataLocked(now time.Time) *SpanData {
	end := s.end
	if end.IsZero() {
		end = now
	}
	d := &SpanData{
		Name:       s.name,
		StartUnixN: s.start.UnixNano(),
		DurationMS: float64(end.Sub(s.start)) / float64(time.Millisecond),
	}
	if len(s.attrs) > 0 {
		d.Attrs = make(map[string]string, len(s.attrs))
		for k, v := range s.attrs {
			d.Attrs[k] = v
		}
	}
	for _, c := range s.children {
		d.Children = append(d.Children, c.dataLocked(now))
	}
	for _, rd := range s.remote {
		rc := *rd
		rc.Remote = true
		d.Children = append(d.Children, &rc)
	}
	return d
}

type spanCtxKey struct{}

// ContextWithSpan returns ctx carrying the span as the current parent.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanCtxKey{}, s)
}

// SpanFromContext returns the current span, or nil.
func SpanFromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(spanCtxKey{}).(*Span)
	return s
}

// CarrySpan returns dst carrying src's current span. Used where work is
// detached from its initiating request context (e.g. a coalesced cache
// flight runs under its own cancellation) but its stages should still
// attribute to the originating trace.
func CarrySpan(dst, src context.Context) context.Context {
	return ContextWithSpan(dst, SpanFromContext(src))
}

// StartSpan opens a child of the context's current span and returns a
// context carrying it. With no trace in flight (or obs disabled) it
// returns (ctx, nil) and costs one context lookup.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent := SpanFromContext(ctx)
	if parent == nil || !enabled.Load() {
		return ctx, nil
	}
	s := &Span{tr: parent.tr, name: name, start: time.Now()}
	traceMu.Lock()
	parent.children = append(parent.children, s)
	traceMu.Unlock()
	return ContextWithSpan(ctx, s), s
}

// End closes the span. Safe on nil and idempotent.
func (s *Span) End() {
	if s == nil {
		return
	}
	traceMu.Lock()
	if s.end.IsZero() {
		s.end = time.Now()
	}
	traceMu.Unlock()
}

// SetAttr records a key/value annotation on the span.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	traceMu.Lock()
	if s.attrs == nil {
		s.attrs = map[string]string{}
	}
	s.attrs[key] = value
	traceMu.Unlock()
}

// AttachRemote adds a serialized remote subtree (e.g. a worker-side trace
// returned over RPC) as a child, marked Remote in snapshots.
func (s *Span) AttachRemote(d *SpanData) {
	if s == nil || d == nil {
		return
	}
	traceMu.Lock()
	s.remote = append(s.remote, d)
	traceMu.Unlock()
}

// TraceID returns the owning trace's ID ("" on nil).
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return s.tr.ID
}

// Trace returns the owning trace (nil on nil span).
func (s *Span) Trace() *Trace {
	if s == nil {
		return nil
	}
	return s.tr
}

// Duration returns the span's closed duration, or time since start while
// still open.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	traceMu.Lock()
	defer traceMu.Unlock()
	if s.end.IsZero() {
		return time.Since(s.start)
	}
	return s.end.Sub(s.start)
}

// Find returns the first span data node with the given name in a
// depth-first walk, or nil — a convenience for tests and tools reading
// trace snapshots.
func (d *SpanData) Find(name string) *SpanData {
	if d == nil {
		return nil
	}
	if d.Name == name {
		return d
	}
	for _, c := range d.Children {
		if f := c.Find(name); f != nil {
			return f
		}
	}
	return nil
}

// Walk visits every node of the snapshot depth-first.
func (d *SpanData) Walk(fn func(*SpanData)) {
	if d == nil {
		return
	}
	fn(d)
	for _, c := range d.Children {
		c.Walk(fn)
	}
}
