// Package obs is the zero-dependency observability substrate: a metrics
// registry (counters, gauges, latency histograms binned by the
// internal/histogram machinery), a lightweight query-stage span tracer
// with cross-process propagation, a bounded slow-query log, and a
// structured JSON-lines logger.
//
// The paper's evaluation hinges on per-stage timing evidence — index
// evaluation vs. raw scan, conditional-histogram computation, and I/O
// measured across nodes (Sections V–VI). This package is how the serving
// stack produces that evidence continuously: every layer registers its
// instruments here, every request carries a span tree through the stack
// (including across cluster RPC boundaries), and the results surface at
// GET /metrics (Prometheus text format), inside /v1/stats (JSON), and at
// /v1/debug/slow (completed traces over a threshold).
//
// Design constraints:
//
//   - No third-party dependencies: Prometheus exposition is hand-written
//     text format; latency histograms reuse internal/histogram's Locator.
//   - Near-zero overhead when idle: counters are single atomics; spans
//     are created only when a trace rides the context; SetEnabled(false)
//     turns tracing and histogram observation into a single atomic load.
//   - Safe for concurrent use throughout.
package obs

import (
	"crypto/rand"
	"encoding/hex"
	"sync/atomic"
)

// enabled gates tracing and histogram observation. Counters and gauges
// stay live regardless, because legacy stats surfaces are backed by them.
var enabled atomic.Bool

func init() { enabled.Store(true) }

// SetEnabled switches tracing and latency-histogram observation on or
// off globally. Off approximates a no-op-obs build for overhead
// measurement: NewTrace returns nil (so no spans are allocated anywhere)
// and Histogram.Observe returns after one atomic load.
func SetEnabled(v bool) { enabled.Store(v) }

// Enabled reports whether tracing and histogram observation are on.
func Enabled() bool { return enabled.Load() }

// NewTraceID returns a fresh 16-hex-digit trace identifier.
func NewTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is effectively fatal elsewhere; degrade to a
		// constant rather than panic in an observability path.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}
