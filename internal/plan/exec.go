package plan

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"sync"

	"repro/internal/fastquery"
	"repro/internal/histogram"
	"repro/internal/obs"
)

// PartialPolicy controls what Execute does when a shard cannot be reached
// (all replicas down, retries exhausted).
type PartialPolicy int

const (
	// FailFast aborts the whole operation on the first shard failure.
	FailFast PartialPolicy = iota
	// ReturnPartial merges the surviving shards' partials and marks the
	// result Partial, listing the failed shards — a degraded-but-usable
	// answer, mirroring the brownout convention.
	ReturnPartial
)

// Runner evaluates one fragment on one shard. The scatter client
// implements it with RPCs (replica failover, hedging); the serving layer
// implements it in-process for the one-shard local case.
type Runner interface {
	RunFragment(ctx context.Context, shard int, f Fragment) (*FragmentResult, error)
}

// Execute plans and runs one operation: it cuts the query into fragments
// per the shard map, scatters them through the runner, and merges the
// partials. Rows must be the step's row count (used to compute shard row
// ranges).
//
// Routing preserves bit-identity with single-process execution:
//
//   - Adaptive binning is not mergeable (edges depend on the global data
//     distribution), and unconditional histograms with no explicit range
//     have index-resolution fast paths that a scatter would bypass — both
//     run "wholesale": the original spec evaluated over the whole step on
//     the key's home shard.
//   - Uniform histograms with explicit ranges scatter directly; partials
//     share deterministically recomputed edges and merge bin-wise.
//   - Conditional uniform histograms with data-derived ranges run in two
//     phases: scatter min/max over the selected rows, merge, fix the spec
//     range, then scatter the histogram — exactly the computation the
//     single process does in one address space.
//   - Counts always scatter and sum.
func Execute(ctx context.Context, q Query, m ShardMap, rows uint64, r Runner, policy PartialPolicy) (*Result, error) {
	switch q.Op {
	case OpCount:
		return execCount(ctx, q, m, rows, r, policy)
	case OpHist1D:
		return execHist1D(ctx, q, m, rows, r, policy)
	case OpHist2D:
		return execHist2D(ctx, q, m, rows, r, policy)
	case OpSelect:
		return execSelect(ctx, q, m, rows, r, policy)
	default:
		return nil, fmt.Errorf("plan: unknown op %v", q.Op)
	}
}

// task pairs a fragment with its target shard.
type task struct {
	shard int
	frag  Fragment
}

// scatterTasks builds one fragment per non-empty shard row range. An
// empty task list (zero-row step) signals the caller to fall back to a
// single wholesale fragment.
func scatterTasks(m ShardMap, rows uint64, mk func(RowRange) Fragment) []task {
	tasks := make([]task, 0, m.Shards)
	for i := 0; i < m.Shards; i++ {
		rr := m.Range(i, rows)
		if rr.Hi <= rr.Lo {
			continue
		}
		tasks = append(tasks, task{shard: i, frag: mk(rr)})
	}
	return tasks
}

// runTasks scatters the tasks concurrently and collects partials. It
// returns the per-task results (nil where a task failed), the sorted
// distinct failed shard indices, whether any failure was deadline-budget
// exhaustion, and an error when the operation cannot proceed: context
// canceled, a fatal (non-retryable) fragment error, every task failed,
// or any task failed under FailFast.
func runTasks(ctx context.Context, r Runner, tasks []task, policy PartialPolicy) ([]*FragmentResult, []int, bool, error) {
	sctx, scatterSpan := obs.StartSpan(ctx, "scatter")
	scatterSpan.SetAttr("fragments", strconv.Itoa(len(tasks)))
	if len(tasks) > 0 {
		scatterSpan.SetAttr("op", tasks[0].frag.Op.String())
	}
	defer scatterSpan.End()

	results := make([]*FragmentResult, len(tasks))
	errs := make([]error, len(tasks))
	var wg sync.WaitGroup
	for i := range tasks {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			t := tasks[i]
			fctx, span := obs.StartSpan(sctx, "fragment")
			span.SetAttr("shard", strconv.Itoa(t.shard))
			span.SetAttr("op", t.frag.Op.String())
			res, err := r.RunFragment(fctx, t.shard, t.frag)
			if err != nil {
				span.SetAttr("error", err.Error())
			}
			span.End()
			results[i], errs[i] = res, err
		}(i)
	}
	wg.Wait()

	if err := ctx.Err(); err != nil {
		return nil, nil, false, err
	}
	var firstErr error
	var exhausted bool
	failed := map[int]bool{}
	for i, err := range errs {
		if err == nil {
			continue
		}
		if fastquery.IsFatal(err) {
			return nil, nil, false, err
		}
		failed[tasks[i].shard] = true
		if fastquery.IsExhausted(err) {
			// Deadline-budget exhaustion is the partial contract working:
			// under BOTH policies the shard is marked failed and the
			// survivors merge into a marked partial. Escalating to an error
			// would turn a request that still has time to ship a degraded
			// answer into a 504.
			exhausted = true
			continue
		}
		if firstErr == nil {
			firstErr = fmt.Errorf("plan: shard %d: %w", tasks[i].shard, err)
		}
	}
	if firstErr != nil && (policy == FailFast || len(failed) >= len(tasks)) {
		return nil, nil, false, firstErr
	}
	shards := make([]int, 0, len(failed))
	for s := range failed {
		shards = append(shards, s)
	}
	sort.Ints(shards)
	return results, shards, exhausted, nil
}

// runWholesale executes a single whole-step fragment on its home shard.
// There is nothing to merge, so a failure is an error regardless of
// policy (the runner has already exhausted that shard's replicas) —
// except deadline-budget exhaustion, which the exec* callers convert
// into a marked-partial empty result.
func runWholesale(ctx context.Context, m ShardMap, r Runner, f Fragment) (*FragmentResult, int, error) {
	home := m.Home(f.Key())
	fctx, span := obs.StartSpan(ctx, "fragment")
	span.SetAttr("shard", strconv.Itoa(home))
	span.SetAttr("op", f.Op.String())
	res, err := r.RunFragment(fctx, home, f)
	if err != nil {
		span.SetAttr("error", err.Error())
	}
	span.End()
	if err != nil {
		return nil, home, err
	}
	return res, home, nil
}

func (q Query) fragment(op FragOp, rr RowRange) Fragment {
	return Fragment{
		Op: op, Dataset: q.Dataset, Step: q.Step, Rows: rr,
		Query: q.Query, Backend: q.Backend, Spec1: q.Spec1, Spec2: q.Spec2,
	}
}

func execCount(ctx context.Context, q Query, m ShardMap, rows uint64, r Runner, policy PartialPolicy) (*Result, error) {
	mode := "scatter"
	if m.Shards <= 1 {
		mode = "local"
	}
	tasks := scatterTasks(m, rows, func(rr RowRange) Fragment {
		if m.Shards <= 1 {
			rr = RowRange{} // whole step: cheaper unfiltered path
		}
		return q.fragment(FragCount, rr)
	})
	if len(tasks) == 0 {
		tasks = []task{{shard: 0, frag: q.fragment(FragCount, RowRange{})}}
	}
	parts, failedShards, exhausted, err := runTasks(ctx, r, tasks, policy)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Mode: mode, Fragments: len(tasks), Failed: failedShards,
		Partial: len(failedShards) > 0, BudgetExhausted: exhausted,
	}
	for _, p := range parts {
		if p != nil {
			res.Count += p.Count
		}
	}
	return res, nil
}

// execSelect scatters FragSelect fragments and merges the per-shard
// position lists. Shard row ranges are contiguous, disjoint and ascending
// by shard index, and each partial is sorted within its range, so
// concatenation in task order yields the globally sorted position list —
// identical to the single-process selection regardless of the split.
func execSelect(ctx context.Context, q Query, m ShardMap, rows uint64, r Runner, policy PartialPolicy) (*Result, error) {
	mode := "scatter"
	if m.Shards <= 1 {
		mode = "local"
	}
	tasks := scatterTasks(m, rows, func(rr RowRange) Fragment {
		if m.Shards <= 1 {
			rr = RowRange{} // whole step: one fragment, no clipping
		}
		return q.fragment(FragSelect, rr)
	})
	if len(tasks) == 0 { // zero-row step: nothing to select
		return &Result{Mode: mode}, nil
	}
	parts, failedShards, exhausted, err := runTasks(ctx, r, tasks, policy)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Mode: mode, Fragments: len(tasks), Failed: failedShards,
		Partial: len(failedShards) > 0, BudgetExhausted: exhausted,
	}
	total := 0
	for _, p := range parts {
		if p != nil {
			total += len(p.Sel)
		}
	}
	res.Sel = make([]uint64, 0, total)
	for _, p := range parts {
		if p != nil {
			res.Sel = append(res.Sel, p.Sel...)
			res.Count += p.Count
		}
	}
	return res, nil
}

func execHist1D(ctx context.Context, q Query, m ShardMap, rows uint64, r Runner, policy PartialPolicy) (*Result, error) {
	spec := q.Spec1
	wholesale := m.Shards <= 1 || rows == 0 ||
		spec.Binning == histogram.Adaptive ||
		(q.Query == "" && !spec.HasRange())
	if wholesale {
		f := q.fragment(FragWhole1D, RowRange{})
		mode := "wholesale"
		if m.Shards <= 1 {
			mode = "local"
		}
		part, home, err := runWholesale(ctx, m, r, f)
		if err != nil {
			if fastquery.IsExhausted(err) {
				// Nothing survived to merge, but the contract holds under
				// both policies: a spent budget yields a marked-partial
				// empty histogram, never an error (which would be a 504).
				res := &Result{Mode: mode, Fragments: 1, BudgetExhausted: true}
				res.addFailed([]int{home})
				res.Hist1, _ = mergeHist1(spec, nil)
				return res, nil
			}
			return nil, err
		}
		return &Result{Hist1: part.Hist1, Mode: mode, Fragments: 1}, nil
	}

	res := &Result{Mode: "scatter"}
	if !spec.HasRange() {
		vr, err := minmaxPhase(ctx, q, m, rows, r, policy, res, []string{spec.Var})
		if err != nil {
			return nil, err
		}
		spec.Lo, spec.Hi = vr[spec.Var].Lo, vr[spec.Var].Hi
	}
	tasks := scatterTasks(m, rows, func(rr RowRange) Fragment {
		f := q.fragment(FragHist1D, rr)
		f.Spec1 = spec
		return f
	})
	parts, failedShards, exhausted, err := runTasks(ctx, r, tasks, policy)
	if err != nil {
		return nil, err
	}
	res.Fragments += len(tasks)
	res.addFailed(failedShards)
	res.BudgetExhausted = res.BudgetExhausted || exhausted
	merged, err := mergeHist1(spec, parts)
	if err != nil {
		return nil, err
	}
	res.Hist1 = merged
	return res, nil
}

func execHist2D(ctx context.Context, q Query, m ShardMap, rows uint64, r Runner, policy PartialPolicy) (*Result, error) {
	spec := q.Spec2
	needX, needY := !spec.HasXRange(), !spec.HasYRange()
	wholesale := m.Shards <= 1 || rows == 0 ||
		spec.Binning == histogram.Adaptive ||
		(q.Query == "" && (needX || needY))
	if wholesale {
		f := q.fragment(FragWhole2D, RowRange{})
		mode := "wholesale"
		if m.Shards <= 1 {
			mode = "local"
		}
		part, home, err := runWholesale(ctx, m, r, f)
		if err != nil {
			if fastquery.IsExhausted(err) {
				res := &Result{Mode: mode, Fragments: 1, BudgetExhausted: true}
				res.addFailed([]int{home})
				res.Hist2, _ = mergeHist2(spec, nil)
				return res, nil
			}
			return nil, err
		}
		return &Result{Hist2: part.Hist2, Mode: mode, Fragments: 1}, nil
	}

	res := &Result{Mode: "scatter"}
	if needX || needY {
		var vars []string
		if needX {
			vars = append(vars, spec.XVar)
		}
		if needY && spec.YVar != spec.XVar {
			vars = append(vars, spec.YVar)
		}
		vr, err := minmaxPhase(ctx, q, m, rows, r, policy, res, vars)
		if err != nil {
			return nil, err
		}
		if needX {
			spec.XLo, spec.XHi = vr[spec.XVar].Lo, vr[spec.XVar].Hi
		}
		if needY {
			y := vr[spec.YVar]
			if spec.YVar == spec.XVar {
				y = vr[spec.XVar]
			}
			spec.YLo, spec.YHi = y.Lo, y.Hi
		}
	}
	tasks := scatterTasks(m, rows, func(rr RowRange) Fragment {
		f := q.fragment(FragHist2D, rr)
		f.Spec2 = spec
		return f
	})
	parts, failedShards, exhausted, err := runTasks(ctx, r, tasks, policy)
	if err != nil {
		return nil, err
	}
	res.Fragments += len(tasks)
	res.addFailed(failedShards)
	res.BudgetExhausted = res.BudgetExhausted || exhausted
	merged, err := mergeHist2(spec, parts)
	if err != nil {
		return nil, err
	}
	res.Hist2 = merged
	return res, nil
}

// minmaxPhase runs phase one of a two-phase histogram: scatter per-shard
// min/max of the selected rows for the named variables and merge. A shard
// lost here (under ReturnPartial) marks the result Partial — the derived
// range then reflects the survivors, like every other partial answer.
func minmaxPhase(ctx context.Context, q Query, m ShardMap, rows uint64, r Runner, policy PartialPolicy, res *Result, vars []string) (map[string]VarRange, error) {
	tasks := scatterTasks(m, rows, func(rr RowRange) Fragment {
		f := q.fragment(FragMinMax, rr)
		f.Vars = vars
		return f
	})
	parts, failedShards, exhausted, err := runTasks(ctx, r, tasks, policy)
	if err != nil {
		return nil, err
	}
	res.Fragments += len(tasks)
	res.addFailed(failedShards)
	res.BudgetExhausted = res.BudgetExhausted || exhausted
	_, span := obs.StartSpan(ctx, "merge-range")
	merged := mergeRanges(vars, parts)
	span.End()
	return merged, nil
}

// addFailed unions newly failed shards into the result and flips Partial.
func (res *Result) addFailed(shards []int) {
	if len(shards) == 0 {
		return
	}
	seen := map[int]bool{}
	for _, s := range res.Failed {
		seen[s] = true
	}
	for _, s := range shards {
		if !seen[s] {
			res.Failed = append(res.Failed, s)
			seen[s] = true
		}
	}
	sort.Ints(res.Failed)
	res.Partial = true
}

// mergeHist1 folds 1D partials bin-wise. The first partial is cloned so
// merging never mutates a shard-cached value. When every partial is nil
// (all shards failed — runTasks only lets that through when it returned
// an error, so this is defensive) an empty histogram over the spec's
// edges is returned.
func mergeHist1(spec histogram.Spec1D, parts []*FragmentResult) (*histogram.Hist1D, error) {
	var merged *histogram.Hist1D
	for _, p := range parts {
		if p == nil || p.Hist1 == nil {
			continue
		}
		if merged == nil {
			merged = &histogram.Hist1D{
				Var:    p.Hist1.Var,
				Edges:  append([]float64(nil), p.Hist1.Edges...),
				Counts: append([]uint64(nil), p.Hist1.Counts...),
			}
			continue
		}
		if err := merged.Merge(p.Hist1); err != nil {
			return nil, fmt.Errorf("plan: merge 1d partials: %w", err)
		}
	}
	if merged == nil {
		merged = &histogram.Hist1D{
			Var:    spec.Var,
			Edges:  histogram.UniformEdges(spec.Lo, spec.Hi, spec.Bins),
			Counts: make([]uint64, spec.Bins),
		}
	}
	return merged, nil
}

// mergeHist2 is mergeHist1 for 2D partials.
func mergeHist2(spec histogram.Spec2D, parts []*FragmentResult) (*histogram.Hist2D, error) {
	var merged *histogram.Hist2D
	for _, p := range parts {
		if p == nil || p.Hist2 == nil {
			continue
		}
		if merged == nil {
			merged = &histogram.Hist2D{
				XVar:   p.Hist2.XVar,
				YVar:   p.Hist2.YVar,
				XEdges: append([]float64(nil), p.Hist2.XEdges...),
				YEdges: append([]float64(nil), p.Hist2.YEdges...),
				Counts: append([]uint64(nil), p.Hist2.Counts...),
			}
			continue
		}
		if err := merged.Merge(p.Hist2); err != nil {
			return nil, fmt.Errorf("plan: merge 2d partials: %w", err)
		}
	}
	if merged == nil {
		merged = &histogram.Hist2D{
			XVar:   spec.XVar,
			YVar:   spec.YVar,
			XEdges: histogram.UniformEdges(spec.XLo, spec.XHi, spec.XBins),
			YEdges: histogram.UniformEdges(spec.YLo, spec.YHi, spec.YBins),
			Counts: make([]uint64, spec.XBins*spec.YBins),
		}
	}
	return merged, nil
}
