package plan

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"repro/internal/fastquery"
	"repro/internal/histogram"
)

// budgetRunner wraps fakeRunner, answering marked budget-exhaustion for
// the chosen shards — the error shape a fragment produces when it arrives
// with (or runs into) a spent deadline budget.
type budgetRunner struct {
	fakeRunner
	exhaustShards map[int]bool
}

func (r *budgetRunner) RunFragment(ctx context.Context, shard int, f Fragment) (*FragmentResult, error) {
	if r.exhaustShards[shard] {
		return nil, fastquery.Exhaustedf("shard %d: fragment arrived with budget already spent", shard)
	}
	return r.fakeRunner.RunFragment(ctx, shard, f)
}

// TestBudgetExhaustionPartials is the contract table: a fragment whose
// deadline budget was already spent yields a marked-partial merge — never
// an error (the serve layer would turn that into a 504) — under BOTH
// policies, unlike ordinary shard failures which stay errors under
// FailFast.
func TestBudgetExhaustionPartials(t *testing.T) {
	m := ShardMap{Shards: 4}
	countQ := Query{Op: OpCount, Dataset: "d", Query: "(px > 1)", Backend: fastquery.Scan}
	h1Q := Query{Op: OpHist1D, Dataset: "d", Query: "(px > 1)", Backend: fastquery.Scan,
		Spec1: histogram.Spec1D{Var: "x", Bins: 8, Lo: 0, Hi: 1}}
	h2Q := Query{Op: OpHist2D, Dataset: "d", Query: "(px > 1)", Backend: fastquery.Scan,
		Spec2: histogram.Spec2D{XVar: "x", YVar: "y", XBins: 4, YBins: 4,
			XLo: 0, XHi: 1, YLo: 0, YHi: 1}}
	// Adaptive binning routes wholesale to the key's home shard: budget
	// exhaustion there must also settle as a marked-partial empty answer.
	adaptiveQ := Query{Op: OpHist1D, Dataset: "d", Query: "(px > 1)", Backend: fastquery.Scan,
		Spec1: histogram.Spec1D{Var: "x", Bins: 8, Lo: 0, Hi: 1, Binning: histogram.Adaptive}}

	for _, policy := range []PartialPolicy{FailFast, ReturnPartial} {
		for name, q := range map[string]Query{
			"count": countQ, "hist1d": h1Q, "hist2d": h2Q, "adaptive-wholesale": adaptiveQ,
		} {
			exhaust := map[int]bool{2: true}
			if name == "adaptive-wholesale" {
				// Wholesale runs only on the home shard; exhaust every
				// shard so the single fragment is hit regardless of home.
				exhaust = map[int]bool{0: true, 1: true, 2: true, 3: true}
			}
			r := &budgetRunner{exhaustShards: exhaust}
			res, err := Execute(context.Background(), q, m, 1000, r, policy)
			if err != nil {
				t.Fatalf("%s/policy=%d: budget exhaustion escalated to error: %v", name, policy, err)
			}
			if !res.Partial || len(res.Failed) == 0 {
				t.Fatalf("%s/policy=%d: res = %+v, want marked partial", name, policy, res)
			}
			if name == "hist1d" || name == "adaptive-wholesale" {
				if res.Hist1 == nil {
					t.Fatalf("%s/policy=%d: partial without histogram", name, policy)
				}
			}
			if name == "hist2d" && res.Hist2 == nil {
				t.Fatalf("%s/policy=%d: partial without histogram", name, policy)
			}
		}
	}
}

// TestBudgetAllShardsExhausted: even a fully exhausted fleet returns a
// marked-partial empty answer, not an error — the request still has slack
// to ship it before the 504 deadline.
func TestBudgetAllShardsExhausted(t *testing.T) {
	m := ShardMap{Shards: 4}
	all := map[int]bool{0: true, 1: true, 2: true, 3: true}
	for _, policy := range []PartialPolicy{FailFast, ReturnPartial} {
		r := &budgetRunner{exhaustShards: all}
		q := Query{Op: OpCount, Dataset: "d", Query: "(px > 1)", Backend: fastquery.Scan}
		res, err := Execute(context.Background(), q, m, 1000, r, policy)
		if err != nil {
			t.Fatalf("policy=%d: all-exhausted errored: %v", policy, err)
		}
		if !res.Partial || res.Count != 0 || !reflect.DeepEqual(res.Failed, []int{0, 1, 2, 3}) {
			t.Fatalf("policy=%d: res = %+v", policy, res)
		}

		h := Query{Op: OpHist1D, Dataset: "d", Query: "(px > 1)", Backend: fastquery.Scan,
			Spec1: histogram.Spec1D{Var: "x", Bins: 8, Lo: 0, Hi: 1}}
		r = &budgetRunner{exhaustShards: all}
		hres, err := Execute(context.Background(), h, m, 1000, r, policy)
		if err != nil {
			t.Fatalf("policy=%d: hist all-exhausted errored: %v", policy, err)
		}
		if !hres.Partial || hres.Hist1 == nil {
			t.Fatalf("policy=%d: hres = %+v", policy, hres)
		}
		for _, c := range hres.Hist1.Counts {
			if c != 0 {
				t.Fatalf("policy=%d: exhausted merge has counts", policy)
			}
		}
	}
}

// TestBudgetMixedWithRealFailure: a genuinely failed shard keeps its
// policy semantics (error under FailFast) even when another shard only
// exhausted its budget; under ReturnPartial both are listed.
func TestBudgetMixedWithRealFailure(t *testing.T) {
	m := ShardMap{Shards: 4}
	q := Query{Op: OpCount, Dataset: "d", Query: "(px > 1)", Backend: fastquery.Scan}

	mk := func() *budgetRunner {
		r := &budgetRunner{exhaustShards: map[int]bool{1: true}}
		r.failShards = map[int]bool{3: true}
		return r
	}
	if _, err := Execute(context.Background(), q, m, 1000, mk(), FailFast); err == nil {
		t.Fatal("FailFast swallowed a real shard failure")
	}
	res, err := Execute(context.Background(), q, m, 1000, mk(), ReturnPartial)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Partial || !reflect.DeepEqual(res.Failed, []int{1, 3}) {
		t.Fatalf("res = %+v, want failed [1 3]", res)
	}
}

// TestBudgetErrorNotRetryable: the exhausted marker must survive error
// wrapping and never read as fatal (which would poison the whole query).
func TestBudgetErrorClassification(t *testing.T) {
	err := fastquery.Exhaustedf("shard 2: out of time")
	if !fastquery.IsExhausted(err) {
		t.Fatal("marker lost")
	}
	if fastquery.IsFatal(err) {
		t.Fatal("exhausted error reads as fatal")
	}
	wrapped := errors.New("rpc: " + err.Error()) // the net/rpc string flattening
	if !fastquery.IsExhausted(wrapped) {
		t.Fatal("marker did not survive string flattening")
	}
}
