package plan

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"repro/internal/fastquery"
	"repro/internal/histogram"
)

func TestShardMapRangePartition(t *testing.T) {
	for _, shards := range []int{1, 2, 3, 5, 7, 16} {
		for _, rows := range []uint64{0, 1, 2, 99, 100, 101, 1 << 20} {
			m := ShardMap{Shards: shards}
			var covered uint64
			prevHi := uint64(0)
			minSize, maxSize := rows+1, uint64(0)
			for i := 0; i < shards; i++ {
				rr := m.Range(i, rows)
				if rr.Lo != prevHi {
					t.Fatalf("shards=%d rows=%d: shard %d starts at %d, want %d", shards, rows, i, rr.Lo, prevHi)
				}
				if rr.Hi < rr.Lo {
					t.Fatalf("shards=%d rows=%d: shard %d inverted range %+v", shards, rows, i, rr)
				}
				size := rr.Hi - rr.Lo
				if size < minSize {
					minSize = size
				}
				if size > maxSize {
					maxSize = size
				}
				covered += size
				prevHi = rr.Hi
			}
			if covered != rows || prevHi != rows {
				t.Fatalf("shards=%d rows=%d: covered %d, ended at %d", shards, rows, covered, prevHi)
			}
			if shards > 1 && maxSize-minSize > 1 {
				t.Fatalf("shards=%d rows=%d: imbalance %d", shards, rows, maxSize-minSize)
			}
		}
	}
}

func TestShardMapHome(t *testing.T) {
	m := ShardMap{Shards: 5}
	for _, key := range []string{"", "a", "hist1d\x1flwfa\x1f3", "another-key"} {
		h := m.Home(key)
		if h < 0 || h >= 5 {
			t.Fatalf("Home(%q) = %d out of range", key, h)
		}
		if h2 := m.Home(key); h2 != h {
			t.Fatalf("Home(%q) not deterministic: %d then %d", key, h, h2)
		}
	}
	if h := (ShardMap{Shards: 1}).Home("x"); h != 0 {
		t.Fatalf("single-shard Home = %d", h)
	}
	if h := (ShardMap{}).Home("x"); h != 0 {
		t.Fatalf("zero-shard Home = %d", h)
	}
}

func TestFragmentKey(t *testing.T) {
	base := Fragment{
		Op: FragHist1D, Dataset: "lwfa", Step: 2, Rows: RowRange{10, 20},
		Query: "(px > 0.5)", Backend: fastquery.FastBit,
		Spec1: histogram.Spec1D{Var: "x", Bins: 64, Lo: 0, Hi: 1},
	}
	if base.Key() != base.Key() {
		t.Fatal("Key not deterministic")
	}
	seen := map[string]string{base.Key(): "base"}
	mutations := map[string]Fragment{}
	f := base
	f.Step = 3
	mutations["step"] = f
	f = base
	f.Rows = RowRange{10, 21}
	mutations["rows"] = f
	f = base
	f.Query = "(px > 0.6)"
	mutations["query"] = f
	f = base
	f.Backend = fastquery.Scan
	mutations["backend"] = f
	f = base
	f.Spec1.Bins = 128
	mutations["bins"] = f
	f = base
	f.Spec1.Hi = 2
	mutations["hi"] = f
	f = base
	f.Op = FragWhole1D
	mutations["op"] = f
	for name, m := range mutations {
		k := m.Key()
		if prev, dup := seen[k]; dup {
			t.Fatalf("mutation %q collides with %q: %q", name, prev, k)
		}
		seen[k] = name
	}
}

func TestMergeRanges(t *testing.T) {
	parts := []*FragmentResult{
		{MinMax: []VarRange{{Var: "x", Lo: -1, Hi: 2, N: 10}}},
		nil, // failed shard under ReturnPartial
		{MinMax: []VarRange{{Var: "x", Lo: -3, Hi: 1, N: 4}}},
		{MinMax: []VarRange{{Var: "x", Lo: 99, Hi: 100, N: 0}}}, // empty selection: skipped
	}
	got := mergeRanges([]string{"x"}, parts)["x"]
	want := VarRange{Var: "x", Lo: -3, Hi: 2, N: 14}
	if got != want {
		t.Fatalf("merged = %+v, want %+v", got, want)
	}

	// All-empty collapses to (0, 0), matching scan.MinMax on no rows.
	empty := mergeRanges([]string{"x"}, []*FragmentResult{
		{MinMax: []VarRange{{Var: "x", Lo: 5, Hi: 6, N: 0}}},
	})["x"]
	if empty.Lo != 0 || empty.Hi != 0 || empty.N != 0 {
		t.Fatalf("all-empty merge = %+v", empty)
	}
}

// fakeRunner records dispatched fragments and answers them synthetically;
// failShards simulates unreachable shards with retryable errors.
type fakeRunner struct {
	mu         sync.Mutex
	calls      []Fragment
	callShards []int
	failShards map[int]bool
	fatalAll   bool
}

func (r *fakeRunner) RunFragment(_ context.Context, shard int, f Fragment) (*FragmentResult, error) {
	r.mu.Lock()
	r.calls = append(r.calls, f)
	r.callShards = append(r.callShards, shard)
	r.mu.Unlock()
	if r.fatalAll {
		return nil, fastquery.Fatalf("poison fragment")
	}
	if r.failShards[shard] {
		return nil, errors.New("connection refused")
	}
	switch f.Op {
	case FragCount:
		return &FragmentResult{Count: f.Rows.Hi - f.Rows.Lo}, nil
	case FragMinMax:
		var mm []VarRange
		for _, v := range f.Vars {
			mm = append(mm, VarRange{Var: v, Lo: float64(shard), Hi: float64(shard + 10), N: 1})
		}
		return &FragmentResult{MinMax: mm}, nil
	case FragHist1D, FragWhole1D:
		return &FragmentResult{Hist1: &histogram.Hist1D{
			Var:    f.Spec1.Var,
			Edges:  histogram.UniformEdges(f.Spec1.Lo, f.Spec1.Hi, f.Spec1.Bins),
			Counts: make([]uint64, f.Spec1.Bins),
		}}, nil
	case FragHist2D, FragWhole2D:
		return &FragmentResult{Hist2: &histogram.Hist2D{
			XVar:   f.Spec2.XVar,
			YVar:   f.Spec2.YVar,
			XEdges: histogram.UniformEdges(f.Spec2.XLo, f.Spec2.XHi, f.Spec2.XBins),
			YEdges: histogram.UniformEdges(f.Spec2.YLo, f.Spec2.YHi, f.Spec2.YBins),
			Counts: make([]uint64, f.Spec2.XBins*f.Spec2.YBins),
		}}, nil
	}
	return nil, fmt.Errorf("unexpected op %v", f.Op)
}

func (r *fakeRunner) ops() []FragOp {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]FragOp, len(r.calls))
	for i, f := range r.calls {
		out[i] = f.Op
	}
	return out
}

func histQuery(q string, spec histogram.Spec1D) Query {
	return Query{Op: OpHist1D, Dataset: "d", Step: 0, Query: q,
		Backend: fastquery.Scan, Spec1: spec}
}

func TestRoutingWholesale(t *testing.T) {
	m := ShardMap{Shards: 4}
	cases := map[string]Query{
		"adaptive": histQuery("(px > 1)", histogram.Spec1D{
			Var: "x", Bins: 8, Lo: 0, Hi: 1, Binning: histogram.Adaptive}),
		"uncond-no-range": histQuery("", histogram.NewSpec1D("x", 8)),
	}
	for name, q := range cases {
		r := &fakeRunner{}
		res, err := Execute(context.Background(), q, m, 1000, r, ReturnPartial)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Mode != "wholesale" || res.Fragments != 1 {
			t.Fatalf("%s: mode=%q fragments=%d, want wholesale/1", name, res.Mode, res.Fragments)
		}
		if got := r.ops(); len(got) != 1 || got[0] != FragWhole1D {
			t.Fatalf("%s: ops = %v", name, got)
		}
		r.mu.Lock()
		f, home := r.calls[0], r.callShards[0]
		r.mu.Unlock()
		if !f.Rows.Whole() {
			t.Fatalf("%s: wholesale fragment rows = %+v, want whole step", name, f.Rows)
		}
		if want := m.Home(f.Key()); home != want {
			t.Fatalf("%s: wholesale landed on shard %d, want home %d", name, home, want)
		}
	}
}

func TestRoutingTwoPhase(t *testing.T) {
	m := ShardMap{Shards: 3}
	q := histQuery("(px > 1)", histogram.NewSpec1D("x", 8)) // no range: needs minmax phase
	r := &fakeRunner{}
	res, err := Execute(context.Background(), q, m, 999, r, ReturnPartial)
	if err != nil {
		t.Fatal(err)
	}
	ops := r.ops()
	if len(ops) != 6 {
		t.Fatalf("fragments = %v, want 3 minmax + 3 hist", ops)
	}
	minmax, hist := 0, 0
	for _, op := range ops {
		switch op {
		case FragMinMax:
			minmax++
		case FragHist1D:
			hist++
		default:
			t.Fatalf("unexpected op %v", op)
		}
	}
	if minmax != 3 || hist != 3 {
		t.Fatalf("minmax=%d hist=%d", minmax, hist)
	}
	if res.Mode != "scatter" || res.Fragments != 6 || res.Partial {
		t.Fatalf("res = %+v", res)
	}
	// The merged range spans all shards' partials: lo = min shard id (0),
	// hi = max shard id + 10 (12); every hist fragment must carry it.
	for _, f := range r.calls {
		if f.Op == FragHist1D && (f.Spec1.Lo != 0 || f.Spec1.Hi != 12) {
			t.Fatalf("hist fragment spec = %+v", f.Spec1)
		}
	}
}

func TestRoutingExplicitRangeSkipsMinMax(t *testing.T) {
	m := ShardMap{Shards: 3}
	spec := histogram.NewSpec1D("x", 8)
	spec.Lo, spec.Hi = -1, 1
	r := &fakeRunner{}
	if _, err := Execute(context.Background(), histQuery("(px > 1)", spec), m, 999, r, FailFast); err != nil {
		t.Fatal(err)
	}
	for _, op := range r.ops() {
		if op != FragHist1D {
			t.Fatalf("unexpected op %v", op)
		}
	}
}

func TestCountScatterAndPartial(t *testing.T) {
	m := ShardMap{Shards: 4}
	q := Query{Op: OpCount, Dataset: "d", Query: "(px > 1)", Backend: fastquery.Scan}

	r := &fakeRunner{}
	res, err := Execute(context.Background(), q, m, 1000, r, ReturnPartial)
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != 1000 || res.Partial {
		t.Fatalf("res = %+v", res)
	}

	// One shard down: ReturnPartial sums the survivors and marks it.
	r = &fakeRunner{failShards: map[int]bool{2: true}}
	res, err = Execute(context.Background(), q, m, 1000, r, ReturnPartial)
	if err != nil {
		t.Fatal(err)
	}
	lost := m.Range(2, 1000)
	if res.Count != 1000-(lost.Hi-lost.Lo) || !res.Partial || !reflect.DeepEqual(res.Failed, []int{2}) {
		t.Fatalf("partial res = %+v", res)
	}

	// Same failure under FailFast is an error.
	r = &fakeRunner{failShards: map[int]bool{2: true}}
	if _, err := Execute(context.Background(), q, m, 1000, r, FailFast); err == nil {
		t.Fatal("FailFast did not fail")
	}

	// All shards down: error even under ReturnPartial.
	r = &fakeRunner{failShards: map[int]bool{0: true, 1: true, 2: true, 3: true}}
	if _, err := Execute(context.Background(), q, m, 1000, r, ReturnPartial); err == nil {
		t.Fatal("all-failed did not error")
	}

	// Fatal errors short-circuit regardless of policy.
	r = &fakeRunner{fatalAll: true}
	if _, err := Execute(context.Background(), q, m, 1000, r, ReturnPartial); err == nil || !fastquery.IsFatal(err) {
		t.Fatalf("fatal not propagated: %v", err)
	}
}

func TestZeroRowsCount(t *testing.T) {
	r := &fakeRunner{}
	q := Query{Op: OpCount, Dataset: "d", Backend: fastquery.Scan}
	res, err := Execute(context.Background(), q, ShardMap{Shards: 3}, 0, r, ReturnPartial)
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != 0 || len(r.ops()) != 1 {
		t.Fatalf("res=%+v ops=%v", res, r.ops())
	}
}
