// Package plan splits query serving into a planner and an executor, the
// Hillview scatter-gather architecture: a frontend canonicalizes a request
// into an operation, consults the shard map to cut it into row-range
// fragments, scatters the fragments to shard workers, and merges the
// partial results. Histograms, counts, and min/max ranges are all
// mergeable, so the merged answer is identical to the single-process one.
// "Local" execution is exactly the one-shard case of the same path.
package plan

import (
	"fmt"
	"hash/fnv"
	"math"
	"strconv"
	"strings"

	"repro/internal/fastquery"
	"repro/internal/histogram"
)

// Op is the operation a client asked for.
type Op int

const (
	// OpCount counts the rows matching a query.
	OpCount Op = iota
	// OpHist1D builds a conditional 1D histogram.
	OpHist1D
	// OpHist2D builds a conditional 2D histogram.
	OpHist2D
	// OpSelect materializes the matching row positions — the analysis-
	// session primitive: the serving layer compresses the merged positions
	// into a selection bitmap it can refine incrementally.
	OpSelect
)

func (o Op) String() string {
	switch o {
	case OpCount:
		return "count"
	case OpHist1D:
		return "hist1d"
	case OpHist2D:
		return "hist2d"
	case OpSelect:
		return "select"
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// FragOp is the operation a single fragment performs on its shard.
type FragOp int

const (
	// FragCount counts matching rows inside the fragment's row range.
	FragCount FragOp = iota
	// FragMinMax computes per-variable min/max over the matching rows
	// inside the fragment's row range (phase one of a two-phase
	// histogram whose bin range is derived from the data).
	FragMinMax
	// FragHist1D bins matching rows inside the row range against a spec
	// whose range is fully resolved; partials merge bin-wise.
	FragHist1D
	// FragHist2D is FragHist1D over a variable pair.
	FragHist2D
	// FragWhole1D evaluates the original 1D spec over the whole step on
	// one shard. Used when the result is not mergeable (adaptive edges)
	// or when a full-step evaluation has a cheaper path than a scatter
	// (the index-aligned fast path for unconditional histograms).
	FragWhole1D
	// FragWhole2D is FragWhole1D for 2D specs.
	FragWhole2D
	// FragSelect returns the sorted matching row positions inside the
	// fragment's row range. Shard ranges are contiguous and disjoint, so
	// partials merge by concatenation in shard order and the union is
	// byte-identical to a single-process selection.
	FragSelect
)

func (o FragOp) String() string {
	switch o {
	case FragCount:
		return "count"
	case FragMinMax:
		return "minmax"
	case FragHist1D:
		return "hist1d"
	case FragHist2D:
		return "hist2d"
	case FragWhole1D:
		return "whole1d"
	case FragWhole2D:
		return "whole2d"
	case FragSelect:
		return "select"
	default:
		return fmt.Sprintf("FragOp(%d)", int(o))
	}
}

// RowRange is a half-open [Lo, Hi) row-position interval within a step.
// The zero value means "the whole step".
type RowRange struct {
	Lo, Hi uint64
}

// Whole reports whether the range means the entire step.
func (r RowRange) Whole() bool { return r.Lo == 0 && r.Hi == 0 }

// Empty reports whether the range selects no rows.
func (r RowRange) Empty() bool { return !r.Whole() && r.Hi <= r.Lo }

// Query is a canonicalized client operation, the planner's input. Query
// text must already be in canonical form (query.Canonical) so that equal
// requests produce equal fragments and cache keys.
type Query struct {
	Op      Op
	Dataset string
	Step    int
	Query   string // canonical query text; "" means unconditional
	Backend fastquery.Backend
	Spec1   histogram.Spec1D // OpHist1D
	Spec2   histogram.Spec2D // OpHist2D
}

// Fragment is one unit of work sent to a shard worker.
type Fragment struct {
	Op      FragOp
	Dataset string
	Step    int
	Rows    RowRange
	Query   string
	Backend fastquery.Backend
	Vars    []string         // FragMinMax: variables needing ranges
	Spec1   histogram.Spec1D // FragHist1D / FragWhole1D
	Spec2   histogram.Spec2D // FragHist2D / FragWhole2D
}

// fmtG formats a float the way cache keys elsewhere in the system do:
// shortest round-trippable representation (NaN formats as "NaN", which is
// fine — distinct from every number).
func fmtG(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// Key returns a canonical identity for the fragment, used for shard-local
// result caching and for routing whole-step fragments to a stable home
// shard. Two fragments with equal keys compute identical results over the
// same data generation.
func (f Fragment) Key() string {
	parts := []string{
		f.Op.String(),
		f.Dataset,
		strconv.Itoa(f.Step),
		strconv.FormatUint(f.Rows.Lo, 10),
		strconv.FormatUint(f.Rows.Hi, 10),
		f.Query,
		f.Backend.String(),
	}
	switch f.Op {
	case FragMinMax:
		parts = append(parts, strings.Join(f.Vars, ","))
	case FragHist1D, FragWhole1D:
		parts = append(parts, f.Spec1.Var,
			strconv.Itoa(f.Spec1.Bins), f.Spec1.Binning.String(),
			fmtG(f.Spec1.Lo), fmtG(f.Spec1.Hi), fmtG(f.Spec1.MinDensity))
	case FragHist2D, FragWhole2D:
		parts = append(parts, f.Spec2.XVar, f.Spec2.YVar,
			strconv.Itoa(f.Spec2.XBins), strconv.Itoa(f.Spec2.YBins),
			f.Spec2.Binning.String(),
			fmtG(f.Spec2.XLo), fmtG(f.Spec2.XHi),
			fmtG(f.Spec2.YLo), fmtG(f.Spec2.YHi), fmtG(f.Spec2.MinDensity))
	}
	return strings.Join(parts, "\x1f")
}

// VarRange is a per-variable min/max partial. N is the number of selected
// rows the range was computed over; a part with N == 0 contributes
// nothing to the merge.
type VarRange struct {
	Var    string
	Lo, Hi float64
	N      uint64
}

// FragmentResult is the mergeable partial a shard returns for a fragment.
// Exactly one field group is populated, per the fragment's Op.
type FragmentResult struct {
	Count  uint64            // FragCount / FragSelect (position count)
	MinMax []VarRange        // FragMinMax
	Hist1  *histogram.Hist1D // FragHist1D / FragWhole1D
	Hist2  *histogram.Hist2D // FragHist2D / FragWhole2D
	Sel    []uint64          // FragSelect: sorted global row positions
}

// Result is the merged answer the planner returns to the serving layer.
type Result struct {
	Count uint64
	Hist1 *histogram.Hist1D
	Hist2 *histogram.Hist2D
	// Sel is OpSelect's answer: the sorted matching row positions over the
	// whole step (the concatenation of the per-shard partials).
	Sel []uint64

	// Partial is true when one or more shards failed and the policy
	// allowed merging the survivors; Failed lists the dead shards.
	Partial bool
	Failed  []int

	// BudgetExhausted is true when at least one of the failed shards was
	// lost to deadline-budget exhaustion rather than an outright error —
	// the marker the slow-query log and explain surface expose so a
	// degraded answer can be told apart from a shard outage.
	BudgetExhausted bool

	// Mode records how the plan executed ("scatter", "wholesale", or
	// "local") and Fragments how many fragment executions it attempted,
	// for stats and the benchmark harness.
	Mode      string
	Fragments int
}

// ShardMap describes how step rows are partitioned across shard workers.
// Every worker reads the same shared dataset directory (the paper's
// parallel-filesystem model), so the map assigns work, not data: shard i
// owns the i-th contiguous row range of every step, and any shard can
// evaluate a whole-step fragment.
type ShardMap struct {
	Shards int
}

// Range returns shard i's row range for a step with the given row count.
// Ranges are contiguous, disjoint, cover [0, rows), and differ in size by
// at most one row.
func (m ShardMap) Range(i int, rows uint64) RowRange {
	n := uint64(m.Shards)
	if n <= 1 {
		return RowRange{0, rows}
	}
	base := rows / n
	rem := rows % n
	lo := base*uint64(i) + minU64(uint64(i), rem)
	size := base
	if uint64(i) < rem {
		size++
	}
	return RowRange{lo, lo + size}
}

// Home deterministically assigns a whole-step fragment key to a shard, so
// repeated identical requests hit the same shard's cache.
func (m ShardMap) Home(key string) int {
	if m.Shards <= 1 {
		return 0
	}
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32() % uint32(m.Shards))
}

func minU64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// mergeRanges folds per-shard min/max partials into one range per
// requested variable. Parts with N == 0 (no selected rows on that shard)
// are skipped; when no shard selected any rows the merged range collapses
// to (0, 0), matching scan.MinMax on an empty slice — which is what the
// single-process path computes in that case.
func mergeRanges(vars []string, parts []*FragmentResult) map[string]VarRange {
	out := make(map[string]VarRange, len(vars))
	for _, v := range vars {
		merged := VarRange{Var: v, Lo: math.Inf(1), Hi: math.Inf(-1)}
		for _, p := range parts {
			if p == nil {
				continue
			}
			for _, vr := range p.MinMax {
				if vr.Var != v || vr.N == 0 {
					continue
				}
				merged.Lo = math.Min(merged.Lo, vr.Lo)
				merged.Hi = math.Max(merged.Hi, vr.Hi)
				merged.N += vr.N
			}
		}
		if merged.N == 0 {
			merged.Lo, merged.Hi = 0, 0
		}
		out[v] = merged
	}
	return out
}
