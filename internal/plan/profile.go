package plan

import (
	"context"
	"sync"

	"repro/internal/obs"
)

// FragProfile is the execution profile of one plan fragment: what it
// cost, where the answer came from, and how the budget machinery treated
// it. Shard workers fill one per Exec and ship it beside the result (it
// rides the ExecReply, never the cacheable FragmentResult, so a cached
// fragment correctly reports zero cost); the local runner fills one
// in-process. The frontend sums the Cost fields into query totals, and
// the explain identity tests assert the sums are exact.
type FragProfile struct {
	Shard int    `json:"shard"`
	Op    string `json:"op"`
	Rows  [2]int `json:"rows"` // row range [lo, hi); [0,0] = whole step

	Cached      bool   `json:"cached,omitempty"`       // answered without evaluation
	CacheSource string `json:"cache_source,omitempty"` // "fragment" for the shard LRU

	Cost   obs.CostSnapshot `json:"cost"`
	EvalMS float64          `json:"eval_ms"`           // shard-side evaluation wall time
	WaitMS float64          `json:"wait_ms,omitempty"` // shard-side admission wait

	BudgetMS  int64  `json:"budget_ms,omitempty"` // deadline budget at dispatch (0 = unbudgeted)
	Exhausted bool   `json:"exhausted,omitempty"` // failed because the budget ran out
	Err       string `json:"err,omitempty"`       // failure, including refusals before dispatch
}

// Profile collects per-fragment profiles for one query. It rides the
// request context (WithProfile / ProfileFromContext) so the scatter
// client and the local runner can append from concurrent goroutines; a
// nil *Profile swallows appends, so un-profiled requests pay one nil
// check per fragment.
type Profile struct {
	mu    sync.Mutex
	frags []FragProfile
}

// NewProfile creates an empty profile collector.
func NewProfile() *Profile { return &Profile{} }

// Add appends one fragment profile. Safe on nil.
func (p *Profile) Add(fp FragProfile) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.frags = append(p.frags, fp)
	p.mu.Unlock()
}

// Fragments returns a copy of the collected fragment profiles.
func (p *Profile) Fragments() []FragProfile {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]FragProfile(nil), p.frags...)
}

// Totals sums the collected fragment costs — by construction the exact
// sum of the per-fragment breakdown, which is the identity the explain
// surface exposes.
func (p *Profile) Totals() obs.CostSnapshot {
	var t obs.CostSnapshot
	for _, fp := range p.Fragments() {
		t.Add(fp.Cost)
	}
	return t
}

type profileCtxKey struct{}

// WithProfile returns a context carrying the profile collector.
func WithProfile(ctx context.Context, p *Profile) context.Context {
	return context.WithValue(ctx, profileCtxKey{}, p)
}

// ProfileFromContext returns the context's profile collector, or nil
// when the request is not being profiled.
func ProfileFromContext(ctx context.Context) *Profile {
	p, _ := ctx.Value(profileCtxKey{}).(*Profile)
	return p
}
