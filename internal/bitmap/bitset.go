package bitmap

import "math/bits"

// BitSet is a plain uncompressed bit vector backed by 64-bit words. It
// exists as the ablation baseline for the WAH design choice: identical
// Boolean interface, no compression, O(n/64) words regardless of content.
type BitSet struct {
	words []uint64
	n     uint64
}

// NewBitSet returns a zeroed bit set of length n.
func NewBitSet(n uint64) *BitSet {
	return &BitSet{words: make([]uint64, (n+63)/64), n: n}
}

// Len returns the number of bits in the set.
func (s *BitSet) Len() uint64 { return s.n }

// SizeBytes returns the in-memory size of the backing array.
func (s *BitSet) SizeBytes() int { return 8 * len(s.words) }

// Set sets the bit at position p.
func (s *BitSet) Set(p uint64) { s.words[p/64] |= 1 << (p % 64) }

// Get reports the bit at position p.
func (s *BitSet) Get(p uint64) bool {
	if p >= s.n {
		return false
	}
	return s.words[p/64]&(1<<(p%64)) != 0
}

// Count returns the number of set bits.
func (s *BitSet) Count() uint64 {
	var c uint64
	for _, w := range s.words {
		c += uint64(bits.OnesCount64(w))
	}
	return c
}

// And returns the bitwise AND of s and o. The result has s's length.
func (s *BitSet) And(o *BitSet) *BitSet {
	out := NewBitSet(s.n)
	for i := range out.words {
		if i < len(o.words) {
			out.words[i] = s.words[i] & o.words[i]
		}
	}
	return out
}

// Or returns the bitwise OR of s and o zero-extended to the longer length.
func (s *BitSet) Or(o *BitSet) *BitSet {
	out := NewBitSet(maxU64(s.n, o.n))
	copy(out.words, s.words)
	for i, w := range o.words {
		out.words[i] |= w
	}
	return out
}

// Iterate calls fn for each set bit position in increasing order; it stops
// early if fn returns false.
func (s *BitSet) Iterate(fn func(pos uint64) bool) {
	for i, w := range s.words {
		for w != 0 {
			b := uint64(bits.TrailingZeros64(w))
			p := uint64(i)*64 + b
			if p >= s.n {
				return
			}
			if !fn(p) {
				return
			}
			w &= w - 1
		}
	}
}

// ToVector converts the bit set to a WAH vector.
func (s *BitSet) ToVector() *Vector {
	v := New(s.n)
	var at uint64
	s.Iterate(func(p uint64) bool {
		v.AppendRun(false, p-at)
		v.AppendBit(true)
		at = p + 1
		return true
	})
	v.AppendRun(false, s.n-at)
	return v
}

// VectorToBitSet converts a WAH vector to an uncompressed bit set.
func VectorToBitSet(v *Vector) *BitSet {
	s := NewBitSet(v.Len())
	v.Iterate(func(p uint64) bool {
		s.Set(p)
		return true
	})
	return s
}
