package bitmap

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBitSetBasics(t *testing.T) {
	s := NewBitSet(130)
	if s.Len() != 130 || s.Count() != 0 {
		t.Fatalf("fresh BitSet: Len=%d Count=%d", s.Len(), s.Count())
	}
	for _, p := range []uint64{0, 63, 64, 129} {
		s.Set(p)
	}
	if s.Count() != 4 {
		t.Fatalf("Count = %d, want 4", s.Count())
	}
	if !s.Get(63) || s.Get(62) || s.Get(200) {
		t.Fatal("Get wrong")
	}
}

func TestBitSetOps(t *testing.T) {
	a := NewBitSet(100)
	b := NewBitSet(100)
	a.Set(1)
	a.Set(50)
	b.Set(50)
	b.Set(99)
	and := a.And(b)
	if and.Count() != 1 || !and.Get(50) {
		t.Fatalf("And wrong: count=%d", and.Count())
	}
	or := a.Or(b)
	if or.Count() != 3 {
		t.Fatalf("Or wrong: count=%d", or.Count())
	}
}

func TestBitSetVectorConversionProperty(t *testing.T) {
	f := func(bs []bool) bool {
		v := FromBools(bs)
		s := VectorToBitSet(v)
		if s.Len() != v.Len() || s.Count() != v.Count() {
			return false
		}
		return s.ToVector().Equal(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBitSetIterateMatchesVector(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	r := randomBits(rng, 1000, 0.1)
	v := FromBools(r)
	s := VectorToBitSet(v)
	var pv, ps []uint64
	v.Iterate(func(p uint64) bool { pv = append(pv, p); return true })
	s.Iterate(func(p uint64) bool { ps = append(ps, p); return true })
	if len(pv) != len(ps) {
		t.Fatalf("position count mismatch %d vs %d", len(pv), len(ps))
	}
	for i := range pv {
		if pv[i] != ps[i] {
			t.Fatalf("position %d: %d vs %d", i, pv[i], ps[i])
		}
	}
}

func TestBitSetIterateEarlyStop(t *testing.T) {
	s := NewBitSet(100)
	s.Set(5)
	s.Set(10)
	s.Set(20)
	var n int
	s.Iterate(func(p uint64) bool { n++; return false })
	if n != 1 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestWAHCompressionBeatsBitSetOnSparseData(t *testing.T) {
	// The design rationale for WAH: sparse index bitmaps compress far
	// below the dense representation.
	n := uint64(1 << 20)
	v := New(n)
	v.AppendRun(false, n/2)
	v.AppendBit(true)
	v.AppendRun(false, n/2-1)
	s := VectorToBitSet(v)
	if v.SizeBytes()*100 > s.SizeBytes() {
		t.Fatalf("WAH %dB not ≪ BitSet %dB", v.SizeBytes(), s.SizeBytes())
	}
}
