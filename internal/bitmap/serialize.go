package bitmap

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Binary layout of a serialized vector:
//
//	u64 n        total bit count
//	u8  nact     bits in the partial trailing group
//	u32 act      partial trailing group
//	u32 nwords   number of encoded words
//	u32[nwords]  encoded words
//
// All integers are little-endian.

// WriteTo serializes the vector. It implements io.WriterTo.
func (v *Vector) WriteTo(w io.Writer) (int64, error) {
	hdr := make([]byte, 8+1+4+4)
	binary.LittleEndian.PutUint64(hdr[0:], v.n)
	hdr[8] = v.nact
	binary.LittleEndian.PutUint32(hdr[9:], v.act)
	binary.LittleEndian.PutUint32(hdr[13:], uint32(len(v.words)))
	n, err := w.Write(hdr)
	written := int64(n)
	if err != nil {
		return written, err
	}
	buf := make([]byte, 4*len(v.words))
	for i, word := range v.words {
		binary.LittleEndian.PutUint32(buf[4*i:], word)
	}
	n, err = w.Write(buf)
	written += int64(n)
	return written, err
}

// ReadFrom deserializes a vector previously written with WriteTo,
// replacing the receiver's contents. It implements io.ReaderFrom.
func (v *Vector) ReadFrom(r io.Reader) (int64, error) {
	hdr := make([]byte, 8+1+4+4)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return 0, fmt.Errorf("bitmap: read header: %w", err)
	}
	read := int64(len(hdr))
	v.n = binary.LittleEndian.Uint64(hdr[0:])
	v.nact = hdr[8]
	v.act = binary.LittleEndian.Uint32(hdr[9:])
	nwords := binary.LittleEndian.Uint32(hdr[13:])
	if v.nact >= groupBits {
		return read, fmt.Errorf("bitmap: corrupt header: nact=%d", v.nact)
	}
	// A vector of n bits encodes at most ceil(n/31) words (fills only
	// shrink the count); reject inconsistent headers before allocating.
	if maxWords := v.n/groupBits + 1; uint64(nwords) > maxWords {
		return read, fmt.Errorf("bitmap: corrupt header: %d words for %d bits", nwords, v.n)
	}
	buf := make([]byte, 4*nwords)
	if _, err := io.ReadFull(r, buf); err != nil {
		return read, fmt.Errorf("bitmap: read words: %w", err)
	}
	read += int64(len(buf))
	v.words = make([]uint32, nwords)
	for i := range v.words {
		v.words[i] = binary.LittleEndian.Uint32(buf[4*i:])
	}
	return read, nil
}
