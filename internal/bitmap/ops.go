package bitmap

import "math/bits"

// decoder walks the encoded words of a vector as a sequence of runs. A run
// is either `cnt` repetitions of an identical fill group (word is 0 or
// allOnes) or a single literal group (cnt == 1). The trailing partial group
// is surfaced as one final literal run padded with zero bits.
type decoder struct {
	words []uint32
	idx   int
	tail  uint32 // partial trailing group, zero-padded
	hasT  bool

	word uint32 // current group pattern
	cnt  uint64 // groups remaining in the current run
	fill bool   // current run is a fill (word is uniform)
}

func newDecoder(v *Vector) *decoder {
	d := &decoder{words: v.words, tail: v.act, hasT: v.nact > 0}
	d.advance()
	return d
}

// done reports whether the decoder is exhausted.
func (d *decoder) done() bool { return d.cnt == 0 }

// advance loads the next run after the current one is consumed.
func (d *decoder) advance() {
	if d.idx < len(d.words) {
		w := d.words[d.idx]
		d.idx++
		if w&fillFlag != 0 {
			d.cnt = uint64(w & maxFill)
			d.fill = true
			if w&fillOne != 0 {
				d.word = allOnes
			} else {
				d.word = 0
			}
		} else {
			d.cnt = 1
			d.fill = false
			d.word = w
		}
		return
	}
	if d.hasT {
		d.hasT = false
		d.cnt = 1
		d.fill = false
		d.word = d.tail
		return
	}
	d.cnt = 0
}

// take consumes up to want groups of the current run, returning the group
// pattern and the number of groups consumed.
func (d *decoder) take(want uint64) (word uint32, got uint64) {
	if d.cnt == 0 {
		return 0, 0
	}
	got = want
	if got > d.cnt {
		got = d.cnt
	}
	if !d.fill {
		got = 1
	}
	word = d.word
	d.cnt -= got
	if d.cnt == 0 {
		d.advance()
	}
	return word, got
}

// binop applies the 31-bit group operation f across two vectors. The
// result has length max(a.Len(), b.Len()); the shorter operand is
// implicitly zero-extended, which matches the semantics needed by the
// index code (all index bitmaps for one column share the same length).
func binop(a, b *Vector, f func(x, y uint32) uint32) *Vector {
	out := New(maxU64(a.n, b.n))
	da, db := newDecoder(a), newDecoder(b)
	for !da.done() || !db.done() {
		switch {
		case da.done():
			w, got := db.take(db.cnt)
			emit(out, f(0, w)&litMask, got)
		case db.done():
			w, got := da.take(da.cnt)
			emit(out, f(w, 0)&litMask, got)
		case da.fill && db.fill:
			n := minU64(da.cnt, db.cnt)
			wa, _ := da.take(n)
			wb, _ := db.take(n)
			emit(out, f(wa, wb)&litMask, n)
		default:
			wa, _ := da.take(1)
			wb, _ := db.take(1)
			emit(out, f(wa, wb)&litMask, 1)
		}
	}
	out.n = maxU64(a.n, b.n)
	out.trim()
	return out
}

// emit appends cnt copies of group w to out, using fills when uniform.
func emit(out *Vector, w uint32, cnt uint64) {
	switch w {
	case 0:
		out.appendFill(false, cnt)
	case allOnes:
		out.appendFill(true, cnt)
	default:
		for ; cnt > 0; cnt-- {
			out.words = append(out.words, w)
		}
	}
	out.n += cnt * groupBits // adjusted by caller via out.n assignment
}

// trim re-derives the active-word representation so that the encoded
// length matches n exactly: binop emits whole groups, so when n is not a
// multiple of 31 the final group must be moved back into act.
func (v *Vector) trim() {
	rem := v.n % groupBits
	if rem == 0 {
		v.act, v.nact = 0, 0
		return
	}
	// The final group was emitted as a whole; pull it back out.
	n := len(v.words)
	last := v.words[n-1]
	if last&fillFlag != 0 {
		cnt := last & maxFill
		var g uint32
		if last&fillOne != 0 {
			g = allOnes
		}
		if cnt == 1 {
			v.words = v.words[:n-1]
		} else {
			v.words[n-1] = last - 1
		}
		v.act = g & (uint32(1)<<rem - 1)
	} else {
		v.words = v.words[:n-1]
		v.act = last & (uint32(1)<<rem - 1)
	}
	v.nact = uint8(rem)
}

// And returns the bitwise AND of v and o.
func (v *Vector) And(o *Vector) *Vector {
	return binop(v, o, func(x, y uint32) uint32 { return x & y })
}

// Or returns the bitwise OR of v and o.
func (v *Vector) Or(o *Vector) *Vector {
	return binop(v, o, func(x, y uint32) uint32 { return x | y })
}

// Xor returns the bitwise XOR of v and o.
func (v *Vector) Xor(o *Vector) *Vector {
	return binop(v, o, func(x, y uint32) uint32 { return x ^ y })
}

// AndNot returns v AND NOT o.
func (v *Vector) AndNot(o *Vector) *Vector {
	return binop(v, o, func(x, y uint32) uint32 { return x &^ y })
}

// Not returns the complement of v over its own length.
func (v *Vector) Not() *Vector {
	out := New(v.n)
	d := newDecoder(v)
	for !d.done() {
		w, got := d.take(d.cnt)
		emit(out, (^w)&litMask, got)
	}
	out.n = v.n
	out.trim()
	// Clear any padding bits beyond n in the active word.
	if out.nact > 0 {
		out.act &= uint32(1)<<out.nact - 1
	}
	return out
}

// AndCount returns the number of ones in v AND o without materialising
// the result vector — the hot operation of bitmap-count histograms, where
// only the cardinality of each intersection is needed.
func (v *Vector) AndCount(o *Vector) uint64 {
	var count uint64
	da, db := newDecoder(v), newDecoder(o)
	for !da.done() && !db.done() {
		if da.fill && db.fill {
			n := minU64(da.cnt, db.cnt)
			wa, _ := da.take(n)
			wb, _ := db.take(n)
			if w := wa & wb; w != 0 {
				count += n * uint64(bits.OnesCount32(w))
			}
			continue
		}
		wa, _ := da.take(1)
		wb, _ := db.take(1)
		if w := wa & wb; w != 0 {
			count += uint64(bits.OnesCount32(w))
		}
	}
	return count
}

// OrAll computes the OR of many vectors. It combines them in a balanced
// tree order, which keeps intermediate results small when the inputs are
// sparse — the common case when ORing index bin bitmaps for a range query.
func OrAll(vs []*Vector) *Vector {
	switch len(vs) {
	case 0:
		return New(0)
	case 1:
		return vs[0].Clone()
	}
	mid := len(vs) / 2
	return OrAll(vs[:mid]).Or(OrAll(vs[mid:]))
}

func minU64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
