package bitmap_test

import (
	"fmt"

	"repro/internal/bitmap"
)

func ExampleVector() {
	// Build two sparse bitmaps and combine them with Boolean operations
	// directly on the compressed form — the core of bitmap-index query
	// evaluation.
	a, _ := bitmap.FromPositions(1000, []uint64{3, 500, 999})
	b, _ := bitmap.FromPositions(1000, []uint64{500, 700})

	fmt.Println(a.Or(b).Count())
	fmt.Println(a.And(b).Positions())
	fmt.Println(a.AndNot(b).Count())
	// Output:
	// 4
	// [500]
	// 2
}

func ExampleVector_compression() {
	// A run-dominated bitmap of a million bits compresses to a handful of
	// WAH words.
	v := bitmap.New(1 << 20)
	v.AppendRun(false, 1<<19)
	v.AppendRun(true, 1<<19)
	fmt.Println(v.Len(), v.Count(), v.Words() < 10)
	// Output:
	// 1048576 524288 true
}
