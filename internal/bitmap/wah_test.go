package bitmap

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

// refBits is the naive reference model: a plain []bool.
type refBits []bool

func (r refBits) count() uint64 {
	var c uint64
	for _, b := range r {
		if b {
			c++
		}
	}
	return c
}

func randomBits(rng *rand.Rand, n int, density float64) refBits {
	r := make(refBits, n)
	for i := range r {
		r[i] = rng.Float64() < density
	}
	return r
}

// clusteredBits produces runs of identical bits, the regime WAH targets.
func clusteredBits(rng *rand.Rand, n int) refBits {
	r := make(refBits, 0, n)
	cur := rng.Intn(2) == 0
	for len(r) < n {
		run := 1 + rng.Intn(200)
		for i := 0; i < run && len(r) < n; i++ {
			r = append(r, cur)
		}
		cur = !cur
	}
	return r
}

func toVector(r refBits) *Vector { return FromBools(r) }

func checkAgainstRef(t *testing.T, v *Vector, r refBits) {
	t.Helper()
	if v.Len() != uint64(len(r)) {
		t.Fatalf("Len = %d, want %d", v.Len(), len(r))
	}
	if v.Count() != r.count() {
		t.Fatalf("Count = %d, want %d", v.Count(), r.count())
	}
	for i, b := range r {
		if v.Get(uint64(i)) != b {
			t.Fatalf("Get(%d) = %v, want %v", i, v.Get(uint64(i)), b)
		}
	}
}

func TestEmptyVector(t *testing.T) {
	v := New(0)
	if v.Len() != 0 || v.Count() != 0 {
		t.Fatalf("empty vector: Len=%d Count=%d", v.Len(), v.Count())
	}
	if got := v.Positions(); len(got) != 0 {
		t.Fatalf("empty vector Positions = %v", got)
	}
}

func TestAppendBitRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 30, 31, 32, 62, 63, 100, 1000, 12345} {
		for _, d := range []float64{0, 0.01, 0.5, 0.99, 1} {
			r := randomBits(rng, n, d)
			checkAgainstRef(t, toVector(r), r)
		}
	}
}

func TestClusteredCompresses(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	r := clusteredBits(rng, 200000)
	v := toVector(r)
	checkAgainstRef(t, v, r)
	if v.Words() >= len(r)/31 {
		t.Fatalf("clustered data did not compress: %d words for %d bits", v.Words(), len(r))
	}
}

func TestAppendRun(t *testing.T) {
	v := New(0)
	v.AppendRun(false, 100)
	v.AppendRun(true, 62)
	v.AppendRun(false, 5)
	v.AppendBit(true)
	if v.Len() != 168 {
		t.Fatalf("Len = %d, want 168", v.Len())
	}
	if v.Count() != 63 {
		t.Fatalf("Count = %d, want 63", v.Count())
	}
	for i := uint64(0); i < 168; i++ {
		want := (i >= 100 && i < 162) || i == 167
		if v.Get(i) != want {
			t.Fatalf("Get(%d) = %v, want %v", i, v.Get(i), want)
		}
	}
}

func TestFromPositions(t *testing.T) {
	pos := []uint64{0, 5, 31, 62, 63, 999}
	v, err := FromPositions(1000, pos)
	if err != nil {
		t.Fatal(err)
	}
	if got := v.Positions(); len(got) != len(pos) {
		t.Fatalf("Positions = %v, want %v", got, pos)
	} else {
		for i := range pos {
			if got[i] != pos[i] {
				t.Fatalf("Positions[%d] = %d, want %d", i, got[i], pos[i])
			}
		}
	}
	if _, err := FromPositions(10, []uint64{11}); err == nil {
		t.Fatal("out-of-range position accepted")
	}
	if _, err := FromPositions(10, []uint64{3, 3}); err == nil {
		t.Fatal("duplicate position accepted")
	}
	if _, err := FromPositions(10, []uint64{5, 2}); err == nil {
		t.Fatal("descending positions accepted")
	}
}

func refOp(a, b refBits, f func(x, y bool) bool) refBits {
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	out := make(refBits, n)
	for i := range out {
		var x, y bool
		if i < len(a) {
			x = a[i]
		}
		if i < len(b) {
			y = b[i]
		}
		out[i] = f(x, y)
	}
	return out
}

func TestBooleanOpsRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	sizes := []int{0, 1, 31, 64, 500, 4096}
	for _, na := range sizes {
		for _, nb := range sizes {
			ra := randomBits(rng, na, 0.3)
			rb := clusteredBits(rng, nb)
			va, vb := toVector(ra), toVector(rb)

			checkAgainstRef(t, va.And(vb), refOp(ra, rb, func(x, y bool) bool { return x && y }))
			checkAgainstRef(t, va.Or(vb), refOp(ra, rb, func(x, y bool) bool { return x || y }))
			checkAgainstRef(t, va.Xor(vb), refOp(ra, rb, func(x, y bool) bool { return x != y }))
			checkAgainstRef(t, va.AndNot(vb), refOp(ra, rb, func(x, y bool) bool { return x && !y }))
		}
	}
}

func TestNot(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, n := range []int{0, 1, 31, 32, 93, 1000} {
		r := randomBits(rng, n, 0.4)
		want := make(refBits, n)
		for i := range r {
			want[i] = !r[i]
		}
		checkAgainstRef(t, toVector(r).Not(), want)
	}
}

func TestDoubleNotIsIdentity(t *testing.T) {
	f := func(bs []bool) bool {
		v := FromBools(bs)
		return v.Not().Not().Equal(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDeMorganProperty(t *testing.T) {
	f := func(a, b []bool) bool {
		// Pad to equal lengths: Not is defined over a vector's own length,
		// so De Morgan only holds for operands of equal length.
		for len(a) < len(b) {
			a = append(a, false)
		}
		for len(b) < len(a) {
			b = append(b, false)
		}
		va, vb := FromBools(a), FromBools(b)
		lhs := va.And(vb).Not()
		rhs := va.Not().Or(vb.Not())
		return lhs.Equal(rhs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestXorSelfIsZeroProperty(t *testing.T) {
	f := func(a []bool) bool {
		v := FromBools(a)
		x := v.Xor(v)
		return x.Count() == 0 && x.Len() == v.Len()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOrCommutesProperty(t *testing.T) {
	f := func(a, b []bool) bool {
		va, vb := FromBools(a), FromBools(b)
		return va.Or(vb).Equal(vb.Or(va))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCountMatchesPositionsProperty(t *testing.T) {
	f := func(a []bool) bool {
		v := FromBools(a)
		return uint64(len(v.Positions())) == v.Count()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOrAll(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var refs []refBits
	var vecs []*Vector
	acc := make(refBits, 777)
	for i := 0; i < 9; i++ {
		r := randomBits(rng, 777, 0.05)
		refs = append(refs, r)
		vecs = append(vecs, toVector(r))
		for j, b := range r {
			acc[j] = acc[j] || b
		}
	}
	checkAgainstRef(t, OrAll(vecs), acc)
	_ = refs

	if got := OrAll(nil); got.Len() != 0 {
		t.Fatalf("OrAll(nil).Len = %d", got.Len())
	}
	one := toVector(refBits{true, false, true})
	if !OrAll([]*Vector{one}).Equal(one) {
		t.Fatal("OrAll of one vector differs from it")
	}
}

func TestIterateEarlyStop(t *testing.T) {
	v, err := FromPositions(100, []uint64{3, 7, 50, 99})
	if err != nil {
		t.Fatal(err)
	}
	var seen []uint64
	v.Iterate(func(p uint64) bool {
		seen = append(seen, p)
		return len(seen) < 2
	})
	if len(seen) != 2 || seen[0] != 3 || seen[1] != 7 {
		t.Fatalf("early stop iterate saw %v", seen)
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, n := range []int{0, 1, 31, 100, 5000} {
		r := clusteredBits(rng, n)
		v := toVector(r)
		var buf bytes.Buffer
		if _, err := v.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		var w Vector
		if _, err := w.ReadFrom(&buf); err != nil {
			t.Fatal(err)
		}
		if !w.Equal(v) {
			t.Fatalf("round trip mismatch for n=%d", n)
		}
		checkAgainstRef(t, &w, r)
	}
}

func TestSerializationRejectsCorruptHeader(t *testing.T) {
	var buf bytes.Buffer
	v := FromBools([]bool{true, false, true})
	if _, err := v.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	b[8] = 31 // nact out of range
	var w Vector
	if _, err := w.ReadFrom(bytes.NewReader(b)); err == nil {
		t.Fatal("corrupt nact accepted")
	}
	var short Vector
	if _, err := short.ReadFrom(bytes.NewReader(b[:4])); err == nil {
		t.Fatal("truncated stream accepted")
	}
}

func TestClone(t *testing.T) {
	v := FromBools([]bool{true, true, false, true})
	c := v.Clone()
	c.AppendBit(true)
	if v.Len() != 4 || c.Len() != 5 {
		t.Fatalf("clone not independent: v.Len=%d c.Len=%d", v.Len(), c.Len())
	}
}

func TestAppendWords(t *testing.T) {
	v := New(0)
	v.AppendWords([]uint32{0b101, 0, allOnes})
	if v.Len() != 93 {
		t.Fatalf("Len = %d, want 93", v.Len())
	}
	if v.Count() != 2+31 {
		t.Fatalf("Count = %d, want 33", v.Count())
	}
	// Unaligned append falls back to bit-by-bit.
	w := New(0)
	w.AppendBit(true)
	w.AppendWords([]uint32{allOnes})
	if w.Len() != 32 || w.Count() != 32 {
		t.Fatalf("unaligned AppendWords: Len=%d Count=%d", w.Len(), w.Count())
	}
}

func TestLongFillRuns(t *testing.T) {
	// Exceed one fill word's capacity (2^30-1 groups).
	v := New(0)
	n := uint64(maxFill+10) * groupBits
	v.AppendRun(true, n)
	if v.Len() != n || v.Count() != n {
		t.Fatalf("long run: Len=%d Count=%d want %d", v.Len(), v.Count(), n)
	}
	if v.Words() != 2 {
		t.Fatalf("long run encoded in %d words, want 2", v.Words())
	}
}

func TestVectorString(t *testing.T) {
	v := FromBools([]bool{true, false})
	if s := v.String(); s == "" {
		t.Fatal("empty String()")
	}
}

func TestAndCountMatchesAndProperty(t *testing.T) {
	f := func(a, b []bool) bool {
		va, vb := FromBools(a), FromBools(b)
		return va.AndCount(vb) == va.And(vb).Count()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAndCountClusteredData(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 20; trial++ {
		ra := clusteredBits(rng, 5000)
		rb := clusteredBits(rng, 5000)
		va, vb := toVector(ra), toVector(rb)
		if va.AndCount(vb) != va.And(vb).Count() {
			t.Fatalf("trial %d: AndCount mismatch", trial)
		}
	}
	// Mismatched lengths: AND semantics zero-extend, so the count only
	// covers the overlap.
	short := toVector(refBits{true, true})
	long := toVector(refBits{true, true, true, true})
	if short.AndCount(long) != 2 {
		t.Fatalf("mismatched length AndCount = %d", short.AndCount(long))
	}
}
