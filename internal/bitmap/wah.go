// Package bitmap implements Word-Aligned Hybrid (WAH) compressed bit
// vectors, the compression scheme used by the FastBit bitmap index engine
// (Wu, Otoo, Shoshani: "Optimizing bitmap indices with efficient
// compression", ACM TODS 2006).
//
// A WAH vector stores bits in 31-bit groups. Each encoded 32-bit word is
// either a literal word (MSB clear, low 31 bits hold one group verbatim) or
// a fill word (MSB set, bit 30 holds the fill bit, low 30 bits count how
// many consecutive identical groups the fill spans). Boolean operations
// work directly on the compressed form, skipping over fills without
// decompressing them.
//
// The package also provides an uncompressed BitSet with the same Boolean
// interface, used as the ablation baseline for the WAH design choice.
package bitmap

import (
	"fmt"
	"math/bits"
	"strings"
)

const (
	groupBits = 31                // bits per WAH group
	litMask   = uint32(1)<<31 - 1 // low 31 bits
	fillFlag  = uint32(1) << 31   // MSB marks a fill word
	fillOne   = uint32(1) << 30   // fill-bit for a run of ones
	maxFill   = uint32(1)<<30 - 1 // maximum group count in one fill word
	allOnes   = litMask           // a literal group of 31 one-bits
)

// Vector is a WAH-compressed bit vector. The zero value is an empty vector
// ready for use. Bits are appended with AppendBit / AppendRun /
// AppendWords; once built, vectors are normally treated as immutable and
// combined with And, Or, AndNot, Xor and Not, all of which allocate fresh
// result vectors.
type Vector struct {
	words []uint32 // encoded literal/fill words
	act   uint32   // partial group not yet encoded (LSB-first)
	nact  uint8    // number of valid bits in act (0..30)
	n     uint64   // total number of bits in the vector
}

// New returns an empty vector with capacity hints for nbits bits.
func New(nbits uint64) *Vector {
	return &Vector{words: make([]uint32, 0, nbits/groupBits/8+1)}
}

// FromBools builds a vector from a slice of booleans.
func FromBools(bs []bool) *Vector {
	v := New(uint64(len(bs)))
	for _, b := range bs {
		v.AppendBit(b)
	}
	return v
}

// FromPositions builds a vector of length n with ones at the given sorted,
// unique positions. Positions must be strictly increasing and < n; it
// returns an error otherwise.
func FromPositions(n uint64, pos []uint64) (*Vector, error) {
	v := New(n)
	var at uint64
	for i, p := range pos {
		if p >= n {
			return nil, fmt.Errorf("bitmap: position %d out of range %d", p, n)
		}
		if i > 0 && p <= pos[i-1] {
			return nil, fmt.Errorf("bitmap: positions not strictly increasing at %d", i)
		}
		v.AppendRun(false, p-at)
		v.AppendBit(true)
		at = p + 1
	}
	v.AppendRun(false, n-at)
	return v, nil
}

// Len returns the number of bits in the vector.
func (v *Vector) Len() uint64 { return v.n }

// Words returns the number of encoded 32-bit words, a proxy for the
// compressed size of the vector.
func (v *Vector) Words() int { return len(v.words) }

// SizeBytes returns the approximate in-memory size of the encoded vector.
func (v *Vector) SizeBytes() int { return 4*len(v.words) + 16 }

// AppendBit appends one bit to the vector.
func (v *Vector) AppendBit(b bool) {
	if b {
		v.act |= uint32(1) << v.nact
	}
	v.nact++
	v.n++
	if v.nact == groupBits {
		v.flushGroup(v.act)
		v.act, v.nact = 0, 0
	}
}

// AppendRun appends count copies of bit b.
func (v *Vector) AppendRun(b bool, count uint64) {
	// Fill the partial group first.
	for count > 0 && v.nact != 0 {
		v.AppendBit(b)
		count--
	}
	// Whole groups as fills.
	groups := count / groupBits
	if groups > 0 {
		v.appendFill(b, groups)
		v.n += groups * groupBits
		count -= groups * groupBits
	}
	for ; count > 0; count-- {
		v.AppendBit(b)
	}
}

// AppendWords appends full 31-bit groups given as raw literal words (low
// 31 bits of each element). It is the fast path used by the index builder.
func (v *Vector) AppendWords(groups []uint32) {
	if v.nact != 0 {
		for _, g := range groups {
			for i := 0; i < groupBits; i++ {
				v.AppendBit(g&(1<<i) != 0)
			}
		}
		return
	}
	for _, g := range groups {
		v.flushGroup(g & litMask)
	}
	v.n += uint64(len(groups)) * groupBits
}

// flushGroup encodes one complete 31-bit group, merging with a preceding
// fill when possible. It does not touch v.n.
func (v *Vector) flushGroup(g uint32) {
	switch g {
	case 0:
		v.extendFill(false, 1)
	case allOnes:
		v.extendFill(true, 1)
	default:
		v.words = append(v.words, g)
	}
}

// appendFill encodes `groups` identical groups of bit b.
func (v *Vector) appendFill(b bool, groups uint64) {
	for groups > 0 {
		chunk := groups
		if chunk > uint64(maxFill) {
			chunk = uint64(maxFill)
		}
		v.extendFill(b, uint32(chunk))
		groups -= chunk
	}
}

// extendFill merges a run of identical groups into the trailing word when
// that word is a compatible fill with spare capacity.
func (v *Vector) extendFill(b bool, groups uint32) {
	if n := len(v.words); n > 0 {
		last := v.words[n-1]
		if last&fillFlag != 0 && (last&fillOne != 0) == b {
			have := last & maxFill
			if uint64(have)+uint64(groups) <= uint64(maxFill) {
				v.words[n-1] = last + groups
				return
			}
			add := maxFill - have
			v.words[n-1] = last + add
			groups -= add
		} else if last&fillFlag == 0 {
			// A lone literal that happens to be all-zero / all-one can be
			// absorbed into a new fill.
			if (last == 0 && !b) || (last == allOnes && b) {
				v.words[n-1] = makeFill(b, 1)
				v.extendFill(b, groups)
				return
			}
		}
	}
	if groups > 0 {
		v.words = append(v.words, makeFill(b, groups))
	}
}

func makeFill(b bool, groups uint32) uint32 {
	w := fillFlag | groups
	if b {
		w |= fillOne
	}
	return w
}

// Count returns the number of set bits.
func (v *Vector) Count() uint64 {
	var c uint64
	for _, w := range v.words {
		if w&fillFlag != 0 {
			if w&fillOne != 0 {
				c += uint64(w&maxFill) * groupBits
			}
		} else {
			c += uint64(bits.OnesCount32(w))
		}
	}
	return c + uint64(bits.OnesCount32(v.act))
}

// Get reports the bit at position p. It decodes from the front and is
// intended for tests and spot checks, not bulk access.
func (v *Vector) Get(p uint64) bool {
	if p >= v.n {
		return false
	}
	var at uint64
	for _, w := range v.words {
		if w&fillFlag != 0 {
			span := uint64(w&maxFill) * groupBits
			if p < at+span {
				return w&fillOne != 0
			}
			at += span
		} else {
			if p < at+groupBits {
				return w&(1<<(p-at)) != 0
			}
			at += groupBits
		}
	}
	return v.act&(1<<(p-at)) != 0
}

// Iterate calls fn with the position of every set bit in increasing order.
// Iteration stops early if fn returns false.
func (v *Vector) Iterate(fn func(pos uint64) bool) {
	var at uint64
	for _, w := range v.words {
		if w&fillFlag != 0 {
			span := uint64(w&maxFill) * groupBits
			if w&fillOne != 0 {
				for p := at; p < at+span; p++ {
					if !fn(p) {
						return
					}
				}
			}
			at += span
		} else {
			g := w
			for g != 0 {
				b := uint64(bits.TrailingZeros32(g))
				if !fn(at + b) {
					return
				}
				g &= g - 1
			}
			at += groupBits
		}
	}
	g := v.act
	for g != 0 {
		b := uint64(bits.TrailingZeros32(g))
		if !fn(at + b) {
			return
		}
		g &= g - 1
	}
}

// Positions returns the positions of all set bits.
func (v *Vector) Positions() []uint64 {
	out := make([]uint64, 0, v.Count())
	v.Iterate(func(p uint64) bool {
		out = append(out, p)
		return true
	})
	return out
}

// Equal reports whether two vectors have identical length and bits.
func (v *Vector) Equal(o *Vector) bool {
	if v.n != o.n {
		return false
	}
	x := v.Xor(o)
	return x.Count() == 0
}

// String renders a short human-readable summary for debugging.
func (v *Vector) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Vector{n=%d, words=%d, ones=%d}", v.n, len(v.words), v.Count())
	return sb.String()
}

// Clone returns a deep copy of the vector.
func (v *Vector) Clone() *Vector {
	w := &Vector{act: v.act, nact: v.nact, n: v.n}
	w.words = append([]uint32(nil), v.words...)
	return w
}
