package core

import (
	"strings"
	"testing"
)

func TestWriteTracksCSV(t *testing.T) {
	ex := testExplorer(t)
	last := ex.Steps() - 1
	sel, err := ex.Select(last, "px > 5e10")
	if err != nil {
		t.Fatal(err)
	}
	ids := sel.IDs()
	if len(ids) > 5 {
		ids = ids[:5]
	}
	tracks, err := ex.TrackIDs(ids, 0, last, TrackOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteTracksCSV(&sb, tracks); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if lines[0] != "id,step,x,y,z,px,py,pz" {
		t.Fatalf("header = %q", lines[0])
	}
	var wantRows int
	for _, tr := range tracks {
		wantRows += tr.Len()
	}
	if len(lines)-1 != wantRows {
		t.Fatalf("rows = %d, want %d", len(lines)-1, wantRows)
	}
}

func TestWriteSelectionCSV(t *testing.T) {
	ex := testExplorer(t)
	sel, err := ex.Select(5, "px > 1e9")
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := sel.WriteSelectionCSV(&sb, []string{"x", "px"}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if lines[0] != "id,x,px" {
		t.Fatalf("header = %q", lines[0])
	}
	if len(lines)-1 != sel.Count() {
		t.Fatalf("rows = %d, want %d", len(lines)-1, sel.Count())
	}
	if err := sel.WriteSelectionCSV(&sb, []string{"nope"}); err == nil {
		t.Fatal("unknown column accepted")
	}
}
