package core

import (
	"image/color"
	"os"
	"sort"
	"sync"
	"testing"

	"repro/internal/fastbit"
	"repro/internal/fastquery"
	"repro/internal/histogram"
	"repro/internal/sim"
)

var (
	coreOnce sync.Once
	coreDir  string
	coreErr  error
	coreSim  *sim.Simulation
)

func testExplorer(t *testing.T) *Explorer {
	t.Helper()
	coreOnce.Do(func() {
		dir, err := os.MkdirTemp("", "core-test-*")
		if err != nil {
			coreErr = err
			return
		}
		cfg := sim.DefaultConfig()
		cfg.Steps = 12
		cfg.BackgroundPerStep = 2500
		cfg.BeamParticles = 80
		if _, err := sim.WriteDataset(dir, cfg, sim.WriteOptions{
			Index: fastbit.IndexOptions{Bins: 48},
		}); err != nil {
			coreErr = err
			return
		}
		coreSim, coreErr = sim.New(cfg)
		coreDir = dir
	})
	if coreErr != nil {
		t.Fatal(coreErr)
	}
	ex, err := Open(coreDir)
	if err != nil {
		t.Fatal(err)
	}
	return ex
}

func TestMain(m *testing.M) {
	code := m.Run()
	if coreDir != "" {
		os.RemoveAll(coreDir)
	}
	os.Exit(code)
}

func TestOpenAndMeta(t *testing.T) {
	ex := testExplorer(t)
	if ex.Steps() != 12 {
		t.Fatalf("Steps = %d", ex.Steps())
	}
	if len(ex.Variables()) == 0 {
		t.Fatal("no variables")
	}
	if ex.Source() == nil {
		t.Fatal("nil source")
	}
	if ex.Backend() != fastquery.FastBit {
		t.Fatal("default backend wrong")
	}
	if _, err := Open(t.TempDir()); err == nil {
		t.Fatal("empty dir accepted")
	}
}

func TestSelectAndRefine(t *testing.T) {
	ex := testExplorer(t)
	last := ex.Steps() - 1
	sel, err := ex.Select(last, "px > 5e10")
	if err != nil {
		t.Fatal(err)
	}
	if sel.Count() == 0 {
		t.Fatal("beam selection empty")
	}
	if sel.Step() != last || sel.Query() == nil {
		t.Fatal("selection metadata wrong")
	}
	if len(sel.IDs()) != sel.Count() || len(sel.Positions()) != sel.Count() {
		t.Fatal("IDs/Positions length mismatch")
	}
	// Refinement shrinks (or keeps) the selection.
	ref, err := sel.Refine("y > 0")
	if err != nil {
		t.Fatal(err)
	}
	if ref.Count() > sel.Count() {
		t.Fatalf("refinement grew: %d -> %d", sel.Count(), ref.Count())
	}
	// All refined values satisfy both conditions.
	ys, err := ref.Values("y")
	if err != nil {
		t.Fatal(err)
	}
	pxs, err := ref.Values("px")
	if err != nil {
		t.Fatal(err)
	}
	for i := range ys {
		if ys[i] <= 0 || pxs[i] <= 5e10 {
			t.Fatalf("refined record %d violates conditions (y=%g px=%g)", i, ys[i], pxs[i])
		}
	}
	if _, err := sel.Refine("bad >"); err != nil {
		// expected: parse error
	} else {
		t.Fatal("bad refinement accepted")
	}
	if _, err := ex.Select(last, "px >"); err == nil {
		t.Fatal("bad query accepted")
	}
	if _, err := ex.Select(99, "px > 0"); err == nil {
		t.Fatal("bad step accepted")
	}
}

func TestBackendsAgree(t *testing.T) {
	ex := testExplorer(t)
	last := ex.Steps() - 1
	a, err := ex.Select(last, "px > 5e10 && y > 0")
	if err != nil {
		t.Fatal(err)
	}
	ex.SetBackend(fastquery.Scan)
	b, err := ex.Select(last, "px > 5e10 && y > 0")
	ex.SetBackend(fastquery.FastBit)
	if err != nil {
		t.Fatal(err)
	}
	if a.Count() != b.Count() {
		t.Fatalf("backends disagree: %d vs %d", a.Count(), b.Count())
	}
}

func TestSelectByIDsAndAtStep(t *testing.T) {
	ex := testExplorer(t)
	last := ex.Steps() - 1
	sel, err := ex.Select(last, "px > 5e10")
	if err != nil {
		t.Fatal(err)
	}
	ids := sel.IDs()
	// The same particles at an earlier step (after injection).
	early, err := sel.AtStep(coreSim.InjectionStep() + 2)
	if err != nil {
		t.Fatal(err)
	}
	if early.Count() == 0 {
		t.Fatal("beam particles not found at earlier step")
	}
	if early.Count() > sel.Count() {
		t.Fatal("more particles found than searched")
	}
	// Every found id is from the search set.
	searchSet := map[int64]bool{}
	for _, id := range ids {
		searchSet[id] = true
	}
	for _, id := range early.IDs() {
		if !searchSet[id] {
			t.Fatalf("found id %d not in search set", id)
		}
	}
	// Before injection the beam ids are absent.
	before, err := ex.SelectByIDs(0, ids)
	if err != nil {
		t.Fatal(err)
	}
	if before.Count() != 0 {
		t.Fatalf("%d beam particles present at t=0", before.Count())
	}
}

func TestHistograms(t *testing.T) {
	ex := testExplorer(t)
	h2, err := ex.Histogram2D(5, "", histogram.NewSpec2D("x", "px", 32, 32))
	if err != nil {
		t.Fatal(err)
	}
	if h2.Total() == 0 {
		t.Fatal("empty unconditional histogram")
	}
	hc, err := ex.Histogram2D(5, "px > 1e9", histogram.NewSpec2D("x", "px", 32, 32))
	if err != nil {
		t.Fatal(err)
	}
	if hc.Total() == 0 || hc.Total() >= h2.Total() {
		t.Fatalf("conditional total %d vs unconditional %d", hc.Total(), h2.Total())
	}
	h1, err := ex.Histogram1D(5, "", histogram.NewSpec1D("px", 64))
	if err != nil {
		t.Fatal(err)
	}
	if h1.Total() != h2.Total() {
		t.Fatalf("1D total %d != 2D total %d", h1.Total(), h2.Total())
	}
	if _, err := ex.Histogram2D(5, "bad >", histogram.NewSpec2D("x", "px", 8, 8)); err == nil {
		t.Fatal("bad cond accepted")
	}
	if _, err := ex.Histogram1D(5, "bad >", histogram.NewSpec1D("px", 8)); err == nil {
		t.Fatal("bad cond accepted")
	}
}

func TestVarRangeAndGlobalRange(t *testing.T) {
	ex := testExplorer(t)
	lo, hi, err := ex.VarRange(3, "x")
	if err != nil || !(hi > lo) {
		t.Fatalf("VarRange: %g %g %v", lo, hi, err)
	}
	glo, ghi, err := ex.GlobalRange("x", nil)
	if err != nil {
		t.Fatal(err)
	}
	if glo > lo || ghi < hi {
		t.Fatalf("global range [%g,%g] does not contain step range [%g,%g]", glo, ghi, lo, hi)
	}
	if _, _, err := ex.GlobalRange("x", []int{}); err == nil {
		t.Fatal("empty step list accepted")
	}
	if _, _, err := ex.GlobalRange("nope", []int{1}); err == nil {
		t.Fatal("unknown var accepted")
	}
}

func TestTrackIDs(t *testing.T) {
	ex := testExplorer(t)
	last := ex.Steps() - 1
	sel, err := ex.Select(last, "px > 5e10")
	if err != nil {
		t.Fatal(err)
	}
	ids := sel.IDs()
	if len(ids) > 30 {
		ids = ids[:30]
	}
	tracks, err := ex.TrackIDs(ids, 0, last, TrackOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(tracks) != len(ids) {
		t.Fatalf("tracked %d of %d particles", len(tracks), len(ids))
	}
	inj := coreSim.InjectionStep()
	for _, tr := range tracks {
		if tr.Len() == 0 {
			t.Fatalf("id %d has empty track", tr.ID)
		}
		// Sorted by id.
		if tr.Len() != len(tr.X) || tr.Len() != len(tr.Px) {
			t.Fatalf("id %d ragged track", tr.ID)
		}
		// Beam particles appear only from injection on.
		if tr.Steps[0] < inj {
			t.Fatalf("id %d tracked at t=%d before injection %d", tr.ID, tr.Steps[0], inj)
		}
		// Steps strictly increasing; x non-decreasing (moving window).
		for i := 1; i < tr.Len(); i++ {
			if tr.Steps[i] <= tr.Steps[i-1] {
				t.Fatalf("id %d steps not increasing", tr.ID)
			}
			if tr.X[i] <= tr.X[i-1] {
				t.Fatalf("id %d x not advancing with window", tr.ID)
			}
		}
	}
	if !sort.SliceIsSorted(tracks, func(i, j int) bool { return tracks[i].ID < tracks[j].ID }) {
		t.Fatal("tracks not sorted by id")
	}
	// Parallel tracking gives the same result.
	par, err := ex.TrackIDs(ids, 0, last, TrackOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(par) != len(tracks) {
		t.Fatal("parallel tracking differs")
	}
	for i := range par {
		if par[i].ID != tracks[i].ID || par[i].Len() != tracks[i].Len() {
			t.Fatalf("parallel track %d differs", i)
		}
	}
	// Reversed range is normalised; bad ranges rejected.
	if _, err := ex.TrackIDs(ids[:1], last, 0, TrackOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := ex.TrackIDs(ids[:1], 0, 99, TrackOptions{}); err == nil {
		t.Fatal("bad range accepted")
	}
	if _, err := ex.TrackIDs(ids[:1], 0, 1, TrackOptions{Vars: []string{"y"}}); err == nil {
		t.Fatal("vars without x/px accepted")
	}
}

func TestBeamDephasingVisibleInTracks(t *testing.T) {
	ex := testExplorer(t)
	last := ex.Steps() - 1
	peak := coreSim.PeakStep()
	// Beam 1 particles: high px at the peak step.
	selPeak, err := ex.Select(peak, "px > 8e10")
	if err != nil {
		t.Fatal(err)
	}
	if selPeak.Count() == 0 {
		t.Skip("no particles above threshold at peak in this scaled run")
	}
	ids := selPeak.IDs()
	if len(ids) > 20 {
		ids = ids[:20]
	}
	tracks, err := ex.TrackIDs(ids, peak, last, TrackOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Mean px at the end must be lower than at the peak (dephasing).
	var sumPeak, sumLast float64
	var n int
	for _, tr := range tracks {
		if tr.Len() < 2 {
			continue
		}
		sumPeak += tr.Px[0]
		sumLast += tr.Px[tr.Len()-1]
		n++
	}
	if n == 0 {
		t.Skip("no multi-step tracks")
	}
	if sumLast >= sumPeak {
		t.Fatalf("beam 1 did not decelerate after peak: %g -> %g", sumPeak/float64(n), sumLast/float64(n))
	}
}

func TestContextFocusPlot(t *testing.T) {
	ex := testExplorer(t)
	last := ex.Steps() - 1
	vars := []string{"x", "y", "px", "py"}
	c, err := ex.ContextFocusPlot(last, vars, "", "px > 5e10", DefaultPlotOptions())
	if err != nil {
		t.Fatal(err)
	}
	w, h := c.Size()
	if w == 0 || h == 0 {
		t.Fatal("empty canvas")
	}
	// Focus colour must appear somewhere.
	var focusPx int
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if px := c.At(x, y); px.G > 150 && px.G > px.R+40 && px.G > px.B+40 {
				focusPx++
			}
		}
	}
	if focusPx == 0 {
		t.Fatal("focus layer invisible")
	}
	// Error paths.
	if _, err := ex.ContextFocusPlot(last, []string{"x"}, "", "", DefaultPlotOptions()); err == nil {
		t.Fatal("single variable accepted")
	}
	if _, err := ex.ContextFocusPlot(last, vars, "bad >", "", DefaultPlotOptions()); err == nil {
		t.Fatal("bad context query accepted")
	}
	if _, err := ex.ContextFocusPlot(last, vars, "", "bad >", DefaultPlotOptions()); err == nil {
		t.Fatal("bad focus query accepted")
	}
}

func TestContextFocusPlotWithOutliers(t *testing.T) {
	ex := testExplorer(t)
	opt := DefaultPlotOptions()
	opt.OutlierFloor = 0.02
	opt.ContextBins = 32
	if _, err := ex.ContextFocusPlot(5, []string{"x", "px", "y"}, "", "", opt); err != nil {
		t.Fatal(err)
	}
}

func TestTemporalPlot(t *testing.T) {
	ex := testExplorer(t)
	steps := []int{6, 8, 10}
	c, err := ex.TemporalPlot(steps, []string{"x", "xrel", "px", "y"}, "px > 1e9", DefaultPlotOptions())
	if err != nil {
		t.Fatal(err)
	}
	if c == nil {
		t.Fatal("nil canvas")
	}
	if _, err := ex.TemporalPlot(nil, []string{"x", "px"}, "", DefaultPlotOptions()); err == nil {
		t.Fatal("no steps accepted")
	}
}

func TestLinePlot(t *testing.T) {
	ex := testExplorer(t)
	last := ex.Steps() - 1
	c, err := ex.LinePlot(last, []string{"x", "px", "y"}, "px > 5e10", 0.4, DefaultPlotOptions())
	if err != nil {
		t.Fatal(err)
	}
	if c == nil {
		t.Fatal("nil canvas")
	}
	if _, err := ex.LinePlot(last, []string{"x", "px"}, "", 0, DefaultPlotOptions()); err == nil {
		t.Fatal("zero alpha accepted")
	}
}

func TestMultiFocusPlot(t *testing.T) {
	ex := testExplorer(t)
	last := ex.Steps() - 1
	red := color.RGBA{230, 60, 60, 255}
	green := color.RGBA{80, 220, 120, 255}
	c, err := ex.MultiFocusPlot(last, []string{"x", "px", "y"}, "",
		[]Focus{
			{Cond: "px > 5e10", Color: red},
			{Cond: "px > 5e10 && y > 0", Color: green},
		}, DefaultPlotOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Both focus colours must appear.
	var reds, greens int
	w, h := c.Size()
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			px := c.At(x, y)
			if px.R > 150 && px.R > px.G+50 {
				reds++
			}
			if px.G > 150 && px.G > px.R+50 {
				greens++
			}
		}
	}
	if reds == 0 || greens == 0 {
		t.Fatalf("focus layers missing: red=%d green=%d", reds, greens)
	}
	// Default palette colour when unspecified.
	if _, err := ex.MultiFocusPlot(last, []string{"x", "px"}, "",
		[]Focus{{Cond: "px > 1e9"}}, DefaultPlotOptions()); err != nil {
		t.Fatal(err)
	}
	// Errors.
	if _, err := ex.MultiFocusPlot(last, []string{"x", "px"}, "", nil, DefaultPlotOptions()); err == nil {
		t.Fatal("empty focus list accepted")
	}
	if _, err := ex.MultiFocusPlot(last, []string{"x", "px"}, "",
		[]Focus{{Cond: ""}}, DefaultPlotOptions()); err == nil {
		t.Fatal("empty focus condition accepted")
	}
	if _, err := ex.MultiFocusPlot(last, []string{"x", "px"}, "bad >",
		[]Focus{{Cond: "px > 0"}}, DefaultPlotOptions()); err == nil {
		t.Fatal("bad context accepted")
	}
}
