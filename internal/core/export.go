package core

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteTracksCSV exports particle trajectories as long-format CSV rows
// (id, step, x, y, z, px, py, pz) for downstream analysis in external
// tools — part of coupling the visual workflow with traditional analysis.
func WriteTracksCSV(w io.Writer, tracks []*Track) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"id", "step", "x", "y", "z", "px", "py", "pz"}); err != nil {
		return fmt.Errorf("core: write csv: %w", err)
	}
	f := func(vs []float64, i int) string {
		if i >= len(vs) {
			return ""
		}
		return strconv.FormatFloat(vs[i], 'g', -1, 64)
	}
	for _, tr := range tracks {
		for i, step := range tr.Steps {
			rec := []string{
				strconv.FormatInt(tr.ID, 10),
				strconv.Itoa(step),
				f(tr.X, i), f(tr.Y, i), f(tr.Z, i),
				f(tr.Px, i), f(tr.Py, i), f(tr.Pz, i),
			}
			if err := cw.Write(rec); err != nil {
				return fmt.Errorf("core: write csv: %w", err)
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteSelectionCSV exports the named columns of a selection as CSV.
func (s *Selection) WriteSelectionCSV(w io.Writer, names []string) error {
	cols := make([][]float64, len(names))
	for i, name := range names {
		vals, err := s.Values(name)
		if err != nil {
			return err
		}
		cols[i] = vals
	}
	cw := csv.NewWriter(w)
	header := append([]string{"id"}, names...)
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("core: write csv: %w", err)
	}
	for row := 0; row < s.Count(); row++ {
		rec := make([]string, 0, len(names)+1)
		rec = append(rec, strconv.FormatInt(s.ids[row], 10))
		for _, col := range cols {
			rec = append(rec, strconv.FormatFloat(col[row], 'g', -1, 64))
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("core: write csv: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}
