package core

import (
	"math"
	"testing"
)

func TestSelectionSummary(t *testing.T) {
	ex := testExplorer(t)
	last := ex.Steps() - 1
	sel, err := ex.Select(last, "px > 5e10")
	if err != nil {
		t.Fatal(err)
	}
	sum, err := sel.Summary("px")
	if err != nil {
		t.Fatal(err)
	}
	if sum.N != sel.Count() {
		t.Fatalf("Summary.N = %d, want %d", sum.N, sel.Count())
	}
	if sum.Min <= 5e10 {
		t.Fatalf("Summary.Min = %g violates selection", sum.Min)
	}
	if !(sum.Q25 <= sum.Median && sum.Median <= sum.Q75) {
		t.Fatalf("quartile order broken: %+v", sum)
	}
	if _, err := sel.Summary("nope"); err == nil {
		t.Fatal("unknown variable accepted")
	}
}

func TestSelectionBeamQuality(t *testing.T) {
	ex := testExplorer(t)
	peak := coreSim.PeakStep()
	last := ex.Steps() - 1
	selPeak, err := ex.Select(peak, "px > 8e10")
	if err != nil {
		t.Fatal(err)
	}
	if selPeak.Count() == 0 {
		t.Skip("no beam at peak in this scaled run")
	}
	qPeak, err := selPeak.BeamQuality()
	if err != nil {
		t.Fatal(err)
	}
	if qPeak.MeanPx <= 0 || qPeak.EnergySpread <= 0 {
		t.Fatalf("peak quality: %+v", qPeak)
	}
	// The paper's observation: beam 1 at its peak has a lower energy
	// spread than the combined selection at the end.
	selLast, err := ex.Select(last, "px > 5e10")
	if err != nil {
		t.Fatal(err)
	}
	qLast, err := selLast.BeamQuality()
	if err != nil {
		t.Fatal(err)
	}
	if qPeak.EnergySpread >= qLast.EnergySpread {
		t.Logf("note: peak spread %g !< last spread %g (acceptable at small scale)",
			qPeak.EnergySpread, qLast.EnergySpread)
	}
}

func TestSelectionCorrelationMatrix(t *testing.T) {
	ex := testExplorer(t)
	sel, err := ex.Select(5, "px > -1e300")
	if err != nil {
		t.Fatal(err)
	}
	m, err := sel.CorrelationMatrix([]string{"x", "xrel", "px"})
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 3 || m[0][0] != 1 {
		t.Fatalf("matrix = %v", m)
	}
	// x and xrel differ by a constant at fixed t, so they correlate ~1.
	if m[0][1] < 0.99 {
		t.Fatalf("corr(x, xrel) = %g, want ~1", m[0][1])
	}
	for i := range m {
		for j := range m[i] {
			if math.Abs(m[i][j]) > 1+1e-9 {
				t.Fatalf("corr out of bounds: %v", m)
			}
			if m[i][j] != m[j][i] {
				t.Fatal("matrix not symmetric")
			}
		}
	}
	if _, err := sel.CorrelationMatrix([]string{"x", "nope"}); err == nil {
		t.Fatal("unknown variable accepted")
	}
}

func TestBeamHistory(t *testing.T) {
	ex := testExplorer(t)
	last := ex.Steps() - 1
	sel, err := ex.Select(last, "px > 5e10")
	if err != nil {
		t.Fatal(err)
	}
	hist, err := sel.BeamHistory(coreSim.InjectionStep(), last)
	if err != nil {
		t.Fatal(err)
	}
	if len(hist.Steps) < 2 || len(hist.Steps) != len(hist.Quality) {
		t.Fatalf("history: %d steps, %d qualities", len(hist.Steps), len(hist.Quality))
	}
	// Momentum grows from injection toward the end for the tracked set.
	first := hist.Quality[0].MeanPx
	lastQ := hist.Quality[len(hist.Quality)-1].MeanPx
	if lastQ <= first {
		t.Fatalf("beam did not gain momentum: %g -> %g", first, lastQ)
	}
	// Absent range errors.
	if _, err := sel.BeamHistory(0, 0); err == nil {
		t.Fatal("pre-injection history accepted")
	}
}

func TestDensityPlot(t *testing.T) {
	ex := testExplorer(t)
	last := ex.Steps() - 1
	c, err := ex.DensityPlot(last, "x", "y", 128, "", DefaultScatterOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Heat-coloured pixels present.
	var hot int
	w, h := c.Size()
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			px := c.At(x, y)
			if px.R > 100 && px.R >= px.G && px.G >= px.B {
				hot++
			}
		}
	}
	if hot < 500 {
		t.Fatalf("density field invisible: %d hot pixels", hot)
	}
	// With a selection overlay.
	if _, err := ex.DensityPlot(last, "x", "y", 0, "px > 5e10", DefaultScatterOptions()); err != nil {
		t.Fatal(err)
	}
	// Errors surface.
	if _, err := ex.DensityPlot(last, "nope", "y", 64, "", DefaultScatterOptions()); err == nil {
		t.Fatal("unknown variable accepted")
	}
	if _, err := ex.DensityPlot(last, "x", "y", 64, "bad >", DefaultScatterOptions()); err == nil {
		t.Fatal("bad selection accepted")
	}
}
