package core

import (
	"fmt"

	"repro/internal/render"
	"repro/internal/scatter"
)

// ScatterOptions controls the pseudocolor plots.
type ScatterOptions struct {
	Width, Height int
	PointSize     int
	Colormap      render.Colormap
	// MaxContext subsamples the gray background when the timestep holds
	// more records than this (0 = no limit). Context rendering is O(n);
	// the paper's pseudocolor views show "all particles in gray", which
	// is only sensible at plot resolution anyway.
	MaxContext int
}

// DefaultScatterOptions returns the standard styling.
func DefaultScatterOptions() ScatterOptions {
	return ScatterOptions{Width: 900, Height: 500, PointSize: 1, MaxContext: 200000}
}

func (o ScatterOptions) scatterOptions() scatter.Options {
	opt := scatter.DefaultOptions()
	if o.Width > 0 {
		opt.Width = o.Width
	}
	if o.Height > 0 {
		opt.Height = o.Height
	}
	if o.PointSize > 0 {
		opt.PointSize = o.PointSize
	}
	if o.Colormap != nil {
		opt.Colormap = o.Colormap
	}
	return opt
}

// ScatterPlot renders a pseudocolor plot of one timestep (paper Figs.
// 5b/5d, 6, 8b): all particles in gray, the selection drawn as markers
// coloured by colorVar. selCond may be empty to colour everything.
func (e *Explorer) ScatterPlot(step int, xVar, yVar, colorVar, selCond string, opt ScatterOptions) (*render.Canvas, error) {
	xlo, xhi, err := e.VarRange(step, xVar)
	if err != nil {
		return nil, err
	}
	ylo, yhi, err := e.VarRange(step, yVar)
	if err != nil {
		return nil, err
	}
	p, err := scatter.New(xVar, yVar, xlo, xhi, ylo, yhi, opt.scatterOptions())
	if err != nil {
		return nil, err
	}

	st, err := e.src.OpenStep(step)
	if err != nil {
		return nil, err
	}
	defer st.Close()
	ctxX, err := st.ReadColumn(xVar)
	if err != nil {
		return nil, err
	}
	ctxY, err := st.ReadColumn(yVar)
	if err != nil {
		return nil, err
	}
	if opt.MaxContext > 0 && len(ctxX) > opt.MaxContext {
		stride := (len(ctxX) + opt.MaxContext - 1) / opt.MaxContext
		ctxX = subsample(ctxX, stride)
		ctxY = subsample(ctxY, stride)
	}
	if err := p.SetContext(ctxX, ctxY); err != nil {
		return nil, err
	}

	cond := selCond
	if cond == "" {
		cond = fmt.Sprintf("%s >= %g", xVar, xlo)
	}
	sel, err := e.Select(step, cond)
	if err != nil {
		return nil, err
	}
	sx, err := sel.Values(xVar)
	if err != nil {
		return nil, err
	}
	sy, err := sel.Values(yVar)
	if err != nil {
		return nil, err
	}
	sc, err := sel.Values(colorVar)
	if err != nil {
		return nil, err
	}
	if err := p.SetSelection(colorVar, sx, sy, sc, 0, 0); err != nil {
		return nil, err
	}
	return p.Render()
}

func subsample(vs []float64, stride int) []float64 {
	if stride <= 1 {
		return vs
	}
	out := make([]float64, 0, len(vs)/stride+1)
	for i := 0; i < len(vs); i += stride {
		out = append(out, vs[i])
	}
	return out
}

// TracePlotColor selects what colours the trace polylines.
type TracePlotColor int

// Trace colouring modes.
const (
	// ColorByPx colours segments by momentum (paper Figs. 8c, 10c).
	ColorByPx TracePlotColor = iota
	// ColorByID colours each particle by identifier (paper Fig. 7).
	ColorByID
)

// TracePlot renders tracked particles as world lines in (x, y) space,
// optionally over the gray context of one reference step.
func (e *Explorer) TracePlot(tracks []*Track, contextStep int, mode TracePlotColor, opt ScatterOptions) (*render.Canvas, error) {
	if len(tracks) == 0 {
		return nil, fmt.Errorf("core: no tracks to plot")
	}
	// Ranges from the traces themselves plus the context step.
	xlo, xhi := tracks[0].X[0], tracks[0].X[0]
	ylo, yhi := tracks[0].Y[0], tracks[0].Y[0]
	for _, tr := range tracks {
		for i := range tr.X {
			xlo, xhi = minF(xlo, tr.X[i]), maxF(xhi, tr.X[i])
			ylo, yhi = minF(ylo, tr.Y[i]), maxF(yhi, tr.Y[i])
		}
	}
	if cxlo, cxhi, err := e.VarRange(contextStep, "x"); err == nil {
		xlo, xhi = minF(xlo, cxlo), maxF(xhi, cxhi)
	}
	if cylo, cyhi, err := e.VarRange(contextStep, "y"); err == nil {
		ylo, yhi = minF(ylo, cylo), maxF(yhi, cyhi)
	}
	if xhi <= xlo {
		xhi = xlo + 1e-12
	}
	if yhi <= ylo {
		yhi = ylo + 1e-12
	}
	tp, err := scatter.NewTracePlot("x", "y", xlo, xhi, ylo, yhi, opt.scatterOptions())
	if err != nil {
		return nil, err
	}
	st, err := e.src.OpenStep(contextStep)
	if err == nil {
		ctxX, errX := st.ReadColumn("x")
		ctxY, errY := st.ReadColumn("y")
		st.Close()
		if errX == nil && errY == nil {
			if opt.MaxContext > 0 && len(ctxX) > opt.MaxContext {
				stride := (len(ctxX) + opt.MaxContext - 1) / opt.MaxContext
				ctxX = subsample(ctxX, stride)
				ctxY = subsample(ctxY, stride)
			}
			if err := tp.SetContext(ctxX, ctxY); err != nil {
				return nil, err
			}
		}
	}
	for _, tr := range tracks {
		cs := make([]float64, tr.Len())
		for i := range cs {
			if mode == ColorByID {
				cs[i] = float64(tr.ID)
			} else {
				cs[i] = tr.Px[i]
			}
		}
		ys := tr.Y
		if len(ys) != tr.Len() {
			return nil, fmt.Errorf("core: track %d lacks y values", tr.ID)
		}
		if err := tp.Add(scatter.Trace{X: tr.X, Y: ys, C: cs}); err != nil {
			return nil, err
		}
	}
	return tp.Render()
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
