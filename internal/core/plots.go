package core

import (
	"fmt"
	"image/color"

	"repro/internal/histogram"
	"repro/internal/pcoords"
	"repro/internal/render"
)

// PlotOptions controls the parallel coordinates plot conveniences.
type PlotOptions struct {
	// ContextBins and FocusBins set the per-axis histogram resolution of
	// the two layers; the paper uses a coarser context and a finer focus
	// for smooth drill-down (Section III-A2).
	ContextBins  int
	FocusBins    int
	Binning      histogram.Binning
	Gamma        float64 // plot gamma; 1 when zero
	Width        int
	Height       int
	ContextColor color.RGBA
	FocusColor   color.RGBA
	// TemporalColors cycles over timestep layers in temporal plots.
	TemporalColors []color.RGBA
	// OutlierFloor, when positive, enables the hybrid display: records in
	// context bins below this fraction of peak density are drawn as
	// individual polylines.
	OutlierFloor float64
}

// DefaultPlotOptions returns the standard styling.
func DefaultPlotOptions() PlotOptions {
	return PlotOptions{
		ContextBins:  128,
		FocusBins:    256,
		Gamma:        1,
		Width:        1000,
		Height:       560,
		ContextColor: color.RGBA{120, 130, 150, 255},
		FocusColor:   color.RGBA{90, 220, 120, 255},
		// Ordered for maximum contrast between consecutive timesteps.
		TemporalColors: []color.RGBA{
			{66, 135, 245, 255}, {245, 179, 66, 255}, {66, 245, 182, 255},
			{245, 66, 147, 255}, {242, 245, 66, 255}, {188, 66, 245, 255},
			{245, 108, 66, 255}, {66, 200, 245, 255}, {152, 245, 66, 255},
		},
	}
}

// axesFor builds plot axes spanning the variables' ranges over the steps.
func (e *Explorer) axesFor(vars []string, steps []int) ([]pcoords.Axis, error) {
	if len(vars) < 2 {
		return nil, fmt.Errorf("core: need at least 2 plot variables")
	}
	axes := make([]pcoords.Axis, len(vars))
	for i, v := range vars {
		lo, hi, err := e.GlobalRange(v, steps)
		if err != nil {
			return nil, err
		}
		if hi <= lo {
			hi = lo + 1e-12
		}
		axes[i] = pcoords.Axis{Var: v, Min: lo, Max: hi}
	}
	return axes, nil
}

// pairHists computes the per-adjacent-pair histograms a plot layer needs.
func (e *Explorer) pairHists(step int, axes []pcoords.Axis, cond string, bins int, binning histogram.Binning) ([]*histogram.Hist2D, error) {
	out := make([]*histogram.Hist2D, len(axes)-1)
	for i := 0; i < len(axes)-1; i++ {
		a, b := axes[i], axes[i+1]
		spec := histogram.NewSpec2D(a.Var, b.Var, bins, bins).
			WithBinning(binning).
			WithXRange(a.Min, a.Max).
			WithYRange(b.Min, b.Max)
		h, err := e.Histogram2D(step, cond, spec)
		if err != nil {
			return nil, err
		}
		out[i] = h
	}
	return out, nil
}

func (o PlotOptions) pcOptions() pcoords.Options {
	opt := pcoords.DefaultOptions()
	if o.Width > 0 {
		opt.Width = o.Width
	}
	if o.Height > 0 {
		opt.Height = o.Height
	}
	if o.Gamma > 0 {
		opt.Gamma = o.Gamma
	}
	return opt
}

func (o PlotOptions) normalized() PlotOptions {
	d := DefaultPlotOptions()
	if o.ContextBins <= 0 {
		o.ContextBins = d.ContextBins
	}
	if o.FocusBins <= 0 {
		o.FocusBins = d.FocusBins
	}
	if o.ContextColor.A == 0 {
		o.ContextColor = d.ContextColor
	}
	if o.FocusColor.A == 0 {
		o.FocusColor = d.FocusColor
	}
	if len(o.TemporalColors) == 0 {
		o.TemporalColors = d.TemporalColors
	}
	return o
}

// ContextFocusPlot renders a histogram-based parallel coordinates plot of
// one timestep with an optional focus selection drawn over the context
// (both histogram-based, per the paper's improvement over line-based
// focus rendering). contextCond and focusCond are query strings; either
// may be empty ("" context means the whole timestep, "" focus means no
// focus layer).
func (e *Explorer) ContextFocusPlot(step int, vars []string, contextCond, focusCond string, opt PlotOptions) (*render.Canvas, error) {
	opt = opt.normalized()
	axes, err := e.axesFor(vars, []int{step})
	if err != nil {
		return nil, err
	}
	plot, err := pcoords.New(axes, opt.pcOptions())
	if err != nil {
		return nil, err
	}
	ctxHists, err := e.pairHists(step, axes, contextCond, opt.ContextBins, opt.Binning)
	if err != nil {
		return nil, err
	}
	if err := plot.AddHistLayer(&pcoords.HistLayer{Hists: ctxHists, Color: opt.ContextColor}); err != nil {
		return nil, err
	}
	if opt.OutlierFloor > 0 {
		if err := e.addOutlierLayer(plot, step, axes, ctxHists, contextCond, opt); err != nil {
			return nil, err
		}
	}
	if focusCond != "" {
		focusHists, err := e.pairHists(step, axes, focusCond, opt.FocusBins, opt.Binning)
		if err != nil {
			return nil, err
		}
		if err := plot.AddHistLayer(&pcoords.HistLayer{Hists: focusHists, Color: opt.FocusColor}); err != nil {
			return nil, err
		}
	}
	return plot.Render()
}

// Focus is one highlighted selection layer for MultiFocusPlot.
type Focus struct {
	Cond  string
	Color color.RGBA // zero value picks from the temporal palette
}

// MultiFocusPlot renders several selections as stacked focus layers over
// one context — the paper's refinement display, where the complete beam
// (red) and a refined subset (green) are compared in one plot (Fig. 8).
// Later layers draw on top.
func (e *Explorer) MultiFocusPlot(step int, vars []string, contextCond string, focuses []Focus, opt PlotOptions) (*render.Canvas, error) {
	opt = opt.normalized()
	if len(focuses) == 0 {
		return nil, fmt.Errorf("core: no focus layers")
	}
	axes, err := e.axesFor(vars, []int{step})
	if err != nil {
		return nil, err
	}
	plot, err := pcoords.New(axes, opt.pcOptions())
	if err != nil {
		return nil, err
	}
	ctxHists, err := e.pairHists(step, axes, contextCond, opt.ContextBins, opt.Binning)
	if err != nil {
		return nil, err
	}
	if err := plot.AddHistLayer(&pcoords.HistLayer{Hists: ctxHists, Color: opt.ContextColor}); err != nil {
		return nil, err
	}
	for i, f := range focuses {
		if f.Cond == "" {
			return nil, fmt.Errorf("core: focus layer %d has no condition", i)
		}
		hists, err := e.pairHists(step, axes, f.Cond, opt.FocusBins, opt.Binning)
		if err != nil {
			return nil, err
		}
		col := f.Color
		if col.A == 0 {
			col = opt.TemporalColors[i%len(opt.TemporalColors)]
		}
		if err := plot.AddHistLayer(&pcoords.HistLayer{Hists: hists, Color: col}); err != nil {
			return nil, err
		}
	}
	return plot.Render()
}

// addOutlierLayer draws under-dense context records as polylines.
func (e *Explorer) addOutlierLayer(plot *pcoords.Plot, step int, axes []pcoords.Axis, hists []*histogram.Hist2D, cond string, opt PlotOptions) error {
	q := cond
	if q == "" {
		// All records: a tautology over the first variable's range.
		q = fmt.Sprintf("%s >= %g", axes[0].Var, axes[0].Min)
	}
	sel, err := e.Select(step, q)
	if err != nil {
		return err
	}
	values := map[string][]float64{}
	for _, a := range axes {
		vals, err := sel.Values(a.Var)
		if err != nil {
			return err
		}
		values[a.Var] = vals
	}
	outliers, err := pcoords.OutlierRecords(axes, hists, values, opt.OutlierFloor)
	if err != nil {
		return err
	}
	if len(outliers) == 0 {
		return nil
	}
	lineVals := map[string][]float64{}
	for _, a := range axes {
		col := make([]float64, len(outliers))
		for i, r := range outliers {
			col[i] = values[a.Var][r]
		}
		lineVals[a.Var] = col
	}
	return plot.AddLineLayer(&pcoords.LineLayer{
		Values: lineVals,
		Color:  opt.ContextColor,
		Alpha:  0.6,
	})
}

// TemporalPlot renders multiple timesteps of one selection into a single
// parallel coordinates plot, one colour per timestep (paper Fig. 9).
// cond may be empty to plot everything.
func (e *Explorer) TemporalPlot(steps []int, vars []string, cond string, opt PlotOptions) (*render.Canvas, error) {
	opt = opt.normalized()
	if len(steps) == 0 {
		return nil, fmt.Errorf("core: no steps for temporal plot")
	}
	axes, err := e.axesFor(vars, steps)
	if err != nil {
		return nil, err
	}
	plot, err := pcoords.New(axes, opt.pcOptions())
	if err != nil {
		return nil, err
	}
	for i, step := range steps {
		hists, err := e.pairHists(step, axes, cond, opt.FocusBins, opt.Binning)
		if err != nil {
			return nil, err
		}
		col := opt.TemporalColors[i%len(opt.TemporalColors)]
		if err := plot.AddHistLayer(&pcoords.HistLayer{Hists: hists, Color: col}); err != nil {
			return nil, err
		}
	}
	return plot.Render()
}

// LinePlot renders a traditional polyline parallel coordinates plot of a
// selection, for comparison with the histogram-based display (Fig. 2a).
func (e *Explorer) LinePlot(step int, vars []string, cond string, alpha float64, opt PlotOptions) (*render.Canvas, error) {
	opt = opt.normalized()
	axes, err := e.axesFor(vars, []int{step})
	if err != nil {
		return nil, err
	}
	plot, err := pcoords.New(axes, opt.pcOptions())
	if err != nil {
		return nil, err
	}
	q := cond
	if q == "" {
		q = fmt.Sprintf("%s >= %g", axes[0].Var, axes[0].Min)
	}
	sel, err := e.Select(step, q)
	if err != nil {
		return nil, err
	}
	values := map[string][]float64{}
	for _, a := range axes {
		vals, err := sel.Values(a.Var)
		if err != nil {
			return nil, err
		}
		values[a.Var] = vals
	}
	if err := plot.AddLineLayer(&pcoords.LineLayer{
		Values: values,
		Color:  opt.FocusColor,
		Alpha:  alpha,
	}); err != nil {
		return nil, err
	}
	return plot.Render()
}
