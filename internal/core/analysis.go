package core

import (
	"fmt"

	"repro/internal/histogram"
	"repro/internal/render"
	"repro/internal/scatter"
	"repro/internal/stats"
)

// This file couples the visual exploration workflow with traditional
// quantitative analysis — the extension the paper's conclusion calls for.

// Summary computes summary statistics of one variable over the selection.
func (s *Selection) Summary(name string) (stats.Summary, error) {
	vals, err := s.Values(name)
	if err != nil {
		return stats.Summary{}, err
	}
	return stats.Summarize(vals)
}

// BeamQuality computes the accelerator figures of merit (mean momentum,
// relative energy spread, RMS size, emittance proxy) of the selection.
func (s *Selection) BeamQuality() (stats.BeamQuality, error) {
	px, err := s.Values("px")
	if err != nil {
		return stats.BeamQuality{}, err
	}
	py, err := s.Values("py")
	if err != nil {
		return stats.BeamQuality{}, err
	}
	y, err := s.Values("y")
	if err != nil {
		return stats.BeamQuality{}, err
	}
	return stats.Beam(px, py, y)
}

// CorrelationMatrix computes pairwise Pearson correlations of the named
// variables over the selection.
func (s *Selection) CorrelationMatrix(names []string) ([][]float64, error) {
	cols := map[string][]float64{}
	for _, name := range names {
		vals, err := s.Values(name)
		if err != nil {
			return nil, err
		}
		cols[name] = vals
	}
	return stats.CorrelationMatrix(cols, names)
}

// BeamHistory evaluates beam quality at every step of a range by tracing
// the selection's identifiers — quantitative beam evolution over time.
type BeamHistory struct {
	Steps   []int
	Quality []stats.BeamQuality
}

// BeamHistory traces the selection over [from, to] and computes per-step
// beam quality.
func (s *Selection) BeamHistory(from, to int) (*BeamHistory, error) {
	tracks, err := s.ex.TrackIDs(s.ids, from, to, TrackOptions{})
	if err != nil {
		return nil, err
	}
	if from > to {
		from, to = to, from
	}
	hist := &BeamHistory{}
	for step := from; step <= to; step++ {
		var px, py, y []float64
		for _, tr := range tracks {
			for i, t := range tr.Steps {
				if t == step {
					px = append(px, tr.Px[i])
					py = append(py, tr.Py[i])
					y = append(y, tr.Y[i])
					break
				}
			}
		}
		if len(px) == 0 {
			continue
		}
		q, err := stats.Beam(px, py, y)
		if err != nil {
			return nil, err
		}
		hist.Steps = append(hist.Steps, step)
		hist.Quality = append(hist.Quality, q)
	}
	if len(hist.Steps) == 0 {
		return nil, fmt.Errorf("core: selection absent from steps [%d,%d]", from, to)
	}
	return hist, nil
}

// DensityPlot renders the particle number density of one timestep as a
// heat-mapped 2D histogram — the stand-in for the paper's volume rendering
// of plasma density (Fig. 10b), with an optional selection overlaid as
// colored markers.
func (e *Explorer) DensityPlot(step int, xVar, yVar string, bins int, selCond string, opt ScatterOptions) (*render.Canvas, error) {
	if bins <= 0 {
		bins = 256
	}
	h, err := e.Histogram2D(step, "", histogram.NewSpec2D(xVar, yVar, bins, bins))
	if err != nil {
		return nil, err
	}
	sOpt := opt.scatterOptions()
	c, err := render.NewCanvas(sOpt.Width, sOpt.Height, sOpt.Background)
	if err != nil {
		return nil, err
	}
	// Rasterise the density field.
	m := sOpt.Margin
	w, hgt := sOpt.Width, sOpt.Height
	maxC := float64(h.MaxCount())
	if maxC == 0 {
		maxC = 1
	}
	plotW, plotH := w-2*m, hgt-2*m
	for py := 0; py < plotH; py++ {
		for px := 0; px < plotW; px++ {
			ix := px * h.XBins() / plotW
			iy := (plotH - 1 - py) * h.YBins() / plotH
			cnt := float64(h.At(ix, iy))
			if cnt == 0 {
				continue
			}
			t := cnt / maxC
			c.Blend(m+px, m+py, render.Heat(0.15+0.85*t), 1)
		}
	}
	// Overlay the selection.
	if selCond != "" {
		sel, err := e.Select(step, selCond)
		if err != nil {
			return nil, err
		}
		sx, err := sel.Values(xVar)
		if err != nil {
			return nil, err
		}
		sy, err := sel.Values(yVar)
		if err != nil {
			return nil, err
		}
		sc, err := sel.Values("px")
		if err != nil {
			return nil, err
		}
		p, err := scatter.New(xVar, yVar, h.XEdges[0], h.XEdges[len(h.XEdges)-1],
			h.YEdges[0], h.YEdges[len(h.YEdges)-1], sOpt)
		if err != nil {
			return nil, err
		}
		if err := p.SetSelection("px", sx, sy, sc, 0, 0); err != nil {
			return nil, err
		}
		over, err := p.Render()
		if err != nil {
			return nil, err
		}
		// Composite the selection markers (non-background pixels) on top.
		bg := sOpt.Background
		for y := 0; y < hgt; y++ {
			for x := 0; x < w; x++ {
				if px := over.At(x, y); px != bg {
					c.Blend(x, y, px, 1)
				}
			}
		}
		return c, nil
	}
	// Axis frame for the bare density view.
	c.HLine(m, w-m, hgt-m, sOpt.AxisColor, 1)
	c.VLine(m, m, hgt-m, sOpt.AxisColor, 1)
	if sOpt.DrawLabels {
		c.TextCentered(w/2, hgt-m+10, xVar, sOpt.LabelColor)
		c.Text(4, m-10, yVar, sOpt.LabelColor)
	}
	return c, nil
}
