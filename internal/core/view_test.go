package core

import "testing"

func TestViewZoomAndRender(t *testing.T) {
	ex := testExplorer(t)
	opt := DefaultPlotOptions()
	opt.ContextBins = 32
	v, err := ex.NewView(5, []string{"x", "px", "y"}, opt)
	if err != nil {
		t.Fatal(err)
	}
	if v.ZoomDepth() != 0 {
		t.Fatal("fresh view has zoom depth")
	}
	if _, err := v.Render(); err != nil {
		t.Fatal(err)
	}

	w0, err := v.BinWidth("px")
	if err != nil {
		t.Fatal(err)
	}
	axes := v.Axes()
	var pxMin, pxMax float64
	for _, a := range axes {
		if a.Var == "px" {
			pxMin, pxMax = a.Min, a.Max
		}
	}
	mid := (pxMin + pxMax) / 2
	if err := v.Zoom("px", pxMin, mid); err != nil {
		t.Fatal(err)
	}
	if v.ZoomDepth() != 1 {
		t.Fatal("zoom depth not incremented")
	}
	w1, err := v.BinWidth("px")
	if err != nil {
		t.Fatal(err)
	}
	// Drill-down halves the bin width: real added resolution.
	if w1 >= w0*0.75 {
		t.Fatalf("zoom did not gain resolution: %g -> %g", w0, w1)
	}
	if _, err := v.Render(); err != nil {
		t.Fatal(err)
	}

	// Focus over zoomed context.
	if err := v.SetFocus("px > 1e9"); err != nil {
		t.Fatal(err)
	}
	if _, err := v.Render(); err != nil {
		t.Fatal(err)
	}

	v.Reset()
	if v.ZoomDepth() != 0 {
		t.Fatal("reset did not clear zoom depth")
	}
	wReset, _ := v.BinWidth("px")
	if wReset != w0 {
		t.Fatalf("reset did not restore ranges: %g vs %g", wReset, w0)
	}
}

func TestViewValidation(t *testing.T) {
	ex := testExplorer(t)
	if _, err := ex.NewView(5, []string{"x"}, DefaultPlotOptions()); err == nil {
		t.Fatal("single variable accepted")
	}
	if _, err := ex.NewView(5, []string{"x", "nope"}, DefaultPlotOptions()); err == nil {
		t.Fatal("unknown variable accepted")
	}
	v, err := ex.NewView(5, []string{"x", "px"}, DefaultPlotOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Zoom("nope", 0, 1); err == nil {
		t.Fatal("zoom on unknown axis accepted")
	}
	if err := v.Zoom("x", 5, 5); err == nil {
		t.Fatal("empty zoom accepted")
	}
	if err := v.Zoom("x", 1e30, 2e30); err == nil {
		t.Fatal("out-of-data zoom accepted")
	}
	if err := v.SetFocus("bad >"); err == nil {
		t.Fatal("bad focus accepted")
	}
	if err := v.SetFocus(""); err != nil {
		t.Fatal("clearing focus failed")
	}
	if _, err := v.BinWidth("nope"); err == nil {
		t.Fatal("BinWidth on unknown axis accepted")
	}
}
