package core

import (
	"fmt"

	"repro/internal/histogram"
	"repro/internal/pcoords"
	"repro/internal/render"
)

// View is an interactive exploration session over one timestep: a set of
// parallel axes whose displayed ranges can be narrowed step by step while
// the context and focus histograms are recomputed at full resolution for
// the narrowed ranges. This is the "smooth drill-down into finer levels of
// detail" that distinguishes the paper's approach from fixed-resolution
// precomputed histograms (Section III-A2): zooming never reuses merged
// coarse bins, it recomputes.
type View struct {
	ex   *Explorer
	step int
	vars []string
	opt  PlotOptions

	full   []pcoords.Axis // the reset ranges
	axes   []pcoords.Axis // current (possibly zoomed) ranges
	cond   string         // focus condition; empty = none
	zoomed int            // number of Zoom calls, for introspection
}

// NewView creates a view of one timestep over the given variables.
func (e *Explorer) NewView(step int, vars []string, opt PlotOptions) (*View, error) {
	opt = opt.normalized()
	axes, err := e.axesFor(vars, []int{step})
	if err != nil {
		return nil, err
	}
	v := &View{
		ex:   e,
		step: step,
		vars: append([]string(nil), vars...),
		opt:  opt,
		full: append([]pcoords.Axis(nil), axes...),
		axes: append([]pcoords.Axis(nil), axes...),
	}
	return v, nil
}

// Axes returns the current axis ranges.
func (v *View) Axes() []pcoords.Axis { return append([]pcoords.Axis(nil), v.axes...) }

// ZoomDepth returns how many zoom operations are active.
func (v *View) ZoomDepth() int { return v.zoomed }

// Zoom narrows one axis to [lo, hi]. The new range must be non-empty and
// overlap the variable's full range.
func (v *View) Zoom(name string, lo, hi float64) error {
	if !(hi > lo) {
		return fmt.Errorf("core: empty zoom range [%g, %g]", lo, hi)
	}
	for i := range v.axes {
		if v.axes[i].Var != name {
			continue
		}
		if hi < v.full[i].Min || lo > v.full[i].Max {
			return fmt.Errorf("core: zoom [%g, %g] outside data range [%g, %g]",
				lo, hi, v.full[i].Min, v.full[i].Max)
		}
		v.axes[i].Min, v.axes[i].Max = lo, hi
		v.zoomed++
		return nil
	}
	return fmt.Errorf("core: view has no axis %q", name)
}

// SetFocus installs (or clears, with "") the focus condition.
func (v *View) SetFocus(cond string) error {
	if cond != "" {
		if _, err := v.ex.Select(v.step, cond); err != nil {
			return err
		}
	}
	v.cond = cond
	return nil
}

// Reset restores the full axis ranges and clears zoom state.
func (v *View) Reset() {
	copy(v.axes, v.full)
	v.zoomed = 0
}

// Render recomputes the histograms for the current ranges — at the full
// configured bin resolution regardless of zoom level — and draws the plot.
func (v *View) Render() (*render.Canvas, error) {
	plot, err := pcoords.New(v.axes, v.opt.pcOptions())
	if err != nil {
		return nil, err
	}
	ctx, err := v.pairHistsZoomed("", v.opt.ContextBins)
	if err != nil {
		return nil, err
	}
	if err := plot.AddHistLayer(&pcoords.HistLayer{Hists: ctx, Color: v.opt.ContextColor}); err != nil {
		return nil, err
	}
	if v.cond != "" {
		focus, err := v.pairHistsZoomed(v.cond, v.opt.FocusBins)
		if err != nil {
			return nil, err
		}
		if err := plot.AddHistLayer(&pcoords.HistLayer{Hists: focus, Color: v.opt.FocusColor}); err != nil {
			return nil, err
		}
	}
	return plot.Render()
}

// pairHistsZoomed computes per-pair histograms over the current (zoomed)
// axis ranges.
func (v *View) pairHistsZoomed(cond string, bins int) ([]*histogram.Hist2D, error) {
	out := make([]*histogram.Hist2D, len(v.axes)-1)
	for i := 0; i < len(v.axes)-1; i++ {
		a, b := v.axes[i], v.axes[i+1]
		spec := histogram.NewSpec2D(a.Var, b.Var, bins, bins).
			WithBinning(v.opt.Binning).
			WithXRange(a.Min, a.Max).
			WithYRange(b.Min, b.Max)
		h, err := v.ex.Histogram2D(v.step, cond, spec)
		if err != nil {
			return nil, err
		}
		out[i] = h
	}
	return out, nil
}

// BinWidth returns the current per-bin width of one axis at the context
// resolution — it shrinks as the user zooms, demonstrating that drill-down
// gains real resolution instead of merging precomputed bins.
func (v *View) BinWidth(name string) (float64, error) {
	for _, a := range v.axes {
		if a.Var == name {
			return (a.Max - a.Min) / float64(v.opt.ContextBins), nil
		}
	}
	return 0, fmt.Errorf("core: view has no axis %q", name)
}
