package core

import (
	"testing"
)

func TestScatterPlot(t *testing.T) {
	ex := testExplorer(t)
	last := ex.Steps() - 1
	c, err := ex.ScatterPlot(last, "x", "y", "px", "px > 5e10", DefaultScatterOptions())
	if err != nil {
		t.Fatal(err)
	}
	if c == nil {
		t.Fatal("nil canvas")
	}
	// Coloured selection markers must be present (non-gray pixels).
	var colored int
	w, h := c.Size()
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			px := c.At(x, y)
			if int(px.R)+int(px.G)+int(px.B) > 80 && (px.R != px.G || px.G != px.B) {
				colored++
			}
		}
	}
	if colored < 20 {
		t.Fatalf("selection markers invisible: %d colored pixels", colored)
	}
	// No selection condition colours everything.
	if _, err := ex.ScatterPlot(2, "x", "y", "px", "", DefaultScatterOptions()); err != nil {
		t.Fatal(err)
	}
	// Errors.
	if _, err := ex.ScatterPlot(last, "nope", "y", "px", "", DefaultScatterOptions()); err == nil {
		t.Fatal("unknown x var accepted")
	}
	if _, err := ex.ScatterPlot(last, "x", "y", "nope", "", DefaultScatterOptions()); err == nil {
		t.Fatal("unknown color var accepted")
	}
	if _, err := ex.ScatterPlot(last, "x", "y", "px", "bad >", DefaultScatterOptions()); err == nil {
		t.Fatal("bad selection accepted")
	}
}

func TestScatterPlotSubsamplesContext(t *testing.T) {
	ex := testExplorer(t)
	opt := DefaultScatterOptions()
	opt.MaxContext = 100
	if _, err := ex.ScatterPlot(3, "x", "y", "px", "px > 1e9", opt); err != nil {
		t.Fatal(err)
	}
}

func TestTracePlot(t *testing.T) {
	ex := testExplorer(t)
	last := ex.Steps() - 1
	sel, err := ex.Select(last, "px > 5e10")
	if err != nil {
		t.Fatal(err)
	}
	ids := sel.IDs()
	if len(ids) > 15 {
		ids = ids[:15]
	}
	tracks, err := ex.TrackIDs(ids, 0, last, TrackOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []TracePlotColor{ColorByPx, ColorByID} {
		c, err := ex.TracePlot(tracks, last, mode, DefaultScatterOptions())
		if err != nil {
			t.Fatal(err)
		}
		if c == nil {
			t.Fatal("nil canvas")
		}
	}
	if _, err := ex.TracePlot(nil, last, ColorByPx, DefaultScatterOptions()); err == nil {
		t.Fatal("empty track list accepted")
	}
}

func TestSubsample(t *testing.T) {
	vs := []float64{0, 1, 2, 3, 4, 5, 6}
	got := subsample(vs, 3)
	if len(got) != 3 || got[0] != 0 || got[1] != 3 || got[2] != 6 {
		t.Fatalf("subsample = %v", got)
	}
	if sub := subsample(vs, 1); len(sub) != len(vs) {
		t.Fatal("stride 1 must be identity")
	}
}
