// Package core is the public face of the system: it ties the storage,
// index, query, histogram and rendering substrates into the workflow the
// paper demonstrates — open a time-varying particle dataset, build
// selections interactively with compound range queries, compute
// conditional histograms at any resolution, render focus+context and
// temporal parallel coordinates plots, and trace particle subsets across
// timesteps by identifier.
package core

import (
	"fmt"
	"sort"

	"repro/internal/cluster"
	"repro/internal/fastquery"
	"repro/internal/histogram"
	"repro/internal/query"
)

// Explorer is an open dataset plus an execution backend choice.
type Explorer struct {
	src     *fastquery.Source
	backend fastquery.Backend
	idVar   string
}

// Open opens a dataset directory (data files plus optional indexes).
func Open(dir string) (*Explorer, error) {
	src, err := fastquery.Open(dir)
	if err != nil {
		return nil, err
	}
	return &Explorer{src: src, backend: fastquery.FastBit, idVar: "id"}, nil
}

// SetBackend switches between the FastBit index backend and the
// sequential-scan baseline. All results are identical either way.
func (e *Explorer) SetBackend(b fastquery.Backend) { e.backend = b }

// Backend returns the active backend.
func (e *Explorer) Backend() fastquery.Backend { return e.backend }

// Steps returns the number of timesteps.
func (e *Explorer) Steps() int { return e.src.Steps() }

// Variables returns the dataset's variable names.
func (e *Explorer) Variables() []string { return e.src.Variables() }

// Source exposes the underlying fastquery source for advanced use.
func (e *Explorer) Source() *fastquery.Source { return e.src }

// Selection is a set of records in one timestep matching a query.
type Selection struct {
	ex        *Explorer
	step      int
	expr      query.Expr
	positions []uint64
	ids       []int64
}

// Select evaluates a query string against one timestep.
func (e *Explorer) Select(step int, q string) (*Selection, error) {
	expr, err := query.Parse(q)
	if err != nil {
		return nil, err
	}
	return e.SelectExpr(step, expr)
}

// SelectExpr evaluates a parsed query against one timestep.
func (e *Explorer) SelectExpr(step int, expr query.Expr) (*Selection, error) {
	st, err := e.src.OpenStep(step)
	if err != nil {
		return nil, err
	}
	defer st.Close()
	pos, err := st.Select(expr, e.backend)
	if err != nil {
		return nil, err
	}
	ids, err := st.SelectIDs(expr, e.backend)
	if err != nil {
		return nil, err
	}
	return &Selection{ex: e, step: step, expr: expr, positions: pos, ids: ids}, nil
}

// Step returns the selection's timestep.
func (s *Selection) Step() int { return s.step }

// Query returns the selection's query expression.
func (s *Selection) Query() query.Expr { return s.expr }

// Count returns the number of selected records.
func (s *Selection) Count() int { return len(s.positions) }

// Positions returns the selected record positions (sorted).
func (s *Selection) Positions() []uint64 {
	return append([]uint64(nil), s.positions...)
}

// IDs returns the selected particle identifiers, in record order.
func (s *Selection) IDs() []int64 {
	return append([]int64(nil), s.ids...)
}

// Refine returns a new selection restricted by an additional condition —
// the paper's "beam refinement" interaction (Section IV-D).
func (s *Selection) Refine(extra string) (*Selection, error) {
	expr, err := query.Parse(extra)
	if err != nil {
		return nil, err
	}
	combined := &query.And{Terms: []query.Expr{s.expr, expr}}
	return s.ex.SelectExpr(s.step, combined)
}

// Values reads the named column for just the selected records.
func (s *Selection) Values(name string) ([]float64, error) {
	st, err := s.ex.src.OpenStep(s.step)
	if err != nil {
		return nil, err
	}
	defer st.Close()
	col, err := st.ReadColumn(name)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(s.positions))
	for i, p := range s.positions {
		out[i] = col[p]
	}
	return out, nil
}

// AtStep re-evaluates the selection's identifier set at another timestep:
// the same particles, found by ID (the paper's time-tracing primitive).
func (s *Selection) AtStep(step int) (*Selection, error) {
	return s.ex.SelectByIDs(step, s.ids)
}

// SelectByIDs builds a selection from an explicit identifier set.
func (e *Explorer) SelectByIDs(step int, ids []int64) (*Selection, error) {
	st, err := e.src.OpenStep(step)
	if err != nil {
		return nil, err
	}
	defer st.Close()
	pos, err := st.FindIDs(ids, e.backend)
	if err != nil {
		return nil, err
	}
	vals, err := st.ReadColumn(e.idVar)
	if err != nil {
		return nil, err
	}
	found := make([]int64, len(pos))
	for i, p := range pos {
		found[i] = int64(vals[p])
	}
	// Represent the query as an IN expression for display purposes.
	fvals := make([]float64, len(ids))
	for i, id := range ids {
		fvals[i] = float64(id)
	}
	return &Selection{
		ex:        e,
		step:      step,
		expr:      query.NewIn(e.idVar, fvals),
		positions: pos,
		ids:       found,
	}, nil
}

// Histogram2D computes a 2D histogram of one timestep; cond may be empty
// for an unconditional histogram.
func (e *Explorer) Histogram2D(step int, cond string, spec histogram.Spec2D) (*histogram.Hist2D, error) {
	var expr query.Expr
	if cond != "" {
		var err error
		if expr, err = query.Parse(cond); err != nil {
			return nil, err
		}
	}
	st, err := e.src.OpenStep(step)
	if err != nil {
		return nil, err
	}
	defer st.Close()
	return st.Histogram2D(expr, spec, e.backend)
}

// Histogram1D computes a 1D histogram of one timestep.
func (e *Explorer) Histogram1D(step int, cond string, spec histogram.Spec1D) (*histogram.Hist1D, error) {
	var expr query.Expr
	if cond != "" {
		var err error
		if expr, err = query.Parse(cond); err != nil {
			return nil, err
		}
	}
	st, err := e.src.OpenStep(step)
	if err != nil {
		return nil, err
	}
	defer st.Close()
	return st.Histogram1D(expr, spec, e.backend)
}

// VarRange returns the value range of a variable at one timestep.
func (e *Explorer) VarRange(step int, name string) (lo, hi float64, err error) {
	st, err := e.src.OpenStep(step)
	if err != nil {
		return 0, 0, err
	}
	defer st.Close()
	return st.MinMax(name)
}

// GlobalRange returns the value range of a variable across the given
// steps (all steps when steps is nil).
func (e *Explorer) GlobalRange(name string, steps []int) (lo, hi float64, err error) {
	if steps == nil {
		for t := 0; t < e.Steps(); t++ {
			steps = append(steps, t)
		}
	}
	first := true
	for _, t := range steps {
		l, h, err := e.VarRange(t, name)
		if err != nil {
			return 0, 0, err
		}
		if first {
			lo, hi = l, h
			first = false
			continue
		}
		if l < lo {
			lo = l
		}
		if h > hi {
			hi = h
		}
	}
	if first {
		return 0, 0, fmt.Errorf("core: no steps")
	}
	return lo, hi, nil
}

// Track is one particle's trajectory over the tracked steps. Slices are
// parallel to Steps; a step is present only when the particle was in the
// simulation window then.
type Track struct {
	ID                  int64
	Steps               []int
	X, Y, Z, Px, Py, Pz []float64
}

// TrackOptions controls multi-step tracking.
type TrackOptions struct {
	// Workers bounds concurrent per-step work; 0 means serial.
	Workers int
	// Vars are the trajectory variables to gather; nil selects
	// x, y, z, px, py, pz.
	Vars []string
}

// TrackIDs locates the identifier set in steps [from, to] and assembles
// per-particle trajectories — the operation that took the paper's
// collaborators hours with scripts and runs in seconds with the index.
func (e *Explorer) TrackIDs(ids []int64, from, to int, opt TrackOptions) ([]*Track, error) {
	if from > to {
		from, to = to, from
	}
	if from < 0 || to >= e.Steps() {
		return nil, fmt.Errorf("core: step range [%d,%d] outside [0,%d)", from, to, e.Steps())
	}
	vars := opt.Vars
	if vars == nil {
		vars = []string{"x", "y", "z", "px", "py", "pz"}
	}
	have := map[string]bool{}
	for _, v := range vars {
		have[v] = true
	}
	if !have["x"] || !have["px"] {
		return nil, fmt.Errorf("core: TrackOptions.Vars must include x and px")
	}
	nSteps := to - from + 1
	type stepHits struct {
		ids  []int64
		vals map[string][]float64
	}
	hits := make([]stepHits, nSteps)
	tasks := make([]cluster.Task, nSteps)
	for i := 0; i < nSteps; i++ {
		i := i
		step := from + i
		tasks[i] = cluster.Task{Step: step, Run: func() (uint64, int, error) {
			st, err := e.src.OpenStep(step)
			if err != nil {
				return 0, 0, err
			}
			defer st.Close()
			pos, err := st.FindIDs(ids, e.backend)
			if err != nil {
				return 0, 0, err
			}
			h := stepHits{vals: map[string][]float64{}}
			idCol, err := st.ReadColumn(e.idVar)
			if err != nil {
				return 0, 0, err
			}
			for _, p := range pos {
				h.ids = append(h.ids, int64(idCol[p]))
			}
			for _, v := range vars {
				col, err := st.ReadColumn(v)
				if err != nil {
					return 0, 0, err
				}
				vals := make([]float64, len(pos))
				for j, p := range pos {
					vals[j] = col[p]
				}
				h.vals[v] = vals
			}
			hits[i] = h
			return st.IOBytes(), 1, nil
		}}
	}
	var err error
	if opt.Workers > 0 {
		_, err = cluster.Run(tasks, opt.Workers, cluster.IOModel{})
	} else {
		_, err = cluster.RunSerial(tasks, cluster.IOModel{})
	}
	if err != nil {
		return nil, err
	}
	// Assemble per-id tracks.
	byID := map[int64]*Track{}
	for i := 0; i < nSteps; i++ {
		step := from + i
		h := hits[i]
		for j, id := range h.ids {
			tr, ok := byID[id]
			if !ok {
				tr = &Track{ID: id}
				byID[id] = tr
			}
			tr.Steps = append(tr.Steps, step)
			tr.X = append(tr.X, h.vals["x"][j])
			if v, ok := h.vals["y"]; ok {
				tr.Y = append(tr.Y, v[j])
			}
			if v, ok := h.vals["z"]; ok {
				tr.Z = append(tr.Z, v[j])
			}
			tr.Px = append(tr.Px, h.vals["px"][j])
			if v, ok := h.vals["py"]; ok {
				tr.Py = append(tr.Py, v[j])
			}
			if v, ok := h.vals["pz"]; ok {
				tr.Pz = append(tr.Pz, v[j])
			}
		}
	}
	out := make([]*Track, 0, len(byID))
	for _, tr := range byID {
		out = append(out, tr)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}

// Len returns the number of steps in the track.
func (t *Track) Len() int { return len(t.Steps) }
