package render

import (
	"bytes"
	"image/color"
	"image/png"
	"path/filepath"
	"testing"
)

var (
	white = color.RGBA{255, 255, 255, 255}
	black = color.RGBA{0, 0, 0, 255}
	red   = color.RGBA{255, 0, 0, 255}
)

func TestNewCanvas(t *testing.T) {
	c, err := NewCanvas(10, 5, black)
	if err != nil {
		t.Fatal(err)
	}
	w, h := c.Size()
	if w != 10 || h != 5 {
		t.Fatalf("Size = %d,%d", w, h)
	}
	if got := c.At(3, 3); got != black {
		t.Fatalf("background = %v", got)
	}
	if got := c.At(-1, 0); got != (color.RGBA{}) {
		t.Fatal("out of range At nonzero")
	}
	if _, err := NewCanvas(0, 5, black); err == nil {
		t.Fatal("zero width accepted")
	}
}

func TestBlendOpaque(t *testing.T) {
	c, _ := NewCanvas(4, 4, black)
	c.Blend(1, 1, white, 1)
	if got := c.At(1, 1); got != white {
		t.Fatalf("opaque blend = %v", got)
	}
}

func TestBlendHalf(t *testing.T) {
	c, _ := NewCanvas(4, 4, black)
	c.Blend(0, 0, white, 0.5)
	got := c.At(0, 0)
	if got.R < 120 || got.R > 135 {
		t.Fatalf("half blend R = %d", got.R)
	}
	// Alpha <= 0 is a no-op; > 1 clamps.
	c.Blend(1, 1, white, 0)
	if c.At(1, 1) != black {
		t.Fatal("zero alpha changed pixel")
	}
	c.Blend(2, 2, white, 5)
	if c.At(2, 2) != white {
		t.Fatal("clamped alpha not opaque")
	}
	// Out of bounds is a no-op.
	c.Blend(100, 100, white, 1)
}

func TestFillRect(t *testing.T) {
	c, _ := NewCanvas(10, 10, black)
	c.FillRect(7, 7, 2, 2, red, 1) // inverted corners fixed up
	if c.At(2, 2) != red || c.At(7, 7) != red {
		t.Fatal("rect corners not filled")
	}
	if c.At(1, 1) == red || c.At(8, 8) == red {
		t.Fatal("rect overflow")
	}
}

func TestFillTrapezoidRectangle(t *testing.T) {
	c, _ := NewCanvas(20, 20, black)
	c.FillTrapezoid(5, 5, 10, 15, 5, 10, white, 1)
	// A parallel-sided quad: middle fully covered.
	for _, x := range []int{5, 10, 15} {
		if c.At(x, 7) != white {
			t.Fatalf("pixel (%d,7) not filled", x)
		}
	}
	if c.At(10, 3) == white || c.At(10, 12) == white {
		t.Fatal("trapezoid overflow in y")
	}
}

func TestFillTrapezoidSlanted(t *testing.T) {
	c, _ := NewCanvas(20, 20, black)
	// Left segment spans 2..4, right spans 14..18 — adaptive-bin shape.
	c.FillTrapezoid(2, 2, 4, 17, 14, 18, white, 1)
	if c.At(2, 3) != white {
		t.Fatal("left edge not filled")
	}
	if c.At(17, 16) != white {
		t.Fatal("right edge not filled")
	}
	// Middle interpolates: at x≈9.5 the band is near y in [8,11].
	if c.At(10, 9) != white {
		t.Fatal("interpolated middle not filled")
	}
	if c.At(10, 2) == white {
		t.Fatal("middle filled above interpolated band")
	}
	// Swapped x order draws the same shape.
	c2, _ := NewCanvas(20, 20, black)
	c2.FillTrapezoid(17, 14, 18, 2, 2, 4, white, 1)
	for y := 0; y < 20; y++ {
		for x := 0; x < 20; x++ {
			if c.At(x, y) != c2.At(x, y) {
				t.Fatalf("swap asymmetry at (%d,%d)", x, y)
			}
		}
	}
}

func TestFillTrapezoidDegenerateVertical(t *testing.T) {
	c, _ := NewCanvas(10, 10, black)
	c.FillTrapezoid(3, 2, 8, 3, 2, 8, white, 1) // zero width -> vertical line
	if c.At(3, 5) != white {
		t.Fatal("degenerate trapezoid missing")
	}
}

func TestLine(t *testing.T) {
	c, _ := NewCanvas(10, 10, black)
	c.Line(0, 0, 9, 9, white, 1)
	for i := 0; i < 10; i++ {
		if c.At(i, i) != white {
			t.Fatalf("diagonal pixel (%d,%d) missing", i, i)
		}
	}
}

func TestVHLines(t *testing.T) {
	c, _ := NewCanvas(10, 10, black)
	c.VLine(4, 8, 1, white, 1) // inverted order
	c.HLine(8, 1, 7, red, 1)
	if c.At(4, 3) != white || c.At(3, 7) != red {
		t.Fatal("lines missing")
	}
}

func TestPNGRoundTrip(t *testing.T) {
	c, _ := NewCanvas(16, 16, black)
	c.FillRect(2, 2, 12, 12, red, 1)
	var buf bytes.Buffer
	if err := c.EncodePNG(&buf); err != nil {
		t.Fatal(err)
	}
	img, err := png.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if img.Bounds().Dx() != 16 {
		t.Fatalf("decoded width %d", img.Bounds().Dx())
	}
	path := filepath.Join(t.TempDir(), "out.png")
	if err := c.SavePNG(path); err != nil {
		t.Fatal(err)
	}
	if err := c.SavePNG("/nonexistent-dir/x.png"); err == nil {
		t.Fatal("bad path accepted")
	}
}

func TestText(t *testing.T) {
	c, _ := NewCanvas(200, 20, black)
	c.Text(1, 1, "px > 8.872e10", white)
	// Some pixels must be set.
	var lit int
	for y := 0; y < 10; y++ {
		for x := 0; x < 100; x++ {
			if c.At(x, y) == white {
				lit++
			}
		}
	}
	if lit < 30 {
		t.Fatalf("text rendered only %d pixels", lit)
	}
	if TextWidth("abc") != 3*GlyphWidth {
		t.Fatalf("TextWidth = %d", TextWidth("abc"))
	}
	// Unknown rune draws a box rather than panicking; uppercase folds.
	c.Text(1, 10, "AB@", white)
	c.TextCentered(100, 1, "xrel", white)
}
