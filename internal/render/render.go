// Package render is a small software rasteriser used to draw parallel
// coordinates plots into an image.RGBA: filled trapezoids (histogram
// bins), anti-alias-free lines (polylines, axes) and alpha blending. It
// stands in for the OpenGL rendering VisIt performs; everything the plots
// need is expressible with these primitives.
package render

import (
	"fmt"
	"image"
	"image/color"
	"image/png"
	"io"
	"math"
	"os"
)

// Canvas is a mutable RGBA image with blending helpers.
type Canvas struct {
	img *image.RGBA
	w   int
	h   int
}

// NewCanvas returns a canvas of the given size filled with bg.
func NewCanvas(w, h int, bg color.RGBA) (*Canvas, error) {
	if w < 1 || h < 1 {
		return nil, fmt.Errorf("render: invalid canvas size %dx%d", w, h)
	}
	c := &Canvas{img: image.NewRGBA(image.Rect(0, 0, w, h)), w: w, h: h}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			c.img.SetRGBA(x, y, bg)
		}
	}
	return c, nil
}

// Size returns the canvas dimensions.
func (c *Canvas) Size() (w, h int) { return c.w, c.h }

// Image returns the backing image.
func (c *Canvas) Image() *image.RGBA { return c.img }

// At returns the pixel color at (x, y); out-of-range reads return zero.
func (c *Canvas) At(x, y int) color.RGBA {
	if x < 0 || y < 0 || x >= c.w || y >= c.h {
		return color.RGBA{}
	}
	return c.img.RGBAAt(x, y)
}

// Blend composites col over the pixel at (x, y) with the given opacity in
// [0, 1]. Out-of-range pixels are ignored.
func (c *Canvas) Blend(x, y int, col color.RGBA, alpha float64) {
	if x < 0 || y < 0 || x >= c.w || y >= c.h {
		return
	}
	if alpha <= 0 {
		return
	}
	if alpha > 1 {
		alpha = 1
	}
	dst := c.img.RGBAAt(x, y)
	blend := func(s, d uint8) uint8 {
		v := alpha*float64(s) + (1-alpha)*float64(d)
		return uint8(math.Round(math.Min(255, math.Max(0, v))))
	}
	c.img.SetRGBA(x, y, color.RGBA{
		R: blend(col.R, dst.R),
		G: blend(col.G, dst.G),
		B: blend(col.B, dst.B),
		A: 255,
	})
}

// FillRect blends an axis-aligned rectangle (inclusive bounds).
func (c *Canvas) FillRect(x0, y0, x1, y1 int, col color.RGBA, alpha float64) {
	if x0 > x1 {
		x0, x1 = x1, x0
	}
	if y0 > y1 {
		y0, y1 = y1, y0
	}
	for y := y0; y <= y1; y++ {
		for x := x0; x <= x1; x++ {
			c.Blend(x, y, col, alpha)
		}
	}
}

// FillTrapezoid blends the region between two vertical segments: the
// segment (yl0..yl1) at x = xl and the segment (yr0..yr1) at x = xr. This
// is the primitive for a histogram-based parallel coordinates bin: it
// connects a value range on one axis to a value range on the next, and it
// degenerates gracefully to a quadrilateral with parallel sides (uniform
// bins) or differing extents (adaptive bins).
func (c *Canvas) FillTrapezoid(xl float64, yl0, yl1 float64, xr float64, yr0, yr1 float64, col color.RGBA, alpha float64) {
	if xr < xl {
		xl, xr = xr, xl
		yl0, yr0 = yr0, yl0
		yl1, yr1 = yr1, yl1
	}
	if yl0 > yl1 {
		yl0, yl1 = yl1, yl0
	}
	if yr0 > yr1 {
		yr0, yr1 = yr1, yr0
	}
	x0 := int(math.Floor(xl))
	x1 := int(math.Ceil(xr))
	span := xr - xl
	for x := x0; x <= x1; x++ {
		t := 0.0
		if span > 0 {
			t = (float64(x) - xl) / span
			if t < 0 {
				t = 0
			}
			if t > 1 {
				t = 1
			}
		}
		top := yl0 + t*(yr0-yl0)
		bot := yl1 + t*(yr1-yl1)
		yTop := int(math.Round(top))
		yBot := int(math.Round(bot))
		if yBot < yTop {
			yTop, yBot = yBot, yTop
		}
		for y := yTop; y <= yBot; y++ {
			c.Blend(x, y, col, alpha)
		}
	}
}

// Line blends a straight line from (x0, y0) to (x1, y1) using a DDA walk.
func (c *Canvas) Line(x0, y0, x1, y1 float64, col color.RGBA, alpha float64) {
	dx, dy := x1-x0, y1-y0
	steps := int(math.Max(math.Abs(dx), math.Abs(dy))) + 1
	for i := 0; i <= steps; i++ {
		t := float64(i) / float64(steps)
		c.Blend(int(math.Round(x0+t*dx)), int(math.Round(y0+t*dy)), col, alpha)
	}
}

// VLine blends a vertical line.
func (c *Canvas) VLine(x int, y0, y1 int, col color.RGBA, alpha float64) {
	if y0 > y1 {
		y0, y1 = y1, y0
	}
	for y := y0; y <= y1; y++ {
		c.Blend(x, y, col, alpha)
	}
}

// HLine blends a horizontal line.
func (c *Canvas) HLine(x0, x1 int, y int, col color.RGBA, alpha float64) {
	if x0 > x1 {
		x0, x1 = x1, x0
	}
	for x := x0; x <= x1; x++ {
		c.Blend(x, y, col, alpha)
	}
}

// EncodePNG writes the canvas as PNG.
func (c *Canvas) EncodePNG(w io.Writer) error { return png.Encode(w, c.img) }

// SavePNG writes the canvas to a PNG file.
func (c *Canvas) SavePNG(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("render: %w", err)
	}
	if err := c.EncodePNG(f); err != nil {
		f.Close()
		return fmt.Errorf("render: encode %s: %w", path, err)
	}
	return f.Close()
}
