package render

import (
	"image/color"
	"math"
)

// Colormap maps a normalised value in [0, 1] to a colour.
type Colormap func(t float64) color.RGBA

// Rainbow is the jet-style map the paper's pseudocolor plots use
// (blue = low → red = high).
func Rainbow(t float64) color.RGBA {
	t = clamp01(t)
	// Piecewise linear blue -> cyan -> green -> yellow -> red.
	var r, g, b float64
	switch {
	case t < 0.25:
		r, g, b = 0, t/0.25, 1
	case t < 0.5:
		r, g, b = 0, 1, 1-(t-0.25)/0.25
	case t < 0.75:
		r, g, b = (t-0.5)/0.25, 1, 0
	default:
		r, g, b = 1, 1-(t-0.75)/0.25, 0
	}
	return color.RGBA{
		R: uint8(math.Round(255 * r)),
		G: uint8(math.Round(255 * g)),
		B: uint8(math.Round(255 * b)),
		A: 255,
	}
}

// Grayscale maps [0, 1] to black→white.
func Grayscale(t float64) color.RGBA {
	v := uint8(math.Round(255 * clamp01(t)))
	return color.RGBA{R: v, G: v, B: v, A: 255}
}

// Heat maps [0, 1] to black→red→yellow→white.
func Heat(t float64) color.RGBA {
	t = clamp01(t)
	r := clamp01(3 * t)
	g := clamp01(3*t - 1)
	b := clamp01(3*t - 2)
	return color.RGBA{
		R: uint8(math.Round(255 * r)),
		G: uint8(math.Round(255 * g)),
		B: uint8(math.Round(255 * b)),
		A: 255,
	}
}

func clamp01(t float64) float64 {
	if math.IsNaN(t) || t < 0 {
		return 0
	}
	if t > 1 {
		return 1
	}
	return t
}

// Normalize returns a function mapping [lo, hi] linearly onto [0, 1].
func Normalize(lo, hi float64) func(v float64) float64 {
	span := hi - lo
	if span <= 0 {
		return func(float64) float64 { return 0.5 }
	}
	return func(v float64) float64 { return clamp01((v - lo) / span) }
}
