package render

import (
	"image/color"
	"strings"
)

// A minimal 5x7 bitmap font for axis labels and annotations: digits,
// lowercase letters and the punctuation needed for numbers in scientific
// notation and simple query strings. Uppercase input is folded to
// lowercase; unknown runes render as a hollow box.
//
// Each glyph is 7 rows of 5 bits, most-significant bit leftmost.
var font5x7 = map[rune][7]uint8{
	'0': {0b01110, 0b10001, 0b10011, 0b10101, 0b11001, 0b10001, 0b01110},
	'1': {0b00100, 0b01100, 0b00100, 0b00100, 0b00100, 0b00100, 0b01110},
	'2': {0b01110, 0b10001, 0b00001, 0b00010, 0b00100, 0b01000, 0b11111},
	'3': {0b11111, 0b00010, 0b00100, 0b00010, 0b00001, 0b10001, 0b01110},
	'4': {0b00010, 0b00110, 0b01010, 0b10010, 0b11111, 0b00010, 0b00010},
	'5': {0b11111, 0b10000, 0b11110, 0b00001, 0b00001, 0b10001, 0b01110},
	'6': {0b00110, 0b01000, 0b10000, 0b11110, 0b10001, 0b10001, 0b01110},
	'7': {0b11111, 0b00001, 0b00010, 0b00100, 0b01000, 0b01000, 0b01000},
	'8': {0b01110, 0b10001, 0b10001, 0b01110, 0b10001, 0b10001, 0b01110},
	'9': {0b01110, 0b10001, 0b10001, 0b01111, 0b00001, 0b00010, 0b01100},
	'a': {0b00000, 0b00000, 0b01110, 0b00001, 0b01111, 0b10001, 0b01111},
	'b': {0b10000, 0b10000, 0b11110, 0b10001, 0b10001, 0b10001, 0b11110},
	'c': {0b00000, 0b00000, 0b01110, 0b10000, 0b10000, 0b10001, 0b01110},
	'd': {0b00001, 0b00001, 0b01111, 0b10001, 0b10001, 0b10001, 0b01111},
	'e': {0b00000, 0b00000, 0b01110, 0b10001, 0b11111, 0b10000, 0b01110},
	'f': {0b00110, 0b01001, 0b01000, 0b11100, 0b01000, 0b01000, 0b01000},
	'g': {0b00000, 0b01111, 0b10001, 0b10001, 0b01111, 0b00001, 0b01110},
	'h': {0b10000, 0b10000, 0b11110, 0b10001, 0b10001, 0b10001, 0b10001},
	'i': {0b00100, 0b00000, 0b01100, 0b00100, 0b00100, 0b00100, 0b01110},
	'j': {0b00010, 0b00000, 0b00110, 0b00010, 0b00010, 0b10010, 0b01100},
	'k': {0b10000, 0b10000, 0b10010, 0b10100, 0b11000, 0b10100, 0b10010},
	'l': {0b01100, 0b00100, 0b00100, 0b00100, 0b00100, 0b00100, 0b01110},
	'm': {0b00000, 0b00000, 0b11010, 0b10101, 0b10101, 0b10101, 0b10101},
	'n': {0b00000, 0b00000, 0b11110, 0b10001, 0b10001, 0b10001, 0b10001},
	'o': {0b00000, 0b00000, 0b01110, 0b10001, 0b10001, 0b10001, 0b01110},
	'p': {0b00000, 0b11110, 0b10001, 0b10001, 0b11110, 0b10000, 0b10000},
	'q': {0b00000, 0b01111, 0b10001, 0b10001, 0b01111, 0b00001, 0b00001},
	'r': {0b00000, 0b00000, 0b10110, 0b11001, 0b10000, 0b10000, 0b10000},
	's': {0b00000, 0b00000, 0b01111, 0b10000, 0b01110, 0b00001, 0b11110},
	't': {0b01000, 0b01000, 0b11100, 0b01000, 0b01000, 0b01001, 0b00110},
	'u': {0b00000, 0b00000, 0b10001, 0b10001, 0b10001, 0b10011, 0b01101},
	'v': {0b00000, 0b00000, 0b10001, 0b10001, 0b10001, 0b01010, 0b00100},
	'w': {0b00000, 0b00000, 0b10101, 0b10101, 0b10101, 0b10101, 0b01010},
	'x': {0b00000, 0b00000, 0b10001, 0b01010, 0b00100, 0b01010, 0b10001},
	'y': {0b00000, 0b10001, 0b10001, 0b01111, 0b00001, 0b10001, 0b01110},
	'z': {0b00000, 0b00000, 0b11111, 0b00010, 0b00100, 0b01000, 0b11111},
	'.': {0b00000, 0b00000, 0b00000, 0b00000, 0b00000, 0b01100, 0b01100},
	',': {0b00000, 0b00000, 0b00000, 0b00000, 0b01100, 0b00100, 0b01000},
	'-': {0b00000, 0b00000, 0b00000, 0b11111, 0b00000, 0b00000, 0b00000},
	'+': {0b00000, 0b00100, 0b00100, 0b11111, 0b00100, 0b00100, 0b00000},
	'=': {0b00000, 0b00000, 0b11111, 0b00000, 0b11111, 0b00000, 0b00000},
	'>': {0b10000, 0b01000, 0b00100, 0b00010, 0b00100, 0b01000, 0b10000},
	'<': {0b00001, 0b00010, 0b00100, 0b01000, 0b00100, 0b00010, 0b00001},
	'(': {0b00010, 0b00100, 0b01000, 0b01000, 0b01000, 0b00100, 0b00010},
	')': {0b01000, 0b00100, 0b00010, 0b00010, 0b00010, 0b00100, 0b01000},
	'_': {0b00000, 0b00000, 0b00000, 0b00000, 0b00000, 0b00000, 0b11111},
	'/': {0b00001, 0b00010, 0b00010, 0b00100, 0b01000, 0b01000, 0b10000},
	'*': {0b00000, 0b00100, 0b10101, 0b01110, 0b10101, 0b00100, 0b00000},
	' ': {},
}

// GlyphWidth and GlyphHeight are the font cell dimensions including the
// one-pixel advance gap.
const (
	GlyphWidth  = 6
	GlyphHeight = 7
)

// TextWidth returns the rendered pixel width of s.
func TextWidth(s string) int { return len([]rune(s)) * GlyphWidth }

// Text draws s with its top-left corner at (x, y).
func (c *Canvas) Text(x, y int, s string, col color.RGBA) {
	s = strings.ToLower(s)
	cx := x
	for _, r := range s {
		glyph, ok := font5x7[r]
		if !ok {
			// Hollow box for unknown runes.
			c.HLine(cx, cx+4, y, col, 1)
			c.HLine(cx, cx+4, y+6, col, 1)
			c.VLine(cx, y, y+6, col, 1)
			c.VLine(cx+4, y, y+6, col, 1)
			cx += GlyphWidth
			continue
		}
		for row := 0; row < 7; row++ {
			bits := glyph[row]
			for bit := 0; bit < 5; bit++ {
				if bits&(1<<(4-bit)) != 0 {
					c.Blend(cx+bit, y+row, col, 1)
				}
			}
		}
		cx += GlyphWidth
	}
}

// TextCentered draws s horizontally centred on cx.
func (c *Canvas) TextCentered(cx, y int, s string, col color.RGBA) {
	c.Text(cx-TextWidth(s)/2, y, s, col)
}
