package histogram_test

import (
	"fmt"

	"repro/internal/histogram"
)

func ExampleCompute2D() {
	xs := []float64{0.1, 0.4, 0.6, 0.9}
	ys := []float64{0.2, 0.2, 0.8, 0.8}
	h, err := histogram.Compute2D("x", "y", xs, ys,
		histogram.UniformEdges(0, 1, 2), histogram.UniformEdges(0, 1, 2))
	if err != nil {
		panic(err)
	}
	fmt.Println(h.Total())
	fmt.Println(h.At(0, 0), h.At(1, 1))
	// Output:
	// 4
	// 2 2
}

func ExampleAdaptiveEdges() {
	// Equal-weight (adaptive) bins narrow where the data is dense.
	vals := make([]float64, 0, 1100)
	for i := 0; i < 1000; i++ {
		vals = append(vals, float64(i)/10000) // dense cluster near 0
	}
	for i := 0; i < 100; i++ {
		vals = append(vals, 0.1+0.9*float64(i)/100) // sparse tail
	}
	edges, err := histogram.AdaptiveEdges(vals, 0, 1, 4, 0)
	if err != nil {
		panic(err)
	}
	firstWidth := edges[1] - edges[0]
	lastWidth := edges[4] - edges[3]
	fmt.Println(len(edges), firstWidth < lastWidth)
	// Output:
	// 5 true
}
