package histogram

import "fmt"

// AdaptiveEdgesFromCounts merges the bins of a fine uniform histogram
// (given by its edges and per-bin counts) into `bins` contiguous groups of
// approximately equal total weight, returning the merged edges. This is
// the construction the paper attributes to FastBit: "FastBit computes
// adaptive histograms by first computing a higher-resolution uniformly
// binned histogram and then merging bins."
//
// minDensity, when positive, is the optional constraint from Section
// III-A3: a merged bin is closed early rather than diluted below the given
// record-per-unit-width density, which preserves detail in sparse regions.
func AdaptiveEdgesFromCounts(fineEdges []float64, fineCounts []uint64, bins int, minDensity float64) ([]float64, error) {
	if len(fineEdges) != len(fineCounts)+1 {
		return nil, fmt.Errorf("histogram: %d edges does not match %d counts", len(fineEdges), len(fineCounts))
	}
	if bins < 1 {
		return nil, fmt.Errorf("histogram: need at least 1 bin, got %d", bins)
	}
	if bins >= len(fineCounts) {
		return append([]float64(nil), fineEdges...), nil
	}
	var total uint64
	for _, c := range fineCounts {
		total += c
	}
	edges := make([]float64, 0, bins+1)
	edges = append(edges, fineEdges[0])
	var acc, placed uint64
	remainBins := bins
	for i, c := range fineCounts {
		acc += c
		// Target weight for the current merged bin: divide what is left
		// evenly among the remaining merged bins.
		remaining := total - placed
		target := remaining / uint64(remainBins)
		fineLeft := len(fineCounts) - i - 1
		closeHere := acc >= target && acc > 0
		if minDensity > 0 && acc > 0 {
			width := fineEdges[i+1] - edges[len(edges)-1]
			if width > 0 && float64(acc)/width < minDensity {
				// Still below the density floor; keep absorbing unless we
				// are forced to close to leave room for remaining bins.
				closeHere = false
			}
		}
		// Force-close when exactly enough fine bins remain to give each
		// remaining merged bin at least one fine bin.
		if fineLeft < remainBins-1 {
			closeHere = true
		}
		if closeHere && remainBins > 1 && i < len(fineCounts)-1 {
			edges = append(edges, fineEdges[i+1])
			placed += acc
			acc = 0
			remainBins--
		}
	}
	edges = append(edges, fineEdges[len(fineEdges)-1])
	return edges, nil
}

// AdaptiveEdges computes equal-weight edges for raw values over [lo, hi]
// by first building an AdaptiveRefine× finer uniform histogram and merging
// it. Values outside [lo, hi] are ignored.
func AdaptiveEdges(values []float64, lo, hi float64, bins int, minDensity float64) ([]float64, error) {
	fine := UniformEdges(lo, hi, bins*AdaptiveRefine)
	h, err := Compute1D("", values, fine)
	if err != nil {
		return nil, err
	}
	return AdaptiveEdgesFromCounts(fine, h.Counts, bins, minDensity)
}

// Rebin2D merges a fine 2D histogram onto coarser per-axis edges. Every
// coarse edge must coincide with a fine edge (as produced by
// AdaptiveEdgesFromCounts applied to the fine histogram's marginals);
// otherwise an error is returned.
func Rebin2D(fine *Hist2D, xEdges, yEdges []float64) (*Hist2D, error) {
	xMap, err := edgeMapping(fine.XEdges, xEdges)
	if err != nil {
		return nil, fmt.Errorf("histogram: x rebin: %w", err)
	}
	yMap, err := edgeMapping(fine.YEdges, yEdges)
	if err != nil {
		return nil, fmt.Errorf("histogram: y rebin: %w", err)
	}
	out := &Hist2D{
		XVar: fine.XVar, YVar: fine.YVar,
		XEdges: xEdges, YEdges: yEdges,
		Counts: make([]uint64, (len(xEdges)-1)*(len(yEdges)-1)),
	}
	nxOut := len(xEdges) - 1
	nxFine := fine.XBins()
	for iy := 0; iy < fine.YBins(); iy++ {
		oy := yMap[iy]
		for ix := 0; ix < nxFine; ix++ {
			c := fine.Counts[iy*nxFine+ix]
			if c != 0 {
				out.Counts[oy*nxOut+xMap[ix]] += c
			}
		}
	}
	return out, nil
}

// edgeMapping maps each fine bin index to the coarse bin containing it.
func edgeMapping(fine, coarse []float64) ([]int, error) {
	if len(coarse) < 2 {
		return nil, fmt.Errorf("need at least 2 coarse edges")
	}
	if fine[0] != coarse[0] || fine[len(fine)-1] != coarse[len(coarse)-1] {
		return nil, fmt.Errorf("coarse range [%g,%g] != fine range [%g,%g]",
			coarse[0], coarse[len(coarse)-1], fine[0], fine[len(fine)-1])
	}
	m := make([]int, len(fine)-1)
	ci := 0
	for fi := 0; fi < len(fine)-1; fi++ {
		for ci < len(coarse)-2 && fine[fi] >= coarse[ci+1] {
			ci++
		}
		if fine[fi] < coarse[ci] || fine[fi+1] > coarse[ci+1]+1e-12*abs(coarse[ci+1]) {
			if fine[fi+1] > coarse[ci+1] && !closeEnough(fine[fi+1], coarse[ci+1]) {
				return nil, fmt.Errorf("fine bin [%g,%g] straddles coarse edge %g",
					fine[fi], fine[fi+1], coarse[ci+1])
			}
		}
		m[fi] = ci
	}
	return m, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func closeEnough(a, b float64) bool {
	d := abs(a - b)
	s := abs(a) + abs(b)
	return d <= 1e-9*s || d == 0
}
