package histogram

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV writes the 1D histogram as CSV rows (lo, hi, count).
func (h *Hist1D) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{h.Var + "_lo", h.Var + "_hi", "count"}); err != nil {
		return fmt.Errorf("histogram: write csv: %w", err)
	}
	for i, c := range h.Counts {
		rec := []string{
			formatFloat(h.Edges[i]),
			formatFloat(h.Edges[i+1]),
			strconv.FormatUint(c, 10),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("histogram: write csv: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSV writes the 2D histogram as CSV rows
// (xlo, xhi, ylo, yhi, count), emitting only non-empty bins.
func (h *Hist2D) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{
		h.XVar + "_lo", h.XVar + "_hi",
		h.YVar + "_lo", h.YVar + "_hi",
		"count",
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("histogram: write csv: %w", err)
	}
	var werr error
	h.NonEmpty(func(ix, iy int, count uint64) {
		if werr != nil {
			return
		}
		rec := []string{
			formatFloat(h.XEdges[ix]),
			formatFloat(h.XEdges[ix+1]),
			formatFloat(h.YEdges[iy]),
			formatFloat(h.YEdges[iy+1]),
			strconv.FormatUint(count, 10),
		}
		werr = cw.Write(rec)
	})
	if werr != nil {
		return fmt.Errorf("histogram: write csv: %w", werr)
	}
	cw.Flush()
	return cw.Error()
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
