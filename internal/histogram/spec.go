package histogram

import "math"

// Spec2D describes a requested 2D histogram: the variable pair, the bin
// counts, the binning strategy, and optional fixed ranges. Unset ranges
// (NaN) are derived from the data being binned, which is how the system
// supports smooth drill-down at arbitrary resolution.
type Spec2D struct {
	XVar, YVar   string
	XBins, YBins int
	Binning      Binning
	XLo, XHi     float64 // NaN when unset
	YLo, YHi     float64 // NaN when unset
	MinDensity   float64 // optional adaptive density floor (records/width)
}

// NewSpec2D returns a uniform spec with unset ranges.
func NewSpec2D(xvar, yvar string, xbins, ybins int) Spec2D {
	return Spec2D{
		XVar: xvar, YVar: yvar,
		XBins: xbins, YBins: ybins,
		XLo: math.NaN(), XHi: math.NaN(),
		YLo: math.NaN(), YHi: math.NaN(),
	}
}

// WithBinning returns a copy of the spec with the given binning strategy.
func (s Spec2D) WithBinning(b Binning) Spec2D {
	s.Binning = b
	return s
}

// WithXRange returns a copy of the spec with a fixed X range.
func (s Spec2D) WithXRange(lo, hi float64) Spec2D {
	s.XLo, s.XHi = lo, hi
	return s
}

// WithYRange returns a copy of the spec with a fixed Y range.
func (s Spec2D) WithYRange(lo, hi float64) Spec2D {
	s.YLo, s.YHi = lo, hi
	return s
}

// HasXRange reports whether the spec fixes the X range.
func (s Spec2D) HasXRange() bool { return !math.IsNaN(s.XLo) && !math.IsNaN(s.XHi) }

// HasYRange reports whether the spec fixes the Y range.
func (s Spec2D) HasYRange() bool { return !math.IsNaN(s.YLo) && !math.IsNaN(s.YHi) }

// Spec1D describes a requested 1D histogram.
type Spec1D struct {
	Var        string
	Bins       int
	Binning    Binning
	Lo, Hi     float64 // NaN when unset
	MinDensity float64
}

// NewSpec1D returns a uniform 1D spec with unset range.
func NewSpec1D(v string, bins int) Spec1D {
	return Spec1D{Var: v, Bins: bins, Lo: math.NaN(), Hi: math.NaN()}
}

// HasRange reports whether the spec fixes the value range.
func (s Spec1D) HasRange() bool { return !math.IsNaN(s.Lo) && !math.IsNaN(s.Hi) }
