// Package histogram provides the 1D and 2D histogram value types used
// throughout the system, together with uniform (equal-width) and adaptive
// (equal-weight) bin boundary computation.
//
// Adaptive boundaries are derived the way the paper describes FastBit
// doing it: a finer-resolution uniform histogram is computed first and its
// bins are merged until each merged bin holds approximately the same
// number of records (Section V-A1).
package histogram

import (
	"context"
	"fmt"
	"math"
	"sort"
)

// checkpointRows is the cancellation checkpoint interval of the binning
// loops: ctx is tested once every checkpointRows values, keeping the
// per-value overhead to a mask-and-compare.
const checkpointRows = 64 * 1024

// Binning selects between the two bin-boundary strategies compared in the
// paper (Section III-A3).
type Binning int

const (
	// Uniform bins have equal width; well suited to high-resolution views.
	Uniform Binning = iota
	// Adaptive bins hold approximately equal record counts; well suited to
	// low level-of-detail views.
	Adaptive
)

func (b Binning) String() string {
	switch b {
	case Uniform:
		return "uniform"
	case Adaptive:
		return "adaptive"
	default:
		return fmt.Sprintf("Binning(%d)", int(b))
	}
}

// AdaptiveRefine is the oversampling factor used when deriving adaptive
// boundaries from a fine uniform histogram.
const AdaptiveRefine = 8

// UniformEdges returns n+1 equally spaced edges spanning [lo, hi]. When
// lo == hi the range is widened by a tiny amount so every bin has positive
// width.
func UniformEdges(lo, hi float64, n int) []float64 {
	if n < 1 {
		n = 1
	}
	if hi <= lo {
		w := math.Abs(lo) * 1e-9
		if w == 0 {
			w = 1e-9
		}
		hi = lo + w
	}
	// Guard against ranges too narrow to split into n representable
	// steps at this magnitude: widen hi until each step moves the float.
	ulp := math.Nextafter(math.Max(math.Abs(lo), math.Abs(hi)), math.Inf(1)) -
		math.Max(math.Abs(lo), math.Abs(hi))
	if minSpan := 4 * float64(n) * ulp; hi-lo < minSpan {
		hi = lo + minSpan
	}
	edges := make([]float64, n+1)
	step := (hi - lo) / float64(n)
	for i := 0; i <= n; i++ {
		edges[i] = lo + float64(i)*step
	}
	edges[n] = hi // avoid accumulated rounding at the top edge
	// Final guard: nudge any residual non-increasing neighbours.
	for i := 1; i <= n; i++ {
		if edges[i] <= edges[i-1] {
			edges[i] = math.Nextafter(edges[i-1], math.Inf(1))
		}
	}
	if edges[n] < hi {
		edges[n] = hi
	}
	return edges
}

// Locator maps values to bin indices for a fixed set of edges. It detects
// uniform spacing and uses a direct formula in that case; otherwise it
// falls back to binary search. The final bin's upper edge is inclusive so
// the maximum value of a dataset lands in the last bin.
type Locator struct {
	edges   []float64
	lo, hi  float64
	inv     float64
	n       int
	uniform bool
}

// NewLocator builds a Locator for the given strictly increasing edges.
func NewLocator(edges []float64) (*Locator, error) {
	if len(edges) < 2 {
		return nil, fmt.Errorf("histogram: need at least 2 edges, got %d", len(edges))
	}
	for i := 1; i < len(edges); i++ {
		if !(edges[i] > edges[i-1]) {
			return nil, fmt.Errorf("histogram: edges not strictly increasing at %d", i)
		}
	}
	n := len(edges) - 1
	l := &Locator{edges: edges, lo: edges[0], hi: edges[n], n: n}
	step := (l.hi - l.lo) / float64(n)
	l.uniform = true
	for i := 1; i < n; i++ {
		if math.Abs(edges[i]-(l.lo+float64(i)*step)) > step*1e-9 {
			l.uniform = false
			break
		}
	}
	if l.uniform && step > 0 {
		l.inv = 1 / step
	}
	return l, nil
}

// Bins returns the number of bins.
func (l *Locator) Bins() int { return l.n }

// Edges returns the edge slice (not a copy; callers must not mutate).
func (l *Locator) Edges() []float64 { return l.edges }

// Bin returns the bin index for v, or -1 when v lies outside [lo, hi].
func (l *Locator) Bin(v float64) int {
	if v < l.lo || v > l.hi {
		return -1
	}
	if v == l.hi {
		return l.n - 1
	}
	if l.uniform {
		i := int((v - l.lo) * l.inv)
		// Guard against floating point rounding at edges.
		if i >= l.n {
			i = l.n - 1
		}
		for i > 0 && v < l.edges[i] {
			i--
		}
		for i < l.n-1 && v >= l.edges[i+1] {
			i++
		}
		return i
	}
	// sort.SearchFloat64s finds the first edge > v, minus one.
	i := sort.SearchFloat64s(l.edges, v)
	if i < len(l.edges) && l.edges[i] == v {
		return minInt(i, l.n-1)
	}
	return i - 1
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Hist1D is a one-dimensional histogram.
type Hist1D struct {
	Var    string    // variable name, e.g. "px"
	Edges  []float64 // len Bins+1, strictly increasing
	Counts []uint64  // len Bins
}

// Bins returns the number of bins.
func (h *Hist1D) Bins() int { return len(h.Counts) }

// Total returns the total record count across all bins.
func (h *Hist1D) Total() uint64 {
	var t uint64
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// MaxCount returns the largest single-bin count.
func (h *Hist1D) MaxCount() uint64 {
	var m uint64
	for _, c := range h.Counts {
		if c > m {
			m = c
		}
	}
	return m
}

// Width returns the width of bin i.
func (h *Hist1D) Width(i int) float64 { return h.Edges[i+1] - h.Edges[i] }

// Density returns count/width for bin i, the quantity the paper uses for
// brightness and draw ordering with adaptive bins.
func (h *Hist1D) Density(i int) float64 {
	w := h.Width(i)
	if w <= 0 {
		return 0
	}
	return float64(h.Counts[i]) / w
}

// Merge adds another histogram with identical edges into h.
func (h *Hist1D) Merge(o *Hist1D) error {
	if len(h.Edges) != len(o.Edges) {
		return fmt.Errorf("histogram: merge edge count mismatch %d vs %d", len(h.Edges), len(o.Edges))
	}
	for i := range h.Counts {
		h.Counts[i] += o.Counts[i]
	}
	return nil
}

// Compute1D builds a 1D histogram of values over the given edges. Values
// outside the edge range are ignored.
func Compute1D(name string, values []float64, edges []float64) (*Hist1D, error) {
	return Compute1DCtx(context.Background(), name, values, edges)
}

// Compute1DCtx is Compute1D with cooperative cancellation: the binning
// loop aborts with ctx.Err() within checkpointRows values of ctx being
// canceled.
func Compute1DCtx(ctx context.Context, name string, values []float64, edges []float64) (*Hist1D, error) {
	loc, err := NewLocator(edges)
	if err != nil {
		return nil, err
	}
	h := &Hist1D{Var: name, Edges: edges, Counts: make([]uint64, loc.Bins())}
	for row, v := range values {
		if row&(checkpointRows-1) == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		if i := loc.Bin(v); i >= 0 {
			h.Counts[i]++
		}
	}
	return h, nil
}

// Hist2D is a two-dimensional histogram over an (X, Y) variable pair.
// Counts are stored row-major: Counts[iy*XBins + ix].
type Hist2D struct {
	XVar, YVar     string
	XEdges, YEdges []float64
	Counts         []uint64
}

// XBins returns the number of bins along X.
func (h *Hist2D) XBins() int { return len(h.XEdges) - 1 }

// YBins returns the number of bins along Y.
func (h *Hist2D) YBins() int { return len(h.YEdges) - 1 }

// At returns the count in bin (ix, iy).
func (h *Hist2D) At(ix, iy int) uint64 { return h.Counts[iy*h.XBins()+ix] }

// Total returns the total record count across all bins.
func (h *Hist2D) Total() uint64 {
	var t uint64
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// MaxCount returns the largest single-bin count.
func (h *Hist2D) MaxCount() uint64 {
	var m uint64
	for _, c := range h.Counts {
		if c > m {
			m = c
		}
	}
	return m
}

// Area returns the area of bin (ix, iy).
func (h *Hist2D) Area(ix, iy int) float64 {
	return (h.XEdges[ix+1] - h.XEdges[ix]) * (h.YEdges[iy+1] - h.YEdges[iy])
}

// Density returns the record density h(i,j)/a(i,j) of bin (ix, iy), the
// quantity the paper uses to order and shade adaptively binned plots.
func (h *Hist2D) Density(ix, iy int) float64 {
	a := h.Area(ix, iy)
	if a <= 0 {
		return 0
	}
	return float64(h.At(ix, iy)) / a
}

// MaxDensity returns the largest bin density.
func (h *Hist2D) MaxDensity() float64 {
	var m float64
	for iy := 0; iy < h.YBins(); iy++ {
		for ix := 0; ix < h.XBins(); ix++ {
			if d := h.Density(ix, iy); d > m {
				m = d
			}
		}
	}
	return m
}

// NonEmpty calls fn for every bin with a nonzero count.
func (h *Hist2D) NonEmpty(fn func(ix, iy int, count uint64)) {
	nx := h.XBins()
	for iy := 0; iy < h.YBins(); iy++ {
		row := h.Counts[iy*nx : (iy+1)*nx]
		for ix, c := range row {
			if c != 0 {
				fn(ix, iy, c)
			}
		}
	}
}

// Merge adds another histogram with identical edges into h.
func (h *Hist2D) Merge(o *Hist2D) error {
	if len(h.XEdges) != len(o.XEdges) || len(h.YEdges) != len(o.YEdges) {
		return fmt.Errorf("histogram: merge shape mismatch (%d,%d) vs (%d,%d)",
			len(h.XEdges), len(h.YEdges), len(o.XEdges), len(o.YEdges))
	}
	for i := range h.Counts {
		h.Counts[i] += o.Counts[i]
	}
	return nil
}

// MarginalX sums the 2D histogram along Y, yielding the X marginal.
func (h *Hist2D) MarginalX() *Hist1D {
	m := &Hist1D{Var: h.XVar, Edges: h.XEdges, Counts: make([]uint64, h.XBins())}
	nx := h.XBins()
	for iy := 0; iy < h.YBins(); iy++ {
		for ix := 0; ix < nx; ix++ {
			m.Counts[ix] += h.Counts[iy*nx+ix]
		}
	}
	return m
}

// MarginalY sums the 2D histogram along X, yielding the Y marginal.
func (h *Hist2D) MarginalY() *Hist1D {
	m := &Hist1D{Var: h.YVar, Edges: h.YEdges, Counts: make([]uint64, h.YBins())}
	nx := h.XBins()
	for iy := 0; iy < h.YBins(); iy++ {
		for ix := 0; ix < nx; ix++ {
			m.Counts[iy] += h.Counts[iy*nx+ix]
		}
	}
	return m
}

// Compute2D builds a 2D histogram of paired (xs, ys) values over the given
// edges. Pairs with either coordinate outside its range are ignored.
func Compute2D(xvar, yvar string, xs, ys []float64, xedges, yedges []float64) (*Hist2D, error) {
	return Compute2DCtx(context.Background(), xvar, yvar, xs, ys, xedges, yedges)
}

// Compute2DCtx is Compute2D with cooperative cancellation at
// checkpointRows intervals.
func Compute2DCtx(ctx context.Context, xvar, yvar string, xs, ys []float64, xedges, yedges []float64) (*Hist2D, error) {
	if len(xs) != len(ys) {
		return nil, fmt.Errorf("histogram: length mismatch %d vs %d", len(xs), len(ys))
	}
	lx, err := NewLocator(xedges)
	if err != nil {
		return nil, fmt.Errorf("histogram: x edges: %w", err)
	}
	ly, err := NewLocator(yedges)
	if err != nil {
		return nil, fmt.Errorf("histogram: y edges: %w", err)
	}
	h := &Hist2D{
		XVar: xvar, YVar: yvar,
		XEdges: xedges, YEdges: yedges,
		Counts: make([]uint64, lx.Bins()*ly.Bins()),
	}
	nx := lx.Bins()
	for i := range xs {
		if i&(checkpointRows-1) == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		ix := lx.Bin(xs[i])
		if ix < 0 {
			continue
		}
		iy := ly.Bin(ys[i])
		if iy < 0 {
			continue
		}
		h.Counts[iy*nx+ix]++
	}
	return h, nil
}
