package histogram

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestUniformEdges(t *testing.T) {
	e := UniformEdges(0, 10, 5)
	want := []float64{0, 2, 4, 6, 8, 10}
	if len(e) != len(want) {
		t.Fatalf("len = %d, want %d", len(e), len(want))
	}
	for i := range want {
		if math.Abs(e[i]-want[i]) > 1e-12 {
			t.Fatalf("edge[%d] = %g, want %g", i, e[i], want[i])
		}
	}
}

func TestUniformEdgesDegenerate(t *testing.T) {
	e := UniformEdges(5, 5, 4)
	if len(e) != 5 {
		t.Fatalf("len = %d", len(e))
	}
	for i := 1; i < len(e); i++ {
		if !(e[i] > e[i-1]) {
			t.Fatalf("degenerate range produced non-increasing edges %v", e)
		}
	}
	if e := UniformEdges(0, 1, 0); len(e) != 2 {
		t.Fatalf("n=0 edges: %v", e)
	}
}

func TestLocatorUniform(t *testing.T) {
	loc, err := NewLocator(UniformEdges(0, 10, 10))
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		v    float64
		want int
	}{
		{-0.001, -1}, {0, 0}, {0.5, 0}, {1, 1}, {9.999, 9},
		{10, 9}, {10.001, -1}, {5, 5},
	}
	for _, c := range cases {
		if got := loc.Bin(c.v); got != c.want {
			t.Errorf("Bin(%g) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestLocatorNonUniform(t *testing.T) {
	loc, err := NewLocator([]float64{0, 1, 10, 100})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		v    float64
		want int
	}{
		{0, 0}, {0.9, 0}, {1, 1}, {9.99, 1}, {10, 2}, {100, 2}, {101, -1}, {-1, -1},
	}
	for _, c := range cases {
		if got := loc.Bin(c.v); got != c.want {
			t.Errorf("Bin(%g) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestLocatorRejectsBadEdges(t *testing.T) {
	if _, err := NewLocator([]float64{1}); err == nil {
		t.Fatal("single edge accepted")
	}
	if _, err := NewLocator([]float64{1, 1}); err == nil {
		t.Fatal("equal edges accepted")
	}
	if _, err := NewLocator([]float64{2, 1}); err == nil {
		t.Fatal("descending edges accepted")
	}
}

// Property: the uniform fast path and binary search agree.
func TestLocatorFastPathMatchesSearch(t *testing.T) {
	f := func(raw []float64) bool {
		loc, err := NewLocator(UniformEdges(-3, 7, 64))
		if err != nil {
			return false
		}
		general, err := NewLocator(append([]float64{-3 - 1e-15}, UniformEdges(-3, 7, 64)[1:]...))
		if err != nil {
			return false
		}
		_ = general
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			got := loc.Bin(v)
			want := slowBin(loc.Edges(), v)
			if got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func slowBin(edges []float64, v float64) int {
	n := len(edges) - 1
	if v < edges[0] || v > edges[n] {
		return -1
	}
	if v == edges[n] {
		return n - 1
	}
	for i := 0; i < n; i++ {
		if v >= edges[i] && v < edges[i+1] {
			return i
		}
	}
	return -1
}

func TestCompute1D(t *testing.T) {
	vals := []float64{0, 0.5, 1.5, 2.5, 9.99, 10, -5, 11}
	h, err := Compute1D("x", vals, UniformEdges(0, 10, 10))
	if err != nil {
		t.Fatal(err)
	}
	if h.Total() != 6 { // -5 and 11 fall outside
		t.Fatalf("Total = %d, want 6", h.Total())
	}
	if h.Counts[0] != 2 || h.Counts[1] != 1 || h.Counts[2] != 1 || h.Counts[9] != 2 {
		t.Fatalf("Counts = %v", h.Counts)
	}
	if h.MaxCount() != 2 {
		t.Fatalf("MaxCount = %d", h.MaxCount())
	}
}

func TestCompute2D(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 3}
	ys := []float64{0, 0, 1, 1, 5}
	h, err := Compute2D("x", "y", xs, ys, UniformEdges(0, 4, 4), UniformEdges(0, 2, 2))
	if err != nil {
		t.Fatal(err)
	}
	if h.Total() != 4 { // (3,5) is outside in y
		t.Fatalf("Total = %d, want 4", h.Total())
	}
	if h.At(0, 0) != 1 || h.At(1, 0) != 1 || h.At(2, 1) != 1 || h.At(3, 1) != 1 {
		t.Fatalf("Counts = %v", h.Counts)
	}
	if _, err := Compute2D("x", "y", xs, ys[:2], h.XEdges, h.YEdges); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

// Property: total count of a histogram equals the number of in-range values.
func TestHistogramConservesMassProperty(t *testing.T) {
	f := func(raw []float64) bool {
		edges := UniformEdges(-1, 1, 17)
		var inRange uint64
		vals := make([]float64, 0, len(raw))
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			v = math.Mod(v, 3) // keep some values in and some out of range
			vals = append(vals, v)
			if v >= -1 && v <= 1 {
				inRange++
			}
		}
		h, err := Compute1D("v", vals, edges)
		if err != nil {
			return false
		}
		return h.Total() == inRange
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMerge(t *testing.T) {
	e := UniformEdges(0, 1, 4)
	a, _ := Compute1D("v", []float64{0.1, 0.6}, e)
	b, _ := Compute1D("v", []float64{0.6, 0.9}, e)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Total() != 4 || a.Counts[2] != 2 {
		t.Fatalf("merged = %v", a.Counts)
	}
	c, _ := Compute1D("v", []float64{0.5}, UniformEdges(0, 1, 5))
	if err := a.Merge(c); err == nil {
		t.Fatal("shape mismatch accepted")
	}
}

func TestMerge2D(t *testing.T) {
	xe, ye := UniformEdges(0, 1, 2), UniformEdges(0, 1, 2)
	a, _ := Compute2D("x", "y", []float64{0.1}, []float64{0.1}, xe, ye)
	b, _ := Compute2D("x", "y", []float64{0.9}, []float64{0.9}, xe, ye)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Total() != 2 || a.At(0, 0) != 1 || a.At(1, 1) != 1 {
		t.Fatalf("merged 2D = %v", a.Counts)
	}
	c, _ := Compute2D("x", "y", nil, nil, UniformEdges(0, 1, 3), ye)
	if err := a.Merge(c); err == nil {
		t.Fatal("2D shape mismatch accepted")
	}
}

func TestMarginals(t *testing.T) {
	xs := []float64{0.1, 0.1, 0.9}
	ys := []float64{0.1, 0.9, 0.9}
	h, _ := Compute2D("x", "y", xs, ys, UniformEdges(0, 1, 2), UniformEdges(0, 1, 2))
	mx := h.MarginalX()
	my := h.MarginalY()
	if mx.Counts[0] != 2 || mx.Counts[1] != 1 {
		t.Fatalf("MarginalX = %v", mx.Counts)
	}
	if my.Counts[0] != 1 || my.Counts[1] != 2 {
		t.Fatalf("MarginalY = %v", my.Counts)
	}
	if mx.Total() != h.Total() || my.Total() != h.Total() {
		t.Fatal("marginals lose mass")
	}
}

func TestDensityAndArea(t *testing.T) {
	h := &Hist2D{
		XVar: "x", YVar: "y",
		XEdges: []float64{0, 1, 3},
		YEdges: []float64{0, 2},
		Counts: []uint64{4, 4},
	}
	if h.Area(0, 0) != 2 || h.Area(1, 0) != 4 {
		t.Fatalf("Area wrong: %g %g", h.Area(0, 0), h.Area(1, 0))
	}
	if h.Density(0, 0) != 2 || h.Density(1, 0) != 1 {
		t.Fatalf("Density wrong: %g %g", h.Density(0, 0), h.Density(1, 0))
	}
	if h.MaxDensity() != 2 {
		t.Fatalf("MaxDensity = %g", h.MaxDensity())
	}
}

func TestNonEmpty(t *testing.T) {
	h, _ := Compute2D("x", "y", []float64{0.1, 0.9}, []float64{0.1, 0.9},
		UniformEdges(0, 1, 4), UniformEdges(0, 1, 4))
	var n int
	h.NonEmpty(func(ix, iy int, c uint64) {
		n++
		if c == 0 {
			t.Fatal("NonEmpty visited empty bin")
		}
	})
	if n != 2 {
		t.Fatalf("NonEmpty visited %d bins, want 2", n)
	}
}

func TestAdaptiveEdgesEqualWeight(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	// Heavily skewed data: exponential-ish.
	vals := make([]float64, 100000)
	for i := range vals {
		vals[i] = rng.ExpFloat64()
	}
	lo, hi := 0.0, 10.0
	edges, err := AdaptiveEdges(vals, lo, hi, 16, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(edges) != 17 {
		t.Fatalf("got %d edges, want 17", len(edges))
	}
	h, err := Compute1D("v", vals, edges)
	if err != nil {
		t.Fatal(err)
	}
	// Each adaptive bin should hold roughly total/16; allow generous slack
	// because boundaries snap to the fine grid.
	target := float64(h.Total()) / 16
	for i, c := range h.Counts {
		if float64(c) > 3*target {
			t.Errorf("bin %d holds %d records, target %.0f — too unbalanced", i, c, target)
		}
	}
	// Adaptive bins must be narrower where data is dense (near zero).
	if edges[1]-edges[0] >= edges[16]-edges[15] {
		t.Errorf("adaptive edges not denser near the mode: first width %g, last width %g",
			edges[1]-edges[0], edges[16]-edges[15])
	}
}

func TestAdaptiveEdgesUniformDataStaysUniformish(t *testing.T) {
	vals := make([]float64, 10000)
	rng := rand.New(rand.NewSource(12))
	for i := range vals {
		vals[i] = rng.Float64()
	}
	edges, err := AdaptiveEdges(vals, 0, 1, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	h, _ := Compute1D("v", vals, edges)
	target := float64(h.Total()) / 8
	for i, c := range h.Counts {
		if float64(c) < 0.5*target || float64(c) > 1.6*target {
			t.Errorf("uniform data: bin %d count %d far from target %.0f", i, c, target)
		}
	}
}

func TestAdaptiveEdgesFromCountsValidation(t *testing.T) {
	if _, err := AdaptiveEdgesFromCounts([]float64{0, 1}, []uint64{1, 2}, 2, 0); err == nil {
		t.Fatal("mismatched edges/counts accepted")
	}
	if _, err := AdaptiveEdgesFromCounts([]float64{0, 1, 2}, []uint64{1, 2}, 0, 0); err == nil {
		t.Fatal("zero bins accepted")
	}
	// Requesting more bins than available returns the fine edges.
	e, err := AdaptiveEdgesFromCounts([]float64{0, 1, 2}, []uint64{1, 2}, 5, 0)
	if err != nil || len(e) != 3 {
		t.Fatalf("over-request: edges=%v err=%v", e, err)
	}
}

func TestAdaptiveEdgesCoverFullRangeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		vals := make([]float64, 1000)
		for i := range vals {
			vals[i] = rng.NormFloat64()
		}
		edges, err := AdaptiveEdges(vals, -4, 4, 10, 0)
		if err != nil {
			return false
		}
		if edges[0] != -4 || edges[len(edges)-1] != 4 {
			return false
		}
		for i := 1; i < len(edges); i++ {
			if !(edges[i] > edges[i-1]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestAdaptiveMinDensity(t *testing.T) {
	// A sparse uniform tail plus a dense spike: with a density floor the
	// sparse region should not be chopped into many under-dense bins.
	vals := make([]float64, 0, 11000)
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 10000; i++ {
		vals = append(vals, rng.Float64()*0.1) // dense spike in [0, 0.1]
	}
	for i := 0; i < 1000; i++ {
		vals = append(vals, 0.1+rng.Float64()*0.9) // sparse tail
	}
	noFloor, err := AdaptiveEdges(vals, 0, 1, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	floored, err := AdaptiveEdges(vals, 0, 1, 8, 500)
	if err != nil {
		t.Fatal(err)
	}
	if len(noFloor) != len(floored) {
		// Both must produce 9 edges (8 bins) or fewer only via degenerate merging.
		t.Logf("noFloor=%v floored=%v", noFloor, floored)
	}
	hf, _ := Compute1D("v", vals, floored)
	for i := range hf.Counts {
		w := hf.Width(i)
		if w > 0 && hf.Density(i) < 1 && hf.Counts[i] > 0 {
			t.Errorf("floored bin %d density %.2f below 1", i, hf.Density(i))
		}
	}
}

func TestRebin2D(t *testing.T) {
	// Fine 4x4 histogram rebinned to 2x2 with snapped coarse edges.
	xs := []float64{0.1, 0.3, 0.6, 0.9}
	ys := []float64{0.1, 0.4, 0.6, 0.9}
	fine, err := Compute2D("x", "y", xs, ys, UniformEdges(0, 1, 4), UniformEdges(0, 1, 4))
	if err != nil {
		t.Fatal(err)
	}
	coarse, err := Rebin2D(fine, []float64{0, 0.5, 1}, []float64{0, 0.5, 1})
	if err != nil {
		t.Fatal(err)
	}
	if coarse.Total() != fine.Total() {
		t.Fatalf("rebin lost mass: %d vs %d", coarse.Total(), fine.Total())
	}
	if coarse.At(0, 0) != 2 || coarse.At(1, 1) != 2 {
		t.Fatalf("coarse counts = %v", coarse.Counts)
	}
	// Mismatched range must fail.
	if _, err := Rebin2D(fine, []float64{0, 0.5, 2}, []float64{0, 0.5, 1}); err == nil {
		t.Fatal("range mismatch accepted")
	}
	// Straddling edge must fail.
	if _, err := Rebin2D(fine, []float64{0, 0.3, 1}, []float64{0, 0.5, 1}); err == nil {
		t.Fatal("straddling coarse edge accepted")
	}
}

func TestBinningString(t *testing.T) {
	if Uniform.String() != "uniform" || Adaptive.String() != "adaptive" {
		t.Fatal("Binning.String wrong")
	}
	if Binning(42).String() == "" {
		t.Fatal("unknown Binning empty")
	}
}

func TestHist1DWriteCSV(t *testing.T) {
	h, err := Compute1D("px", []float64{0.1, 0.6, 0.7}, UniformEdges(0, 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := h.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv lines = %d:\n%s", len(lines), sb.String())
	}
	if lines[0] != "px_lo,px_hi,count" {
		t.Fatalf("header = %q", lines[0])
	}
	if lines[1] != "0,0.5,1" || lines[2] != "0.5,1,2" {
		t.Fatalf("rows = %v", lines[1:])
	}
}

func TestHist2DWriteCSV(t *testing.T) {
	h, err := Compute2D("x", "y", []float64{0.1, 0.9}, []float64{0.1, 0.9},
		UniformEdges(0, 1, 2), UniformEdges(0, 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := h.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	// Header + 2 non-empty bins only.
	if len(lines) != 3 {
		t.Fatalf("csv lines = %d:\n%s", len(lines), sb.String())
	}
	if !strings.HasPrefix(lines[0], "x_lo,x_hi,y_lo,y_hi,count") {
		t.Fatalf("header = %q", lines[0])
	}
}
