package scatter

import (
	"image/color"
	"math/rand"
	"testing"

	"repro/internal/render"
)

func TestNewValidation(t *testing.T) {
	if _, err := New("x", "y", 0, 0, 0, 1, DefaultOptions()); err == nil {
		t.Fatal("empty x range accepted")
	}
	if _, err := New("x", "y", 0, 1, 1, 1, DefaultOptions()); err == nil {
		t.Fatal("empty y range accepted")
	}
	opt := DefaultOptions()
	opt.Width = 4
	if _, err := New("x", "y", 0, 1, 0, 1, opt); err == nil {
		t.Fatal("tiny canvas accepted")
	}
	opt = DefaultOptions()
	opt.Colormap = nil
	if _, err := New("x", "y", 0, 1, 0, 1, opt); err != nil {
		t.Fatal("nil colormap should default, not fail")
	}
}

func TestScatterRender(t *testing.T) {
	p, err := New("x", "px", 0, 1, 0, 1, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	n := 2000
	cx := make([]float64, n)
	cy := make([]float64, n)
	for i := range cx {
		cx[i], cy[i] = rng.Float64(), rng.Float64()*0.3
	}
	if err := p.SetContext(cx, cy); err != nil {
		t.Fatal(err)
	}
	// Selection: a high-y cluster coloured by value.
	sx := []float64{0.2, 0.5, 0.8}
	sy := []float64{0.9, 0.9, 0.9}
	sc := []float64{0, 0.5, 1}
	if err := p.SetSelection("px", sx, sy, sc, 0, 0); err != nil {
		t.Fatal(err)
	}
	c, err := p.Render()
	if err != nil {
		t.Fatal(err)
	}
	// The low-value marker should be blue-ish, the high-value red-ish.
	blue, red := 0, 0
	w, h := c.Size()
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			px := c.At(x, y)
			if px.B > 200 && px.R < 60 && px.G < 120 {
				blue++
			}
			if px.R > 200 && px.B < 60 && px.G < 120 {
				red++
			}
		}
	}
	if blue == 0 || red == 0 {
		t.Fatalf("colormap endpoints missing: blue=%d red=%d", blue, red)
	}
	// Context grayish pixels present in the lower band.
	var gray int
	for y := h / 2; y < h; y++ {
		for x := 0; x < w; x++ {
			px := c.At(x, y)
			if px.R > 40 && px.R == px.G && px.G >= px.B-12 && px.B > 40 {
				gray++
			}
		}
	}
	if gray < 100 {
		t.Fatalf("context particles invisible: %d gray pixels", gray)
	}
}

func TestScatterValidation(t *testing.T) {
	p, _ := New("x", "y", 0, 1, 0, 1, DefaultOptions())
	if err := p.SetContext([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("ragged context accepted")
	}
	if err := p.SetSelection("c", []float64{1}, []float64{1}, []float64{1, 2}, 0, 0); err == nil {
		t.Fatal("ragged selection accepted")
	}
	// Constant colour values still render.
	if err := p.SetSelection("c", []float64{0.5}, []float64{0.5}, []float64{3}, 0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Render(); err != nil {
		t.Fatal(err)
	}
}

func TestScatterPointSizeAndNoLabels(t *testing.T) {
	opt := DefaultOptions()
	opt.PointSize = 0
	opt.DrawLabels = false
	p, err := New("x", "y", 0, 1, 0, 1, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.SetSelection("c", []float64{0.5}, []float64{0.5}, []float64{1}, 0, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Render(); err != nil {
		t.Fatal(err)
	}
}

func TestTracePlot(t *testing.T) {
	tp, err := NewTracePlot("x", "y", 0, 10, 0, 1, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := tp.Add(Trace{X: []float64{1, 2}, Y: []float64{0.5}, C: []float64{1, 2}}); err == nil {
		t.Fatal("ragged trace accepted")
	}
	if err := tp.Add(Trace{}); err == nil {
		t.Fatal("empty trace accepted")
	}
	for k := 0; k < 5; k++ {
		xs := make([]float64, 8)
		ys := make([]float64, 8)
		cs := make([]float64, 8)
		for i := range xs {
			xs[i] = float64(i) + float64(k)*0.1
			ys[i] = 0.2 + 0.1*float64(k)
			cs[i] = float64(i * k)
		}
		if err := tp.Add(Trace{X: xs, Y: ys, C: cs}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tp.SetContext([]float64{5}, []float64{0.9}); err != nil {
		t.Fatal(err)
	}
	c, err := tp.Render()
	if err != nil {
		t.Fatal(err)
	}
	var lit int
	w, h := c.Size()
	bg := DefaultOptions().Background
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if c.At(x, y) != bg {
				lit++
			}
		}
	}
	if lit < 200 {
		t.Fatalf("trace plot lit only %d pixels", lit)
	}
}

func TestTracePlotConstantColor(t *testing.T) {
	tp, err := NewTracePlot("x", "y", 0, 1, 0, 1, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := tp.Add(Trace{X: []float64{0.1, 0.9}, Y: []float64{0.5, 0.5}, C: []float64{7, 7}}); err != nil {
		t.Fatal(err)
	}
	if _, err := tp.Render(); err != nil {
		t.Fatal(err)
	}
}

func TestColormaps(t *testing.T) {
	for name, cm := range map[string]render.Colormap{
		"rainbow": render.Rainbow, "gray": render.Grayscale, "heat": render.Heat,
	} {
		lo, hi := cm(0), cm(1)
		if lo == hi {
			t.Errorf("%s: endpoints identical", name)
		}
		// Out-of-range and NaN clamp rather than panic.
		cm(-1)
		cm(2)
	}
	if render.Rainbow(0).B != 255 || render.Rainbow(1).R != 255 {
		t.Error("rainbow endpoints wrong")
	}
	n := render.Normalize(10, 20)
	if n(10) != 0 || n(20) != 1 || n(15) != 0.5 {
		t.Error("Normalize wrong")
	}
	if c := render.Normalize(5, 5); c(5) != 0.5 {
		t.Error("degenerate Normalize should return midpoint")
	}
	var mid color.RGBA = render.Grayscale(0.5)
	if mid.R != mid.G || mid.G != mid.B {
		t.Error("grayscale not gray")
	}
}
