// Package scatter renders the pseudocolor particle plots the paper pairs
// with its parallel coordinates views (Figs. 5b/5d, 6, 8b): particles in
// physical space, with non-selected particles drawn as a gray context and
// selected particles as colored markers, colour-mapped by a data variable
// (typically the momentum px). It also renders particle-trace plots over
// time (Fig. 7): one polyline per tracked particle through its positions
// at successive timesteps, coloured by momentum or identifier.
package scatter

import (
	"fmt"
	"image/color"
	"math"

	"repro/internal/render"
)

// Options controls plot geometry and styling.
type Options struct {
	Width, Height int
	Margin        int
	Background    color.RGBA
	AxisColor     color.RGBA
	LabelColor    color.RGBA
	ContextColor  color.RGBA
	Colormap      render.Colormap
	PointSize     int // marker half-extent in pixels; 0 = single pixel
	DrawLabels    bool
}

// DefaultOptions returns the standard styling.
func DefaultOptions() Options {
	return Options{
		Width:        900,
		Height:       500,
		Margin:       48,
		Background:   color.RGBA{10, 10, 14, 255},
		AxisColor:    color.RGBA{150, 150, 160, 255},
		LabelColor:   color.RGBA{210, 210, 220, 255},
		ContextColor: color.RGBA{90, 90, 100, 255},
		Colormap:     render.Rainbow,
		PointSize:    1,
		DrawLabels:   true,
	}
}

// Plot is a pseudocolor scatter plot under construction.
type Plot struct {
	opt                    Options
	xVar, yVar             string
	xMin, xMax, yMin, yMax float64

	ctxX, ctxY []float64

	selX, selY, selC []float64
	cMin, cMax       float64
	cVar             string
	hasSel           bool
}

// New creates a plot over fixed value ranges.
func New(xVar, yVar string, xMin, xMax, yMin, yMax float64, opt Options) (*Plot, error) {
	if !(xMax > xMin) || !(yMax > yMin) {
		return nil, fmt.Errorf("scatter: empty ranges x=[%g,%g] y=[%g,%g]", xMin, xMax, yMin, yMax)
	}
	if opt.Width < 32 || opt.Height < 32 {
		return nil, fmt.Errorf("scatter: canvas %dx%d too small", opt.Width, opt.Height)
	}
	if opt.Colormap == nil {
		opt.Colormap = render.Rainbow
	}
	return &Plot{
		opt: opt, xVar: xVar, yVar: yVar,
		xMin: xMin, xMax: xMax, yMin: yMin, yMax: yMax,
	}, nil
}

// SetContext adds the gray background particles.
func (p *Plot) SetContext(xs, ys []float64) error {
	if len(xs) != len(ys) {
		return fmt.Errorf("scatter: context length mismatch %d vs %d", len(xs), len(ys))
	}
	p.ctxX, p.ctxY = xs, ys
	return nil
}

// SetSelection adds the colored particles; colorVals drives the colormap
// and its range is derived from the values when cMin >= cMax.
func (p *Plot) SetSelection(cVar string, xs, ys, colorVals []float64, cMin, cMax float64) error {
	if len(xs) != len(ys) || len(xs) != len(colorVals) {
		return fmt.Errorf("scatter: selection length mismatch (%d, %d, %d)", len(xs), len(ys), len(colorVals))
	}
	if cMin >= cMax {
		cMin, cMax = math.Inf(1), math.Inf(-1)
		for _, v := range colorVals {
			if v < cMin {
				cMin = v
			}
			if v > cMax {
				cMax = v
			}
		}
		if cMin >= cMax {
			cMax = cMin + 1
		}
	}
	p.selX, p.selY, p.selC = xs, ys, colorVals
	p.cMin, p.cMax = cMin, cMax
	p.cVar = cVar
	p.hasSel = true
	return nil
}

func (p *Plot) px(v float64) float64 {
	t := (v - p.xMin) / (p.xMax - p.xMin)
	return float64(p.opt.Margin) + t*float64(p.opt.Width-2*p.opt.Margin)
}

func (p *Plot) py(v float64) float64 {
	t := (v - p.yMin) / (p.yMax - p.yMin)
	return float64(p.opt.Height-p.opt.Margin) - t*float64(p.opt.Height-2*p.opt.Margin)
}

func (p *Plot) inRange(x, y float64) bool {
	return x >= p.xMin && x <= p.xMax && y >= p.yMin && y <= p.yMax
}

// Render draws the plot.
func (p *Plot) Render() (*render.Canvas, error) {
	c, err := render.NewCanvas(p.opt.Width, p.opt.Height, p.opt.Background)
	if err != nil {
		return nil, err
	}
	// Context first.
	for i := range p.ctxX {
		if !p.inRange(p.ctxX[i], p.ctxY[i]) {
			continue
		}
		c.Blend(int(math.Round(p.px(p.ctxX[i]))), int(math.Round(p.py(p.ctxY[i]))), p.opt.ContextColor, 0.55)
	}
	// Selection markers on top.
	norm := render.Normalize(p.cMin, p.cMax)
	for i := range p.selX {
		if !p.inRange(p.selX[i], p.selY[i]) {
			continue
		}
		col := p.opt.Colormap(norm(p.selC[i]))
		p.marker(c, p.px(p.selX[i]), p.py(p.selY[i]), col)
	}
	p.drawFrame(c)
	return c, nil
}

func (p *Plot) marker(c *render.Canvas, x, y float64, col color.RGBA) {
	r := p.opt.PointSize
	xi, yi := int(math.Round(x)), int(math.Round(y))
	if r <= 0 {
		c.Blend(xi, yi, col, 1)
		return
	}
	for dy := -r; dy <= r; dy++ {
		for dx := -r; dx <= r; dx++ {
			if dx*dx+dy*dy <= r*r {
				c.Blend(xi+dx, yi+dy, col, 1)
			}
		}
	}
}

func (p *Plot) drawFrame(c *render.Canvas) {
	m := p.opt.Margin
	w, h := p.opt.Width, p.opt.Height
	c.HLine(m, w-m, h-m, p.opt.AxisColor, 1)
	c.VLine(m, m, h-m, p.opt.AxisColor, 1)
	if !p.opt.DrawLabels {
		return
	}
	c.TextCentered(w/2, h-m+10, p.xVar, p.opt.LabelColor)
	c.Text(4, m-10, p.yVar, p.opt.LabelColor)
	c.Text(m, h-m+22, fmtVal(p.xMin), p.opt.LabelColor)
	tw := render.TextWidth(fmtVal(p.xMax))
	c.Text(w-m-tw, h-m+22, fmtVal(p.xMax), p.opt.LabelColor)
	c.Text(4, h-m-4, fmtVal(p.yMin), p.opt.LabelColor)
	c.Text(4, m+2, fmtVal(p.yMax), p.opt.LabelColor)
	if p.hasSel {
		p.drawColorbar(c)
	}
}

// drawColorbar renders the selection colour scale on the right edge.
func (p *Plot) drawColorbar(c *render.Canvas) {
	m := p.opt.Margin
	x0 := p.opt.Width - m + 12
	if x0+10 >= p.opt.Width {
		return
	}
	y0, y1 := m, p.opt.Height-m
	for y := y0; y <= y1; y++ {
		t := float64(y1-y) / float64(y1-y0)
		col := p.opt.Colormap(t)
		c.HLine(x0, x0+8, y, col, 1)
	}
	c.Text(x0-4, y0-12, p.cVar, p.opt.LabelColor)
}

func fmtVal(v float64) string {
	av := math.Abs(v)
	if av != 0 && (av >= 1e4 || av < 1e-2) {
		return fmt.Sprintf("%.2e", v)
	}
	return fmt.Sprintf("%.3g", v)
}

// Trace is one particle's polyline through (x, y) space with a per-vertex
// colour value.
type Trace struct {
	X, Y, C []float64
}

// TracePlot renders particle traces over time (paper Fig. 7): each trace
// is a polyline through the particle's positions, coloured per segment by
// the colour value (momentum, or identifier for Fig. 7's id colouring).
type TracePlot struct {
	plot   *Plot
	traces []Trace
}

// NewTracePlot creates a trace plot over fixed ranges.
func NewTracePlot(xVar, yVar string, xMin, xMax, yMin, yMax float64, opt Options) (*TracePlot, error) {
	p, err := New(xVar, yVar, xMin, xMax, yMin, yMax, opt)
	if err != nil {
		return nil, err
	}
	return &TracePlot{plot: p}, nil
}

// Add appends one trace; all slices must share a length ≥ 1.
func (tp *TracePlot) Add(tr Trace) error {
	if len(tr.X) == 0 || len(tr.X) != len(tr.Y) || len(tr.X) != len(tr.C) {
		return fmt.Errorf("scatter: ragged trace (%d, %d, %d)", len(tr.X), len(tr.Y), len(tr.C))
	}
	tp.traces = append(tp.traces, tr)
	return nil
}

// SetContext adds gray background particles behind the traces.
func (tp *TracePlot) SetContext(xs, ys []float64) error { return tp.plot.SetContext(xs, ys) }

// Render draws all traces.
func (tp *TracePlot) Render() (*render.Canvas, error) {
	// Colour range across all traces.
	cMin, cMax := math.Inf(1), math.Inf(-1)
	for _, tr := range tp.traces {
		for _, v := range tr.C {
			if v < cMin {
				cMin = v
			}
			if v > cMax {
				cMax = v
			}
		}
	}
	if cMin >= cMax {
		cMax = cMin + 1
	}
	c, err := render.NewCanvas(tp.plot.opt.Width, tp.plot.opt.Height, tp.plot.opt.Background)
	if err != nil {
		return nil, err
	}
	p := tp.plot
	for i := range p.ctxX {
		if !p.inRange(p.ctxX[i], p.ctxY[i]) {
			continue
		}
		c.Blend(int(math.Round(p.px(p.ctxX[i]))), int(math.Round(p.py(p.ctxY[i]))), p.opt.ContextColor, 0.5)
	}
	norm := render.Normalize(cMin, cMax)
	for _, tr := range tp.traces {
		for i := 1; i < len(tr.X); i++ {
			col := p.opt.Colormap(norm(tr.C[i]))
			c.Line(p.px(tr.X[i-1]), p.py(tr.Y[i-1]), p.px(tr.X[i]), p.py(tr.Y[i]), col, 0.9)
		}
		// Mark the endpoints so single-step traces stay visible.
		last := len(tr.X) - 1
		p.marker(c, p.px(tr.X[last]), p.py(tr.Y[last]), p.opt.Colormap(norm(tr.C[last])))
	}
	p.hasSel = true
	p.cVar = "trace"
	p.drawFrame(c)
	return c, nil
}
