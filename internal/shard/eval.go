// Package shard implements the executor half of the planner/executor
// split: evaluating plan fragments over a shard's row ranges of the shared
// dataset, serving them over the cluster RPC layer with a per-shard result
// cache, and a scatter client that fans fragments out to shard workers
// with replica failover and hedging.
//
// Every shard worker opens the same dataset directory (the paper's
// parallel-filesystem deployment), so the shard map assigns work rather
// than data: a fragment names a row range, and any worker could evaluate
// any fragment. Whole-step fragments are routed to a stable home shard so
// its cache absorbs repeats.
package shard

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/fastquery"
	"repro/internal/histogram"
	"repro/internal/plan"
	"repro/internal/query"
	"repro/internal/scan"
)

// Eval evaluates one fragment against one step. It is the executor's
// kernel and is deliberately a free function over *fastquery.Step so the
// serving layer can run the identical code in-process for the one-shard
// case.
func Eval(ctx context.Context, st *fastquery.Step, f plan.Fragment) (*plan.FragmentResult, error) {
	expr, err := parseQuery(f.Query)
	if err != nil {
		return nil, err
	}
	switch f.Op {
	case plan.FragWhole1D:
		h, err := st.Histogram1DCtx(ctx, expr, f.Spec1, f.Backend)
		if err != nil {
			return nil, err
		}
		return &plan.FragmentResult{Hist1: h}, nil

	case plan.FragWhole2D:
		h, err := st.Histogram2DCtx(ctx, expr, f.Spec2, f.Backend)
		if err != nil {
			return nil, err
		}
		return &plan.FragmentResult{Hist2: h}, nil

	case plan.FragCount:
		if expr == nil {
			return &plan.FragmentResult{Count: rangeSize(st, f.Rows)}, nil
		}
		pos, err := selectRange(ctx, st, expr, f.Backend, f.Rows)
		if err != nil {
			return nil, err
		}
		return &plan.FragmentResult{Count: uint64(len(pos))}, nil

	case plan.FragSelect:
		pos, err := selectRange(ctx, st, expr, f.Backend, f.Rows)
		if err != nil {
			return nil, err
		}
		// Clone: selectRange may return a sub-slice of a shared buffer, and
		// cached fragment results must not alias each other's backing arrays.
		sel := append([]uint64(nil), pos...)
		return &plan.FragmentResult{Sel: sel, Count: uint64(len(sel))}, nil

	case plan.FragMinMax:
		pos, err := selectRange(ctx, st, expr, f.Backend, f.Rows)
		if err != nil {
			return nil, err
		}
		res := &plan.FragmentResult{}
		for _, v := range f.Vars {
			vs, err := st.ValuesAtCtx(ctx, v, pos)
			if err != nil {
				return nil, err
			}
			lo, hi := scan.MinMax(vs)
			res.MinMax = append(res.MinMax, plan.VarRange{Var: v, Lo: lo, Hi: hi, N: uint64(len(vs))})
		}
		return res, nil

	case plan.FragHist1D:
		pos, err := selectRange(ctx, st, expr, f.Backend, f.Rows)
		if err != nil {
			return nil, err
		}
		vs, err := st.ValuesAtCtx(ctx, f.Spec1.Var, pos)
		if err != nil {
			return nil, err
		}
		// Edges are recomputed from the resolved spec rather than
		// shipped: UniformEdges is deterministic, so every shard (and
		// the merging frontend) derives bit-identical boundaries.
		edges := histogram.UniformEdges(f.Spec1.Lo, f.Spec1.Hi, f.Spec1.Bins)
		h, err := histogram.Compute1DCtx(ctx, f.Spec1.Var, vs, edges)
		if err != nil {
			return nil, err
		}
		return &plan.FragmentResult{Hist1: h}, nil

	case plan.FragHist2D:
		pos, err := selectRange(ctx, st, expr, f.Backend, f.Rows)
		if err != nil {
			return nil, err
		}
		xs, err := st.ValuesAtCtx(ctx, f.Spec2.XVar, pos)
		if err != nil {
			return nil, err
		}
		ys, err := st.ValuesAtCtx(ctx, f.Spec2.YVar, pos)
		if err != nil {
			return nil, err
		}
		xe := histogram.UniformEdges(f.Spec2.XLo, f.Spec2.XHi, f.Spec2.XBins)
		ye := histogram.UniformEdges(f.Spec2.YLo, f.Spec2.YHi, f.Spec2.YBins)
		h, err := histogram.Compute2DCtx(ctx, f.Spec2.XVar, f.Spec2.YVar, xs, ys, xe, ye)
		if err != nil {
			return nil, err
		}
		return &plan.FragmentResult{Hist2: h}, nil

	default:
		return nil, fastquery.Fatalf("shard: unknown fragment op %v", f.Op)
	}
}

// parseQuery parses a fragment's canonical query text. A malformed query
// is fatal: retrying or failing over will not fix it.
func parseQuery(src string) (query.Expr, error) {
	if src == "" {
		return nil, nil
	}
	e, err := query.Parse(src)
	if err != nil {
		return nil, fastquery.Fatal(fmt.Errorf("shard: parse query: %w", err))
	}
	return query.Canonical(e), nil
}

// rangeSize returns the number of rows a range covers on this step.
func rangeSize(st *fastquery.Step, rr plan.RowRange) uint64 {
	if rr.Whole() {
		return st.Rows()
	}
	if rr.Hi <= rr.Lo {
		return 0
	}
	return rr.Hi - rr.Lo
}

// selectRange returns the sorted matching row positions clipped to the
// fragment's row range. With no condition it is every position in the
// range. Both backends return ascending positions, so the clip is two
// binary searches.
func selectRange(ctx context.Context, st *fastquery.Step, expr query.Expr, b fastquery.Backend, rr plan.RowRange) ([]uint64, error) {
	if expr == nil {
		lo, hi := rr.Lo, rr.Hi
		if rr.Whole() {
			hi = st.Rows()
		}
		if hi > st.Rows() {
			hi = st.Rows()
		}
		if hi <= lo {
			return nil, nil
		}
		pos := make([]uint64, hi-lo)
		for i := range pos {
			pos[i] = lo + uint64(i)
		}
		return pos, nil
	}
	pos, err := st.SelectCtx(ctx, expr, b)
	if err != nil {
		return nil, err
	}
	if rr.Whole() {
		return pos, nil
	}
	lo := sort.Search(len(pos), func(i int) bool { return pos[i] >= rr.Lo })
	hi := sort.Search(len(pos), func(i int) bool { return pos[i] >= rr.Hi })
	return pos[lo:hi], nil
}
