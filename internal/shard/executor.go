package shard

import (
	"container/list"
	"context"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/fastquery"
	"repro/internal/obs"
	"repro/internal/plan"
)

// Package-level instruments for the shard execution tier, registered in
// the process-wide registry like the cluster RPC series.
var (
	metricFragments = obs.Default().Counter("shard_fragments_total",
		"Plan fragments evaluated by this process's shard executor.")
	metricFragHits = obs.Default().Counter("shard_frag_cache_hits_total",
		"Fragment results answered from the shard-local cache.")
	metricFragMisses = obs.Default().Counter("shard_frag_cache_misses_total",
		"Fragment requests that had to be evaluated.")
	metricBudgetShed = obs.Default().Counter("shard_budget_shed_total",
		"Fragments shed by a shard worker because their deadline budget expired.")
	metricBudgetSkips = obs.Default().Counter("shard_budget_skips_total",
		"Fragments the scatter client refused to dispatch or abandoned because the deadline budget was spent.")
	metricReplyCorrupt = obs.Default().Counter("shard_reply_corrupt_total",
		"Fragment replies rejected by the scatter client because the content checksum did not match (transport corruption).")
)

// ExecStats is a snapshot of one executor's counters, shipped to the
// frontend by Shard.Stats so /v1/stats can aggregate the fleet.
type ExecStats struct {
	Datasets     int
	Steps        int // total steps across datasets
	Generation   uint64
	Evals        uint64 // fragments evaluated (cache misses that ran)
	CacheHits    uint64
	CacheMisses  uint64
	CacheEntries int
}

// Executor evaluates plan fragments over locally opened datasets, with a
// shard-local LRU of fragment results keyed by (canonical fragment key,
// shard generation). Hot steps — repeated drill-downs over the same
// fragment — are answered without touching the data at all.
type Executor struct {
	mu       sync.Mutex
	datasets map[string]*exDataset

	cache *fragCache
	gen   atomic.Uint64

	evals, hits, misses atomic.Uint64
}

type exDataset struct {
	src *fastquery.Source

	mu    sync.Mutex
	steps map[int]*fastquery.Step
}

// NewExecutor creates an executor whose fragment cache holds up to
// cacheEntries results (0 disables caching).
func NewExecutor(cacheEntries int) *Executor {
	return &Executor{
		datasets: map[string]*exDataset{},
		cache:    newFragCache(cacheEntries),
	}
}

// AddDataset opens a dataset directory under the given name.
func (e *Executor) AddDataset(name, dir string) error {
	src, err := fastquery.Open(dir)
	if err != nil {
		return err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, dup := e.datasets[name]; dup {
		src.Close()
		return fmt.Errorf("shard: duplicate dataset %q", name)
	}
	e.datasets[name] = &exDataset{src: src, steps: map[int]*fastquery.Step{}}
	return nil
}

// Datasets returns the dataset names and their step counts, sorted.
func (e *Executor) Datasets() (names []string, steps []int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for name := range e.datasets {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		steps = append(steps, e.datasets[name].src.Steps())
	}
	return names, steps
}

// Generation returns the shard's data generation. Cached fragment results
// are keyed by it, so Bump atomically invalidates them all.
func (e *Executor) Generation() uint64 { return e.gen.Load() }

// Bump advances the generation, invalidating every cached fragment.
func (e *Executor) Bump() { e.gen.Add(1) }

// step returns a cached open step handle for the dataset.
func (e *Executor) step(dataset string, t int) (*fastquery.Step, error) {
	e.mu.Lock()
	d, ok := e.datasets[dataset]
	e.mu.Unlock()
	if !ok {
		return nil, fastquery.Fatalf("shard: unknown dataset %q", dataset)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if st, ok := d.steps[t]; ok {
		return st, nil
	}
	st, err := d.src.OpenStep(t)
	if err != nil {
		return nil, err
	}
	d.steps[t] = st
	return st, nil
}

func (e *Executor) cacheKey(f plan.Fragment) string {
	return strconv.FormatUint(e.gen.Load(), 10) + "\x1f" + f.Key()
}

// Peek returns a cached result for the fragment without evaluating
// anything; the RPC service uses it to answer hot fragments ahead of
// admission control, mirroring the serve layer's cached-probe bypass.
func (e *Executor) Peek(f plan.Fragment) (*plan.FragmentResult, bool) {
	res, ok := e.cache.get(e.cacheKey(f))
	if ok {
		e.hits.Add(1)
		metricFragHits.Inc()
	}
	return res, ok
}

// Run evaluates one fragment, answering from the shard-local cache when
// possible. Cached results are shared and must be treated as read-only —
// the planner's merge clones before mutating.
func (e *Executor) Run(ctx context.Context, f plan.Fragment) (*plan.FragmentResult, error) {
	res, _, err := e.RunCached(ctx, f)
	return res, err
}

// RunCached is Run reporting whether the result came from the shard-local
// cache, so the explain surface can mark cache-served fragments (which
// correctly charged zero cost).
func (e *Executor) RunCached(ctx context.Context, f plan.Fragment) (*plan.FragmentResult, bool, error) {
	key := e.cacheKey(f)
	if res, ok := e.cache.get(key); ok {
		e.hits.Add(1)
		metricFragHits.Inc()
		return res, true, nil
	}
	e.misses.Add(1)
	metricFragMisses.Inc()
	st, err := e.step(f.Dataset, f.Step)
	if err != nil {
		return nil, false, err
	}
	e.evals.Add(1)
	metricFragments.Inc()
	res, err := Eval(ctx, st, f)
	if err != nil {
		return nil, false, err
	}
	e.cache.put(key, res)
	return res, false, nil
}

// Stats snapshots the executor counters.
func (e *Executor) Stats() ExecStats {
	e.mu.Lock()
	datasets, steps := len(e.datasets), 0
	for _, d := range e.datasets {
		steps += d.src.Steps()
	}
	e.mu.Unlock()
	return ExecStats{
		Datasets:     datasets,
		Steps:        steps,
		Generation:   e.gen.Load(),
		Evals:        e.evals.Load(),
		CacheHits:    e.hits.Load(),
		CacheMisses:  e.misses.Load(),
		CacheEntries: e.cache.len(),
	}
}

// Close closes every open step and dataset source.
func (e *Executor) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	var first error
	for _, d := range e.datasets {
		d.mu.Lock()
		for _, st := range d.steps {
			if err := st.Close(); err != nil && first == nil {
				first = err
			}
		}
		d.steps = map[int]*fastquery.Step{}
		d.mu.Unlock()
		if err := d.src.Close(); err != nil && first == nil {
			first = err
		}
	}
	e.datasets = map[string]*exDataset{}
	return first
}

// fragCache is a small mutex-guarded LRU of fragment results. It has no
// singleflight — the frontend's result cache already coalesces identical
// client requests, so duplicate fragment evaluations are rare.
type fragCache struct {
	mu      sync.Mutex
	max     int
	ll      *list.List
	entries map[string]*list.Element
}

type fragEntry struct {
	key string
	res *plan.FragmentResult
}

func newFragCache(max int) *fragCache {
	return &fragCache{max: max, ll: list.New(), entries: map[string]*list.Element{}}
}

func (c *fragCache) get(key string) (*plan.FragmentResult, bool) {
	if c.max <= 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*fragEntry).res, true
}

func (c *fragCache) put(key string, res *plan.FragmentResult) {
	if c.max <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*fragEntry).res = res
		return
	}
	c.entries[key] = c.ll.PushFront(&fragEntry{key: key, res: res})
	for c.ll.Len() > c.max {
		el := c.ll.Back()
		c.ll.Remove(el)
		delete(c.entries, el.Value.(*fragEntry).key)
	}
}

func (c *fragCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
