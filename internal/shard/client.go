package shard

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/fastquery"
	"repro/internal/obs"
	"repro/internal/plan"
)

// DefaultBudgetSlack is the deadline headroom the scatter client reserves
// per fragment dispatch: time for the RPC round trip plus the frontend's
// merge and serialization, so a budget-exhausted shard still settles into
// a marked-partial response before the request deadline fires a 504.
const DefaultBudgetSlack = 25 * time.Millisecond

// Client is the frontend's scatter client: one cluster pool per shard,
// each pool holding that shard's replicas with the usual retry/backoff,
// health probing, and ring failover. It implements plan.Runner.
type Client struct {
	pools []*cluster.Pool
	hedge time.Duration
	slack time.Duration // budget headroom per dispatch; < 0 disables budgets
}

// DialShards connects to every shard's replica group. shards[i] lists the
// replica addresses of shard i. hedge > 0 enables staggered hedged
// dispatch across a shard's replicas: if the first replica has not
// answered within the stagger, the next one is raced against it. When the
// config enables a retry budget without supplying a shared bucket, one
// bucket is created here and shared across every shard pool, so the
// budget is global to the frontend rather than per shard.
func DialShards(shards [][]string, cfg cluster.PoolConfig, hedge time.Duration) (*Client, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("shard: no shards")
	}
	if cfg.RetryBudget == nil && cfg.RetryBudgetRatio > 0 {
		cfg.RetryBudget = cluster.NewRetryBudget(cfg.RetryBudgetRatio, cfg.RetryBudgetBurst)
	}
	c := &Client{hedge: hedge, slack: DefaultBudgetSlack}
	for i, addrs := range shards {
		p, err := cluster.DialConfig(addrs, cfg)
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("shard: dial shard %d: %w", i, err)
		}
		c.pools = append(c.pools, p)
	}
	return c, nil
}

// SetBudgetSlack overrides the deadline headroom reserved per fragment.
// A negative slack disables deadline-budget propagation entirely.
func (c *Client) SetBudgetSlack(d time.Duration) { c.slack = d }

// Shards returns the number of shards.
func (c *Client) Shards() int { return len(c.pools) }

// RunFragment sends one fragment to a shard, first-healthy replica first
// (a stable choice, so the primary replica's fragment cache stays hot),
// hedging per the client's stagger. The shard-side span tree is attached
// under the caller's fragment span.
func (c *Client) RunFragment(ctx context.Context, shard int, f plan.Fragment) (*plan.FragmentResult, error) {
	if shard < 0 || shard >= len(c.pools) {
		return nil, fmt.Errorf("shard: shard %d out of range [0,%d)", shard, len(c.pools))
	}
	// When the request is being profiled, ask the worker for a fragment
	// profile and collect it (or a synthesized one for refusals and
	// transport failures) so the explain surface accounts for every
	// fragment the plan attempted.
	profile := plan.ProfileFromContext(ctx)
	fail := func(err error, exhausted bool) {
		if profile == nil {
			return
		}
		profile.Add(plan.FragProfile{
			Shard:     shard,
			Op:        f.Op.String(),
			Rows:      [2]int{int(f.Rows.Lo), int(f.Rows.Hi)},
			Exhausted: exhausted,
			Err:       err.Error(),
		})
	}
	args := &ExecArgs{Frag: f, TraceID: obs.SpanFromContext(ctx).TraceID(), Profile: profile != nil}
	callCtx := ctx
	if dl, ok := ctx.Deadline(); ok && c.slack >= 0 {
		// Carve this fragment's sub-budget from the request deadline: the
		// time left minus the slack reserved for the round trip and the
		// frontend's merge. A fragment that cannot fit is refused without
		// an RPC, and the sub-budget rides in ExecArgs so the shard sheds
		// the work the moment it can no longer finish in time.
		budget := time.Until(dl) - c.slack
		if budget <= 0 {
			metricBudgetSkips.Inc()
			err := fastquery.Exhaustedf("shard %d: %v of deadline budget left, slack %v",
				shard, time.Until(dl).Round(time.Millisecond), c.slack)
			fail(err, true)
			return nil, err
		}
		args.BudgetMS = int64(budget / time.Millisecond)
		if args.BudgetMS == 0 {
			args.BudgetMS = 1
		}
		var cancel context.CancelFunc
		callCtx, cancel = context.WithTimeout(ctx, budget)
		defer cancel()
	}
	var reply ExecReply
	err := c.pools[shard].CallOn(callCtx, 0, "Shard.Exec", args, &reply, c.hedge)
	obs.SpanFromContext(ctx).AttachRemote(reply.Trace)
	if err != nil {
		if callCtx != ctx && callCtx.Err() == context.DeadlineExceeded && ctx.Err() == nil {
			// The sub-budget expired while the request itself is still
			// alive (a stalled or partitioned replica ate it): settle as
			// budget exhaustion now, slack ahead of the request deadline,
			// so the planner merges a marked partial instead of a 504.
			metricBudgetSkips.Inc()
			err = fastquery.Exhausted(err)
			fail(err, true)
			return nil, err
		}
		fail(err, fastquery.IsExhausted(err))
		return nil, err
	}
	if reply.Result == nil {
		err := fmt.Errorf("shard: shard %d returned no result", shard)
		fail(err, false)
		return nil, err
	}
	if reply.SumOK {
		// Verify the content checksum: gob decodes a byte-flipped float or
		// count without complaint, and a corrupted partial would merge into
		// a silently wrong — and unmarked — answer.
		if sum, ok := resultSum(reply.Result); ok && sum != reply.Sum {
			metricReplyCorrupt.Inc()
			err := fmt.Errorf("shard: shard %d reply failed checksum: transport corruption", shard)
			fail(err, false)
			return nil, err
		}
	}
	if profile != nil {
		fp := reply.Prof
		if fp == nil {
			// An older worker (or one restarted mid-rollout) that does not
			// fill profiles still accounts for the fragment, with zero cost.
			fp = &plan.FragProfile{
				Op:     f.Op.String(),
				Rows:   [2]int{int(f.Rows.Lo), int(f.Rows.Hi)},
				Cached: reply.Cached,
			}
		}
		fp.Shard = shard
		profile.Add(*fp)
	}
	return reply.Result, nil
}

// ReplicaStatus is one replica's client-side view: address, health flag,
// and circuit-breaker state ("closed", "half-open", "open").
type ReplicaStatus struct {
	Addr    string `json:"addr"`
	Healthy bool   `json:"healthy"`
	Breaker string `json:"breaker"`
}

// ShardStatus is one shard's view in a fleet stats snapshot.
type ShardStatus struct {
	Shard        int               `json:"shard"`
	Replicas     int               `json:"replicas"`
	Healthy      int               `json:"healthy"`
	Err          string            `json:"err,omitempty"` // stats RPC failure
	Stats        ExecStats         `json:"stats"`
	Pool         cluster.PoolStats `json:"pool"`
	ReplicaState []ReplicaStatus   `json:"replica_state,omitempty"`
}

// Stats gathers every shard's executor snapshot plus the frontend-side
// pool counters and per-replica breaker states. The shards are polled
// concurrently, each under its own timeout, so a dead fleet costs one
// timeout rather than shards×timeout.
func (c *Client) Stats(ctx context.Context, timeout time.Duration) []ShardStatus {
	out := make([]ShardStatus, len(c.pools))
	var wg sync.WaitGroup
	for i, p := range c.pools {
		wg.Add(1)
		go func(i int, p *cluster.Pool) {
			defer wg.Done()
			st := ShardStatus{
				Shard:    i,
				Replicas: p.Nodes(),
				Healthy:  p.HealthyNodes(),
				Pool:     p.Stats(),
			}
			for _, cl := range p.Callers() {
				st.ReplicaState = append(st.ReplicaState, ReplicaStatus{
					Addr:    cl.Addr(),
					Healthy: cl.Healthy(),
					Breaker: cl.BreakerState().String(),
				})
			}
			sctx, cancel := context.WithTimeout(ctx, timeout)
			var reply StatsReply
			if err := p.CallOn(sctx, 0, "Shard.Stats", &StatsArgs{}, &reply, 0); err != nil {
				st.Err = err.Error()
			} else {
				st.Stats = reply.Stats
			}
			cancel()
			out[i] = st
		}(i, p)
	}
	wg.Wait()
	return out
}

// ReplicaStates returns every shard's client-side replica view (address,
// health, breaker state) without any RPC — the failover context the
// explain surface attaches to a profiled query.
func (c *Client) ReplicaStates() [][]ReplicaStatus {
	out := make([][]ReplicaStatus, len(c.pools))
	for i, p := range c.pools {
		for _, cl := range p.Callers() {
			out[i] = append(out[i], ReplicaStatus{
				Addr:    cl.Addr(),
				Healthy: cl.Healthy(),
				Breaker: cl.BreakerState().String(),
			})
		}
	}
	return out
}

// ShardMetrics is one shard worker's metrics snapshot (or the reason it
// could not be scraped) in a federated poll.
type ShardMetrics struct {
	Shard   int
	Err     string
	Metrics []obs.Metric
}

// Metrics polls every shard worker's metrics registry over RPC for the
// frontend's federated /metrics exposition. Like Stats, the shards are
// polled concurrently under individual timeouts; a shard that cannot be
// reached contributes an error marker instead of failing the scrape.
func (c *Client) Metrics(ctx context.Context, timeout time.Duration) []ShardMetrics {
	out := make([]ShardMetrics, len(c.pools))
	var wg sync.WaitGroup
	for i, p := range c.pools {
		wg.Add(1)
		go func(i int, p *cluster.Pool) {
			defer wg.Done()
			sm := ShardMetrics{Shard: i}
			sctx, cancel := context.WithTimeout(ctx, timeout)
			var reply MetricsReply
			if err := p.CallOn(sctx, 0, "Shard.Metrics", &MetricsArgs{}, &reply, 0); err != nil {
				sm.Err = err.Error()
			} else {
				sm.Metrics = reply.Metrics
			}
			cancel()
			out[i] = sm
		}(i, p)
	}
	wg.Wait()
	return out
}

// Close closes every shard pool.
func (c *Client) Close() {
	for _, p := range c.pools {
		p.Close()
	}
}
