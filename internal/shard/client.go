package shard

import (
	"context"
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/plan"
)

// Client is the frontend's scatter client: one cluster pool per shard,
// each pool holding that shard's replicas with the usual retry/backoff,
// health probing, and ring failover. It implements plan.Runner.
type Client struct {
	pools []*cluster.Pool
	hedge time.Duration
}

// DialShards connects to every shard's replica group. shards[i] lists the
// replica addresses of shard i. hedge > 0 enables staggered hedged
// dispatch across a shard's replicas: if the first replica has not
// answered within the stagger, the next one is raced against it.
func DialShards(shards [][]string, cfg cluster.PoolConfig, hedge time.Duration) (*Client, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("shard: no shards")
	}
	c := &Client{hedge: hedge}
	for i, addrs := range shards {
		p, err := cluster.DialConfig(addrs, cfg)
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("shard: dial shard %d: %w", i, err)
		}
		c.pools = append(c.pools, p)
	}
	return c, nil
}

// Shards returns the number of shards.
func (c *Client) Shards() int { return len(c.pools) }

// RunFragment sends one fragment to a shard, first-healthy replica first
// (a stable choice, so the primary replica's fragment cache stays hot),
// hedging per the client's stagger. The shard-side span tree is attached
// under the caller's fragment span.
func (c *Client) RunFragment(ctx context.Context, shard int, f plan.Fragment) (*plan.FragmentResult, error) {
	if shard < 0 || shard >= len(c.pools) {
		return nil, fmt.Errorf("shard: shard %d out of range [0,%d)", shard, len(c.pools))
	}
	var reply ExecReply
	err := c.pools[shard].CallOn(ctx, 0, "Shard.Exec", &ExecArgs{
		Frag:    f,
		TraceID: obs.SpanFromContext(ctx).TraceID(),
	}, &reply, c.hedge)
	obs.SpanFromContext(ctx).AttachRemote(reply.Trace)
	if err != nil {
		return nil, err
	}
	if reply.Result == nil {
		return nil, fmt.Errorf("shard: shard %d returned no result", shard)
	}
	return reply.Result, nil
}

// ShardStatus is one shard's view in a fleet stats snapshot.
type ShardStatus struct {
	Shard    int               `json:"shard"`
	Replicas int               `json:"replicas"`
	Healthy  int               `json:"healthy"`
	Err      string            `json:"err,omitempty"` // stats RPC failure
	Stats    ExecStats         `json:"stats"`
	Pool     cluster.PoolStats `json:"pool"`
}

// Stats gathers every shard's executor snapshot (best effort, bounded by
// timeout per shard) plus the frontend-side pool counters.
func (c *Client) Stats(ctx context.Context, timeout time.Duration) []ShardStatus {
	out := make([]ShardStatus, len(c.pools))
	for i, p := range c.pools {
		st := ShardStatus{
			Shard:    i,
			Replicas: p.Nodes(),
			Healthy:  p.HealthyNodes(),
			Pool:     p.Stats(),
		}
		sctx, cancel := context.WithTimeout(ctx, timeout)
		var reply StatsReply
		if err := p.CallOn(sctx, 0, "Shard.Stats", &StatsArgs{}, &reply, 0); err != nil {
			st.Err = err.Error()
		} else {
			st.Stats = reply.Stats
		}
		cancel()
		out[i] = st
	}
	return out
}

// Close closes every shard pool.
func (c *Client) Close() {
	for _, p := range c.pools {
		p.Close()
	}
}
