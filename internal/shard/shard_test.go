// Merge-identity property tests: a scatter over any shard split must
// produce byte-identical answers to the single-process plan, for every
// routing path (direct scatter, two-phase min/max, wholesale) and both
// backends. This is the core correctness contract of the sharded tier —
// shard boundaries are invisible in results.
package shard_test

import (
	"context"
	"fmt"
	"os"
	"reflect"
	"sync"
	"testing"

	"repro/internal/fastbit"
	"repro/internal/fastquery"
	"repro/internal/histogram"
	"repro/internal/plan"
	"repro/internal/query"
	"repro/internal/shard"
	"repro/internal/sim"
)

var (
	datasetOnce sync.Once
	datasetDir  string
	datasetErr  error
)

func testDataDir(t *testing.T) string {
	t.Helper()
	datasetOnce.Do(func() {
		dir, err := os.MkdirTemp("", "shard-test-*")
		if err != nil {
			datasetErr = err
			return
		}
		cfg := sim.DefaultConfig()
		cfg.Steps = 3
		cfg.BackgroundPerStep = 2500
		cfg.BeamParticles = 50
		_, datasetErr = sim.WriteDataset(dir, cfg, sim.WriteOptions{
			Index: fastbit.IndexOptions{Bins: 64},
		})
		datasetDir = dir
	})
	if datasetErr != nil {
		t.Fatal(datasetErr)
	}
	return datasetDir
}

func TestMain(m *testing.M) {
	code := m.Run()
	if datasetDir != "" {
		os.RemoveAll(datasetDir)
	}
	os.Exit(code)
}

func testExecutor(t *testing.T) *shard.Executor {
	t.Helper()
	ex := shard.NewExecutor(256)
	if err := ex.AddDataset("lwfa", testDataDir(t)); err != nil {
		ex.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() { ex.Close() })
	return ex
}

// execRunner adapts an Executor into a plan.Runner: every "shard" is the
// same local executor, so results differ from single-process evaluation
// only through the planner's scatter/merge — exactly what these tests
// isolate.
type execRunner struct{ ex *shard.Executor }

func (r execRunner) RunFragment(ctx context.Context, _ int, f plan.Fragment) (*plan.FragmentResult, error) {
	return r.ex.Run(ctx, f)
}

// canonical parses and canonicalizes query text the way the serve layer
// does before planning.
func canonical(t *testing.T, src string) string {
	t.Helper()
	expr, err := query.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return query.Canonical(expr).String()
}

// pxMedian finds a threshold that splits the px column, so conditional
// queries select a nontrivial subset.
func pxMedian(t *testing.T) float64 {
	t.Helper()
	src, err := fastquery.Open(testDataDir(t))
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	st, err := src.OpenStep(0)
	if err != nil {
		t.Fatal(err)
	}
	vals, err := st.ReadColumn("px")
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := vals[0], vals[0]
	for _, v := range vals {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo + 0.5*(hi-lo)
}

func TestScatterIdentity(t *testing.T) {
	thresh := pxMedian(t)
	cond := canonical(t, fmt.Sprintf("px > %g", thresh))

	spec1 := func(bins int, lo, hi float64) histogram.Spec1D {
		s := histogram.NewSpec1D("x", bins)
		s.Lo, s.Hi = lo, hi
		return s
	}

	type qcase struct {
		name string
		q    plan.Query
	}
	mkCases := func(backend fastquery.Backend) []qcase {
		adaptive := histogram.NewSpec1D("x", 16)
		adaptive.Binning = histogram.Adaptive
		ranged2d := histogram.NewSpec2D("x", "px", 8, 8).WithXRange(-1, 1).WithYRange(-0.5, 0.5)
		return []qcase{
			{"count-cond", plan.Query{Op: plan.OpCount, Query: cond, Backend: backend}},
			{"count-uncond", plan.Query{Op: plan.OpCount, Backend: backend}},
			{"hist1d-explicit-range", plan.Query{Op: plan.OpHist1D, Query: cond, Backend: backend,
				Spec1: spec1(32, -2, 2)}},
			{"hist1d-cond-no-range", plan.Query{Op: plan.OpHist1D, Query: cond, Backend: backend,
				Spec1: histogram.NewSpec1D("x", 24)}},
			{"hist1d-uncond", plan.Query{Op: plan.OpHist1D, Backend: backend,
				Spec1: histogram.NewSpec1D("x", 16)}},
			{"hist1d-adaptive", plan.Query{Op: plan.OpHist1D, Query: cond, Backend: backend,
				Spec1: adaptive}},
			{"hist2d-cond-no-range", plan.Query{Op: plan.OpHist2D, Query: cond, Backend: backend,
				Spec2: histogram.NewSpec2D("x", "px", 12, 12)}},
			{"hist2d-explicit-range", plan.Query{Op: plan.OpHist2D, Query: cond, Backend: backend,
				Spec2: ranged2d}},
		}
	}

	for _, backend := range []fastquery.Backend{fastquery.FastBit, fastquery.Scan} {
		for _, tc := range mkCases(backend) {
			tc := tc
			t.Run(fmt.Sprintf("%v/%s", backend, tc.name), func(t *testing.T) {
				for step := 0; step < 3; step++ {
					q := tc.q
					q.Dataset, q.Step = "lwfa", step

					// Fresh executor per topology so the fragment cache
					// cannot leak results between shard splits.
					base := testExecutor(t)
					src, err := fastquery.Open(testDataDir(t))
					if err != nil {
						t.Fatal(err)
					}
					st, err := src.OpenStep(step)
					if err != nil {
						src.Close()
						t.Fatal(err)
					}
					rows := st.Rows()
					src.Close()

					want, err := plan.Execute(context.Background(), q,
						plan.ShardMap{Shards: 1}, rows, execRunner{base}, plan.FailFast)
					if err != nil {
						t.Fatal(err)
					}

					for _, shards := range []int{2, 3, 5, 8} {
						ex := testExecutor(t)
						got, err := plan.Execute(context.Background(), q,
							plan.ShardMap{Shards: shards}, rows, execRunner{ex}, plan.FailFast)
						if err != nil {
							t.Fatalf("shards=%d: %v", shards, err)
						}
						if got.Partial {
							t.Fatalf("shards=%d: unexpected partial", shards)
						}
						if got.Count != want.Count {
							t.Fatalf("shards=%d step=%d: count %d != %d", shards, step, got.Count, want.Count)
						}
						if !reflect.DeepEqual(got.Hist1, want.Hist1) {
							t.Fatalf("shards=%d step=%d: hist1 mismatch\n got %+v\nwant %+v",
								shards, step, got.Hist1, want.Hist1)
						}
						if !reflect.DeepEqual(got.Hist2, want.Hist2) {
							t.Fatalf("shards=%d step=%d: hist2 mismatch", shards, step)
						}
					}
				}
			})
		}
	}
}

func TestExecutorCache(t *testing.T) {
	ex := testExecutor(t)
	f := plan.Fragment{
		Op: plan.FragCount, Dataset: "lwfa", Step: 0,
		Rows: plan.RowRange{Lo: 0, Hi: 100}, Backend: fastquery.Scan,
	}
	ctx := context.Background()
	first, err := ex.Run(ctx, f)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ex.Peek(f); !ok {
		t.Fatal("fragment not cached after Run")
	}
	second, err := ex.Run(ctx, f)
	if err != nil {
		t.Fatal(err)
	}
	if first != second {
		t.Fatal("cached Run did not return the shared result")
	}
	st := ex.Stats()
	if st.CacheHits < 2 || st.Evals != 1 {
		t.Fatalf("stats = %+v, want >=2 hits and 1 eval", st)
	}

	// Bump invalidates: the same fragment re-evaluates under the new
	// generation.
	ex.Bump()
	if _, ok := ex.Peek(f); ok {
		t.Fatal("stale generation still cached")
	}
	if _, err := ex.Run(ctx, f); err != nil {
		t.Fatal(err)
	}
	if st := ex.Stats(); st.Evals != 2 {
		t.Fatalf("post-bump stats = %+v, want 2 evals", st)
	}
}

func TestUnknownDatasetFatal(t *testing.T) {
	ex := testExecutor(t)
	_, err := ex.Run(context.Background(), plan.Fragment{
		Op: plan.FragCount, Dataset: "nope", Backend: fastquery.Scan,
	})
	if err == nil || !fastquery.IsFatal(err) {
		t.Fatalf("unknown dataset err = %v, want fatal", err)
	}
}
