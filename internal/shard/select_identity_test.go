// Shard-split identity for the analysis-session primitives: an OpSelect
// scatter over any shard split must materialize byte-identical sorted
// positions to the single-process plan, the particle-ID membership
// predicate built from those positions must count identically across
// splits, and an ingest-style generation bump must invalidate cached
// selection fragments.
package shard_test

import (
	"context"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/fastquery"
	"repro/internal/plan"
	"repro/internal/query"
)

// execSelect runs one OpSelect through the planner over the given shard
// count, on a fresh executor so fragment caches cannot leak between
// topologies.
func execSelect(t *testing.T, shards int, q string, backend fastquery.Backend, step int) *plan.Result {
	t.Helper()
	ex := testExecutor(t)
	src, err := fastquery.Open(testDataDir(t))
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	st, err := src.OpenStep(step)
	if err != nil {
		t.Fatal(err)
	}
	rows := st.Rows()
	pq := plan.Query{Op: plan.OpSelect, Dataset: "lwfa", Step: step, Query: q, Backend: backend}
	res, err := plan.Execute(context.Background(), pq, plan.ShardMap{Shards: shards}, rows, execRunner{ex}, plan.FailFast)
	if err != nil {
		t.Fatalf("%d shards, %q: %v", shards, q, err)
	}
	return res
}

func TestSelectScatterIdentity(t *testing.T) {
	med := pxMedian(t)
	queries := []string{
		"",
		fmt.Sprintf("px > %g", med),
		fmt.Sprintf("px > %g && y < 0.75", med),
	}
	backends := []fastquery.Backend{fastquery.FastBit, fastquery.Scan}
	for _, b := range backends {
		for _, src := range queries {
			q := ""
			if src != "" {
				q = canonical(t, src)
			}
			want := execSelect(t, 1, q, b, 1)
			if want.Partial || len(want.Sel) == 0 && src == "" {
				t.Fatalf("baseline select %q: %+v", q, want)
			}
			for _, shards := range []int{2, 3, 5} {
				got := execSelect(t, shards, q, b, 1)
				if !reflect.DeepEqual(got.Sel, want.Sel) {
					t.Fatalf("%v %q: %d-shard selection diverges from 1-shard (%d vs %d positions)",
						b, q, shards, len(got.Sel), len(want.Sel))
				}
				if got.Count != want.Count {
					t.Fatalf("%v %q: %d-shard count %d != %d", b, q, shards, got.Count, want.Count)
				}
			}
		}
	}
}

// TestTrackedIDSetIdentity follows the session track path across shard
// splits: positions selected at one step materialize into particle IDs,
// and the resulting `id in (…)` membership predicate must select and
// count identically over {1} and {2,3,5} shard splits on every step and
// both backends.
func TestTrackedIDSetIdentity(t *testing.T) {
	med := pxMedian(t)
	src, err := fastquery.Open(testDataDir(t))
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	st, err := src.OpenStep(0)
	if err != nil {
		t.Fatal(err)
	}
	base := execSelect(t, 1, canonical(t, fmt.Sprintf("px > %g && y < 0.6", med)), fastquery.FastBit, 0)
	if len(base.Sel) == 0 {
		t.Fatal("brush selected nothing; broaden the test predicate")
	}
	ids, err := st.IDsAtCtx(context.Background(), base.Sel)
	if err != nil {
		t.Fatal(err)
	}
	fids := make([]float64, len(ids))
	for i, id := range ids {
		fids[i] = float64(id)
	}
	inQ := query.Canonical(query.NewIn(st.IDVar(), fids)).String()

	for _, b := range []fastquery.Backend{fastquery.FastBit, fastquery.Scan} {
		for step := 0; step < 3; step++ {
			want := execSelect(t, 1, inQ, b, step)
			if step == 0 && want.Count != uint64(len(ids)) {
				t.Fatalf("%v: at the brush step the ID set selects %d of its %d particles", b, want.Count, len(ids))
			}
			for _, shards := range []int{2, 3, 5} {
				got := execSelect(t, shards, inQ, b, step)
				if !reflect.DeepEqual(got.Sel, want.Sel) || got.Count != want.Count {
					t.Fatalf("%v step %d: %d-shard tracked selection diverges (%d vs %d)",
						b, step, shards, got.Count, want.Count)
				}
			}
		}
	}
}

// TestBumpInvalidatesSelectFragments is the ingest-invalidation contract
// for session selections: a cached FragSelect result must stop being
// served once the executor's generation moves (the shard service bumps it
// on dataset reload).
func TestBumpInvalidatesSelectFragments(t *testing.T) {
	ex := testExecutor(t)
	f := plan.Fragment{
		Op: plan.FragSelect, Dataset: "lwfa", Step: 0,
		Rows:  plan.RowRange{Lo: 0, Hi: 500},
		Query: canonical(t, "px > 0"), Backend: fastquery.FastBit,
	}
	res, hit, err := ex.RunCached(context.Background(), f)
	if err != nil {
		t.Fatal(err)
	}
	if hit || len(res.Sel) == 0 {
		t.Fatalf("first run: hit=%v sel=%d", hit, len(res.Sel))
	}
	if _, ok := ex.Peek(f); !ok {
		t.Fatal("selection fragment not cached after RunCached")
	}
	if _, hit, err = ex.RunCached(context.Background(), f); err != nil || !hit {
		t.Fatalf("second run should hit the fragment cache: hit=%v err=%v", hit, err)
	}
	ex.Bump()
	if _, ok := ex.Peek(f); ok {
		t.Fatal("generation bump left a stale selection fragment cached")
	}
	if _, hit, err = ex.RunCached(context.Background(), f); err != nil || hit {
		t.Fatalf("post-bump run must recompute: hit=%v err=%v", hit, err)
	}
}
