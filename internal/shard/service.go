package shard

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"net"
	"runtime/debug"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/fastquery"
	"repro/internal/obs"
	"repro/internal/plan"
)

// AdmitFunc is the shard worker's admission hook: it blocks (or sheds)
// under the worker's own adaptive gate and returns a release to call when
// the fragment finishes. It is injected by the process wiring (cmd/qserve
// builds it from a serve.Gate) so this package does not import the serve
// layer. A nil AdmitFunc admits everything.
type AdmitFunc func(ctx context.Context) (release func(), err error)

// ExecArgs asks a shard worker to evaluate one plan fragment.
type ExecArgs struct {
	Frag    plan.Fragment
	TraceID string // originating request's trace ID; "" disables tracing
	// BudgetMS is the deadline budget left for this fragment at dispatch,
	// minus the frontend's network slack, in milliseconds. 0 means
	// unbudgeted; negative means the budget was already spent when the
	// fragment was sent. The worker sheds the fragment — in the admission
	// queue or mid-evaluation — once the budget expires, instead of
	// burning capacity on an answer nobody can wait for.
	BudgetMS int64
	// Profile asks the worker to attach a per-fragment execution profile
	// (resource costs, admission wait, cache disposition) to the reply,
	// for the frontend's explain surface.
	Profile bool
}

// ExecReply carries the fragment's mergeable partial result.
type ExecReply struct {
	Result *plan.FragmentResult
	Cached bool          // answered from the shard-local fragment cache
	Trace  *obs.SpanData // shard-side span tree when TraceID was set
	// Prof is the fragment execution profile when Profile was requested.
	// It rides the reply, never the cacheable Result, so a cache-served
	// fragment correctly reports zero cost.
	Prof *plan.FragProfile
	// Sum is a content checksum over Result (SumOK marks it present).
	// net/rpc's gob stream carries no payload integrity of its own: a
	// flipped byte inside a float or count payload decodes "successfully"
	// and would merge into a silently wrong answer. The client recomputes
	// the sum and treats a mismatch as transport corruption.
	Sum   uint32
	SumOK bool
}

// resultSum checksums a fragment result over its canonical JSON encoding
// (deterministic: sorted map keys, fixed struct field order on both ends).
func resultSum(res *plan.FragmentResult) (uint32, bool) {
	b, err := json.Marshal(res)
	if err != nil {
		return 0, false
	}
	return crc32.ChecksumIEEE(b), true
}

// StatsArgs is the (empty) request of Shard.Stats.
type StatsArgs struct{}

// StatsReply carries one shard's executor snapshot.
type StatsReply struct {
	Stats ExecStats
}

// Service is the RPC receiver a shard worker registers under the "Shard"
// name, next to the standard "Worker" service whose Ping keeps the
// frontend pool's health probing working unchanged.
type Service struct {
	ex    *Executor
	admit AdmitFunc
}

// NewService wraps an executor for RPC serving. admit may be nil.
func NewService(ex *Executor, admit AdmitFunc) *Service {
	return &Service{ex: ex, admit: admit}
}

// shardTrace mirrors the cluster package's worker-side trace bootstrap: a
// propagated trace ID starts a shard-side trace whose snapshot rides back
// in the reply for the frontend to attach under its fragment span.
func shardTrace(id, rootName string) (context.Context, *obs.Trace) {
	if id == "" {
		return context.Background(), nil
	}
	tr := obs.NewTrace(id, rootName)
	return obs.ContextWithSpan(context.Background(), tr.Root()), tr
}

func finishTrace(tr *obs.Trace, slot **obs.SpanData) {
	if tr == nil {
		return
	}
	tr.Root().End()
	*slot = tr.Data()
}

// Exec evaluates one fragment. A cached result is returned before
// admission control — a map lookup needs no gate slot. Panics are turned
// into errors so a poisoned fragment cannot take the whole worker down.
func (s *Service) Exec(args *ExecArgs, reply *ExecReply) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("shard: exec panic: %v\n%s", r, debug.Stack())
		}
	}()
	ctx, tr := shardTrace(args.TraceID, "shard:"+args.Frag.Op.String())
	defer finishTrace(tr, &reply.Trace)
	prof := func() *plan.FragProfile {
		if !args.Profile {
			return nil
		}
		return &plan.FragProfile{
			Op:       args.Frag.Op.String(),
			Rows:     [2]int{int(args.Frag.Rows.Lo), int(args.Frag.Rows.Hi)},
			BudgetMS: args.BudgetMS,
		}
	}
	if res, ok := s.ex.Peek(args.Frag); ok {
		// A cached answer costs a map lookup; serve it even on a spent
		// budget — it is faster than explaining the shed.
		reply.Result, reply.Cached = res, true
		reply.Sum, reply.SumOK = resultSum(res)
		if fp := prof(); fp != nil {
			fp.Cached, fp.CacheSource = true, "fragment"
			reply.Prof = fp
		}
		return nil
	}
	if args.BudgetMS < 0 {
		metricBudgetShed.Inc()
		return fastquery.Exhaustedf("shard: fragment arrived with budget already spent (%dms)", args.BudgetMS)
	}
	if args.BudgetMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(args.BudgetMS)*time.Millisecond)
		defer cancel()
	}
	fp := prof()
	if s.admit != nil {
		waitStart := time.Now()
		release, aerr := s.admit(ctx)
		if fp != nil {
			fp.WaitMS = float64(time.Since(waitStart)) / float64(time.Millisecond)
		}
		if aerr != nil {
			if args.BudgetMS > 0 && ctx.Err() == context.DeadlineExceeded {
				// The budget expired while the fragment waited for a slot.
				metricBudgetShed.Inc()
				return fastquery.Exhausted(aerr)
			}
			return aerr
		}
		defer release()
	}
	var cost *obs.Cost
	if fp != nil {
		cost = &obs.Cost{}
		ctx = obs.WithCost(ctx, cost)
	}
	evalStart := time.Now()
	res, cached, err := s.ex.RunCached(ctx, args.Frag)
	if fp != nil {
		fp.EvalMS = float64(time.Since(evalStart)) / float64(time.Millisecond)
		fp.Cost = cost.Snapshot()
		if cached {
			fp.Cached, fp.CacheSource = true, "fragment"
		}
		reply.Prof = fp
	}
	if err != nil {
		if args.BudgetMS > 0 && ctx.Err() == context.DeadlineExceeded {
			// Evaluation outran the budget: the row-checkpointed kernels
			// abort promptly, and the frontend merges a marked partial.
			metricBudgetShed.Inc()
			return fastquery.Exhausted(err)
		}
		return err
	}
	reply.Result = res
	reply.Sum, reply.SumOK = resultSum(res)
	return nil
}

// Stats snapshots the shard's executor counters for the frontend's
// fleet-wide /v1/stats aggregation.
func (s *Service) Stats(args *StatsArgs, reply *StatsReply) error {
	reply.Stats = s.ex.Stats()
	return nil
}

// MetricsArgs is the (empty) request of Shard.Metrics.
type MetricsArgs struct{}

// MetricsReply carries one shard worker's full metrics snapshot for the
// frontend's federated /metrics exposition.
type MetricsReply struct {
	Metrics []obs.Metric
}

// Metrics snapshots the worker's process-wide registry so the frontend
// can expose a fleet-wide federated scrape with shard labels.
func (s *Service) Metrics(args *MetricsArgs, reply *MetricsReply) error {
	reply.Metrics = obs.Default().Snapshot()
	return nil
}

// NewServer builds a cluster RPC server that serves both the "Shard"
// fragment service and the standard "Worker" service (for Ping health
// probes) over the same listeners. dir is the dataset directory the
// embedded Worker would serve sweep RPCs from; shard workers reuse the
// executor's first dataset directory.
func NewServer(svc *Service, dir string) (*cluster.Server, error) {
	srv, err := cluster.NewServer(cluster.NewWorker(dir))
	if err != nil {
		return nil, err
	}
	if err := srv.RegisterName("Shard", svc); err != nil {
		return nil, fmt.Errorf("shard: register service: %w", err)
	}
	return srv, nil
}

// StartLocalShards starts n in-process shard workers over the given
// datasets (name -> directory), one replica each, and returns the
// per-shard address groups plus an idempotent shutdown. Tests and the
// local walkthrough use it the way StartLocalWorkers serves sweeps.
func StartLocalShards(n int, datasets map[string]string, cacheEntries int) (shards [][]string, shutdown func(), err error) {
	var servers []*cluster.Server
	var executors []*Executor
	var once sync.Once
	closeAll := func() {
		once.Do(func() {
			for _, s := range servers {
				s.Close()
			}
			for _, e := range executors {
				e.Close()
			}
		})
	}
	dir := ""
	for i := 0; i < n; i++ {
		ex := NewExecutor(cacheEntries)
		for name, d := range datasets {
			if err := ex.AddDataset(name, d); err != nil {
				closeAll()
				return nil, nil, err
			}
			dir = d
		}
		executors = append(executors, ex)
		srv, err := NewServer(NewService(ex, nil), dir)
		if err != nil {
			closeAll()
			return nil, nil, err
		}
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			closeAll()
			return nil, nil, fmt.Errorf("shard: listen: %w", err)
		}
		servers = append(servers, srv)
		srv.Serve(l)
		shards = append(shards, []string{l.Addr().String()})
	}
	return shards, closeAll, nil
}
