package stats_test

import (
	"fmt"

	"repro/internal/stats"
)

func ExampleSummarize() {
	s, err := stats.Summarize([]float64{1, 2, 3, 4, 100})
	if err != nil {
		panic(err)
	}
	fmt.Println(s.N, s.Min, s.Max, s.Median)
	// Output:
	// 5 1 100 3
}

func ExampleBeam() {
	// A mono-energetic, perfectly collimated beam has zero spread and
	// zero emittance.
	px := []float64{1e10, 1e10, 1e10}
	py := []float64{0, 0, 0}
	y := []float64{0, 0, 0}
	q, err := stats.Beam(px, py, y)
	if err != nil {
		panic(err)
	}
	fmt.Println(q.N, q.EnergySpread, q.Emittance)
	// Output:
	// 3 0 0
}
