package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/histogram"
)

func TestSummarize(t *testing.T) {
	s, err := Summarize([]float64{1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 5 || s.Min != 1 || s.Max != 5 || s.Mean != 3 || s.Median != 3 {
		t.Fatalf("Summary = %+v", s)
	}
	if math.Abs(s.Std-math.Sqrt(2.5)) > 1e-12 {
		t.Fatalf("Std = %g", s.Std)
	}
	if s.Q25 != 2 || s.Q75 != 4 {
		t.Fatalf("quartiles = %g, %g", s.Q25, s.Q75)
	}
	if _, err := Summarize(nil); err == nil {
		t.Fatal("empty input accepted")
	}
	if _, err := Summarize([]float64{1, math.NaN()}); err == nil {
		t.Fatal("NaN accepted")
	}
	one, err := Summarize([]float64{7})
	if err != nil || one.Median != 7 || one.Std != 0 {
		t.Fatalf("single value: %+v, %v", one, err)
	}
}

func TestQuantile(t *testing.T) {
	vals := []float64{4, 1, 3, 2}
	q, err := Quantile(vals, 0)
	if err != nil || q != 1 {
		t.Fatalf("q0 = %g, %v", q, err)
	}
	q, _ = Quantile(vals, 1)
	if q != 4 {
		t.Fatalf("q1 = %g", q)
	}
	q, _ = Quantile(vals, 0.5)
	if q != 2.5 {
		t.Fatalf("median = %g", q)
	}
	if _, err := Quantile(vals, 1.5); err == nil {
		t.Fatal("bad quantile accepted")
	}
	if _, err := Quantile(nil, 0.5); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestHistQuantileMatchesExactOnLargeSamples(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	vals := make([]float64, 50000)
	for i := range vals {
		vals[i] = rng.NormFloat64()
	}
	h, err := histogram.Compute1D("v", vals, histogram.UniformEdges(-5, 5, 500))
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []float64{0.1, 0.5, 0.9} {
		exact, _ := Quantile(vals, q)
		approx, err := HistQuantile(h, q)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(exact-approx) > 0.05 {
			t.Errorf("q=%g: hist %g vs exact %g", q, approx, exact)
		}
	}
	if _, err := HistQuantile(h, -1); err == nil {
		t.Fatal("bad quantile accepted")
	}
	empty := &histogram.Hist1D{Var: "v", Edges: []float64{0, 1}, Counts: []uint64{0}}
	if _, err := HistQuantile(empty, 0.5); err == nil {
		t.Fatal("empty histogram accepted")
	}
}

func TestHistMean(t *testing.T) {
	h := &histogram.Hist1D{
		Var:    "v",
		Edges:  []float64{0, 1, 2},
		Counts: []uint64{1, 3},
	}
	m, err := HistMean(h)
	if err != nil {
		t.Fatal(err)
	}
	want := (0.5*1 + 1.5*3) / 4
	if math.Abs(m-want) > 1e-12 {
		t.Fatalf("HistMean = %g, want %g", m, want)
	}
	empty := &histogram.Hist1D{Var: "v", Edges: []float64{0, 1}, Counts: []uint64{0}}
	if _, err := HistMean(empty); err == nil {
		t.Fatal("empty histogram accepted")
	}
}

func TestCorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{2, 4, 6, 8}
	r, err := Correlation(xs, ys)
	if err != nil || math.Abs(r-1) > 1e-12 {
		t.Fatalf("perfect correlation = %g, %v", r, err)
	}
	neg := []float64{8, 6, 4, 2}
	r, _ = Correlation(xs, neg)
	if math.Abs(r+1) > 1e-12 {
		t.Fatalf("anti-correlation = %g", r)
	}
	if _, err := Correlation(xs, ys[:2]); err == nil {
		t.Fatal("ragged input accepted")
	}
	if _, err := Correlation([]float64{1}, []float64{1}); err == nil {
		t.Fatal("single point accepted")
	}
	if _, err := Correlation([]float64{1, 1}, []float64{1, 2}); err == nil {
		t.Fatal("zero variance accepted")
	}
}

// Property: correlation is symmetric and bounded.
func TestCorrelationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 50
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()
			ys[i] = 0.5*xs[i] + rng.NormFloat64()
		}
		a, err1 := Correlation(xs, ys)
		b, err2 := Correlation(ys, xs)
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(a-b) < 1e-12 && a >= -1-1e-12 && a <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestCorrelationMatrix(t *testing.T) {
	cols := map[string][]float64{
		"a": {1, 2, 3, 4},
		"b": {2, 4, 6, 8},
		"c": {5, 5, 5, 5}, // constant: correlates as 0
	}
	m, err := CorrelationMatrix(cols, []string{"a", "b", "c"})
	if err != nil {
		t.Fatal(err)
	}
	if m[0][0] != 1 || m[1][1] != 1 || m[2][2] != 1 {
		t.Fatal("diagonal not 1")
	}
	if math.Abs(m[0][1]-1) > 1e-12 || m[0][1] != m[1][0] {
		t.Fatalf("corr(a,b) = %g", m[0][1])
	}
	if m[0][2] != 0 {
		t.Fatalf("constant column corr = %g", m[0][2])
	}
	if _, err := CorrelationMatrix(cols, []string{"a", "zz"}); err == nil {
		t.Fatal("missing column accepted")
	}
}

func TestBeam(t *testing.T) {
	// A cold beam: uniform px, zero transverse momentum and offset.
	n := 100
	px := make([]float64, n)
	py := make([]float64, n)
	y := make([]float64, n)
	for i := range px {
		px[i] = 1e10
	}
	q, err := Beam(px, py, y)
	if err != nil {
		t.Fatal(err)
	}
	if q.EnergySpread != 0 || q.RMSy != 0 || q.Emittance != 0 {
		t.Fatalf("cold beam: %+v", q)
	}
	// A warm beam has positive spread and emittance.
	rng := rand.New(rand.NewSource(2))
	for i := range px {
		px[i] = 1e10 * (1 + 0.05*rng.NormFloat64())
		py[i] = 1e8 * rng.NormFloat64()
		y[i] = 1e-5 * rng.NormFloat64()
	}
	q, err = Beam(px, py, y)
	if err != nil {
		t.Fatal(err)
	}
	if q.EnergySpread < 0.03 || q.EnergySpread > 0.07 {
		t.Fatalf("EnergySpread = %g", q.EnergySpread)
	}
	if q.RMSy <= 0 || q.Emittance <= 0 {
		t.Fatalf("warm beam: %+v", q)
	}
	if _, err := Beam(nil, nil, nil); err == nil {
		t.Fatal("empty beam accepted")
	}
	if _, err := Beam(px, py[:10], y); err == nil {
		t.Fatal("ragged beam accepted")
	}
}
