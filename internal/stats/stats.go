// Package stats provides the "more traditional data analysis techniques"
// the paper's conclusion proposes coupling with the visual analysis:
// summary statistics over selections, histogram-derived quantiles, beam
// quality figures (relative energy spread, RMS emittance proxy) and
// correlation matrices over variable sets.
package stats

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/histogram"
)

// Summary holds the standard single-variable statistics.
type Summary struct {
	N         int
	Min, Max  float64
	Mean, Std float64
	Median    float64
	Q25, Q75  float64
}

// Summarize computes summary statistics of values.
func Summarize(values []float64) (Summary, error) {
	if len(values) == 0 {
		return Summary{}, fmt.Errorf("stats: empty input")
	}
	s := Summary{N: len(values), Min: values[0], Max: values[0]}
	var sum float64
	for _, v := range values {
		if math.IsNaN(v) {
			return Summary{}, fmt.Errorf("stats: NaN input")
		}
		sum += v
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
	}
	s.Mean = sum / float64(s.N)
	var ss float64
	for _, v := range values {
		d := v - s.Mean
		ss += d * d
	}
	if s.N > 1 {
		s.Std = math.Sqrt(ss / float64(s.N-1))
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	s.Median = quantileSorted(sorted, 0.5)
	s.Q25 = quantileSorted(sorted, 0.25)
	s.Q75 = quantileSorted(sorted, 0.75)
	return s, nil
}

// quantileSorted interpolates the q-quantile of a sorted slice.
func quantileSorted(sorted []float64, q float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	i := int(math.Floor(pos))
	frac := pos - float64(i)
	if i+1 >= len(sorted) {
		return sorted[len(sorted)-1]
	}
	return sorted[i]*(1-frac) + sorted[i+1]*frac
}

// Quantile computes the q-quantile (0..1) of values.
func Quantile(values []float64, q float64) (float64, error) {
	if len(values) == 0 {
		return 0, fmt.Errorf("stats: empty input")
	}
	if q < 0 || q > 1 {
		return 0, fmt.Errorf("stats: quantile %g outside [0,1]", q)
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q), nil
}

// HistQuantile estimates the q-quantile from a histogram by linear
// interpolation within the containing bin — the statistics-over-histograms
// approach the paper's network-analysis predecessors used to avoid
// touching raw data.
func HistQuantile(h *histogram.Hist1D, q float64) (float64, error) {
	if q < 0 || q > 1 {
		return 0, fmt.Errorf("stats: quantile %g outside [0,1]", q)
	}
	total := h.Total()
	if total == 0 {
		return 0, fmt.Errorf("stats: empty histogram")
	}
	target := q * float64(total)
	var acc float64
	for i, c := range h.Counts {
		next := acc + float64(c)
		if next >= target && c > 0 {
			frac := (target - acc) / float64(c)
			if frac < 0 {
				frac = 0
			}
			if frac > 1 {
				frac = 1
			}
			return h.Edges[i] + frac*(h.Edges[i+1]-h.Edges[i]), nil
		}
		acc = next
	}
	return h.Edges[len(h.Edges)-1], nil
}

// HistMean estimates the mean from a histogram using bin midpoints.
func HistMean(h *histogram.Hist1D) (float64, error) {
	total := h.Total()
	if total == 0 {
		return 0, fmt.Errorf("stats: empty histogram")
	}
	var sum float64
	for i, c := range h.Counts {
		mid := (h.Edges[i] + h.Edges[i+1]) / 2
		sum += mid * float64(c)
	}
	return sum / float64(total), nil
}

// Correlation returns the Pearson correlation coefficient of two columns.
func Correlation(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, fmt.Errorf("stats: length mismatch %d vs %d", len(xs), len(ys))
	}
	if len(xs) < 2 {
		return 0, fmt.Errorf("stats: need at least 2 points")
	}
	var mx, my float64
	for i := range xs {
		mx += xs[i]
		my += ys[i]
	}
	n := float64(len(xs))
	mx /= n
	my /= n
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, fmt.Errorf("stats: zero variance")
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// CorrelationMatrix computes the pairwise Pearson correlations of named
// columns, returned in the order of names (row-major).
func CorrelationMatrix(cols map[string][]float64, names []string) ([][]float64, error) {
	m := make([][]float64, len(names))
	for i := range m {
		m[i] = make([]float64, len(names))
		m[i][i] = 1
	}
	for i := 0; i < len(names); i++ {
		xi, ok := cols[names[i]]
		if !ok {
			return nil, fmt.Errorf("stats: missing column %q", names[i])
		}
		for j := i + 1; j < len(names); j++ {
			xj, ok := cols[names[j]]
			if !ok {
				return nil, fmt.Errorf("stats: missing column %q", names[j])
			}
			r, err := Correlation(xi, xj)
			if err != nil {
				// Constant columns correlate as zero rather than failing
				// the whole matrix.
				r = 0
			}
			m[i][j], m[j][i] = r, r
		}
	}
	return m, nil
}

// BeamQuality holds the accelerator-physics figures of merit the paper's
// collaborators read off the selections.
type BeamQuality struct {
	N int
	// MeanPx is the mean longitudinal momentum.
	MeanPx float64
	// EnergySpread is the relative RMS momentum spread std(px)/mean(px),
	// the "low energy spread" criterion of Section IV-B.
	EnergySpread float64
	// RMSy is the RMS transverse position (beam size).
	RMSy float64
	// Emittance is the RMS transverse trace-space emittance proxy
	// sqrt(<y²><y'²> − <y y'>²) with y' = py/px.
	Emittance float64
}

// Beam computes beam quality figures from particle columns.
func Beam(px, py, y []float64) (BeamQuality, error) {
	n := len(px)
	if n == 0 {
		return BeamQuality{}, fmt.Errorf("stats: empty beam")
	}
	if len(py) != n || len(y) != n {
		return BeamQuality{}, fmt.Errorf("stats: ragged beam columns")
	}
	q := BeamQuality{N: n}
	var sumPx float64
	for _, v := range px {
		sumPx += v
	}
	q.MeanPx = sumPx / float64(n)
	var ssPx float64
	for _, v := range px {
		d := v - q.MeanPx
		ssPx += d * d
	}
	if q.MeanPx != 0 {
		q.EnergySpread = math.Sqrt(ssPx/float64(n)) / math.Abs(q.MeanPx)
	}
	// Transverse moments.
	var my, myp float64
	yp := make([]float64, n)
	for i := range y {
		if px[i] != 0 {
			yp[i] = py[i] / px[i]
		}
		my += y[i]
		myp += yp[i]
	}
	my /= float64(n)
	myp /= float64(n)
	var syy, spp, syp float64
	for i := range y {
		dy, dp := y[i]-my, yp[i]-myp
		syy += dy * dy
		spp += dp * dp
		syp += dy * dp
	}
	syy /= float64(n)
	spp /= float64(n)
	syp /= float64(n)
	q.RMSy = math.Sqrt(syy)
	if det := syy*spp - syp*syp; det > 0 {
		q.Emittance = math.Sqrt(det)
	}
	return q, nil
}
