package report

import (
	"encoding/base64"
	"fmt"
	"html/template"
	"io"
)

// Section is one block of an HTML report: prose, an optional table and an
// optional embedded PNG image.
type Section struct {
	Title string
	Text  string
	Table *Table
	PNG   []byte // embedded as a data URI
}

// HTMLReport is a self-contained experiment report: all images are
// embedded, so the output is a single portable file.
type HTMLReport struct {
	Title    string
	Intro    string
	Sections []Section
}

var htmlTemplate = template.Must(template.New("report").Funcs(template.FuncMap{
	"datauri": func(png []byte) template.URL {
		return template.URL("data:image/png;base64," + base64.StdEncoding.EncodeToString(png))
	},
}).Parse(`<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>{{.Title}}</title>
<style>
body { font-family: sans-serif; max-width: 70em; margin: 2em auto; padding: 0 1em; color: #222; }
h1 { border-bottom: 2px solid #444; padding-bottom: .3em; }
h2 { margin-top: 2em; color: #334; }
table { border-collapse: collapse; margin: 1em 0; }
th, td { border: 1px solid #bbb; padding: .3em .7em; font-variant-numeric: tabular-nums; text-align: right; }
th { background: #eef; }
td:first-child, th:first-child { text-align: left; }
img { max-width: 100%; border: 1px solid #ccc; margin: .5em 0; }
p.caption { color: #555; }
</style>
</head>
<body>
<h1>{{.Title}}</h1>
{{if .Intro}}<p>{{.Intro}}</p>{{end}}
{{range .Sections}}
<h2>{{.Title}}</h2>
{{if .Text}}<p class="caption">{{.Text}}</p>{{end}}
{{if .Table}}
<table>
<tr>{{range .Table.Columns}}<th>{{.}}</th>{{end}}</tr>
{{range .Table.Rows}}<tr>{{range .}}<td>{{.}}</td>{{end}}</tr>{{end}}
</table>
{{end}}
{{if .PNG}}<img src="{{datauri .PNG}}" alt="{{.Title}}">{{end}}
{{end}}
</body>
</html>
`))

// WriteHTML renders the report.
func (r *HTMLReport) WriteHTML(w io.Writer) error {
	if err := htmlTemplate.Execute(w, r); err != nil {
		return fmt.Errorf("report: render html: %w", err)
	}
	return nil
}
