package report

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func TestTableFprint(t *testing.T) {
	tb := NewTable("Demo", "a", "long_column", "c")
	tb.AddRow("1", "2", "3")
	tb.AddRow("very-long-cell", "x", "y")
	var sb strings.Builder
	if err := tb.Fprint(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "Demo") || !strings.Contains(out, "long_column") {
		t.Fatalf("output missing headers:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, separator, two rows
		t.Fatalf("expected 5 lines, got %d:\n%s", len(lines), out)
	}
	// Aligned: the first column is padded to the widest cell.
	if !strings.HasPrefix(lines[3], "1              ") {
		t.Fatalf("row misaligned: %q", lines[3])
	}
}

func TestTableFprintCSV(t *testing.T) {
	tb := NewTable("T", "x", "y")
	tb.AddRow("1", "2")
	var sb strings.Builder
	if err := tb.FprintCSV(&sb); err != nil {
		t.Fatal(err)
	}
	want := "# T\nx,y\n1,2\n"
	if sb.String() != want {
		t.Fatalf("CSV = %q, want %q", sb.String(), want)
	}
}

func TestSeconds(t *testing.T) {
	if got := Seconds(1500 * time.Millisecond); got != "1.500000" {
		t.Fatalf("Seconds = %q", got)
	}
}

func TestMedianTime(t *testing.T) {
	var calls int
	d, err := MedianTime(5, func() error {
		calls++
		time.Sleep(time.Millisecond)
		return nil
	})
	if err != nil || calls != 6 { // 1 warm-up + 5 timed
		t.Fatalf("calls=%d err=%v", calls, err)
	}
	if d < 500*time.Microsecond {
		t.Fatalf("median %v implausibly small", d)
	}
	// Zero runs clamps to one timed run (plus warm-up).
	calls = 0
	if _, err := MedianTime(0, func() error { calls++; return nil }); err != nil || calls != 2 {
		t.Fatalf("clamp failed: calls=%d err=%v", calls, err)
	}
	boom := errors.New("boom")
	if _, err := MedianTime(3, func() error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("error not propagated: %v", err)
	}
}

func TestHTMLReport(t *testing.T) {
	tb := NewTable("", "nodes", "time_s")
	tb.AddRow("1", "2.5")
	tb.AddRow("2", "1.3")
	rep := &HTMLReport{
		Title: "Demo <Report>",
		Intro: "An intro.",
		Sections: []Section{
			{Title: "Timings", Text: "caption", Table: tb},
			{Title: "Image", PNG: []byte{0x89, 0x50, 0x4E, 0x47}},
		},
	}
	var sb strings.Builder
	if err := rep.WriteHTML(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"Demo &lt;Report&gt;", // escaped title
		"<th>nodes</th>",
		"<td>2.5</td>",
		"data:image/png;base64,iVBORw==",
		"An intro.",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("html missing %q:\n%s", want, out[:min(len(out), 1200)])
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
