// Package report provides small helpers shared by the benchmark
// executables: aligned text tables, CSV output and repeated-run timing.
package report

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Table is a titled result table.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends one row; the cell count must match the columns.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Fprint writes the table with aligned columns.
func (t *Table) Fprint(w io.Writer) error {
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", t.Title); err != nil {
			return err
		}
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) string {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		return strings.TrimRight(strings.Join(parts, "  "), " ")
	}
	if _, err := fmt.Fprintln(w, line(t.Columns)); err != nil {
		return err
	}
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	if _, err := fmt.Fprintln(w, line(sep)); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// FprintCSV writes the table as CSV (title as a comment line).
func (t *Table) FprintCSV(w io.Writer) error {
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "# %s\n", t.Title); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w, strings.Join(t.Columns, ",")); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

// Seconds formats a duration as fractional seconds.
func Seconds(d time.Duration) string {
	return fmt.Sprintf("%.6f", d.Seconds())
}

// MedianTime runs f once untimed (warm-up: lazy index sections, page
// cache) and then `runs` more times (at least once), returning the median
// wall time. The first error aborts.
func MedianTime(runs int, f func() error) (time.Duration, error) {
	if runs < 1 {
		runs = 1
	}
	if err := f(); err != nil {
		return 0, err
	}
	times := make([]time.Duration, 0, runs)
	for i := 0; i < runs; i++ {
		start := time.Now()
		if err := f(); err != nil {
			return 0, err
		}
		times = append(times, time.Since(start))
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	return times[len(times)/2], nil
}
