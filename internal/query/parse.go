package query

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"unicode"
)

// Parse parses a query expression. Grammar:
//
//	expr    = or
//	or      = and { "||" and }
//	and     = unary { "&&" unary }
//	unary   = "!" unary | primary
//	primary = "(" expr ")" | ident cmpop number | number cmpop ident
//	        | ident "in" "(" number { "," number } ")"
//	cmpop   = "<" | "<=" | ">" | ">=" | "==" | "!="
//
// Identifiers are Go-like ([A-Za-z_][A-Za-z0-9_]*); numbers accept the
// usual float syntax including scientific notation.
func Parse(src string) (Expr, error) {
	p := &parser{lex: newLexer(src)}
	if err := p.next(); err != nil {
		return nil, err
	}
	e, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tokEOF {
		return nil, p.errorf("unexpected %q after expression", p.tok.text)
	}
	return e, nil
}

// MustParse is Parse that panics on error; for tests and constants.
func MustParse(src string) Expr {
	e, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return e
}

type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokOp     // < <= > >= == !=
	tokAndAnd // &&
	tokOrOr   // ||
	tokBang   // !
	tokLParen
	tokRParen
	tokComma
)

type token struct {
	kind tokKind
	text string
	pos  int
	val  float64 // for tokNumber
	op   Op      // for tokOp
}

type lexer struct {
	src string
	pos int
}

func newLexer(src string) *lexer { return &lexer{src: src} }

func (l *lexer) lex() (token, error) {
	for l.pos < len(l.src) && unicode.IsSpace(rune(l.src[l.pos])) {
		l.pos++
	}
	start := l.pos
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: start}, nil
	}
	c := l.src[l.pos]
	switch {
	case c == '(':
		l.pos++
		return token{kind: tokLParen, text: "(", pos: start}, nil
	case c == ')':
		l.pos++
		return token{kind: tokRParen, text: ")", pos: start}, nil
	case c == ',':
		l.pos++
		return token{kind: tokComma, text: ",", pos: start}, nil
	case c == '&':
		if strings.HasPrefix(l.src[l.pos:], "&&") {
			l.pos += 2
			return token{kind: tokAndAnd, text: "&&", pos: start}, nil
		}
		return token{}, fmt.Errorf("query: position %d: single '&' (did you mean '&&'?)", start)
	case c == '|':
		if strings.HasPrefix(l.src[l.pos:], "||") {
			l.pos += 2
			return token{kind: tokOrOr, text: "||", pos: start}, nil
		}
		return token{}, fmt.Errorf("query: position %d: single '|' (did you mean '||'?)", start)
	case c == '!':
		if strings.HasPrefix(l.src[l.pos:], "!=") {
			l.pos += 2
			return token{kind: tokOp, text: "!=", pos: start, op: NE}, nil
		}
		l.pos++
		return token{kind: tokBang, text: "!", pos: start}, nil
	case c == '<':
		if strings.HasPrefix(l.src[l.pos:], "<=") {
			l.pos += 2
			return token{kind: tokOp, text: "<=", pos: start, op: LE}, nil
		}
		l.pos++
		return token{kind: tokOp, text: "<", pos: start, op: LT}, nil
	case c == '>':
		if strings.HasPrefix(l.src[l.pos:], ">=") {
			l.pos += 2
			return token{kind: tokOp, text: ">=", pos: start, op: GE}, nil
		}
		l.pos++
		return token{kind: tokOp, text: ">", pos: start, op: GT}, nil
	case c == '=':
		if strings.HasPrefix(l.src[l.pos:], "==") {
			l.pos += 2
			return token{kind: tokOp, text: "==", pos: start, op: EQ}, nil
		}
		// Accept single '=' as equality for user convenience.
		l.pos++
		return token{kind: tokOp, text: "=", pos: start, op: EQ}, nil
	case isIdentStart(c):
		for l.pos < len(l.src) && isIdentCont(l.src[l.pos]) {
			l.pos++
		}
		return token{kind: tokIdent, text: l.src[start:l.pos], pos: start}, nil
	case isNumberStart(c):
		return l.lexNumber(start)
	default:
		return token{}, fmt.Errorf("query: position %d: unexpected character %q", start, c)
	}
}

func (l *lexer) lexNumber(start int) (token, error) {
	seenE := false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c >= '0' && c <= '9' || c == '.':
			l.pos++
		case c == 'e' || c == 'E':
			seenE = true
			l.pos++
			if l.pos < len(l.src) && (l.src[l.pos] == '+' || l.src[l.pos] == '-') {
				l.pos++
			}
		case (c == '+' || c == '-') && l.pos == start:
			l.pos++
		default:
			goto done
		}
	}
done:
	_ = seenE
	text := l.src[start:l.pos]
	v, err := strconv.ParseFloat(text, 64)
	if err != nil {
		return token{}, fmt.Errorf("query: position %d: bad number %q", start, text)
	}
	return token{kind: tokNumber, text: text, pos: start, val: v}, nil
}

func isIdentStart(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func isIdentCont(c byte) bool { return isIdentStart(c) || c >= '0' && c <= '9' }

func isNumberStart(c byte) bool {
	return c >= '0' && c <= '9' || c == '.' || c == '-' || c == '+'
}

type parser struct {
	lex *lexer
	tok token
}

func (p *parser) next() error {
	t, err := p.lex.lex()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) errorf(format string, args ...interface{}) error {
	return fmt.Errorf("query: position %d: %s", p.tok.pos, fmt.Sprintf(format, args...))
}

func (p *parser) parseOr() (Expr, error) {
	first, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	terms := []Expr{first}
	for p.tok.kind == tokOrOr {
		if err := p.next(); err != nil {
			return nil, err
		}
		t, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		terms = append(terms, t)
	}
	if len(terms) == 1 {
		return terms[0], nil
	}
	return &Or{Terms: terms}, nil
}

func (p *parser) parseAnd() (Expr, error) {
	first, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	terms := []Expr{first}
	for p.tok.kind == tokAndAnd {
		if err := p.next(); err != nil {
			return nil, err
		}
		t, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		terms = append(terms, t)
	}
	if len(terms) == 1 {
		return terms[0], nil
	}
	return &And{Terms: terms}, nil
}

func (p *parser) parseUnary() (Expr, error) {
	if p.tok.kind == tokBang {
		if err := p.next(); err != nil {
			return nil, err
		}
		t, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Not{Term: t}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	switch p.tok.kind {
	case tokLParen:
		if err := p.next(); err != nil {
			return nil, err
		}
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if p.tok.kind != tokRParen {
			return nil, p.errorf("expected ')', got %q", p.tok.text)
		}
		return e, p.next()
	case tokIdent:
		name := p.tok.text
		if err := p.next(); err != nil {
			return nil, err
		}
		if p.tok.kind == tokIdent && strings.EqualFold(p.tok.text, "in") {
			return p.parseInList(name)
		}
		if p.tok.kind != tokOp {
			return nil, p.errorf("expected comparison operator after %q, got %q", name, p.tok.text)
		}
		op := p.tok.op
		if err := p.next(); err != nil {
			return nil, err
		}
		if p.tok.kind != tokNumber {
			return nil, p.errorf("expected number after operator, got %q", p.tok.text)
		}
		v := p.tok.val
		if math.IsNaN(v) {
			return nil, p.errorf("NaN constant not allowed")
		}
		return &Compare{Var: name, Op: op, Value: v}, p.next()
	case tokNumber:
		// `number op ident` form, e.g. `5 < x`.
		v := p.tok.val
		if err := p.next(); err != nil {
			return nil, err
		}
		if p.tok.kind != tokOp {
			return nil, p.errorf("expected comparison operator after number, got %q", p.tok.text)
		}
		op := p.tok.op
		if err := p.next(); err != nil {
			return nil, err
		}
		if p.tok.kind != tokIdent {
			return nil, p.errorf("expected variable after operator, got %q", p.tok.text)
		}
		name := p.tok.text
		return &Compare{Var: name, Op: op.Flip(), Value: v}, p.next()
	default:
		return nil, p.errorf("expected condition, got %q", p.tok.text)
	}
}

func (p *parser) parseInList(name string) (Expr, error) {
	if err := p.next(); err != nil { // consume 'in'
		return nil, err
	}
	if p.tok.kind != tokLParen {
		return nil, p.errorf("expected '(' after 'in', got %q", p.tok.text)
	}
	if err := p.next(); err != nil {
		return nil, err
	}
	var values []float64
	for {
		if p.tok.kind != tokNumber {
			return nil, p.errorf("expected number in 'in' list, got %q", p.tok.text)
		}
		values = append(values, p.tok.val)
		if err := p.next(); err != nil {
			return nil, err
		}
		if p.tok.kind == tokComma {
			if err := p.next(); err != nil {
				return nil, err
			}
			continue
		}
		break
	}
	if p.tok.kind != tokRParen {
		return nil, p.errorf("expected ')' to close 'in' list, got %q", p.tok.text)
	}
	return NewIn(name, values), p.next()
}
