package query_test

import (
	"fmt"

	"repro/internal/query"
)

func ExampleParse() {
	// The paper's example query: high momentum particles in the upper
	// half of the beam (Section III-B).
	e, err := query.Parse("px > 1e9 && py < 1e8 && y > 0")
	if err != nil {
		panic(err)
	}
	particle := map[string]float64{"px": 2e9, "py": 5e7, "y": 1e-5}
	fmt.Println(e.Eval(func(name string) float64 { return particle[name] }))
	fmt.Println(query.Vars(e))
	// Output:
	// true
	// [px py y]
}

func ExampleRangeSet() {
	e := query.MustParse("px > 1e9 && px < 5e9 && y > 0")
	rs, ok := query.RangeSet(e)
	fmt.Println(ok)
	fmt.Println(rs["px"])
	// Output:
	// true
	// (1e+09, 5e+09)
}

func ExamplePrecision() {
	// FastBit precision binning: 1e-5 is a 1-digit constant, 2.5e8 has
	// two digits (Section II-B).
	fmt.Println(query.Precision(1e-5))
	fmt.Println(query.Precision(2.5e8))
	fmt.Println(query.Precision(8.872e10))
	// Output:
	// 1
	// 2
	// 4
}
