// Package query implements the compound Boolean range query language used
// to drive data selection, e.g.
//
//	px > 1e9 && py < 1e8 && y > 0
//	id in (17, 99, 2048)
//	!(x < 0.5) || px >= 2.5e8
//
// Queries of this form are composed interactively from the parallel
// coordinates display (paper Section III-B) and passed out-of-band to the
// I/O layer, where they are evaluated against bitmap indices or by a
// sequential scan.
package query

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Op is a comparison operator.
type Op int

// Comparison operators supported in range conditions.
const (
	LT Op = iota // <
	LE           // <=
	GT           // >
	GE           // >=
	EQ           // ==
	NE           // !=
)

func (o Op) String() string {
	switch o {
	case LT:
		return "<"
	case LE:
		return "<="
	case GT:
		return ">"
	case GE:
		return ">="
	case EQ:
		return "=="
	case NE:
		return "!="
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// Flip returns the operator that preserves meaning when the operands of a
// comparison are swapped (e.g. `5 < x` becomes `x > 5`).
func (o Op) Flip() Op {
	switch o {
	case LT:
		return GT
	case LE:
		return GE
	case GT:
		return LT
	case GE:
		return LE
	default:
		return o
	}
}

// Expr is a parsed query expression.
type Expr interface {
	fmt.Stringer
	// Eval evaluates the expression for one record; get returns the value
	// of a named variable for that record.
	Eval(get func(name string) float64) bool
	// walk visits the expression tree.
	walk(fn func(Expr))
}

// Compare is a single range condition `var op value`.
type Compare struct {
	Var   string
	Op    Op
	Value float64
}

// Eval implements Expr.
func (c *Compare) Eval(get func(string) float64) bool {
	v := get(c.Var)
	switch c.Op {
	case LT:
		return v < c.Value
	case LE:
		return v <= c.Value
	case GT:
		return v > c.Value
	case GE:
		return v >= c.Value
	case EQ:
		return v == c.Value
	case NE:
		return v != c.Value
	default:
		return false
	}
}

func (c *Compare) String() string {
	return fmt.Sprintf("%s %s %s", c.Var, c.Op, formatNumber(c.Value))
}

func (c *Compare) walk(fn func(Expr)) { fn(c) }

// In is a membership condition `var in (v1, v2, …)`, used for particle
// identifier queries. Values are kept sorted.
type In struct {
	Var    string
	Values []float64
}

// NewIn builds a sorted, deduplicated In condition.
func NewIn(name string, values []float64) *In {
	vs := append([]float64(nil), values...)
	sort.Float64s(vs)
	out := vs[:0]
	for i, v := range vs {
		if i == 0 || v != vs[i-1] {
			out = append(out, v)
		}
	}
	return &In{Var: name, Values: out}
}

// Contains reports membership by binary search.
func (in *In) Contains(v float64) bool {
	i := sort.SearchFloat64s(in.Values, v)
	return i < len(in.Values) && in.Values[i] == v
}

// Eval implements Expr.
func (in *In) Eval(get func(string) float64) bool { return in.Contains(get(in.Var)) }

func (in *In) String() string {
	parts := make([]string, len(in.Values))
	for i, v := range in.Values {
		parts[i] = formatNumber(v)
	}
	return fmt.Sprintf("%s in (%s)", in.Var, strings.Join(parts, ", "))
}

func (in *In) walk(fn func(Expr)) { fn(in) }

// And is the conjunction of two or more subexpressions.
type And struct{ Terms []Expr }

// Eval implements Expr.
func (a *And) Eval(get func(string) float64) bool {
	for _, t := range a.Terms {
		if !t.Eval(get) {
			return false
		}
	}
	return true
}

func (a *And) String() string { return joinTerms(a.Terms, " && ") }

func (a *And) walk(fn func(Expr)) {
	fn(a)
	for _, t := range a.Terms {
		t.walk(fn)
	}
}

// Or is the disjunction of two or more subexpressions.
type Or struct{ Terms []Expr }

// Eval implements Expr.
func (o *Or) Eval(get func(string) float64) bool {
	for _, t := range o.Terms {
		if t.Eval(get) {
			return true
		}
	}
	return false
}

func (o *Or) String() string { return joinTerms(o.Terms, " || ") }

func (o *Or) walk(fn func(Expr)) {
	fn(o)
	for _, t := range o.Terms {
		t.walk(fn)
	}
}

// Not negates a subexpression.
type Not struct{ Term Expr }

// Eval implements Expr.
func (n *Not) Eval(get func(string) float64) bool { return !n.Term.Eval(get) }

func (n *Not) String() string { return "!(" + n.Term.String() + ")" }

func (n *Not) walk(fn func(Expr)) {
	fn(n)
	n.Term.walk(fn)
}

func joinTerms(terms []Expr, sep string) string {
	parts := make([]string, len(terms))
	for i, t := range terms {
		switch t.(type) {
		case *And, *Or:
			parts[i] = "(" + t.String() + ")"
		default:
			parts[i] = t.String()
		}
	}
	return strings.Join(parts, sep)
}

// Vars returns the sorted set of variable names referenced by e.
func Vars(e Expr) []string {
	seen := map[string]bool{}
	e.walk(func(x Expr) {
		switch c := x.(type) {
		case *Compare:
			seen[c.Var] = true
		case *In:
			seen[c.Var] = true
		}
	})
	out := make([]string, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

func formatNumber(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Interval is a half-open-ish numeric interval with optional open bounds.
type Interval struct {
	Lo, Hi         float64 // bounds; ±Inf when unbounded
	LoOpen, HiOpen bool    // true when the bound itself is excluded
}

func (iv Interval) String() string {
	lb, rb := "[", "]"
	if iv.LoOpen {
		lb = "("
	}
	if iv.HiOpen {
		rb = ")"
	}
	return fmt.Sprintf("%s%g, %g%s", lb, iv.Lo, iv.Hi, rb)
}

// Contains reports whether v lies in the interval.
func (iv Interval) Contains(v float64) bool {
	if v < iv.Lo || (iv.LoOpen && v == iv.Lo) {
		return false
	}
	if v > iv.Hi || (iv.HiOpen && v == iv.Hi) {
		return false
	}
	return true
}
