package query

import (
	"math/rand"
	"reflect"
	"testing"
)

// TestStringRoundTripStructural checks Parse(e.String()) ≡ e (structural
// equality, not just a stable rendering) for parsed expressions.
func TestStringRoundTripStructural(t *testing.T) {
	srcs := []string{
		"x > 1",
		"x >= 1.5e-3",
		"px > 1e9 && py < 1e8 && y > 0",
		"!(x < 0.5) || px >= 2.5e8",
		"id in (17, 99, 2048)",
		"x != 0",
		"x == -0.25",
		"(a > 1 || b < 2) && c >= 3",
		"a > 1 || b < 2 && c >= 3",
		"!(a > 1 && b < 2)",
		"!!(a > 1)",
		"5 < x",
		"x > 1e+09",
		"x > -1.7976931348623157e+308",
	}
	for _, src := range srcs {
		e, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		back, err := Parse(e.String())
		if err != nil {
			t.Fatalf("Parse(%q.String() = %q): %v", src, e.String(), err)
		}
		if !reflect.DeepEqual(e, back) {
			t.Errorf("round trip of %q: got %q (%#v), want %#v", src, e.String(), back, e)
		}
	}
}

// TestCanonicalEquivalentForms checks that differently written but
// equivalent queries canonicalize to the same rendering — the property the
// serving layer's plan cache depends on.
func TestCanonicalEquivalentForms(t *testing.T) {
	groups := [][]string{
		{"x > 1 && y < 2", "y < 2 && x > 1"},
		{"x > 1 && x > 3", "x > 3 && x > 1", "x > 3"},
		{"x > 1 && x <= 5 && y < 2", "y < 2 && x <= 5 && x > 1"},
		{"x >= 2 && x <= 2", "x == 2"},
		{"a > 1 || b < 2", "b < 2 || a > 1"},
		{"a > 1 || a > 1", "a > 1"},
		{"(a > 1 && b < 2) || c == 3", "c == 3 || (b < 2 && a > 1)"},
		{"!!(a > 1)", "a > 1"},
		{"a > 1 && (b < 2 && c > 3)", "c > 3 && b < 2 && a > 1"},
		{"id in (3, 1, 2, 2)", "id in (1, 2, 3)"},
		{"x != 5 && y > 0", "y > 0 && x != 5"},
	}
	for _, group := range groups {
		want := ""
		for i, src := range group {
			c := Canonical(MustParse(src))
			if i == 0 {
				want = c.String()
				continue
			}
			if got := c.String(); got != want {
				t.Errorf("Canonical(%q) = %q, want %q (from %q)", src, got, want, group[0])
			}
		}
	}
}

// TestCanonicalPreservesSemantics evaluates original and canonical forms
// against random records.
func TestCanonicalPreservesSemantics(t *testing.T) {
	srcs := []string{
		"x > 0.5",
		"x > 0.2 && x < 0.8",
		"x > 0.2 && x > 0.4 && y < 0.9",
		"x >= 0.3 && x <= 0.3",
		"x > 0.6 && x < 0.4", // contradiction
		"x < 0.3 || y > 0.7",
		"!(x < 0.5) && y != 0.25",
		"id in (1, 3, 5) && x > 0.1",
		"(x > 0.2 || y < 0.5) && !(x > 0.9)",
	}
	rng := rand.New(rand.NewSource(42))
	for _, src := range srcs {
		orig := MustParse(src)
		canon := Canonical(orig)
		for trial := 0; trial < 200; trial++ {
			rec := map[string]float64{
				"x":  rng.Float64(),
				"y":  rng.Float64(),
				"id": float64(rng.Intn(8)),
			}
			get := func(name string) float64 { return rec[name] }
			if orig.Eval(get) != canon.Eval(get) {
				t.Fatalf("%q: canonical form %q disagrees on record %v", src, canon.String(), rec)
			}
		}
	}
}

// TestCanonicalIdempotent checks Canonical(Canonical(e)) ≡ Canonical(e),
// and that the canonical form survives a parse round-trip.
func TestCanonicalIdempotent(t *testing.T) {
	srcs := []string{
		"x > 1 && y < 2 && x <= 5",
		"x > 0.6 && x < 0.4",
		"a > 1 || (b < 2 && c > 3) || a > 1",
		"!(x < 0.5) || px >= 2.5e8",
		"id in (9, 1, 4)",
	}
	for _, src := range srcs {
		c1 := Canonical(MustParse(src))
		c2 := Canonical(c1)
		if !reflect.DeepEqual(c1, c2) {
			t.Errorf("%q: Canonical not idempotent: %q vs %q", src, c1.String(), c2.String())
		}
		back, err := Parse(c1.String())
		if err != nil {
			t.Fatalf("%q: canonical form %q does not reparse: %v", src, c1.String(), err)
		}
		if !reflect.DeepEqual(Canonical(back), c1) {
			t.Errorf("%q: canonical form %q not stable under reparse", src, c1.String())
		}
	}
}

// TestCanonicalContradiction ensures an empty merged interval still
// matches nothing rather than being dropped.
func TestCanonicalContradiction(t *testing.T) {
	c := Canonical(MustParse("x > 5 && x < 3"))
	get := func(string) float64 { return 4 }
	if c.Eval(get) {
		t.Fatalf("contradictory query %q canonicalized to a satisfiable form", c.String())
	}
}
