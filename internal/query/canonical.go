package query

import (
	"math"
	"sort"
)

// Canonical returns a semantically equivalent expression in a canonical
// form: two queries that select the same records through reordered or
// redundantly split range conditions (`x > 1 && y < 2` versus
// `y < 2 && x > 1`, or `x > 1 && x > 3` versus `x > 3`) canonicalize to
// structurally identical trees with identical String() renderings. This is
// what makes a query usable as a cache key in the serving layer.
//
// The transformation:
//
//   - flattens nested conjunctions and disjunctions,
//   - intersects all interval-representable comparisons on the same
//     variable inside a conjunction into at most two comparisons
//     (lower bound, upper bound) or one equality,
//   - sorts the terms of And/Or by their canonical rendering and removes
//     duplicates,
//   - eliminates double negation, and
//   - re-normalizes In value lists (sorted, deduplicated).
//
// Canonical never changes what a query matches, and it is idempotent:
// Canonical(Canonical(e)) is structurally identical to Canonical(e).
// The result shares no And/Or/Not nodes with the input, but may share
// Compare/In leaves that were already canonical.
func Canonical(e Expr) Expr {
	switch t := e.(type) {
	case *Compare:
		return t
	case *In:
		return NewIn(t.Var, t.Values)
	case *Not:
		inner := Canonical(t.Term)
		if n, ok := inner.(*Not); ok {
			return n.Term // !!x == x
		}
		return &Not{Term: inner}
	case *And:
		return canonicalAnd(t)
	case *Or:
		return canonicalOr(t)
	default:
		return e
	}
}

// canonicalAnd flattens, merges per-variable ranges, sorts and dedups.
func canonicalAnd(a *And) Expr {
	flat := flatten(a.Terms, func(e Expr) ([]Expr, bool) {
		sub, ok := e.(*And)
		if !ok {
			return nil, false
		}
		return sub.Terms, true
	})

	// Partition: interval-representable comparisons merge per variable;
	// everything else passes through untouched.
	ranges := map[string]Interval{}
	var varOrder []string
	var rest []Expr
	for _, term := range flat {
		c, ok := term.(*Compare)
		if !ok {
			rest = append(rest, term)
			continue
		}
		iv, ok := CompareInterval(c)
		if !ok { // NE: not one interval
			rest = append(rest, term)
			continue
		}
		if prev, exists := ranges[c.Var]; exists {
			ranges[c.Var] = Intersect(prev, iv)
		} else {
			ranges[c.Var] = iv
			varOrder = append(varOrder, c.Var)
		}
	}

	terms := make([]Expr, 0, len(flat))
	for _, v := range varOrder {
		terms = append(terms, intervalTerms(v, ranges[v])...)
	}
	terms = append(terms, rest...)
	return rebuildNary(terms, func(ts []Expr) Expr { return &And{Terms: ts} })
}

// canonicalOr flattens, sorts and dedups.
func canonicalOr(o *Or) Expr {
	flat := flatten(o.Terms, func(e Expr) ([]Expr, bool) {
		sub, ok := e.(*Or)
		if !ok {
			return nil, false
		}
		return sub.Terms, true
	})
	return rebuildNary(flat, func(ts []Expr) Expr { return &Or{Terms: ts} })
}

// flatten canonicalizes each term and splices in the terms of nested
// nodes of the same kind (as identified by explode).
func flatten(terms []Expr, explode func(Expr) ([]Expr, bool)) []Expr {
	out := make([]Expr, 0, len(terms))
	for _, t := range terms {
		ct := Canonical(t)
		if sub, ok := explode(ct); ok {
			out = append(out, sub...)
		} else {
			out = append(out, ct)
		}
	}
	return out
}

// rebuildNary sorts terms by rendering, removes duplicates, and collapses
// single-term nodes.
func rebuildNary(terms []Expr, build func([]Expr) Expr) Expr {
	sort.SliceStable(terms, func(i, j int) bool {
		return terms[i].String() < terms[j].String()
	})
	dedup := terms[:0]
	for i, t := range terms {
		if i == 0 || t.String() != terms[i-1].String() {
			dedup = append(dedup, t)
		}
	}
	if len(dedup) == 1 {
		return dedup[0]
	}
	return build(append([]Expr(nil), dedup...))
}

// intervalTerms renders an interval as its minimal comparison list: one
// equality for a closed point, a single one-sided comparison for a
// half-bounded interval, or a lower+upper pair. An empty interval keeps
// both (contradictory) bounds so the expression still matches nothing.
func intervalTerms(v string, iv Interval) []Expr {
	if iv.Lo == iv.Hi && !iv.LoOpen && !iv.HiOpen {
		return []Expr{&Compare{Var: v, Op: EQ, Value: iv.Lo}}
	}
	var out []Expr
	if !math.IsInf(iv.Lo, -1) {
		op := GE
		if iv.LoOpen {
			op = GT
		}
		out = append(out, &Compare{Var: v, Op: op, Value: iv.Lo})
	}
	if !math.IsInf(iv.Hi, 1) {
		op := LE
		if iv.HiOpen {
			op = LT
		}
		out = append(out, &Compare{Var: v, Op: op, Value: iv.Hi})
	}
	return out
}
