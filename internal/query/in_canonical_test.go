// Property tests for identifier-membership predicates: the `id in (…)`
// expressions that analysis sessions ship to shards as text must survive
// canonicalization and a String → Parse round trip with their sorted,
// deduplicated value set and their semantics intact.
package query

import (
	"math/rand"
	"testing"
)

func TestInCanonicalStringParseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(40)
		vals := make([]float64, n)
		for i := range vals {
			// Duplicate-heavy integral IDs, the tracking workload.
			vals[i] = float64(rng.Intn(n))
		}
		orig := NewIn("id", vals)
		canon := Canonical(orig)
		text := canon.String()
		back, err := Parse(text)
		if err != nil {
			t.Fatalf("trial %d: Parse(%q): %v", trial, text, err)
		}
		if got := Canonical(back).String(); got != text {
			t.Fatalf("trial %d: round trip %q -> %q", trial, text, got)
		}
		in, ok := Canonical(back).(*In)
		if !ok {
			t.Fatalf("trial %d: canonical form is %T, want *In", trial, Canonical(back))
		}
		for i := 1; i < len(in.Values); i++ {
			if in.Values[i-1] >= in.Values[i] {
				t.Fatalf("trial %d: values not strictly ascending after round trip: %v", trial, in.Values)
			}
		}
		// Semantics: membership agrees with the original for every probed ID.
		for probe := 0; probe < n+2; probe++ {
			v := float64(probe)
			if orig.Contains(v) != in.Contains(v) {
				t.Fatalf("trial %d: Contains(%g) diverged after round trip", trial, v)
			}
		}
	}
}

func TestInDedupSortThroughConjunction(t *testing.T) {
	// An In folded into a refinement chain must round-trip inside the
	// composite expression the session layer builds.
	in := NewIn("id", []float64{9, 1, 5, 1, 9})
	if len(in.Values) != 3 || in.Values[0] != 1 || in.Values[2] != 9 {
		t.Fatalf("NewIn dedup/sort: %v", in.Values)
	}
	chain := &And{Terms: []Expr{
		MustParse("px > 0.25"),
		&Not{Term: in},
	}}
	text := Canonical(chain).String()
	back, err := Parse(text)
	if err != nil {
		t.Fatalf("Parse(%q): %v", text, err)
	}
	if got := Canonical(back).String(); got != text {
		t.Fatalf("composite round trip %q -> %q", text, got)
	}
	// Semantics spot-check: inside the In and below the threshold → out.
	probe := func(id, px float64) bool {
		return Canonical(back).Eval(row(map[string]float64{"id": id, "px": px}))
	}
	if probe(5, 1) {
		t.Error("id=5 excluded by !(id in …) still matched")
	}
	if !probe(4, 1) {
		t.Error("id=4 px=1 should match")
	}
	if probe(4, 0) {
		t.Error("px=0 fails the threshold but matched")
	}
}
