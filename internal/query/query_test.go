package query

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func row(vals map[string]float64) func(string) float64 {
	return func(name string) float64 { return vals[name] }
}

func TestParseSimpleComparison(t *testing.T) {
	cases := []struct {
		src  string
		vals map[string]float64
		want bool
	}{
		{"px > 1e9", map[string]float64{"px": 2e9}, true},
		{"px > 1e9", map[string]float64{"px": 1e9}, false},
		{"px >= 1e9", map[string]float64{"px": 1e9}, true},
		{"px < 5", map[string]float64{"px": 4.9}, true},
		{"px <= 5", map[string]float64{"px": 5}, true},
		{"px == 5", map[string]float64{"px": 5}, true},
		{"px = 5", map[string]float64{"px": 5}, true},
		{"px != 5", map[string]float64{"px": 5}, false},
		{"5 < px", map[string]float64{"px": 6}, true},
		{"5 >= px", map[string]float64{"px": 5}, true},
		{"x > -2.5e-3", map[string]float64{"x": 0}, true},
	}
	for _, c := range cases {
		e, err := Parse(c.src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.src, err)
		}
		if got := e.Eval(row(c.vals)); got != c.want {
			t.Errorf("%q with %v = %v, want %v", c.src, c.vals, got, c.want)
		}
	}
}

func TestParseCompound(t *testing.T) {
	// The example query from the paper (Section III-B).
	e, err := Parse("px > 1e9 && py < 1e8 && y > 0")
	if err != nil {
		t.Fatal(err)
	}
	if !e.Eval(row(map[string]float64{"px": 2e9, "py": 0, "y": 1})) {
		t.Error("paper query should match high-momentum upper-half particle")
	}
	if e.Eval(row(map[string]float64{"px": 2e9, "py": 0, "y": -1})) {
		t.Error("paper query matched lower-half particle")
	}
	vars := Vars(e)
	if len(vars) != 3 || vars[0] != "px" || vars[1] != "py" || vars[2] != "y" {
		t.Errorf("Vars = %v", vars)
	}
}

func TestParsePrecedence(t *testing.T) {
	// && binds tighter than ||.
	e := MustParse("a > 1 || b > 1 && c > 1")
	if !e.Eval(row(map[string]float64{"a": 2, "b": 0, "c": 0})) {
		t.Error("a>1 alone should satisfy")
	}
	if e.Eval(row(map[string]float64{"a": 0, "b": 2, "c": 0})) {
		t.Error("b>1 alone should not satisfy")
	}
	if !e.Eval(row(map[string]float64{"a": 0, "b": 2, "c": 2})) {
		t.Error("b>1 && c>1 should satisfy")
	}
	// Parentheses override.
	e2 := MustParse("(a > 1 || b > 1) && c > 1")
	if e2.Eval(row(map[string]float64{"a": 2, "b": 0, "c": 0})) {
		t.Error("parenthesised or must still require c")
	}
}

func TestParseNot(t *testing.T) {
	e := MustParse("!(x < 0.5) && !y > 1")
	_ = e
	e2 := MustParse("!(x < 0.5)")
	if e2.Eval(row(map[string]float64{"x": 0})) {
		t.Error("!(x<0.5) matched x=0")
	}
	if !e2.Eval(row(map[string]float64{"x": 1})) {
		t.Error("!(x<0.5) missed x=1")
	}
	e3 := MustParse("!!(x < 0.5)")
	if !e3.Eval(row(map[string]float64{"x": 0})) {
		t.Error("double negation broken")
	}
}

func TestParseIn(t *testing.T) {
	e, err := Parse("id in (5, 3, 3, 17)")
	if err != nil {
		t.Fatal(err)
	}
	in, ok := e.(*In)
	if !ok {
		t.Fatalf("got %T", e)
	}
	if len(in.Values) != 3 {
		t.Fatalf("dedup failed: %v", in.Values)
	}
	for _, id := range []float64{3, 5, 17} {
		if !in.Contains(id) {
			t.Errorf("Contains(%g) = false", id)
		}
	}
	if in.Contains(4) {
		t.Error("Contains(4) = true")
	}
	// "IN" case-insensitive.
	if _, err := Parse("id IN (1)"); err != nil {
		t.Errorf("uppercase IN rejected: %v", err)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"", "px >", "px > foo", "px & 1", "px | 1", "(px > 1", "px > 1)",
		"px >> 1", "in (1,2)", "id in ()", "id in (1,)", "id in (1", "px 5",
		"px > 1 &&", "@", "1 > 2", "px > 1e999x",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) accepted", src)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	srcs := []string{
		"px > 1e9 && py < 1e8 && y > 0",
		"(a > 1 || b <= 2) && !(c == 3)",
		"id in (1, 2, 3)",
		"x >= -0.5",
	}
	for _, src := range srcs {
		e := MustParse(src)
		s := e.String()
		e2, err := Parse(s)
		if err != nil {
			t.Fatalf("re-parse %q (from %q): %v", s, src, err)
		}
		if e2.String() != s {
			t.Errorf("round trip unstable: %q -> %q", s, e2.String())
		}
	}
}

// Property: parsing an expression's String() yields an expression that
// evaluates identically on random rows.
func TestStringRoundTripSemanticsProperty(t *testing.T) {
	f := func(a, b, c float64, pick uint8) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsNaN(c) {
			return true
		}
		srcs := []string{
			"x > 0.5 && y < 0.25",
			"x <= 0 || (y > 0 && z != 1)",
			"!(x < 0) && z >= -1",
			"x in (0, 1, 2) || y == 0",
		}
		src := srcs[int(pick)%len(srcs)]
		e1 := MustParse(src)
		e2 := MustParse(e1.String())
		get := row(map[string]float64{"x": a, "y": b, "z": c})
		return e1.Eval(get) == e2.Eval(get)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRangeSet(t *testing.T) {
	e := MustParse("px > 1e9 && py < 1e8 && y > 0 && px < 5e9")
	rs, ok := RangeSet(e)
	if !ok {
		t.Fatal("RangeSet rejected plain conjunction")
	}
	px := rs["px"]
	if px.Lo != 1e9 || !px.LoOpen || px.Hi != 5e9 || !px.HiOpen {
		t.Errorf("px interval = %v", px)
	}
	if !rs["y"].Contains(1) || rs["y"].Contains(0) || rs["y"].Contains(-1) {
		t.Errorf("y interval = %v", rs["y"])
	}
	if py := rs["py"]; !math.IsInf(py.Lo, -1) {
		t.Errorf("py interval = %v", py)
	}

	for _, src := range []string{"a > 1 || b > 1", "!(a > 1)", "id in (1)", "a != 3"} {
		if _, ok := RangeSet(MustParse(src)); ok {
			t.Errorf("RangeSet accepted %q", src)
		}
	}
}

func TestIntervalOps(t *testing.T) {
	a := Interval{Lo: 0, Hi: 10}
	b := Interval{Lo: 5, Hi: 20, LoOpen: true}
	x := Intersect(a, b)
	if x.Lo != 5 || !x.LoOpen || x.Hi != 10 || x.HiOpen {
		t.Errorf("Intersect = %v", x)
	}
	if x.Empty() {
		t.Error("nonempty intersection reported empty")
	}
	if !(Interval{Lo: 5, Hi: 4}).Empty() {
		t.Error("inverted interval not empty")
	}
	if !(Interval{Lo: 5, Hi: 5, LoOpen: true}).Empty() {
		t.Error("open point interval not empty")
	}
	if (Interval{Lo: 5, Hi: 5}).Empty() {
		t.Error("closed point interval reported empty")
	}
	if s := x.String(); !strings.Contains(s, "(") || !strings.Contains(s, "]") {
		t.Errorf("Interval.String = %q", s)
	}
}

func TestCompareInterval(t *testing.T) {
	iv, ok := CompareInterval(&Compare{Var: "x", Op: LT, Value: 3})
	if !ok || !iv.Contains(2.9) || iv.Contains(3) {
		t.Errorf("LT interval = %v", iv)
	}
	iv, ok = CompareInterval(&Compare{Var: "x", Op: GE, Value: 3})
	if !ok || !iv.Contains(3) || iv.Contains(2.9) {
		t.Errorf("GE interval = %v", iv)
	}
	iv, ok = CompareInterval(&Compare{Var: "x", Op: EQ, Value: 3})
	if !ok || !iv.Contains(3) || iv.Contains(3.1) {
		t.Errorf("EQ interval = %v", iv)
	}
	if _, ok := CompareInterval(&Compare{Var: "x", Op: NE, Value: 3}); ok {
		t.Error("NE produced an interval")
	}
}

func TestPrecision(t *testing.T) {
	cases := []struct {
		v    float64
		want int
	}{
		{1e-5, 1},     // paper example: "pressure less than 1*10^-5" is 1-digit
		{2.5e8, 2},    // paper example: "momentum greater than 2.5*10^8" is 2-digit
		{8.872e10, 4}, // threshold used in the use case
		{0, 1},
		{1, 1},
		{-3.25, 3},
		{100, 1},
		{123, 3},
	}
	for _, c := range cases {
		if got := Precision(c.v); got != c.want {
			t.Errorf("Precision(%g) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestRoundToPrecision(t *testing.T) {
	cases := []struct {
		v    float64
		p    int
		want float64
	}{
		{123456, 2, 120000},
		{8.872e10, 2, 8.9e10},
		{-0.0123, 1, -0.01},
		{5, 3, 5},
		{0, 2, 0},
	}
	for _, c := range cases {
		if got := RoundToPrecision(c.v, c.p); got != c.want {
			t.Errorf("RoundToPrecision(%g, %d) = %g, want %g", c.v, c.p, got, c.want)
		}
	}
}

// Property: RoundToPrecision(v, Precision(v)) == v.
func TestPrecisionRoundTripProperty(t *testing.T) {
	f := func(v float64) bool {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
		p := Precision(v)
		if p > 17 { // beyond float64 printable precision; skip
			return true
		}
		return RoundToPrecision(v, p) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOpString(t *testing.T) {
	ops := map[Op]string{LT: "<", LE: "<=", GT: ">", GE: ">=", EQ: "==", NE: "!="}
	for op, s := range ops {
		if op.String() != s {
			t.Errorf("Op %d String = %q, want %q", op, op.String(), s)
		}
	}
	if Op(99).String() == "" {
		t.Error("unknown op String empty")
	}
}

func TestOpFlip(t *testing.T) {
	if LT.Flip() != GT || GE.Flip() != LE || EQ.Flip() != EQ || NE.Flip() != NE {
		t.Error("Flip wrong")
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse did not panic on bad input")
		}
	}()
	MustParse(">>>")
}
