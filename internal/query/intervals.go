package query

import (
	"math"
	"strconv"
	"strings"
)

// CompareInterval converts a single comparison to the interval of values
// satisfying it. NE is not representable as one interval and returns
// ok == false.
func CompareInterval(c *Compare) (Interval, bool) {
	inf := math.Inf(1)
	switch c.Op {
	case LT:
		return Interval{Lo: -inf, Hi: c.Value, HiOpen: true}, true
	case LE:
		return Interval{Lo: -inf, Hi: c.Value}, true
	case GT:
		return Interval{Lo: c.Value, Hi: inf, LoOpen: true}, true
	case GE:
		return Interval{Lo: c.Value, Hi: inf}, true
	case EQ:
		return Interval{Lo: c.Value, Hi: c.Value}, true
	default:
		return Interval{}, false
	}
}

// Intersect returns the intersection of two intervals.
func Intersect(a, b Interval) Interval {
	out := a
	if b.Lo > out.Lo || (b.Lo == out.Lo && b.LoOpen) {
		out.Lo, out.LoOpen = b.Lo, b.LoOpen
	}
	if b.Hi < out.Hi || (b.Hi == out.Hi && b.HiOpen) {
		out.Hi, out.HiOpen = b.Hi, b.HiOpen
	}
	return out
}

// Empty reports whether the interval contains no values.
func (iv Interval) Empty() bool {
	if iv.Lo > iv.Hi {
		return true
	}
	if iv.Lo == iv.Hi && (iv.LoOpen || iv.HiOpen) {
		return true
	}
	return false
}

// RangeSet extracts, for a pure conjunction of comparisons (the common
// form built from parallel-coordinates axis sliders), the intersected
// interval per variable. It returns ok == false when the expression
// contains OR, NOT, IN or NE terms and therefore is not a plain
// multivariate range query. This is the "set of Boolean range queries"
// that VisIt-style contracts carry out-of-band (paper Section II-D).
func RangeSet(e Expr) (map[string]Interval, bool) {
	out := map[string]Interval{}
	ok := collectRanges(e, out)
	return out, ok
}

func collectRanges(e Expr, out map[string]Interval) bool {
	switch t := e.(type) {
	case *Compare:
		iv, ok := CompareInterval(t)
		if !ok {
			return false
		}
		if prev, exists := out[t.Var]; exists {
			out[t.Var] = Intersect(prev, iv)
		} else {
			out[t.Var] = iv
		}
		return true
	case *And:
		for _, term := range t.Terms {
			if !collectRanges(term, out) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// Precision returns the number of significant decimal digits needed to
// represent v exactly in scientific notation, e.g. 1e-5 has precision 1,
// 2.5e8 has precision 2, and 8.872e10 has precision 4. The paper's
// precision-based FastBit bins guarantee that queries whose constants have
// at most the index precision are answered from the index alone.
func Precision(v float64) int {
	if v == 0 || math.IsInf(v, 0) || math.IsNaN(v) {
		return 1
	}
	s := strconv.FormatFloat(math.Abs(v), 'e', -1, 64)
	// s looks like "d.dddde±xx"; count digits of the mantissa.
	mant := s
	if i := strings.IndexByte(s, 'e'); i >= 0 {
		mant = s[:i]
	}
	digits := 0
	for _, c := range mant {
		if c >= '0' && c <= '9' {
			digits++
		}
	}
	// Trailing zeros in the mantissa do not add precision.
	mant = strings.TrimRight(strings.Replace(mant, ".", "", 1), "0")
	if len(mant) == 0 {
		return 1
	}
	return len(mant)
}

// RoundToPrecision rounds v to p significant decimal digits, the grid on
// which precision-binned index boundaries live.
func RoundToPrecision(v float64, p int) float64 {
	if v == 0 || math.IsInf(v, 0) || math.IsNaN(v) {
		return v
	}
	if p < 1 {
		p = 1
	}
	s := strconv.FormatFloat(v, 'e', p-1, 64)
	out, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return v
	}
	return out
}
