package colstore

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestWriterAtomicPublish verifies the crash-safety contract: nothing
// appears at the destination path until Close succeeds, and afterwards no
// temp file remains.
func TestWriterAtomicPublish(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "step_0000.col")
	w, err := NewWriter(path, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AddFloat64("x", []float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("destination exists before Close (err=%v)", err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("destination missing after Close: %v", err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.Contains(e.Name(), ".tmp") {
			t.Fatalf("temp file %q left behind after Close", e.Name())
		}
	}
	f, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	got, err := f.ReadFloat64("x")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("round trip mismatch: %v", got)
	}
}

// TestWriterDuplicateColumn checks that a duplicate column name is
// rejected and poisons the writer: Close must not publish.
func TestWriterDuplicateColumn(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "dup.col")
	w, err := NewWriter(path, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AddFloat64("x", []float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := w.AddFloat64("x", []float64{3, 4}); err == nil {
		t.Fatal("duplicate column accepted")
	} else if !strings.Contains(err.Error(), "duplicate column") {
		t.Fatalf("unexpected error: %v", err)
	}
	if err := w.Close(); err == nil {
		t.Fatal("Close succeeded after rejected Add")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("poisoned writer published a file (err=%v)", err)
	}
}

// TestWriterRowCountMismatch checks the row-count guard and that a
// subsequent valid Add still fails (sticky error).
func TestWriterRowCountMismatch(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "rows.col")
	w, err := NewWriter(path, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AddFloat64("x", []float64{1, 2}); err == nil {
		t.Fatal("short column accepted")
	} else if !strings.Contains(err.Error(), "rows") {
		t.Fatalf("unexpected error: %v", err)
	}
	if err := w.AddFloat64("y", []float64{1, 2, 3, 4}); err == nil {
		t.Fatal("Add succeeded on a poisoned writer")
	}
	if err := w.Close(); err == nil {
		t.Fatal("Close succeeded on a poisoned writer")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("poisoned writer published a file (err=%v)", err)
	}
}

// TestWriterDiscard abandons a write; nothing must remain in the
// directory.
func TestWriterDiscard(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "gone.col")
	w, err := NewWriter(path, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AddFloat64("x", []float64{42}); err != nil {
		t.Fatal(err)
	}
	w.Discard()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("directory not empty after Discard: %v", ents)
	}
	// Discard after Close is a no-op, not a deletion of the published file.
	w2, err := NewWriter(path, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.AddFloat64("x", []float64{7}); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	w2.Discard()
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("Discard after Close removed the published file: %v", err)
	}
}

// TestOpenAfterPartialWrite simulates a crash mid-write by truncating a
// published file at several points: Open (or the first read) must fail
// cleanly, never panic or return silently wrong data.
func TestOpenAfterPartialWrite(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trunc.col")
	vals := make([]float64, 1000)
	for i := range vals {
		vals[i] = float64(i)
	}
	w, err := NewWriter(path, uint64(len(vals)), 128)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AddFloat64("x", vals); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, frac := range []float64{0, 0.1, 0.5, 0.9, 0.99} {
		n := int(float64(len(whole)) * frac)
		if err := os.WriteFile(path, whole[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		f, err := Open(path)
		if err != nil {
			continue // rejected at open: the desired outcome
		}
		// A truncation that leaves the trailer intact is impossible (the
		// trailer is the last 12 bytes), so Open must have failed above;
		// belt and braces: reads must error rather than fabricate data.
		if got, err := f.ReadFloat64("x"); err == nil && len(got) == len(vals) {
			f.Close()
			t.Fatalf("truncated to %d/%d bytes but read full column", n, len(whole))
		}
		f.Close()
	}
}
