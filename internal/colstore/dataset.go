package colstore

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// DatasetMeta describes a multi-timestep dataset stored as one colstore
// file per timestep plus an optional sidecar index file per timestep.
type DatasetMeta struct {
	Name      string   `json:"name"`
	Steps     int      `json:"steps"`
	Variables []string `json:"variables"`
	Comment   string   `json:"comment,omitempty"`
}

const metaFileName = "meta.json"

// StepFileName returns the data file name for timestep t.
func StepFileName(t int) string { return fmt.Sprintf("step_%04d.col", t) }

// IndexFileName returns the sidecar index file name for timestep t.
func IndexFileName(t int) string { return fmt.Sprintf("step_%04d.idx", t) }

// Dataset is an on-disk multi-timestep dataset directory.
type Dataset struct {
	Dir  string
	Meta DatasetMeta
}

// CreateDataset initialises a dataset directory and writes its metadata.
// The directory is created if needed; an existing meta.json is replaced.
func CreateDataset(dir string, meta DatasetMeta) (*Dataset, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("colstore: create dataset dir: %w", err)
	}
	buf, err := json.MarshalIndent(meta, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("colstore: encode meta: %w", err)
	}
	if err := AtomicWriteFile(filepath.Join(dir, metaFileName), buf, 0o644); err != nil {
		return nil, fmt.Errorf("colstore: write meta: %w", err)
	}
	return &Dataset{Dir: dir, Meta: meta}, nil
}

// AtomicWriteFile writes data to a temp file in path's directory, fsyncs
// it, and renames it into place, so a crash mid-write can never leave a
// partial metadata file for a reader to choke on. Shared by the dataset
// metadata here and the ingest catalog's manifest.
func AtomicWriteFile(path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	name := tmp.Name()
	cleanup := func(err error) error {
		tmp.Close()
		os.Remove(name)
		return err
	}
	if err := tmp.Chmod(perm); err != nil {
		return cleanup(err)
	}
	if _, err := tmp.Write(data); err != nil {
		return cleanup(err)
	}
	if err := tmp.Sync(); err != nil {
		return cleanup(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return err
	}
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return err
	}
	if d, err := os.Open(dir); err == nil {
		d.Sync() //nolint:errcheck // advisory: rename is already visible
		d.Close()
	}
	return nil
}

// OpenDataset opens an existing dataset directory.
func OpenDataset(dir string) (*Dataset, error) {
	buf, err := os.ReadFile(filepath.Join(dir, metaFileName))
	if err != nil {
		return nil, fmt.Errorf("colstore: open dataset: %w", err)
	}
	var meta DatasetMeta
	if err := json.Unmarshal(buf, &meta); err != nil {
		return nil, fmt.Errorf("colstore: decode meta: %w", err)
	}
	if meta.Steps < 0 {
		return nil, fmt.Errorf("colstore: meta has negative step count %d", meta.Steps)
	}
	return &Dataset{Dir: dir, Meta: meta}, nil
}

// StepPath returns the path of the data file for timestep t.
func (d *Dataset) StepPath(t int) string { return filepath.Join(d.Dir, StepFileName(t)) }

// IndexPath returns the path of the index file for timestep t.
func (d *Dataset) IndexPath(t int) string { return filepath.Join(d.Dir, IndexFileName(t)) }

// OpenStep opens the data file for timestep t.
func (d *Dataset) OpenStep(t int) (*File, error) {
	if t < 0 || t >= d.Meta.Steps {
		return nil, fmt.Errorf("colstore: timestep %d out of range [0,%d)", t, d.Meta.Steps)
	}
	return Open(d.StepPath(t))
}

// HasIndex reports whether a sidecar index exists for timestep t.
func (d *Dataset) HasIndex(t int) bool {
	_, err := os.Stat(d.IndexPath(t))
	return err == nil
}

// Validate checks that every timestep file exists and carries the declared
// variables, returning the first problem found.
func (d *Dataset) Validate() error {
	for t := 0; t < d.Meta.Steps; t++ {
		f, err := d.OpenStep(t)
		if err != nil {
			return err
		}
		for _, v := range d.Meta.Variables {
			if !f.HasColumn(v) {
				f.Close()
				return fmt.Errorf("colstore: step %d missing column %q", t, v)
			}
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}
