// Package colstore implements a chunked, columnar, single-file storage
// format for one timestep of particle data. It stands in for the HDF5
// files the paper stores simulation output in: named, typed 1-D arrays
// with column-selective and range-selective reads, so the I/O layer can
// fetch only the two variables a 2D histogram needs (paper Section
// III-A1) and only the chunks a candidate check touches.
//
// File layout (all little-endian):
//
//	"LWC1" magic, u32 version
//	column chunks (raw 8-byte values, CRC32-protected per chunk)
//	directory: per-column metadata and chunk table
//	trailer: u64 directory offset, "LWC1" magic
//
// The directory is written last so files are produced in one streaming
// pass; readers locate it through the fixed-size trailer.
package colstore

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync/atomic"

	"repro/internal/obs"
)

var magic = [4]byte{'L', 'W', 'C', '1'}

const (
	version = 1
	// DefaultChunkRows is the default number of rows per chunk.
	DefaultChunkRows = 1 << 16
)

// ColumnType identifies the element type of a column.
type ColumnType uint8

// Supported column element types.
const (
	Float64 ColumnType = iota
	Int64
)

func (t ColumnType) String() string {
	switch t {
	case Float64:
		return "float64"
	case Int64:
		return "int64"
	default:
		return fmt.Sprintf("ColumnType(%d)", uint8(t))
	}
}

type chunkInfo struct {
	offset uint64
	rows   uint32
	crc    uint32
}

// ColumnInfo describes one stored column.
type ColumnInfo struct {
	Name string
	Type ColumnType
	Rows uint64

	chunks []chunkInfo
}

// Writer builds a colstore file. Columns are added one at a time; Close
// writes the directory and trailer.
//
// The bytes go to a temp file in the destination directory; Close fsyncs
// it and atomically renames it into place, so a crash — or an error on
// any Add call — can never leave a truncated or column-incomplete step
// file at the published path for Open to trip over. A Writer whose Add
// failed refuses to publish: Close removes the temp file and returns the
// first error instead.
type Writer struct {
	f         *os.File
	path      string // final destination, temp renamed here on Close
	w         *countingWriter
	rows      uint64
	chunkRows int
	cols      []ColumnInfo
	names     map[string]bool
	closed    bool
	err       error // first write/Add failure; poisons Close
}

type countingWriter struct {
	w io.Writer
	n uint64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += uint64(n)
	return n, err
}

// NewWriter creates a colstore file at path for rows records per column.
// chunkRows <= 0 selects DefaultChunkRows. The file appears at path only
// when Close succeeds.
func NewWriter(path string, rows uint64, chunkRows int) (*Writer, error) {
	if chunkRows <= 0 {
		chunkRows = DefaultChunkRows
	}
	f, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return nil, fmt.Errorf("colstore: %w", err)
	}
	if err := f.Chmod(0o644); err != nil {
		f.Close()
		os.Remove(f.Name())
		return nil, fmt.Errorf("colstore: %w", err)
	}
	w := &Writer{f: f, path: path, w: &countingWriter{w: f}, rows: rows, chunkRows: chunkRows, names: map[string]bool{}}
	hdr := make([]byte, 8)
	copy(hdr, magic[:])
	binary.LittleEndian.PutUint32(hdr[4:], version)
	if _, err := w.w.Write(hdr); err != nil {
		w.discard()
		return nil, fmt.Errorf("colstore: write header: %w", err)
	}
	return w, nil
}

// discard closes and removes the temp file without publishing.
func (w *Writer) discard() {
	w.f.Close()
	os.Remove(w.f.Name())
}

// Discard abandons the file: the temp file is removed and nothing appears
// at the destination path. Safe after Close (then a no-op).
func (w *Writer) Discard() {
	if w.closed {
		return
	}
	w.closed = true
	w.discard()
}

// AddFloat64 appends a float64 column. The value count must equal the
// writer's row count.
func (w *Writer) AddFloat64(name string, values []float64) error {
	return w.addColumn(name, Float64, len(values), func(i int) uint64 {
		return math.Float64bits(values[i])
	})
}

// AddInt64 appends an int64 column.
func (w *Writer) AddInt64(name string, values []int64) error {
	return w.addColumn(name, Int64, len(values), func(i int) uint64 {
		return uint64(values[i])
	})
}

func (w *Writer) addColumn(name string, t ColumnType, n int, word func(i int) uint64) error {
	if w.closed {
		return fmt.Errorf("colstore: writer closed")
	}
	if w.err != nil {
		return w.err
	}
	// Any rejected Add poisons the writer: Close must never publish a file
	// whose column set differs from what the caller intended to write.
	fail := func(err error) error {
		w.err = err
		return err
	}
	if uint64(n) != w.rows {
		return fail(fmt.Errorf("colstore: column %q has %d rows, file has %d", name, n, w.rows))
	}
	if w.names[name] {
		return fail(fmt.Errorf("colstore: duplicate column %q", name))
	}
	if len(name) == 0 || len(name) > 1<<15 {
		return fail(fmt.Errorf("colstore: bad column name length %d", len(name)))
	}
	w.names[name] = true
	ci := ColumnInfo{Name: name, Type: t, Rows: w.rows}
	buf := make([]byte, 8*w.chunkRows)
	for start := 0; start < n || (n == 0 && start == 0); start += w.chunkRows {
		end := start + w.chunkRows
		if end > n {
			end = n
		}
		rows := end - start
		for i := 0; i < rows; i++ {
			binary.LittleEndian.PutUint64(buf[8*i:], word(start+i))
		}
		chunk := buf[:8*rows]
		ci.chunks = append(ci.chunks, chunkInfo{
			offset: w.w.n,
			rows:   uint32(rows),
			crc:    crc32.ChecksumIEEE(chunk),
		})
		if _, err := w.w.Write(chunk); err != nil {
			w.err = fmt.Errorf("colstore: write column %q: %w", name, err)
			return w.err
		}
		if n == 0 {
			break
		}
	}
	w.cols = append(w.cols, ci)
	return nil
}

// Close writes the directory and trailer, fsyncs the temp file, and
// atomically renames it to the destination path. If any earlier Add
// failed, Close removes the temp file and returns that error — nothing
// appears at the destination. Close is idempotent.
func (w *Writer) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	if w.err != nil {
		w.discard()
		return w.err
	}
	dirOffset := w.w.n
	var buf []byte
	buf = binary.LittleEndian.AppendUint64(buf, w.rows)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(w.cols)))
	for _, c := range w.cols {
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(c.Name)))
		buf = append(buf, c.Name...)
		buf = append(buf, byte(c.Type))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(c.chunks)))
		for _, ch := range c.chunks {
			buf = binary.LittleEndian.AppendUint64(buf, ch.offset)
			buf = binary.LittleEndian.AppendUint32(buf, ch.rows)
			buf = binary.LittleEndian.AppendUint32(buf, ch.crc)
		}
	}
	buf = binary.LittleEndian.AppendUint64(buf, dirOffset)
	buf = append(buf, magic[:]...)
	if _, err := w.w.Write(buf); err != nil {
		w.discard()
		return fmt.Errorf("colstore: write directory: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		w.discard()
		return fmt.Errorf("colstore: sync: %w", err)
	}
	tmpName := w.f.Name()
	if err := w.f.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("colstore: close: %w", err)
	}
	if err := os.Rename(tmpName, w.path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("colstore: publish: %w", err)
	}
	// Persist the rename itself so a crash cannot roll it back.
	if d, err := os.Open(filepath.Dir(w.path)); err == nil {
		d.Sync() //nolint:errcheck // advisory: rename is already visible
		d.Close()
	}
	return nil
}

// File is an open colstore file.
type File struct {
	f       *os.File
	path    string
	rows    uint64
	cols    map[string]*ColumnInfo
	order   []string
	ioBytes atomic.Uint64
}

// Open opens a colstore file for reading.
func Open(path string) (*File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("colstore: %w", err)
	}
	file := &File{f: f, path: path, cols: map[string]*ColumnInfo{}}
	if err := file.readDirectory(); err != nil {
		f.Close()
		return nil, err
	}
	return file, nil
}

func (file *File) readDirectory() error {
	st, err := file.f.Stat()
	if err != nil {
		return fmt.Errorf("colstore: stat: %w", err)
	}
	if st.Size() < 20 {
		return fmt.Errorf("colstore: %s: file too small", file.path)
	}
	trailer := make([]byte, 12)
	if _, err := file.f.ReadAt(trailer, st.Size()-12); err != nil {
		return fmt.Errorf("colstore: read trailer: %w", err)
	}
	if string(trailer[8:12]) != string(magic[:]) {
		return fmt.Errorf("colstore: %s: bad trailer magic", file.path)
	}
	hdr := make([]byte, 8)
	if _, err := file.f.ReadAt(hdr, 0); err != nil {
		return fmt.Errorf("colstore: read header: %w", err)
	}
	if string(hdr[:4]) != string(magic[:]) {
		return fmt.Errorf("colstore: %s: bad header magic", file.path)
	}
	if v := binary.LittleEndian.Uint32(hdr[4:]); v != version {
		return fmt.Errorf("colstore: %s: unsupported version %d", file.path, v)
	}
	dirOffset := binary.LittleEndian.Uint64(trailer[:8])
	if dirOffset >= uint64(st.Size()) {
		return fmt.Errorf("colstore: %s: directory offset out of range", file.path)
	}
	dir := make([]byte, uint64(st.Size())-12-dirOffset)
	if _, err := file.f.ReadAt(dir, int64(dirOffset)); err != nil {
		return fmt.Errorf("colstore: read directory: %w", err)
	}
	r := &byteReader{b: dir}
	file.rows = r.u64()
	ncols := r.u32()
	// Each chunk entry occupies 16 bytes in the directory; reject counts
	// that could not possibly fit, before allocating.
	maxChunks := uint32(len(dir) / 16)
	for i := uint32(0); i < ncols && r.err == nil; i++ {
		nameLen := r.u16()
		name := string(r.bytes(int(nameLen)))
		ct := ColumnType(r.u8())
		nchunks := r.u32()
		if nchunks > maxChunks {
			return fmt.Errorf("colstore: %s: column %q claims %d chunks in a %d-byte directory",
				file.path, name, nchunks, len(dir))
		}
		ci := &ColumnInfo{Name: name, Type: ct, Rows: file.rows}
		var chunkRows uint64
		for j := uint32(0); j < nchunks && r.err == nil; j++ {
			ch := chunkInfo{offset: r.u64(), rows: r.u32(), crc: r.u32()}
			chunkRows += uint64(ch.rows)
			ci.chunks = append(ci.chunks, ch)
		}
		if r.err == nil && chunkRows != file.rows {
			return fmt.Errorf("colstore: %s: column %q chunks hold %d rows, directory claims %d",
				file.path, name, chunkRows, file.rows)
		}
		file.cols[name] = ci
		file.order = append(file.order, name)
	}
	if r.err != nil {
		return fmt.Errorf("colstore: %s: corrupt directory: %w", file.path, r.err)
	}
	return nil
}

type byteReader struct {
	b   []byte
	i   int
	err error
}

func (r *byteReader) bytes(n int) []byte {
	if r.err != nil || r.i+n > len(r.b) {
		if r.err == nil {
			r.err = io.ErrUnexpectedEOF
		}
		return make([]byte, n)
	}
	out := r.b[r.i : r.i+n]
	r.i += n
	return out
}

func (r *byteReader) u8() uint8   { return r.bytes(1)[0] }
func (r *byteReader) u16() uint16 { return binary.LittleEndian.Uint16(r.bytes(2)) }
func (r *byteReader) u32() uint32 { return binary.LittleEndian.Uint32(r.bytes(4)) }
func (r *byteReader) u64() uint64 { return binary.LittleEndian.Uint64(r.bytes(8)) }

// Close closes the underlying file.
func (file *File) Close() error { return file.f.Close() }

// Path returns the file path.
func (file *File) Path() string { return file.path }

// Rows returns the number of rows per column.
func (file *File) Rows() uint64 { return file.rows }

// BytesRead returns the cumulative number of data bytes read from this
// file, used for I/O accounting in the parallel performance model.
func (file *File) BytesRead() uint64 { return file.ioBytes.Load() }

// Columns returns the stored column names in file order.
func (file *File) Columns() []string {
	return append([]string(nil), file.order...)
}

// Column returns metadata for a named column.
func (file *File) Column(name string) (ColumnInfo, error) {
	ci, ok := file.cols[name]
	if !ok {
		names := append([]string(nil), file.order...)
		sort.Strings(names)
		return ColumnInfo{}, fmt.Errorf("colstore: no column %q (have %v)", name, names)
	}
	return *ci, nil
}

// HasColumn reports whether the file stores a column with that name.
func (file *File) HasColumn(name string) bool {
	_, ok := file.cols[name]
	return ok
}

// readChunk reads and CRC-verifies one chunk of a column. cost, when
// non-nil, is charged the bytes actually read — the per-query view of
// the same I/O the file-level ioBytes counter accumulates globally.
func (file *File) readChunk(ci *ColumnInfo, idx int, cost *obs.Cost) ([]byte, error) {
	ch := ci.chunks[idx]
	if st, err := file.f.Stat(); err == nil {
		if ch.offset+8*uint64(ch.rows) > uint64(st.Size()) {
			return nil, fmt.Errorf("colstore: %q chunk %d extends beyond file", ci.Name, idx)
		}
	}
	buf := make([]byte, 8*int(ch.rows))
	if _, err := file.f.ReadAt(buf, int64(ch.offset)); err != nil {
		return nil, fmt.Errorf("colstore: read %q chunk %d: %w", ci.Name, idx, err)
	}
	file.ioBytes.Add(uint64(len(buf)))
	cost.AddDataBytes(uint64(len(buf)))
	if crc := crc32.ChecksumIEEE(buf); crc != ch.crc {
		return nil, fmt.Errorf("colstore: %q chunk %d: CRC mismatch (stored %08x, computed %08x)",
			ci.Name, idx, ch.crc, crc)
	}
	return buf, nil
}

// ReadFloat64 reads a whole float64 column.
func (file *File) ReadFloat64(name string) ([]float64, error) {
	return file.ReadFloat64Cost(name, nil)
}

// ReadFloat64Cost is ReadFloat64 charging bytes and values into cost
// (nil-safe) for per-query attribution.
func (file *File) ReadFloat64Cost(name string, cost *obs.Cost) ([]float64, error) {
	ci, ok := file.cols[name]
	if !ok {
		return nil, fmt.Errorf("colstore: no column %q", name)
	}
	if ci.Type != Float64 {
		return nil, fmt.Errorf("colstore: column %q is %s, not float64", name, ci.Type)
	}
	out := make([]float64, 0, file.rows)
	for i := range ci.chunks {
		buf, err := file.readChunk(ci, i, cost)
		if err != nil {
			return nil, err
		}
		for j := 0; j+8 <= len(buf); j += 8 {
			out = append(out, math.Float64frombits(binary.LittleEndian.Uint64(buf[j:])))
		}
	}
	cost.AddValues(uint64(len(out)))
	return out, nil
}

// ReadInt64 reads a whole int64 column.
func (file *File) ReadInt64(name string) ([]int64, error) {
	return file.ReadInt64Cost(name, nil)
}

// ReadInt64Cost is ReadInt64 charging bytes and values into cost.
func (file *File) ReadInt64Cost(name string, cost *obs.Cost) ([]int64, error) {
	ci, ok := file.cols[name]
	if !ok {
		return nil, fmt.Errorf("colstore: no column %q", name)
	}
	if ci.Type != Int64 {
		return nil, fmt.Errorf("colstore: column %q is %s, not int64", name, ci.Type)
	}
	out := make([]int64, 0, file.rows)
	for i := range ci.chunks {
		buf, err := file.readChunk(ci, i, cost)
		if err != nil {
			return nil, err
		}
		for j := 0; j+8 <= len(buf); j += 8 {
			out = append(out, int64(binary.LittleEndian.Uint64(buf[j:])))
		}
	}
	cost.AddValues(uint64(len(out)))
	return out, nil
}

// ReadAsFloat64 reads any column as float64, converting int64 values.
// Particle identifiers fit in the 53-bit mantissa, so the conversion is
// exact for this system's data.
func (file *File) ReadAsFloat64(name string) ([]float64, error) {
	return file.ReadAsFloat64Cost(name, nil)
}

// ReadAsFloat64Cost is ReadAsFloat64 charging bytes and values into cost.
func (file *File) ReadAsFloat64Cost(name string, cost *obs.Cost) ([]float64, error) {
	ci, ok := file.cols[name]
	if !ok {
		return nil, fmt.Errorf("colstore: no column %q", name)
	}
	switch ci.Type {
	case Float64:
		return file.ReadFloat64Cost(name, cost)
	case Int64:
		iv, err := file.ReadInt64Cost(name, cost)
		if err != nil {
			return nil, err
		}
		out := make([]float64, len(iv))
		for i, v := range iv {
			out[i] = float64(v)
		}
		return out, nil
	default:
		return nil, fmt.Errorf("colstore: column %q has unknown type", name)
	}
}

// ReadFloat64At gathers the float64 values at the given sorted row
// positions, reading only the chunks that contain requested rows. This is
// the access path for index candidate checks, which touch a small number
// of rows.
func (file *File) ReadFloat64At(name string, positions []uint64) ([]float64, error) {
	return file.ReadFloat64AtCost(name, positions, nil)
}

// ReadFloat64AtCost is ReadFloat64At charging chunk bytes and gathered
// values into cost for per-query attribution.
func (file *File) ReadFloat64AtCost(name string, positions []uint64, cost *obs.Cost) ([]float64, error) {
	ci, ok := file.cols[name]
	if !ok {
		return nil, fmt.Errorf("colstore: no column %q", name)
	}
	if ci.Type != Float64 && ci.Type != Int64 {
		return nil, fmt.Errorf("colstore: column %q has unknown type", name)
	}
	for i := 1; i < len(positions); i++ {
		if positions[i] < positions[i-1] {
			return nil, fmt.Errorf("colstore: positions not sorted at %d", i)
		}
	}
	out := make([]float64, len(positions))
	pi := 0
	var rowBase uint64
	for idx := range ci.chunks {
		rows := uint64(ci.chunks[idx].rows)
		chunkEnd := rowBase + rows
		if pi < len(positions) && positions[pi] < chunkEnd {
			buf, err := file.readChunk(ci, idx, cost)
			if err != nil {
				return nil, err
			}
			for pi < len(positions) && positions[pi] < chunkEnd {
				p := positions[pi]
				w := binary.LittleEndian.Uint64(buf[8*(p-rowBase):])
				if ci.Type == Float64 {
					out[pi] = math.Float64frombits(w)
				} else {
					out[pi] = float64(int64(w))
				}
				pi++
			}
		}
		rowBase = chunkEnd
		if pi == len(positions) {
			break
		}
	}
	if pi != len(positions) {
		return nil, fmt.Errorf("colstore: position %d out of range (%d rows)", positions[pi], file.rows)
	}
	cost.AddValues(uint64(len(out)))
	return out, nil
}
