package colstore

import (
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
)

func writeTestFile(t *testing.T, rows uint64, chunkRows int) (string, []float64, []int64) {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "test.col")
	rng := rand.New(rand.NewSource(42))
	fs := make([]float64, rows)
	is := make([]int64, rows)
	for i := range fs {
		fs[i] = rng.NormFloat64() * 1e10
		is[i] = rng.Int63n(1 << 40)
	}
	w, err := NewWriter(path, rows, chunkRows)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AddFloat64("px", fs); err != nil {
		t.Fatal(err)
	}
	if err := w.AddInt64("id", is); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return path, fs, is
}

func TestRoundTrip(t *testing.T) {
	for _, chunkRows := range []int{0, 1, 7, 100, 1 << 16} {
		path, fs, is := writeTestFile(t, 1000, chunkRows)
		f, err := Open(path)
		if err != nil {
			t.Fatal(err)
		}
		if f.Rows() != 1000 {
			t.Fatalf("Rows = %d", f.Rows())
		}
		gotF, err := f.ReadFloat64("px")
		if err != nil {
			t.Fatal(err)
		}
		for i := range fs {
			if gotF[i] != fs[i] {
				t.Fatalf("chunkRows=%d: px[%d] = %g, want %g", chunkRows, i, gotF[i], fs[i])
			}
		}
		gotI, err := f.ReadInt64("id")
		if err != nil {
			t.Fatal(err)
		}
		for i := range is {
			if gotI[i] != is[i] {
				t.Fatalf("id[%d] = %d, want %d", i, gotI[i], is[i])
			}
		}
		f.Close()
	}
}

func TestSpecialFloats(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "s.col")
	vals := []float64{0, math.Copysign(0, -1), math.Inf(1), math.Inf(-1), math.MaxFloat64, math.SmallestNonzeroFloat64, math.NaN()}
	w, err := NewWriter(path, uint64(len(vals)), 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AddFloat64("v", vals); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	got, err := f.ReadFloat64("v")
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vals {
		if math.IsNaN(v) {
			if !math.IsNaN(got[i]) {
				t.Fatalf("v[%d]: NaN lost", i)
			}
			continue
		}
		if got[i] != v || math.Signbit(got[i]) != math.Signbit(v) {
			t.Fatalf("v[%d] = %g, want %g", i, got[i], v)
		}
	}
}

func TestEmptyColumn(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "e.col")
	w, err := NewWriter(path, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AddFloat64("v", nil); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	got, err := f.ReadFloat64("v")
	if err != nil || len(got) != 0 {
		t.Fatalf("empty column read: %v %v", got, err)
	}
}

func TestWriterValidation(t *testing.T) {
	dir := t.TempDir()
	// Each rejected Add poisons its writer (Close must never publish a
	// partial column set), so every case gets a fresh one.
	newW := func() *Writer {
		t.Helper()
		w, err := NewWriter(filepath.Join(dir, "v.col"), 3, 2)
		if err != nil {
			t.Fatal(err)
		}
		return w
	}
	w := newW()
	if err := w.AddFloat64("x", []float64{1, 2}); err == nil {
		t.Fatal("row count mismatch accepted")
	}
	if err := w.Close(); err == nil {
		t.Fatal("Close succeeded after rejected Add")
	}
	w = newW()
	if err := w.AddFloat64("x", []float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := w.AddFloat64("x", []float64{4, 5, 6}); err == nil {
		t.Fatal("duplicate column accepted")
	}
	w.Discard()
	w = newW()
	if err := w.AddFloat64("", []float64{1, 2, 3}); err == nil {
		t.Fatal("empty name accepted")
	}
	w.Discard()
	w = newW()
	if err := w.AddFloat64("x", []float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.AddFloat64("y", []float64{1, 2, 3}); err == nil {
		t.Fatal("write after close accepted")
	}
	if err := w.Close(); err != nil {
		t.Fatal("double close should be nil")
	}
}

func TestColumnMetadata(t *testing.T) {
	path, _, _ := writeTestFile(t, 100, 16)
	f, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	cols := f.Columns()
	if len(cols) != 2 || cols[0] != "px" || cols[1] != "id" {
		t.Fatalf("Columns = %v", cols)
	}
	ci, err := f.Column("px")
	if err != nil || ci.Type != Float64 || ci.Rows != 100 {
		t.Fatalf("Column(px) = %+v, %v", ci, err)
	}
	if !f.HasColumn("id") || f.HasColumn("nope") {
		t.Fatal("HasColumn wrong")
	}
	if _, err := f.Column("nope"); err == nil {
		t.Fatal("missing column accepted")
	}
	if _, err := f.ReadFloat64("id"); err == nil {
		t.Fatal("type mismatch read accepted")
	}
	if _, err := f.ReadInt64("px"); err == nil {
		t.Fatal("type mismatch read accepted")
	}
	if _, err := f.ReadFloat64("nope"); err == nil {
		t.Fatal("missing column read accepted")
	}
}

func TestReadAsFloat64(t *testing.T) {
	path, fs, is := writeTestFile(t, 50, 8)
	f, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	got, err := f.ReadAsFloat64("px")
	if err != nil || got[0] != fs[0] {
		t.Fatalf("ReadAsFloat64(px): %v", err)
	}
	got, err = f.ReadAsFloat64("id")
	if err != nil {
		t.Fatal(err)
	}
	for i := range is {
		if got[i] != float64(is[i]) {
			t.Fatalf("id[%d] as float = %g, want %d", i, got[i], is[i])
		}
	}
}

func TestReadFloat64At(t *testing.T) {
	path, fs, is := writeTestFile(t, 1000, 64)
	f, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	pos := []uint64{0, 1, 63, 64, 500, 999}
	got, err := f.ReadFloat64At("px", pos)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range pos {
		if got[i] != fs[p] {
			t.Fatalf("at %d: %g want %g", p, got[i], fs[p])
		}
	}
	// Int column gather converts.
	got, err = f.ReadFloat64At("id", pos)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range pos {
		if got[i] != float64(is[p]) {
			t.Fatalf("id at %d: %g want %d", p, got[i], is[p])
		}
	}
	if _, err := f.ReadFloat64At("px", []uint64{5, 3}); err == nil {
		t.Fatal("unsorted positions accepted")
	}
	if _, err := f.ReadFloat64At("px", []uint64{1000}); err == nil {
		t.Fatal("out-of-range position accepted")
	}
	if _, err := f.ReadFloat64At("nope", []uint64{1}); err == nil {
		t.Fatal("missing column accepted")
	}
	if got, err := f.ReadFloat64At("px", nil); err != nil || len(got) != 0 {
		t.Fatalf("empty gather: %v %v", got, err)
	}
}

func TestGatherReadsFewerBytesThanFullColumn(t *testing.T) {
	path, _, _ := writeTestFile(t, 100000, 1024)
	f, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.ReadFloat64At("px", []uint64{5, 99999}); err != nil {
		t.Fatal(err)
	}
	gathered := f.BytesRead()
	if _, err := f.ReadFloat64("px"); err != nil {
		t.Fatal(err)
	}
	full := f.BytesRead() - gathered
	if gathered*10 > full {
		t.Fatalf("gather read %d bytes, full column %d — chunk selection not working", gathered, full)
	}
}

func TestCorruptionDetected(t *testing.T) {
	path, _, _ := writeTestFile(t, 100, 16)
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte in the first chunk's data region (after the 8-byte header).
	buf[16] ^= 0xFF
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := Open(path)
	if err != nil {
		t.Fatal(err) // directory still intact
	}
	defer f.Close()
	if _, err := f.ReadFloat64("px"); err == nil {
		t.Fatal("corrupt chunk read succeeded")
	}
}

func TestOpenRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "junk.col")
	if err := os.WriteFile(p, []byte("not a colstore file at all............."), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(p); err == nil {
		t.Fatal("garbage accepted")
	}
	tiny := filepath.Join(dir, "tiny.col")
	if err := os.WriteFile(tiny, []byte("xy"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(tiny); err == nil {
		t.Fatal("tiny file accepted")
	}
	if _, err := Open(filepath.Join(dir, "missing.col")); err == nil {
		t.Fatal("missing file accepted")
	}
}

// Property: random float64 columns round trip exactly.
func TestRoundTripProperty(t *testing.T) {
	dir := t.TempDir()
	i := 0
	f := func(vals []float64) bool {
		i++
		path := filepath.Join(dir, StepFileName(i))
		w, err := NewWriter(path, uint64(len(vals)), 3)
		if err != nil {
			return false
		}
		if err := w.AddFloat64("v", vals); err != nil {
			return false
		}
		if err := w.Close(); err != nil {
			return false
		}
		file, err := Open(path)
		if err != nil {
			return false
		}
		defer file.Close()
		got, err := file.ReadFloat64("v")
		if err != nil || len(got) != len(vals) {
			return false
		}
		for j := range vals {
			if math.Float64bits(got[j]) != math.Float64bits(vals[j]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestDataset(t *testing.T) {
	dir := t.TempDir()
	meta := DatasetMeta{Name: "test", Steps: 3, Variables: []string{"x", "px"}}
	ds, err := CreateDataset(dir, meta)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 3; s++ {
		w, err := NewWriter(ds.StepPath(s), 10, 4)
		if err != nil {
			t.Fatal(err)
		}
		vals := make([]float64, 10)
		for i := range vals {
			vals[i] = float64(s*10 + i)
		}
		if err := w.AddFloat64("x", vals); err != nil {
			t.Fatal(err)
		}
		if err := w.AddFloat64("px", vals); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
	}
	ds2, err := OpenDataset(dir)
	if err != nil {
		t.Fatal(err)
	}
	if ds2.Meta.Name != "test" || ds2.Meta.Steps != 3 {
		t.Fatalf("meta = %+v", ds2.Meta)
	}
	if err := ds2.Validate(); err != nil {
		t.Fatal(err)
	}
	f, err := ds2.OpenStep(1)
	if err != nil {
		t.Fatal(err)
	}
	vals, err := f.ReadFloat64("x")
	f.Close()
	if err != nil || vals[0] != 10 {
		t.Fatalf("step 1 x[0] = %v, %v", vals, err)
	}
	if _, err := ds2.OpenStep(-1); err == nil {
		t.Fatal("negative step accepted")
	}
	if _, err := ds2.OpenStep(3); err == nil {
		t.Fatal("out-of-range step accepted")
	}
	if ds2.HasIndex(0) {
		t.Fatal("HasIndex true with no index file")
	}
	if err := os.WriteFile(ds2.IndexPath(0), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if !ds2.HasIndex(0) {
		t.Fatal("HasIndex false after creating index file")
	}
}

func TestDatasetValidateCatchesMissingColumn(t *testing.T) {
	dir := t.TempDir()
	ds, err := CreateDataset(dir, DatasetMeta{Name: "bad", Steps: 1, Variables: []string{"x", "y"}})
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWriter(ds.StepPath(0), 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AddFloat64("x", []float64{1}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ds.Validate(); err == nil {
		t.Fatal("missing column not caught")
	}
}

func TestOpenDatasetErrors(t *testing.T) {
	if _, err := OpenDataset(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("missing dir accepted")
	}
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "meta.json"), []byte("{bad"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDataset(dir); err == nil {
		t.Fatal("bad meta accepted")
	}
}

func TestTruncationNeverPanics(t *testing.T) {
	path, _, _ := writeTestFile(t, 500, 64)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	for _, cut := range []int{0, 1, 8, 20, len(data) / 4, len(data) / 2, len(data) - 4} {
		p := filepath.Join(dir, "t.col")
		if err := os.WriteFile(p, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic at truncation %d: %v", cut, r)
				}
			}()
			f, err := Open(p)
			if err != nil {
				return // rejected at open: fine
			}
			defer f.Close()
			// Reads must error, not panic.
			if _, err := f.ReadFloat64("px"); err == nil {
				t.Fatalf("truncation %d: full read succeeded", cut)
			}
		}()
	}
}

func TestRandomCorruptionNeverPanics(t *testing.T) {
	path, _, _ := writeTestFile(t, 300, 32)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(93))
	dir := t.TempDir()
	for trial := 0; trial < 100; trial++ {
		corrupt := append([]byte(nil), data...)
		for k := 0; k < 1+rng.Intn(3); k++ {
			corrupt[rng.Intn(len(corrupt))] ^= byte(1 + rng.Intn(255))
		}
		p := filepath.Join(dir, "c.col")
		if err := os.WriteFile(p, corrupt, 0o644); err != nil {
			t.Fatal(err)
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on corrupted file (trial %d): %v", trial, r)
				}
			}()
			f, err := Open(p)
			if err != nil {
				return
			}
			defer f.Close()
			f.ReadFloat64("px")                     //nolint:errcheck // must not panic
			f.ReadInt64("id")                       //nolint:errcheck
			f.ReadFloat64At("px", []uint64{0, 100}) //nolint:errcheck
		}()
	}
}
