package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestCacheHitAndEvict(t *testing.T) {
	c := NewCache(2)
	get := func(key string) (any, Outcome) {
		v, o, err := c.Do(context.Background(), key, func(context.Context) (any, error) { return "v:" + key, nil })
		if err != nil {
			t.Fatal(err)
		}
		return v, o
	}
	if v, o := get("a"); o != Computed || v != "v:a" {
		t.Fatalf("first lookup: %v %v", v, o)
	}
	if _, o := get("a"); o != Hit {
		t.Fatalf("second lookup outcome %v, want Hit", o)
	}
	get("b")
	get("c") // evicts a (LRU)
	if _, o := get("a"); o != Computed {
		t.Fatalf("evicted key outcome %v, want Computed", o)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Evictions < 1 || st.Entries != 2 {
		t.Fatalf("stats %+v", st)
	}
}

func TestCacheLRUOrder(t *testing.T) {
	c := NewCache(2)
	do := func(key string) Outcome {
		_, o, _ := c.Do(context.Background(), key, func(context.Context) (any, error) { return key, nil })
		return o
	}
	do("a")
	do("b")
	do("a") // refresh a; b is now LRU
	do("c") // should evict b, keep a
	if o := do("a"); o != Hit {
		t.Fatalf("a outcome %v, want Hit (b should have been evicted)", o)
	}
	if o := do("b"); o != Computed {
		t.Fatalf("b outcome %v, want Computed", o)
	}
}

func TestCacheErrorNotStored(t *testing.T) {
	c := NewCache(4)
	boom := errors.New("boom")
	if _, _, err := c.Do(context.Background(), "k", func(context.Context) (any, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	// The failure must not be cached.
	v, o, err := c.Do(context.Background(), "k", func(context.Context) (any, error) { return 7, nil })
	if err != nil || o != Computed || v != 7 {
		t.Fatalf("after error: %v %v %v", v, o, err)
	}
}

// TestCacheSingleflight proves identical concurrent requests collapse to
// one compute call.
func TestCacheSingleflight(t *testing.T) {
	c := NewCache(4)
	var calls atomic.Int64
	started := make(chan struct{})
	release := make(chan struct{})

	const n = 16
	var wg sync.WaitGroup
	results := make([]any, n)
	errs := make([]error, n)
	outcomes := make([]Outcome, n)

	// First goroutine enters the compute fn and blocks; the rest must
	// coalesce onto it.
	wg.Add(1)
	go func() {
		defer wg.Done()
		results[0], outcomes[0], errs[0] = c.Do(context.Background(), "key", func(context.Context) (any, error) {
			calls.Add(1)
			close(started)
			<-release
			return "result", nil
		})
	}()
	<-started
	for i := 1; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[i], outcomes[i], errs[i] = c.Do(context.Background(), "key", func(context.Context) (any, error) {
				calls.Add(1)
				return "result", nil
			})
		}()
	}
	// Wait until every waiter has joined the in-flight call, then release.
	for c.Stats().Coalesced < n-1 {
		runtime.Gosched()
	}
	close(release)
	wg.Wait()

	if got := calls.Load(); got != 1 {
		t.Fatalf("compute ran %d times, want 1", got)
	}
	coalesced := 0
	for i := 0; i < n; i++ {
		if errs[i] != nil || results[i] != "result" {
			t.Fatalf("call %d: %v %v", i, results[i], errs[i])
		}
		if outcomes[i] == Coalesced {
			coalesced++
		}
	}
	if coalesced != n-1 {
		t.Fatalf("coalesced %d of %d calls, want %d", coalesced, n, n-1)
	}
}

// TestCacheStorageDisabled: maxEntries <= 0 must never store results,
// only coalesce.
func TestCacheStorageDisabled(t *testing.T) {
	c := NewCache(0)
	for i := 0; i < 3; i++ {
		_, o, err := c.Do(context.Background(), "k", func(context.Context) (any, error) { return i, nil })
		if err != nil || o != Computed {
			t.Fatalf("call %d: outcome %v, err %v", i, o, err)
		}
	}
	st := c.Stats()
	if st.Hits != 0 || st.Entries != 0 || st.Misses != 3 {
		t.Fatalf("stats %+v", st)
	}
}

// TestCacheAbandonedWaiterDoesNotPoisonFlight: a coalesced waiter that
// cancels must get its own ctx error immediately, while the flight keeps
// running for the remaining waiter and delivers (and caches) the result.
func TestCacheAbandonedWaiterDoesNotPoisonFlight(t *testing.T) {
	c := NewCache(4)
	started := make(chan struct{})
	release := make(chan struct{})
	var flightCanceled atomic.Bool

	type res struct {
		val any
		err error
	}
	first := make(chan res, 1)
	go func() {
		v, _, err := c.Do(context.Background(), "k", func(fctx context.Context) (any, error) {
			close(started)
			<-release
			flightCanceled.Store(fctx.Err() != nil)
			return "result", nil
		})
		first <- res{v, err}
	}()
	<-started

	// Second waiter coalesces, then abandons.
	ctx2, cancel2 := context.WithCancel(context.Background())
	second := make(chan res, 1)
	go func() {
		v, o, err := c.Do(ctx2, "k", func(context.Context) (any, error) {
			t.Error("coalesced waiter ran the compute fn")
			return nil, nil
		})
		if o != Coalesced {
			t.Errorf("second waiter outcome %v, want Coalesced", o)
		}
		second <- res{v, err}
	}()
	for c.Stats().Coalesced < 1 {
		runtime.Gosched()
	}
	cancel2()
	if r := <-second; !errors.Is(r.err, context.Canceled) {
		t.Fatalf("abandoning waiter: err = %v, want context.Canceled", r.err)
	}

	// Only now let the flight finish: the first waiter must still win.
	close(release)
	if r := <-first; r.err != nil || r.val != "result" {
		t.Fatalf("surviving waiter: %v, %v", r.val, r.err)
	}
	if flightCanceled.Load() {
		t.Fatal("flight context was canceled while a waiter remained")
	}
	// The result must have been stored despite the abandonment.
	if _, o, err := c.Do(context.Background(), "k", func(context.Context) (any, error) {
		return nil, errors.New("recomputed")
	}); err != nil || o != Hit {
		t.Fatalf("post-flight lookup: outcome %v, err %v, want Hit", o, err)
	}
	if st := c.Stats(); st.Abandoned != 1 {
		t.Fatalf("Abandoned = %d, want 1", st.Abandoned)
	}
}

// TestCacheLastWaiterCancelsFlight: when every waiter abandons, the flight
// context must be canceled so the backend stops working for nobody.
func TestCacheLastWaiterCancelsFlight(t *testing.T) {
	c := NewCache(4)
	started := make(chan struct{})
	fnDone := make(chan error, 1)

	ctx, cancel := context.WithCancel(context.Background())
	callDone := make(chan error, 1)
	go func() {
		_, _, err := c.Do(ctx, "k", func(fctx context.Context) (any, error) {
			close(started)
			<-fctx.Done() // the backend observing cancellation
			fnDone <- fctx.Err()
			return nil, fctx.Err()
		})
		callDone <- err
	}()
	<-started
	cancel()
	if err := <-callDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("Do returned %v, want context.Canceled", err)
	}
	if err := <-fnDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("flight ctx err = %v, want context.Canceled (backend never released)", err)
	}
	// The failed flight must not be cached; the key computes fresh.
	if v, o, err := c.Do(context.Background(), "k", func(context.Context) (any, error) {
		return 42, nil
	}); err != nil || o != Computed || v != 42 {
		t.Fatalf("after abandoned flight: %v %v %v", v, o, err)
	}
}

// TestCacheConcurrentKeys hammers the cache from many goroutines under
// -race.
func TestCacheConcurrentKeys(t *testing.T) {
	c := NewCache(8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", i%16)
				if _, _, err := c.Do(context.Background(), key, func(context.Context) (any, error) { return key, nil }); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
}
