package serve

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestCacheHitAndEvict(t *testing.T) {
	c := NewCache(2)
	get := func(key string) (any, Outcome) {
		v, o, err := c.Do(key, func() (any, error) { return "v:" + key, nil })
		if err != nil {
			t.Fatal(err)
		}
		return v, o
	}
	if v, o := get("a"); o != Computed || v != "v:a" {
		t.Fatalf("first lookup: %v %v", v, o)
	}
	if _, o := get("a"); o != Hit {
		t.Fatalf("second lookup outcome %v, want Hit", o)
	}
	get("b")
	get("c") // evicts a (LRU)
	if _, o := get("a"); o != Computed {
		t.Fatalf("evicted key outcome %v, want Computed", o)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Evictions < 1 || st.Entries != 2 {
		t.Fatalf("stats %+v", st)
	}
}

func TestCacheLRUOrder(t *testing.T) {
	c := NewCache(2)
	do := func(key string) Outcome {
		_, o, _ := c.Do(key, func() (any, error) { return key, nil })
		return o
	}
	do("a")
	do("b")
	do("a") // refresh a; b is now LRU
	do("c") // should evict b, keep a
	if o := do("a"); o != Hit {
		t.Fatalf("a outcome %v, want Hit (b should have been evicted)", o)
	}
	if o := do("b"); o != Computed {
		t.Fatalf("b outcome %v, want Computed", o)
	}
}

func TestCacheErrorNotStored(t *testing.T) {
	c := NewCache(4)
	boom := errors.New("boom")
	if _, _, err := c.Do("k", func() (any, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	// The failure must not be cached.
	v, o, err := c.Do("k", func() (any, error) { return 7, nil })
	if err != nil || o != Computed || v != 7 {
		t.Fatalf("after error: %v %v %v", v, o, err)
	}
}

// TestCacheSingleflight proves identical concurrent requests collapse to
// one compute call.
func TestCacheSingleflight(t *testing.T) {
	c := NewCache(4)
	var calls atomic.Int64
	started := make(chan struct{})
	release := make(chan struct{})

	const n = 16
	var wg sync.WaitGroup
	results := make([]any, n)
	errs := make([]error, n)
	outcomes := make([]Outcome, n)

	// First goroutine enters the compute fn and blocks; the rest must
	// coalesce onto it.
	wg.Add(1)
	go func() {
		defer wg.Done()
		results[0], outcomes[0], errs[0] = c.Do("key", func() (any, error) {
			calls.Add(1)
			close(started)
			<-release
			return "result", nil
		})
	}()
	<-started
	for i := 1; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[i], outcomes[i], errs[i] = c.Do("key", func() (any, error) {
				calls.Add(1)
				return "result", nil
			})
		}()
	}
	// Wait until every waiter has joined the in-flight call, then release.
	for c.Stats().Coalesced < n-1 {
		runtime.Gosched()
	}
	close(release)
	wg.Wait()

	if got := calls.Load(); got != 1 {
		t.Fatalf("compute ran %d times, want 1", got)
	}
	coalesced := 0
	for i := 0; i < n; i++ {
		if errs[i] != nil || results[i] != "result" {
			t.Fatalf("call %d: %v %v", i, results[i], errs[i])
		}
		if outcomes[i] == Coalesced {
			coalesced++
		}
	}
	if coalesced != n-1 {
		t.Fatalf("coalesced %d of %d calls, want %d", coalesced, n, n-1)
	}
}

// TestCacheStorageDisabled: maxEntries <= 0 must never store results,
// only coalesce.
func TestCacheStorageDisabled(t *testing.T) {
	c := NewCache(0)
	for i := 0; i < 3; i++ {
		_, o, err := c.Do("k", func() (any, error) { return i, nil })
		if err != nil || o != Computed {
			t.Fatalf("call %d: outcome %v, err %v", i, o, err)
		}
	}
	st := c.Stats()
	if st.Hits != 0 || st.Entries != 0 || st.Misses != 3 {
		t.Fatalf("stats %+v", st)
	}
}

// TestCacheConcurrentKeys hammers the cache from many goroutines under
// -race.
func TestCacheConcurrentKeys(t *testing.T) {
	c := NewCache(8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", i%16)
				if _, _, err := c.Do(key, func() (any, error) { return key, nil }); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
}
