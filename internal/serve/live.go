package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fastbit"
	"repro/internal/fastquery"
	"repro/internal/ingest"
)

// MaxIngestBody bounds one POST /v1/ingest request body. A timestep of
// 10M particles with 8 variables is ~1.5 GB of JSON; anything bigger
// should be split into more steps, not a larger one.
const MaxIngestBody = 1 << 31

// LiveConfig parameterises a live (read-write) dataset. Zero values take
// the documented defaults.
type LiveConfig struct {
	// IngestWorkers bounds the background index-builder pool. Default 1.
	IngestWorkers int
	// CatalogPoll is how often the catalog watcher re-reads the manifest
	// generation from disk, picking up commits made by other processes
	// sharing the directory. Default 500ms; negative disables the watcher
	// (in-process commits still refresh immediately).
	CatalogPoll time.Duration
	// IndexVars lists the variables the builder indexes; nil indexes every
	// declared variable except the identifier column.
	IndexVars []string
	// Index holds the bitmap index build parameters.
	Index fastbit.IndexOptions
	// BuildRetries bounds index build attempts per step; 0 uses the
	// builder default (5).
	BuildRetries int
}

func (c LiveConfig) withDefaults() LiveConfig {
	if c.IngestWorkers <= 0 {
		c.IngestWorkers = 1
	}
	if c.CatalogPoll == 0 {
		c.CatalogPoll = 500 * time.Millisecond
	}
	return c
}

// liveState is the ingestion side of one live dataset: the open catalog,
// the step writer behind POST /v1/ingest, the background index-builder
// pool, and the generation watcher.
type liveState struct {
	cat     *ingest.Catalog
	writer  *ingest.Writer
	builder *ingest.Builder
	// man is the serving snapshot of the manifest, refreshed after every
	// in-process mutation and by the watcher; readers (cache keys, steps
	// detail, stats) load it lock-free.
	man atomic.Pointer[ingest.Manifest]

	ingestMu sync.Mutex // serializes POST /v1/ingest appends
	stop     chan struct{}
	stopped  sync.Once
	done     chan struct{}
}

func (l *liveState) stopAll() {
	l.stopped.Do(func() {
		close(l.stop)
		<-l.done
		l.builder.Stop()
	})
}

// stats summarizes the ingestion pipeline for /v1/stats.
func (l *liveState) stats() IngestStats {
	man := l.man.Load()
	built, retries, failures := l.builder.Stats()
	return IngestStats{
		Generation:    man.Generation,
		Committed:     len(man.Steps),
		Indexed:       man.IndexedSteps(),
		Lag:           man.Lag(),
		Backlog:       l.builder.Backlog(),
		IndexesBuilt:  built,
		IndexRetries:  retries,
		IndexFailures: failures,
	}
}

// AddLiveDataset opens (or bootstraps, for a legacy lwfagen directory) the
// dataset in dir as a live dataset served under name: it accepts new
// timesteps via POST /v1/ingest, builds their sidecar indexes in the
// background, and hot-reloads so new steps become queryable — scan backend
// first, fastbit once the index lands — without a restart.
func (s *Server) AddLiveDataset(name, dir string, lc LiveConfig) error {
	lc = lc.withDefaults()
	cat, err := ingest.Open(dir)
	if err != nil {
		return err
	}
	src, err := fastquery.Open(dir)
	if err != nil {
		return err
	}
	d := &dataset{name: name, src: src, steps: map[int]*stepHandle{}}
	live := &liveState{
		cat:    cat,
		writer: ingest.NewWriter(cat, 0),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	man := cat.Snapshot()
	live.man.Store(&man)
	d.live = live
	live.builder = ingest.NewBuilder(cat, ingest.BuilderConfig{
		Workers:     lc.IngestWorkers,
		MaxAttempts: lc.BuildRetries,
		IndexVars:   lc.IndexVars,
		Index:       lc.Index,
		Logger:      s.cfg.Logger,
		// Both hooks refresh the snapshot: a publish bumps the step's
		// generation (upgrading it to fastbit and rotating its cache keys),
		// a permanent failure records the cause for /v1/steps.
		OnPublished: func(step int) { s.refreshLive(d) },
		OnFailed:    func(step int, err error) { s.refreshLive(d) },
	})

	s.mu.Lock()
	if _, dup := s.datasets[name]; dup {
		s.mu.Unlock()
		src.Close() //nolint:errcheck // idempotent
		return fmt.Errorf("serve: duplicate dataset %q", name)
	}
	s.datasets[name] = d
	s.order = append(s.order, name)
	s.mu.Unlock()

	live.builder.Start() // re-enqueues committed-but-unindexed steps
	go s.watchCatalog(d, lc.CatalogPoll)
	return nil
}

// refreshLive republishes the manifest snapshot and reloads the source so
// newly committed steps open. Safe to call concurrently; the snapshot and
// the dataset pointer each swap atomically.
func (s *Server) refreshLive(d *dataset) {
	man := d.live.cat.Snapshot()
	d.live.man.Store(&man)
	if _, err := d.src.Reload(); err != nil {
		s.cfg.Logger.Error("live reload", "dataset", d.name, "err", err)
	}
}

// watchCatalog polls the on-disk catalog generation and, when it moves
// past the serving snapshot, loads the manifest from disk and reloads the
// source — the path by which commits from another process (an external
// writer appending to the shared directory) become visible without a
// restart. In-process commits refresh synchronously and never wait on the
// poll. The catalog is single-writer: a directory fed by an external
// writer must not also take POST /v1/ingest.
func (s *Server) watchCatalog(d *dataset, poll time.Duration) {
	defer close(d.live.done)
	if poll < 0 {
		<-d.live.stop
		return
	}
	tick := time.NewTicker(poll)
	defer tick.Stop()
	for {
		select {
		case <-d.live.stop:
			return
		case <-tick.C:
			g, err := ingest.ReadGeneration(d.live.cat.Dir())
			if err != nil || g <= d.live.man.Load().Generation {
				continue
			}
			man, err := ingest.ReadManifest(d.live.cat.Dir())
			if err != nil {
				s.cfg.Logger.Error("live watch", "dataset", d.name, "err", err)
				continue
			}
			// Re-check under the freshly read manifest: a concurrent
			// in-process mutation may have refreshed past what disk held
			// when the generation was sampled.
			if man.Generation > d.live.man.Load().Generation {
				d.live.man.Store(&man)
				if _, err := d.src.Reload(); err != nil {
					s.cfg.Logger.Error("live reload", "dataset", d.name, "err", err)
				}
			}
		}
	}
}

// indexState classifies timestep t for /v1/steps detail: "indexed",
// "pending" (committed, build not finished), "failed" (permanent build
// failure; serves scan-only), or "none" for static datasets without a
// sidecar.
func (d *dataset) indexState(t int, st *fastquery.Step) string {
	if d.live == nil {
		if st.HasIndex() {
			return "indexed"
		}
		return "none"
	}
	man := d.live.man.Load()
	if t < 0 || t >= len(man.Steps) {
		return "none"
	}
	switch e := man.Steps[t]; {
	case e.Indexed:
		return "indexed"
	case e.IndexError != "":
		return "failed"
	default:
		return "pending"
	}
}

// handleIngest is POST /v1/ingest: append one timestep to a live dataset.
// The columns land through colstore.Writer (atomic temp+fsync+rename),
// the catalog commit makes the step durable and immediately queryable via
// the scan backend, and the background builder upgrades it to fastbit.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	// Ingest is the lowest admission class: producers buffer and retry, so
	// under pressure appends shed (with a Retry-After sized to the drain
	// rate) before any read traffic does.
	release, aerr := s.admit(r, ClassIngest)
	if aerr != nil {
		s.writeShed(w, ClassIngest, aerr)
		return
	}
	defer release()
	var body IngestBody
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, MaxIngestBody))
	if err := dec.Decode(&body); err != nil {
		writeError(w, http.StatusBadRequest, "decode body: %v", err)
		return
	}
	name := body.Dataset
	if name == "" {
		name = r.URL.Query().Get("dataset")
	}
	s.mu.RLock()
	var d *dataset
	if name == "" && len(s.order) == 1 {
		d = s.datasets[s.order[0]]
	} else {
		d = s.datasets[name]
	}
	s.mu.RUnlock()
	if d == nil {
		writeError(w, http.StatusNotFound, "unknown dataset %q", name)
		return
	}
	if d.live == nil {
		writeError(w, http.StatusConflict, "dataset %q is not live (start with -live)", d.name)
		return
	}
	cols := make([]ingest.Column, len(body.Columns))
	for i, c := range body.Columns {
		cols[i] = ingest.Column{Name: c.Name, Float: c.Float, Int: c.Int}
	}
	// One append at a time per dataset: steps are strictly ordered and the
	// writer validates against the committed count.
	d.live.ingestMu.Lock()
	entry, gen, err := d.live.writer.AppendStep(cols)
	if err == nil {
		s.refreshLive(d)
	}
	d.live.ingestMu.Unlock()
	if err != nil {
		// Validation failures are the client's; anything else is ours.
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	d.live.builder.Enqueue(entry.Step)
	s.cfg.Logger.Info("step ingested",
		"dataset", d.name, "step", entry.Step, "rows", entry.Rows, "gen", gen)
	writeJSON(w, http.StatusOK, IngestResponse{
		Dataset:    d.name,
		Step:       entry.Step,
		Rows:       entry.Rows,
		Bytes:      entry.DataBytes,
		Generation: gen,
		Steps:      entry.Step + 1,
	})
}
