package serve

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/fastbit"
	"repro/internal/sim"
)

// sharedDataset generates one small dataset for all tests in the package.
var (
	datasetOnce sync.Once
	datasetDir  string
	datasetErr  error
)

func testDataDir(t testing.TB) string {
	t.Helper()
	datasetOnce.Do(func() {
		dir, err := os.MkdirTemp("", "serve-test-*")
		if err != nil {
			datasetErr = err
			return
		}
		cfg := sim.DefaultConfig()
		cfg.Steps = 4
		cfg.BackgroundPerStep = 3000
		cfg.BeamParticles = 60
		_, datasetErr = sim.WriteDataset(dir, cfg, sim.WriteOptions{
			Index: fastbit.IndexOptions{Bins: 64},
		})
		datasetDir = dir
	})
	if datasetErr != nil {
		t.Fatal(datasetErr)
	}
	return datasetDir
}

func TestMain(m *testing.M) {
	code := m.Run()
	if datasetDir != "" {
		os.RemoveAll(datasetDir)
	}
	os.Exit(code)
}

func testServer(t testing.TB, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	if err := s.AddDataset("lwfa", testDataDir(t)); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

// get fetches path and decodes the JSON body into out, returning the
// status code and raw body.
func get(t *testing.T, ts *httptest.Server, path string, out any) (int, string) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("GET %s: decode %q: %v", path, raw, err)
		}
	}
	return resp.StatusCode, string(raw)
}

func TestMetadataEndpoints(t *testing.T) {
	_, ts := testServer(t, Config{})

	var dss []DatasetInfo
	if code, body := get(t, ts, "/v1/datasets", &dss); code != 200 {
		t.Fatalf("datasets: %d %s", code, body)
	}
	if len(dss) != 1 || dss[0].Name != "lwfa" || dss[0].Steps != 4 {
		t.Fatalf("datasets body: %+v", dss)
	}

	var steps StepsBody
	if code, body := get(t, ts, "/v1/steps?dataset=lwfa&detail=1", &steps); code != 200 {
		t.Fatalf("steps: %d %s", code, body)
	}
	if steps.Steps != 4 || len(steps.Detail) != 4 || !steps.Detail[0].Indexed || steps.Detail[0].Rows == 0 {
		t.Fatalf("steps body: %+v", steps)
	}

	var vars VarsBody
	if code, body := get(t, ts, "/v1/vars?dataset=lwfa&step=3", &vars); code != 200 {
		t.Fatalf("vars: %d %s", code, body)
	}
	found := false
	for _, v := range vars.Vars {
		if v.Name == "px" && v.Max > v.Min {
			found = true
		}
	}
	if !found {
		t.Fatalf("vars body missing px range: %+v", vars)
	}
}

// TestHandlerErrors is the table-driven error-path test: bad query → 400
// with a parse position, unknown var → 404, unknown dataset → 404, bad
// params → 400.
func TestHandlerErrors(t *testing.T) {
	_, ts := testServer(t, Config{})
	cases := []struct {
		name     string
		path     string
		wantCode int
		wantSub  string
	}{
		{"bad query syntax", "/v1/query?q=" + url.QueryEscape("px >> 1"), 400, "position"},
		{"bad query trailing", "/v1/query?q=" + url.QueryEscape("px > 1 &&"), 400, "position"},
		{"missing query", "/v1/query", 400, "missing q"},
		{"unknown query var", "/v1/query?q=" + url.QueryEscape("nosuch > 1"), 404, "unknown variable"},
		{"unknown dataset", "/v1/query?dataset=nope&q=" + url.QueryEscape("px > 1"), 404, "unknown dataset"},
		{"step out of range", "/v1/query?step=99&q=" + url.QueryEscape("px > 1"), 404, "out of range"},
		{"bad step", "/v1/query?step=zz&q=" + url.QueryEscape("px > 1"), 400, "bad step"},
		{"bad backend", "/v1/query?backend=gpu&q=" + url.QueryEscape("px > 1"), 400, "unknown backend"},
		{"unknown hist var", "/v1/hist1d?var=nosuch", 404, "unknown variable"},
		{"missing hist var", "/v1/hist1d", 400, "missing variable"},
		{"bins out of range", "/v1/hist2d?x=x&y=px&xbins=100000", 400, "out of range"},
		{"bad binning", "/v1/hist2d?x=x&y=px&binning=magic", 400, "unknown binning"},
		{"bad range", "/v1/hist2d?x=x&y=px&xlo=abc", 400, "bad xlo"},
		{"unknown hist2d var", "/v1/hist2d?x=x&y=nosuch", 404, "unknown variable"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var e ErrorBody
			code, body := get(t, ts, tc.path, &e)
			if code != tc.wantCode {
				t.Fatalf("GET %s = %d (%s), want %d", tc.path, code, body, tc.wantCode)
			}
			if !strings.Contains(e.Error, tc.wantSub) {
				t.Fatalf("GET %s error %q missing %q", tc.path, e.Error, tc.wantSub)
			}
		})
	}
}

// TestBackendsAgree drives the drill-down loop over HTTP and checks the
// fastbit and scan backends return identical results.
func TestBackendsAgree(t *testing.T) {
	_, ts := testServer(t, Config{})
	const q = "px > 1e9 && y > -1e-3"

	var fb, sc QueryBody
	if code, body := get(t, ts, "/v1/query?backend=fastbit&q="+url.QueryEscape(q), &fb); code != 200 {
		t.Fatalf("query fastbit: %d %s", code, body)
	}
	if code, body := get(t, ts, "/v1/query?backend=scan&q="+url.QueryEscape(q), &sc); code != 200 {
		t.Fatalf("query scan: %d %s", code, body)
	}
	if fb.Matches == 0 || fb.Matches != sc.Matches {
		t.Fatalf("matches: fastbit %d, scan %d", fb.Matches, sc.Matches)
	}
	if fb.Plan != sc.Plan || fb.Plan == "" {
		t.Fatalf("plans differ: %q vs %q", fb.Plan, sc.Plan)
	}

	for _, binning := range []string{"uniform", "adaptive"} {
		path := "/v1/hist2d?x=x&y=px&xbins=16&ybins=16&binning=" + binning + "&q=" + url.QueryEscape(q)
		var hfb, hsc Hist2DBody
		if code, body := get(t, ts, path+"&backend=fastbit", &hfb); code != 200 {
			t.Fatalf("hist2d fastbit %s: %d %s", binning, code, body)
		}
		if code, body := get(t, ts, path+"&backend=scan", &hsc); code != 200 {
			t.Fatalf("hist2d scan %s: %d %s", binning, code, body)
		}
		if !reflect.DeepEqual(hfb.Counts, hsc.Counts) || !reflect.DeepEqual(hfb.XEdges, hsc.XEdges) {
			t.Fatalf("%s: backends disagree", binning)
		}
		if hfb.Total != fb.Matches {
			t.Fatalf("%s: histogram total %d != selection %d", binning, hfb.Total, fb.Matches)
		}
	}

	var h1fb, h1sc Hist1DBody
	p1 := "/v1/hist1d?var=px&bins=32&q=" + url.QueryEscape(q)
	if code, body := get(t, ts, p1+"&backend=fastbit", &h1fb); code != 200 {
		t.Fatalf("hist1d fastbit: %d %s", code, body)
	}
	if code, body := get(t, ts, p1+"&backend=scan", &h1sc); code != 200 {
		t.Fatalf("hist1d scan: %d %s", code, body)
	}
	if !reflect.DeepEqual(h1fb.Counts, h1sc.Counts) {
		t.Fatal("hist1d backends disagree")
	}
}

// TestPlanCache proves: (1) repeated identical requests are served from
// cache — the hit counter advances while the backend call count does not;
// (2) a semantically equivalent but differently written query hits the
// same entry through plan canonicalization.
func TestPlanCache(t *testing.T) {
	s, ts := testServer(t, Config{})
	const path = "/v1/hist2d?x=x&y=px&xbins=8&ybins=8&q="
	q1 := url.QueryEscape("px > 1e9 && y > -1e-3")
	q2 := url.QueryEscape("y > -1e-3 && px > 1e9") // reordered operands

	var first Hist2DBody
	if code, body := get(t, ts, path+q1, &first); code != 200 {
		t.Fatalf("first: %d %s", code, body)
	}
	if first.Outcome != "computed" {
		t.Fatalf("first outcome %q", first.Outcome)
	}
	calls := s.BackendCalls()
	hits := s.cache.Stats().Hits

	for i, q := range []string{q1, q2, q1} {
		var h Hist2DBody
		if code, body := get(t, ts, path+q, &h); code != 200 {
			t.Fatalf("repeat %d: %d %s", i, code, body)
		}
		if h.Outcome != "hit" {
			t.Fatalf("repeat %d outcome %q, want hit", i, h.Outcome)
		}
		if !reflect.DeepEqual(h.Counts, first.Counts) {
			t.Fatalf("repeat %d: counts differ", i)
		}
	}
	if got := s.BackendCalls(); got != calls {
		t.Fatalf("backend calls advanced %d -> %d on cached requests", calls, got)
	}
	if got := s.cache.Stats().Hits; got != hits+3 {
		t.Fatalf("hits %d -> %d, want +3", hits, got)
	}
}

// TestServerCoalescing fires identical concurrent requests and checks the
// backend ran at most once for all of them.
func TestServerCoalescing(t *testing.T) {
	s, ts := testServer(t, Config{Concurrency: 16})
	path := "/v1/hist2d?x=x&y=px&xbins=64&ybins=64&q=" + url.QueryEscape("px > 5e8")
	before := s.BackendCalls()

	const n = 8
	var wg sync.WaitGroup
	codes := make([]int, n)
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(ts.URL + path)
			if err != nil {
				t.Error(err)
				return
			}
			resp.Body.Close()
			codes[i] = resp.StatusCode
		}()
	}
	wg.Wait()
	for i, code := range codes {
		if code != 200 {
			t.Fatalf("request %d: %d", i, code)
		}
	}
	if got := s.BackendCalls() - before; got != 1 {
		t.Fatalf("backend ran %d times for %d identical concurrent requests", got, n)
	}
}

// TestOverload fills the admission gate and checks new arrivals are shed
// with 429 + Retry-After, and queued arrivals get 503 after the deadline.
func TestOverload(t *testing.T) {
	s, ts := testServer(t, Config{Concurrency: 1, QueueDepth: 1, QueueTimeout: 30 * time.Millisecond})

	// Occupy the only slot directly.
	if err := s.gate.Acquire(context.Background(), ClassDrill); err != nil {
		t.Fatal(err)
	}
	defer s.gate.Release(0)

	// First arrival queues and should 503 after the deadline.
	done := make(chan struct{})
	go func() {
		defer close(done)
		resp, err := http.Get(ts.URL + "/v1/query?q=" + url.QueryEscape("px > 1"))
		if err != nil {
			t.Error(err)
			return
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("queued request: %d, want 503", resp.StatusCode)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Error("queued 503 missing Retry-After")
		}
	}()

	// Wait for it to take the queue slot, then a second arrival must be
	// shed immediately with 429.
	deadline := time.Now().Add(time.Second)
	for s.gate.Stats().Queued == 0 {
		if time.Now().After(deadline) {
			t.Fatal("request never queued")
		}
		time.Sleep(time.Millisecond)
	}
	resp, err := http.Get(ts.URL + "/v1/query?q=" + url.QueryEscape("px > 1"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("shed request: %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 missing Retry-After")
	}
	<-done

	// Metadata endpoints bypass admission control and still answer.
	var dss []DatasetInfo
	if code, body := get(t, ts, "/v1/datasets", &dss); code != 200 {
		t.Fatalf("datasets under overload: %d %s", code, body)
	}

	var stats StatsBody
	if code, _ := get(t, ts, "/v1/stats", &stats); code != 200 {
		t.Fatal("stats failed")
	}
	if stats.Admission.RejectedFull == 0 || stats.Admission.RejectedDeadline == 0 {
		t.Fatalf("admission stats %+v", stats.Admission)
	}
}

// TestDefaultDatasetAndStep checks the single-dataset convenience default
// and the default (last) step.
func TestDefaultDatasetAndStep(t *testing.T) {
	_, ts := testServer(t, Config{})
	var qb QueryBody
	if code, body := get(t, ts, "/v1/query?q="+url.QueryEscape("px > 1e9"), &qb); code != 200 {
		t.Fatalf("query: %d %s", code, body)
	}
	if qb.Dataset != "lwfa" || qb.Step != 3 {
		t.Fatalf("defaults: %+v", qb)
	}
}

// TestScanOnlyFallback: a request for fastbit on an unindexed dataset is
// rejected, while the default backend falls back to scan.
func TestScanOnlyFallback(t *testing.T) {
	dir, err := os.MkdirTemp("", "serve-noidx-*")
	if err != nil {
		t.Fatal(err)
	}
	defer os.RemoveAll(dir)
	cfg := sim.DefaultConfig()
	cfg.Steps = 2
	cfg.BackgroundPerStep = 500
	cfg.BeamParticles = 20
	if _, err := sim.WriteDataset(dir, cfg, sim.WriteOptions{SkipIndex: true}); err != nil {
		t.Fatal(err)
	}
	s := New(Config{})
	if err := s.AddDataset("noidx", dir); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer func() {
		ts.Close()
		s.Close()
	}()

	var e ErrorBody
	code, _ := get(t, ts, "/v1/query?backend=fastbit&q="+url.QueryEscape("px > 1e9"), &e)
	if code != 400 || !strings.Contains(e.Error, "no index") {
		t.Fatalf("fastbit on unindexed: %d %q", code, e.Error)
	}
	var qb QueryBody
	if code, body := get(t, ts, "/v1/query?q="+url.QueryEscape("px > 1e9"), &qb); code != 200 {
		t.Fatalf("default backend: %d %s", code, body)
	}
	if qb.Backend != "custom" {
		t.Fatalf("backend %q, want custom (scan)", qb.Backend)
	}
}

// TestStatsEndpointShape sanity-checks counter plumbing end to end.
func TestConfigDefaults(t *testing.T) {
	d := Config{}.withDefaults()
	if d.CacheEntries != 256 || d.Concurrency != 8 || d.QueueDepth != 16 || d.QueueTimeout != 2*time.Second {
		t.Fatalf("zero-value defaults: %+v", d)
	}
	off := Config{CacheEntries: -1, QueueDepth: -1}.withDefaults()
	if off.CacheEntries >= 0 {
		t.Fatalf("CacheEntries -1 should stay negative (storage off), got %d", off.CacheEntries)
	}
	if off.QueueDepth != 0 {
		t.Fatalf("QueueDepth -1 should become 0 (no queue), got %d", off.QueueDepth)
	}
}

func TestStatsEndpointShape(t *testing.T) {
	_, ts := testServer(t, Config{})
	get(t, ts, "/v1/query?q="+url.QueryEscape("px > 2e9"), nil)
	get(t, ts, "/v1/query?q="+url.QueryEscape("px > 2e9"), nil)
	var st StatsBody
	if code, body := get(t, ts, "/v1/stats", &st); code != 200 {
		t.Fatalf("stats: %d %s", code, body)
	}
	if st.Cache.Misses == 0 || st.Cache.Hits == 0 || st.BackendCalls == 0 || st.Admission.Admitted == 0 {
		t.Fatalf("stats body: %+v", st)
	}
}
