package serve

import (
	"context"
	"net/http"
	"strconv"
	"time"

	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/shard"
)

// ExplainBody is the per-query execution profile returned with
// ?debug=explain (embedded in the response) or ?explain=only (returned
// instead of the answer). Fragments lists every fragment the plan
// attempted — cache hits, budget refusals and transport failures
// included — and Totals is the exact sum of the fragment costs, the
// identity the explain tests assert.
type ExplainBody struct {
	TraceID  string `json:"trace_id,omitempty"`
	Endpoint string `json:"endpoint"`
	// Mode mirrors plan.Result.Mode: scatter, wholesale, or local.
	Mode   string `json:"mode,omitempty"`
	Shards int    `json:"shards"`

	// Outcome is the result-cache disposition (computed | hit |
	// coalesced); CacheSource names where a no-work answer came from:
	// "result" (frontend result cache), "coalesced" (another request's
	// in-flight computation), or "coarse" (brownout's coarser cached
	// resolution). Empty means the plan actually executed.
	Outcome     string `json:"outcome"`
	CacheSource string `json:"cache_source,omitempty"`

	Fragments       []plan.FragProfile `json:"fragments,omitempty"`
	FragmentCount   int                `json:"fragment_count"`
	CachedFragments int                `json:"cached_fragments"`
	Totals          obs.CostSnapshot   `json:"totals"`

	AdmissionWaitMS float64 `json:"admission_wait_ms"`
	// BudgetLeftMS is the time left until the request deadline when the
	// response was assembled; 0 when the request ran unbounded.
	BudgetLeftMS float64 `json:"budget_left_ms,omitempty"`

	Partial         bool   `json:"partial,omitempty"`
	FailedShards    []int  `json:"failed_shards,omitempty"`
	BudgetExhausted bool   `json:"budget_exhausted,omitempty"`
	Degraded        string `json:"degraded,omitempty"`

	// Replicas is the frontend's client-side view of each shard's
	// replicas (health, circuit-breaker state) at respond time, present
	// on scatter frontends only.
	Replicas [][]shard.ReplicaStatus `json:"replicas,omitempty"`

	ElapsedMS float64 `json:"elapsed_ms"`
}

// explainOnlyBody wraps an explain profile when the caller asked for the
// profile instead of the answer.
type explainOnlyBody struct {
	Explain *ExplainBody `json:"explain"`
}

// parseExplain reads the explain request knobs: ?debug=explain asks for
// a profile beside the answer, ?explain=only for the profile alone.
func parseExplain(r *http.Request) (explain, only bool) {
	only = r.FormValue("explain") == "only"
	return only || r.FormValue("debug") == "explain", only
}

// buildExplain assembles the explain body for one request from the
// profile collector and the plan result (nil when the answer came from a
// cache and no plan ran). ctx is the execution context when one was
// derived (its deadline yields the remaining budget); nil on cache-peek
// paths that never executed.
func (s *Server) buildExplain(ctx context.Context, r *http.Request, req *request, endpoint string, res *plan.Result, outcome Outcome, degraded string, start time.Time) *ExplainBody {
	eb := &ExplainBody{
		Endpoint:        endpoint,
		Shards:          1,
		Outcome:         outcome.String(),
		AdmissionWaitMS: req.waitMS,
		ElapsedMS:       float64(time.Since(start)) / float64(time.Millisecond),
	}
	if sp := obs.SpanFromContext(r.Context()); sp != nil {
		eb.TraceID = sp.TraceID()
	}
	if c := s.shardClient(); c != nil {
		eb.Shards = c.Shards()
		eb.Replicas = c.ReplicaStates()
	}
	switch {
	case degraded == degradedCoarse:
		eb.CacheSource = "coarse"
	case outcome == Hit:
		eb.CacheSource = "result"
	case outcome == Coalesced:
		eb.CacheSource = "coalesced"
	}
	eb.Degraded = degraded
	if ctx != nil {
		if dl, ok := ctx.Deadline(); ok {
			if left := time.Until(dl); left > 0 {
				eb.BudgetLeftMS = float64(left) / float64(time.Millisecond)
			}
		}
	}
	if res != nil {
		eb.Mode = res.Mode
		eb.Partial = res.Partial
		eb.FailedShards = res.Failed
		eb.BudgetExhausted = res.BudgetExhausted
	}
	if req.prof != nil {
		eb.Fragments = req.prof.Fragments()
		eb.FragmentCount = len(eb.Fragments)
		eb.Totals = req.prof.Totals()
		for _, fp := range eb.Fragments {
			if fp.Cached {
				eb.CachedFragments++
			}
		}
	}
	return eb
}

// noteExplain records the request's plan shape in the slow-query note so
// slow entries carry shard/fragment counts and degradation markers even
// when no explain was requested. The note is written by the handler and
// read by the middleware's finish on the same goroutine, so no lock.
func (s *Server) noteExplain(r *http.Request, req *request, res *plan.Result, outcome Outcome, degraded string) {
	n := noteFromContext(r.Context())
	if n == nil {
		return
	}
	n.shards = 1
	if c := s.shardClient(); c != nil {
		n.shards = c.Shards()
	}
	if res != nil {
		n.fragments = res.Fragments
		n.partial = res.Partial
		n.budgetExhausted = res.BudgetExhausted
	}
	n.degraded = degraded
	switch {
	case degraded == degradedCoarse:
		n.cacheSource = "coarse"
	case outcome == Hit:
		n.cacheSource = "result"
	case outcome == Coalesced:
		n.cacheSource = "coalesced"
	}
	if req.prof != nil {
		for _, fp := range req.prof.Fragments() {
			if fp.Cached {
				n.cachedFrags++
			}
		}
	}
}

// MetricsHandler returns the server's /metrics handler — federated
// across the shard fleet on a scatter frontend — for mounting on an
// admin mux next to pprof.
func (s *Server) MetricsHandler() http.Handler {
	return http.HandlerFunc(s.handleMetrics)
}

// handleMetrics serves /metrics. A plain server exposes its own registry
// plus the process-wide default; a scatter frontend additionally polls
// every shard worker's registry over RPC and merges the fleet into one
// federated exposition, shard series labelled shard="N" and the
// frontend's own series unlabelled.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	c := s.shardClient()
	if c == nil {
		obs.Handler(s.reg, obs.Default()).ServeHTTP(w, r)
		return
	}
	groups := []obs.MetricsGroup{{Metrics: obs.SnapshotAll(s.reg, obs.Default())}}
	for _, sm := range c.Metrics(r.Context(), 2*time.Second) {
		if sm.Err != "" {
			s.federationErrors.Inc()
			continue
		}
		groups = append(groups, obs.MetricsGroup{
			Extra:   []obs.Label{obs.L("shard", strconv.Itoa(sm.Shard))},
			Metrics: sm.Metrics,
		})
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	obs.WriteFederated(w, obs.WantExemplars(r), groups...)
}
