// Guard benchmark for observability overhead: the instrumented request
// path (traces, exemplar histograms, burn accounting, profile plumbing)
// must stay within 2% of the -obs=false path at p95. The guard protects
// the "~0% overhead" claim as the explain machinery grows — a regression
// here usually means per-request work crept outside the nil-check fast
// paths.
//
// The timing assertion is gated behind OBS_GUARD=1 (CI sets it): on a
// shared laptop the measurement is noise, and a flaky guard is worse
// than none. The benchmarks run anywhere via -bench 'QueryObs'.
package serve

import (
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"sort"
	"testing"
	"time"

	"repro/internal/obs"
)

// timedGet issues one GET and returns its wall time.
func timedGet(tb testing.TB, client *http.Client, url string) time.Duration {
	tb.Helper()
	start := time.Now()
	resp, err := client.Get(url)
	if err != nil {
		tb.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		tb.Fatalf("status %d", resp.StatusCode)
	}
	return time.Since(start)
}

func p95(lats []time.Duration) time.Duration {
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	return lats[len(lats)*95/100]
}

// TestObsOverheadGuard interleaves obs-on and obs-off requests on the
// steady-state hot path (a result-cache hit, where middleware cost is
// the largest fraction of the request) and asserts the p95 overhead
// stays under 2% plus a small absolute epsilon for scheduler noise.
func TestObsOverheadGuard(t *testing.T) {
	if os.Getenv("OBS_GUARD") == "" {
		t.Skip("set OBS_GUARD=1 to run the obs-overhead guard (timing-sensitive)")
	}
	defer obs.SetEnabled(true)

	_, ts := testServer(t, Config{})
	client := ts.Client()
	path := ts.URL + "/v1/query?q=" + url.QueryEscape("px > 0")
	for i := 0; i < 50; i++ { // warm the cache, the connection pool, the JIT-ish paths
		timedGet(t, client, path)
	}

	const iters = 500
	on := make([]time.Duration, 0, iters)
	off := make([]time.Duration, 0, iters)
	// Interleaving cancels slow drift (GC cycles, CPU frequency) that a
	// two-phase measurement would attribute to whichever phase ran second.
	for i := 0; i < iters; i++ {
		obs.SetEnabled(true)
		on = append(on, timedGet(t, client, path))
		obs.SetEnabled(false)
		off = append(off, timedGet(t, client, path))
	}
	obs.SetEnabled(true)

	pOn, pOff := p95(on), p95(off)
	// 2% relative plus 300µs absolute: at hot-path latencies 2% is a few
	// microseconds — below timer and scheduler resolution — so the
	// epsilon keeps the guard about real regressions, not jitter.
	limit := pOff + pOff/50 + 300*time.Microsecond
	t.Logf("p95 obs-on %v, obs-off %v, limit %v", pOn, pOff, limit)
	if pOn > limit {
		t.Fatalf("obs overhead regression: p95 on=%v off=%v exceeds 2%%+300µs limit %v", pOn, pOff, limit)
	}
}

func BenchmarkQueryObsOn(b *testing.B)  { benchQuery(b, true) }
func BenchmarkQueryObsOff(b *testing.B) { benchQuery(b, false) }

func benchQuery(b *testing.B, enabled bool) {
	obs.SetEnabled(enabled)
	defer obs.SetEnabled(true)
	_, ts := testServer(b, Config{})
	client := ts.Client()
	path := ts.URL + "/v1/query?q=" + url.QueryEscape("px > 0")
	for i := 0; i < 20; i++ {
		timedGet(b, client, path)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		timedGet(b, client, path)
	}
}

// BenchmarkExplainQuery prices the explain surface itself: a profiled,
// cache-busting count so every iteration collects and merges fragment
// profiles. Compare against BenchmarkQueryObsOn to see what
// ?debug=explain adds on top of plain instrumentation.
func BenchmarkExplainQuery(b *testing.B) {
	_, ts := testServer(b, Config{})
	client := ts.Client()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := fmt.Sprintf("%s/v1/query?debug=explain&q=%s", ts.URL,
			url.QueryEscape(fmt.Sprintf("px > 0.%07d", i%1000000)))
		timedGet(b, client, p)
	}
}
