package serve

import (
	"context"
	"net/http"
	"strings"

	"repro/internal/fastquery"
	"repro/internal/histogram"
	"repro/internal/plan"
)

// Brownout: under sustained overload, an eligible histogram request that
// would otherwise be shed is answered from a degraded path instead — the
// Hillview trade, where a coarse answer now beats an exact answer after
// the user has given up. The ladder has two rungs, tried in order:
//
//  1. coarse-cache — a cached result of the same request at a coarser
//     resolution (bins repeatedly halved, down to brownoutMinBins). Costs
//     one map lookup per rung, no backend work at all.
//  2. index-only — recompute entirely in index space: the condition is
//     evaluated with boundary bins admitted wholesale (no candidate
//     checks, no raw reads) and the histogram binned at the index's own
//     resolution from bitmap AND-counts. Concurrency is bounded by
//     brownoutWorkers so the rescue path cannot itself become the
//     overload.
//
// Degraded responses are 200s marked three ways: Degraded/DegradedMode in
// the body, an X-Degraded header, and serve_degraded_total{mode=...}.
// Clients opt out with ?exact=1 and take the 429 instead.
const (
	// brownoutWorkers bounds concurrent index-only rescues.
	brownoutWorkers = 2
	// brownoutMinBins is the coarsest resolution rung 1 will probe for.
	brownoutMinBins = 8
)

// Degraded-mode labels.
const (
	degradedCoarse    = "coarse-cache"
	degradedIndexOnly = "index-only"
)

// brownoutEligible reports whether a shed histogram request may be
// rescued: brownout enabled and armed (sustained pressure), the client
// did not insist on exactness, and the binning is uniform (adaptive
// binning changes edges with the data, so a coarser cached entry is not
// a resolution ladder of the same histogram).
func (s *Server) brownoutEligible(r *http.Request, binning histogram.Binning) bool {
	return s.cfg.Brownout &&
		r.FormValue("exact") != "1" &&
		binning == histogram.Uniform &&
		s.gate.BrownoutActive()
}

// brownoutRescue runs the index-only rung under the worker bound; it
// returns false (declining the rescue) when all brownout workers are
// busy or the computation fails — the caller sheds as usual.
func (s *Server) brownoutRescue(r *http.Request, key string, fn func(ctx context.Context) (any, error)) (any, Outcome, bool) {
	select {
	case s.brownoutSem <- struct{}{}:
	default:
		return nil, Computed, false
	}
	defer func() { <-s.brownoutSem }()
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	val, outcome, err := s.cacheDo(ctx, key, fn)
	if err != nil {
		return nil, outcome, false
	}
	return val, outcome, true
}

// tryBrownoutHist1D attempts a degraded answer for a shed 1D histogram
// request; it reports whether a response was written.
func (s *Server) tryBrownoutHist1D(r *http.Request, req *request, spec histogram.Spec1D, respond func(val any, outcome Outcome, degraded string)) bool {
	if !s.brownoutEligible(r, spec.Binning) {
		return false
	}
	for bins := spec.Bins / 2; bins >= brownoutMinBins; bins /= 2 {
		coarse := spec
		coarse.Bins = bins
		if val, ok := s.cache.Peek(req.cacheKey(hist1DSpecKey(coarse))); ok {
			s.metrics.degraded(degradedCoarse).Inc()
			respond(val, Hit, degradedCoarse)
			return true
		}
	}
	if req.backend != fastquery.FastBit {
		return false
	}
	key := req.cacheKey(strings.Join([]string{"hist1d-approx", spec.Var}, "|"))
	val, outcome, ok := s.brownoutRescue(r, key, func(ctx context.Context) (any, error) {
		s.backendCalls.Inc()
		h, err := req.st.Histogram1DIndexOnlyCtx(ctx, req.expr, spec.Var)
		if err != nil {
			return nil, err
		}
		return &plan.Result{Hist1: h, Mode: "local", Fragments: 1}, nil
	})
	if !ok {
		return false
	}
	s.metrics.degraded(degradedIndexOnly).Inc()
	respond(val, outcome, degradedIndexOnly)
	return true
}

// tryBrownoutHist2D is tryBrownoutHist1D for 2D histograms: the coarse
// rung halves both axes in lockstep before falling back to the bitmap
// AND-count grid at the two indexes' native resolutions.
func (s *Server) tryBrownoutHist2D(r *http.Request, req *request, spec histogram.Spec2D, respond func(val any, outcome Outcome, degraded string)) bool {
	if !s.brownoutEligible(r, spec.Binning) {
		return false
	}
	for xb, yb := spec.XBins/2, spec.YBins/2; xb >= brownoutMinBins && yb >= brownoutMinBins; xb, yb = xb/2, yb/2 {
		coarse := spec
		coarse.XBins, coarse.YBins = xb, yb
		if val, ok := s.cache.Peek(req.cacheKey(hist2DSpecKey(coarse))); ok {
			s.metrics.degraded(degradedCoarse).Inc()
			respond(val, Hit, degradedCoarse)
			return true
		}
	}
	if req.backend != fastquery.FastBit {
		return false
	}
	key := req.cacheKey(strings.Join([]string{"hist2d-approx", spec.XVar, spec.YVar}, "|"))
	val, outcome, ok := s.brownoutRescue(r, key, func(ctx context.Context) (any, error) {
		s.backendCalls.Inc()
		h, err := req.st.Histogram2DIndexOnlyCtx(ctx, req.expr, spec.XVar, spec.YVar)
		if err != nil {
			return nil, err
		}
		return &plan.Result{Hist2: h, Mode: "local", Fragments: 1}, nil
	})
	if !ok {
		return false
	}
	s.metrics.degraded(degradedIndexOnly).Inc()
	respond(val, outcome, degradedIndexOnly)
	return true
}
