package serve

import (
	"context"
	"net/http"
	"strconv"
	"time"

	"repro/internal/obs"
)

// reqNote is the per-request execution note handlers fill in (via
// noteExplain) and the middleware folds into slow-query entries: the
// fields that distinguish a slow partial scatter from a clean slow scan.
// Handler and middleware run on the same goroutine, so no lock.
type reqNote struct {
	shards          int
	fragments       int
	cachedFrags     int
	partial         bool
	budgetExhausted bool
	degraded        string
	cacheSource     string
}

type noteCtxKey struct{}

// noteFromContext returns the request's execution note, or nil outside
// the instrumented middleware.
func noteFromContext(ctx context.Context) *reqNote {
	n, _ := ctx.Value(noteCtxKey{}).(*reqNote)
	return n
}

// serverMetrics binds the server's instruments to its registry. Request
// counters are labelled by endpoint and status code; registration is
// idempotent, so the per-request lookup in requests() resolves to an
// existing series after the first hit.
type serverMetrics struct {
	reg *obs.Registry

	inflight    *obs.Gauge
	slowQueries *obs.Counter
}

func newServerMetrics(reg *obs.Registry, cache *Cache, gate *Gate) *serverMetrics {
	m := &serverMetrics{
		reg: reg,
		inflight: reg.Gauge("serve_inflight_requests",
			"HTTP requests currently being handled."),
		slowQueries: reg.Counter("serve_slow_queries_total",
			"Requests that exceeded the slow-query threshold."),
	}

	// The cache and gate keep their own counters (their Stats snapshots
	// are the legacy /v1/stats payload); the registry reads them through
	// callbacks at export time. Last-wins rebinding means a fresh Server
	// in tests repoints these at its own cache/gate.
	reg.CounterFunc("serve_cache_hits_total",
		"Result-cache lookups served from a stored entry.",
		func() uint64 { return cache.Stats().Hits })
	reg.CounterFunc("serve_cache_misses_total",
		"Result-cache lookups that ran the compute function.",
		func() uint64 { return cache.Stats().Misses })
	reg.CounterFunc("serve_cache_evictions_total",
		"Result-cache entries evicted by the LRU bound.",
		func() uint64 { return cache.Stats().Evictions })
	reg.CounterFunc("serve_cache_coalesced_total",
		"Lookups that waited on an identical in-flight computation.",
		func() uint64 { return cache.Stats().Coalesced })
	reg.CounterFunc("serve_cache_abandoned_total",
		"Waiters that left before their flight finished.",
		func() uint64 { return cache.Stats().Abandoned })
	reg.GaugeFunc("serve_cache_entries",
		"Result-cache entries currently stored.",
		func() float64 { return float64(cache.Stats().Entries) })
	reg.GaugeFunc("serve_cache_inflight",
		"Result-cache computations currently in flight.",
		func() float64 { return float64(cache.Stats().Inflight) })

	reg.CounterFunc("serve_admission_admitted_total",
		"Requests admitted past the concurrency gate.",
		func() uint64 { return gate.Stats().Admitted })
	reg.CounterFunc("serve_admission_rejected_full_total",
		"Requests shed immediately because the wait queue was full (429).",
		func() uint64 { return gate.Stats().RejectedFull })
	reg.CounterFunc("serve_admission_rejected_deadline_total",
		"Requests that waited out the queue deadline (503).",
		func() uint64 { return gate.Stats().RejectedDeadline })
	reg.GaugeFunc("serve_admission_in_flight",
		"Requests currently holding a concurrency slot.",
		func() float64 { return float64(gate.Stats().InFlight) })
	reg.GaugeFunc("serve_admission_queued",
		"Requests currently waiting for a slot.",
		func() float64 { return float64(gate.Stats().Queued) })
	reg.GaugeFunc("serve_admission_limit",
		"Configured concurrency limit.",
		func() float64 { return float64(gate.Stats().Limit) })

	// Adaptive overload-control instruments. serve_limit is the live
	// (possibly self-tuned) concurrency limit; per-class shed counters and
	// the degraded-answer counters are pre-registered at zero so dashboards
	// and scrapers see the full series set before the first overload.
	reg.GaugeFunc("serve_limit",
		"Current admission concurrency limit (self-tuned in adaptive modes).",
		func() float64 { return float64(gate.Limit()) })
	reg.GaugeFunc("serve_brownout_active",
		"1 while sustained pressure has armed degraded histogram answers.",
		func() float64 {
			if gate.BrownoutActive() {
				return 1
			}
			return 0
		})
	for _, c := range Classes() {
		c := c
		reg.CounterFunc("serve_shed_total",
			"Requests shed by admission control, by priority class.",
			func() uint64 { return gate.ShedCount(c) },
			obs.L("class", c.String()))
		reg.CounterFunc("serve_admitted_total",
			"Requests admitted past the gate, by priority class.",
			func() uint64 { return gate.AdmittedCount(c) },
			obs.L("class", c.String()))
	}
	for _, mode := range []string{degradedCoarse, degradedIndexOnly} {
		m.degraded(mode) // pre-register both label values at zero
	}
	return m
}

// degraded returns the serve_degraded_total series for one brownout mode.
func (m *serverMetrics) degraded(mode string) *obs.Counter {
	return m.reg.Counter("serve_degraded_total",
		"Histogram requests answered from a degraded (brownout) path.",
		obs.L("mode", mode))
}

// requests returns the serve_requests_total series for one endpoint and
// status code.
func (m *serverMetrics) requests(endpoint string, code int) *obs.Counter {
	return m.reg.Counter("serve_requests_total",
		"HTTP requests handled, by endpoint and status code.",
		obs.L("endpoint", endpoint), obs.L("code", strconv.Itoa(code)))
}

// seconds returns the per-endpoint request latency histogram.
func (m *serverMetrics) seconds(endpoint string) *obs.Histogram {
	return m.reg.Histogram("serve_request_seconds",
		"Wall time of one HTTP request.", nil, obs.L("endpoint", endpoint))
}

// statusRecorder captures the response status so the middleware can count
// the request under the code the handler actually wrote.
type statusRecorder struct {
	http.ResponseWriter
	code  int
	wrote bool
}

func (sr *statusRecorder) WriteHeader(code int) {
	if !sr.wrote {
		sr.code = code
		sr.wrote = true
	}
	sr.ResponseWriter.WriteHeader(code)
}

func (sr *statusRecorder) Write(b []byte) (int, error) {
	sr.wrote = true // implicit 200
	return sr.ResponseWriter.Write(b)
}

// instrumented wraps a handler with the per-request observability spine:
// a trace rooted at the endpoint (ID exposed via X-Trace-Id), exactly one
// serve_requests_total increment per request — panics included — a
// latency observation, and slow-query capture.
func (s *Server) instrumented(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		tr := obs.NewTrace("", endpoint)
		if tr != nil {
			w.Header().Set("X-Trace-Id", tr.ID)
			r = r.WithContext(obs.ContextWithSpan(r.Context(), tr.Root()))
		}
		note := &reqNote{}
		r = r.WithContext(context.WithValue(r.Context(), noteCtxKey{}, note))
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		s.metrics.inflight.Add(1)
		finished := false
		finish := func(code int) {
			if finished {
				return
			}
			finished = true
			dur := time.Since(start)
			s.metrics.inflight.Add(-1)
			s.metrics.requests(endpoint, code).Inc()
			// An SLO-bad request is a server failure or an over-target
			// latency: exactly the traffic that burns error budget. 499s
			// (client went away) and shed 4xxs do not burn budget.
			s.burn.Record(code < 500 && dur <= s.slo)
			traceID := ""
			if tr != nil {
				traceID = tr.ID
			}
			// The exemplar links the latency bucket this request landed in
			// back to its trace, so a scrape that shows a slow bucket also
			// names a concrete request to pull up.
			s.metrics.seconds(endpoint).ObserveWithExemplar(dur.Seconds(), traceID)
			if tr == nil {
				return
			}
			tr.Root().End()
			if s.cfg.SlowThreshold > 0 && dur >= s.cfg.SlowThreshold {
				s.metrics.slowQueries.Inc()
				s.slowLog.Add(obs.SlowEntry{
					Time:       time.Now(),
					TraceID:    tr.ID,
					Endpoint:   endpoint,
					DurationMS: float64(dur) / float64(time.Millisecond),
					Status:     code,
					Detail:     r.URL.RawQuery,
					Trace:      tr.Data(),

					Shards:          note.shards,
					Fragments:       note.fragments,
					CachedFrags:     note.cachedFrags,
					Partial:         note.partial,
					Degraded:        note.degraded,
					BudgetExhausted: note.budgetExhausted,
					CacheSource:     note.cacheSource,
				})
				s.logger.Info("slow query",
					"endpoint", endpoint, "trace_id", tr.ID,
					"duration", dur, "status", code, "query", r.URL.RawQuery)
			}
		}
		defer func() {
			if p := recover(); p != nil {
				if p == http.ErrAbortHandler {
					finish(499)
					panic(p)
				}
				// Count the panic as the 500 the outer recovery will write,
				// then let that recovery log and respond.
				finish(http.StatusInternalServerError)
				panic(p)
			}
			finish(rec.code)
		}()
		h(rec, r)
	}
}

// traceEcho returns the request's span tree when ?debug=trace was asked
// for, nil otherwise. The snapshot is taken mid-request (the root span is
// still open), so durations reflect time spent so far — which for the
// serialization point is everything except writing the body.
func traceEcho(r *http.Request) *obs.SpanData {
	if r.FormValue("debug") != "trace" {
		return nil
	}
	sp := obs.SpanFromContext(r.Context())
	if sp == nil {
		return nil
	}
	tr := sp.Trace()
	if tr == nil {
		return nil
	}
	return tr.Data()
}
