// Tests for the query-level EXPLAIN/ANALYZE surface, the federated
// /metrics exposition, and the SLO burn-rate flight recorder.
//
// The load-bearing property is the merge identity: the per-fragment cost
// breakdown in an explain must sum exactly to the query totals, for any
// shard split, either backend, and partial merges included — if the sums
// drift, the explain is attributing work to the wrong place.
package serve

import (
	"fmt"
	"net/url"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/plan"
)

// explainEnvelope decodes any endpoint body down to the fields the
// explain tests assert on.
type explainEnvelope struct {
	Outcome string       `json:"outcome"`
	Partial bool         `json:"partial"`
	Explain *ExplainBody `json:"explain"`
}

// sumFragments recomputes the totals from the per-fragment breakdown.
func sumFragments(frags []plan.FragProfile) obs.CostSnapshot {
	var t obs.CostSnapshot
	for _, f := range frags {
		t.Add(f.Cost)
	}
	return t
}

// checkMergeIdentity asserts the explain invariants that hold for every
// executed (non-cache-hit) request: fragments present, shard indices in
// range, and the totals exactly the sum of the fragment costs.
func checkMergeIdentity(t *testing.T, path string, eb *ExplainBody, wantShards int) {
	t.Helper()
	if eb == nil {
		t.Fatalf("%s: no explain in body", path)
	}
	if eb.Shards != wantShards {
		t.Errorf("%s: explain shards = %d, want %d", path, eb.Shards, wantShards)
	}
	if eb.FragmentCount != len(eb.Fragments) || eb.FragmentCount == 0 {
		t.Fatalf("%s: fragment_count = %d, len(fragments) = %d, want equal and > 0",
			path, eb.FragmentCount, len(eb.Fragments))
	}
	if got := sumFragments(eb.Fragments); got != eb.Totals {
		t.Errorf("%s: merge identity broken:\n  sum(fragments) = %+v\n  totals         = %+v",
			path, got, eb.Totals)
	}
	for _, f := range eb.Fragments {
		if f.Shard < 0 || f.Shard >= wantShards {
			t.Errorf("%s: fragment shard %d out of range [0,%d)", path, f.Shard, wantShards)
		}
		if f.Op == "" {
			t.Errorf("%s: fragment missing op: %+v", path, f)
		}
	}
	if eb.TraceID == "" {
		t.Errorf("%s: explain missing trace_id", path)
	}
}

// TestExplainMergeIdentity is the acceptance property: across shard
// splits {1, 2, 3, 5} and both backends, ?debug=explain returns a
// per-fragment breakdown whose costs sum exactly to the query totals.
func TestExplainMergeIdentity(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5} {
		t.Run(fmt.Sprintf("shards=%d", n), func(t *testing.T) {
			fleet := startShardFleet(t, n, nil)
			_, fts := frontendServer(t, fleet)
			for _, backend := range []string{"fastbit", "scan"} {
				q := url.QueryEscape("px > 0.0003")
				paths := []string{
					"/v1/query?dataset=lwfa&step=1&backend=" + backend + "&debug=explain&q=" + q,
					"/v1/hist1d?dataset=lwfa&step=1&backend=" + backend + "&var=x&bins=16&debug=explain&q=" + q,
					"/v1/hist2d?dataset=lwfa&step=2&backend=" + backend + "&x=x&y=px&xbins=8&ybins=8&debug=explain&q=" + q,
				}
				for _, p := range paths {
					var body explainEnvelope
					if code, raw := get(t, fts, p, &body); code != 200 {
						t.Fatalf("%s: status %d: %s", p, code, raw)
					}
					checkMergeIdentity(t, p, body.Explain, n)
					if body.Explain.Outcome != "computed" {
						t.Errorf("%s: outcome %q, want computed", p, body.Explain.Outcome)
					}
				}
				// A fresh count has no caches to hide behind: it must charge
				// real work, whichever backend ran.
				var fresh explainEnvelope
				p := "/v1/query?dataset=lwfa&step=3&backend=" + backend + "&debug=explain&q=" +
					url.QueryEscape("px > 0.0006")
				if code, raw := get(t, fts, p, &fresh); code != 200 {
					t.Fatalf("%s: status %d: %s", p, code, raw)
				}
				if fresh.Explain.Totals.IsZero() {
					t.Errorf("%s: fresh %s query charged zero cost: %+v", p, backend, fresh.Explain)
				}
			}
		})
	}
}

// TestExplainMergeIdentityLocal: a single-process server (no scatter
// client) must produce the same explain shape through the local runner.
func TestExplainMergeIdentityLocal(t *testing.T) {
	_, ts := testServer(t, Config{})
	for _, backend := range []string{"fastbit", "scan"} {
		p := "/v1/query?backend=" + backend + "&debug=explain&q=" + url.QueryEscape("px > 0.0004")
		var body explainEnvelope
		if code, raw := get(t, ts, p, &body); code != 200 {
			t.Fatalf("%s: status %d: %s", p, code, raw)
		}
		checkMergeIdentity(t, p, body.Explain, 1)
		if body.Explain.Mode != "local" {
			t.Errorf("%s: mode %q, want local", p, body.Explain.Mode)
		}
		if body.Explain.Totals.IsZero() {
			t.Errorf("%s: local %s query charged zero cost", p, backend)
		}
	}
}

// TestExplainPartialMergeIdentity: the identity must survive a partial
// merge — dead-shard fragments appear in the breakdown with an error and
// zero cost, and the sums still match.
func TestExplainPartialMergeIdentity(t *testing.T) {
	fleet := startShardFleet(t, 3, nil)
	_, fts := frontendServer(t, fleet)
	fleet.kill[1]()

	p := "/v1/query?dataset=lwfa&step=0&debug=explain&q=" + url.QueryEscape("px > 0.0009")
	var body explainEnvelope
	if code, raw := get(t, fts, p, &body); code != 200 {
		t.Fatalf("status %d: %s", code, raw)
	}
	checkMergeIdentity(t, p, body.Explain, 3)
	eb := body.Explain
	if !eb.Partial || !body.Partial {
		t.Fatalf("dead shard did not mark partial: %+v", eb)
	}
	if len(eb.FailedShards) != 1 || eb.FailedShards[0] != 1 {
		t.Fatalf("failed_shards = %v, want [1]", eb.FailedShards)
	}
	var deadFrags int
	for _, f := range eb.Fragments {
		if f.Shard != 1 {
			continue
		}
		deadFrags++
		if f.Err == "" {
			t.Errorf("dead-shard fragment missing err: %+v", f)
		}
		if !f.Cost.IsZero() {
			t.Errorf("dead-shard fragment charged cost: %+v", f)
		}
	}
	if deadFrags == 0 {
		t.Fatalf("no fragment recorded for the dead shard: %+v", eb.Fragments)
	}
	if len(eb.Replicas) != 3 {
		t.Errorf("replica view has %d shards, want 3", len(eb.Replicas))
	}
}

// TestExplainOnly: ?explain=only returns the profile instead of the
// answer — the body carries the explain document and nothing else.
func TestExplainOnly(t *testing.T) {
	_, ts := testServer(t, Config{})
	p := "/v1/query?explain=only&q=" + url.QueryEscape("px > 0.0005")
	var body map[string]any
	if code, raw := get(t, ts, p, &body); code != 200 {
		t.Fatalf("status %d: %s", code, raw)
	}
	if len(body) != 1 {
		t.Fatalf("explain=only body has keys %v, want just explain", body)
	}
	var typed explainEnvelope
	if code, _ := get(t, ts, p, &typed); code != 200 {
		t.Fatal("second fetch failed")
	}
	if typed.Explain == nil || typed.Explain.Endpoint != "query" {
		t.Fatalf("explain=only missing profile: %+v", typed.Explain)
	}
}

// TestExplainCacheSources: a result-cache hit reports cache_source
// "result" with zero fragments and zero totals — no work, no cost.
func TestExplainCacheSources(t *testing.T) {
	s, ts := testServer(t, Config{})
	q := url.QueryEscape("px > 0.0007")
	// Warm the result cache without explain (the cache key ignores debug
	// parameters, so the explained request below hits the same entry).
	if code, raw := get(t, ts, "/v1/query?q="+q, nil); code != 200 {
		t.Fatalf("warm: %d %s", code, raw)
	}
	var body explainEnvelope
	if code, raw := get(t, ts, "/v1/query?debug=explain&q="+q, &body); code != 200 {
		t.Fatalf("hit: %d %s", code, raw)
	}
	eb := body.Explain
	if eb == nil {
		t.Fatal("no explain on cache hit")
	}
	if eb.Outcome != "hit" || eb.CacheSource != "result" {
		t.Fatalf("outcome %q cache_source %q, want hit/result", eb.Outcome, eb.CacheSource)
	}
	if eb.FragmentCount != 0 || !eb.Totals.IsZero() {
		t.Fatalf("cache hit reported work: %+v", eb)
	}
	if s.explains.Load() == 0 {
		t.Error("serve_explain_total not incremented")
	}
}

// TestSlowEntryExecutionContext: slow-query entries must carry the plan
// shape (shards, fragments) and the cache-hit source so a slow partial
// scatter is distinguishable from a clean slow scan.
func TestSlowEntryExecutionContext(t *testing.T) {
	_, ts := testServer(t, Config{SlowThreshold: time.Nanosecond})
	q := url.QueryEscape("px > 0.0002")
	if code, raw := get(t, ts, "/v1/query?q="+q, nil); code != 200 {
		t.Fatalf("computed: %d %s", code, raw)
	}
	if code, raw := get(t, ts, "/v1/query?q="+q, nil); code != 200 {
		t.Fatalf("hit: %d %s", code, raw)
	}
	var entries []obs.SlowEntry
	if code, raw := get(t, ts, "/v1/debug/slow", &entries); code != 200 {
		t.Fatalf("slow: %d %s", code, raw)
	}
	var computed, hit *obs.SlowEntry
	for i := range entries {
		if entries[i].Endpoint != "query" {
			continue
		}
		if entries[i].CacheSource == "result" {
			hit = &entries[i]
		} else {
			computed = &entries[i]
		}
	}
	if computed == nil || hit == nil {
		t.Fatalf("missing computed/hit slow entries: %+v", entries)
	}
	if computed.Shards != 1 || computed.Fragments == 0 {
		t.Errorf("computed entry lacks plan shape: %+v", computed)
	}
	if hit.CacheSource != "result" {
		t.Errorf("hit entry cache_source = %q", hit.CacheSource)
	}
}

// TestFederatedMetrics: a scatter frontend's /metrics merges every shard
// worker's registry into one exposition, shard series labelled
// shard="N" and the frontend's own series unlabelled; ?exemplars=1
// attaches trace IDs to latency buckets.
func TestFederatedMetrics(t *testing.T) {
	fleet := startShardFleet(t, 2, nil)
	_, fts := frontendServer(t, fleet)
	// Traffic so histograms and the explain counter move.
	for _, p := range []string{
		"/v1/query?dataset=lwfa&step=0&debug=explain&q=" + url.QueryEscape("px > 0.0001"),
		"/v1/hist1d?dataset=lwfa&step=0&var=x&bins=8",
	} {
		if code, raw := get(t, fts, p, nil); code != 200 {
			t.Fatalf("%s: %d %s", p, code, raw)
		}
	}

	resp, err := fts.Client().Get(fts.URL + "/metrics?exemplars=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("content type %q", ct)
	}
	raw := readAll(t, resp)
	for _, want := range []string{
		`shard="0"`, `shard="1"`, // federated shard series
		"serve_explain_total",
		`serve_slo_burn_rate{window="fast"}`,
		`serve_slo_burn_rate{window="slow"}`,
		"serve_slo_breaches_total",
		"serve_flight_captures_total",
		"serve_requests_total{", // frontend's own unlabelled series
		"# {trace_id=",          // exemplar on a latency bucket
	} {
		if !strings.Contains(raw, want) {
			t.Errorf("federated /metrics missing %q", want)
		}
	}
	// The frontend's own request series must stay unlabelled by shard.
	for _, line := range strings.Split(raw, "\n") {
		if strings.HasPrefix(line, "serve_requests_total{") && strings.Contains(line, `shard=`) {
			t.Errorf("frontend series carries a shard label: %s", line)
		}
	}
}

// TestBurnBreachFlightCapture forces an SLO breach (nanosecond target,
// second-scale windows) and asserts the flight recorder spools a capture
// with the pprof evidence set.
func TestBurnBreachFlightCapture(t *testing.T) {
	dir := t.TempDir()
	s, ts := testServer(t, Config{
		SLO:             time.Nanosecond, // every request burns budget
		BurnFast:        time.Second,
		BurnSlow:        time.Second,
		BurnThreshold:   1,
		BurnCooldown:    time.Hour, // one capture per test
		ProfileDir:      dir,
		ProfileCaptures: 4,
		ProfileCPU:      50 * time.Millisecond,
	})
	for i := 0; i < 3; i++ {
		p := fmt.Sprintf("/v1/query?q=%s", url.QueryEscape(fmt.Sprintf("px > 0.000%d", i+1)))
		if code, raw := get(t, ts, p, nil); code != 200 {
			t.Fatalf("%s: %d %s", p, code, raw)
		}
	}
	if s.burn.Breaches() == 0 {
		t.Fatal("forced breach did not register")
	}
	// The capture runs asynchronously (it holds the CPU profiler for
	// ProfileCPU); poll for it.
	deadline := time.Now().Add(10 * time.Second)
	for s.flight.Captures() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no flight capture after forced breach")
		}
		time.Sleep(10 * time.Millisecond)
	}
	last := s.flight.LastCaptureDir()
	if last == "" || !strings.HasPrefix(filepath.Base(last), "capture-") {
		t.Fatalf("last capture dir = %q", last)
	}
	for _, f := range []string{"cpu.pprof", "heap.pprof", "meta.json", "slow.json"} {
		if _, err := os.Stat(filepath.Join(last, f)); err != nil {
			t.Errorf("capture missing %s: %v", f, err)
		}
	}
	meta, err := os.ReadFile(filepath.Join(last, "meta.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(meta), "slo-burn") {
		t.Errorf("meta.json missing breach reason:\n%s", meta)
	}
}
