package serve

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// HTTP-facing robustness behaviour: readiness vs liveness, execution
// deadlines, client-cancellation accounting and panic containment.

func TestReadyzFlipsWhileDraining(t *testing.T) {
	s, ts := testServer(t, Config{})
	var body map[string]string
	if code, _ := get(t, ts, "/readyz", &body); code != http.StatusOK || body["status"] != "ready" {
		t.Fatalf("readyz before drain: %d %v", code, body)
	}
	s.SetDraining(true)
	if code, _ := get(t, ts, "/readyz", &body); code != http.StatusServiceUnavailable || body["status"] != "draining" {
		t.Fatalf("readyz while draining: %d %v", code, body)
	}
	// Liveness and real work are unaffected by the drain signal: in-flight
	// and straggler requests still complete while the LB moves traffic.
	if code, _ := get(t, ts, "/healthz", nil); code != http.StatusOK {
		t.Fatalf("healthz while draining: %d", code)
	}
	if code, _ := get(t, ts, "/v1/query?q=px+%3E+0", nil); code != http.StatusOK {
		t.Fatalf("query while draining: %d", code)
	}
	s.SetDraining(false)
	if code, _ := get(t, ts, "/readyz", nil); code != http.StatusOK {
		t.Fatal("readyz did not recover after drain flag cleared")
	}
}

func TestExecTimeoutAnswers504(t *testing.T) {
	// A deadline too short for any backend work: every query must come
	// back 504 with the counter bumped, never hang or 200.
	_, ts := testServer(t, Config{ExecTimeout: time.Nanosecond})
	var e ErrorBody
	code, _ := get(t, ts, "/v1/query?q=px+%3E+0", &e)
	if code != http.StatusGatewayTimeout {
		t.Fatalf("status %d (%s), want 504", code, e.Error)
	}
	var st StatsBody
	get(t, ts, "/v1/stats", &st)
	if st.ExecTimeouts == 0 {
		t.Fatalf("exec_timeouts = 0 after a 504; stats %+v", st)
	}
}

func TestWriteExecErrorMapsStatuses(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	for _, tc := range []struct {
		err  error
		want int
	}{
		{context.Canceled, 499},
		{context.DeadlineExceeded, http.StatusGatewayTimeout},
		{errFake, http.StatusInternalServerError},
	} {
		rec := httptest.NewRecorder()
		s.writeExecError(rec, tc.err)
		if rec.Code != tc.want {
			t.Errorf("%v -> %d, want %d", tc.err, rec.Code, tc.want)
		}
	}
	if s.canceled.Load() != 1 || s.execTimeouts.Load() != 1 {
		t.Fatalf("counters canceled=%d execTimeouts=%d, want 1/1",
			s.canceled.Load(), s.execTimeouts.Load())
	}
}

var errFake = &httpError{status: 500, msg: "backend exploded"}

func TestPanicRecoveryAnswers500(t *testing.T) {
	s, ts := testServer(t, Config{})
	s.mux.HandleFunc("/boom", func(http.ResponseWriter, *http.Request) {
		panic("kaboom")
	})
	var e ErrorBody
	code, _ := get(t, ts, "/boom", &e)
	if code != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", code)
	}
	var st StatsBody
	get(t, ts, "/v1/stats", &st)
	if st.Panics != 1 {
		t.Fatalf("panics = %d, want 1", st.Panics)
	}
	// The server survives: the next request is served normally.
	if code, _ := get(t, ts, "/v1/datasets", nil); code != http.StatusOK {
		t.Fatalf("request after panic: %d", code)
	}
}

// TestClientDisconnectCountsCanceled drives a real client disconnect: the
// request context dies with the connection, the handler's work stops, and
// the canceled counter (the 499 path) increments.
func TestClientDisconnectCountsCanceled(t *testing.T) {
	s, ts := testServer(t, Config{})
	entered := make(chan struct{})
	s.mux.HandleFunc("/slow", func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := s.requestCtx(r)
		defer cancel()
		close(entered)
		<-ctx.Done() // backend work interrupted by the disconnect
		s.writeExecError(w, ctx.Err())
	})

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/slow", nil)
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		_, err := http.DefaultClient.Do(req)
		errc <- err
	}()
	<-entered
	cancel()
	if err := <-errc; err == nil {
		t.Fatal("canceled request returned no error")
	}

	deadline := time.Now().Add(5 * time.Second)
	for s.canceled.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("canceled counter never incremented after client disconnect")
		}
		time.Sleep(time.Millisecond)
	}
}
