package serve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestGateAdmitsUpToLimit(t *testing.T) {
	g := NewGate(3, 0, time.Second)
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if err := g.Acquire(ctx); err != nil {
			t.Fatalf("acquire %d: %v", i, err)
		}
	}
	// Limit reached and queue depth is 0: immediate shed.
	if err := g.Acquire(ctx); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("over-limit acquire: %v, want ErrQueueFull", err)
	}
	g.Release()
	if err := g.Acquire(ctx); err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
	st := g.Stats()
	if st.Admitted != 4 || st.RejectedFull != 1 || st.InFlight != 3 {
		t.Fatalf("stats %+v", st)
	}
}

func TestGateQueueTimeout(t *testing.T) {
	g := NewGate(1, 1, 20*time.Millisecond)
	ctx := context.Background()
	if err := g.Acquire(ctx); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	err := g.Acquire(ctx) // queues, then times out
	if !errors.Is(err, ErrQueueTimeout) {
		t.Fatalf("queued acquire: %v, want ErrQueueTimeout", err)
	}
	if time.Since(start) < 20*time.Millisecond {
		t.Fatal("timed out before the deadline")
	}
	// The queue slot must have been returned.
	if st := g.Stats(); st.Queued != 0 {
		t.Fatalf("queued = %d after timeout", st.Queued)
	}
}

func TestGateQueueDrains(t *testing.T) {
	g := NewGate(1, 4, time.Second)
	ctx := context.Background()
	if err := g.Acquire(ctx); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 4)
	for i := 0; i < 4; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[i] = g.Acquire(ctx)
			if errs[i] == nil {
				g.Release()
			}
		}()
	}
	time.Sleep(10 * time.Millisecond) // let them queue
	g.Release()
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("queued waiter %d: %v", i, err)
		}
	}
}

func TestGateContextCancel(t *testing.T) {
	g := NewGate(1, 1, time.Minute)
	if err := g.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- g.Acquire(ctx) }()
	time.Sleep(10 * time.Millisecond)
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled acquire: %v", err)
	}
}
