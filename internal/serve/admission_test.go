package serve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// fixedGate builds the static-limit gate the legacy tests exercise.
func fixedGate(limit, queueDepth int, timeout time.Duration) *Gate {
	return NewGate(GateConfig{Limit: limit, QueueDepth: queueDepth, QueueTimeout: timeout})
}

func TestGateAdmitsUpToLimit(t *testing.T) {
	g := fixedGate(3, 0, time.Second)
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if err := g.Acquire(ctx, ClassDrill); err != nil {
			t.Fatalf("acquire %d: %v", i, err)
		}
	}
	// Limit reached and queue depth is 0: immediate shed.
	if err := g.Acquire(ctx, ClassDrill); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("over-limit acquire: %v, want ErrQueueFull", err)
	}
	g.Release(time.Millisecond)
	if err := g.Acquire(ctx, ClassDrill); err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
	st := g.Stats()
	if st.Admitted != 4 || st.RejectedFull != 1 || st.InFlight != 3 {
		t.Fatalf("stats %+v", st)
	}
	if st.ShedByClass["drill"] != 1 || st.AdmittedByClass["drill"] != 4 {
		t.Fatalf("class stats %+v", st)
	}
}

func TestGateQueueTimeout(t *testing.T) {
	g := fixedGate(1, 1, 20*time.Millisecond)
	ctx := context.Background()
	if err := g.Acquire(ctx, ClassDrill); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	err := g.Acquire(ctx, ClassDrill) // queues, then times out
	if !errors.Is(err, ErrQueueTimeout) {
		t.Fatalf("queued acquire: %v, want ErrQueueTimeout", err)
	}
	if time.Since(start) < 20*time.Millisecond {
		t.Fatal("timed out before the deadline")
	}
	// The queue slot must have been returned.
	if st := g.Stats(); st.Queued != 0 {
		t.Fatalf("queued = %d after timeout", st.Queued)
	}
}

func TestGateQueueDrains(t *testing.T) {
	g := fixedGate(1, 4, time.Second)
	ctx := context.Background()
	if err := g.Acquire(ctx, ClassDrill); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 4)
	for i := 0; i < 4; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[i] = g.Acquire(ctx, ClassDrill)
			if errs[i] == nil {
				g.Release(time.Millisecond)
			}
		}()
	}
	time.Sleep(10 * time.Millisecond) // let them queue
	g.Release(time.Millisecond)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("queued waiter %d: %v", i, err)
		}
	}
}

func TestGateContextCancel(t *testing.T) {
	g := fixedGate(1, 1, time.Minute)
	if err := g.Acquire(context.Background(), ClassDrill); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- g.Acquire(ctx, ClassDrill) }()
	time.Sleep(10 * time.Millisecond)
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled acquire: %v", err)
	}
}

// TestGateCancelCountsAbandonedNotTimeout is the fairness/accounting
// regression: a queued waiter whose context is cancelled must be counted
// as a client abandonment (the 499 path), never as a deadline rejection,
// and must give its queue slot back.
func TestGateCancelCountsAbandonedNotTimeout(t *testing.T) {
	g := fixedGate(1, 4, time.Minute)
	if err := g.Acquire(context.Background(), ClassDrill); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- g.Acquire(ctx, ClassDrill) }()
	for deadline := time.Now().Add(2 * time.Second); g.Stats().Queued == 0; {
		if time.Now().After(deadline) {
			t.Fatal("waiter never queued")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled acquire: %v", err)
	}
	st := g.Stats()
	if st.Canceled != 1 {
		t.Fatalf("canceled = %d, want 1", st.Canceled)
	}
	if st.RejectedDeadline != 0 || st.RejectedFull != 0 {
		t.Fatalf("cancellation counted as rejection: %+v", st)
	}
	if st.Queued != 0 {
		t.Fatalf("queue slot leaked: queued = %d", st.Queued)
	}
	// The freed queue slot must still be usable.
	g.Release(time.Millisecond)
	if err := g.Acquire(context.Background(), ClassDrill); err != nil {
		t.Fatalf("acquire after cancel: %v", err)
	}
}

// TestGateConcurrentCancelNoLeak hammers the grant-vs-cancel race under
// -race: many queued waiters cancelled while slots are released
// concurrently. Whatever each waiter reports, every slot and every queue
// position must come back.
func TestGateConcurrentCancelNoLeak(t *testing.T) {
	g := fixedGate(2, 64, time.Minute)
	// Fill both slots.
	for i := 0; i < 2; i++ {
		if err := g.Acquire(context.Background(), ClassDrill); err != nil {
			t.Fatal(err)
		}
	}
	const waiters = 32
	var wg sync.WaitGroup
	cancels := make([]context.CancelFunc, waiters)
	for i := 0; i < waiters; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		cancels[i] = cancel
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := g.Acquire(ctx, ClassDrill); err == nil {
				g.Release(time.Microsecond)
			}
		}()
	}
	// Let some queue, then race releases against cancellations.
	time.Sleep(5 * time.Millisecond)
	var rel sync.WaitGroup
	rel.Add(1)
	go func() {
		defer rel.Done()
		for i := 0; i < 2; i++ {
			g.Release(time.Microsecond)
		}
	}()
	for _, cancel := range cancels {
		cancel()
	}
	rel.Wait()
	wg.Wait()
	st := g.Stats()
	if st.Queued != 0 {
		t.Fatalf("queue slots leaked: %d", st.Queued)
	}
	if st.InFlight != 0 {
		t.Fatalf("execution slots leaked: %d", st.InFlight)
	}
	// All slots free again: a full complement of acquires must succeed.
	for i := 0; i < 2; i++ {
		if err := g.Acquire(context.Background(), ClassDrill); err != nil {
			t.Fatalf("post-race acquire %d: %v", i, err)
		}
	}
}

// TestGatePrioritySheddingOrder verifies per-class queue shares: with the
// queue partly full, ingest (quarter share) and sweep (half share) are
// shed while drill still queues.
func TestGatePrioritySheddingOrder(t *testing.T) {
	g := fixedGate(1, 8, time.Minute)
	if err := g.Acquire(context.Background(), ClassDrill); err != nil {
		t.Fatal(err)
	}
	// Occupy 4 queue positions (ingest share = 2, sweep share = 4).
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			g.Acquire(ctx, ClassDrill) //nolint:errcheck // cancelled at test end
		}()
	}
	for deadline := time.Now().Add(2 * time.Second); g.Stats().Queued < 4; {
		if time.Now().After(deadline) {
			t.Fatalf("only %d waiters queued", g.Stats().Queued)
		}
		time.Sleep(time.Millisecond)
	}
	if err := g.Acquire(context.Background(), ClassIngest); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("ingest beyond its share: %v, want ErrQueueFull", err)
	}
	if err := g.Acquire(context.Background(), ClassSweep); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("sweep beyond its share: %v, want ErrQueueFull", err)
	}
	if g.ShedCount(ClassIngest) != 1 || g.ShedCount(ClassSweep) != 1 || g.ShedCount(ClassDrill) != 0 {
		t.Fatalf("shed counts: ingest=%d sweep=%d drill=%d",
			g.ShedCount(ClassIngest), g.ShedCount(ClassSweep), g.ShedCount(ClassDrill))
	}
	cancel()
	wg.Wait()
}

// fakeClock drives a gate deterministically.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Unix(1_700_000_000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}

// clockedGate installs a fake clock; call before any Acquire/Release.
func clockedGate(cfg GateConfig, clk *fakeClock) *Gate {
	g := NewGate(cfg)
	g.mu.Lock()
	g.nowFn = clk.Now
	g.lastAdjust = clk.Now()
	g.mu.Unlock()
	return g
}

// churn pushes one admit/release cycle with the given synthetic latency.
func churn(g *Gate, lat time.Duration) error {
	if err := g.Acquire(context.Background(), ClassDrill); err != nil {
		return err
	}
	g.Release(lat)
	return nil
}

func TestGateAIMDGrowsWhenSaturatedAndHealthy(t *testing.T) {
	clk := newFakeClock()
	g := clockedGate(GateConfig{
		Limit: 2, MaxLimit: 8, QueueDepth: 4, QueueTimeout: time.Minute,
		Mode: LimitAIMD, SLO: 100 * time.Millisecond, AdjustEvery: 100 * time.Millisecond,
	}, clk)
	for i := 0; i < 5; i++ {
		// Healthy latencies, well under SLO.
		if err := churn(g, 10*time.Millisecond); err != nil {
			t.Fatal(err)
		}
		// Mark the window saturated — the limit was the binding constraint —
		// without tripping the pressure path a real shed would set.
		g.mu.Lock()
		g.saturated = true
		g.mu.Unlock()
		clk.Advance(150 * time.Millisecond) // cross the adjustment interval
		if err := churn(g, 10*time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	if lim := g.Limit(); lim <= 2 {
		t.Fatalf("limit = %d, want growth above 2", lim)
	}
	if g.Stats().LimitRaises == 0 {
		t.Fatal("no limit raises recorded")
	}
}

func TestGateAIMDBacksOffOnSLOBreach(t *testing.T) {
	clk := newFakeClock()
	g := clockedGate(GateConfig{
		Limit: 8, MaxLimit: 16, QueueDepth: 4, QueueTimeout: time.Minute,
		Mode: LimitAIMD, SLO: 50 * time.Millisecond, AdjustEvery: 100 * time.Millisecond,
	}, clk)
	// Latencies far over the SLO for two windows: multiplicative backoff.
	for i := 0; i < 2; i++ {
		if err := churn(g, 500*time.Millisecond); err != nil {
			t.Fatal(err)
		}
		clk.Advance(150 * time.Millisecond)
		if err := churn(g, 500*time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	if lim := g.Limit(); lim >= 8 {
		t.Fatalf("limit = %d, want multiplicative backoff below 8", lim)
	}
	if g.Stats().LimitDrops == 0 {
		t.Fatal("no limit drops recorded")
	}
}

func TestGateFixedModeNeverMoves(t *testing.T) {
	clk := newFakeClock()
	g := clockedGate(GateConfig{
		Limit: 3, QueueDepth: 2, QueueTimeout: time.Minute,
		Mode: LimitFixed, SLO: time.Millisecond, AdjustEvery: 50 * time.Millisecond,
	}, clk)
	for i := 0; i < 10; i++ {
		if err := churn(g, time.Second); err != nil { // massively over SLO
			t.Fatal(err)
		}
		clk.Advance(time.Second)
	}
	if lim := g.Limit(); lim != 3 {
		t.Fatalf("fixed limit moved to %d", lim)
	}
}

func TestGateGradientTracksSLORatio(t *testing.T) {
	clk := newFakeClock()
	g := clockedGate(GateConfig{
		Limit: 8, MaxLimit: 32, QueueDepth: 4, QueueTimeout: time.Minute,
		Mode: LimitGradient, SLO: 100 * time.Millisecond, AdjustEvery: 100 * time.Millisecond,
	}, clk)
	// p95 at 400ms = 4x the SLO: the gradient should shrink toward
	// limit*(slo/p95) = 2 in one step (clamped at half).
	if err := churn(g, 400*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	clk.Advance(150 * time.Millisecond)
	if err := churn(g, 400*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if lim := g.Limit(); lim > 6 {
		t.Fatalf("limit = %d, want gradient shrink below 8", lim)
	}
}

func TestGateBrownoutArmsAfterSustainedPressure(t *testing.T) {
	clk := newFakeClock()
	g := clockedGate(GateConfig{
		Limit: 1, QueueDepth: 2, QueueTimeout: time.Minute,
		Mode: LimitAIMD, SLO: 10 * time.Millisecond, AdjustEvery: 50 * time.Millisecond,
	}, clk)
	if g.BrownoutActive() {
		t.Fatal("brownout armed at rest")
	}
	// Three breached windows in a row.
	for i := 0; i < 3; i++ {
		if err := churn(g, 500*time.Millisecond); err != nil {
			t.Fatal(err)
		}
		clk.Advance(60 * time.Millisecond)
		if err := churn(g, 500*time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	if !g.BrownoutActive() {
		t.Fatal("brownout not armed after sustained breach")
	}
	// Healthy windows disarm it.
	for i := 0; i < 3; i++ {
		clk.Advance(60 * time.Millisecond)
		if err := churn(g, time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	if g.BrownoutActive() {
		t.Fatal("brownout still armed after recovery")
	}
}

// TestRetryAfterFromDrainRate is the satellite table test: Retry-After
// must derive from the EWMA of inter-release gaps, scale with queue
// length and class patience, and clamp to [1s, 30s].
func TestRetryAfterFromDrainRate(t *testing.T) {
	cases := []struct {
		name     string
		gap      time.Duration // steady inter-release gap
		releases int
		queued   int
		class    Class
		want     int
	}{
		{"no-data-defaults-1s", 0, 0, 0, ClassDrill, 1},
		{"fast-drain-clamps-low", 10 * time.Millisecond, 8, 1, ClassDrill, 1},
		{"one-second-gap-queue-2", time.Second, 8, 2, ClassDrill, 3},
		{"sweep-waits-twice-as-long", time.Second, 8, 2, ClassSweep, 6},
		{"ingest-waits-4x", time.Second, 8, 2, ClassIngest, 12},
		{"slow-drain-clamps-30s", 20 * time.Second, 8, 3, ClassDrill, 30},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			clk := newFakeClock()
			g := clockedGate(GateConfig{
				Limit: 1, QueueDepth: 16, QueueTimeout: time.Minute,
				// A long adjustment interval keeps the limiter quiet so only
				// the drain EWMA moves.
				Mode: LimitFixed, AdjustEvery: time.Hour,
			}, clk)
			for i := 0; i < c.releases; i++ {
				if err := g.Acquire(context.Background(), ClassDrill); err != nil {
					t.Fatal(err)
				}
				clk.Advance(c.gap)
				g.Release(c.gap / 2)
			}
			// Install the queue length without real waiters.
			g.mu.Lock()
			g.queued = c.queued
			g.mu.Unlock()
			if got := g.RetryAfter(c.class); got != c.want {
				t.Fatalf("RetryAfter(%v) = %d, want %d", c.class, got, c.want)
			}
			if got := g.RetryAfter(c.class); got < 1 || got > 30 {
				t.Fatalf("RetryAfter out of clamp range: %d", got)
			}
		})
	}
}

func TestClassStrings(t *testing.T) {
	want := map[Class]string{
		ClassProbe: "probe", ClassDrill: "drill",
		ClassSweep: "sweep", ClassIngest: "ingest",
	}
	if len(Classes()) != numClasses {
		t.Fatalf("Classes() lists %d of %d", len(Classes()), numClasses)
	}
	for c, s := range want {
		if c.String() != s {
			t.Fatalf("%d.String() = %q, want %q", c, c.String(), s)
		}
	}
}
