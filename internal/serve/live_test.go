package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/fastbit"
	"repro/internal/fastquery"
	"repro/internal/ingest"
	"repro/internal/sim"
)

// liveSimConfig is the run the live tests ingest from: small enough to
// commit steps in milliseconds, big enough for non-trivial histograms.
func liveSimConfig(steps int) sim.Config {
	cfg := sim.DefaultConfig()
	cfg.Steps = steps
	cfg.BackgroundPerStep = 800
	cfg.BeamParticles = 40
	return cfg
}

// liveServer seeds a dataset with the first seedSteps timesteps of a
// totalSteps run (pre-indexed, lwfagen-style) and serves it live.
func liveServer(t *testing.T, seedSteps, totalSteps int, lc LiveConfig) (*Server, *httptest.Server, *sim.Simulation) {
	t.Helper()
	dir := t.TempDir()
	seedCfg := liveSimConfig(seedSteps)
	if _, err := sim.WriteDataset(dir, seedCfg, sim.WriteOptions{
		Index: fastbit.IndexOptions{Bins: 32},
	}); err != nil {
		t.Fatal(err)
	}
	s := New(Config{Concurrency: 8})
	if err := s.AddLiveDataset("live", dir, lc); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	simRun, err := sim.New(liveSimConfig(totalSteps))
	if err != nil {
		t.Fatal(err)
	}
	return s, ts, simRun
}

// stepBody renders one simulation timestep as a POST /v1/ingest body.
func stepBody(t *testing.T, s *sim.Simulation, step int) IngestBody {
	t.Helper()
	ps, err := s.Step(step)
	if err != nil {
		t.Fatal(err)
	}
	cols := ps.Columns()
	var body IngestBody
	for _, name := range sim.Variables {
		body.Columns = append(body.Columns, IngestColumn{Name: name, Float: cols[name]})
	}
	body.Columns = append(body.Columns, IngestColumn{Name: sim.IDVar, Int: ps.ID})
	return body
}

// postJSON posts body as JSON and decodes the response into out.
func postJSON(t *testing.T, ts *httptest.Server, path string, body, out any) (int, string) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var raw bytes.Buffer
	if _, err := raw.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw.Bytes(), out); err != nil {
			t.Fatalf("decode %s: %v (body %s)", path, err, raw.String())
		}
	}
	return resp.StatusCode, raw.String()
}

// waitIndexed polls /v1/steps until every step reports index_state
// "indexed" (or the deadline passes).
func waitIndexed(t *testing.T, ts *httptest.Server, wantSteps int, deadline time.Duration) StepsBody {
	t.Helper()
	end := time.Now().Add(deadline)
	for {
		var steps StepsBody
		if code, body := get(t, ts, "/v1/steps?detail=1", &steps); code != http.StatusOK {
			t.Fatalf("/v1/steps: %d: %s", code, body)
		}
		indexed := 0
		for _, d := range steps.Detail {
			if d.IndexState == "indexed" {
				indexed++
			}
		}
		if steps.Steps == wantSteps && indexed == wantSteps {
			return steps
		}
		if time.Now().After(end) {
			t.Fatalf("steps not all indexed before deadline: %+v", steps)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestLiveIngestEndToEnd is the PR's acceptance scenario: serve a 2-step
// dataset, ingest 3 more steps over HTTP, and observe — without a restart
// — the dataset grow to 5 steps, each answering queries via the scan
// backend immediately and upgrading to fastbit when its index lands.
func TestLiveIngestEndToEnd(t *testing.T) {
	_, ts, simRun := liveServer(t, 2, 5, LiveConfig{
		IngestWorkers: 2,
		Index:         fastbit.IndexOptions{Bins: 32},
	})

	var steps StepsBody
	get(t, ts, "/v1/steps", &steps)
	if steps.Steps != 2 || !steps.Live {
		t.Fatalf("seed dataset: %+v", steps)
	}
	startGen := steps.Generation

	for i := 2; i < 5; i++ {
		var ack IngestResponse
		code, body := postJSON(t, ts, "/v1/ingest", stepBody(t, simRun, i), &ack)
		if code != http.StatusOK {
			t.Fatalf("ingest step %d: %d: %s", i, code, body)
		}
		if ack.Step != i || ack.Steps != i+1 || ack.Rows == 0 {
			t.Fatalf("ingest ack: %+v", ack)
		}
		// The committed step must be queryable right away — scan backend,
		// no waiting for the index builder.
		var q QueryBody
		path := fmt.Sprintf("/v1/query?step=%d&q=%s", i, "px+%3E+0")
		if code, body := get(t, ts, path, &q); code != http.StatusOK {
			t.Fatalf("query fresh step %d: %d: %s", i, code, body)
		}
		if q.Rows != ack.Rows {
			t.Fatalf("fresh step %d rows = %d, ingested %d", i, q.Rows, ack.Rows)
		}
	}

	final := waitIndexed(t, ts, 5, 30*time.Second)
	if final.Generation <= startGen {
		t.Fatalf("generation did not advance: %d -> %d", startGen, final.Generation)
	}

	// Upgraded steps must answer identically through both backends.
	for i := 0; i < 5; i++ {
		var scan, fb QueryBody
		base := fmt.Sprintf("/v1/query?step=%d&q=px+%%3E+1e8&backend=", i)
		if code, body := get(t, ts, base+"scan", &scan); code != http.StatusOK {
			t.Fatalf("scan step %d: %d: %s", i, code, body)
		}
		if code, body := get(t, ts, base+"fastbit", &fb); code != http.StatusOK {
			t.Fatalf("fastbit step %d: %d: %s", i, code, body)
		}
		if scan.Matches != fb.Matches || scan.Rows != fb.Rows {
			t.Fatalf("step %d: scan %d/%d != fastbit %d/%d",
				i, scan.Matches, scan.Rows, fb.Matches, fb.Rows)
		}
	}

	// /v1/stats must report the drained pipeline.
	var stats StatsBody
	get(t, ts, "/v1/stats", &stats)
	ing, ok := stats.Ingest["live"]
	if !ok {
		t.Fatalf("stats missing ingest block: %+v", stats.Ingest)
	}
	if ing.Committed != 5 || ing.Indexed != 5 || ing.Lag != 0 {
		t.Fatalf("ingest stats: %+v", ing)
	}
	if ing.Generation != final.Generation {
		t.Fatalf("stats generation %d != steps generation %d", ing.Generation, final.Generation)
	}
}

// TestCacheKeyPerStepGeneration pins the invalidation granularity: a
// generation change rotates the changed step's cache keys and nobody
// else's, and every other key dimension still separates entries.
func TestCacheKeyPerStepGeneration(t *testing.T) {
	d := &dataset{name: "live"}
	key := func(step int, gen uint64, plan string) string {
		r := &request{d: d, t: step, gen: gen, plan: plan, backend: fastquery.Scan}
		return r.cacheKey("count")
	}
	if key(2, 5, "px > 0") == key(2, 6, "px > 0") {
		t.Fatal("generation change did not rotate the cache key")
	}
	if key(2, 5, "px > 0") != key(2, 5, "px > 0") {
		t.Fatal("identical requests produced different keys")
	}
	if key(1, 5, "px > 0") == key(2, 5, "px > 0") {
		t.Fatal("different steps share a key")
	}
	// A static dataset (gen always 0) keys exactly as before the live
	// subsystem existed, so its cache behavior is unchanged.
	if key(2, 0, "px > 0") == key(2, 1, "px > 0") {
		t.Fatal("gen 0 and gen 1 share a key")
	}
}

// TestLiveExternalCommitHotReload: a step committed by another process
// (an external writer sharing the dataset directory) becomes queryable
// through the catalog watcher — no POST, no restart.
func TestLiveExternalCommitHotReload(t *testing.T) {
	dir := t.TempDir()
	if _, err := sim.WriteDataset(dir, liveSimConfig(2), sim.WriteOptions{
		Index: fastbit.IndexOptions{Bins: 32},
	}); err != nil {
		t.Fatal(err)
	}
	s := New(Config{})
	if err := s.AddLiveDataset("live", dir, LiveConfig{CatalogPoll: 20 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer func() {
		ts.Close()
		s.Close()
	}()

	var steps StepsBody
	get(t, ts, "/v1/steps", &steps)
	if steps.Steps != 2 {
		t.Fatalf("seed: %+v", steps)
	}

	// External writer: a second catalog handle on the same directory, the
	// way a simulation-side qingest -direct process would append.
	cat, err := ingest.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	simRun, err := sim.New(liveSimConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	ps, err := simRun.Step(2)
	if err != nil {
		t.Fatal(err)
	}
	cols := ps.Columns()
	var ic []ingest.Column
	for _, name := range sim.Variables {
		ic = append(ic, ingest.Column{Name: name, Float: cols[name]})
	}
	ic = append(ic, ingest.Column{Name: sim.IDVar, Int: ps.ID})
	if _, _, err := ingest.NewWriter(cat, 0).AppendStep(ic); err != nil {
		t.Fatal(err)
	}

	// The watcher must pick the commit up and serve the new step.
	end := time.Now().Add(10 * time.Second)
	for {
		get(t, ts, "/v1/steps?detail=1", &steps)
		if steps.Steps == 3 {
			break
		}
		if time.Now().After(end) {
			t.Fatalf("external commit never became visible: %+v", steps)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if st := steps.Detail[2].IndexState; st != "pending" {
		t.Fatalf("external step index state = %q, want pending", st)
	}
	var q QueryBody
	if code, body := get(t, ts, "/v1/query?step=2&q=px+%3E+0", &q); code != http.StatusOK {
		t.Fatalf("query external step: %d: %s", code, body)
	}
	// The unindexed step must have fallen back to the scan backend (which
	// stringifies as "custom", the paper's name for it).
	if q.Rows != uint64(ps.N()) || q.Backend != fastquery.Scan.String() {
		t.Fatalf("external step query: rows=%d want %d, backend=%q", q.Rows, ps.N(), q.Backend)
	}
}

// TestLiveRecoversUnindexedSeed: a live dataset opened over a directory
// with committed-but-unindexed steps (a crash before the builder finished,
// or a plain lwfagen -skip-index run) must index them without any ingest
// traffic.
func TestLiveRecoversUnindexedSeed(t *testing.T) {
	dir := t.TempDir()
	if _, err := sim.WriteDataset(dir, liveSimConfig(2), sim.WriteOptions{SkipIndex: true}); err != nil {
		t.Fatal(err)
	}
	s := New(Config{})
	if err := s.AddLiveDataset("live", dir, LiveConfig{Index: fastbit.IndexOptions{Bins: 32}}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer func() {
		ts.Close()
		s.Close()
	}()
	waitIndexed(t, ts, 2, 30*time.Second)
}

func TestLiveIngestValidation(t *testing.T) {
	_, ts, simRun := liveServer(t, 2, 4, LiveConfig{})

	// GET is not allowed.
	resp, err := http.Get(ts.URL + "/v1/ingest")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/ingest: %d, want 405", resp.StatusCode)
	}

	// Unknown dataset.
	body := stepBody(t, simRun, 2)
	body.Dataset = "nope"
	if code, _ := postJSON(t, ts, "/v1/ingest", body, nil); code != http.StatusNotFound {
		t.Fatalf("unknown dataset: %d, want 404", code)
	}

	// Schema violations reject with 400 and commit nothing.
	bad := stepBody(t, simRun, 2)
	bad.Columns = bad.Columns[:2] // missing declared variables
	if code, msg := postJSON(t, ts, "/v1/ingest", bad, nil); code != http.StatusBadRequest {
		t.Fatalf("partial columns: %d (%s), want 400", code, msg)
	}
	var steps StepsBody
	get(t, ts, "/v1/steps", &steps)
	if steps.Steps != 2 {
		t.Fatalf("rejected ingest committed a step: %+v", steps)
	}

	// A static dataset must refuse ingest.
	sdir := t.TempDir()
	if _, err := sim.WriteDataset(sdir, liveSimConfig(2), sim.WriteOptions{SkipIndex: true}); err != nil {
		t.Fatal(err)
	}
	s2 := New(Config{})
	if err := s2.AddDataset("static", sdir); err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2)
	defer func() {
		ts2.Close()
		s2.Close()
	}()
	if code, _ := postJSON(t, ts2, "/v1/ingest", stepBody(t, simRun, 2), nil); code != http.StatusConflict {
		t.Fatalf("ingest into static dataset: %d, want 409", code)
	}
}

// TestLiveConcurrentIngestAndQuery runs one writer committing steps while
// readers drill through /v1/query and /v1/hist2d across the generation
// changes — the satellite -race scenario. Correctness bar: no reader ever
// sees an error or a torn answer, and the final dataset agrees across
// backends.
func TestLiveConcurrentIngestAndQuery(t *testing.T) {
	const totalSteps = 6
	_, ts, simRun := liveServer(t, 2, totalSteps, LiveConfig{
		IngestWorkers: 2,
		Index:         fastbit.IndexOptions{Bins: 32},
	})

	done := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				var steps StepsBody
				if code, body := get(t, ts, "/v1/steps", &steps); code != http.StatusOK {
					t.Errorf("reader %d: /v1/steps: %d: %s", r, code, body)
					return
				}
				step := i % steps.Steps
				var q QueryBody
				path := fmt.Sprintf("/v1/query?step=%d&q=px+%%3E+1e8", step)
				if code, body := get(t, ts, path, &q); code != http.StatusOK {
					t.Errorf("reader %d: query step %d: %d: %s", r, step, code, body)
					return
				}
				if q.Matches > q.Rows {
					t.Errorf("reader %d: torn answer: %d matches of %d rows", r, q.Matches, q.Rows)
					return
				}
				var h Hist2DBody
				hpath := fmt.Sprintf("/v1/hist2d?step=%d&x=x&y=px&xbins=16&ybins=16", step)
				if code, body := get(t, ts, hpath, &h); code != http.StatusOK {
					t.Errorf("reader %d: hist2d step %d: %d: %s", r, step, code, body)
					return
				}
				if h.Total != q.Rows {
					// Unconditioned histogram totals every row of the step.
					t.Errorf("reader %d: hist2d total %d != rows %d at step %d", r, h.Total, q.Rows, step)
					return
				}
			}
		}(r)
	}

	for i := 2; i < totalSteps; i++ {
		var ack IngestResponse
		if code, body := postJSON(t, ts, "/v1/ingest", stepBody(t, simRun, i), &ack); code != http.StatusOK {
			t.Fatalf("ingest step %d: %d: %s", i, code, body)
		}
		time.Sleep(20 * time.Millisecond) // let readers overlap the commit
	}
	waitIndexed(t, ts, totalSteps, 30*time.Second)
	close(done)
	wg.Wait()

	for i := 0; i < totalSteps; i++ {
		var scan, fb QueryBody
		base := fmt.Sprintf("/v1/query?step=%d&q=px+%%3E+1e8&backend=", i)
		get(t, ts, base+"scan", &scan)
		get(t, ts, base+"fastbit", &fb)
		if scan.Matches != fb.Matches {
			t.Fatalf("step %d: scan %d != fastbit %d", i, scan.Matches, fb.Matches)
		}
	}
}
