package serve

import (
	"container/list"
	"context"
	"errors"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Admission-control errors; the HTTP layer maps them to 429/503 with a
// Retry-After header.
var (
	// ErrQueueFull means the server is at its concurrency limit and the
	// request's priority class has exhausted its queue share: shed the
	// request immediately (HTTP 429).
	ErrQueueFull = errors.New("serve: overloaded, queue full")
	// ErrQueueTimeout means the request waited in the queue for the full
	// admission deadline without a slot freeing up (HTTP 503).
	ErrQueueTimeout = errors.New("serve: overloaded, queue wait deadline exceeded")
)

// LimitMode selects how the gate's concurrency limit evolves.
type LimitMode int

const (
	// LimitFixed keeps the configured limit forever — the original static
	// gate, retained as the baseline the capacity harness compares against.
	LimitFixed LimitMode = iota
	// LimitAIMD grows the limit by one slot per healthy adjustment window
	// while the gate is saturated, and multiplicatively backs off (×3/4)
	// when the windowed p95 breaches the SLO or the queue builds.
	LimitAIMD
	// LimitGradient scales the limit toward limit × (SLO / p95), clamped,
	// following the gradient of observed latency — faster to converge than
	// AIMD, slightly noisier.
	LimitGradient
)

// ParseLimitMode maps a -limit-mode flag value to a LimitMode.
func ParseLimitMode(s string) (LimitMode, error) {
	switch s {
	case "", "fixed":
		return LimitFixed, nil
	case "aimd":
		return LimitAIMD, nil
	case "gradient":
		return LimitGradient, nil
	}
	return LimitFixed, errors.New("serve: unknown limit mode " + s)
}

func (m LimitMode) String() string {
	switch m {
	case LimitAIMD:
		return "aimd"
	case LimitGradient:
		return "gradient"
	default:
		return "fixed"
	}
}

// GateConfig configures an adaptive admission gate.
type GateConfig struct {
	// Limit is the initial (and, for LimitFixed, permanent) concurrency
	// limit; < 1 is clamped to 1.
	Limit int
	// MaxLimit caps adaptive growth; 0 defaults to 8× Limit.
	MaxLimit int
	// QueueDepth bounds the wait queue; < 0 is clamped to 0. Priority
	// classes see shrinking shares of it: drill and probe the full depth,
	// sweep half, ingest a quarter.
	QueueDepth int
	// QueueTimeout bounds time spent queued; <= 0 waits forever (still
	// bounded by the request context).
	QueueTimeout time.Duration
	// Mode selects the limit-adjustment algorithm.
	Mode LimitMode
	// SLO is the latency target the adaptive modes steer the windowed p95
	// toward; 0 defaults to 250ms.
	SLO time.Duration
	// AdjustEvery is the minimum interval between limit adjustments;
	// 0 defaults to 250ms.
	AdjustEvery time.Duration
}

// GateStats is a snapshot of admission-control counters.
type GateStats struct {
	Limit            int    `json:"limit"`
	QueueDepth       int    `json:"queue_depth"`
	Admitted         uint64 `json:"admitted"`
	RejectedFull     uint64 `json:"rejected_queue_full"`
	RejectedDeadline uint64 `json:"rejected_deadline"`
	Canceled         uint64 `json:"canceled"`
	InFlight         int    `json:"in_flight"`
	Queued           int    `json:"queued"`

	// Adaptive-control extensions.
	Mode            string            `json:"mode"`
	MaxLimit        int               `json:"max_limit"`
	LimitRaises     uint64            `json:"limit_raises"`
	LimitDrops      uint64            `json:"limit_drops"`
	AdmittedByClass map[string]uint64 `json:"admitted_by_class,omitempty"`
	ShedByClass     map[string]uint64 `json:"shed_by_class,omitempty"`
	// DrainPerSec is the EWMA-estimated slot release rate behind
	// Retry-After; 0 until the gate has released at least two requests.
	DrainPerSec float64 `json:"drain_per_sec"`
	Brownout    bool    `json:"brownout"`
}

// waiter is one queued Acquire. granted is set (under the gate mutex) by
// grantLocked before ready is closed, so an abandoning waiter can tell a
// lost race — slot already granted — from a plain cancellation.
type waiter struct {
	class   Class
	ready   chan struct{}
	granted bool
}

// Gate bounds the number of requests executing heavy work concurrently.
// The limit is static (LimitFixed) or self-tuning against a latency SLO
// (LimitAIMD, LimitGradient). Beyond the limit, requests wait FIFO in a
// bounded queue whose effective depth shrinks with priority class, so
// under pressure ingest and sweeps shed before interactive drill-downs.
// Sustained pressure arms brownout, which the HTTP layer uses to answer
// eligible histogram requests from degraded paths instead of shedding.
type Gate struct {
	mu          sync.Mutex
	limit       int
	maxLimit    int
	queueDepth  int
	timeout     time.Duration
	mode        LimitMode
	slo         time.Duration
	adjustEvery time.Duration

	inflight int
	queue    *list.List // of *waiter, FIFO
	queued   int

	window      *obs.Window // per-adjustment-window latencies (seconds)
	drain       *obs.EWMA   // inter-release gap (seconds)
	lastRelease time.Time
	lastAdjust  time.Time
	// saturated records whether the gate ran out of slots at any point in
	// the current adjustment window; additive growth only happens when the
	// current limit was actually the binding constraint.
	saturated bool
	// pressured records an SLO-relevant event (shed or queue timeout) in
	// the current window, forcing backoff even if the admitted latencies
	// look healthy — the unhealthy ones never got in.
	pressured bool
	// hotWindows counts consecutive breached adjustment windows; two in a
	// row arm brownout, one healthy window disarms it.
	hotWindows    int
	brownout      bool
	forceBrownout bool // test hook: pins brownout armed

	nowFn func() time.Time // injectable clock for deterministic tests

	admitted                    [numClasses]atomic.Uint64
	shed                        [numClasses]atomic.Uint64
	admittedTotal, rejectedFull atomic.Uint64
	rejectedDeadline, canceled  atomic.Uint64
	limitRaises, limitDrops     atomic.Uint64
}

// NewGate creates an adaptive admission gate.
func NewGate(cfg GateConfig) *Gate {
	if cfg.Limit < 1 {
		cfg.Limit = 1
	}
	if cfg.MaxLimit <= 0 {
		cfg.MaxLimit = 8 * cfg.Limit
	}
	if cfg.MaxLimit < cfg.Limit {
		cfg.MaxLimit = cfg.Limit
	}
	if cfg.QueueDepth < 0 {
		cfg.QueueDepth = 0
	}
	if cfg.SLO <= 0 {
		cfg.SLO = 250 * time.Millisecond
	}
	if cfg.AdjustEvery <= 0 {
		cfg.AdjustEvery = 250 * time.Millisecond
	}
	g := &Gate{
		limit:       cfg.Limit,
		maxLimit:    cfg.MaxLimit,
		queueDepth:  cfg.QueueDepth,
		timeout:     cfg.QueueTimeout,
		mode:        cfg.Mode,
		slo:         cfg.SLO,
		adjustEvery: cfg.AdjustEvery,
		queue:       list.New(),
		window:      obs.NewWindow(256),
		drain:       obs.NewEWMA(0.2),
		nowFn:       time.Now,
	}
	g.lastAdjust = g.nowFn()
	return g
}

// shareLocked is the queue share a class may occupy: drill-downs (and the
// rare probe that misses its bypass) may fill the whole queue, sweeps
// half, ingest a quarter. A lower-priority request is shed as soon as the
// total queue length reaches its share, leaving headroom for the classes
// above it.
func (g *Gate) shareLocked(c Class) int {
	switch c {
	case ClassSweep:
		return g.queueDepth / 2
	case ClassIngest:
		return g.queueDepth / 4
	default: // probe, drill
		return g.queueDepth
	}
}

// Acquire blocks until a slot is free, the queue deadline passes, or ctx
// is done. On nil return the caller must call Release exactly once,
// passing the request's service latency so the limiter can steer on it.
func (g *Gate) Acquire(ctx context.Context, class Class) error {
	if err := ctx.Err(); err != nil {
		g.canceled.Add(1)
		return err
	}

	g.mu.Lock()
	g.adjustLocked(g.nowFn())
	if g.queued == 0 && g.inflight < g.limit {
		g.inflight++
		g.mu.Unlock()
		g.admittedTotal.Add(1)
		g.admitted[class].Add(1)
		return nil
	}
	g.saturated = true
	if g.queued >= g.shareLocked(class) {
		g.pressured = true
		g.mu.Unlock()
		g.rejectedFull.Add(1)
		g.shed[class].Add(1)
		return ErrQueueFull
	}
	w := &waiter{class: class, ready: make(chan struct{})}
	el := g.queue.PushBack(w)
	g.queued++
	g.mu.Unlock()

	var deadline <-chan time.Time
	if g.timeout > 0 {
		timer := time.NewTimer(g.timeout)
		defer timer.Stop()
		deadline = timer.C
	}
	select {
	case <-w.ready:
		g.admittedTotal.Add(1)
		g.admitted[class].Add(1)
		return nil
	case <-deadline:
		if g.abandon(el, w) {
			g.rejectedDeadline.Add(1)
			g.shed[class].Add(1)
			return ErrQueueTimeout
		}
		// Lost the race: a slot was granted as the timer fired. Keep it —
		// the work is about to run anyway and rejecting would leak the slot.
		g.admittedTotal.Add(1)
		g.admitted[class].Add(1)
		return nil
	case <-ctx.Done():
		if g.abandon(el, w) {
			g.canceled.Add(1)
			return ctx.Err()
		}
		// Lost the race against a concurrent grant. The caller is gone, so
		// hand the slot straight back; this still reports as abandonment,
		// never as a timeout rejection, and never leaks the slot.
		g.Release(0)
		g.canceled.Add(1)
		return ctx.Err()
	}
}

// abandon removes a queued waiter. It returns false when grantLocked got
// there first (w.granted), in which case the waiter owns a slot and must
// dispose of it.
func (g *Gate) abandon(el *list.Element, w *waiter) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if w.granted {
		return false
	}
	g.queue.Remove(el)
	g.queued--
	g.pressured = true
	return true
}

// grantLocked hands freed capacity to queued waiters, FIFO.
func (g *Gate) grantLocked() {
	for g.inflight < g.limit {
		el := g.queue.Front()
		if el == nil {
			return
		}
		w := el.Value.(*waiter)
		g.queue.Remove(el)
		g.queued--
		w.granted = true
		g.inflight++
		close(w.ready)
	}
}

// Release frees a slot acquired with Acquire. latency is the time the
// request held the slot (0 when unknown); it feeds the limiter's rolling
// p95 and the drain-rate estimate behind Retry-After.
func (g *Gate) Release(latency time.Duration) {
	now := g.nowFn()
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.inflight > 0 {
		g.inflight--
	}
	if latency > 0 {
		g.window.Observe(latency.Seconds())
	}
	if !g.lastRelease.IsZero() {
		g.drain.Observe(now.Sub(g.lastRelease).Seconds())
	}
	g.lastRelease = now
	g.adjustLocked(now)
	g.grantLocked()
}

// adjustLocked runs the limit controller at most once per adjustEvery.
func (g *Gate) adjustLocked(now time.Time) {
	if now.Sub(g.lastAdjust) < g.adjustEvery {
		return
	}
	g.lastAdjust = now
	p95 := g.window.Quantile(0.95)
	samples := g.window.Len()
	g.window.Reset()
	sloS := g.slo.Seconds()

	breach := g.pressured || (samples > 0 && p95 > sloS) || g.queued > g.queueDepth/2
	if breach {
		g.hotWindows++
	} else {
		g.hotWindows = 0
	}
	g.brownout = g.forceBrownout || g.hotWindows >= 2
	saturated := g.saturated || g.queued > 0
	g.saturated = false
	g.pressured = false

	switch g.mode {
	case LimitAIMD:
		if breach {
			g.setLimitLocked(g.limit * 3 / 4)
		} else if saturated {
			g.setLimitLocked(g.limit + 1)
		}
	case LimitGradient:
		if samples == 0 || p95 <= 0 {
			if breach {
				g.setLimitLocked(g.limit * 3 / 4)
			}
			return
		}
		ratio := sloS / p95
		if ratio < 0.5 {
			ratio = 0.5
		}
		target := int(math.Floor(float64(g.limit) * ratio))
		switch {
		case breach && target < g.limit:
			g.setLimitLocked(target)
		case breach:
			g.setLimitLocked(g.limit * 3 / 4)
		case saturated && ratio > 1:
			// Grow half-way toward the gradient target, at least one slot:
			// latency headroom says capacity exists, but creep toward it.
			step := (target - g.limit) / 2
			if step < 1 {
				step = 1
			}
			g.setLimitLocked(g.limit + step)
		}
	default: // LimitFixed
	}
}

func (g *Gate) setLimitLocked(n int) {
	if n < 1 {
		n = 1
	}
	if n > g.maxLimit {
		n = g.maxLimit
	}
	if n > g.limit {
		g.limitRaises.Add(1)
	} else if n < g.limit {
		g.limitDrops.Add(1)
	}
	g.limit = n
}

// RetryAfter estimates, in whole seconds, when a shed request of the
// given class should retry: the EWMA gap between slot releases times the
// queue it would wait behind, scaled by class patience (background
// classes are told to back off longer), clamped to [1s, 30s].
func (g *Gate) RetryAfter(class Class) int {
	g.mu.Lock()
	gap := g.drain.Value()
	n := g.drain.Count()
	queued := g.queued
	g.mu.Unlock()
	if n < 2 || gap <= 0 {
		return 1
	}
	patience := 1.0
	switch class {
	case ClassSweep:
		patience = 2
	case ClassIngest:
		patience = 4
	}
	est := gap * float64(queued+1) * patience
	secs := int(math.Ceil(est))
	if secs < 1 {
		secs = 1
	}
	if secs > 30 {
		secs = 30
	}
	return secs
}

// BrownoutActive reports whether sustained pressure has armed the
// degraded-answer path.
func (g *Gate) BrownoutActive() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.brownout || g.forceBrownout
}

// Limit returns the current concurrency limit.
func (g *Gate) Limit() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.limit
}

// ShedCount returns how many requests of a class have been shed (429 or
// queue-deadline 503).
func (g *Gate) ShedCount(class Class) uint64 {
	return g.shed[class].Load()
}

// AdmittedCount returns how many requests of a class have been admitted.
func (g *Gate) AdmittedCount(class Class) uint64 {
	return g.admitted[class].Load()
}

// Stats returns a snapshot of the counters.
func (g *Gate) Stats() GateStats {
	g.mu.Lock()
	limit, inflight, queued := g.limit, g.inflight, g.queued
	brownout := g.brownout || g.forceBrownout
	gap := g.drain.Value()
	nDrain := g.drain.Count()
	g.mu.Unlock()

	drainPerSec := 0.0
	if nDrain >= 2 && gap > 0 {
		drainPerSec = 1 / gap
	}
	byClass := func(a *[numClasses]atomic.Uint64) map[string]uint64 {
		m := make(map[string]uint64, numClasses)
		for _, c := range Classes() {
			m[c.String()] = a[c].Load()
		}
		return m
	}
	return GateStats{
		Limit:            limit,
		QueueDepth:       g.queueDepth,
		Admitted:         g.admittedTotal.Load(),
		RejectedFull:     g.rejectedFull.Load(),
		RejectedDeadline: g.rejectedDeadline.Load(),
		Canceled:         g.canceled.Load(),
		InFlight:         inflight,
		Queued:           queued,
		Mode:             g.mode.String(),
		MaxLimit:         g.maxLimit,
		LimitRaises:      g.limitRaises.Load(),
		LimitDrops:       g.limitDrops.Load(),
		AdmittedByClass:  byClass(&g.admitted),
		ShedByClass:      byClass(&g.shed),
		DrainPerSec:      drainPerSec,
		Brownout:         brownout,
	}
}
