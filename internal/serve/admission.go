package serve

import (
	"context"
	"errors"
	"sync/atomic"
	"time"
)

// Admission-control errors; the HTTP layer maps them to 429/503 with a
// Retry-After header.
var (
	// ErrQueueFull means the server is at its concurrency limit and its
	// wait queue is full: shed the request immediately (HTTP 429).
	ErrQueueFull = errors.New("serve: overloaded, queue full")
	// ErrQueueTimeout means the request waited in the queue for the full
	// admission deadline without a slot freeing up (HTTP 503).
	ErrQueueTimeout = errors.New("serve: overloaded, queue wait deadline exceeded")
)

// GateStats is a snapshot of admission-control counters.
type GateStats struct {
	Limit            int    `json:"limit"`
	QueueDepth       int    `json:"queue_depth"`
	Admitted         uint64 `json:"admitted"`
	RejectedFull     uint64 `json:"rejected_queue_full"`
	RejectedDeadline uint64 `json:"rejected_deadline"`
	Canceled         uint64 `json:"canceled"`
	InFlight         int    `json:"in_flight"`
	Queued           int    `json:"queued"`
}

// Gate bounds the number of requests executing heavy work concurrently.
// Beyond the limit, up to queueDepth requests wait (bounded by timeout and
// by the request context); anything more is shed immediately. This is what
// keeps a burst of expensive histogram requests degrading into fast,
// explicit rejections instead of an unbounded pile-up.
type Gate struct {
	slots   chan struct{} // capacity = concurrency limit
	waiters chan struct{} // capacity = queue depth
	timeout time.Duration

	admitted, rejectedFull, rejectedDeadline, canceled atomic.Uint64
}

// NewGate creates a gate admitting limit concurrent holders with a wait
// queue of queueDepth and a per-request queue deadline. limit < 1 is
// clamped to 1; queueDepth < 0 to 0; timeout <= 0 means wait forever
// (still bounded by the request context).
func NewGate(limit, queueDepth int, timeout time.Duration) *Gate {
	if limit < 1 {
		limit = 1
	}
	if queueDepth < 0 {
		queueDepth = 0
	}
	return &Gate{
		slots:   make(chan struct{}, limit),
		waiters: make(chan struct{}, queueDepth),
		timeout: timeout,
	}
}

// Acquire blocks until a slot is free, the queue deadline passes, or ctx
// is done. On nil return the caller must call Release exactly once.
func (g *Gate) Acquire(ctx context.Context) error {
	select {
	case g.slots <- struct{}{}:
		g.admitted.Add(1)
		return nil
	default:
	}
	// No free slot: claim a queue position or shed.
	select {
	case g.waiters <- struct{}{}:
	default:
		g.rejectedFull.Add(1)
		return ErrQueueFull
	}
	defer func() { <-g.waiters }()

	var deadline <-chan time.Time
	if g.timeout > 0 {
		timer := time.NewTimer(g.timeout)
		defer timer.Stop()
		deadline = timer.C
	}
	select {
	case g.slots <- struct{}{}:
		g.admitted.Add(1)
		return nil
	case <-deadline:
		g.rejectedDeadline.Add(1)
		return ErrQueueTimeout
	case <-ctx.Done():
		g.canceled.Add(1)
		return ctx.Err()
	}
}

// Release frees a slot acquired with Acquire.
func (g *Gate) Release() { <-g.slots }

// Stats returns a snapshot of the counters.
func (g *Gate) Stats() GateStats {
	return GateStats{
		Limit:            cap(g.slots),
		QueueDepth:       cap(g.waiters),
		Admitted:         g.admitted.Load(),
		RejectedFull:     g.rejectedFull.Load(),
		RejectedDeadline: g.rejectedDeadline.Load(),
		Canceled:         g.canceled.Load(),
		InFlight:         len(g.slots),
		Queued:           len(g.waiters),
	}
}
