package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"os"
	"runtime"
	"runtime/debug"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/fastquery"
	"repro/internal/histogram"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/query"
	"repro/internal/session"
	"repro/internal/shard"
)

// Limits on requested histogram resolution; beyond them a request is
// rejected with 400 rather than allocating unbounded bin arrays.
const (
	MaxBins1D = 1 << 20
	MaxBins2D = 4096 // per axis
)

// Config parameterises a Server. Zero values take the documented
// defaults; pass a negative value to turn a bounded feature off
// entirely.
type Config struct {
	// CacheEntries bounds the result cache. 0 means the default (256);
	// negative disables storage (coalescing still applies).
	CacheEntries int
	// Concurrency is the number of requests allowed to run backend work
	// at once. Default 8.
	Concurrency int
	// QueueDepth is the number of requests allowed to wait for a slot
	// before new arrivals are shed with 429. 0 means the default
	// (2x Concurrency); negative means no queue at all.
	QueueDepth int
	// QueueTimeout bounds how long a queued request waits before 503.
	// Default 2s.
	QueueTimeout time.Duration
	// ExecTimeout bounds backend execution per request; expiry cancels the
	// in-flight work (cooperatively, at the backends' row checkpoints) and
	// returns 504. 0 means the default (30s); negative disables the bound.
	ExecTimeout time.Duration
	// SlowThreshold is the latency beyond which a request is recorded in
	// the slow-query log and counted by serve_slow_queries_total. 0 means
	// the default (250ms); negative disables slow-query capture.
	SlowThreshold time.Duration
	// SlowLogEntries bounds the in-memory slow-query ring served at
	// /v1/debug/slow. 0 means the default (128).
	SlowLogEntries int
	// Logger receives the server's structured JSON-lines log output.
	// Nil means a logger writing to stderr.
	Logger *obs.Logger

	// LimitMode selects the admission limiter: "fixed" (default, the
	// static gate), "aimd", or "gradient" (self-tuning against SLO).
	LimitMode string
	// SLO is the latency target the adaptive limiter steers the windowed
	// p95 toward. 0 means the gate default (250ms).
	SLO time.Duration
	// MaxConcurrency caps adaptive limit growth. 0 means 8× Concurrency.
	MaxConcurrency int
	// AdjustEvery is the limiter's minimum adjustment interval. 0 means
	// the gate default (250ms).
	AdjustEvery time.Duration
	// Brownout enables degraded histogram answers (coarser cached
	// resolution, or index-only approximation) under sustained pressure,
	// instead of shedding.
	Brownout bool

	// BurnBudget is the tolerated bad-request fraction for the SLO
	// burn-rate monitor (0 means the monitor default, 5%). A request is
	// "bad" when it returns a 5xx or takes longer than SLO.
	BurnBudget float64
	// BurnFast and BurnSlow are the multi-window burn-rate lookbacks.
	// Zero means the monitor defaults (5m / 1h).
	BurnFast, BurnSlow time.Duration
	// BurnThreshold is the burn rate both windows must reach to fire a
	// breach (0 means 1.0 — consuming budget exactly as fast as it
	// accrues).
	BurnThreshold float64
	// BurnCooldown is the minimum gap between breach firings (0 means
	// the slow window).
	BurnCooldown time.Duration

	// ProfileDir, when set, arms the flight recorder: each SLO burn-rate
	// breach captures CPU + heap profiles and the slow-query ring into a
	// bounded spool of capture directories under this path.
	ProfileDir string
	// ProfileCaptures bounds the capture spool (0 means 8).
	ProfileCaptures int
	// ProfileCPU is the CPU-profile sampling window per capture (0 means
	// 2s).
	ProfileCPU time.Duration

	// SessionTTL evicts analysis sessions idle longer than this (0 means
	// 15m; negative disables TTL eviction).
	SessionTTL time.Duration
	// SessionMax bounds live analysis sessions, LRU-evicted (0 means 64;
	// negative unbounded).
	SessionMax int
	// SessionMaxBytes bounds total stored selection bytes across sessions
	// (0 means 64 MiB; negative unbounded).
	SessionMaxBytes int64
}

func (c Config) withDefaults() Config {
	if c.CacheEntries == 0 {
		c.CacheEntries = 256
	}
	if c.Concurrency <= 0 {
		c.Concurrency = 8
	}
	switch {
	case c.QueueDepth == 0:
		c.QueueDepth = 2 * c.Concurrency
	case c.QueueDepth < 0:
		c.QueueDepth = 0
	}
	if c.QueueTimeout == 0 {
		c.QueueTimeout = 2 * time.Second
	}
	switch {
	case c.ExecTimeout == 0:
		c.ExecTimeout = 30 * time.Second
	case c.ExecTimeout < 0:
		c.ExecTimeout = 0
	}
	switch {
	case c.SlowThreshold == 0:
		c.SlowThreshold = 250 * time.Millisecond
	case c.SlowThreshold < 0:
		c.SlowThreshold = 0
	}
	if c.SlowLogEntries == 0 {
		c.SlowLogEntries = 128
	}
	if c.Logger == nil {
		c.Logger = obs.NewLogger(os.Stderr, "serve")
	}
	return c
}

// dataset is one served dataset: the open source plus a registry of open
// timesteps shared by all requests (Source and Step are safe for
// concurrent readers). A live dataset additionally carries the ingestion
// state (catalog, writer, builder, watcher) in live.
type dataset struct {
	name string
	src  *fastquery.Source
	live *liveState // nil for a static (read-only) dataset

	mu    sync.Mutex
	steps map[int]*stepHandle
	// retired holds step handles replaced by a hot upgrade (scan → fastbit
	// after the sidecar index landed). They may still be referenced by
	// in-flight queries, so they are closed only when the dataset closes.
	// Bounded: each step upgrades at most once per index publish.
	retired []*fastquery.Step
}

// stepHandle pairs an open step with the catalog generation it was opened
// at, so an index publish (which bumps the step's generation) triggers a
// reopen on the next access.
type stepHandle struct {
	st  *fastquery.Step
	gen uint64
}

// stepGen returns timestep t's current catalog generation — the value at
// its last state change (commit or index publish). Static datasets have
// no catalog; every step is generation 0 forever.
func (d *dataset) stepGen(t int) uint64 {
	if d.live == nil {
		return 0
	}
	man := d.live.man.Load()
	if man == nil || t < 0 || t >= len(man.Steps) {
		return 0
	}
	return man.Steps[t].Gen
}

// step returns the shared open handle for timestep t, opening it on first
// use. When the step's catalog generation has moved past the handle's (its
// index was published after the handle was opened), the handle is reopened
// so the fastbit backend becomes available; the old handle is retired, not
// closed, because concurrent requests may still be reading through it.
func (d *dataset) step(t int) (*fastquery.Step, error) {
	gen := d.stepGen(t)
	d.mu.Lock()
	defer d.mu.Unlock()
	if h, ok := d.steps[t]; ok && h.gen >= gen {
		return h.st, nil
	}
	st, err := d.src.OpenStep(t)
	if err != nil {
		return nil, err
	}
	if h, ok := d.steps[t]; ok {
		d.retired = append(d.retired, h.st)
	}
	d.steps[t] = &stepHandle{st: st, gen: gen}
	return st, nil
}

func (d *dataset) close() {
	if d.live != nil {
		d.live.stopAll()
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, h := range d.steps {
		h.st.Close() //nolint:errcheck // read-only handles
	}
	for _, st := range d.retired {
		st.Close() //nolint:errcheck // read-only handles
	}
	d.steps = map[int]*stepHandle{}
	d.retired = nil
	d.src.Close() //nolint:errcheck // idempotent
}

// Server is the HTTP query service. Create with New, register datasets
// with AddDataset, then use it as an http.Handler.
type Server struct {
	cfg   Config
	cache *Cache
	gate  *Gate
	mux   *http.ServeMux

	reg      *obs.Registry
	metrics  *serverMetrics
	slowLog  *obs.SlowLog
	logger   *obs.Logger
	started  time.Time
	slo      time.Duration       // latency target the burn monitor judges against
	burn     *obs.BurnMonitor    // SLO burn-rate monitor fed by instrumented()
	flight   *obs.FlightRecorder // nil unless ProfileDir armed it
	sessions *session.Manager    // analysis sessions: named selections + tracks

	mu       sync.RWMutex
	datasets map[string]*dataset
	order    []string
	pool     *cluster.Pool // optional worker pool for /v1/sweep2d
	shard    *shard.Client // optional scatter client: this server is a frontend

	backendCalls     *obs.Counter
	canceled         *obs.Counter // requests abandoned by their client (499)
	execTimeouts     *obs.Counter // requests that hit ExecTimeout (504)
	panics           *obs.Counter // handler panics converted to 500
	probeBypass      *obs.Counter // cached-key probes answered without a gate slot
	scatters         *obs.Counter // operations executed through the scatter client
	scatterFrags     *obs.Counter // plan fragments dispatched to shard workers
	partials         *obs.Counter // responses merged without every shard
	explains         *obs.Counter // requests that asked for an execution profile
	federationErrors *obs.Counter // shard scrapes that failed during /metrics federation
	draining         atomic.Bool  // /readyz reports 503 while set

	// brownoutSem bounds concurrent index-only brownout rescues so the
	// degraded path cannot itself become the overload.
	brownoutSem chan struct{}
}

// New creates a Server with no datasets.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	reg := obs.NewRegistry()
	mode, _ := ParseLimitMode(cfg.LimitMode) // unknown modes fall back to fixed
	s := &Server{
		cfg:   cfg,
		cache: NewCache(cfg.CacheEntries),
		gate: NewGate(GateConfig{
			Limit:        cfg.Concurrency,
			MaxLimit:     cfg.MaxConcurrency,
			QueueDepth:   cfg.QueueDepth,
			QueueTimeout: cfg.QueueTimeout,
			Mode:         mode,
			SLO:          cfg.SLO,
			AdjustEvery:  cfg.AdjustEvery,
		}),
		mux:         http.NewServeMux(),
		reg:         reg,
		slowLog:     obs.NewSlowLog(cfg.SlowLogEntries),
		logger:      cfg.Logger,
		started:     time.Now(),
		datasets:    map[string]*dataset{},
		brownoutSem: make(chan struct{}, brownoutWorkers),
	}
	s.metrics = newServerMetrics(reg, s.cache, s.gate)
	s.backendCalls = reg.Counter("serve_backend_calls_total",
		"Backend evaluations run (cache misses that executed work).")
	s.canceled = reg.Counter("serve_canceled_total",
		"Requests abandoned by their client before completion (499).")
	s.execTimeouts = reg.Counter("serve_exec_timeouts_total",
		"Requests that hit the execution timeout (504).")
	s.panics = reg.Counter("serve_panics_total",
		"Handler panics converted to 500 responses.")
	s.probeBypass = reg.Counter("serve_probe_bypass_total",
		"Cached-key probes answered without consuming a gate slot.")
	s.scatters = reg.Counter("serve_scatter_total",
		"Operations executed through the shard scatter client.")
	s.scatterFrags = reg.Counter("serve_scatter_fragments_total",
		"Plan fragments dispatched to shard workers.")
	s.partials = reg.Counter("serve_partial_total",
		"Responses merged without every shard (degraded scatter answers).")
	s.explains = reg.Counter("serve_explain_total",
		"Requests that asked for a per-query execution profile (?debug=explain).")
	s.federationErrors = reg.Counter("serve_federation_errors_total",
		"Shard metric scrapes that failed during /metrics federation.")

	// SLO burn-rate monitoring and breach-triggered capture. The monitor
	// always runs (its gauges are the alerting surface); the flight
	// recorder only when a spool directory was configured.
	s.slo = cfg.SLO
	if s.slo <= 0 {
		s.slo = 250 * time.Millisecond
	}
	if cfg.ProfileDir != "" {
		fr, err := obs.NewFlightRecorder(cfg.ProfileDir, cfg.ProfileCaptures, cfg.ProfileCPU)
		if err != nil {
			s.logger.Error("flight recorder disabled", "error", err.Error())
		} else {
			s.flight = fr
		}
	}
	s.burn = obs.NewBurnMonitor(obs.BurnConfig{
		Budget:    cfg.BurnBudget,
		Fast:      cfg.BurnFast,
		Slow:      cfg.BurnSlow,
		Threshold: cfg.BurnThreshold,
		Cooldown:  cfg.BurnCooldown,
		OnBreach: func(fast, slow float64) {
			s.logger.Error("SLO burn-rate breach",
				"fast_burn", fmt.Sprintf("%.2f", fast),
				"slow_burn", fmt.Sprintf("%.2f", slow),
				"slo", s.slo.String())
			s.flight.Capture(
				fmt.Sprintf("slo-burn fast=%.2f slow=%.2f", fast, slow),
				s.slowLog,
				map[string]any{
					"fast_burn": fast,
					"slow_burn": slow,
					"slo_ms":    float64(s.slo) / float64(time.Millisecond),
				})
		},
	})
	reg.GaugeFunc("serve_slo_burn_rate",
		"SLO burn rate (bad fraction over error budget) per lookback window.",
		s.burn.FastRate, obs.L("window", "fast"))
	reg.GaugeFunc("serve_slo_burn_rate",
		"SLO burn rate (bad fraction over error budget) per lookback window.",
		s.burn.SlowRate, obs.L("window", "slow"))
	reg.CounterFunc("serve_slo_breaches_total",
		"Multi-window SLO burn-rate breaches fired.", s.burn.Breaches)
	reg.CounterFunc("serve_flight_captures_total",
		"Flight-recorder captures completed (profiles + slow log spooled to disk).",
		func() uint64 { return s.flight.Captures() })
	reg.CounterFunc("serve_flight_dropped_total",
		"Flight-recorder capture requests dropped because one was already in flight.",
		func() uint64 { return s.flight.Dropped() })

	s.mux.HandleFunc("/healthz", s.instrumented("healthz", s.handleHealth))
	s.mux.HandleFunc("/readyz", s.instrumented("readyz", s.handleReady))
	s.mux.HandleFunc("/v1/datasets", s.instrumented("datasets", s.handleDatasets))
	s.mux.HandleFunc("/v1/steps", s.instrumented("steps", s.handleSteps))
	s.mux.HandleFunc("/v1/vars", s.instrumented("vars", s.handleVars))
	s.mux.HandleFunc("/v1/query", s.instrumented("query", s.handleQuery))
	s.mux.HandleFunc("/v1/hist1d", s.instrumented("hist1d", s.handleHist1D))
	s.mux.HandleFunc("/v1/hist2d", s.instrumented("hist2d", s.handleHist2D))
	s.mux.HandleFunc("/v1/sweep2d", s.instrumented("sweep2d", s.handleSweep2D))
	s.mux.HandleFunc("/v1/ingest", s.instrumented("ingest", s.handleIngest))
	s.mux.HandleFunc("/v1/stats", s.instrumented("stats", s.handleStats))
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.Handle("/v1/debug/slow", s.slowLog.Handler())
	s.registerSessions()
	return s
}

// Registry returns the server's metric registry, for embedding its series
// in an external admin mux alongside obs.Default().
func (s *Server) Registry() *obs.Registry { return s.reg }

// SlowLog returns the server's slow-query log, for serving on an admin
// listener.
func (s *Server) SlowLog() *obs.SlowLog { return s.slowLog }

// SetWorkers connects the server to a pool of cluster workers; once set,
// /v1/sweep2d strides sweeps across them instead of looping locally.
// Replaces (and closes) any previous pool. Pass nil cfg fields via
// cluster.DefaultPoolConfig.
func (s *Server) SetWorkers(addrs []string, cfg cluster.PoolConfig) error {
	p, err := cluster.DialConfig(addrs, cfg)
	if err != nil {
		return err
	}
	s.mu.Lock()
	old := s.pool
	s.pool = p
	s.mu.Unlock()
	if old != nil {
		old.Close()
	}
	return nil
}

// workerPool returns the configured cluster pool, or nil.
func (s *Server) workerPool() *cluster.Pool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.pool
}

// SetShardClient turns this server into a scatter-gather frontend: query,
// hist1d, hist2d and sweep2d fragments are scattered to the client's shard
// workers and the mergeable partials combined, instead of evaluating
// locally. Replaces (and closes) any previous client. The server still
// needs its datasets registered with AddDataset — planning reads row
// counts and variable metadata locally (every node shares the dataset
// directory).
func (s *Server) SetShardClient(c *shard.Client) {
	s.mu.Lock()
	old := s.shard
	s.shard = c
	s.mu.Unlock()
	if old != nil {
		old.Close()
	}
}

// shardClient returns the configured scatter client, or nil.
func (s *Server) shardClient() *shard.Client {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.shard
}

// AddDataset opens a dataset directory and serves it under name.
func (s *Server) AddDataset(name, dir string) error {
	src, err := fastquery.Open(dir)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.datasets[name]; dup {
		src.Close() //nolint:errcheck // idempotent
		return fmt.Errorf("serve: duplicate dataset %q", name)
	}
	s.datasets[name] = &dataset{name: name, src: src, steps: map[int]*stepHandle{}}
	s.order = append(s.order, name)
	return nil
}

// Close releases every open dataset and the worker pool, if any.
func (s *Server) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, d := range s.datasets {
		d.close()
	}
	s.datasets = map[string]*dataset{}
	s.order = nil
	if s.pool != nil {
		s.pool.Close()
		s.pool = nil
	}
	if s.shard != nil {
		s.shard.Close()
		s.shard = nil
	}
}

// BackendCalls returns how many backend evaluations have run (cache
// misses), for tests and the stats endpoint.
func (s *Server) BackendCalls() uint64 { return s.backendCalls.Load() }

// SetDraining switches the readiness signal: while draining, /readyz
// returns 503 so a load balancer stops routing new work here, while
// /healthz keeps reporting the process alive. Call with true before
// http.Server.Shutdown.
func (s *Server) SetDraining(v bool) { s.draining.Store(v) }

// ServeHTTP implements http.Handler. Panics in handlers become 500s with
// a counter rather than killing the whole process (http.ErrAbortHandler
// keeps its conventional meaning and is re-panicked).
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	defer func() {
		if rec := recover(); rec != nil {
			if rec == http.ErrAbortHandler {
				panic(rec)
			}
			s.panics.Inc()
			s.logger.Error("panic in handler",
				"method", r.Method, "path", r.URL.Path,
				"panic", fmt.Sprint(rec), "stack", string(debug.Stack()))
			// Best effort: if the handler already wrote headers this is a
			// no-op and the client sees a truncated response.
			writeError(w, http.StatusInternalServerError, "internal error: %v", rec)
		}
	}()
	s.mux.ServeHTTP(w, r)
}

// requestCtx derives the execution context for one request: the client
// connection (canceled on disconnect) bounded by ExecTimeout.
func (s *Server) requestCtx(r *http.Request) (context.Context, context.CancelFunc) {
	if s.cfg.ExecTimeout > 0 {
		return context.WithTimeout(r.Context(), s.cfg.ExecTimeout)
	}
	return context.WithCancel(r.Context())
}

// writeExecError maps an execution error to a response: client
// cancellation to 499 (nginx's convention), deadline expiry to 504, and
// everything else to 500, with distinct counters for the first two.
func (s *Server) writeExecError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, context.Canceled):
		s.canceled.Inc()
		writeError(w, 499, "client canceled: %v", err)
	case errors.Is(err, context.DeadlineExceeded):
		s.execTimeouts.Inc()
		writeError(w, http.StatusGatewayTimeout, "execution timeout: %v", err)
	default:
		writeError(w, http.StatusInternalServerError, "%v", err)
	}
}

// admit acquires a gate slot for a heavy request under its priority
// class, tracing the wait as "admission-wait" so queueing shows up in
// span trees. On success it returns an idempotent release closure that
// reports the slot's hold time back to the limiter.
func (s *Server) admit(r *http.Request, class Class) (release func(), err error) {
	_, sp := obs.StartSpan(r.Context(), "admission-wait")
	sp.SetAttr("class", class.String())
	err = s.gate.Acquire(r.Context(), class)
	if err != nil {
		sp.SetAttr("error", err.Error())
	}
	sp.End()
	if err != nil {
		return nil, err
	}
	held := time.Now()
	var once sync.Once
	return func() {
		once.Do(func() { s.gate.Release(time.Since(held)) })
	}, nil
}

// writeShed maps an admission failure to a response: immediate shed to
// 429, queue-deadline expiry to 503 — both carrying a Retry-After derived
// from the gate's measured drain rate — and client disconnect to 499.
func (s *Server) writeShed(w http.ResponseWriter, class Class, err error) {
	switch {
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", strconv.Itoa(s.gate.RetryAfter(class)))
		writeError(w, http.StatusTooManyRequests, "%v", err)
	case errors.Is(err, ErrQueueTimeout):
		w.Header().Set("Retry-After", strconv.Itoa(s.gate.RetryAfter(class)))
		writeError(w, http.StatusServiceUnavailable, "%v", err)
	default: // client went away
		s.canceled.Inc()
		writeError(w, 499, "client canceled: %v", err)
	}
}

// shedErr reports whether an admission error is load shedding (as opposed
// to the client going away) — the only failures brownout may rescue.
func shedErr(err error) bool {
	return errors.Is(err, ErrQueueFull) || errors.Is(err, ErrQueueTimeout)
}

// peekBypass answers a request whose exact cache key is already resident
// without consuming a gate slot: the cached-key probe class. One map
// lookup cannot meaningfully load the server, so probes stay instant even
// when every slot is busy — the property that keeps an exploration
// client's redraws responsive under overload.
func (s *Server) peekBypass(r *http.Request, key string) (any, bool) {
	_, sp := obs.StartSpan(r.Context(), "cache-peek")
	val, ok := s.cache.Peek(key)
	sp.SetAttr("hit", strconv.FormatBool(ok))
	sp.End()
	if ok {
		s.probeBypass.Inc()
	}
	return val, ok
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.Encode(body) //nolint:errcheck // client gone; nothing to do
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, ErrorBody{Error: fmt.Sprintf(format, args...)})
}

// httpError carries a status code through request helpers.
type httpError struct {
	status int
	msg    string
}

func (e *httpError) Error() string { return e.msg }

func errf(status int, format string, args ...any) *httpError {
	return &httpError{status: status, msg: fmt.Sprintf(format, args...)}
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReady is the load-balancer signal: 200 while serving, 503 while
// draining. Liveness (/healthz) stays 200 throughout a drain.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

// buildInfo reports the binary's provenance and runtime state — enough to
// answer "what exactly is running here, and for how long" from /v1/stats.
func (s *Server) buildInfo() BuildInfo {
	b := BuildInfo{
		GoVersion:     runtime.Version(),
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		Goroutines:    runtime.NumGoroutine(),
		UptimeSeconds: time.Since(s.started).Seconds(),
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		b.Version = bi.Main.Version
		b.Path = bi.Main.Path
		for _, kv := range bi.Settings {
			if kv.Key == "vcs.revision" {
				b.Revision = kv.Value
			}
		}
	}
	return b
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	body := StatsBody{
		Cache:        s.cache.Stats(),
		Admission:    s.gate.Stats(),
		BackendCalls: s.backendCalls.Load(),
		Canceled:     s.canceled.Load(),
		ExecTimeouts: s.execTimeouts.Load(),
		Panics:       s.panics.Load(),
		Build:        s.buildInfo(),
		Metrics:      obs.SnapshotAll(s.reg, obs.Default()),
	}
	sess := s.sessions.Stats()
	body.Sessions = &sess
	s.mu.RLock()
	for _, name := range s.order {
		d := s.datasets[name]
		if fails := d.src.IndexFailures(); len(fails) > 0 {
			if body.IndexFailures == nil {
				body.IndexFailures = map[string][]fastquery.IndexFailure{}
			}
			body.IndexFailures[name] = fails
		}
		if d.live != nil {
			if body.Ingest == nil {
				body.Ingest = map[string]IngestStats{}
			}
			body.Ingest[name] = d.live.stats()
		}
	}
	s.mu.RUnlock()
	if c := s.shardClient(); c != nil {
		sh := &ShardingStats{
			Shards:      c.Shards(),
			Scatters:    s.scatters.Load(),
			Fragments:   s.scatterFrags.Load(),
			Partials:    s.partials.Load(),
			ShardStatus: c.Stats(r.Context(), 2*time.Second),
		}
		var hits, misses uint64
		for _, st := range sh.ShardStatus {
			hits += st.Stats.CacheHits
			misses += st.Stats.CacheMisses
			if sh.FleetSteps == 0 && st.Err == "" {
				sh.FleetSteps = st.Stats.Steps
			}
		}
		if hits+misses > 0 {
			sh.FleetCacheHitRate = float64(hits) / float64(hits+misses)
		}
		body.Sharding = sh
	}
	writeJSON(w, http.StatusOK, body)
}

func (s *Server) handleDatasets(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]DatasetInfo, 0, len(s.order))
	for _, name := range s.order {
		d := s.datasets[name]
		out = append(out, DatasetInfo{
			Name:      name,
			Steps:     d.src.Steps(),
			Variables: d.src.Variables(),
		})
	}
	writeJSON(w, http.StatusOK, out)
}

// lookup resolves the dataset named in the request.
func (s *Server) lookup(r *http.Request) (*dataset, *httpError) {
	name := r.FormValue("dataset")
	s.mu.RLock()
	defer s.mu.RUnlock()
	if name == "" {
		if len(s.order) == 1 {
			return s.datasets[s.order[0]], nil
		}
		return nil, errf(http.StatusBadRequest, "missing dataset parameter (have %v)", s.order)
	}
	d, ok := s.datasets[name]
	if !ok {
		return nil, errf(http.StatusNotFound, "unknown dataset %q (have %v)", name, s.order)
	}
	return d, nil
}

// stepParam resolves the step parameter, defaulting to the last timestep.
func stepParam(r *http.Request, d *dataset) (int, *httpError) {
	raw := r.FormValue("step")
	if raw == "" {
		return d.src.Steps() - 1, nil
	}
	t, err := strconv.Atoi(raw)
	if err != nil {
		return 0, errf(http.StatusBadRequest, "bad step %q", raw)
	}
	if t < 0 || t >= d.src.Steps() {
		return 0, errf(http.StatusNotFound, "step %d out of range [0,%d)", t, d.src.Steps())
	}
	return t, nil
}

func (s *Server) handleSteps(w http.ResponseWriter, r *http.Request) {
	d, herr := s.lookup(r)
	if herr != nil {
		writeError(w, herr.status, "%s", herr.msg)
		return
	}
	body := StepsBody{Dataset: d.name, Steps: d.src.Steps(), Live: d.live != nil}
	if d.live != nil {
		body.Generation = d.live.man.Load().Generation
	}
	if r.FormValue("detail") != "" {
		for t := 0; t < d.src.Steps(); t++ {
			st, err := d.step(t)
			if err != nil {
				writeError(w, http.StatusInternalServerError, "step %d: %v", t, err)
				return
			}
			info := StepInfo{Step: t, Indexed: st.HasIndex(), Rows: st.Rows(),
				IndexState: d.indexState(t, st)}
			body.Detail = append(body.Detail, info)
		}
	}
	writeJSON(w, http.StatusOK, body)
}

func (s *Server) handleVars(w http.ResponseWriter, r *http.Request) {
	d, herr := s.lookup(r)
	if herr != nil {
		writeError(w, herr.status, "%s", herr.msg)
		return
	}
	t, herr := stepParam(r, d)
	if herr != nil {
		writeError(w, herr.status, "%s", herr.msg)
		return
	}
	st, err := d.step(t)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	names := d.src.Variables()
	sort.Strings(names)
	body := VarsBody{Dataset: d.name, Step: t, Vars: make([]VarInfo, 0, len(names))}
	for _, name := range names {
		lo, hi, err := st.MinMax(name)
		if err != nil {
			writeError(w, http.StatusInternalServerError, "%s: %v", name, err)
			return
		}
		body.Vars = append(body.Vars, VarInfo{Name: name, Min: lo, Max: hi})
	}
	writeJSON(w, http.StatusOK, body)
}

// request bundles the parameters shared by the query/histogram endpoints.
type request struct {
	d       *dataset
	st      *fastquery.Step
	t       int
	gen     uint64     // step's catalog generation (0 for static datasets)
	expr    query.Expr // nil when no condition was given
	src     string     // query text as received
	plan    string     // canonical rendering, "" when expr == nil
	backend fastquery.Backend

	explain     bool          // ?debug=explain: attach an execution profile
	explainOnly bool          // ?explain=only: return the profile instead of the answer
	prof        *plan.Profile // per-fragment collector, nil unless explain
	waitMS      float64       // frontend admission wait, for the profile
}

// parseRequest resolves dataset, step, condition and backend, validating
// every referenced variable so unknown names are a 404, not a backend
// error.
func (s *Server) parseRequest(r *http.Request, requireQuery bool) (*request, *httpError) {
	d, herr := s.lookup(r)
	if herr != nil {
		return nil, herr
	}
	t, herr := stepParam(r, d)
	if herr != nil {
		return nil, herr
	}
	st, err := d.step(t)
	if err != nil {
		return nil, errf(http.StatusInternalServerError, "%v", err)
	}
	req := &request{d: d, st: st, t: t, gen: d.stepGen(t), src: r.FormValue("q")}
	if req.explain, req.explainOnly = parseExplain(r); req.explain {
		req.prof = plan.NewProfile()
	}
	if req.src == "" && requireQuery {
		return nil, errf(http.StatusBadRequest, "missing q parameter")
	}
	if req.src != "" {
		_, sp := obs.StartSpan(r.Context(), "plan-canonicalize")
		expr, err := query.Parse(req.src)
		if err != nil {
			sp.SetAttr("error", err.Error())
			sp.End()
			return nil, errf(http.StatusBadRequest, "%v", err)
		}
		req.expr = query.Canonical(expr)
		req.plan = req.expr.String()
		sp.SetAttr("plan", req.plan)
		sp.End()
		if herr := checkVars(d, query.Vars(req.expr)...); herr != nil {
			return nil, herr
		}
	}
	switch b := r.FormValue("backend"); b {
	case "", "fastbit", "fb":
		if st.HasIndex() {
			req.backend = fastquery.FastBit
		} else if b == "" {
			req.backend = fastquery.Scan
		} else if ierr := st.IndexError(); ierr != nil {
			// The index exists but was rejected (truncated/corrupt): say
			// why, so the client knows this is degradation, not absence.
			return nil, errf(http.StatusServiceUnavailable,
				"step %d index unavailable (%v); use backend=scan", t, ierr)
		} else {
			return nil, errf(http.StatusBadRequest,
				"step %d has no index; use backend=scan", t)
		}
	case "scan", "custom":
		req.backend = fastquery.Scan
	default:
		return nil, errf(http.StatusBadRequest, "unknown backend %q (fastbit | scan)", b)
	}
	return req, nil
}

// checkVars verifies each name is a declared dataset variable.
func checkVars(d *dataset, names ...string) *httpError {
	have := d.src.Variables()
	set := map[string]bool{}
	for _, v := range have {
		set[v] = true
	}
	for _, name := range names {
		if name == "" {
			return errf(http.StatusBadRequest, "missing variable parameter")
		}
		if !set[name] {
			sort.Strings(have)
			return errf(http.StatusNotFound, "unknown variable %q (have %v)", name, have)
		}
	}
	return nil
}

// cacheKey builds the deterministic result-cache key: dataset, step, the
// step's catalog generation, backend, canonical plan, and the
// operation-specific spec. The generation makes live-ingest invalidation
// precise: an index publish bumps only that step's generation, so exactly
// its entries stop matching while every other step's stay hot.
func (req *request) cacheKey(spec string) string {
	return strings.Join([]string{
		req.d.name, strconv.Itoa(req.t), strconv.FormatUint(req.gen, 10),
		req.backend.String(), req.plan, spec,
	}, "\x1f")
}

func fmtG(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// binningParam parses the binning parameter (uniform default).
func binningParam(r *http.Request) (histogram.Binning, *httpError) {
	switch b := r.FormValue("binning"); b {
	case "", "uniform":
		return histogram.Uniform, nil
	case "adaptive":
		return histogram.Adaptive, nil
	default:
		return 0, errf(http.StatusBadRequest, "unknown binning %q (uniform | adaptive)", b)
	}
}

// intParam parses an integer parameter with a default and bounds.
func intParam(r *http.Request, name string, def, min, max int) (int, *httpError) {
	raw := r.FormValue(name)
	if raw == "" {
		return def, nil
	}
	v, err := strconv.Atoi(raw)
	if err != nil {
		return 0, errf(http.StatusBadRequest, "bad %s %q", name, raw)
	}
	if v < min || v > max {
		return 0, errf(http.StatusBadRequest, "%s %d out of range [%d,%d]", name, v, min, max)
	}
	return v, nil
}

// floatParam parses a float parameter; NaN when absent.
func floatParam(r *http.Request, name string) (float64, *httpError) {
	raw := r.FormValue(name)
	if raw == "" {
		return math.NaN(), nil
	}
	v, err := strconv.ParseFloat(raw, 64)
	if err != nil || math.IsNaN(v) {
		return 0, errf(http.StatusBadRequest, "bad %s %q", name, raw)
	}
	return v, nil
}

// cacheDo runs the cache lookup under a "cache-lookup" span recording how
// the result was satisfied (computed, hit, coalesced). The flight context
// is detached from the initiating request's cancellation (see Cache.Do)
// but inherits its deadline: the deadline is what the scatter client
// carves per-fragment budgets from, and work that cannot finish by the
// first requester's deadline should not run unbounded for coalesced
// waiters either.
func (s *Server) cacheDo(ctx context.Context, key string, fn func(ctx context.Context) (any, error)) (any, Outcome, error) {
	ctx, sp := obs.StartSpan(ctx, "cache-lookup")
	run := fn
	dl, hasDL := ctx.Deadline()
	prof := plan.ProfileFromContext(ctx)
	if hasDL || prof != nil {
		run = func(fctx context.Context) (any, error) {
			if hasDL {
				var cancel context.CancelFunc
				fctx, cancel = context.WithDeadline(fctx, dl)
				defer cancel()
			}
			if prof != nil {
				// The flight context is detached from the request, which
				// drops context values: re-attach the initiating request's
				// profile collector so the fragments the flight runs are
				// attributed to it. Coalesced waiters never reach here, so
				// they report zero fragments with cache_source "coalesced".
				fctx = plan.WithProfile(fctx, prof)
			}
			return fn(fctx)
		}
	}
	val, outcome, err := s.cache.Do(ctx, key, run)
	sp.SetAttr("outcome", outcome.String())
	sp.End()
	return val, outcome, err
}

// writeBody serializes a success response under a "serialize" span.
func writeBody(r *http.Request, w http.ResponseWriter, body any) {
	_, sp := obs.StartSpan(r.Context(), "serialize")
	writeJSON(w, http.StatusOK, body)
	sp.End()
}

// planQuery builds the planner input for this request. The query text is
// already canonical (parseRequest), so equal requests produce equal
// fragments and fragment-cache keys across the fleet.
func (req *request) planQuery(op plan.Op) plan.Query {
	return plan.Query{
		Op:      op,
		Dataset: req.d.name,
		Step:    req.t,
		Query:   req.plan,
		Backend: req.backend,
	}
}

// localRunner evaluates plan fragments in-process against the server's own
// open step handles: the one-shard degenerate case of the scatter path.
// Single-process serving runs the same planner/executor code as a
// frontend, just with this runner instead of RPCs.
type localRunner struct {
	s *Server
	d *dataset
}

func (lr localRunner) RunFragment(ctx context.Context, shardIdx int, f plan.Fragment) (*plan.FragmentResult, error) {
	st, err := lr.d.step(f.Step)
	if err != nil {
		return nil, err
	}
	lr.s.backendCalls.Inc()
	profile := plan.ProfileFromContext(ctx)
	if profile == nil {
		return shard.Eval(ctx, st, f)
	}
	// Profiled request: charge the fragment's evaluation to a fresh cost
	// accumulator, exactly the way a shard worker does, so local and
	// scattered explains carry the same per-fragment breakdown.
	cost := &obs.Cost{}
	start := time.Now()
	res, err := shard.Eval(obs.WithCost(ctx, cost), st, f)
	fp := plan.FragProfile{
		Shard:  shardIdx,
		Op:     f.Op.String(),
		Rows:   [2]int{int(f.Rows.Lo), int(f.Rows.Hi)},
		Cost:   cost.Snapshot(),
		EvalMS: float64(time.Since(start)) / float64(time.Millisecond),
	}
	if err != nil {
		fp.Err = err.Error()
		fp.Exhausted = fastquery.IsExhausted(err)
	}
	profile.Add(fp)
	return res, err
}

// execPlan runs one planned operation: scattered across the shard fleet
// when a scatter client is configured (merging partials, degrading to a
// Partial answer when a shard is unreachable), locally otherwise.
func (s *Server) execPlan(ctx context.Context, d *dataset, pq plan.Query, rows uint64) (*plan.Result, error) {
	if c := s.shardClient(); c != nil {
		s.scatters.Inc()
		res, err := plan.Execute(ctx, pq, plan.ShardMap{Shards: c.Shards()}, rows, c, plan.ReturnPartial)
		if res != nil {
			s.scatterFrags.Add(uint64(res.Fragments))
			if res.Partial {
				s.partials.Inc()
			}
		}
		return res, err
	}
	return plan.Execute(ctx, pq, plan.ShardMap{Shards: 1}, rows, localRunner{s: s, d: d}, plan.FailFast)
}

// markPartial mirrors a partial merge in the response headers, the way
// X-Degraded marks brownout answers.
func markPartial(w http.ResponseWriter, res *plan.Result) {
	if res.Partial {
		w.Header().Set("X-Partial", "1")
	}
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	req, herr := s.parseRequest(r, true)
	if herr != nil {
		writeError(w, herr.status, "%s", herr.msg)
		return
	}
	key := req.cacheKey("count")
	var execCtx context.Context // set once execution starts; nil on peek hits
	respond := func(val any, outcome Outcome) {
		res := val.(*plan.Result)
		rows := req.st.Rows()
		sel := 0.0
		if rows > 0 {
			sel = float64(res.Count) / float64(rows)
		}
		s.noteExplain(r, req, res, outcome, "")
		markPartial(w, res)
		body := QueryBody{
			Dataset:      req.d.name,
			Step:         req.t,
			Query:        req.src,
			Plan:         req.plan,
			Backend:      req.backend.String(),
			Rows:         rows,
			Matches:      res.Count,
			Selectivity:  sel,
			Outcome:      outcome.String(),
			Partial:      res.Partial,
			FailedShards: res.Failed,
			ElapsedMS:    float64(time.Since(start)) / float64(time.Millisecond),
			Trace:        traceEcho(r),
		}
		if req.explain {
			s.explains.Inc()
			body.Explain = s.buildExplain(execCtx, r, req, "query", res, outcome, "", start)
			if req.explainOnly {
				writeBody(r, w, explainOnlyBody{Explain: body.Explain})
				return
			}
		}
		writeBody(r, w, body)
	}
	if val, ok := s.peekBypass(r, key); ok {
		respond(val, Hit)
		return
	}
	admitStart := time.Now()
	release, aerr := s.admit(r, ClassDrill)
	req.waitMS = float64(time.Since(admitStart)) / float64(time.Millisecond)
	if aerr != nil {
		s.writeShed(w, ClassDrill, aerr)
		return
	}
	defer release()
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	if req.prof != nil {
		ctx = plan.WithProfile(ctx, req.prof)
	}
	execCtx = ctx
	val, outcome, err := s.cacheDo(ctx, key, func(ctx context.Context) (any, error) {
		return s.execPlan(ctx, req.d, req.planQuery(plan.OpCount), req.st.Rows())
	})
	if err != nil {
		s.writeExecError(w, err)
		return
	}
	respond(val, outcome)
}

func (s *Server) handleHist1D(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	req, herr := s.parseRequest(r, false)
	if herr != nil {
		writeError(w, herr.status, "%s", herr.msg)
		return
	}
	spec, herr := hist1DSpec(r, req.d)
	if herr != nil {
		writeError(w, herr.status, "%s", herr.msg)
		return
	}
	s.serveHist1D(w, r, req, spec, start)
}

// hist1DSpec parses the 1D histogram parameters.
func hist1DSpec(r *http.Request, d *dataset) (histogram.Spec1D, *httpError) {
	var zero histogram.Spec1D
	v := r.FormValue("var")
	if herr := checkVars(d, v); herr != nil {
		return zero, herr
	}
	bins, herr := intParam(r, "bins", 64, 1, MaxBins1D)
	if herr != nil {
		return zero, herr
	}
	spec := histogram.NewSpec1D(v, bins)
	if spec.Binning, herr = binningParam(r); herr != nil {
		return zero, herr
	}
	if spec.Lo, herr = floatParam(r, "lo"); herr != nil {
		return zero, herr
	}
	if spec.Hi, herr = floatParam(r, "hi"); herr != nil {
		return zero, herr
	}
	if spec.MinDensity, herr = floatParam(r, "mindensity"); herr != nil {
		return zero, herr
	}
	if math.IsNaN(spec.MinDensity) {
		spec.MinDensity = 0
	}
	return spec, nil
}

// hist1DSpecKey renders the operation-specific part of a 1D histogram's
// cache key; the brownout ladder reuses it to probe coarser resolutions.
func hist1DSpecKey(spec histogram.Spec1D) string {
	return strings.Join([]string{
		"hist1d", spec.Var, strconv.Itoa(spec.Bins), spec.Binning.String(),
		fmtG(spec.Lo), fmtG(spec.Hi), fmtG(spec.MinDensity),
	}, "|")
}

func (s *Server) serveHist1D(w http.ResponseWriter, r *http.Request, req *request, spec histogram.Spec1D, start time.Time) {
	var execCtx context.Context // set once execution starts; nil on peek/brownout hits
	respond := func(val any, outcome Outcome, degraded string) {
		res := val.(*plan.Result)
		h := res.Hist1
		body := Hist1DBody{
			Dataset:      req.d.name,
			Step:         req.t,
			Plan:         req.plan,
			Backend:      req.backend.String(),
			Var:          spec.Var,
			Binning:      spec.Binning.String(),
			Edges:        h.Edges,
			Counts:       h.Counts,
			Total:        h.Total(),
			Outcome:      outcome.String(),
			Degraded:     degraded != "",
			DegradedMode: degraded,
			Partial:      res.Partial,
			FailedShards: res.Failed,
			ElapsedMS:    float64(time.Since(start)) / float64(time.Millisecond),
			Trace:        traceEcho(r),
		}
		if degraded != "" {
			w.Header().Set("X-Degraded", degraded)
		}
		s.noteExplain(r, req, res, outcome, degraded)
		markPartial(w, res)
		if req.explain {
			s.explains.Inc()
			body.Explain = s.buildExplain(execCtx, r, req, "hist1d", res, outcome, degraded, start)
			if req.explainOnly {
				writeBody(r, w, explainOnlyBody{Explain: body.Explain})
				return
			}
		}
		writeBody(r, w, body)
	}
	if val, ok := s.peekBypass(r, req.cacheKey(hist1DSpecKey(spec))); ok {
		respond(val, Hit, "")
		return
	}
	admitStart := time.Now()
	release, aerr := s.admit(r, ClassDrill)
	req.waitMS = float64(time.Since(admitStart)) / float64(time.Millisecond)
	if aerr != nil {
		if shedErr(aerr) && s.tryBrownoutHist1D(r, req, spec, respond) {
			return
		}
		s.writeShed(w, ClassDrill, aerr)
		return
	}
	defer release()
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	if req.prof != nil {
		ctx = plan.WithProfile(ctx, req.prof)
	}
	execCtx = ctx
	val, outcome, err := s.cacheDo(ctx, req.cacheKey(hist1DSpecKey(spec)), func(ctx context.Context) (any, error) {
		pq := req.planQuery(plan.OpHist1D)
		pq.Spec1 = spec
		return s.execPlan(ctx, req.d, pq, req.st.Rows())
	})
	if err != nil {
		s.writeExecError(w, err)
		return
	}
	respond(val, outcome, "")
}

func (s *Server) handleHist2D(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	req, herr := s.parseRequest(r, false)
	if herr != nil {
		writeError(w, herr.status, "%s", herr.msg)
		return
	}
	spec, herr := hist2DSpec(r, req.d)
	if herr != nil {
		writeError(w, herr.status, "%s", herr.msg)
		return
	}
	s.serveHist2D(w, r, req, spec, start)
}

// hist2DSpec parses the 2D histogram parameters.
func hist2DSpec(r *http.Request, d *dataset) (histogram.Spec2D, *httpError) {
	var zero histogram.Spec2D
	xv, yv := r.FormValue("x"), r.FormValue("y")
	if herr := checkVars(d, xv, yv); herr != nil {
		return zero, herr
	}
	spec := histogram.NewSpec2D(xv, yv, 0, 0)
	var herr *httpError
	if spec.XBins, herr = intParam(r, "xbins", 64, 1, MaxBins2D); herr != nil {
		return zero, herr
	}
	if spec.YBins, herr = intParam(r, "ybins", 64, 1, MaxBins2D); herr != nil {
		return zero, herr
	}
	if spec.Binning, herr = binningParam(r); herr != nil {
		return zero, herr
	}
	bounds := []struct {
		name string
		dst  *float64
	}{
		{"xlo", &spec.XLo}, {"xhi", &spec.XHi},
		{"ylo", &spec.YLo}, {"yhi", &spec.YHi},
		{"mindensity", &spec.MinDensity},
	}
	for _, b := range bounds {
		if *b.dst, herr = floatParam(r, b.name); herr != nil {
			return zero, herr
		}
	}
	if math.IsNaN(spec.MinDensity) {
		spec.MinDensity = 0
	}
	return spec, nil
}

// hist2DSpecKey renders the operation-specific part of a 2D histogram's
// cache key; the brownout ladder reuses it to probe coarser resolutions.
func hist2DSpecKey(spec histogram.Spec2D) string {
	return strings.Join([]string{
		"hist2d", spec.XVar, spec.YVar,
		strconv.Itoa(spec.XBins), strconv.Itoa(spec.YBins), spec.Binning.String(),
		fmtG(spec.XLo), fmtG(spec.XHi), fmtG(spec.YLo), fmtG(spec.YHi),
		fmtG(spec.MinDensity),
	}, "|")
}

func (s *Server) serveHist2D(w http.ResponseWriter, r *http.Request, req *request, spec histogram.Spec2D, start time.Time) {
	var execCtx context.Context // set once execution starts; nil on peek/brownout hits
	respond := func(val any, outcome Outcome, degraded string) {
		res := val.(*plan.Result)
		h := res.Hist2
		body := Hist2DBody{
			Dataset:      req.d.name,
			Step:         req.t,
			Plan:         req.plan,
			Backend:      req.backend.String(),
			XVar:         spec.XVar,
			YVar:         spec.YVar,
			Binning:      spec.Binning.String(),
			XEdges:       h.XEdges,
			YEdges:       h.YEdges,
			Counts:       h.Counts,
			Total:        h.Total(),
			Outcome:      outcome.String(),
			Degraded:     degraded != "",
			DegradedMode: degraded,
			Partial:      res.Partial,
			FailedShards: res.Failed,
			ElapsedMS:    float64(time.Since(start)) / float64(time.Millisecond),
			Trace:        traceEcho(r),
		}
		if degraded != "" {
			w.Header().Set("X-Degraded", degraded)
		}
		s.noteExplain(r, req, res, outcome, degraded)
		markPartial(w, res)
		if req.explain {
			s.explains.Inc()
			body.Explain = s.buildExplain(execCtx, r, req, "hist2d", res, outcome, degraded, start)
			if req.explainOnly {
				writeBody(r, w, explainOnlyBody{Explain: body.Explain})
				return
			}
		}
		writeBody(r, w, body)
	}
	if val, ok := s.peekBypass(r, req.cacheKey(hist2DSpecKey(spec))); ok {
		respond(val, Hit, "")
		return
	}
	admitStart := time.Now()
	release, aerr := s.admit(r, ClassDrill)
	req.waitMS = float64(time.Since(admitStart)) / float64(time.Millisecond)
	if aerr != nil {
		if shedErr(aerr) && s.tryBrownoutHist2D(r, req, spec, respond) {
			return
		}
		s.writeShed(w, ClassDrill, aerr)
		return
	}
	defer release()
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	if req.prof != nil {
		ctx = plan.WithProfile(ctx, req.prof)
	}
	execCtx = ctx
	val, outcome, err := s.cacheDo(ctx, req.cacheKey(hist2DSpecKey(spec)), func(ctx context.Context) (any, error) {
		pq := req.planQuery(plan.OpHist2D)
		pq.Spec2 = spec
		return s.execPlan(ctx, req.d, pq, req.st.Rows())
	})
	if err != nil {
		s.writeExecError(w, err)
		return
	}
	respond(val, outcome, "")
}

// stepsParam parses the steps parameter for sweeps: "" (all steps),
// "a-b" (inclusive range), or a comma-separated list.
func stepsParam(r *http.Request, d *dataset) ([]int, *httpError) {
	n := d.src.Steps()
	raw := r.FormValue("steps")
	if raw == "" {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out, nil
	}
	check := func(t int) *httpError {
		if t < 0 || t >= n {
			return errf(http.StatusNotFound, "step %d out of range [0,%d)", t, n)
		}
		return nil
	}
	if lo, hi, ok := strings.Cut(raw, "-"); ok {
		a, err1 := strconv.Atoi(lo)
		b, err2 := strconv.Atoi(hi)
		if err1 != nil || err2 != nil || a > b {
			return nil, errf(http.StatusBadRequest, "bad steps range %q", raw)
		}
		if herr := check(a); herr != nil {
			return nil, herr
		}
		if herr := check(b); herr != nil {
			return nil, herr
		}
		out := make([]int, 0, b-a+1)
		for t := a; t <= b; t++ {
			out = append(out, t)
		}
		return out, nil
	}
	var out []int
	for _, f := range strings.Split(raw, ",") {
		t, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, errf(http.StatusBadRequest, "bad steps %q", raw)
		}
		if herr := check(t); herr != nil {
			return nil, herr
		}
		out = append(out, t)
	}
	return out, nil
}

// handleSweep2D computes one conditional 2D histogram per timestep — the
// paper's temporal-evolution view. With a worker pool configured the
// steps are strided across cluster nodes (and their trace subtrees appear
// in this request's trace); otherwise each step runs locally in turn.
func (s *Server) handleSweep2D(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	req, herr := s.parseRequest(r, false)
	if herr != nil {
		writeError(w, herr.status, "%s", herr.msg)
		return
	}
	spec, herr := hist2DSpec(r, req.d)
	if herr != nil {
		writeError(w, herr.status, "%s", herr.msg)
		return
	}
	steps, herr := stepsParam(r, req.d)
	if herr != nil {
		writeError(w, herr.status, "%s", herr.msg)
		return
	}
	admitStart := time.Now()
	release, aerr := s.admit(r, ClassSweep)
	req.waitMS = float64(time.Since(admitStart)) / float64(time.Millisecond)
	if aerr != nil {
		s.writeShed(w, ClassSweep, aerr)
		return
	}
	defer release()
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	if req.prof != nil {
		ctx = plan.WithProfile(ctx, req.prof)
	}

	var hists []*histogram.Hist2D
	var err error
	mode := "local"
	if p := s.workerPool(); p != nil {
		mode = "cluster"
		hists, err = p.HistogramSweepCtx(ctx, steps, req.src, spec, req.backend)
	} else {
		if s.shardClient() != nil {
			mode = "scatter"
		}
		hists, err = s.planSweep(ctx, req, steps, spec)
	}
	if err != nil {
		s.writeExecError(w, err)
		return
	}
	body := Sweep2DBody{
		Dataset:   req.d.name,
		Steps:     steps,
		Plan:      req.plan,
		Backend:   req.backend.String(),
		Mode:      mode,
		XVar:      spec.XVar,
		YVar:      spec.YVar,
		Totals:    make([]uint64, len(hists)),
		ElapsedMS: float64(time.Since(start)) / float64(time.Millisecond),
		Trace:     traceEcho(r),
	}
	for i, h := range hists {
		if h == nil { // partial sweep result
			body.Failed = append(body.Failed, steps[i])
			continue
		}
		body.Totals[i] = h.Total()
		body.Total += h.Total()
	}
	s.noteExplain(r, req, nil, Computed, "")
	if req.explain {
		s.explains.Inc()
		body.Explain = s.buildExplain(ctx, r, req, "sweep2d", nil, Computed, "", start)
		if req.explainOnly {
			writeBody(r, w, explainOnlyBody{Explain: body.Explain})
			return
		}
	}
	writeBody(r, w, body)
}

// planSweep runs the per-step histograms serially through the planner,
// each under its own sweep-step span to mirror the cluster path's trace
// shape. Without a scatter client every step evaluates in-process; with
// one, each step scatters across the shard fleet in turn.
func (s *Server) planSweep(ctx context.Context, req *request, steps []int, spec histogram.Spec2D) ([]*histogram.Hist2D, error) {
	out := make([]*histogram.Hist2D, len(steps))
	for i, t := range steps {
		st, err := req.d.step(t)
		if err != nil {
			return nil, err
		}
		sctx, sp := obs.StartSpan(ctx, "sweep-step")
		sp.SetAttr("step", strconv.Itoa(t))
		pq := req.planQuery(plan.OpHist2D)
		pq.Step = t
		pq.Spec2 = spec
		res, err := s.execPlan(sctx, req.d, pq, st.Rows())
		if err != nil {
			sp.SetAttr("error", err.Error())
			sp.End()
			return nil, err
		}
		sp.End()
		out[i] = res.Hist2
	}
	return out, nil
}
