// End-to-end tests for the /v1/session analysis-session API: brush,
// incremental refinement (bitmap reuse vs from-scratch equivalence),
// cross-timestep particle tracking, rendered views, and the
// store-or-reject rule for partial scatter merges.
package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"image/png"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
)

// sessPost POSTs a /v1/session path (parameters in the query string) and
// decodes the JSON response.
func sessPost(t *testing.T, ts *httptest.Server, path string, out any) (int, string, http.Header) {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("POST %s: decode %q: %v", path, raw, err)
		}
	}
	return resp.StatusCode, string(raw), resp.Header
}

// queryCount runs /v1/query and returns the match count — the oracle the
// session's refinement algebra is checked against.
func queryCount(t *testing.T, ts *httptest.Server, step int, q string) uint64 {
	t.Helper()
	var body QueryBody
	path := fmt.Sprintf("/v1/query?step=%d&q=%s", step, url.QueryEscape(q))
	if code, raw := get(t, ts, path, &body); code != 200 {
		t.Fatalf("query %s: %d %s", q, code, raw)
	}
	return body.Matches
}

func selectPath(sid string, step int, q, extra string) string {
	p := fmt.Sprintf("/v1/session/%s/select?step=%d&q=%s", sid, step, url.QueryEscape(q))
	if extra != "" {
		p += "&" + extra
	}
	return p
}

func TestSessionBrushRefineTrackViews(t *testing.T) {
	_, ts := testServer(t, Config{})

	var created struct {
		ID string `json:"id"`
	}
	if code, raw, _ := sessPost(t, ts, "/v1/session", &created); code != 200 || created.ID == "" {
		t.Fatalf("create session: %d %s", code, raw)
	}
	sid := created.ID
	const step = 3

	// Brush: a fresh selection from one predicate.
	var sel SessionSelectBody
	if code, raw, _ := sessPost(t, ts, selectPath(sid, step, "px > 0.05", ""), &sel); code != 200 {
		t.Fatalf("select: %d %s", code, raw)
	}
	if !sel.Stored || sel.Partial || sel.Reused || sel.Matches == 0 {
		t.Fatalf("fresh select: %+v", sel)
	}
	if want := queryCount(t, ts, step, "px > 0.05"); sel.Matches != want {
		t.Fatalf("select matches %d, query oracle %d", sel.Matches, want)
	}

	// Refine (and): only the delta predicate evaluates; the stored bitmap
	// combines. The result must equal the full conjunction from scratch.
	var ref SessionSelectBody
	if code, raw, _ := sessPost(t, ts, selectPath(sid, step, "y < 0.5", "refine=and"), &ref); code != 200 {
		t.Fatalf("refine: %d %s", code, raw)
	}
	if !ref.Stored || !ref.Reused || ref.Refines != 1 {
		t.Fatalf("refine not reused: %+v", ref)
	}
	if want := queryCount(t, ts, step, "px > 0.05 && y < 0.5"); ref.Matches != want {
		t.Fatalf("refine=and matches %d, conjunction oracle %d", ref.Matches, want)
	}

	// Refine (andnot): carve a hole out of the selection.
	var ref2 SessionSelectBody
	if code, raw, _ := sessPost(t, ts, selectPath(sid, step, "x > 0.8", "refine=andnot"), &ref2); code != 200 {
		t.Fatalf("refine andnot: %d %s", code, raw)
	}
	if want := queryCount(t, ts, step, "px > 0.05 && y < 0.5 && !(x > 0.8)"); ref2.Matches != want {
		t.Fatalf("refine=andnot matches %d, oracle %d", ref2.Matches, want)
	}
	if ref2.Refines != 2 || !ref2.Reused {
		t.Fatalf("refine chain state: %+v", ref2)
	}

	// Track: follow the selected IDs across every timestep. At the brush
	// step every selected particle is present by construction.
	var tr SessionTrackBody
	if code, raw, _ := sessPost(t, ts, "/v1/session/"+sid+"/track", &tr); code != 200 {
		t.Fatalf("track: %d %s", code, raw)
	}
	if !tr.Stored || tr.Partial || tr.IDVar != "id" {
		t.Fatalf("track: %+v", tr)
	}
	if len(tr.Steps) != 4 || len(tr.Counts) != 4 {
		t.Fatalf("track steps: %+v", tr)
	}
	if tr.Counts[step] != ref2.Matches {
		t.Fatalf("track count at brush step %d != selection %d", tr.Counts[step], ref2.Matches)
	}
	if tr.IDs != int(ref2.Matches) {
		t.Fatalf("materialized %d IDs for %d selected rows", tr.IDs, ref2.Matches)
	}
	if !strings.Contains(tr.Expr, "id in (") {
		t.Fatalf("track predicate not an id membership test: %q", tr.Expr)
	}

	// Views (JSON): conditional histogram panels under the selection.
	var views SessionViewsBody
	if code, raw := get(t, ts, "/v1/session/"+sid+"/views?vars=px,y", &views); code != 200 {
		t.Fatalf("views: %d %s", code, raw)
	}
	if len(views.Panels) != 2 || !views.Temporal {
		t.Fatalf("views: %+v", views)
	}
	for _, p := range views.Panels {
		if p.Total == 0 || len(p.Counts) != 32 {
			t.Fatalf("panel %s: total %d bins %d", p.Var, p.Total, len(p.Counts))
		}
	}

	// Views (PNG): the temporal parallel-coordinates rendering decodes.
	resp, err := http.Get(ts.URL + "/v1/session/" + sid + "/views?vars=px,y,pz&format=png")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || resp.Header.Get("Content-Type") != "image/png" {
		t.Fatalf("views png: %d %s", resp.StatusCode, resp.Header.Get("Content-Type"))
	}
	img, err := png.Decode(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("png decode: %v", err)
	}
	if b := img.Bounds(); b.Dx() != 900 || b.Dy() != 500 {
		t.Fatalf("png size %v", b)
	}

	// Observability: /v1/stats carries the session block, /metrics the
	// session_* series, and the reuse counter moved.
	var stats StatsBody
	if code, raw := get(t, ts, "/v1/stats", &stats); code != 200 {
		t.Fatalf("stats: %d %s", code, raw)
	}
	if stats.Sessions == nil || stats.Sessions.Active != 1 || stats.Sessions.Bytes <= 0 {
		t.Fatalf("stats sessions: %+v", stats.Sessions)
	}
	if stats.Sessions.RefineReuse != 2 {
		t.Fatalf("refine reuse counter %d, want 2", stats.Sessions.RefineReuse)
	}
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mraw, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, series := range []string{"session_active", "session_bytes", "session_refine_reuse_total"} {
		if !strings.Contains(string(mraw), series) {
			t.Fatalf("/metrics missing %s", series)
		}
	}

	// Inspect and delete.
	var info struct {
		ID         string `json:"id"`
		Selections []struct {
			Name      string `json:"name"`
			TrackedID int    `json:"tracked_ids"`
		} `json:"selections"`
	}
	if code, raw := get(t, ts, "/v1/session/"+sid, &info); code != 200 {
		t.Fatalf("get session: %d %s", code, raw)
	}
	if len(info.Selections) != 1 || info.Selections[0].Name != "sel" || info.Selections[0].TrackedID == 0 {
		t.Fatalf("session info: %+v", info)
	}
	dreq, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/session/"+sid, nil)
	dresp, err := http.DefaultClient.Do(dreq)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != 200 {
		t.Fatalf("delete: %d", dresp.StatusCode)
	}
	dresp2, _ := http.DefaultClient.Do(dreq)
	dresp2.Body.Close()
	if dresp2.StatusCode != 404 {
		t.Fatalf("double delete: %d", dresp2.StatusCode)
	}
}

// TestSessionRefineEquivalenceBothBackends drives the same refinement
// chain through the bitmap-reuse path on each backend and checks each
// intermediate state against the folded expression evaluated from
// scratch by /v1/query.
func TestSessionRefineEquivalenceBothBackends(t *testing.T) {
	_, ts := testServer(t, Config{})
	for _, backend := range []string{"fastbit", "scan"} {
		sid := "equiv-" + backend
		const step = 2
		chain := []struct {
			q, mode string
		}{
			{"px > 0", ""},
			{"y < 0.7", "and"},
			{"pz > 0.2", "or"},
			{"x > 0.9", "andnot"},
		}
		folded := ""
		for _, c := range chain {
			extra := "backend=" + backend
			if c.mode != "" {
				extra += "&refine=" + c.mode
			}
			var out SessionSelectBody
			if code, raw, _ := sessPost(t, ts, selectPath(sid, step, c.q, extra), &out); code != 200 {
				t.Fatalf("%s %q: %d %s", backend, c.q, code, raw)
			}
			switch c.mode {
			case "":
				folded = "(" + c.q + ")"
			case "and":
				folded = folded + " && (" + c.q + ")"
			case "or":
				folded = "(" + folded + ") || (" + c.q + ")"
			case "andnot":
				folded = "(" + folded + ") && !(" + c.q + ")"
			}
			if want := queryCount(t, ts, step, folded); out.Matches != want {
				t.Fatalf("%s after %q %s: matches %d, oracle %d (folded %s)",
					backend, c.q, c.mode, out.Matches, want, folded)
			}
			if c.mode != "" && !out.Reused {
				t.Fatalf("%s refine %q did not reuse the stored bitmap", backend, c.q)
			}
		}
	}
}

func TestSessionValidation(t *testing.T) {
	_, ts := testServer(t, Config{})
	cases := []struct {
		name string
		path string
		want int
	}{
		{"bad refine mode", selectPath("s1", 0, "px > 0", "refine=xor"), 400},
		{"refine without prior", selectPath("s1", 0, "px > 0", "refine=and"), 404},
		{"bad session id", selectPath("no.pe", 0, "px > 0", ""), 400},
		{"bad selection name", selectPath("s1", 0, "px > 0", "name=a%20b"), 400},
		{"missing q", "/v1/session/s1/select?step=0", 400},
		{"track unknown session", "/v1/session/nope/track", 404},
	}
	for _, tc := range cases {
		if code, raw, _ := sessPost(t, ts, tc.path, nil); code != tc.want {
			t.Fatalf("%s: got %d want %d (%s)", tc.name, code, tc.want, raw)
		}
	}
	if code, raw := get(t, ts, "/v1/session/nope/views", nil); code != 404 {
		t.Fatalf("views unknown session: %d %s", code, raw)
	}
}

// TestSessionPartialNeverStored is the store-or-reject rule end to end:
// with a shard dead, a select still answers (marked partial via body and
// X-Partial) but the partial selection is never stored, and a track over
// a previously stored selection reports partial without persisting.
func TestSessionPartialNeverStored(t *testing.T) {
	fleet := startShardFleet(t, 3, nil)
	_, ts := frontendServer(t, fleet)
	sid := "partial-e2e"
	const step = 1

	// Healthy fleet: brush and store.
	var sel SessionSelectBody
	if code, raw, _ := sessPost(t, ts, selectPath(sid, step, "px > 0.05", ""), &sel); code != 200 {
		t.Fatalf("select: %d %s", code, raw)
	}
	if !sel.Stored || sel.Partial {
		t.Fatalf("healthy select: %+v", sel)
	}

	// Kill one shard; a fresh selection must answer partial and refuse
	// storage.
	fleet.kill[1]()
	var psel SessionSelectBody
	code, raw, hdr := sessPost(t, ts, selectPath(sid, step, "y < 0.5", "name=other"), &psel)
	if code != 200 {
		t.Fatalf("partial select: %d %s", code, raw)
	}
	if !psel.Partial || psel.Stored || hdr.Get("X-Partial") != "1" {
		t.Fatalf("partial select stored or unmarked: %+v (X-Partial %q)", psel, hdr.Get("X-Partial"))
	}
	if code, raw, _ := sessPost(t, ts, selectPath(sid, step, "px > 0", "name=other&refine=and"), nil); code != 404 {
		t.Fatalf("refine against rejected partial selection: %d %s (want 404)", code, raw)
	}

	// Tracking the stored selection now crosses the dead shard: partial,
	// reported but not stored.
	var tr SessionTrackBody
	code, raw, hdr = sessPost(t, ts, "/v1/session/"+sid+"/track", &tr)
	if code != 200 {
		t.Fatalf("partial track: %d %s", code, raw)
	}
	if !tr.Partial || tr.Stored || hdr.Get("X-Partial") != "1" || len(tr.FailedSteps) == 0 {
		t.Fatalf("partial track stored or unmarked: %+v", tr)
	}
	var info struct {
		Selections []struct {
			Name      string `json:"name"`
			TrackedID int    `json:"tracked_ids"`
		} `json:"selections"`
	}
	if code, raw := get(t, ts, "/v1/session/"+sid, &info); code != 200 {
		t.Fatalf("get session: %d %s", code, raw)
	}
	for _, s := range info.Selections {
		if s.Name == "other" {
			t.Fatalf("partial selection %q was stored", s.Name)
		}
		if s.Name == "sel" && s.TrackedID != 0 {
			t.Fatalf("partial track persisted %d IDs", s.TrackedID)
		}
	}

	// Stats reflect the rejections.
	var stats StatsBody
	if code, raw := get(t, ts, "/v1/stats", &stats); code != 200 {
		t.Fatalf("stats: %d %s", code, raw)
	}
	if stats.Sessions == nil || stats.Sessions.PartialRejects < 2 {
		t.Fatalf("partial rejects not counted: %+v", stats.Sessions)
	}
}
