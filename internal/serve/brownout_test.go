package serve

import (
	"context"
	"net/http"
	"net/http/httptest"
	"net/url"
	"testing"
)

// forceBrownout pins the gate's brownout flag, as if pressure had been
// sustained across adjustment windows.
func forceBrownout(s *Server, on bool) {
	s.gate.mu.Lock()
	s.gate.forceBrownout = on
	s.gate.mu.Unlock()
}

// occupySlot takes the gate's only execution slot so every subsequent
// admit sheds; it returns the release.
func occupySlot(t *testing.T, s *Server) func() {
	t.Helper()
	if err := s.gate.Acquire(context.Background(), ClassDrill); err != nil {
		t.Fatal(err)
	}
	return func() { s.gate.Release(0) }
}

// degradedTotal reads serve_degraded_total{mode=...} from the registry.
func degradedTotal(s *Server, mode string) float64 {
	for _, m := range s.reg.Snapshot() {
		if m.Name == "serve_degraded_total" && m.Labels["mode"] == mode {
			return m.Value
		}
	}
	return 0
}

// overloadedServer builds a server with one execution slot, no queue and
// brownout enabled — one held slot makes every histogram shed-eligible.
func overloadedServer(t *testing.T) (*Server, *httptest.Server) {
	return testServer(t, Config{Concurrency: 1, QueueDepth: -1, Brownout: true})
}

// TestBrownoutCoarseCache1D: with a coarser resolution of the same
// request already cached, a shed hist1d is answered from it — a degraded
// 200 with the X-Degraded header — instead of a 429.
func TestBrownoutCoarseCache1D(t *testing.T) {
	s, ts := overloadedServer(t)
	q := url.QueryEscape("px > 0")

	// Warm the cache at 8 bins while the server is healthy.
	var coarse Hist1DBody
	if code, raw := get(t, ts, "/v1/hist1d?var=px&bins=8&q="+q, &coarse); code != 200 {
		t.Fatalf("warmup: %d %s", code, raw)
	}

	forceBrownout(s, true)
	release := occupySlot(t, s)
	defer release()

	resp, err := http.Get(ts.URL + "/v1/hist1d?var=px&bins=16&q=" + q)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("degraded request: %d, want 200", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Degraded"); got != degradedCoarse {
		t.Fatalf("X-Degraded = %q, want %q", got, degradedCoarse)
	}
	var body Hist1DBody
	if err := jsonDecode(resp, &body); err != nil {
		t.Fatal(err)
	}
	if !body.Degraded || body.DegradedMode != degradedCoarse {
		t.Fatalf("body degraded markers: %+v", body)
	}
	// The answer is the cached 8-bin histogram, not a fresh 16-bin one.
	if len(body.Counts) != len(coarse.Counts) || body.Total != coarse.Total {
		t.Fatalf("degraded answer differs from coarse cache: %d bins total %d, want %d bins total %d",
			len(body.Counts), body.Total, len(coarse.Counts), coarse.Total)
	}
	if degradedTotal(s, degradedCoarse) < 1 {
		t.Error("serve_degraded_total{mode=coarse-cache} not incremented")
	}
}

// TestBrownoutCoarseCache2D is the 2D rung-1 analogue: both axes halved
// in lockstep.
func TestBrownoutCoarseCache2D(t *testing.T) {
	s, ts := overloadedServer(t)
	var coarse Hist2DBody
	if code, raw := get(t, ts, "/v1/hist2d?x=x&y=px&xbins=8&ybins=8", &coarse); code != 200 {
		t.Fatalf("warmup: %d %s", code, raw)
	}
	forceBrownout(s, true)
	release := occupySlot(t, s)
	defer release()

	var body Hist2DBody
	code, raw := get(t, ts, "/v1/hist2d?x=x&y=px&xbins=16&ybins=16", &body)
	if code != 200 {
		t.Fatalf("degraded request: %d %s", code, raw)
	}
	if !body.Degraded || body.DegradedMode != degradedCoarse {
		t.Fatalf("body degraded markers: %+v", body)
	}
	if body.Total != coarse.Total || len(body.Counts) != len(coarse.Counts) {
		t.Fatalf("degraded 2D answer differs from coarse cache: %+v", body)
	}
}

// TestBrownoutIndexOnly1D: with nothing cached, the rescue recomputes the
// histogram purely in index space — boundary bins admitted wholesale — so
// the degraded total is an upper bound on the exact match count.
func TestBrownoutIndexOnly1D(t *testing.T) {
	s, ts := overloadedServer(t)
	q := url.QueryEscape("px > 0")

	// Learn the exact match count via /v1/query (cached under a different
	// operation key, so it cannot satisfy the histogram peek).
	var qb QueryBody
	if code, raw := get(t, ts, "/v1/query?q="+q, &qb); code != 200 {
		t.Fatalf("exact count: %d %s", code, raw)
	}
	if qb.Backend != "fastbit" {
		t.Skipf("test dataset not index-backed (backend %s)", qb.Backend)
	}

	forceBrownout(s, true)
	release := occupySlot(t, s)
	defer release()

	var body Hist1DBody
	code, raw := get(t, ts, "/v1/hist1d?var=px&bins=16&q="+q, &body)
	if code != 200 {
		t.Fatalf("degraded request: %d %s", code, raw)
	}
	if !body.Degraded || body.DegradedMode != degradedIndexOnly {
		t.Fatalf("body degraded markers: %+v", body)
	}
	if body.Total < qb.Matches {
		t.Fatalf("index-only total %d below exact match count %d — not a superset",
			body.Total, qb.Matches)
	}
	if degradedTotal(s, degradedIndexOnly) < 1 {
		t.Error("serve_degraded_total{mode=index-only} not incremented")
	}

	// The rescue result is cached under its own key: a second shed request
	// answers from cache without another backend call.
	before := s.BackendCalls()
	code, raw = get(t, ts, "/v1/hist1d?var=px&bins=16&q="+q, &body)
	if code != 200 || !body.Degraded {
		t.Fatalf("second degraded request: %d %s", code, raw)
	}
	if got := s.BackendCalls(); got != before {
		t.Fatalf("second rescue recomputed: backend calls %d -> %d", before, got)
	}
}

// TestBrownoutIneligible enumerates the conditions under which a shed
// histogram must NOT be rescued and takes the 429 instead.
func TestBrownoutIneligible(t *testing.T) {
	q := url.QueryEscape("px > 0")
	cases := []struct {
		name  string
		cfg   Config
		armed bool
		path  string
	}{
		{
			name: "brownout disabled",
			cfg:  Config{Concurrency: 1, QueueDepth: -1},
			// Even with the gate reporting pressure, cfg gates the feature.
			armed: true,
			path:  "/v1/hist1d?var=px&bins=16&q=" + q,
		},
		{
			name:  "not armed",
			cfg:   Config{Concurrency: 1, QueueDepth: -1, Brownout: true},
			armed: false,
			path:  "/v1/hist1d?var=px&bins=16&q=" + q,
		},
		{
			name:  "client insists on exact",
			cfg:   Config{Concurrency: 1, QueueDepth: -1, Brownout: true},
			armed: true,
			path:  "/v1/hist1d?var=px&bins=16&exact=1&q=" + q,
		},
		{
			name:  "adaptive binning",
			cfg:   Config{Concurrency: 1, QueueDepth: -1, Brownout: true},
			armed: true,
			path:  "/v1/hist1d?var=px&bins=16&binning=adaptive&q=" + q,
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			s, ts := testServer(t, tc.cfg)
			// Warm a coarser entry so rung 1 would hit if eligibility were
			// ignored.
			if code, raw := get(t, ts, "/v1/hist1d?var=px&bins=8&q="+q, nil); code != 200 {
				t.Fatalf("warmup: %d %s", code, raw)
			}
			forceBrownout(s, tc.armed)
			release := occupySlot(t, s)
			defer release()
			resp, err := http.Get(ts.URL + tc.path)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusTooManyRequests {
				t.Fatalf("status %d, want 429", resp.StatusCode)
			}
			if resp.Header.Get("X-Degraded") != "" {
				t.Error("ineligible shed carries X-Degraded")
			}
			if resp.Header.Get("Retry-After") == "" {
				t.Error("429 missing Retry-After")
			}
		})
	}
}

// TestProbeBypassServesCachedUnderOverload: a request whose exact result
// is cached skips admission entirely — the probe class — and answers 200
// even with the gate fully saturated and brownout disarmed.
func TestProbeBypassServesCachedUnderOverload(t *testing.T) {
	s, ts := testServer(t, Config{Concurrency: 1, QueueDepth: -1})
	q := url.QueryEscape("px > 0")
	if code, raw := get(t, ts, "/v1/hist1d?var=px&bins=16&q="+q, nil); code != 200 {
		t.Fatalf("warmup: %d %s", code, raw)
	}
	release := occupySlot(t, s)
	defer release()

	var body Hist1DBody
	code, raw := get(t, ts, "/v1/hist1d?var=px&bins=16&q="+q, &body)
	if code != 200 {
		t.Fatalf("cached probe under overload: %d %s", code, raw)
	}
	if body.Outcome != "hit" || body.Degraded {
		t.Fatalf("probe bypass body: %+v", body)
	}
	// An uncached variant still sheds: the bypass is per-key, not a hole.
	resp, err := http.Get(ts.URL + "/v1/hist1d?var=px&bins=32&q=" + q)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("uncached under overload: %d, want 429", resp.StatusCode)
	}
}
