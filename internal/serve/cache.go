package serve

import (
	"container/list"
	"context"
	"sync"

	"repro/internal/obs"
	"repro/internal/plan"
)

// Outcome describes how a cache lookup was satisfied.
type Outcome int

// Lookup outcomes.
const (
	// Computed: this call ran the compute function.
	Computed Outcome = iota
	// Hit: the result was already stored.
	Hit
	// Coalesced: an identical call was in flight; this call waited for
	// its result instead of recomputing (singleflight).
	Coalesced
)

func (o Outcome) String() string {
	switch o {
	case Computed:
		return "computed"
	case Hit:
		return "hit"
	case Coalesced:
		return "coalesced"
	default:
		return "unknown"
	}
}

// CacheStats is a snapshot of cache counters.
type CacheStats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Coalesced uint64 `json:"coalesced"`
	Abandoned uint64 `json:"abandoned"` // waiters that left before the flight finished
	Inflight  int    `json:"inflight"`
	Entries   int    `json:"entries"`
}

// Cache is a size-bounded LRU result cache with request coalescing: when
// several goroutines ask for the same key concurrently, exactly one runs
// the compute function and the rest wait for its result. Results are
// cached only on success; errors propagate to every waiter and leave no
// entry behind.
//
// Flights are detached from their initiating request: fn runs in its own
// goroutine under a flight-owned context, so one waiter's cancellation
// never kills a result other coalesced waiters still want. The flight
// context is canceled only when the last interested waiter has abandoned
// it — that is what lets a disconnected client release backend capacity
// without poisoning anyone else.
type Cache struct {
	mu         sync.Mutex
	maxEntries int
	ll         *list.List // front = most recently used
	items      map[string]*list.Element
	flights    map[string]*flight

	hits, misses, evictions, coalesced, abandoned uint64
}

type cacheEntry struct {
	key string
	val any
}

// flight is one in-progress computation. waiters counts the requests that
// still want the result; finished flips once fn has returned (after which
// cancel must not fire — the result is already being stored).
type flight struct {
	done     chan struct{}
	cancel   context.CancelFunc
	waiters  int
	finished bool
	val      any
	err      error
}

// NewCache creates a cache bounded to maxEntries results. maxEntries <= 0
// disables storage (coalescing still works).
func NewCache(maxEntries int) *Cache {
	return &Cache{
		maxEntries: maxEntries,
		ll:         list.New(),
		items:      map[string]*list.Element{},
		flights:    map[string]*flight{},
	}
}

// Do returns the cached result for key, or computes it with fn. Identical
// concurrent calls are collapsed into one fn invocation. fn receives a
// context owned by the flight, not by any single caller: it is canceled
// only when every coalesced waiter has gone away. Do itself returns as
// soon as ctx is done, with ctx's error.
func (c *Cache) Do(ctx context.Context, key string, fn func(ctx context.Context) (any, error)) (any, Outcome, error) {
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		val := el.Value.(*cacheEntry).val
		c.mu.Unlock()
		return val, Hit, nil
	}
	if f, ok := c.flights[key]; ok {
		c.coalesced++
		f.waiters++
		c.mu.Unlock()
		return c.wait(ctx, f, Coalesced)
	}
	c.misses++
	// The flight context is detached from the initiating request (see the
	// type comment) but carries its span, so backend work traced under the
	// flight still lands in the first requester's trace.
	fctx, cancel := context.WithCancel(obs.CarrySpan(context.Background(), ctx))
	f := &flight{done: make(chan struct{}), cancel: cancel, waiters: 1}
	c.flights[key] = f
	c.mu.Unlock()

	go c.run(key, f, fctx, fn)
	return c.wait(ctx, f, Computed)
}

// Peek returns the cached value for key without computing or coalescing:
// a pure lookup that costs one mutex hold. Hits count and refresh recency
// like Do hits. The admission layer uses it to let cached-key probes
// bypass the gate, and the brownout ladder to find a coarser resolution
// already resident.
func (c *Cache) Peek(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	c.hits++
	return el.Value.(*cacheEntry).val, true
}

// run executes fn under the flight context and publishes its result.
func (c *Cache) run(key string, f *flight, fctx context.Context, fn func(ctx context.Context) (any, error)) {
	val, err := fn(fctx)

	c.mu.Lock()
	f.finished = true
	f.val, f.err = val, err
	delete(c.flights, key)
	if err == nil && c.maxEntries > 0 && cacheable(val) {
		c.items[key] = c.ll.PushFront(&cacheEntry{key: key, val: val})
		for c.ll.Len() > c.maxEntries {
			oldest := c.ll.Back()
			c.ll.Remove(oldest)
			delete(c.items, oldest.Value.(*cacheEntry).key)
			c.evictions++
		}
	}
	c.mu.Unlock()
	close(f.done)
	f.cancel() // release the flight context's resources
}

// cacheable reports whether a computed value may be stored. Partial
// scatter answers — merged without every shard — are served to their
// waiters but never cached: the next identical request should try the full
// fleet again rather than repeat a degraded result.
func cacheable(val any) bool {
	res, ok := val.(*plan.Result)
	return !ok || !res.Partial
}

// wait blocks until the flight finishes or ctx is done. A caller that
// leaves early decrements the waiter count; the last one to leave cancels
// the flight so the backend stops working for nobody.
func (c *Cache) wait(ctx context.Context, f *flight, outcome Outcome) (any, Outcome, error) {
	select {
	case <-f.done:
		return f.val, outcome, f.err
	case <-ctx.Done():
		c.mu.Lock()
		c.abandoned++
		f.waiters--
		if f.waiters == 0 && !f.finished {
			f.cancel()
		}
		c.mu.Unlock()
		return nil, outcome, ctx.Err()
	}
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Coalesced: c.coalesced,
		Abandoned: c.abandoned,
		Inflight:  len(c.flights),
		Entries:   c.ll.Len(),
	}
}
