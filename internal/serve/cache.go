package serve

import (
	"container/list"
	"sync"
)

// Outcome describes how a cache lookup was satisfied.
type Outcome int

// Lookup outcomes.
const (
	// Computed: this call ran the compute function.
	Computed Outcome = iota
	// Hit: the result was already stored.
	Hit
	// Coalesced: an identical call was in flight; this call waited for
	// its result instead of recomputing (singleflight).
	Coalesced
)

func (o Outcome) String() string {
	switch o {
	case Computed:
		return "computed"
	case Hit:
		return "hit"
	case Coalesced:
		return "coalesced"
	default:
		return "unknown"
	}
}

// CacheStats is a snapshot of cache counters.
type CacheStats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Coalesced uint64 `json:"coalesced"`
	Inflight  int    `json:"inflight"`
	Entries   int    `json:"entries"`
}

// Cache is a size-bounded LRU result cache with request coalescing: when
// several goroutines ask for the same key concurrently, exactly one runs
// the compute function and the rest wait for its result. Results are
// cached only on success; errors propagate to every waiter and leave no
// entry behind.
type Cache struct {
	mu         sync.Mutex
	maxEntries int
	ll         *list.List // front = most recently used
	items      map[string]*list.Element
	flights    map[string]*flight

	hits, misses, evictions, coalesced uint64
}

type cacheEntry struct {
	key string
	val any
}

type flight struct {
	done chan struct{}
	val  any
	err  error
}

// NewCache creates a cache bounded to maxEntries results. maxEntries <= 0
// disables storage (coalescing still works).
func NewCache(maxEntries int) *Cache {
	return &Cache{
		maxEntries: maxEntries,
		ll:         list.New(),
		items:      map[string]*list.Element{},
		flights:    map[string]*flight{},
	}
}

// Do returns the cached result for key, or computes it with fn. Identical
// concurrent calls are collapsed into one fn invocation.
func (c *Cache) Do(key string, fn func() (any, error)) (any, Outcome, error) {
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		val := el.Value.(*cacheEntry).val
		c.mu.Unlock()
		return val, Hit, nil
	}
	if f, ok := c.flights[key]; ok {
		c.coalesced++
		c.mu.Unlock()
		<-f.done
		return f.val, Coalesced, f.err
	}
	c.misses++
	f := &flight{done: make(chan struct{})}
	c.flights[key] = f
	c.mu.Unlock()

	f.val, f.err = fn()

	c.mu.Lock()
	delete(c.flights, key)
	if f.err == nil && c.maxEntries > 0 {
		c.items[key] = c.ll.PushFront(&cacheEntry{key: key, val: f.val})
		for c.ll.Len() > c.maxEntries {
			oldest := c.ll.Back()
			c.ll.Remove(oldest)
			delete(c.items, oldest.Value.(*cacheEntry).key)
			c.evictions++
		}
	}
	c.mu.Unlock()
	close(f.done)
	return f.val, Computed, f.err
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Coalesced: c.coalesced,
		Inflight:  len(c.flights),
		Entries:   c.ll.Len(),
	}
}
