// Package serve is the interactive query service: an HTTP/JSON front-end
// over fastquery sources that exposes the paper's operations — compound
// range queries and conditional histograms at arbitrary resolution — the
// way the visualization client consumes them during drill-down.
//
// Three layers make it production-shaped rather than a thin wrapper:
//
//   - a canonical plan layer (query.Canonical) that normalizes equivalent
//     queries to one deterministic cache key,
//   - a result cache with request coalescing (Cache), so repeated and
//     concurrent identical drill-downs cost one backend evaluation,
//   - adaptive admission control (Gate), a self-tuning concurrency
//     limiter with priority-class shedding: under a burst, ingest and
//     cold sweeps shed first (429/503 with a measured Retry-After),
//     cached-key probes bypass the gate entirely, and under sustained
//     pressure eligible histograms are answered from a degraded path
//     (brownout) instead of being rejected.
package serve

import (
	"repro/internal/fastquery"
	"repro/internal/obs"
	"repro/internal/session"
	"repro/internal/shard"
)

// ErrorBody is the JSON body of every non-2xx response.
type ErrorBody struct {
	Error string `json:"error"`
}

// DatasetInfo describes one served dataset.
type DatasetInfo struct {
	Name      string   `json:"name"`
	Steps     int      `json:"steps"`
	Variables []string `json:"variables"`
}

// StepInfo describes one timestep of a dataset.
type StepInfo struct {
	Step    int    `json:"step"`
	Indexed bool   `json:"indexed"`
	Rows    uint64 `json:"rows,omitempty"` // populated with ?detail=1
	// IndexState is "indexed", "pending" (live step awaiting its
	// background build), "failed" (permanent build failure, scan-only), or
	// "none" (static dataset without a sidecar).
	IndexState string `json:"index_state,omitempty"`
}

// StepsBody is the /v1/steps response.
type StepsBody struct {
	Dataset string `json:"dataset"`
	Steps   int    `json:"steps"`
	// Live marks a dataset accepting POST /v1/ingest; Generation is its
	// catalog generation, bumped on every commit and index publish.
	Live       bool       `json:"live,omitempty"`
	Generation uint64     `json:"generation,omitempty"`
	Detail     []StepInfo `json:"detail,omitempty"`
}

// VarInfo is one variable's metadata at a timestep. Min/Max come from the
// index metadata when available (free) or a column scan otherwise.
type VarInfo struct {
	Name string  `json:"name"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
}

// VarsBody is the /v1/vars response.
type VarsBody struct {
	Dataset string    `json:"dataset"`
	Step    int       `json:"step"`
	Vars    []VarInfo `json:"vars"`
}

// QueryBody is the /v1/query response: the selection summary for a
// compound range query.
type QueryBody struct {
	Dataset     string  `json:"dataset"`
	Step        int     `json:"step"`
	Query       string  `json:"query"`
	Plan        string  `json:"plan"` // canonical form, the cache key
	Backend     string  `json:"backend"`
	Rows        uint64  `json:"rows"`
	Matches     uint64  `json:"matches"`
	Selectivity float64 `json:"selectivity"`
	Outcome     string  `json:"outcome"` // computed | hit | coalesced
	// Partial marks a degraded scatter-gather answer: one or more shards
	// were unreachable and the response merges only the survivors listed
	// absent from FailedShards. The X-Partial response header mirrors it.
	Partial      bool    `json:"partial,omitempty"`
	FailedShards []int   `json:"failed_shards,omitempty"`
	ElapsedMS    float64 `json:"elapsed_ms"`
	// Trace is the request's span tree, included when ?debug=trace is set.
	Trace *obs.SpanData `json:"trace,omitempty"`
	// Explain is the execution profile, included when ?debug=explain is set.
	Explain *ExplainBody `json:"explain,omitempty"`
}

// Hist1DBody is the /v1/hist1d response.
type Hist1DBody struct {
	Dataset string    `json:"dataset"`
	Step    int       `json:"step"`
	Plan    string    `json:"plan,omitempty"`
	Backend string    `json:"backend"`
	Var     string    `json:"var"`
	Binning string    `json:"binning"`
	Edges   []float64 `json:"edges"`
	Counts  []uint64  `json:"counts"`
	Total   uint64    `json:"total"`
	Outcome string    `json:"outcome"`
	// Degraded marks a brownout answer: the server was overloaded and
	// responded from DegradedMode ("coarse-cache": a cached coarser
	// resolution of the same request; "index-only": an approximate
	// histogram computed from bitmaps alone, counts an upper bound). The
	// X-Degraded response header carries the same mode.
	Degraded     bool   `json:"degraded,omitempty"`
	DegradedMode string `json:"degraded_mode,omitempty"`
	// Partial marks a scatter-gather answer merged without the shards in
	// FailedShards; see QueryBody.
	Partial      bool          `json:"partial,omitempty"`
	FailedShards []int         `json:"failed_shards,omitempty"`
	ElapsedMS    float64       `json:"elapsed_ms"`
	Trace        *obs.SpanData `json:"trace,omitempty"`   // set with ?debug=trace
	Explain      *ExplainBody  `json:"explain,omitempty"` // set with ?debug=explain
}

// Hist2DBody is the /v1/hist2d response. Counts are row-major:
// Counts[iy*len(XEdges-1) + ix].
type Hist2DBody struct {
	Dataset string    `json:"dataset"`
	Step    int       `json:"step"`
	Plan    string    `json:"plan,omitempty"`
	Backend string    `json:"backend"`
	XVar    string    `json:"xvar"`
	YVar    string    `json:"yvar"`
	Binning string    `json:"binning"`
	XEdges  []float64 `json:"xedges"`
	YEdges  []float64 `json:"yedges"`
	Counts  []uint64  `json:"counts"`
	Total   uint64    `json:"total"`
	Outcome string    `json:"outcome"`
	// Degraded and DegradedMode mark a brownout answer; see Hist1DBody.
	Degraded     bool   `json:"degraded,omitempty"`
	DegradedMode string `json:"degraded_mode,omitempty"`
	// Partial marks a scatter-gather answer merged without the shards in
	// FailedShards; see QueryBody.
	Partial      bool          `json:"partial,omitempty"`
	FailedShards []int         `json:"failed_shards,omitempty"`
	ElapsedMS    float64       `json:"elapsed_ms"`
	Trace        *obs.SpanData `json:"trace,omitempty"`   // set with ?debug=trace
	Explain      *ExplainBody  `json:"explain,omitempty"` // set with ?debug=explain
}

// Sweep2DBody is the /v1/sweep2d response: one conditional 2D histogram
// per requested timestep, summarized by per-step match totals (the full
// per-step grids would dwarf any client's appetite; drill into a single
// step with /v1/hist2d).
type Sweep2DBody struct {
	Dataset string `json:"dataset"`
	Steps   []int  `json:"steps"`
	Plan    string `json:"plan,omitempty"`
	Backend string `json:"backend"`
	// Mode is "cluster" when the sweep was strided across RPC workers,
	// "local" when it ran serially in-process.
	Mode      string        `json:"mode"`
	XVar      string        `json:"xvar"`
	YVar      string        `json:"yvar"`
	Totals    []uint64      `json:"totals"` // per step, aligned with Steps
	Total     uint64        `json:"total"`
	Failed    []int         `json:"failed,omitempty"` // steps with no result (partial sweeps)
	ElapsedMS float64       `json:"elapsed_ms"`
	Trace     *obs.SpanData `json:"trace,omitempty"`   // set with ?debug=trace
	Explain   *ExplainBody  `json:"explain,omitempty"` // set with ?debug=explain
}

// BuildInfo is the binary/runtime identity block of /v1/stats.
type BuildInfo struct {
	Version       string  `json:"version,omitempty"`  // module version (devel in tests)
	Path          string  `json:"path,omitempty"`     // main module path
	Revision      string  `json:"revision,omitempty"` // vcs.revision when stamped
	GoVersion     string  `json:"go_version"`
	GOMAXPROCS    int     `json:"gomaxprocs"`
	Goroutines    int     `json:"goroutines"`
	UptimeSeconds float64 `json:"uptime_seconds"`
}

// StatsBody is the /v1/stats response: cache, admission and backend
// counters for operations and tests. The legacy top-level counters are
// read from the same registry instruments that /metrics exports; Metrics
// is the full registry snapshot (server + process-wide series) in JSON.
type StatsBody struct {
	Cache        CacheStats `json:"cache"`
	Admission    GateStats  `json:"admission"`
	BackendCalls uint64     `json:"backend_calls"`
	// Canceled counts requests abandoned by their client (answered 499);
	// ExecTimeouts counts requests that exceeded Config.ExecTimeout (504);
	// Panics counts handler panics converted to 500.
	Canceled     uint64 `json:"canceled"`
	ExecTimeouts uint64 `json:"exec_timeouts"`
	Panics       uint64 `json:"panics"`
	// IndexFailures lists, per dataset, timesteps whose sidecar index was
	// rejected (truncated or corrupt) and now serve scan-backend only.
	IndexFailures map[string][]fastquery.IndexFailure `json:"index_failures,omitempty"`
	// Ingest reports, per live dataset, the ingestion pipeline's state:
	// catalog generation, committed vs indexed step counts and their lag,
	// and the background builder's counters.
	Ingest map[string]IngestStats `json:"ingest,omitempty"`
	// Sharding is present on a scatter-gather frontend: the fleet-wide
	// aggregate plus each shard's executor snapshot and pool counters.
	Sharding *ShardingStats `json:"sharding,omitempty"`
	// Sessions is the analysis-session store's state: live sessions,
	// stored selection bytes, refinement reuse and eviction counters.
	Sessions *session.Stats `json:"sessions,omitempty"`
	Build    BuildInfo      `json:"build"`
	Metrics  []obs.Metric   `json:"metrics"`
}

// ShardingStats is the frontend's fleet view in /v1/stats.
type ShardingStats struct {
	Shards    int    `json:"shards"`
	Scatters  uint64 `json:"scatters"`  // requests executed via scatter-gather
	Fragments uint64 `json:"fragments"` // plan fragments dispatched
	Partials  uint64 `json:"partials"`  // responses merged without every shard
	// FleetSteps is the total step count reported by shard 0 (every shard
	// serves the same shared dataset directory, so they agree when
	// healthy); FleetCacheHitRate aggregates the shard-local fragment
	// caches across the fleet.
	FleetSteps        int                 `json:"fleet_steps"`
	FleetCacheHitRate float64             `json:"fleet_cache_hit_rate"`
	ShardStatus       []shard.ShardStatus `json:"shard_status"`
}

// IngestStats is one live dataset's entry in StatsBody.Ingest.
type IngestStats struct {
	Generation uint64 `json:"generation"`
	Committed  int    `json:"committed"`
	Indexed    int    `json:"indexed"`
	// Lag is committed − indexed: how far index building trails ingestion.
	Lag int `json:"lag"`
	// Backlog counts steps queued for or currently at a build worker.
	Backlog       int    `json:"backlog"`
	IndexesBuilt  uint64 `json:"indexes_built"`
	IndexRetries  uint64 `json:"index_retries"`
	IndexFailures uint64 `json:"index_failures"`
}

// IngestColumn is one column of a timestep in an IngestBody; exactly one
// of Float or Int must be set.
type IngestColumn struct {
	Name  string    `json:"name"`
	Float []float64 `json:"float,omitempty"`
	Int   []int64   `json:"int,omitempty"`
}

// IngestBody is the POST /v1/ingest request: one complete timestep. Every
// declared dataset variable must appear exactly once, all columns the same
// length.
type IngestBody struct {
	// Dataset may instead be given as a ?dataset= query parameter.
	Dataset string         `json:"dataset,omitempty"`
	Columns []IngestColumn `json:"columns"`
}

// SessionListBody is the GET /v1/session response.
type SessionListBody struct {
	Sessions []session.Info `json:"sessions"`
}

// SessionSelectBody is the POST /v1/session/{id}/select response: the
// selection summary after evaluating (or incrementally refining) a named
// server-side selection.
type SessionSelectBody struct {
	Session string `json:"session"`
	Name    string `json:"name"`
	Dataset string `json:"dataset"`
	Step    int    `json:"step"`
	Query   string `json:"query"` // delta predicate as received
	Plan    string `json:"plan"`  // delta predicate, canonical
	// Expr is the canonical effective predicate after this operation — the
	// whole refinement chain folded into one parseable expression.
	Expr    string `json:"expr"`
	Backend string `json:"backend"`
	// Refine is the refinement mode applied ("" for a fresh selection);
	// Refines counts the chain's incremental refinements so far; Reused
	// reports whether the stored bitmap was reused (only the delta
	// predicate evaluated) rather than re-evaluating from scratch.
	Refine      string  `json:"refine,omitempty"`
	Refines     int     `json:"refines,omitempty"`
	Reused      bool    `json:"reused,omitempty"`
	Rows        uint64  `json:"rows"`
	Matches     uint64  `json:"matches"`
	Selectivity float64 `json:"selectivity"`
	// Stored is false when the result was refused storage: a partial merge
	// must never become the authoritative selection. SizeBytes is the
	// stored selection's accounted memory.
	SizeBytes int64 `json:"size_bytes,omitempty"`
	Stored    bool  `json:"stored"`
	// Partial marks a scatter-gather answer merged without the shards in
	// FailedShards; see QueryBody. Mirrored by X-Partial.
	Partial      bool          `json:"partial,omitempty"`
	FailedShards []int         `json:"failed_shards,omitempty"`
	ElapsedMS    float64       `json:"elapsed_ms"`
	Trace        *obs.SpanData `json:"trace,omitempty"`   // set with ?debug=trace
	Explain      *ExplainBody  `json:"explain,omitempty"` // set with ?debug=explain
}

// SessionTrackBody is the POST /v1/session/{id}/track response: the
// selection's particle IDs followed across timesteps, one membership
// count per step.
type SessionTrackBody struct {
	Session string `json:"session"`
	Name    string `json:"name"`
	Dataset string `json:"dataset"`
	Step    int    `json:"step"` // the step the selection was brushed on
	Backend string `json:"backend"`
	IDVar   string `json:"id_var"`
	IDs     int    `json:"ids"`  // particles followed
	Expr    string `json:"expr"` // canonical id-membership predicate
	Steps   []int  `json:"steps"`
	// Counts[i] is how many of the selected IDs appear at Steps[i].
	Counts []uint64 `json:"counts"`
	// Stored is false when the track was refused storage because a step in
	// FailedSteps merged without every shard (store-or-reject).
	Stored      bool          `json:"stored"`
	Partial     bool          `json:"partial,omitempty"`
	FailedSteps []int         `json:"failed_steps,omitempty"`
	ElapsedMS   float64       `json:"elapsed_ms"`
	Trace       *obs.SpanData `json:"trace,omitempty"`   // set with ?debug=trace
	Explain     *ExplainBody  `json:"explain,omitempty"` // set with ?debug=explain
}

// ViewPanel is one conditional 1D histogram panel of a views response.
type ViewPanel struct {
	Var    string    `json:"var"`
	Edges  []float64 `json:"edges"`
	Counts []uint64  `json:"counts"`
	Total  uint64    `json:"total"`
}

// SessionViewsBody is the GET /v1/session/{id}/views JSON response (the
// format=png variant streams a parallel-coordinates PNG instead).
type SessionViewsBody struct {
	Session string `json:"session"`
	Name    string `json:"name"`
	Dataset string `json:"dataset"`
	Step    int    `json:"step"`
	Backend string `json:"backend"`
	// Expr is the predicate the view renders under: the selection's
	// effective expression, or the tracked ID-membership predicate once
	// the selection has been tracked (Temporal true, Steps the tracked
	// steps).
	Expr      string        `json:"expr"`
	Vars      []string      `json:"vars"`
	Steps     []int         `json:"steps"`
	Temporal  bool          `json:"temporal"`
	Panels    []ViewPanel   `json:"panels"`
	Partial   bool          `json:"partial,omitempty"`
	ElapsedMS float64       `json:"elapsed_ms"`
	Trace     *obs.SpanData `json:"trace,omitempty"` // set with ?debug=trace
}

// IngestResponse acknowledges a durably committed timestep.
type IngestResponse struct {
	Dataset    string `json:"dataset"`
	Step       int    `json:"step"`
	Rows       uint64 `json:"rows"`
	Bytes      int64  `json:"bytes"`
	Generation uint64 `json:"generation"`
	Steps      int    `json:"steps"` // total committed steps after this one
}
