// End-to-end tests for the sharded serving tier: a frontend scattering
// over real shard RPC workers must answer exactly like the single-process
// server, keep answering (marked partial) when a shard dies, and survive
// concurrent scatter during a mid-flight shard kill under the race
// detector.
package serve

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"net/url"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/cluster/faultnet"
	"repro/internal/shard"
)

// shardFleet is a set of in-process shard workers with per-shard kill
// switches — StartLocalShards only offers group shutdown, and these tests
// need to murder one shard while the rest keep serving.
type shardFleet struct {
	groups [][]string
	kill   []func() // idempotent, per shard
}

func (f *shardFleet) Close() {
	for _, k := range f.kill {
		k()
	}
}

// startShardFleet launches n single-replica shard workers over the shared
// test dataset. wrap, when non-nil, may interpose on shard i's listener
// (fault injection); it returns the listener to serve on plus an extra
// teardown hook folded into that shard's kill switch.
func startShardFleet(t *testing.T, n int, wrap func(i int, l net.Listener) (net.Listener, func())) *shardFleet {
	t.Helper()
	fleet := &shardFleet{}
	for i := 0; i < n; i++ {
		ex := shard.NewExecutor(128)
		if err := ex.AddDataset("lwfa", testDataDir(t)); err != nil {
			ex.Close()
			fleet.Close()
			t.Fatal(err)
		}
		srv, err := shard.NewServer(shard.NewService(ex, nil), testDataDir(t))
		if err != nil {
			ex.Close()
			fleet.Close()
			t.Fatal(err)
		}
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			ex.Close()
			fleet.Close()
			t.Fatal(err)
		}
		addr := l.Addr().String()
		extra := func() {}
		if wrap != nil {
			l, extra = wrap(i, l)
		}
		srv.Serve(l)
		var once sync.Once
		srvRef, exRef, extraRef := srv, ex, extra
		fleet.kill = append(fleet.kill, func() {
			once.Do(func() {
				extraRef()
				srvRef.Close()
				exRef.Close()
			})
		})
		fleet.groups = append(fleet.groups, []string{addr})
	}
	t.Cleanup(fleet.Close)
	return fleet
}

// frontendServer builds a serve.Server scattering over the fleet, plus a
// test HTTP wrapper.
func frontendServer(t *testing.T, fleet *shardFleet) (*Server, *httptest.Server) {
	return frontendServerCfg(t, fleet, Config{})
}

func frontendServerCfg(t *testing.T, fleet *shardFleet, scfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, ts := testServer(t, scfg)
	cfg := cluster.DefaultPoolConfig()
	cfg.CallTimeout = 10 * time.Second
	cfg.MaxRetries = 1
	cfg.BackoffBase = time.Millisecond
	cfg.BackoffMax = 5 * time.Millisecond
	c, err := shard.DialShards(fleet.groups, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	s.SetShardClient(c) // closed by s.Close via testServer cleanup
	return s, ts
}

// getFull fetches a path and returns status, X-Partial header, and body.
func getFull(t *testing.T, ts *httptest.Server, path string) (int, string, []byte) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header.Get("X-Partial"), b
}

func TestFrontendShardIdentity(t *testing.T) {
	fleet := startShardFleet(t, 3, nil)
	front, fts := frontendServer(t, fleet)
	_, bts := testServer(t, Config{}) // single-process baseline

	q := url.QueryEscape("px > 0.001")
	paths := []string{
		"/v1/query?dataset=lwfa&step=1&q=" + q,
		"/v1/hist1d?dataset=lwfa&step=1&var=x&bins=24&q=" + q, // two-phase min/max
		"/v1/hist1d?dataset=lwfa&step=1&var=x&bins=16",        // wholesale routing
		"/v1/hist2d?dataset=lwfa&step=1&x=x&y=px&xbins=12&ybins=12&q=" + q,
		"/v1/query?dataset=lwfa&step=2&q=" + url.QueryEscape("px > 0.002 && x > 0"),
	}
	for _, p := range paths {
		var got, want map[string]any
		if code, _ := get(t, fts, p, &got); code != http.StatusOK {
			t.Fatalf("%s: frontend status %d", p, code)
		}
		if code, _ := get(t, bts, p, &want); code != http.StatusOK {
			t.Fatalf("%s: baseline status %d", p, code)
		}
		for _, volatile := range []string{"elapsed_ms", "outcome", "mode", "trace_id"} {
			delete(got, volatile)
			delete(want, volatile)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s:\nfrontend %v\nbaseline %v", p, got, want)
		}
		if p, ok := got["partial"]; ok && p != false {
			t.Fatalf("complete fleet produced partial response: %v", got)
		}
	}
	if front.scatters.Load() == 0 {
		t.Fatal("frontend never scattered — requests took the local path")
	}
}

func TestFrontendPartialOnShardDeath(t *testing.T) {
	fleet := startShardFleet(t, 3, nil)
	front, fts := frontendServer(t, fleet)

	// Warm path while healthy.
	var warm QueryBody
	if code, body := get(t, fts, "/v1/query?dataset=lwfa&step=0&q="+url.QueryEscape("px > 0.0004"), &warm); code != http.StatusOK {
		t.Fatalf("warm status %d: %s", code, body)
	}
	if warm.Partial {
		t.Fatal("healthy fleet answered partial")
	}

	fleet.kill[1]()

	// A fresh (uncached) scatter must keep serving, marked partial, with
	// the dead shard identified.
	path := "/v1/query?dataset=lwfa&step=0&q=" + url.QueryEscape("px > 0.0005")
	code, hdr, body := getFull(t, fts, path)
	if code != http.StatusOK {
		t.Fatalf("post-kill status %d: %s", code, body)
	}
	var pb QueryBody
	if code, _ := get(t, fts, path, &pb); code != http.StatusOK {
		t.Fatal("second partial fetch failed")
	}
	if !pb.Partial || !reflect.DeepEqual(pb.FailedShards, []int{1}) {
		t.Fatalf("body = %+v, want partial with failed_shards [1]", pb)
	}
	if hdr != "1" {
		t.Fatalf("X-Partial = %q, want 1", hdr)
	}
	if front.partials.Load() == 0 {
		t.Fatal("serve_partial_total not incremented")
	}

	// Partial answers must not poison the result cache: the retry above
	// recomputed (still partial) rather than replaying a cached partial
	// as if complete.
	if !pb.Partial {
		t.Fatal("cached partial replayed")
	}
}

// TestBudgetPartialNotCached: when the request deadline leaves less than
// the scatter client's budget slack, every fragment is refused before the
// RPC and the response must be an empty marked partial — HTTP 200, all
// shards listed failed — and must never enter the result cache (a later
// request with more time deserves a real answer, and here would recompute
// the same partial rather than replay it as if complete).
func TestBudgetPartialNotCached(t *testing.T) {
	fleet := startShardFleet(t, 3, nil)
	// ExecTimeout below shard.DefaultBudgetSlack (25ms): the per-fragment
	// budget is negative at dispatch, so the shed is deterministic and no
	// shard RPC is ever made.
	s, fts := frontendServerCfg(t, fleet, Config{ExecTimeout: 20 * time.Millisecond})

	path := "/v1/query?dataset=lwfa&step=0&q=" + url.QueryEscape("px > 0.0007")
	code, hdr, body := getFull(t, fts, path)
	if code != http.StatusOK {
		t.Fatalf("status %d, want 200 marked-partial (not 504): %s", code, body)
	}
	if hdr != "1" {
		t.Fatalf("X-Partial = %q, want 1", hdr)
	}
	var pb QueryBody
	if code, _ := get(t, fts, path, &pb); code != http.StatusOK {
		t.Fatal("second fetch failed")
	}
	if !pb.Partial || pb.Matches != 0 || !reflect.DeepEqual(pb.FailedShards, []int{0, 1, 2}) {
		t.Fatalf("body = %+v, want empty partial with failed_shards [0 1 2]", pb)
	}

	// Budget partials must never be cached: repeated fetches recompute
	// (cache misses), they do not replay a stored partial as a hit.
	hits := s.cache.Stats().Hits
	for i := 0; i < 3; i++ {
		if code, _, _ := getFull(t, fts, path); code != http.StatusOK {
			t.Fatalf("refetch %d failed", i)
		}
	}
	if got := s.cache.Stats().Hits; got != hits {
		t.Fatalf("cache hits %d -> %d: a budget partial was cached", hits, got)
	}
}

// TestConcurrentScatterShardKill exercises concurrent scatters while one
// shard — slowed by fault injection so requests are genuinely mid-flight —
// is killed. Run under -race; the assertion is "no races, no panics, every
// response is either complete, partial, or a clean error".
func TestConcurrentScatterShardKill(t *testing.T) {
	var victim *faultnet.Listener
	fleet := startShardFleet(t, 3, func(i int, l net.Listener) (net.Listener, func()) {
		if i != 2 {
			return l, func() {}
		}
		victim = faultnet.Wrap(l, faultnet.Config{Seed: 7, Latency: 2 * time.Millisecond})
		return victim, victim.Kill
	})
	_, fts := frontendServer(t, fleet)

	var wg sync.WaitGroup
	start := make(chan struct{})
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			for i := 0; i < 5; i++ {
				// Distinct bins and thresholds bust both result and
				// fragment caches so every request really scatters.
				path := fmt.Sprintf("/v1/hist1d?dataset=lwfa&step=%d&var=x&bins=%d&q=%s",
					i%3, 8+g*5+i, url.QueryEscape(fmt.Sprintf("px > 0.000%d", g+1)))
				resp, err := http.Get(fts.URL + path)
				if err != nil {
					continue // transport-level failure: acceptable during the kill
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK && resp.StatusCode < 500 {
					t.Errorf("unexpected status %d for %s", resp.StatusCode, path)
				}
			}
		}(g)
	}
	close(start)
	time.Sleep(5 * time.Millisecond)
	fleet.kill[2]()
	wg.Wait()
}
