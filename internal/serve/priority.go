package serve

// Class is a request priority class for admission control. Lower values
// are more important and are shed last. The ordering mirrors how the
// paper's exploration loop spends its latency budget: a probe of an
// already-computed result must stay instant, an interactive drill-down is
// the product, a cold multi-step sweep is batch-shaped, and ingest can
// always retry.
type Class int

const (
	// ClassProbe is a request whose canonical cache key is already
	// resident: answering it costs one map lookup, so it bypasses the gate
	// entirely and is only ever shed when even the bypass path saturates.
	ClassProbe Class = iota
	// ClassDrill is an interactive query or histogram drill-down that
	// misses the cache and needs backend work.
	ClassDrill
	// ClassSweep is a multi-timestep sweep: the heaviest read shape, first
	// of the read classes to shed.
	ClassSweep
	// ClassIngest is a timestep append. Producers buffer and retry, so
	// under pressure ingest is shed before any read traffic.
	ClassIngest

	numClasses = 4
)

// String returns the label used in metrics and response headers.
func (c Class) String() string {
	switch c {
	case ClassProbe:
		return "probe"
	case ClassDrill:
		return "drill"
	case ClassSweep:
		return "sweep"
	case ClassIngest:
		return "ingest"
	default:
		return "unknown"
	}
}

// Classes lists all priority classes in shed order (last shed first).
func Classes() []Class {
	return []Class{ClassProbe, ClassDrill, ClassSweep, ClassIngest}
}
