package serve

// The /v1/session API: analysis sessions as first-class server state.
// A session holds named selections — compressed bitmaps over one timestep
// plus, once tracking ran, the materialized particle-ID set — so the
// paper's brush/refine/track workflow round-trips predicates and bitmap
// algebra on the server instead of re-evaluating a growing conjunction
// from scratch on every mouse movement:
//
//	POST   /v1/session                   create (server-assigned ID)
//	GET    /v1/session                   list
//	GET    /v1/session/{id}              inspect
//	DELETE /v1/session/{id}              drop
//	POST   /v1/session/{id}/select      evaluate q into a named selection;
//	                                     refine=and|or|andnot refines the
//	                                     stored bitmap with only the delta
//	                                     predicate evaluated
//	POST   /v1/session/{id}/track       follow the selected IDs across
//	                                     timesteps via one id-IN predicate
//	GET    /v1/session/{id}/views       conditional histogram panels, or
//	                                     format=png temporal parallel
//	                                     coordinates of the tracked IDs
//
// Selections partition across the shard tier exactly like every other
// operation: OpSelect scatters per-row-range fragments whose sorted
// position partials concatenate, in shard order, into the identical
// global selection a single process would compute. A partial merge (a
// shard failed) is surfaced with X-Partial and is never stored as an
// authoritative selection.

import (
	"context"
	"errors"
	"image/color"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/bitmap"
	"repro/internal/fastquery"
	"repro/internal/histogram"
	"repro/internal/obs"
	"repro/internal/pcoords"
	"repro/internal/plan"
	"repro/internal/query"
	"repro/internal/session"
)

// maxTrackIDs bounds how many particle IDs one track call may follow: the
// membership predicate is shipped to every shard as text, so an unbounded
// selection would turn into an unbounded query payload.
const maxTrackIDs = 100000

// registerSessions builds the session manager, its metrics, and the
// /v1/session routes. Called once from New.
func (s *Server) registerSessions() {
	s.sessions = session.NewManager(session.Config{
		TTL:         s.cfg.SessionTTL,
		MaxSessions: s.cfg.SessionMax,
		MaxBytes:    s.cfg.SessionMaxBytes,
	})
	stats := func(f func(session.Stats) float64) func() float64 {
		return func() float64 { return f(s.sessions.Stats()) }
	}
	counter := func(f func(session.Stats) uint64) func() uint64 {
		return func() uint64 { return f(s.sessions.Stats()) }
	}
	s.reg.GaugeFunc("session_active", "Live analysis sessions.",
		stats(func(st session.Stats) float64 { return float64(st.Active) }))
	s.reg.GaugeFunc("session_selections", "Named selections stored across sessions.",
		stats(func(st session.Stats) float64 { return float64(st.Selections) }))
	s.reg.GaugeFunc("session_bytes", "Bytes held by stored selections (bitmaps, ID sets, tracks).",
		stats(func(st session.Stats) float64 { return float64(st.Bytes) }))
	s.reg.CounterFunc("session_refine_reuse_total",
		"Incremental refinements that reused the stored bitmap (only the delta predicate evaluated).",
		counter(func(st session.Stats) uint64 { return st.RefineReuse }))
	s.reg.CounterFunc("session_refine_scratch_total",
		"Refinements that re-evaluated the full predicate chain (stale generation or missing bitmap).",
		counter(func(st session.Stats) uint64 { return st.RefineScratch }))
	s.reg.CounterFunc("session_partial_rejects_total",
		"Selection or track results refused storage because a shard was missing from the merge.",
		counter(func(st session.Stats) uint64 { return st.PartialRejects }))
	s.reg.CounterFunc("session_evictions_total", "Sessions evicted, by reason.",
		counter(func(st session.Stats) uint64 { return st.TTLEvictions }), obs.L("reason", "ttl"))
	s.reg.CounterFunc("session_evictions_total", "Sessions evicted, by reason.",
		counter(func(st session.Stats) uint64 { return st.CountEvictions }), obs.L("reason", "count"))
	s.reg.CounterFunc("session_evictions_total", "Sessions evicted, by reason.",
		counter(func(st session.Stats) uint64 { return st.BytesEvictions }), obs.L("reason", "bytes"))

	s.mux.HandleFunc("POST /v1/session", s.instrumented("session", s.handleSessionCreate))
	s.mux.HandleFunc("GET /v1/session", s.instrumented("session", s.handleSessionList))
	s.mux.HandleFunc("GET /v1/session/{id}", s.instrumented("session", s.handleSessionGet))
	s.mux.HandleFunc("DELETE /v1/session/{id}", s.instrumented("session", s.handleSessionDelete))
	s.mux.HandleFunc("POST /v1/session/{id}/select", s.instrumented("session-select", s.handleSessionSelect))
	s.mux.HandleFunc("POST /v1/session/{id}/track", s.instrumented("session-track", s.handleSessionTrack))
	s.mux.HandleFunc("GET /v1/session/{id}/views", s.instrumented("session-views", s.handleSessionViews))
}

// sessionName validates a client-supplied session or selection name:
// short, path-safe identifiers only.
func sessionName(raw, kind string) (string, *httpError) {
	if raw == "" || len(raw) > 64 {
		return "", errf(http.StatusBadRequest, "bad %s %q (1-64 chars of [A-Za-z0-9_-])", kind, raw)
	}
	for _, c := range raw {
		ok := c == '-' || c == '_' ||
			(c >= '0' && c <= '9') || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
		if !ok {
			return "", errf(http.StatusBadRequest, "bad %s %q (1-64 chars of [A-Za-z0-9_-])", kind, raw)
		}
	}
	return raw, nil
}

func sessionID(r *http.Request) (string, *httpError) {
	return sessionName(r.PathValue("id"), "session id")
}

// selectionName resolves the name parameter; a session's default
// selection is simply called "sel".
func selectionName(r *http.Request) (string, *httpError) {
	raw := r.FormValue("name")
	if raw == "" {
		raw = "sel"
	}
	return sessionName(raw, "selection name")
}

func (s *Server) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.sessions.Create())
}

func (s *Server) handleSessionList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, SessionListBody{Sessions: s.sessions.List()})
}

func (s *Server) handleSessionGet(w http.ResponseWriter, r *http.Request) {
	sid, herr := sessionID(r)
	if herr != nil {
		writeError(w, herr.status, "%s", herr.msg)
		return
	}
	info, ok := s.sessions.Get(sid)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown session %q", sid)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleSessionDelete(w http.ResponseWriter, r *http.Request) {
	sid, herr := sessionID(r)
	if herr != nil {
		writeError(w, herr.status, "%s", herr.msg)
		return
	}
	if !s.sessions.Delete(sid) {
		writeError(w, http.StatusNotFound, "unknown session %q", sid)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"deleted": sid})
}

// refineExpr folds the delta predicate into the stored canonical chain,
// mirroring the bitmap algebra exactly: and → (prev && d), or →
// (prev || d), andnot → (prev && !(d)). The result is itself canonical
// and parseable, so it can be re-evaluated from scratch on any shard.
func refineExpr(prevExpr string, delta query.Expr, mode string) (string, error) {
	prev, err := query.Parse(prevExpr)
	if err != nil {
		return "", err
	}
	var combined query.Expr
	switch mode {
	case "and":
		combined = &query.And{Terms: []query.Expr{prev, delta}}
	case "or":
		combined = &query.Or{Terms: []query.Expr{prev, delta}}
	case "andnot":
		combined = &query.And{Terms: []query.Expr{prev, &query.Not{Term: delta}}}
	default:
		return "", errors.New("unknown refine mode")
	}
	return query.Canonical(combined).String(), nil
}

// refineAtPositions is the incremental-brushing fast path: an and/andnot
// refinement can only shrink the stored selection, so the only candidate
// rows are the currently selected ones. The delta predicate is evaluated
// at exactly those positions — a gather of the delta's columns plus
// |selection| comparisons — with no scatter and no full-domain
// materialization; refinement cost tracks the selection size, not the
// dataset size.
func refineAtPositions(ctx context.Context, req *request, prev *bitmap.Vector, mode string) (*bitmap.Vector, error) {
	sctx, sp := obs.StartSpan(ctx, "refine-at-selection")
	defer sp.End()
	pos := prev.Positions()
	vars := query.Vars(req.expr)
	cols := make(map[string][]float64, len(vars))
	for _, v := range vars {
		vals, err := req.st.ValuesAtCtx(sctx, v, pos)
		if err != nil {
			return nil, err
		}
		cols[v] = vals
	}
	idx := 0
	rowf := func(name string) float64 { return cols[name][idx] }
	want := mode == "and" // andnot keeps the rows the delta does NOT match
	keep := make([]uint64, 0, len(pos))
	for i, p := range pos {
		idx = i
		if req.expr.Eval(rowf) == want {
			keep = append(keep, p)
		}
	}
	sp.SetAttr("candidates", strconv.Itoa(len(pos)))
	return bitmap.FromPositions(req.st.Rows(), keep)
}

// handleSessionSelect evaluates a predicate into a named selection, or
// refines the stored one. A refinement whose stored bitmap is still valid
// (same catalog generation, same row count) evaluates only the delta
// predicate — for and/andnot at just the selected positions, for or over
// the domain followed by a bitmap union — otherwise the folded chain
// re-evaluates from scratch. Select deliberately bypasses the result
// cache: the session is the cache, and each refinement's predicate is
// novel anyway.
func (s *Server) handleSessionSelect(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	sid, herr := sessionID(r)
	if herr != nil {
		writeError(w, herr.status, "%s", herr.msg)
		return
	}
	name, herr := selectionName(r)
	if herr != nil {
		writeError(w, herr.status, "%s", herr.msg)
		return
	}
	req, herr := s.parseRequest(r, true)
	if herr != nil {
		writeError(w, herr.status, "%s", herr.msg)
		return
	}
	mode := r.FormValue("refine")
	switch mode {
	case "", "and", "or", "andnot":
	default:
		writeError(w, http.StatusBadRequest, "unknown refine mode %q (and | or | andnot)", mode)
		return
	}
	var prev session.Selection
	if mode != "" {
		var ok bool
		prev, ok = s.sessions.Selection(sid, name)
		if !ok {
			writeError(w, http.StatusNotFound,
				"session %q has no selection %q to refine; select without refine first", sid, name)
			return
		}
		if prev.Dataset != req.d.name || prev.Step != req.t {
			writeError(w, http.StatusConflict,
				"selection %q is over %s step %d, request names %s step %d",
				name, prev.Dataset, prev.Step, req.d.name, req.t)
			return
		}
	}

	admitStart := time.Now()
	release, aerr := s.admit(r, ClassDrill)
	req.waitMS = float64(time.Since(admitStart)) / float64(time.Millisecond)
	if aerr != nil {
		s.writeShed(w, ClassDrill, aerr)
		return
	}
	defer release()
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	if req.prof != nil {
		ctx = plan.WithProfile(ctx, req.prof)
	}

	rows := req.st.Rows()
	effective := req.plan
	// reused: the stored bitmap is still authoritative (generation and row
	// count unchanged), so only the delta predicate needs evaluating.
	reused := false
	if mode != "" {
		eff, err := refineExpr(prev.Expr, req.expr, mode)
		if err != nil {
			writeError(w, http.StatusInternalServerError, "refine %q: %v", prev.Expr, err)
			return
		}
		effective = eff
		reused = prev.Bits != nil && prev.Gen == req.gen && prev.Rows == rows
	}
	var res *plan.Result
	var bits *bitmap.Vector
	var err error
	if reused && mode != "or" {
		// and / andnot with a valid stored bitmap: evaluate the delta only
		// at the selected positions, no scatter at all.
		bits, err = refineAtPositions(ctx, req, prev.Bits, mode)
		if err != nil {
			s.writeExecError(w, err)
			return
		}
	} else {
		pq := req.planQuery(plan.OpSelect)
		if mode != "" && !reused {
			pq.Query = effective
		}
		res, err = s.execPlan(ctx, req.d, pq, rows)
		if err != nil {
			s.writeExecError(w, err)
			return
		}
	}

	body := SessionSelectBody{
		Session: sid, Name: name,
		Dataset: req.d.name, Step: req.t,
		Query: req.src, Plan: req.plan, Expr: effective,
		Backend: req.backend.String(), Refine: mode,
		Rows: rows, Reused: reused,
		Trace: traceEcho(r),
	}
	if res != nil {
		body.Partial, body.FailedShards = res.Partial, res.Failed
	}
	if body.Partial {
		// Store-or-reject: a selection merged without every shard must
		// never become the authoritative brush other refinements and
		// tracks build on.
		s.sessions.NotePartialReject()
		body.Matches = uint64(len(res.Sel))
	} else {
		if bits == nil {
			bits, err = bitmap.FromPositions(rows, res.Sel)
			if err != nil {
				s.writeExecError(w, err)
				return
			}
			if mode != "" && reused {
				// or: the delta had to be evaluated over the whole domain,
				// but the stored bitmap still spares the folded chain.
				bits, err = session.Combine(prev.Bits, bits, mode)
				if err != nil {
					s.writeExecError(w, err)
					return
				}
			}
		}
		if mode != "" {
			if reused {
				s.sessions.NoteReuse()
			} else {
				s.sessions.NoteScratch()
			}
			body.Refines = prev.Refines + 1
		}
		sel := session.Selection{
			Name: name, Dataset: req.d.name, Step: req.t,
			Gen: req.gen, Backend: req.backend.String(),
			Expr: effective, Bits: bits,
			Count: bits.Count(), Rows: rows, Refines: body.Refines,
		}
		if perr := s.sessions.Put(sid, sel); perr != nil {
			status := http.StatusInternalServerError
			if errors.Is(perr, session.ErrTooLarge) {
				status = http.StatusRequestEntityTooLarge
			}
			writeError(w, status, "%v", perr)
			return
		}
		body.Stored = true
		body.Matches = sel.Count
		body.SizeBytes = sel.SizeBytes()
	}
	if rows > 0 {
		body.Selectivity = float64(body.Matches) / float64(rows)
	}
	body.ElapsedMS = float64(time.Since(start)) / float64(time.Millisecond)
	s.noteExplain(r, req, res, Computed, "")
	if res != nil {
		markPartial(w, res)
	}
	if req.explain {
		s.explains.Inc()
		body.Explain = s.buildExplain(ctx, r, req, "session-select", res, Computed, "", start)
		if req.explainOnly {
			writeBody(r, w, explainOnlyBody{Explain: body.Explain})
			return
		}
	}
	writeBody(r, w, body)
}

// datasetByName resolves a stored selection's dataset.
func (s *Server) datasetByName(name string) (*dataset, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	d, ok := s.datasets[name]
	return d, ok
}

// selBackend maps a stored selection's backend string back to the enum.
func selBackend(b string) fastquery.Backend {
	if b == fastquery.FastBit.String() {
		return fastquery.FastBit
	}
	return fastquery.Scan
}

// fetchSelection resolves {id} + name to the stored selection and its
// dataset, writing the error response itself on failure.
func (s *Server) fetchSelection(w http.ResponseWriter, r *http.Request) (string, session.Selection, *dataset, bool) {
	sid, herr := sessionID(r)
	if herr == nil {
		var name string
		if name, herr = selectionName(r); herr == nil {
			sel, ok := s.sessions.Selection(sid, name)
			if !ok {
				writeError(w, http.StatusNotFound, "session %q has no selection %q", sid, name)
				return "", session.Selection{}, nil, false
			}
			d, ok := s.datasetByName(sel.Dataset)
			if !ok {
				writeError(w, http.StatusNotFound, "selection %q names unknown dataset %q", name, sel.Dataset)
				return "", session.Selection{}, nil, false
			}
			return sid, sel, d, true
		}
	}
	writeError(w, herr.status, "%s", herr.msg)
	return "", session.Selection{}, nil, false
}

// handleSessionTrack follows a selection's particles across timesteps:
// the selected positions materialize into the ID column's values once,
// then every requested step is counted under one canonical `id in (...)`
// membership predicate — the cross-timestep query of paper Section III-B,
// batched as a single call. Runs at sweep priority; a partial step means
// the track is reported but not stored.
func (s *Server) handleSessionTrack(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	sid, sel, d, ok := s.fetchSelection(w, r)
	if !ok {
		return
	}
	steps, herr := stepsParam(r, d)
	if herr != nil {
		writeError(w, herr.status, "%s", herr.msg)
		return
	}
	st, err := d.step(sel.Step)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	req := &request{d: d, st: st, t: sel.Step, gen: sel.Gen, plan: sel.Expr, backend: selBackend(sel.Backend)}
	if req.explain, req.explainOnly = parseExplain(r); req.explain {
		req.prof = plan.NewProfile()
	}

	admitStart := time.Now()
	release, aerr := s.admit(r, ClassSweep)
	req.waitMS = float64(time.Since(admitStart)) / float64(time.Millisecond)
	if aerr != nil {
		s.writeShed(w, ClassSweep, aerr)
		return
	}
	defer release()
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	if req.prof != nil {
		ctx = plan.WithProfile(ctx, req.prof)
	}

	ids := sel.IDs
	if len(ids) == 0 && sel.Count > 0 {
		// Materialize the ID set from the stored positions. Positions are
		// only meaningful at the generation the bitmap was built against;
		// once an ingest moved the step, the selection must be re-run.
		if sel.Gen != d.stepGen(sel.Step) {
			writeError(w, http.StatusConflict,
				"selection %q is stale (step %d generation moved); re-run select", sel.Name, sel.Step)
			return
		}
		if sel.Count > maxTrackIDs {
			writeError(w, http.StatusRequestEntityTooLarge,
				"selection has %d particles, tracking caps at %d; refine further", sel.Count, maxTrackIDs)
			return
		}
		if herr := checkVars(d, st.IDVar()); herr != nil {
			writeError(w, http.StatusBadRequest,
				"dataset %q has no identifier column (%q); tracking needs one", d.name, st.IDVar())
			return
		}
		ids, err = st.IDsAtCtx(ctx, sel.Bits.Positions())
		if err != nil {
			s.writeExecError(w, err)
			return
		}
	}

	body := SessionTrackBody{
		Session: sid, Name: sel.Name, Dataset: d.name,
		Step: sel.Step, Backend: sel.Backend, IDVar: st.IDVar(),
		IDs: len(ids), Steps: steps,
		Counts: make([]uint64, len(steps)),
		Trace:  traceEcho(r),
	}
	if len(ids) > 0 {
		fids := make([]float64, len(ids))
		for i, id := range ids {
			fids[i] = float64(id)
		}
		body.Expr = query.Canonical(query.NewIn(st.IDVar(), fids)).String()
		for i, t := range steps {
			stT, err := d.step(t)
			if err != nil {
				s.writeExecError(w, err)
				return
			}
			sctx, sp := obs.StartSpan(ctx, "track-step")
			pq := plan.Query{Op: plan.OpCount, Dataset: d.name, Step: t,
				Query: body.Expr, Backend: req.backend}
			res, err := s.execPlan(sctx, d, pq, stT.Rows())
			if err != nil {
				sp.SetAttr("error", err.Error())
				sp.End()
				s.writeExecError(w, err)
				return
			}
			sp.End()
			body.Counts[i] = res.Count
			if res.Partial {
				body.Partial = true
				body.FailedSteps = append(body.FailedSteps, t)
			}
		}
	}
	if body.Partial {
		// Store-or-reject, same rule as select: a track missing a shard's
		// rows on any step is not an authoritative trajectory.
		s.sessions.NotePartialReject()
		w.Header().Set("X-Partial", "1")
	} else {
		sel.IDs = ids
		sel.Track = &session.Track{Steps: steps, Counts: body.Counts, Expr: body.Expr}
		if perr := s.sessions.Put(sid, sel); perr != nil {
			status := http.StatusInternalServerError
			if errors.Is(perr, session.ErrTooLarge) {
				status = http.StatusRequestEntityTooLarge
			}
			writeError(w, status, "%v", perr)
			return
		}
		body.Stored = true
	}
	body.ElapsedMS = float64(time.Since(start)) / float64(time.Millisecond)
	s.noteExplain(r, req, nil, Computed, "")
	if req.explain {
		s.explains.Inc()
		body.Explain = s.buildExplain(ctx, r, req, "session-track", nil, Computed, "", start)
		if req.explainOnly {
			writeBody(r, w, explainOnlyBody{Explain: body.Explain})
			return
		}
	}
	writeBody(r, w, body)
}

// viewVars resolves the axis variables for a views request: an explicit
// comma-separated list, or the dataset's first variables (sorted, ID
// column dropped, capped at four).
func viewVars(r *http.Request, d *dataset, idVar string) ([]string, *httpError) {
	if raw := r.FormValue("vars"); raw != "" {
		vars := strings.Split(raw, ",")
		for i := range vars {
			vars[i] = strings.TrimSpace(vars[i])
		}
		if herr := checkVars(d, vars...); herr != nil {
			return nil, herr
		}
		return vars, nil
	}
	all := d.src.Variables()
	sort.Strings(all)
	vars := make([]string, 0, 4)
	for _, v := range all {
		if v == idVar {
			continue
		}
		vars = append(vars, v)
		if len(vars) == 4 {
			break
		}
	}
	if len(vars) < 2 {
		return nil, errf(http.StatusBadRequest, "dataset %q has too few variables for a view", d.name)
	}
	return vars, nil
}

// layerPalette colours temporal layers the way the paper's Fig. 9 does:
// one hue per timestep, cycling.
var layerPalette = []color.RGBA{
	{90, 200, 250, 255},  // cyan
	{255, 180, 60, 255},  // amber
	{170, 120, 255, 255}, // violet
	{120, 230, 120, 255}, // green
	{255, 110, 130, 255}, // rose
	{240, 240, 130, 255}, // yellow
}

// handleSessionViews renders a stored selection: JSON conditional 1D
// histogram panels per axis variable by default, or (format=png) a
// histogram-based parallel coordinates plot — temporal, one layer per
// tracked timestep, once the selection has been tracked.
func (s *Server) handleSessionViews(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	sid, sel, d, ok := s.fetchSelection(w, r)
	if !ok {
		return
	}
	st, err := d.step(sel.Step)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	vars, herr := viewVars(r, d, st.IDVar())
	if herr != nil {
		writeError(w, herr.status, "%s", herr.msg)
		return
	}
	bins, herr := intParam(r, "bins", 32, 2, 512)
	if herr != nil {
		writeError(w, herr.status, "%s", herr.msg)
		return
	}
	format := r.FormValue("format")
	if format != "" && format != "json" && format != "png" {
		writeError(w, http.StatusBadRequest, "unknown format %q (json | png)", format)
		return
	}
	backend := selBackend(sel.Backend)

	release, aerr := s.admit(r, ClassSweep)
	if aerr != nil {
		s.writeShed(w, ClassSweep, aerr)
		return
	}
	defer release()
	ctx, cancel := s.requestCtx(r)
	defer cancel()

	// Axis ranges come from the step's variable metadata so histogram
	// edges and plot axes agree exactly.
	axes := make([]pcoords.Axis, len(vars))
	for i, v := range vars {
		lo, hi, err := st.MinMax(v)
		if err != nil {
			s.writeExecError(w, err)
			return
		}
		if !(hi > lo) {
			hi = lo + 1
		}
		axes[i] = pcoords.Axis{Var: v, Min: lo, Max: hi}
	}

	// Temporal views follow the tracked ID membership predicate across the
	// tracked steps; an untracked selection renders its own step only.
	steps, pred := []int{sel.Step}, sel.Expr
	if sel.Track != nil && sel.Track.Expr != "" {
		steps, pred = sel.Track.Steps, sel.Track.Expr
	}

	if format == "png" {
		plot, err := pcoords.New(axes, pcoords.DefaultOptions())
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		partial := false
		for si, t := range steps {
			stT, err := d.step(t)
			if err != nil {
				s.writeExecError(w, err)
				return
			}
			hists := make([]*histogram.Hist2D, len(axes)-1)
			for i := 0; i < len(axes)-1; i++ {
				spec := histogram.NewSpec2D(axes[i].Var, axes[i+1].Var, bins, bins)
				spec.XLo, spec.XHi = axes[i].Min, axes[i].Max
				spec.YLo, spec.YHi = axes[i+1].Min, axes[i+1].Max
				pq := plan.Query{Op: plan.OpHist2D, Dataset: d.name, Step: t,
					Query: pred, Backend: backend, Spec2: spec}
				res, err := s.execPlan(ctx, d, pq, stT.Rows())
				if err != nil {
					s.writeExecError(w, err)
					return
				}
				partial = partial || res.Partial
				hists[i] = res.Hist2
			}
			layer := &pcoords.HistLayer{Hists: hists, Color: layerPalette[si%len(layerPalette)]}
			if err := plot.AddHistLayer(layer); err != nil {
				s.writeExecError(w, err)
				return
			}
		}
		canvas, err := plot.Render()
		if err != nil {
			s.writeExecError(w, err)
			return
		}
		if partial {
			w.Header().Set("X-Partial", "1")
		}
		w.Header().Set("Content-Type", "image/png")
		canvas.EncodePNG(w) //nolint:errcheck // client gone; nothing to do
		return
	}

	body := SessionViewsBody{
		Session: sid, Name: sel.Name, Dataset: d.name,
		Step: sel.Step, Backend: sel.Backend, Expr: pred,
		Vars: vars, Steps: steps, Temporal: sel.Track != nil,
		Trace: traceEcho(r),
	}
	for i, v := range vars {
		spec := histogram.NewSpec1D(v, bins)
		spec.Lo, spec.Hi = axes[i].Min, axes[i].Max
		pq := plan.Query{Op: plan.OpHist1D, Dataset: d.name, Step: sel.Step,
			Query: sel.Expr, Backend: backend, Spec1: spec}
		res, err := s.execPlan(ctx, d, pq, st.Rows())
		if err != nil {
			s.writeExecError(w, err)
			return
		}
		if res.Partial {
			body.Partial = true
		}
		body.Panels = append(body.Panels, ViewPanel{
			Var: v, Edges: res.Hist1.Edges, Counts: res.Hist1.Counts, Total: res.Hist1.Total(),
		})
	}
	if body.Partial {
		w.Header().Set("X-Partial", "1")
	}
	body.ElapsedMS = float64(time.Since(start)) / float64(time.Millisecond)
	writeBody(r, w, body)
}
