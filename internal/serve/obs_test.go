package serve

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
)

// requestsTotal snapshots the serve_requests_total series as
// "endpoint/code" -> count.
func requestsTotal(s *Server) map[string]uint64 {
	out := map[string]uint64{}
	for _, m := range s.reg.Snapshot() {
		if m.Name == "serve_requests_total" {
			out[m.Labels["endpoint"]+"/"+m.Labels["code"]] = uint64(m.Value)
		}
	}
	return out
}

// diffRequests returns the series that grew between two snapshots.
func diffRequests(before, after map[string]uint64) map[string]uint64 {
	out := map[string]uint64{}
	for k, v := range after {
		if d := v - before[k]; d > 0 {
			out[k] = d
		}
	}
	return out
}

// TestRequestCounterPerResponseClass drives one request through every
// response class the server can produce and asserts each increments
// exactly one serve_requests_total series — the right endpoint, the right
// code, exactly once — including the panic and admission-failure paths.
func TestRequestCounterPerResponseClass(t *testing.T) {
	q := url.QueryEscape("px > 0")
	cases := []struct {
		name string
		cfg  Config
		// setup prepares the failure condition and returns a teardown.
		setup func(t *testing.T, s *Server) func()
		// do issues the request; nil means a plain GET of path.
		do   func(t *testing.T, ts *httptest.Server, path string)
		path string
		want string // "endpoint/code"
		// extra asserts class-specific counters after the request.
		extra func(t *testing.T, s *Server)
	}{
		{name: "ok", path: "/v1/query?q=" + q, want: "query/200"},
		{name: "health", path: "/healthz", want: "healthz/200"},
		{name: "bad query", path: "/v1/query?q=" + url.QueryEscape("px >"), want: "query/400"},
		{name: "missing q", path: "/v1/query", want: "query/400"},
		{name: "unknown var", path: "/v1/query?q=" + url.QueryEscape("nope > 1"), want: "query/404"},
		{name: "unknown dataset", path: "/v1/query?dataset=zz&q=" + q, want: "query/404"},
		{name: "step out of range", path: "/v1/query?step=99&q=" + q, want: "query/404"},
		{name: "bad backend", path: "/v1/query?backend=zz&q=" + q, want: "query/400"},
		{name: "hist1d ok", path: "/v1/hist1d?var=px&bins=8", want: "hist1d/200"},
		{name: "hist1d bad bins", path: "/v1/hist1d?var=px&bins=0", want: "hist1d/400"},
		{
			name: "panic -> 500",
			setup: func(t *testing.T, s *Server) func() {
				s.mux.HandleFunc("/v1/boom", s.instrumented("boom", func(w http.ResponseWriter, r *http.Request) {
					panic("kaboom")
				}))
				return func() {}
			},
			path: "/v1/boom",
			want: "boom/500",
			extra: func(t *testing.T, s *Server) {
				if got := s.panics.Load(); got != 1 {
					t.Errorf("panics counter = %d, want 1", got)
				}
			},
		},
		{
			name: "queue full -> 429",
			cfg:  Config{Concurrency: 1, QueueDepth: -1},
			setup: func(t *testing.T, s *Server) func() {
				if err := s.gate.Acquire(context.Background(), ClassDrill); err != nil {
					t.Fatal(err)
				}
				return func() { s.gate.Release(0) }
			},
			path: "/v1/query?q=" + q,
			want: "query/429",
			extra: func(t *testing.T, s *Server) {
				if got := s.gate.ShedCount(ClassDrill); got != 1 {
					t.Errorf("drill shed count = %d, want 1", got)
				}
				if ra := s.gate.RetryAfter(ClassDrill); ra < 1 || ra > 30 {
					t.Errorf("Retry-After out of range: %d", ra)
				}
			},
		},
		{
			// Sweeps get half the queue share: with the queue disabled their
			// share is zero, so a held slot sheds them immediately.
			name: "sweep shed -> 429",
			cfg:  Config{Concurrency: 1, QueueDepth: -1},
			setup: func(t *testing.T, s *Server) func() {
				if err := s.gate.Acquire(context.Background(), ClassDrill); err != nil {
					t.Fatal(err)
				}
				return func() { s.gate.Release(0) }
			},
			path: "/v1/sweep2d?x=x&y=px&xbins=8&ybins=8",
			want: "sweep2d/429",
			extra: func(t *testing.T, s *Server) {
				if got := s.gate.ShedCount(ClassSweep); got != 1 {
					t.Errorf("sweep shed count = %d, want 1", got)
				}
			},
		},
		{
			// Ingest is the lowest class; admission runs before the dataset
			// lookup, so a saturated gate sheds the append with 429 even on a
			// server with no live dataset.
			name: "ingest shed -> 429",
			cfg:  Config{Concurrency: 1, QueueDepth: -1},
			setup: func(t *testing.T, s *Server) func() {
				if err := s.gate.Acquire(context.Background(), ClassDrill); err != nil {
					t.Fatal(err)
				}
				return func() { s.gate.Release(0) }
			},
			do: func(t *testing.T, ts *httptest.Server, path string) {
				resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader("{}"))
				if err != nil {
					t.Fatal(err)
				}
				if resp.Header.Get("Retry-After") == "" {
					t.Error("shed ingest missing Retry-After header")
				}
				resp.Body.Close()
			},
			path: "/v1/ingest?dataset=beam",
			want: "ingest/429",
			extra: func(t *testing.T, s *Server) {
				if got := s.gate.ShedCount(ClassIngest); got != 1 {
					t.Errorf("ingest shed count = %d, want 1", got)
				}
			},
		},
		{
			name: "queue deadline -> 503",
			cfg:  Config{Concurrency: 1, QueueDepth: 1, QueueTimeout: 10 * time.Millisecond},
			setup: func(t *testing.T, s *Server) func() {
				if err := s.gate.Acquire(context.Background(), ClassDrill); err != nil {
					t.Fatal(err)
				}
				return func() { s.gate.Release(0) }
			},
			path: "/v1/query?q=" + q,
			want: "query/503",
		},
		{
			name: "client gone in queue -> 499",
			cfg:  Config{Concurrency: 1, QueueDepth: 1},
			setup: func(t *testing.T, s *Server) func() {
				if err := s.gate.Acquire(context.Background(), ClassDrill); err != nil {
					t.Fatal(err)
				}
				return func() { s.gate.Release(0) }
			},
			do: func(t *testing.T, ts *httptest.Server, path string) {
				// The client abandons the request while it waits in the
				// admission queue; the server answers 499 to a closed
				// connection, so only the counter records the outcome.
				ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
				defer cancel()
				req, _ := http.NewRequestWithContext(ctx, "GET", ts.URL+path, nil)
				resp, err := http.DefaultClient.Do(req)
				if err == nil {
					resp.Body.Close()
				}
			},
			path: "/v1/query?q=" + q,
			want: "query/499",
			extra: func(t *testing.T, s *Server) {
				if got := s.canceled.Load(); got != 1 {
					t.Errorf("canceled counter = %d, want 1", got)
				}
			},
		},
		{
			name: "exec timeout -> 504",
			cfg:  Config{ExecTimeout: time.Nanosecond},
			path: "/v1/query?q=" + q,
			want: "query/504",
			extra: func(t *testing.T, s *Server) {
				if got := s.execTimeouts.Load(); got != 1 {
					t.Errorf("execTimeouts counter = %d, want 1", got)
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, ts := testServer(t, tc.cfg)
			if tc.setup != nil {
				defer tc.setup(t, s)()
			}
			before := requestsTotal(s)
			if tc.do != nil {
				tc.do(t, ts, tc.path)
			} else {
				resp, err := http.Get(ts.URL + tc.path)
				if err != nil {
					t.Fatal(err)
				}
				resp.Body.Close()
			}
			// The 499 path counts after the client has already gone; give
			// the handler goroutine a moment to finish.
			var diff map[string]uint64
			deadline := time.Now().Add(2 * time.Second)
			for {
				diff = diffRequests(before, requestsTotal(s))
				if len(diff) > 0 || time.Now().After(deadline) {
					break
				}
				time.Sleep(2 * time.Millisecond)
			}
			if len(diff) != 1 || diff[tc.want] != 1 {
				t.Fatalf("request counter deltas = %v, want exactly {%s: 1}", diff, tc.want)
			}
			if tc.extra != nil {
				tc.extra(t, s)
			}
		})
	}
}

// TestTraceDebugEcho exercises the per-request trace: the X-Trace-Id
// header, the ?debug=trace span-tree echo, and the stage spans threaded
// through admission, parsing, the cache and the backend (via the carried
// flight context).
func TestTraceDebugEcho(t *testing.T) {
	_, ts := testServer(t, Config{})
	path := "/v1/hist2d?x=x&y=px&xbins=8&ybins=8&q=" + url.QueryEscape("px > 0") + "&debug=trace"
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if resp.Header.Get("X-Trace-Id") == "" {
		t.Error("missing X-Trace-Id header")
	}
	var body Hist2DBody
	if err := jsonDecode(resp, &body); err != nil {
		t.Fatal(err)
	}
	if body.Trace == nil {
		t.Fatal("debug=trace did not echo a span tree")
	}
	if body.Trace.Name != "hist2d" {
		t.Errorf("root span %q, want hist2d", body.Trace.Name)
	}
	for _, want := range []string{"admission-wait", "plan-canonicalize", "cache-lookup"} {
		if body.Trace.Find(want) == nil {
			t.Errorf("span %q missing from trace:\n%+v", want, body.Trace)
		}
	}
	// Backend work runs under the cache flight's carried span, so the
	// fastbit/histogram stage spans must appear below cache-lookup.
	cl := body.Trace.Find("cache-lookup")
	if cl.Find("histogram-binning") == nil && cl.Find("bitmap-eval") == nil {
		t.Errorf("no backend stage spans under cache-lookup:\n%+v", cl)
	}
}

// TestSweep2DLocal runs the temporal sweep without a worker pool.
func TestSweep2DLocal(t *testing.T) {
	_, ts := testServer(t, Config{})
	var body Sweep2DBody
	code, raw := get(t, ts, "/v1/sweep2d?x=x&y=px&xbins=8&ybins=8&debug=trace", &body)
	if code != 200 {
		t.Fatalf("sweep2d: %d %s", code, raw)
	}
	if body.Mode != "local" || len(body.Steps) != 4 || len(body.Totals) != 4 {
		t.Fatalf("sweep body: %+v", body)
	}
	if body.Total == 0 {
		t.Fatal("sweep total = 0")
	}
	if body.Trace == nil || body.Trace.Find("sweep-step") == nil {
		t.Fatal("local sweep trace missing sweep-step spans")
	}
}

// TestSweep2DClusterTrace is the tentpole acceptance scenario: a
// cluster-backed sweep with ?debug=trace returns a span tree whose
// remote-worker subtrees came back over the RPC boundary.
func TestSweep2DClusterTrace(t *testing.T) {
	s, ts := testServer(t, Config{})
	addrs, shutdown, err := cluster.StartLocalWorkers(2, testDataDir(t))
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()
	cfg := cluster.DefaultPoolConfig()
	cfg.ProbeInterval = 0
	if err := s.SetWorkers(addrs, cfg); err != nil {
		t.Fatal(err)
	}

	var body Sweep2DBody
	code, raw := get(t, ts, "/v1/sweep2d?x=x&y=px&xbins=8&ybins=8&steps=0-3&debug=trace", &body)
	if code != 200 {
		t.Fatalf("sweep2d: %d %s", code, raw)
	}
	if body.Mode != "cluster" {
		t.Fatalf("mode %q, want cluster", body.Mode)
	}
	if len(body.Failed) != 0 || body.Total == 0 {
		t.Fatalf("sweep body: %+v", body)
	}
	if body.Trace == nil {
		t.Fatal("no trace echoed")
	}
	workers, remotes := 0, 0
	body.Trace.Walk(func(sd *obs.SpanData) {
		switch sd.Name {
		case "rpc-worker":
			workers++
		case "worker:hist2d":
			remotes++
			if !sd.Remote {
				t.Error("worker:hist2d span not marked Remote")
			}
		}
	})
	if workers != 4 || remotes != 4 {
		t.Fatalf("rpc-worker spans = %d, remote worker spans = %d, want 4 and 4:\n%+v",
			workers, remotes, body.Trace)
	}
}

// TestSlowQueryLog verifies that over-threshold requests land in
// /v1/debug/slow with their trace attached, and are counted.
func TestSlowQueryLog(t *testing.T) {
	s, ts := testServer(t, Config{SlowThreshold: time.Nanosecond})
	if code, raw := get(t, ts, "/v1/query?q="+url.QueryEscape("px > 0"), nil); code != 200 {
		t.Fatalf("query: %d %s", code, raw)
	}
	var entries []obs.SlowEntry
	if code, raw := get(t, ts, "/v1/debug/slow", &entries); code != 200 {
		t.Fatalf("slow: %d %s", code, raw)
	}
	var found *obs.SlowEntry
	for i := range entries {
		if entries[i].Endpoint == "query" {
			found = &entries[i]
		}
	}
	if found == nil {
		t.Fatalf("no query entry in slow log: %+v", entries)
	}
	if found.TraceID == "" || found.Status != 200 || found.Trace == nil {
		t.Errorf("slow entry incomplete: %+v", found)
	}
	if !strings.Contains(found.Detail, "q=") {
		t.Errorf("slow entry detail %q missing query string", found.Detail)
	}
	if s.metrics.slowQueries.Load() == 0 {
		t.Error("serve_slow_queries_total not incremented")
	}
}

// TestMetricsEndpoint scrapes /metrics after real traffic and checks the
// Prometheus exposition carries at least one counter, gauge and latency
// histogram from every layer: serve, fastbit/scan, cluster.
func TestMetricsEndpoint(t *testing.T) {
	_, ts := testServer(t, Config{})
	// Generate traffic through both backends so layer instruments move.
	for _, p := range []string{
		"/v1/query?q=" + url.QueryEscape("px > 0"),
		"/v1/query?backend=scan&q=" + url.QueryEscape("px > 0"),
	} {
		if code, raw := get(t, ts, p, nil); code != 200 {
			t.Fatalf("%s: %d %s", p, code, raw)
		}
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("content type %q", ct)
	}
	raw := readAll(t, resp)
	for _, want := range []string{
		// serve layer
		"serve_requests_total{", "serve_inflight_requests", "serve_request_seconds_bucket{",
		"serve_cache_hits_total", "serve_admission_admitted_total",
		// fastbit / scan layer
		"fastbit_eval_rows_total", "fastbit_candidate_check_fraction",
		"fastbit_eval_seconds_bucket{", "scan_rows_total", "scan_seconds_bucket{",
		// cluster layer (registered at package init even when idle)
		"cluster_rpc_calls_total", "cluster_unhealthy_workers",
	} {
		if !strings.Contains(raw, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestStatsBuildInfo checks the build/runtime identity block and the
// embedded registry snapshot in /v1/stats.
func TestStatsBuildInfo(t *testing.T) {
	_, ts := testServer(t, Config{})
	// The request counter series appears once a request has completed
	// (the middleware counts after the handler returns).
	if code, raw := get(t, ts, "/healthz", nil); code != 200 {
		t.Fatalf("healthz: %d %s", code, raw)
	}
	var body StatsBody
	if code, raw := get(t, ts, "/v1/stats", &body); code != 200 {
		t.Fatalf("stats: %d %s", code, raw)
	}
	b := body.Build
	if b.GoVersion == "" || b.GOMAXPROCS < 1 || b.Goroutines < 1 || b.UptimeSeconds < 0 {
		t.Fatalf("build info incomplete: %+v", b)
	}
	if len(body.Metrics) == 0 {
		t.Fatal("stats carries no metrics snapshot")
	}
	names := map[string]bool{}
	for _, m := range body.Metrics {
		names[m.Name] = true
	}
	for _, want := range []string{"serve_requests_total", "serve_cache_hits_total", "cluster_rpc_calls_total"} {
		if !names[want] {
			t.Errorf("stats metrics missing %s", want)
		}
	}
}

func jsonDecode(resp *http.Response, out any) error {
	return json.NewDecoder(resp.Body).Decode(out)
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}
