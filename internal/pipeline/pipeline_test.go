package pipeline

import (
	"os"
	"sync"
	"testing"

	"repro/internal/fastbit"
	"repro/internal/fastquery"
	"repro/internal/histogram"
	"repro/internal/pcoords"
	"repro/internal/query"
	"repro/internal/sim"
)

var (
	plOnce sync.Once
	plDir  string
	plErr  error
)

func plSource(t *testing.T) *fastquery.Source {
	t.Helper()
	plOnce.Do(func() {
		dir, err := os.MkdirTemp("", "pipeline-test-*")
		if err != nil {
			plErr = err
			return
		}
		cfg := sim.DefaultConfig()
		cfg.Steps = 4
		cfg.BackgroundPerStep = 2000
		cfg.BeamParticles = 50
		_, plErr = sim.WriteDataset(dir, cfg, sim.WriteOptions{
			Index: fastbit.IndexOptions{Bins: 48},
		})
		plDir = dir
	})
	if plErr != nil {
		t.Fatal(plErr)
	}
	src, err := fastquery.Open(plDir)
	if err != nil {
		t.Fatal(err)
	}
	return src
}

func TestMain(m *testing.M) {
	code := m.Run()
	if plDir != "" {
		os.RemoveAll(plDir)
	}
	os.Exit(code)
}

func TestContractRestrict(t *testing.T) {
	c := NewContract()
	if rs, ok := c.RangeSet(); !ok || len(rs) != 0 {
		t.Fatal("empty contract RangeSet wrong")
	}
	c.Restrict(query.MustParse("px > 1e9"))
	c.Restrict(query.MustParse("y > 0"))
	if !c.Variables["px"] || !c.Variables["y"] {
		t.Fatal("variables not collected")
	}
	rs, ok := c.RangeSet()
	if !ok {
		t.Fatal("conjunction not exposed as range set")
	}
	if rs["px"].Lo != 1e9 || rs["y"].Lo != 0 {
		t.Fatalf("range set = %v", rs)
	}
	c.Restrict(query.MustParse("a > 0 || b > 0"))
	if _, ok := c.RangeSet(); ok {
		t.Fatal("disjunction exposed as range set")
	}
	c.Restrict(nil) // no-op
}

func TestPipelineHistogramAndSelection(t *testing.T) {
	src := plSource(t)
	sel := &SelectionStage{Query: query.MustParse("px > 1e9"), WantIDs: true}
	hist := &HistogramStage{Specs: []histogram.Spec2D{
		histogram.NewSpec2D("x", "px", 16, 16),
	}}
	pl, err := New(src, fastquery.FastBit, sel, hist)
	if err != nil {
		t.Fatal(err)
	}
	payload, err := pl.Run(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(hist.Hists) != 1 {
		t.Fatalf("histogram stage got %d hists", len(hist.Hists))
	}
	// The histogram was computed under the selection's restriction:
	// total == selection size.
	if hist.Hists[0].Total() != uint64(len(sel.Positions)) {
		t.Fatalf("conditional histogram total %d != %d selected",
			hist.Hists[0].Total(), len(sel.Positions))
	}
	if len(sel.IDs) != len(sel.Positions) {
		t.Fatalf("ids %d != positions %d", len(sel.IDs), len(sel.Positions))
	}
	if len(sel.Positions) == 0 {
		t.Fatal("selection empty")
	}
	if payload.Rows == 0 {
		t.Fatal("payload rows zero")
	}
}

func TestPipelineBackendsAgree(t *testing.T) {
	src := plSource(t)
	run := func(b fastquery.Backend) *Payload {
		sel := &SelectionStage{Query: query.MustParse("px > 1e9 && y > 0")}
		pl, err := New(src, b, sel)
		if err != nil {
			t.Fatal(err)
		}
		p, err := pl.Run(2)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	a := run(fastquery.FastBit)
	b := run(fastquery.Scan)
	if len(a.Positions) != len(b.Positions) {
		t.Fatalf("backends disagree: %d vs %d", len(a.Positions), len(b.Positions))
	}
	for i := range a.Positions {
		if a.Positions[i] != b.Positions[i] {
			t.Fatalf("position %d differs", i)
		}
	}
}

func TestPipelineSubsetStage(t *testing.T) {
	src := plSource(t)
	sel := &SelectionStage{Query: query.MustParse("px > 1e9")}
	sub := &SubsetStage{Columns: []string{"x", "px"}}
	pl, err := New(src, fastquery.FastBit, sel, sub)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pl.Run(3); err != nil {
		t.Fatal(err)
	}
	if len(sub.Values["x"]) != len(sel.Positions) {
		t.Fatalf("subset %d values for %d positions", len(sub.Values["x"]), len(sel.Positions))
	}
	// Every extracted px satisfies the restriction.
	for i, v := range sub.Values["px"] {
		if v <= 1e9 {
			t.Fatalf("subset record %d has px=%g, violates restriction", i, v)
		}
	}
}

func TestPipelinePCPlotSink(t *testing.T) {
	src := plSource(t)
	sink := &PCPlotSink{
		Axes: []pcoords.Axis{
			{Var: "x", Min: 0, Max: 2e-3},
			{Var: "px", Min: -1e9, Max: 1.2e11},
			{Var: "y", Min: -1e-4, Max: 1e-4},
		},
		Bins: 32,
	}
	pl, err := New(src, fastquery.FastBit, sink)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pl.Run(3); err != nil {
		t.Fatal(err)
	}
	if sink.Canvas == nil {
		t.Fatal("sink produced no canvas")
	}
	w, h := sink.Canvas.Size()
	if w == 0 || h == 0 {
		t.Fatal("empty canvas")
	}
}

func TestPipelineSubsetWithoutRestrictionFails(t *testing.T) {
	src := plSource(t)
	sub := &SubsetStage{Columns: []string{"x"}}
	pl, err := New(src, fastquery.FastBit, sub)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pl.Run(0); err == nil {
		t.Fatal("subset without restriction accepted")
	}
}

func TestPipelineValidation(t *testing.T) {
	src := plSource(t)
	if _, err := New(nil, fastquery.FastBit, &SelectionStage{}); err == nil {
		t.Fatal("nil source accepted")
	}
	if _, err := New(src, fastquery.FastBit); err == nil {
		t.Fatal("no stages accepted")
	}
	// Stage negotiation failures.
	pl, err := New(src, fastquery.FastBit, &SelectionStage{Query: nil})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pl.Run(0); err == nil {
		t.Fatal("nil selection query accepted")
	}
	pl, err = New(src, fastquery.FastBit, &HistogramStage{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pl.Run(0); err == nil {
		t.Fatal("empty histogram stage accepted")
	}
	pl, err = New(src, fastquery.FastBit, &SubsetStage{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pl.Run(0); err == nil {
		t.Fatal("empty subset stage accepted")
	}
	pl, err = New(src, fastquery.FastBit, &PCPlotSink{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pl.Run(0); err == nil {
		t.Fatal("empty pcplot sink accepted")
	}
	// Bad step surfaces.
	pl, err = New(src, fastquery.FastBit, &SelectionStage{Query: query.MustParse("px > 0")})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pl.Run(99); err == nil {
		t.Fatal("bad step accepted")
	}
}

func TestTwoHistogramStagesShareContract(t *testing.T) {
	src := plSource(t)
	h1 := &HistogramStage{Specs: []histogram.Spec2D{histogram.NewSpec2D("x", "px", 8, 8)}}
	h2 := &HistogramStage{Specs: []histogram.Spec2D{
		histogram.NewSpec2D("y", "py", 8, 8),
		histogram.NewSpec2D("x", "y", 8, 8),
	}}
	pl, err := New(src, fastquery.FastBit, h1, h2)
	if err != nil {
		t.Fatal(err)
	}
	p, err := pl.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Hists) != 3 {
		t.Fatalf("payload carries %d hists", len(p.Hists))
	}
	if len(h1.Hists) != 1 || len(h2.Hists) != 2 {
		t.Fatalf("stage hist counts %d, %d", len(h1.Hists), len(h2.Hists))
	}
	if h1.Hists[0].XVar != "x" || h2.Hists[0].XVar != "y" {
		t.Fatal("histograms routed to wrong stages")
	}
}
