// Package pipeline implements a small contract-based, demand-driven data
// processing pipeline in the style of VisIt's contract system (paper
// Section II-D and Childs et al. 2005). Before execution, a Contract
// travels upstream from the sinks to the source; each stage adds what it
// needs (variables, histogram specifications) and may restrict the scope
// of upstream work by contributing Boolean range queries out-of-band. The
// source then performs exactly the I/O and index work the contract calls
// for — this is what lets histogram computation live at the I/O stage and
// keeps rendering cost a function of histogram resolution rather than
// dataset size (Section III-A1).
package pipeline

import (
	"fmt"

	"repro/internal/fastquery"
	"repro/internal/histogram"
	"repro/internal/query"
)

// Contract accumulates the upstream demands of all stages.
type Contract struct {
	// Variables the source must be able to read.
	Variables map[string]bool
	// Restriction is the conjunction of all stages' range queries; nil
	// means no restriction. It limits which records contribute to
	// histograms and subset extraction.
	Restriction query.Expr
	// Hist2D lists the 2D histograms the source computes at I/O time.
	Hist2D []histogram.Spec2D
	// NeedPositions requests the matching record positions.
	NeedPositions bool
	// NeedIDs requests the matching record identifiers.
	NeedIDs bool
	// SubsetColumns requests these columns' values at matching positions.
	SubsetColumns map[string]bool
}

// NewContract returns an empty contract.
func NewContract() *Contract {
	return &Contract{Variables: map[string]bool{}, SubsetColumns: map[string]bool{}}
}

// Restrict ANDs a range query into the contract's restriction.
func (c *Contract) Restrict(e query.Expr) {
	if e == nil {
		return
	}
	for _, v := range query.Vars(e) {
		c.Variables[v] = true
	}
	if c.Restriction == nil {
		c.Restriction = e
		return
	}
	c.Restriction = &query.And{Terms: []query.Expr{c.Restriction, e}}
}

// RangeSet exposes the restriction as per-variable intervals when it is a
// plain conjunction of comparisons — the out-of-band form VisIt passes
// between filters.
func (c *Contract) RangeSet() (map[string]query.Interval, bool) {
	if c.Restriction == nil {
		return map[string]query.Interval{}, true
	}
	return query.RangeSet(c.Restriction)
}

// Payload is the data flowing downstream after the source executes.
type Payload struct {
	Step      int
	Rows      uint64
	Hists     []*histogram.Hist2D // parallel to Contract.Hist2D
	Positions []uint64
	IDs       []int64
	Subset    map[string][]float64 // SubsetColumns values at Positions
}

// Stage is one pipeline element between the source and the end of the
// pipeline. Negotiate runs upstream (last stage first); Execute runs
// downstream (first stage first).
type Stage interface {
	Name() string
	Negotiate(c *Contract) error
	Execute(p *Payload) error
}

// Pipeline executes stages over one fastquery step per Run call.
type Pipeline struct {
	src     *fastquery.Source
	backend fastquery.Backend
	stages  []Stage
}

// New creates a pipeline over a dataset source.
func New(src *fastquery.Source, backend fastquery.Backend, stages ...Stage) (*Pipeline, error) {
	if src == nil {
		return nil, fmt.Errorf("pipeline: nil source")
	}
	if len(stages) == 0 {
		return nil, fmt.Errorf("pipeline: no stages")
	}
	return &Pipeline{src: src, backend: backend, stages: stages}, nil
}

// Run negotiates the contract and executes the pipeline for one timestep,
// returning the final payload.
func (pl *Pipeline) Run(step int) (*Payload, error) {
	contract := NewContract()
	// Contracts travel upstream: the most-downstream stage negotiates
	// first.
	for i := len(pl.stages) - 1; i >= 0; i-- {
		if err := pl.stages[i].Negotiate(contract); err != nil {
			return nil, fmt.Errorf("pipeline: negotiate %s: %w", pl.stages[i].Name(), err)
		}
	}
	payload, err := pl.executeSource(step, contract)
	if err != nil {
		return nil, fmt.Errorf("pipeline: source: %w", err)
	}
	for _, st := range pl.stages {
		if err := st.Execute(payload); err != nil {
			return nil, fmt.Errorf("pipeline: execute %s: %w", st.Name(), err)
		}
	}
	return payload, nil
}

// executeSource performs the I/O-stage work the contract demands.
func (pl *Pipeline) executeSource(step int, c *Contract) (*Payload, error) {
	st, err := pl.src.OpenStep(step)
	if err != nil {
		return nil, err
	}
	defer st.Close()
	p := &Payload{Step: step, Rows: st.Rows()}

	for _, spec := range c.Hist2D {
		h, err := st.Histogram2D(c.Restriction, spec, pl.backend)
		if err != nil {
			return nil, err
		}
		p.Hists = append(p.Hists, h)
	}
	needPos := c.NeedPositions || c.NeedIDs || len(c.SubsetColumns) > 0
	if needPos {
		if c.Restriction == nil {
			return nil, fmt.Errorf("subset extraction requires a restriction query")
		}
		pos, err := st.Select(c.Restriction, pl.backend)
		if err != nil {
			return nil, err
		}
		p.Positions = pos
	}
	if c.NeedIDs {
		ids, err := st.SelectIDs(c.Restriction, pl.backend)
		if err != nil {
			return nil, err
		}
		p.IDs = ids
	}
	if len(c.SubsetColumns) > 0 {
		p.Subset = map[string][]float64{}
		for name := range c.SubsetColumns {
			vals, err := columnAt(st, name, p.Positions)
			if err != nil {
				return nil, err
			}
			p.Subset[name] = vals
		}
	}
	return p, nil
}

func columnAt(st *fastquery.Step, name string, pos []uint64) ([]float64, error) {
	col, err := st.ReadColumn(name)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(pos))
	for i, p := range pos {
		if p >= uint64(len(col)) {
			return nil, fmt.Errorf("pipeline: position %d out of range", p)
		}
		out[i] = col[p]
	}
	return out, nil
}
