package pipeline

import (
	"fmt"
	"image/color"

	"repro/internal/histogram"
	"repro/internal/pcoords"
	"repro/internal/query"
	"repro/internal/render"
)

// SelectionStage contributes a Boolean range query that restricts the
// whole pipeline — the interactive threshold selection from the parallel
// coordinates display.
type SelectionStage struct {
	Query query.Expr
	// WantIDs additionally requests matching identifiers (for subsequent
	// tracking queries).
	WantIDs bool

	// Result fields populated at Execute time.
	Positions []uint64
	IDs       []int64
}

// Name implements Stage.
func (s *SelectionStage) Name() string { return "selection" }

// Negotiate implements Stage.
func (s *SelectionStage) Negotiate(c *Contract) error {
	if s.Query == nil {
		return fmt.Errorf("selection stage has no query")
	}
	c.Restrict(s.Query)
	c.NeedPositions = true
	if s.WantIDs {
		c.NeedIDs = true
	}
	return nil
}

// Execute implements Stage.
func (s *SelectionStage) Execute(p *Payload) error {
	s.Positions = p.Positions
	s.IDs = p.IDs
	return nil
}

// HistogramStage requests 2D histograms computed at the I/O stage.
type HistogramStage struct {
	Specs []histogram.Spec2D

	// Hists is populated at Execute time, parallel to Specs.
	Hists []*histogram.Hist2D

	offset int // position of our specs within the contract
}

// Name implements Stage.
func (h *HistogramStage) Name() string { return "histogram" }

// Negotiate implements Stage.
func (h *HistogramStage) Negotiate(c *Contract) error {
	if len(h.Specs) == 0 {
		return fmt.Errorf("histogram stage has no specs")
	}
	h.offset = len(c.Hist2D)
	for _, spec := range h.Specs {
		c.Variables[spec.XVar] = true
		c.Variables[spec.YVar] = true
		c.Hist2D = append(c.Hist2D, spec)
	}
	return nil
}

// Execute implements Stage.
func (h *HistogramStage) Execute(p *Payload) error {
	if h.offset+len(h.Specs) > len(p.Hists) {
		return fmt.Errorf("payload carries %d histograms, need %d", len(p.Hists), h.offset+len(h.Specs))
	}
	h.Hists = p.Hists[h.offset : h.offset+len(h.Specs)]
	return nil
}

// SubsetStage extracts the values of named columns for the selected
// records (the "data subsetting" output path of Figure 1).
type SubsetStage struct {
	Columns []string

	// Values is populated at Execute time.
	Values map[string][]float64
}

// Name implements Stage.
func (s *SubsetStage) Name() string { return "subset" }

// Negotiate implements Stage.
func (s *SubsetStage) Negotiate(c *Contract) error {
	if len(s.Columns) == 0 {
		return fmt.Errorf("subset stage has no columns")
	}
	for _, name := range s.Columns {
		c.Variables[name] = true
		c.SubsetColumns[name] = true
	}
	return nil
}

// Execute implements Stage.
func (s *SubsetStage) Execute(p *Payload) error {
	s.Values = map[string][]float64{}
	for _, name := range s.Columns {
		vals, ok := p.Subset[name]
		if !ok {
			return fmt.Errorf("payload missing subset column %q", name)
		}
		s.Values[name] = vals
	}
	return nil
}

// PCPlotSink renders the stage's histograms as a parallel coordinates
// plot. It negotiates one histogram per adjacent axis pair.
type PCPlotSink struct {
	Axes    []pcoords.Axis
	Bins    int
	Binning histogram.Binning
	Color   color.RGBA
	Options pcoords.Options

	// Canvas is populated at Execute time.
	Canvas *render.Canvas

	offset int
}

// Name implements Stage.
func (s *PCPlotSink) Name() string { return "pcplot" }

// Negotiate implements Stage.
func (s *PCPlotSink) Negotiate(c *Contract) error {
	if len(s.Axes) < 2 {
		return fmt.Errorf("pcplot sink needs at least 2 axes")
	}
	if s.Bins <= 0 {
		return fmt.Errorf("pcplot sink needs a positive bin count")
	}
	s.offset = len(c.Hist2D)
	for i := 0; i < len(s.Axes)-1; i++ {
		a, b := s.Axes[i], s.Axes[i+1]
		c.Variables[a.Var] = true
		c.Variables[b.Var] = true
		spec := histogram.NewSpec2D(a.Var, b.Var, s.Bins, s.Bins).
			WithBinning(s.Binning).
			WithXRange(a.Min, a.Max).
			WithYRange(b.Min, b.Max)
		c.Hist2D = append(c.Hist2D, spec)
	}
	return nil
}

// Execute implements Stage.
func (s *PCPlotSink) Execute(p *Payload) error {
	n := len(s.Axes) - 1
	if s.offset+n > len(p.Hists) {
		return fmt.Errorf("payload carries %d histograms, need %d", len(p.Hists), s.offset+n)
	}
	opt := s.Options
	if opt.Width == 0 {
		opt = pcoords.DefaultOptions()
	}
	plot, err := pcoords.New(s.Axes, opt)
	if err != nil {
		return err
	}
	col := s.Color
	if col.A == 0 {
		col = color.RGBA{90, 200, 255, 255}
	}
	if err := plot.AddHistLayer(&pcoords.HistLayer{Hists: p.Hists[s.offset : s.offset+n], Color: col}); err != nil {
		return err
	}
	s.Canvas, err = plot.Render()
	return err
}
