package cluster

import (
	"context"
	"net"
	"testing"
	"time"

	"repro/internal/cluster/faultnet"
	"repro/internal/fastquery"
	"repro/internal/histogram"
	"repro/internal/obs"
)

// traceSpec is the histogram request used by the trace tests.
var traceSpec = histogram.Spec2D{XVar: "x", YVar: "y", XBins: 8, YBins: 8}

// tracedSweep runs one histogram sweep under a fresh trace and returns the
// completed span tree.
func tracedSweep(t *testing.T, p *Pool, steps []int) *obs.SpanData {
	t.Helper()
	tr := obs.NewTrace("", "request")
	ctx := obs.ContextWithSpan(context.Background(), tr.Root())
	if _, err := p.HistogramSweepCtx(ctx, steps, "", traceSpec, fastquery.FastBit); err != nil {
		t.Fatalf("sweep: %v", err)
	}
	tr.Root().End()
	return tr.Data()
}

// TestTracePropagationSlowWorker is the satellite acceptance scenario: a
// sweep over a faultnet-delayed worker must show that worker's remote span
// — produced on the worker from the propagated trace ID — inside the
// originating request's trace, under the slow worker's rpc-worker span.
func TestTracePropagationSlowWorker(t *testing.T) {
	dir := rpcDataset(t)
	const delay = 30 * time.Millisecond

	// Worker 0 plain, worker 1 behind a latency injector.
	var addrs []string
	var servers []*Server
	var fls []*faultnet.Listener
	defer func() {
		for _, s := range servers {
			s.Close()
		}
		for _, fl := range fls {
			fl.Kill()
		}
	}()
	for i := 0; i < 2; i++ {
		srv, err := NewServer(NewWorker(dir))
		if err != nil {
			t.Fatal(err)
		}
		servers = append(servers, srv)
		inner, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		var l net.Listener = inner
		if i == 1 {
			fl := faultnet.Wrap(inner, faultnet.Config{Seed: 7, Latency: delay})
			fls = append(fls, fl)
			l = fl
		}
		srv.Serve(l)
		addrs = append(addrs, inner.Addr().String())
	}

	cfg := DefaultPoolConfig()
	cfg.ProbeInterval = 0
	p, err := DialConfig(addrs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	// Steps 0 and 1 stride to workers 0 and 1 respectively.
	d := tracedSweep(t, p, []int{0, 1})

	// Both sweep steps must appear, and the slow worker's rpc-worker span
	// must contain a remote worker:hist2d subtree with worker-side stages.
	var slow *obs.SpanData
	d.Walk(func(sd *obs.SpanData) {
		if sd.Name == "rpc-worker" && sd.Attrs["worker"] == addrs[1] {
			slow = sd
		}
	})
	if slow == nil {
		t.Fatalf("no rpc-worker span for slow worker %s in trace:\n%+v", addrs[1], d)
	}
	remote := slow.Find("worker:hist2d")
	if remote == nil {
		t.Fatal("slow worker's remote span missing from originating trace")
	}
	if !remote.Remote {
		t.Error("remote worker span not marked Remote")
	}
	if remote.Find("gather-values") == nil {
		t.Error("worker-side stage spans missing from remote subtree")
	}
	// The rpc-worker wall time must reflect the injected latency (the
	// injector delays accept-side I/O on every connection round trip).
	if slow.DurationMS < float64(delay/time.Millisecond) {
		t.Errorf("slow rpc-worker span %.1fms, want >= %dms", slow.DurationMS, delay/time.Millisecond)
	}
	// Worker 0's remote span must also be present (trace ID propagated to
	// every step of the sweep, not just the slow one).
	found := 0
	d.Walk(func(sd *obs.SpanData) {
		if sd.Name == "worker:hist2d" {
			found++
		}
	})
	if found != 2 {
		t.Errorf("remote worker spans = %d, want 2", found)
	}
}

// TestTraceRetriesAreSiblingSpans verifies that when a flaky worker forces
// retries, each attempt appears as a sibling rpc-attempt span under the
// same rpc-worker span in the originating trace.
func TestTraceRetriesAreSiblingSpans(t *testing.T) {
	addrs, _, cleanup := faultyCluster(t, faultnet.Config{Seed: 11, ErrProb: 0.3})
	defer cleanup()

	cfg := DefaultPoolConfig()
	cfg.CallTimeout = 2 * time.Second
	cfg.MaxRetries = 4
	cfg.BackoffBase = time.Millisecond
	cfg.BackoffMax = 5 * time.Millisecond
	cfg.ProbeInterval = 0
	p, err := DialConfig(addrs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	// The injected 30% call-error rate makes a retry within a few sweeps
	// overwhelmingly likely; scan traces until one shows sibling attempts.
	for round := 0; round < 20; round++ {
		d := tracedSweep(t, p, sweepSteps(12, 5))
		var siblings *obs.SpanData
		d.Walk(func(sd *obs.SpanData) {
			if sd.Name != "rpc-worker" {
				return
			}
			attempts := 0
			for _, c := range sd.Children {
				if c.Name == "rpc-attempt" {
					attempts++
				}
			}
			if attempts >= 2 {
				siblings = sd
			}
		})
		if siblings != nil {
			// Attempts must be numbered in order under one worker span.
			first, second := siblings.Children[0], siblings.Children[1]
			if first.Attrs["attempt"] != "1" || second.Attrs["attempt"] != "2" {
				t.Fatalf("sibling attempts mis-numbered: %v, %v", first.Attrs, second.Attrs)
			}
			if first.Attrs["error"] == "" {
				t.Fatal("first of two attempts should carry the error that forced the retry")
			}
			return
		}
		// Workers marked unhealthy mid-round would change striding; reset.
		for _, c := range p.Callers() {
			c.SetHealthy(true)
		}
	}
	t.Fatal("no trace showed sibling rpc-attempt spans after 20 sweeps")
}
