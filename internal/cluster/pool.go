package cluster

import (
	"context"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fastquery"
	"repro/internal/histogram"
	"repro/internal/obs"
)

// This file implements the client side of the RPC execution mode: a pool
// of Callers with health tracking, failover and partial-result sweeps.
// Each step of a sweep is first sent to its strided home worker; if that
// worker fails (after the Caller's own retries) the step fails over to the
// next healthy worker and the failed worker is marked unhealthy until a
// background Worker.Ping probe revives it.

// PartialPolicy selects how sweeps treat per-step failures.
type PartialPolicy int

const (
	// FailFast aborts the sweep result on the first failed step (the
	// pre-resilience behaviour): callers get nil results and one error.
	FailFast PartialPolicy = iota
	// ReturnPartial returns every step that succeeded plus a *SweepError
	// describing the ones that did not.
	ReturnPartial
)

// PoolConfig tunes the pool's resilience machinery. The zero value means:
// no timeouts, no retries, no failover, no probing — plain net/rpc.
type PoolConfig struct {
	CallTimeout   time.Duration // per-attempt deadline; 0 waits forever
	MaxRetries    int           // per-worker retries after the first attempt
	BackoffBase   time.Duration // first retry delay (default 10ms when retrying)
	BackoffMax    time.Duration // retry delay cap (default 1s when retrying)
	MaxFailovers  int           // other workers to try per step: -1 = all, 0 = none
	Partial       PartialPolicy // FailFast or ReturnPartial
	ProbeInterval time.Duration // unhealthy-worker ping period; 0 disables probing
	Seed          int64         // backoff-jitter RNG seed (0 behaves as 1)

	// Breaker enables per-worker circuit breakers (zero value: disabled).
	Breaker BreakerConfig
	// RetryBudgetRatio > 0 enables the retry budget: tokens refilled per
	// successful call, spent by each retry, failover and hedge.
	RetryBudgetRatio float64
	// RetryBudgetBurst caps the retry-budget bucket (default 20).
	RetryBudgetBurst int
	// RetryBudget, when set, is shared with other pools (the frontend
	// shares one bucket across every shard pool, making the budget truly
	// global); it overrides RetryBudgetRatio/Burst.
	RetryBudget *RetryBudget
}

// DefaultPoolConfig returns the production defaults used by Dial.
func DefaultPoolConfig() PoolConfig {
	return PoolConfig{
		CallTimeout:   30 * time.Second,
		MaxRetries:    2,
		BackoffBase:   10 * time.Millisecond,
		BackoffMax:    500 * time.Millisecond,
		MaxFailovers:  -1,
		Partial:       FailFast,
		ProbeInterval: 200 * time.Millisecond,
		Seed:          1,
	}
}

// PoolStats is a cumulative snapshot of the pool's resilience counters.
type PoolStats struct {
	Calls      int64 // RPC attempts made
	Retries    int64 // attempts beyond the first, per worker
	Timeouts   int64 // attempts abandoned on deadline
	Reconnects int64 // re-dials of previously working connections
	Failovers  int64 // steps moved to another worker
	Hedges     int64 // extra staggered attempts raced against slow replicas
	Probes     int64 // health pings sent to unhealthy workers
	Recoveries int64 // workers probed back to health
}

// SweepStats describes the most recently completed sweep.
type SweepStats struct {
	Steps      int // steps requested
	Failed     int // steps that returned no result
	Attempts   int64
	Retries    int64
	Timeouts   int64
	Reconnects int64
	Failovers  int64
	Wall       time.Duration
}

// StepError records one failed step of a partial sweep.
type StepError struct {
	Index int // position in the steps slice
	Step  int // timestep number
	Err   error
}

// SweepError is the structured multi-error returned by sweeps under
// ReturnPartial: the successful steps are in the result slice, the failed
// ones are listed here.
type SweepError struct {
	Total  int // steps requested
	Failed []StepError
}

func (e *SweepError) Error() string {
	if len(e.Failed) == 0 {
		return "cluster: sweep failed (no step errors)"
	}
	return fmt.Sprintf("cluster: %d/%d steps failed; first: step %d: %v",
		len(e.Failed), e.Total, e.Failed[0].Step, e.Failed[0].Err)
}

// Unwrap exposes the per-step errors to errors.Is/As.
func (e *SweepError) Unwrap() []error {
	errs := make([]error, len(e.Failed))
	for i, f := range e.Failed {
		errs[i] = f.Err
	}
	return errs
}

type poolCounters struct {
	calls, retries, timeouts, reconnects, failovers, hedges, probes, recoveries atomic.Int64
}

// Pool is a client-side connection pool over a set of worker addresses.
type Pool struct {
	cfg     PoolConfig
	callers []*Caller
	budget  *RetryBudget // shared retry budget; nil = unlimited
	ctr     poolCounters

	mu        sync.Mutex
	lastSweep SweepStats

	closeOnce sync.Once
	stopProbe chan struct{}
}

// Dial connects to every worker address with DefaultPoolConfig.
func Dial(addrs []string) (*Pool, error) {
	return DialConfig(addrs, DefaultPoolConfig())
}

// DialConfig connects to every worker address, eagerly, so unreachable
// workers fail here rather than mid-sweep.
func DialConfig(addrs []string, cfg PoolConfig) (*Pool, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("cluster: no worker addresses")
	}
	p := &Pool{cfg: cfg, stopProbe: make(chan struct{})}
	p.budget = cfg.RetryBudget
	if p.budget == nil && cfg.RetryBudgetRatio > 0 {
		p.budget = NewRetryBudget(cfg.RetryBudgetRatio, cfg.RetryBudgetBurst)
	}
	rng := newLockedRand(cfg.Seed)
	ccfg := CallerConfig{
		Timeout:     cfg.CallTimeout,
		MaxRetries:  cfg.MaxRetries,
		BackoffBase: cfg.BackoffBase,
		BackoffMax:  cfg.BackoffMax,
	}
	for _, addr := range addrs {
		c := newCaller(addr, ccfg, rng)
		if cfg.Breaker.Enabled {
			c.br = newBreaker(addr, cfg.Breaker)
		}
		c.budget = p.budget
		if err := c.Connect(); err != nil {
			p.Close()
			return nil, fmt.Errorf("cluster: dial %s: %w", addr, err)
		}
		p.callers = append(p.callers, c)
	}
	if cfg.ProbeInterval > 0 {
		go p.probeLoop()
	}
	return p, nil
}

// Close closes all client connections and stops health probing. Close is
// idempotent and safe to call concurrently.
func (p *Pool) Close() {
	p.closeOnce.Do(func() {
		close(p.stopProbe)
		for _, c := range p.callers {
			c.Close()
		}
	})
}

// Nodes returns the number of connected workers.
func (p *Pool) Nodes() int { return len(p.callers) }

// Callers exposes the pool's per-worker callers, primarily so tests and
// harnesses can inspect or override health state.
func (p *Pool) Callers() []*Caller { return p.callers }

// HealthyNodes returns the number of workers currently believed healthy.
func (p *Pool) HealthyNodes() int {
	n := 0
	for _, c := range p.callers {
		if c.Healthy() {
			n++
		}
	}
	return n
}

// Stats returns a snapshot of the cumulative resilience counters.
func (p *Pool) Stats() PoolStats {
	return PoolStats{
		Calls:      p.ctr.calls.Load(),
		Retries:    p.ctr.retries.Load(),
		Timeouts:   p.ctr.timeouts.Load(),
		Reconnects: p.ctr.reconnects.Load(),
		Failovers:  p.ctr.failovers.Load(),
		Hedges:     p.ctr.hedges.Load(),
		Probes:     p.ctr.probes.Load(),
		Recoveries: p.ctr.recoveries.Load(),
	}
}

// LastSweepStats returns the stats of the most recently completed sweep.
// With concurrent sweeps on one pool the attribution is approximate.
func (p *Pool) LastSweepStats() SweepStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.lastSweep
}

// probeLoop pings unhealthy or breaker-open workers until the pool
// closes, restoring them to the failover rotation — and force-closing
// their breakers — when they answer.
func (p *Pool) probeLoop() {
	t := time.NewTicker(p.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-p.stopProbe:
			return
		case <-t.C:
			for _, c := range p.callers {
				if c.Healthy() && c.BreakerState() == BreakerClosed {
					continue
				}
				p.ctr.probes.Add(1)
				metricProbes.Inc()
				if err := c.Probe(); err == nil {
					if !c.Healthy() {
						p.ctr.recoveries.Add(1)
						metricRecoveries.Inc()
					}
					c.SetHealthy(true)
					c.br.Reset()
				}
			}
		}
	}
}

// candidates returns the workers to try for a step, primary first, then
// healthy workers in ring order, truncated per MaxFailovers. If every
// worker is unhealthy the primary is tried anyway — better a last-ditch
// attempt than certain failure.
func (p *Pool) candidates(primary int) []*Caller {
	n := len(p.callers)
	maxFo := p.cfg.MaxFailovers
	if maxFo < 0 || maxFo > n-1 {
		maxFo = n - 1
	}
	if maxFo == 0 {
		// Failover disabled: the step lives or dies with its home worker.
		return []*Caller{p.callers[primary]}
	}
	cands := make([]*Caller, 0, n)
	for off := 0; off < n; off++ {
		c := p.callers[(primary+off)%n]
		if c.Healthy() {
			cands = append(cands, c)
		}
	}
	if len(cands) == 0 {
		cands = append(cands, p.callers[primary])
	}
	if len(cands) > maxFo+1 {
		cands = cands[:maxFo+1]
	}
	return cands
}

// callStep runs one step's RPC with failover across candidate workers. A
// done ctx stops the failover walk early: trying further workers for a
// result nobody wants is pure waste. Each candidate worker gets its own
// "rpc-worker" span under the step's span, so failovers appear as
// siblings in the originating trace.
func (p *Pool) callStep(ctx context.Context, i, step int, do func(ctx context.Context, c *Caller) (CallStats, error)) error {
	ctx, ssp := obs.StartSpan(ctx, "sweep-step")
	ssp.SetAttr("step", strconv.Itoa(step))
	defer ssp.End()
	var lastErr error
	attempted := 0
	for k, c := range p.candidates(i % len(p.callers)) {
		if err := ctx.Err(); err != nil {
			if lastErr != nil {
				return lastErr
			}
			return err
		}
		if !c.br.Allow() {
			// Known-dead replica: skip it in microseconds instead of paying
			// a dial timeout; half-open probes are admitted by the breaker.
			lastErr = fmt.Errorf("cluster: %s: %w", c.Addr(), ErrBreakerOpen)
			continue
		}
		if attempted > 0 && !p.budget.Spend() {
			// Extra attempts beyond the first spend the shared retry budget.
			c.br.Drop()
			return lastErr
		}
		wctx, wsp := obs.StartSpan(ctx, "rpc-worker")
		wsp.SetAttr("worker", c.Addr())
		if k > 0 {
			p.ctr.failovers.Add(1)
			metricFailovers.Inc()
			wsp.SetAttr("failover", "true")
		}
		cs, err := do(wctx, c)
		attempted++
		p.ctr.calls.Add(int64(cs.Attempts))
		p.ctr.retries.Add(int64(cs.Attempts - 1))
		p.ctr.timeouts.Add(int64(cs.Timeouts))
		p.ctr.reconnects.Add(int64(cs.Reconnects))
		metricRPCCalls.Add(uint64(cs.Attempts))
		if cs.Attempts > 1 {
			metricRetries.Add(uint64(cs.Attempts - 1))
		}
		metricTimeouts.Add(uint64(cs.Timeouts))
		metricReconnects.Add(uint64(cs.Reconnects))
		if err != nil {
			wsp.SetAttr("error", err.Error())
		}
		wsp.End()
		c.breakerRecord(err, ctx.Err() != nil)
		if err == nil {
			return nil
		}
		lastErr = err
		if fastquery.IsFatal(err) {
			// The request itself is bad; every worker would refuse it.
			return err
		}
		if fastquery.IsExhausted(err) {
			// The deadline budget is spent; no worker can conjure more time.
			return err
		}
		if ctx.Err() != nil {
			// The attempt died because the sweep was canceled, not because
			// the worker is sick; don't penalise its health.
			return lastErr
		}
		c.SetHealthy(false)
	}
	return lastErr
}

// sweep runs do for every step concurrently and resolves errors per the
// pool's PartialPolicy.
func (p *Pool) sweep(ctx context.Context, steps []int, do func(ctx context.Context, c *Caller, i, step int) (CallStats, error)) error {
	start := time.Now()
	before := p.Stats()
	errs := make([]error, len(steps))
	var wg sync.WaitGroup
	for i, step := range steps {
		wg.Add(1)
		go func(i, step int) {
			defer wg.Done()
			errs[i] = p.callStep(ctx, i, step, func(ctx context.Context, c *Caller) (CallStats, error) {
				return do(ctx, c, i, step)
			})
		}(i, step)
	}
	wg.Wait()
	after := p.Stats()

	var failed []StepError
	for i, err := range errs {
		if err != nil {
			failed = append(failed, StepError{Index: i, Step: steps[i], Err: err})
		}
	}
	p.mu.Lock()
	p.lastSweep = SweepStats{
		Steps:      len(steps),
		Failed:     len(failed),
		Attempts:   after.Calls - before.Calls,
		Retries:    after.Retries - before.Retries,
		Timeouts:   after.Timeouts - before.Timeouts,
		Reconnects: after.Reconnects - before.Reconnects,
		Failovers:  after.Failovers - before.Failovers,
		Wall:       time.Since(start),
	}
	p.mu.Unlock()

	if len(failed) == 0 {
		return nil
	}
	if p.cfg.Partial == ReturnPartial {
		return &SweepError{Total: len(steps), Failed: failed}
	}
	f := failed[0]
	return fmt.Errorf("cluster: step %d: %w", f.Step, f.Err)
}

// HistogramSweep computes one histogram per step, strided across the
// workers with retry and failover. Under FailFast any step failure yields
// (nil, err); under ReturnPartial the slice holds every successful step
// (failed entries nil) and err is a *SweepError.
func (p *Pool) HistogramSweep(steps []int, cond string, spec histogram.Spec2D, backend fastquery.Backend) ([]*histogram.Hist2D, error) {
	return p.HistogramSweepCtx(context.Background(), steps, cond, spec, backend)
}

// HistogramSweepCtx is HistogramSweep with caller-supplied cancellation:
// a done ctx abandons in-flight RPCs and skips pending retries and
// failovers across every step of the sweep.
func (p *Pool) HistogramSweepCtx(ctx context.Context, steps []int, cond string, spec histogram.Spec2D, backend fastquery.Backend) ([]*histogram.Hist2D, error) {
	out := make([]*histogram.Hist2D, len(steps))
	err := p.sweep(ctx, steps, func(ctx context.Context, c *Caller, i, step int) (CallStats, error) {
		var reply HistReply
		cs, callErr := c.CallWithStatsCtx(ctx, "Worker.Histogram2D", &HistArgs{
			Step: step, Cond: cond, Spec: spec, Backend: backend,
			TraceID: obs.SpanFromContext(ctx).TraceID(),
		}, &reply)
		obs.SpanFromContext(ctx).AttachRemote(reply.Trace)
		if callErr == nil {
			out[i] = reply.Hist
		}
		return cs, callErr
	})
	if err != nil {
		if p.cfg.Partial == ReturnPartial {
			return out, err
		}
		return nil, err
	}
	return out, nil
}

// SelectSweep evaluates the query on every step, strided across the
// workers with retry and failover, returning per-step hit positions and
// (optionally) identifiers. Error semantics match HistogramSweep.
func (p *Pool) SelectSweep(steps []int, q string, wantIDs bool, backend fastquery.Backend) ([]SelectReply, error) {
	return p.SelectSweepCtx(context.Background(), steps, q, wantIDs, backend)
}

// SelectSweepCtx is SelectSweep with caller-supplied cancellation; see
// HistogramSweepCtx.
func (p *Pool) SelectSweepCtx(ctx context.Context, steps []int, q string, wantIDs bool, backend fastquery.Backend) ([]SelectReply, error) {
	out := make([]SelectReply, len(steps))
	err := p.sweep(ctx, steps, func(ctx context.Context, c *Caller, i, step int) (CallStats, error) {
		var reply SelectReply
		cs, callErr := c.CallWithStatsCtx(ctx, "Worker.Select", &SelectArgs{
			Step: step, Query: q, WantIDs: wantIDs, Backend: backend,
			TraceID: obs.SpanFromContext(ctx).TraceID(),
		}, &reply)
		obs.SpanFromContext(ctx).AttachRemote(reply.Trace)
		if callErr == nil {
			out[i] = reply
		}
		return cs, callErr
	})
	if err != nil {
		if p.cfg.Partial == ReturnPartial {
			return out, err
		}
		return nil, err
	}
	return out, nil
}

// TrackSweep locates the identifier set in every step, strided across the
// workers with retry and failover; it returns per-step positions. Error
// semantics match HistogramSweep.
func (p *Pool) TrackSweep(steps []int, ids []int64, backend fastquery.Backend) ([][]uint64, error) {
	return p.TrackSweepCtx(context.Background(), steps, ids, backend)
}

// TrackSweepCtx is TrackSweep with caller-supplied cancellation; see
// HistogramSweepCtx.
func (p *Pool) TrackSweepCtx(ctx context.Context, steps []int, ids []int64, backend fastquery.Backend) ([][]uint64, error) {
	out := make([][]uint64, len(steps))
	err := p.sweep(ctx, steps, func(ctx context.Context, c *Caller, i, step int) (CallStats, error) {
		var reply FindReply
		cs, callErr := c.CallWithStatsCtx(ctx, "Worker.FindIDs", &FindArgs{
			Step: step, IDs: ids, Backend: backend,
			TraceID: obs.SpanFromContext(ctx).TraceID(),
		}, &reply)
		obs.SpanFromContext(ctx).AttachRemote(reply.Trace)
		if callErr == nil {
			out[i] = reply.Positions
		}
		return cs, callErr
	})
	if err != nil {
		if p.cfg.Partial == ReturnPartial {
			return out, err
		}
		return nil, err
	}
	return out, nil
}
