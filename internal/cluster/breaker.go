package cluster

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/obs"
)

// This file implements a per-worker circuit breaker. A dead or sick
// replica makes every call pay its dial timeout before failover; with a
// breaker the first few failures trip the circuit and subsequent scatter
// calls skip the replica in microseconds, failing over (or failing fast
// into the partial-merge path) immediately. After a cooldown the breaker
// admits a bounded number of half-open probe requests; one success closes
// the circuit, a failure re-opens it for another cooldown.

// ErrBreakerOpen is returned when a call is refused because every
// candidate replica's circuit breaker is open.
var ErrBreakerOpen = errors.New("cluster: circuit breaker open")

// BreakerState is the circuit state of one worker's breaker.
type BreakerState int32

const (
	BreakerClosed BreakerState = iota
	BreakerHalfOpen
	BreakerOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerHalfOpen:
		return "half-open"
	case BreakerOpen:
		return "open"
	}
	return fmt.Sprintf("BreakerState(%d)", int32(s))
}

// BreakerConfig tunes one worker's circuit breaker. The zero value
// (Enabled false) disables breakers entirely.
type BreakerConfig struct {
	Enabled             bool
	ConsecutiveFailures int           // trip after this many consecutive failures (default 5)
	FailureRate         float64       // trip when the windowed failure rate reaches this (default 0.5)
	Window              int           // rolling outcome window size (default 20)
	MinSamples          int           // outcomes required before the rate can trip (default 10)
	Cooldown            time.Duration // open → half-open delay (default 1s)
	HalfOpenProbes      int           // concurrent requests admitted half-open (default 1)
}

// DefaultBreakerConfig returns the production breaker settings.
func DefaultBreakerConfig() BreakerConfig {
	return BreakerConfig{
		Enabled:             true,
		ConsecutiveFailures: 5,
		FailureRate:         0.5,
		Window:              20,
		MinSamples:          10,
		Cooldown:            time.Second,
		HalfOpenProbes:      1,
	}
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	d := DefaultBreakerConfig()
	if c.ConsecutiveFailures <= 0 {
		c.ConsecutiveFailures = d.ConsecutiveFailures
	}
	if c.FailureRate <= 0 || c.FailureRate > 1 {
		c.FailureRate = d.FailureRate
	}
	if c.Window <= 0 {
		c.Window = d.Window
	}
	if c.MinSamples <= 0 {
		c.MinSamples = d.MinSamples
	}
	if c.Cooldown <= 0 {
		c.Cooldown = d.Cooldown
	}
	if c.HalfOpenProbes <= 0 {
		c.HalfOpenProbes = d.HalfOpenProbes
	}
	return c
}

// Breaker is a closed/open/half-open circuit breaker for one worker.
// Callers must pair every admitted request (Allow returning true) with
// exactly one outcome call: Success, Failure, or Drop.
type Breaker struct {
	cfg   BreakerConfig
	gauge *obs.Gauge // cluster_breaker_state{worker=...}

	mu       sync.Mutex
	state    BreakerState
	consec   int    // consecutive failures while closed
	win      []bool // rolling outcome ring; true = failure
	widx     int
	wlen     int
	wfails   int
	openedAt time.Time
	probes   int // half-open requests in flight
}

func newBreaker(addr string, cfg BreakerConfig) *Breaker {
	cfg = cfg.withDefaults()
	b := &Breaker{cfg: cfg, gauge: breakerStateFor(addr), win: make([]bool, cfg.Window)}
	b.gauge.Set(float64(BreakerClosed))
	return b
}

// Allow reports whether a request may proceed. In the open state it
// transitions to half-open once the cooldown has elapsed; in half-open it
// admits up to HalfOpenProbes concurrent probes. Allow is nil-safe.
func (b *Breaker) Allow() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if time.Since(b.openedAt) < b.cfg.Cooldown {
			return false
		}
		b.setState(BreakerHalfOpen)
		b.probes = 1
		return true
	default: // BreakerHalfOpen
		if b.probes >= b.cfg.HalfOpenProbes {
			return false
		}
		b.probes++
		return true
	}
}

// Success records a successful outcome for an admitted request. In the
// half-open state the probe's success closes the circuit.
func (b *Breaker) Success() {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		b.consec = 0
		b.record(false)
	case BreakerHalfOpen:
		b.release()
		b.close()
	}
	// Open: a straggler from before the trip; it carries no fresh signal.
}

// Failure records a failed outcome. While closed it trips the circuit on
// ConsecutiveFailures in a row or on the windowed failure rate; a failed
// half-open probe re-opens the circuit for another cooldown.
func (b *Breaker) Failure() {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		b.consec++
		b.record(true)
		rate := 0.0
		if b.wlen > 0 {
			rate = float64(b.wfails) / float64(b.wlen)
		}
		if b.consec >= b.cfg.ConsecutiveFailures ||
			(b.wlen >= b.cfg.MinSamples && rate >= b.cfg.FailureRate) {
			b.trip()
		}
	case BreakerHalfOpen:
		b.release()
		b.trip()
	}
}

// Drop releases an admitted request without judging the worker — the
// attempt died with its caller (cancellation), which says nothing about
// replica health.
func (b *Breaker) Drop() {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerHalfOpen {
		b.release()
	}
}

// Reset force-closes the circuit, used when a background health probe
// confirms the worker answers again.
func (b *Breaker) Reset() {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != BreakerClosed {
		b.close()
	}
}

// State returns the current circuit state. Nil-safe: a nil breaker reads
// as closed, so disabled breakers never block traffic.
func (b *Breaker) State() BreakerState {
	if b == nil {
		return BreakerClosed
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// record pushes one outcome into the rolling window. Caller holds b.mu.
func (b *Breaker) record(fail bool) {
	if b.wlen == len(b.win) {
		if b.win[b.widx] {
			b.wfails--
		}
	} else {
		b.wlen++
	}
	b.win[b.widx] = fail
	if fail {
		b.wfails++
	}
	b.widx = (b.widx + 1) % len(b.win)
}

// trip opens the circuit. Caller holds b.mu.
func (b *Breaker) trip() {
	b.setState(BreakerOpen)
	b.openedAt = time.Now()
	b.probes = 0
	metricBreakerTrips.Inc()
}

// close resets the circuit to closed with a clean window. Caller holds b.mu.
func (b *Breaker) close() {
	b.setState(BreakerClosed)
	b.consec = 0
	b.wlen, b.wfails, b.widx = 0, 0, 0
	b.probes = 0
}

// release frees one half-open probe slot. Caller holds b.mu.
func (b *Breaker) release() {
	if b.probes > 0 {
		b.probes--
	}
}

// setState moves the state machine and keeps the gauges honest. Caller
// holds b.mu.
func (b *Breaker) setState(s BreakerState) {
	if b.state == s {
		return
	}
	if s == BreakerOpen {
		metricBreakerOpen.Add(1)
	} else if b.state == BreakerOpen {
		metricBreakerOpen.Add(-1)
	}
	b.state = s
	b.gauge.Set(float64(s))
}
