package cluster

import (
	"context"
	"fmt"
	"reflect"
	"time"

	"repro/internal/fastquery"
	"repro/internal/obs"
)

// This file adds a generic single-call primitive to the pool, used by the
// sharded serving tier: one RPC against a primary worker with failover
// across its replicas, optionally hedged — after a stagger delay a second
// replica is raced against the slow first attempt, the Google "tail at
// scale" trade of a little extra work for a much tighter p99.

// CallOn makes one RPC with the pool's resilience machinery: the primary
// (by index, ring order) is tried first, then the remaining healthy
// workers per MaxFailovers. With hedge > 0 and more than one candidate,
// attempts are raced: each additional replica is launched when the stagger
// elapses (or immediately when an attempt fails), and the first success
// wins. Replies of losing attempts are discarded — each attempt decodes
// into its own value, and only the winner is copied into reply.
func (p *Pool) CallOn(ctx context.Context, primary int, method string, args, reply any, hedge time.Duration) error {
	cands := p.candidates(primary % len(p.callers))
	if hedge > 0 && len(cands) > 1 {
		return p.callHedged(ctx, cands, method, args, reply, hedge)
	}
	var lastErr error
	attempted := 0
	for k, c := range cands {
		if err := ctx.Err(); err != nil {
			if lastErr != nil {
				return lastErr
			}
			return err
		}
		if !c.br.Allow() {
			// Known-dead replica: skip in microseconds, no dial timeout.
			lastErr = fmt.Errorf("cluster: %s: %w", c.Addr(), ErrBreakerOpen)
			continue
		}
		if attempted > 0 && !p.budget.Spend() {
			// Failover is an extra attempt; it spends the retry budget.
			c.br.Drop()
			return lastErr
		}
		wctx, wsp := obs.StartSpan(ctx, "rpc-worker")
		wsp.SetAttr("worker", c.Addr())
		if k > 0 {
			p.ctr.failovers.Add(1)
			metricFailovers.Inc()
			wsp.SetAttr("failover", "true")
		}
		cs, err := c.CallWithStatsCtx(wctx, method, args, reply)
		attempted++
		p.account(cs)
		if err != nil {
			wsp.SetAttr("error", err.Error())
		}
		wsp.End()
		c.breakerRecord(err, ctx.Err() != nil)
		if err == nil {
			return nil
		}
		lastErr = err
		if fastquery.IsFatal(err) {
			// The request itself is bad; every replica would refuse it.
			return err
		}
		if fastquery.IsExhausted(err) {
			// The deadline budget is spent; no replica has more time to give.
			return err
		}
		if ctx.Err() != nil {
			// The attempt died with the caller, not the worker.
			return lastErr
		}
		c.SetHealthy(false)
	}
	return lastErr
}

// account folds one attempt's CallStats into the pool counters and the
// process-wide metrics.
func (p *Pool) account(cs CallStats) {
	p.ctr.calls.Add(int64(cs.Attempts))
	p.ctr.retries.Add(int64(cs.Attempts - 1))
	p.ctr.timeouts.Add(int64(cs.Timeouts))
	p.ctr.reconnects.Add(int64(cs.Reconnects))
	metricRPCCalls.Add(uint64(cs.Attempts))
	if cs.Attempts > 1 {
		metricRetries.Add(uint64(cs.Attempts - 1))
	}
	metricTimeouts.Add(uint64(cs.Timeouts))
	metricReconnects.Add(uint64(cs.Reconnects))
}

// callHedged races staggered attempts across the candidate replicas.
func (p *Pool) callHedged(ctx context.Context, cands []*Caller, method string, args, reply any, hedge time.Duration) error {
	hctx, cancel := context.WithCancel(ctx)
	defer cancel()

	type attempt struct {
		reply any
		err   error
		c     *Caller
	}
	// Buffered to the attempt count so losers never block after the
	// winner returns and this function has moved on.
	results := make(chan attempt, len(cands))
	run := func(k int, c *Caller) {
		go func() {
			wctx, wsp := obs.StartSpan(hctx, "rpc-worker")
			wsp.SetAttr("worker", c.Addr())
			if k > 0 {
				wsp.SetAttr("hedge", "true")
			}
			r := reflect.New(reflect.TypeOf(reply).Elem()).Interface()
			cs, err := c.CallWithStatsCtx(wctx, method, args, r)
			p.account(cs)
			if err != nil {
				wsp.SetAttr("error", err.Error())
			}
			wsp.End()
			c.breakerRecord(err, hctx.Err() != nil)
			results <- attempt{r, err, c}
		}()
	}
	launched, started, pending := 0, 0, 0
	var lastErr error
	// launchNext starts the next candidate whose breaker admits the
	// attempt. Every attempt beyond the first spends the shared retry
	// budget; an empty budget stops hedging and failover alike.
	launchNext := func() bool {
		for launched < len(cands) {
			k := launched
			c := cands[k]
			if !c.br.Allow() {
				lastErr = fmt.Errorf("cluster: %s: %w", c.Addr(), ErrBreakerOpen)
				launched++
				continue
			}
			if started > 0 && !p.budget.Spend() {
				c.br.Drop()
				return false
			}
			launched++
			started++
			pending++
			run(k, c)
			return true
		}
		return false
	}
	if !launchNext() {
		// Every replica's breaker refused the first attempt.
		return lastErr
	}
	timer := time.NewTimer(hedge)
	defer timer.Stop()
	for pending > 0 {
		select {
		case <-timer.C:
			if launchNext() {
				p.ctr.hedges.Add(1)
				metricHedges.Inc()
				timer.Reset(hedge)
			}
		case res := <-results:
			pending--
			if res.err == nil {
				reflect.ValueOf(reply).Elem().Set(reflect.ValueOf(res.reply).Elem())
				return nil
			}
			lastErr = res.err
			if fastquery.IsFatal(res.err) || fastquery.IsExhausted(res.err) {
				return res.err
			}
			if hctx.Err() == nil {
				res.c.SetHealthy(false)
			}
			if launchNext() {
				// A failed attempt frees its slot to the next replica
				// immediately; no need to wait out the stagger.
				p.ctr.failovers.Add(1)
				metricFailovers.Inc()
			}
		case <-ctx.Done():
			if lastErr != nil {
				return lastErr
			}
			return ctx.Err()
		}
	}
	return lastErr
}
