package cluster

import (
	"os"
	"sync"
	"testing"

	"repro/internal/fastbit"
	"repro/internal/fastquery"
	"repro/internal/histogram"
	"repro/internal/query"
	"repro/internal/sim"
)

var (
	rpcOnce sync.Once
	rpcDir  string
	rpcErr  error
)

func rpcDataset(t *testing.T) string {
	t.Helper()
	rpcOnce.Do(func() {
		dir, err := os.MkdirTemp("", "cluster-test-*")
		if err != nil {
			rpcErr = err
			return
		}
		cfg := sim.DefaultConfig()
		cfg.Steps = 5
		cfg.BackgroundPerStep = 1500
		cfg.BeamParticles = 40
		_, rpcErr = sim.WriteDataset(dir, cfg, sim.WriteOptions{
			Index: fastbit.IndexOptions{Bins: 32},
		})
		rpcDir = dir
	})
	if rpcErr != nil {
		t.Fatal(rpcErr)
	}
	return rpcDir
}

func TestMain(m *testing.M) {
	code := m.Run()
	if rpcDir != "" {
		os.RemoveAll(rpcDir)
	}
	os.Exit(code)
}

func TestRPCHistogramSweep(t *testing.T) {
	dir := rpcDataset(t)
	addrs, shutdown, err := StartLocalWorkers(3, dir)
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()
	pool, err := Dial(addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	if pool.Nodes() != 3 {
		t.Fatalf("Nodes = %d", pool.Nodes())
	}

	steps := []int{0, 1, 2, 3, 4}
	spec := histogram.NewSpec2D("x", "px", 16, 16)
	hists, err := pool.HistogramSweep(steps, "", spec, fastquery.FastBit)
	if err != nil {
		t.Fatal(err)
	}
	if len(hists) != 5 {
		t.Fatalf("histograms = %d", len(hists))
	}
	// Cross-check one step against a local computation.
	src, err := fastquery.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	st, err := src.OpenStep(2)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	want, err := st.Histogram2D(nil, spec, fastquery.FastBit)
	if err != nil {
		t.Fatal(err)
	}
	if hists[2].Total() != want.Total() {
		t.Fatalf("RPC histogram total %d, local %d", hists[2].Total(), want.Total())
	}
	for i := range want.Counts {
		if hists[2].Counts[i] != want.Counts[i] {
			t.Fatalf("RPC histogram bin %d differs", i)
		}
	}
}

func TestRPCConditionalHistogram(t *testing.T) {
	dir := rpcDataset(t)
	addrs, shutdown, err := StartLocalWorkers(2, dir)
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()
	pool, err := Dial(addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	spec := histogram.NewSpec2D("x", "px", 8, 8)
	hists, err := pool.HistogramSweep([]int{4}, "px > 1e9", spec, fastquery.FastBit)
	if err != nil {
		t.Fatal(err)
	}
	if hists[0].Total() == 0 {
		t.Fatal("conditional histogram empty")
	}
	// Bad query surfaces as an error.
	if _, err := pool.HistogramSweep([]int{0}, "px >", spec, fastquery.FastBit); err == nil {
		t.Fatal("bad query accepted over RPC")
	}
	if _, err := pool.HistogramSweep([]int{99}, "", spec, fastquery.FastBit); err == nil {
		t.Fatal("bad step accepted over RPC")
	}
}

func TestRPCTrackSweep(t *testing.T) {
	dir := rpcDataset(t)
	// Pick real identifiers from the last step.
	src, err := fastquery.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	st, err := src.OpenStep(4)
	if err != nil {
		t.Fatal(err)
	}
	ids, err := st.SelectIDs(query.MustParse("px > 5e10"), fastquery.FastBit)
	st.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) == 0 {
		t.Fatal("no ids to track")
	}
	if len(ids) > 20 {
		ids = ids[:20]
	}

	addrs, shutdown, err := StartLocalWorkers(2, dir)
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()
	pool, err := Dial(addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	steps := []int{0, 1, 2, 3, 4}
	posPerStep, err := pool.TrackSweep(steps, ids, fastquery.FastBit)
	if err != nil {
		t.Fatal(err)
	}
	if len(posPerStep) != 5 {
		t.Fatalf("steps = %d", len(posPerStep))
	}
	// At the selection step every id must be found.
	if len(posPerStep[4]) != len(ids) {
		t.Fatalf("step 4 found %d of %d", len(posPerStep[4]), len(ids))
	}
	// Cross-check against the scan backend.
	scanPos, err := pool.TrackSweep([]int{4}, ids, fastquery.Scan)
	if err != nil {
		t.Fatal(err)
	}
	if len(scanPos[0]) != len(posPerStep[4]) {
		t.Fatalf("backends disagree: %d vs %d", len(scanPos[0]), len(posPerStep[4]))
	}
	for i := range scanPos[0] {
		if scanPos[0][i] != posPerStep[4][i] {
			t.Fatalf("position %d differs", i)
		}
	}
}

func TestDialFailure(t *testing.T) {
	if _, err := Dial([]string{"127.0.0.1:1"}); err == nil {
		t.Fatal("dial to closed port succeeded")
	}
}

func TestWorkerBadDataset(t *testing.T) {
	w := NewWorker(t.TempDir())
	var reply HistReply
	if err := w.Histogram2D(&HistArgs{Step: 0, Spec: histogram.NewSpec2D("x", "px", 4, 4)}, &reply); err == nil {
		t.Fatal("missing dataset accepted")
	}
	var freply FindReply
	if err := w.FindIDs(&FindArgs{Step: 0, IDs: []int64{1}}, &freply); err == nil {
		t.Fatal("missing dataset accepted")
	}
}

func TestRPCSelectSweep(t *testing.T) {
	dir := rpcDataset(t)
	addrs, shutdown, err := StartLocalWorkers(2, dir)
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()
	pool, err := Dial(addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	steps := []int{0, 2, 4}
	replies, err := pool.SelectSweep(steps, "px > 1e9", true, fastquery.FastBit)
	if err != nil {
		t.Fatal(err)
	}
	if len(replies) != 3 {
		t.Fatalf("replies = %d", len(replies))
	}
	for i, r := range replies {
		if len(r.IDs) != len(r.Positions) {
			t.Fatalf("step %d: %d ids for %d positions", steps[i], len(r.IDs), len(r.Positions))
		}
	}
	// The accelerated population grows over time.
	if len(replies[2].Positions) <= len(replies[0].Positions) {
		t.Fatalf("selection did not grow: %d -> %d", len(replies[0].Positions), len(replies[2].Positions))
	}
	// Cross-check against local evaluation.
	src, err := fastquery.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	st, err := src.OpenStep(4)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	want, err := st.Select(query.MustParse("px > 1e9"), fastquery.FastBit)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != len(replies[2].Positions) {
		t.Fatalf("RPC %d vs local %d", len(replies[2].Positions), len(want))
	}
	// Bad query errors.
	if _, err := pool.SelectSweep([]int{0}, "px >", false, fastquery.FastBit); err == nil {
		t.Fatal("bad query accepted")
	}
}
