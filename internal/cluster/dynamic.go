package cluster

import (
	"container/heap"
	"sort"
	"time"
)

// This file models dynamic (pull-based) task scheduling, the alternative
// to the paper's static strided assignment — one of the "different avenues
// for parallelizing" its future-work section considers. Tasks are handed
// to the earliest-free node; LPT additionally sorts tasks longest-first,
// the classic makespan heuristic.

// nodeHeap is a min-heap of node completion times.
type nodeHeap []time.Duration

func (h nodeHeap) Len() int            { return len(h) }
func (h nodeHeap) Less(i, j int) bool  { return h[i] < h[j] }
func (h nodeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x interface{}) { *h = append(*h, x.(time.Duration)) }
func (h *nodeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// DynamicMakespan returns the completion time of list scheduling: each
// task (in order) goes to the node that frees up first.
func DynamicMakespan(results []Result, nodes int) time.Duration {
	return listSchedule(durations(results), nodes)
}

// LPTMakespan returns the completion time of longest-processing-time
// scheduling: tasks sorted descending, then list-scheduled.
func LPTMakespan(results []Result, nodes int) time.Duration {
	ds := durations(results)
	sort.Slice(ds, func(i, j int) bool { return ds[i] > ds[j] })
	return listSchedule(ds, nodes)
}

func durations(results []Result) []time.Duration {
	ds := make([]time.Duration, len(results))
	for i, r := range results {
		ds[i] = r.Total()
	}
	return ds
}

func listSchedule(tasks []time.Duration, nodes int) time.Duration {
	if nodes < 1 {
		nodes = 1
	}
	h := make(nodeHeap, nodes)
	heap.Init(&h)
	var worst time.Duration
	for _, d := range tasks {
		t := heap.Pop(&h).(time.Duration) + d
		heap.Push(&h, t)
		if t > worst {
			worst = t
		}
	}
	return worst
}

// ScheduleComparison evaluates static strided, static blocked, dynamic
// and LPT scheduling over the same measured results.
type ScheduleComparison struct {
	Nodes   int
	Strided time.Duration
	Blocked time.Duration
	Dynamic time.Duration
	LPT     time.Duration
}

// CompareSchedules evaluates all four strategies at each node count.
func CompareSchedules(results []Result, nodeCounts []int) []ScheduleComparison {
	out := make([]ScheduleComparison, 0, len(nodeCounts))
	for _, n := range nodeCounts {
		out = append(out, ScheduleComparison{
			Nodes:   n,
			Strided: Makespan(results, Strided(len(results), n)),
			Blocked: Makespan(results, Blocked(len(results), n)),
			Dynamic: DynamicMakespan(results, n),
			LPT:     LPTMakespan(results, n),
		})
	}
	return out
}
