package cluster

import "sync"

// This file implements a global retry budget: a token bucket refilled as
// a fraction of successful calls and spent by every retry, failover and
// hedge. During a brownout naive retry policies multiply offered load
// exactly when the fleet can least afford it; with a budget the extra
// attempts are bounded to RetryBudgetRatio of the recent success rate,
// and once the bucket is empty calls fail fast into the partial-merge
// path instead of amplifying the storm.

// RetryBudget is a token bucket shared by every caller of a pool (or,
// via PoolConfig.RetryBudget, across many pools — the per-process global
// budget the frontend uses). A nil *RetryBudget is an unlimited budget.
type RetryBudget struct {
	mu     sync.Mutex
	ratio  float64 // tokens added per successful call
	burst  float64 // token cap
	tokens float64
}

// NewRetryBudget builds a bucket that starts full: each success refills
// ratio tokens up to burst, each extra attempt spends one. burst <= 0
// defaults to 20.
func NewRetryBudget(ratio float64, burst int) *RetryBudget {
	if burst <= 0 {
		burst = 20
	}
	b := &RetryBudget{ratio: ratio, burst: float64(burst), tokens: float64(burst)}
	metricRetryBudgetTokens.Set(b.tokens)
	return b
}

// Success credits the bucket for one successful call.
func (b *RetryBudget) Success() {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.tokens += b.ratio
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	metricRetryBudgetTokens.Set(b.tokens)
	b.mu.Unlock()
}

// Spend takes one token for a retry, failover or hedge. It reports false
// — and the caller must skip the extra attempt — when the bucket is
// empty.
func (b *RetryBudget) Spend() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.tokens < 1 {
		metricRetryBudgetExhausted.Inc()
		return false
	}
	b.tokens--
	metricRetryBudgetTokens.Set(b.tokens)
	return true
}

// Tokens returns the current token count, for stats and tests.
func (b *RetryBudget) Tokens() float64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.tokens
}
