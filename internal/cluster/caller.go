package cluster

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/rpc"
	"reflect"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fastquery"
	"repro/internal/obs"
)

// This file implements Caller, a resilient wrapper around rpc.Client. A
// net/rpc call has no deadline and a dead connection poisons the client
// forever; Caller adds per-attempt timeouts (goroutine + select, since
// net/rpc predates contexts), bounded retries with exponential backoff and
// jitter, and automatic reconnection, so a slow or flapping worker cannot
// hang a sweep.

// ErrCallTimeout marks an RPC attempt abandoned after CallerConfig.Timeout.
var ErrCallTimeout = errors.New("call timeout")

// ErrCallerClosed is returned by calls on a closed Caller.
var ErrCallerClosed = errors.New("caller closed")

// CallerConfig tunes one worker connection's resilience behaviour.
type CallerConfig struct {
	Timeout     time.Duration // per-attempt deadline; 0 waits forever
	MaxRetries  int           // additional attempts after the first
	BackoffBase time.Duration // delay before the first retry (default 10ms)
	BackoffMax  time.Duration // backoff cap (default 1s)
}

// CallStats reports what one logical call cost.
type CallStats struct {
	Attempts   int // total RPC attempts, including the first
	Timeouts   int // attempts abandoned on timeout
	Reconnects int // re-dials after a previously working connection died
}

// Caller is a resilient RPC client for one worker address.
type Caller struct {
	addr       string
	cfg        CallerConfig
	rng        *lockedRand
	rpcSeconds *obs.Histogram // per-worker attempt latency
	br         *Breaker       // circuit breaker; nil = disabled
	budget     *RetryBudget   // retry budget; nil = unlimited

	mu        sync.Mutex
	client    *rpc.Client
	connected bool // ever connected; distinguishes reconnects from the first dial
	closed    bool

	healthy atomic.Bool
}

// NewCaller creates a Caller for the address. The connection is dialled
// lazily on first use (or eagerly via Connect).
func NewCaller(addr string, cfg CallerConfig) *Caller {
	return newCaller(addr, cfg, newLockedRand(1))
}

func newCaller(addr string, cfg CallerConfig, rng *lockedRand) *Caller {
	c := &Caller{addr: addr, cfg: cfg, rng: rng, rpcSeconds: rpcSecondsFor(addr)}
	c.healthy.Store(true)
	return c
}

// Addr returns the worker address.
func (c *Caller) Addr() string { return c.addr }

// Breaker returns the worker's circuit breaker, or nil when breakers are
// disabled for this pool.
func (c *Caller) Breaker() *Breaker { return c.br }

// BreakerState returns the worker's circuit state; with breakers disabled
// it reads as closed.
func (c *Caller) BreakerState() BreakerState { return c.br.State() }

// breakerRecord settles one admitted request against the breaker. A fatal
// or budget-exhausted reply means the worker executed the request and
// answered — the request was doomed, not the replica — so it counts as a
// success; an attempt that died with its caller's context carries no
// health signal and only releases the admission slot.
func (c *Caller) breakerRecord(err error, ctxDone bool) {
	switch {
	case err == nil, fastquery.IsFatal(err), fastquery.IsExhausted(err):
		c.br.Success()
	case ctxDone:
		c.br.Drop()
	default:
		c.br.Failure()
	}
}

// Healthy reports the worker's last known health.
func (c *Caller) Healthy() bool { return c.healthy.Load() }

// SetHealthy records the worker's health, e.g. after a failed call or a
// successful probe. Health transitions move the process-wide
// cluster_unhealthy_workers gauge.
func (c *Caller) SetHealthy(v bool) {
	if old := c.healthy.Swap(v); old != v {
		if v {
			metricUnhealthy.Add(-1)
		} else {
			metricUnhealthy.Add(1)
		}
	}
}

// Connect dials eagerly, verifying the worker is reachable.
func (c *Caller) Connect() error {
	_, _, err := c.conn()
	return err
}

// Close tears down the connection. Further calls fail with ErrCallerClosed.
// Close is idempotent.
func (c *Caller) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	if c.client != nil {
		err := c.client.Close()
		c.client = nil
		return err
	}
	return nil
}

// Call invokes the RPC method with retries per the config.
func (c *Caller) Call(method string, args, reply any) error {
	_, err := c.CallWithStats(method, args, reply)
	return err
}

// CallWithStats is Call plus an account of attempts, timeouts and
// reconnects. Fatal errors (see fastquery.IsFatal) are returned without
// burning retries: they are deterministic, so repeating them is waste.
func (c *Caller) CallWithStats(method string, args, reply any) (CallStats, error) {
	return c.CallWithStatsCtx(context.Background(), method, args, reply)
}

// CallWithStatsCtx is CallWithStats with caller-supplied cancellation: a
// done ctx abandons the in-flight attempt, skips remaining retries, and
// interrupts backoff sleeps, so a canceled sweep stops burning the retry
// budget the moment nobody wants its result.
func (c *Caller) CallWithStatsCtx(ctx context.Context, method string, args, reply any) (CallStats, error) {
	var cs CallStats
	var lastErr error
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return cs, err
		}
		cs.Attempts++
		// Each attempt is a sibling span under the caller's current span,
		// so retries show up side by side in the originating trace.
		_, asp := obs.StartSpan(ctx, "rpc-attempt")
		if asp != nil {
			asp.SetAttr("method", method)
			asp.SetAttr("worker", c.addr)
			asp.SetAttr("attempt", strconv.Itoa(attempt+1))
		}
		start := time.Now()
		err := c.callOnce(ctx, method, args, reply, c.cfg.Timeout, &cs)
		c.rpcSeconds.ObserveSince(start)
		if err != nil {
			asp.SetAttr("error", err.Error())
		}
		asp.End()
		if err == nil {
			c.budget.Success()
			return cs, nil
		}
		lastErr = err
		if ctx.Err() != nil || attempt >= c.cfg.MaxRetries || !retryable(err) {
			return cs, lastErr
		}
		if !c.budget.Spend() {
			// The shared retry budget is empty: retrying now would multiply
			// offered load during a brownout. Fail fast instead.
			return cs, lastErr
		}
		if !c.backoffCtx(ctx, attempt) {
			return cs, lastErr
		}
	}
}

// Probe makes a single short-deadline Worker.Ping attempt, used by the
// pool to detect a worker returning to health.
func (c *Caller) Probe() error {
	to := c.cfg.Timeout
	if to <= 0 || to > 2*time.Second {
		to = 2 * time.Second
	}
	var cs CallStats
	var reply PingReply
	return c.callOnce(context.Background(), "Worker.Ping", &PingArgs{}, &reply, to, &cs)
}

// callOnce makes one attempt. The reply is decoded into a fresh value and
// only copied into the caller's reply on success, so a timed-out attempt
// whose response arrives late cannot race a retry writing the same reply.
func (c *Caller) callOnce(ctx context.Context, method string, args, reply any, timeout time.Duration, cs *CallStats) error {
	client, reconnected, err := c.conn()
	if err != nil {
		return err
	}
	if reconnected {
		cs.Reconnects++
	}
	rv := reflect.New(reflect.TypeOf(reply).Elem())
	call := client.Go(method, args, rv.Interface(), make(chan *rpc.Call, 1))
	var timeoutCh <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		timeoutCh = t.C
	}
	select {
	case <-call.Done:
		if call.Error != nil {
			if !isServerError(call.Error) {
				// Transport-level failure: the connection is unusable.
				c.drop(client)
			}
			return call.Error
		}
		reflect.ValueOf(reply).Elem().Set(rv.Elem())
		return nil
	case <-timeoutCh:
		cs.Timeouts++
		// Closing the client aborts the in-flight call server-side reads
		// and fails every other call pending on this connection; they all
		// retry on a fresh connection.
		c.drop(client)
		return fmt.Errorf("cluster: %s to %s after %v: %w", method, c.addr, timeout, ErrCallTimeout)
	case <-ctx.Done():
		// Same treatment as a timeout: dropping the connection is the only
		// way net/rpc lets us stop the server working on our behalf.
		c.drop(client)
		return ctx.Err()
	}
}

// conn returns the live client, dialling if needed. The second result
// reports whether this dial replaced a previously working connection.
func (c *Caller) conn() (*rpc.Client, bool, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, false, ErrCallerClosed
	}
	if c.client != nil {
		return c.client, false, nil
	}
	cl, err := rpc.Dial("tcp", c.addr)
	if err != nil {
		return nil, false, err
	}
	reconnect := c.connected
	c.client = cl
	c.connected = true
	return cl, reconnect, nil
}

// drop discards a dead client so the next attempt re-dials.
func (c *Caller) drop(cl *rpc.Client) {
	c.mu.Lock()
	if c.client == cl {
		c.client = nil
	}
	c.mu.Unlock()
	cl.Close()
}

// backoffCtx sleeps for an exponentially growing, jittered delay: the
// attempt's base delay doubles each time (capped at BackoffMax) and the
// sleep is drawn uniformly from [d/2, d], decorrelating retry storms. It
// returns false if ctx was done before the delay elapsed.
func (c *Caller) backoffCtx(ctx context.Context, attempt int) bool {
	base := c.cfg.BackoffBase
	if base <= 0 {
		base = 10 * time.Millisecond
	}
	max := c.cfg.BackoffMax
	if max <= 0 {
		max = time.Second
	}
	d := base << uint(attempt)
	if d > max || d <= 0 {
		d = max
	}
	half := d / 2
	d = half + time.Duration(c.rng.Int63n(int64(half)+1))
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// retryable reports whether another attempt could plausibly succeed.
func retryable(err error) bool {
	if err == nil || errors.Is(err, ErrCallerClosed) {
		return false
	}
	if isServerError(err) {
		// The worker executed the request and returned an application
		// error. Fatal-classified ones (bad query, bad step) fail the same
		// way everywhere, and budget exhaustion means the deadline budget
		// is spent — no replica can conjure more time; others may be
		// transient I/O trouble.
		return !fastquery.IsFatal(err) && !fastquery.IsExhausted(err)
	}
	// Dial failures, timeouts, EOF, rpc.ErrShutdown: all transport-level.
	return true
}

func isServerError(err error) bool {
	var se rpc.ServerError
	return errors.As(err, &se)
}

// lockedRand is a seeded, goroutine-safe RNG for jitter; a fixed seed
// keeps fault-injection tests deterministic.
type lockedRand struct {
	mu sync.Mutex
	r  *rand.Rand
}

func newLockedRand(seed int64) *lockedRand {
	if seed == 0 {
		seed = 1
	}
	return &lockedRand{r: rand.New(rand.NewSource(seed))}
}

func (l *lockedRand) Int63n(n int64) int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.r.Int63n(n)
}
