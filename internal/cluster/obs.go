package cluster

import (
	"repro/internal/obs"
)

// Package-level instruments for the RPC execution mode, registered in the
// process-wide registry. The pool's own PoolStats counters remain the
// per-pool view; these series aggregate across every pool and caller in
// the process, which is what a scrape wants.
var (
	metricRPCCalls = obs.Default().Counter("cluster_rpc_calls_total",
		"RPC attempts made to workers, including retries and failovers.")
	metricRetries = obs.Default().Counter("cluster_retries_total",
		"RPC attempts beyond the first against one worker.")
	metricTimeouts = obs.Default().Counter("cluster_timeouts_total",
		"RPC attempts abandoned on the per-attempt deadline.")
	metricReconnects = obs.Default().Counter("cluster_reconnects_total",
		"Re-dials of previously working worker connections.")
	metricFailovers = obs.Default().Counter("cluster_failovers_total",
		"Sweep steps moved to another worker after their home worker failed.")
	metricProbes = obs.Default().Counter("cluster_probes_total",
		"Health pings sent to unhealthy workers.")
	metricRecoveries = obs.Default().Counter("cluster_recoveries_total",
		"Workers probed back to health.")
	metricUnhealthy = obs.Default().Gauge("cluster_unhealthy_workers",
		"Workers currently marked unhealthy, across every pool.")
	metricHedges = obs.Default().Counter("cluster_hedges_total",
		"Extra hedged RPC attempts launched against replica workers.")
	metricBreakerTrips = obs.Default().Counter("cluster_breaker_trips_total",
		"Circuit-breaker trips (closed or half-open to open), across every worker.")
	metricBreakerOpen = obs.Default().Gauge("cluster_breaker_open",
		"Worker circuit breakers currently open, across every pool.")
	metricRetryBudgetTokens = obs.Default().Gauge("cluster_retry_budget_tokens",
		"Tokens left in the retry budget shared by retries, failovers and hedges.")
	metricRetryBudgetExhausted = obs.Default().Counter("cluster_retry_budget_exhausted_total",
		"Extra attempts (retries, failovers, hedges) skipped because the retry budget was empty.")
)

// rpcSecondsFor returns the per-worker RPC latency histogram. Callers
// cache the result; registration is idempotent.
func rpcSecondsFor(addr string) *obs.Histogram {
	return obs.Default().Histogram("cluster_rpc_seconds",
		"Wall time of one RPC attempt to a worker.", nil, obs.L("worker", addr))
}

// breakerStateFor returns the per-worker breaker state gauge
// (0 closed, 1 half-open, 2 open). Registration is idempotent.
func breakerStateFor(addr string) *obs.Gauge {
	return obs.Default().Gauge("cluster_breaker_state",
		"Circuit-breaker state per worker: 0 closed, 1 half-open, 2 open.",
		obs.L("worker", addr))
}
