package cluster

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestStridedAssignment(t *testing.T) {
	a := Strided(10, 3)
	if len(a) != 3 {
		t.Fatalf("nodes = %d", len(a))
	}
	want := Assignment{{0, 3, 6, 9}, {1, 4, 7}, {2, 5, 8}}
	for n := range want {
		if len(a[n]) != len(want[n]) {
			t.Fatalf("node %d: %v", n, a[n])
		}
		for i := range want[n] {
			if a[n][i] != want[n][i] {
				t.Fatalf("node %d: %v, want %v", n, a[n], want[n])
			}
		}
	}
}

func TestBlockedAssignment(t *testing.T) {
	a := Blocked(10, 3)
	want := Assignment{{0, 1, 2, 3}, {4, 5, 6}, {7, 8, 9}}
	for n := range want {
		for i := range want[n] {
			if a[n][i] != want[n][i] {
				t.Fatalf("node %d: %v, want %v", n, a[n], want[n])
			}
		}
	}
}

// Property: every assignment covers each task exactly once.
func TestAssignmentsPartitionProperty(t *testing.T) {
	f := func(nTasksRaw, nodesRaw uint8) bool {
		nTasks := int(nTasksRaw % 64)
		nodes := int(nodesRaw%16) + 1
		for _, a := range []Assignment{Strided(nTasks, nodes), Blocked(nTasks, nodes)} {
			seen := map[int]int{}
			for _, node := range a {
				for _, idx := range node {
					seen[idx]++
				}
			}
			if len(seen) != nTasks {
				return false
			}
			for i := 0; i < nTasks; i++ {
				if seen[i] != 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAssignmentZeroNodes(t *testing.T) {
	if a := Strided(5, 0); len(a) != 1 || len(a[0]) != 5 {
		t.Fatalf("Strided(5,0) = %v", a)
	}
	if a := Blocked(5, -1); len(a) != 1 {
		t.Fatalf("Blocked(5,-1) = %v", a)
	}
}

func makeTasks(n int, d time.Duration) []Task {
	tasks := make([]Task, n)
	for i := range tasks {
		i := i
		tasks[i] = Task{Step: i, Run: func() (uint64, int, error) {
			time.Sleep(d)
			return 1000, 2, nil
		}}
	}
	return tasks
}

func TestRunAndRunSerial(t *testing.T) {
	tasks := makeTasks(6, time.Millisecond)
	for _, run := range []func() ([]Result, error){
		func() ([]Result, error) { return Run(tasks, 3, IOModel{}) },
		func() ([]Result, error) { return RunSerial(tasks, IOModel{}) },
	} {
		results, err := run()
		if err != nil {
			t.Fatal(err)
		}
		if len(results) != 6 {
			t.Fatalf("results = %d", len(results))
		}
		for i, r := range results {
			if r.Step != i || r.Wall <= 0 || r.BytesRead != 1000 {
				t.Fatalf("result %d = %+v", i, r)
			}
		}
	}
}

func TestRunPropagatesError(t *testing.T) {
	boom := errors.New("boom")
	tasks := makeTasks(3, 0)
	tasks[1].Run = func() (uint64, int, error) { return 0, 0, boom }
	if _, err := Run(tasks, 2, IOModel{}); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if _, err := RunSerial(tasks, IOModel{}); !errors.Is(err, boom) {
		t.Fatalf("serial err = %v", err)
	}
}

func TestIOModel(t *testing.T) {
	m := IOModel{BandwidthBytesPerSec: 1 << 20, SeekLatency: time.Millisecond}
	got := m.Cost(1<<20, 3)
	want := time.Second + 3*time.Millisecond
	if got != want {
		t.Fatalf("Cost = %v, want %v", got, want)
	}
	if (IOModel{}).Cost(1<<30, 100) != 0 {
		t.Fatal("zero model should cost nothing")
	}
}

func TestRunAppliesIOModel(t *testing.T) {
	tasks := makeTasks(2, 0)
	m := IOModel{BandwidthBytesPerSec: 1e6, SeekLatency: time.Millisecond}
	results, err := RunSerial(tasks, m)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		wantIO := m.Cost(1000, 2)
		if r.IO != wantIO {
			t.Fatalf("IO = %v, want %v", r.IO, wantIO)
		}
		if r.Total() != r.Wall+r.IO {
			t.Fatal("Total inconsistent")
		}
	}
}

func TestMakespan(t *testing.T) {
	results := []Result{
		{Wall: 4 * time.Millisecond},
		{Wall: 1 * time.Millisecond},
		{Wall: 2 * time.Millisecond},
		{Wall: 3 * time.Millisecond},
	}
	// One node: sum = 10ms.
	if got := Makespan(results, Strided(4, 1)); got != 10*time.Millisecond {
		t.Fatalf("1 node makespan = %v", got)
	}
	// Two nodes strided: node0 = 4+2 = 6ms, node1 = 1+3 = 4ms.
	if got := Makespan(results, Strided(4, 2)); got != 6*time.Millisecond {
		t.Fatalf("2 node makespan = %v", got)
	}
	// Four nodes: slowest single task.
	if got := Makespan(results, Strided(4, 4)); got != 4*time.Millisecond {
		t.Fatalf("4 node makespan = %v", got)
	}
}

func TestStrongScaling(t *testing.T) {
	// 100 equal tasks scale almost ideally.
	results := make([]Result, 100)
	for i := range results {
		results[i].Wall = time.Millisecond
	}
	pts := StrongScaling(results, []int{1, 2, 5, 10, 20, 50, 100}, nil)
	if len(pts) != 7 {
		t.Fatalf("points = %d", len(pts))
	}
	if pts[0].Speedup != 1 {
		t.Fatalf("speedup(1) = %g", pts[0].Speedup)
	}
	for _, p := range pts {
		ideal := float64(p.Nodes)
		if p.Speedup < 0.99*ideal || p.Speedup > 1.01*ideal {
			t.Fatalf("speedup(%d) = %g, want ≈%g", p.Nodes, p.Speedup, ideal)
		}
	}
}

func TestStrongScalingUnevenTasks(t *testing.T) {
	// With 4 tasks of very different sizes, speedup saturates at
	// total/largest.
	results := []Result{
		{Wall: 8 * time.Millisecond},
		{Wall: 1 * time.Millisecond},
		{Wall: 1 * time.Millisecond},
		{Wall: 1 * time.Millisecond},
	}
	pts := StrongScaling(results, []int{4, 100}, Strided)
	maxSpeedup := 11.0 / 8.0
	for _, p := range pts {
		if p.Speedup > maxSpeedup+1e-9 {
			t.Fatalf("speedup(%d) = %g exceeds bound %g", p.Nodes, p.Speedup, maxSpeedup)
		}
	}
}

func TestDynamicMakespan(t *testing.T) {
	results := []Result{
		{Wall: 4 * time.Millisecond},
		{Wall: 1 * time.Millisecond},
		{Wall: 2 * time.Millisecond},
		{Wall: 3 * time.Millisecond},
	}
	// One node: sum.
	if got := DynamicMakespan(results, 1); got != 10*time.Millisecond {
		t.Fatalf("1 node dynamic = %v", got)
	}
	// Two nodes list scheduling: 4|1,2,3 -> node0=4, node1=6.
	if got := DynamicMakespan(results, 2); got != 6*time.Millisecond {
		t.Fatalf("2 node dynamic = %v", got)
	}
	// LPT: sorted 4,3,2,1 -> node0=4+1=5, node1=3+2=5.
	if got := LPTMakespan(results, 2); got != 5*time.Millisecond {
		t.Fatalf("2 node LPT = %v", got)
	}
	// Zero nodes clamps.
	if got := DynamicMakespan(results, 0); got != 10*time.Millisecond {
		t.Fatalf("0 node dynamic = %v", got)
	}
}

func TestLPTNeverWorseThanStatic(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	results := make([]Result, 60)
	for i := range results {
		results[i].Wall = time.Duration(rng.Intn(1000)+1) * time.Microsecond
	}
	var total, longest time.Duration
	for _, r := range results {
		total += r.Wall
		if r.Wall > longest {
			longest = r.Wall
		}
	}
	for _, n := range []int{2, 5, 10, 20} {
		cmp := CompareSchedules(results, []int{n})[0]
		// OPT >= max(total/n, longest); LPT is a 4/3-approximation of OPT.
		opt := total / time.Duration(n)
		if longest > opt {
			opt = longest
		}
		if cmp.LPT > opt*4/3+time.Microsecond {
			t.Fatalf("nodes=%d: LPT %v exceeds 4/3 bound of %v", n, cmp.LPT, opt)
		}
		// LPT should essentially never lose to blocked chunks by much.
		if cmp.LPT > cmp.Blocked+cmp.Blocked/10 {
			t.Fatalf("nodes=%d: LPT %v far worse than blocked %v", n, cmp.LPT, cmp.Blocked)
		}
		if cmp.Dynamic > cmp.Strided+cmp.Strided/2 {
			t.Fatalf("nodes=%d: dynamic %v far worse than strided %v", n, cmp.Dynamic, cmp.Strided)
		}
	}
}

// Property: every schedule's makespan is at least total/n and at least the
// longest task.
func TestMakespanLowerBoundsProperty(t *testing.T) {
	f := func(seed int64, nodesRaw uint8) bool {
		nodes := int(nodesRaw%16) + 1
		rng := rand.New(rand.NewSource(seed))
		results := make([]Result, 30)
		var total, longest time.Duration
		for i := range results {
			d := time.Duration(rng.Intn(500)+1) * time.Microsecond
			results[i].Wall = d
			total += d
			if d > longest {
				longest = d
			}
		}
		lower := total / time.Duration(nodes)
		if longest > lower {
			lower = longest
		}
		cmp := CompareSchedules(results, []int{nodes})[0]
		for _, m := range []time.Duration{cmp.Strided, cmp.Blocked, cmp.Dynamic, cmp.LPT} {
			if m < lower {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
