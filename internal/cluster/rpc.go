package cluster

import (
	"fmt"
	"net"
	"net/rpc"
	"sync"

	"repro/internal/fastquery"
	"repro/internal/histogram"
	"repro/internal/query"
)

// This file provides the real multi-process execution mode: worker
// processes (or in-process listeners in tests) serve per-timestep
// operations over net/rpc, standing in for the compute nodes of the
// paper's Cray XT4 runs. All workers read the dataset from a shared
// directory, as the paper's nodes read from Lustre.

// Worker is the RPC service executed on each node.
type Worker struct {
	dir string

	mu  sync.Mutex
	src *fastquery.Source
}

// NewWorker creates a worker serving the given dataset directory.
func NewWorker(dir string) *Worker { return &Worker{dir: dir} }

func (w *Worker) source() (*fastquery.Source, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.src == nil {
		src, err := fastquery.Open(w.dir)
		if err != nil {
			return nil, err
		}
		w.src = src
	}
	return w.src, nil
}

// HistArgs requests a 2D histogram of one timestep.
type HistArgs struct {
	Step    int
	Cond    string // empty for unconditional
	Spec    histogram.Spec2D
	Backend fastquery.Backend
}

// HistReply carries the computed histogram and I/O accounting.
type HistReply struct {
	Hist      *histogram.Hist2D
	BytesRead uint64
}

// Histogram2D computes a histogram for one timestep.
func (w *Worker) Histogram2D(args *HistArgs, reply *HistReply) error {
	src, err := w.source()
	if err != nil {
		return err
	}
	st, err := src.OpenStep(args.Step)
	if err != nil {
		return err
	}
	defer st.Close()
	var cond query.Expr
	if args.Cond != "" {
		if cond, err = query.Parse(args.Cond); err != nil {
			return err
		}
	}
	h, err := st.Histogram2D(cond, args.Spec, args.Backend)
	if err != nil {
		return err
	}
	reply.Hist = h
	reply.BytesRead = st.IOBytes()
	return nil
}

// FindArgs requests the positions of identifiers in one timestep.
type FindArgs struct {
	Step    int
	IDs     []int64
	Backend fastquery.Backend
}

// FindReply carries the matching record positions.
type FindReply struct {
	Positions []uint64
	BytesRead uint64
}

// FindIDs locates a particle search set in one timestep.
func (w *Worker) FindIDs(args *FindArgs, reply *FindReply) error {
	src, err := w.source()
	if err != nil {
		return err
	}
	st, err := src.OpenStep(args.Step)
	if err != nil {
		return err
	}
	defer st.Close()
	pos, err := st.FindIDs(args.IDs, args.Backend)
	if err != nil {
		return err
	}
	reply.Positions = pos
	reply.BytesRead = st.IOBytes()
	return nil
}

// SelectArgs requests a range-query selection over one timestep.
type SelectArgs struct {
	Step    int
	Query   string
	WantIDs bool
	Backend fastquery.Backend
}

// SelectReply carries the matching positions and (optionally) identifiers.
type SelectReply struct {
	Positions []uint64
	IDs       []int64
	BytesRead uint64
}

// Select evaluates a compound range query on one timestep.
func (w *Worker) Select(args *SelectArgs, reply *SelectReply) error {
	src, err := w.source()
	if err != nil {
		return err
	}
	st, err := src.OpenStep(args.Step)
	if err != nil {
		return err
	}
	defer st.Close()
	e, err := query.Parse(args.Query)
	if err != nil {
		return err
	}
	if reply.Positions, err = st.Select(e, args.Backend); err != nil {
		return err
	}
	if args.WantIDs {
		if reply.IDs, err = st.SelectIDs(e, args.Backend); err != nil {
			return err
		}
	}
	reply.BytesRead = st.IOBytes()
	return nil
}

// Serve starts an RPC worker on the listener. It returns immediately; the
// listener owns the lifetime.
func Serve(l net.Listener, w *Worker) error {
	srv := rpc.NewServer()
	if err := srv.RegisterName("Worker", w); err != nil {
		return fmt.Errorf("cluster: register worker: %w", err)
	}
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return // listener closed
			}
			go srv.ServeConn(conn)
		}
	}()
	return nil
}

// StartLocalWorkers starts n in-process RPC workers on loopback addresses
// and returns their addresses plus a shutdown function.
func StartLocalWorkers(n int, dir string) (addrs []string, shutdown func(), err error) {
	var listeners []net.Listener
	closeAll := func() {
		for _, l := range listeners {
			l.Close()
		}
	}
	for i := 0; i < n; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			closeAll()
			return nil, nil, fmt.Errorf("cluster: listen: %w", err)
		}
		if err := Serve(l, NewWorker(dir)); err != nil {
			closeAll()
			return nil, nil, err
		}
		listeners = append(listeners, l)
		addrs = append(addrs, l.Addr().String())
	}
	return addrs, closeAll, nil
}

// Pool is a client-side connection pool over a set of worker addresses.
type Pool struct {
	clients []*rpc.Client
}

// Dial connects to every worker address.
func Dial(addrs []string) (*Pool, error) {
	p := &Pool{}
	for _, addr := range addrs {
		c, err := rpc.Dial("tcp", addr)
		if err != nil {
			p.Close()
			return nil, fmt.Errorf("cluster: dial %s: %w", addr, err)
		}
		p.clients = append(p.clients, c)
	}
	return p, nil
}

// Close closes all client connections.
func (p *Pool) Close() {
	for _, c := range p.clients {
		c.Close()
	}
}

// Nodes returns the number of connected workers.
func (p *Pool) Nodes() int { return len(p.clients) }

// HistogramSweep computes one histogram per step, strided across the
// workers, and returns the per-step histograms.
func (p *Pool) HistogramSweep(steps []int, cond string, spec histogram.Spec2D, backend fastquery.Backend) ([]*histogram.Hist2D, error) {
	out := make([]*histogram.Hist2D, len(steps))
	errs := make([]error, len(steps))
	var wg sync.WaitGroup
	for i, step := range steps {
		wg.Add(1)
		go func(i, step int) {
			defer wg.Done()
			client := p.clients[i%len(p.clients)]
			var reply HistReply
			err := client.Call("Worker.Histogram2D", &HistArgs{
				Step: step, Cond: cond, Spec: spec, Backend: backend,
			}, &reply)
			out[i], errs[i] = reply.Hist, err
		}(i, step)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("cluster: step %d: %w", steps[i], err)
		}
	}
	return out, nil
}

// SelectSweep evaluates the query on every step, strided across the
// workers, returning per-step hit counts and (optionally) identifiers.
func (p *Pool) SelectSweep(steps []int, q string, wantIDs bool, backend fastquery.Backend) ([]SelectReply, error) {
	out := make([]SelectReply, len(steps))
	errs := make([]error, len(steps))
	var wg sync.WaitGroup
	for i, step := range steps {
		wg.Add(1)
		go func(i, step int) {
			defer wg.Done()
			client := p.clients[i%len(p.clients)]
			errs[i] = client.Call("Worker.Select", &SelectArgs{
				Step: step, Query: q, WantIDs: wantIDs, Backend: backend,
			}, &out[i])
		}(i, step)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("cluster: step %d: %w", steps[i], err)
		}
	}
	return out, nil
}

// TrackSweep locates the identifier set in every step, strided across the
// workers; it returns per-step positions.
func (p *Pool) TrackSweep(steps []int, ids []int64, backend fastquery.Backend) ([][]uint64, error) {
	out := make([][]uint64, len(steps))
	errs := make([]error, len(steps))
	var wg sync.WaitGroup
	for i, step := range steps {
		wg.Add(1)
		go func(i, step int) {
			defer wg.Done()
			client := p.clients[i%len(p.clients)]
			var reply FindReply
			err := client.Call("Worker.FindIDs", &FindArgs{
				Step: step, IDs: ids, Backend: backend,
			}, &reply)
			out[i], errs[i] = reply.Positions, err
		}(i, step)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("cluster: step %d: %w", steps[i], err)
		}
	}
	return out, nil
}
