package cluster

import (
	"context"
	"fmt"
	"net"
	"net/rpc"
	"sync"

	"repro/internal/fastquery"
	"repro/internal/histogram"
	"repro/internal/obs"
	"repro/internal/query"
)

// This file provides the server side of the real multi-process execution
// mode: worker processes (or in-process listeners in tests) serve
// per-timestep operations over net/rpc, standing in for the compute nodes
// of the paper's Cray XT4 runs. All workers read the dataset from a shared
// directory, as the paper's nodes read from Lustre.
//
// Worker errors are classified retryable vs fatal (fastquery.Fatal): a bad
// query or out-of-range step fails the same way on every node, so the
// client gives up immediately instead of retrying or failing over.

// Worker is the RPC service executed on each node.
type Worker struct {
	dir string

	mu  sync.Mutex
	src *fastquery.Source
}

// NewWorker creates a worker serving the given dataset directory.
func NewWorker(dir string) *Worker { return &Worker{dir: dir} }

func (w *Worker) source() (*fastquery.Source, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.src == nil {
		src, err := fastquery.Open(w.dir)
		if err != nil {
			return nil, err
		}
		w.src = src
	}
	return w.src, nil
}

// Close releases the worker's cached dataset source. The worker stays
// usable: the next request reopens the source. Close is idempotent.
func (w *Worker) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.src == nil {
		return nil
	}
	err := w.src.Close()
	w.src = nil
	return err
}

// PingArgs is the (empty) request of the Worker.Ping heartbeat.
type PingArgs struct{}

// PingReply acknowledges a heartbeat.
type PingReply struct {
	OK bool
}

// Ping is a lightweight liveness heartbeat used by the pool to probe
// unhealthy workers back into the failover rotation.
func (w *Worker) Ping(args *PingArgs, reply *PingReply) error {
	reply.OK = true
	return nil
}

// workerTrace starts a worker-side trace for a propagated trace ID,
// returning a context carrying its root span. With no trace ID (or obs
// disabled) the context is plain and the trace nil; finishTrace on a nil
// trace is a no-op, so handlers call both unconditionally.
func workerTrace(id, rootName string) (context.Context, *obs.Trace) {
	if id == "" {
		return context.Background(), nil
	}
	tr := obs.NewTrace(id, rootName)
	return obs.ContextWithSpan(context.Background(), tr.Root()), tr
}

// finishTrace closes the worker-side trace and stores its snapshot in the
// reply slot for the client to attach to the originating request's trace.
// gob omits nil pointer fields, so an untraced reply costs nothing extra
// on the wire.
func finishTrace(tr *obs.Trace, slot **obs.SpanData) {
	if tr == nil {
		return
	}
	tr.Root().End()
	*slot = tr.Data()
}

// HistArgs requests a 2D histogram of one timestep.
type HistArgs struct {
	Step    int
	Cond    string // empty for unconditional
	Spec    histogram.Spec2D
	Backend fastquery.Backend
	TraceID string // originating request's trace ID; "" disables tracing
}

// HistReply carries the computed histogram and I/O accounting.
type HistReply struct {
	Hist      *histogram.Hist2D
	BytesRead uint64
	Trace     *obs.SpanData // worker-side span tree when TraceID was set
}

// Histogram2D computes a histogram for one timestep.
func (w *Worker) Histogram2D(args *HistArgs, reply *HistReply) error {
	ctx, tr := workerTrace(args.TraceID, "worker:hist2d")
	defer finishTrace(tr, &reply.Trace)
	src, err := w.source()
	if err != nil {
		return err
	}
	st, err := src.OpenStep(args.Step)
	if err != nil {
		return err
	}
	defer st.Close()
	var cond query.Expr
	if args.Cond != "" {
		if cond, err = query.Parse(args.Cond); err != nil {
			return fastquery.Fatal(err)
		}
	}
	h, err := st.Histogram2DCtx(ctx, cond, args.Spec, args.Backend)
	if err != nil {
		return err
	}
	reply.Hist = h
	reply.BytesRead = st.IOBytes()
	return nil
}

// FindArgs requests the positions of identifiers in one timestep.
type FindArgs struct {
	Step    int
	IDs     []int64
	Backend fastquery.Backend
	TraceID string // originating request's trace ID; "" disables tracing
}

// FindReply carries the matching record positions.
type FindReply struct {
	Positions []uint64
	BytesRead uint64
	Trace     *obs.SpanData // worker-side span tree when TraceID was set
}

// FindIDs locates a particle search set in one timestep.
func (w *Worker) FindIDs(args *FindArgs, reply *FindReply) error {
	ctx, tr := workerTrace(args.TraceID, "worker:find-ids")
	defer finishTrace(tr, &reply.Trace)
	src, err := w.source()
	if err != nil {
		return err
	}
	st, err := src.OpenStep(args.Step)
	if err != nil {
		return err
	}
	defer st.Close()
	pos, err := st.FindIDsCtx(ctx, args.IDs, args.Backend)
	if err != nil {
		return err
	}
	reply.Positions = pos
	reply.BytesRead = st.IOBytes()
	return nil
}

// SelectArgs requests a range-query selection over one timestep.
type SelectArgs struct {
	Step    int
	Query   string
	WantIDs bool
	Backend fastquery.Backend
	TraceID string // originating request's trace ID; "" disables tracing
}

// SelectReply carries the matching positions and (optionally) identifiers.
type SelectReply struct {
	Positions []uint64
	IDs       []int64
	BytesRead uint64
	Trace     *obs.SpanData // worker-side span tree when TraceID was set
}

// Select evaluates a compound range query on one timestep.
func (w *Worker) Select(args *SelectArgs, reply *SelectReply) error {
	ctx, tr := workerTrace(args.TraceID, "worker:select")
	defer finishTrace(tr, &reply.Trace)
	src, err := w.source()
	if err != nil {
		return err
	}
	st, err := src.OpenStep(args.Step)
	if err != nil {
		return err
	}
	defer st.Close()
	e, err := query.Parse(args.Query)
	if err != nil {
		return fastquery.Fatal(err)
	}
	if reply.Positions, err = st.SelectCtx(ctx, e, args.Backend); err != nil {
		return err
	}
	if args.WantIDs {
		if reply.IDs, err = st.SelectIDsCtx(ctx, e, args.Backend); err != nil {
			return err
		}
	}
	reply.BytesRead = st.IOBytes()
	return nil
}

// workerService exposes only the RPC-shaped methods of Worker, keeping
// lifecycle methods like Close out of net/rpc registration (which would
// otherwise log complaints about unsuitable exported methods).
type workerService struct{ w *Worker }

func (s *workerService) Ping(args *PingArgs, reply *PingReply) error { return s.w.Ping(args, reply) }
func (s *workerService) Histogram2D(args *HistArgs, reply *HistReply) error {
	return s.w.Histogram2D(args, reply)
}
func (s *workerService) FindIDs(args *FindArgs, reply *FindReply) error {
	return s.w.FindIDs(args, reply)
}
func (s *workerService) Select(args *SelectArgs, reply *SelectReply) error {
	return s.w.Select(args, reply)
}

// Server serves one Worker over any number of listeners, tracking every
// accepted connection so Close can tear the whole node down — previously
// in-flight ServeConn goroutines and their conns outlived the listener.
type Server struct {
	worker *Worker
	rpcSrv *rpc.Server

	mu               sync.Mutex
	listeners        []net.Listener
	conns            map[net.Conn]struct{}
	closed           bool
	closeOnAcceptErr bool

	wg sync.WaitGroup
}

// NewServer registers the worker and returns a server ready to Serve.
func NewServer(w *Worker) (*Server, error) {
	srv := rpc.NewServer()
	if err := srv.RegisterName("Worker", &workerService{w: w}); err != nil {
		return nil, fmt.Errorf("cluster: register worker: %w", err)
	}
	return &Server{worker: w, rpcSrv: srv, conns: make(map[net.Conn]struct{})}, nil
}

// RegisterName registers an additional RPC receiver on the server under
// the given service name, so a node can serve more than one protocol over
// the same listener — a shard worker serves both the "Worker" service
// (whose Ping the pool's health probing relies on) and the "Shard"
// fragment service.
func (s *Server) RegisterName(name string, rcvr any) error {
	return s.rpcSrv.RegisterName(name, rcvr)
}

// Serve accepts and serves connections on the listener in a background
// goroutine until the listener or the server is closed.
func (s *Server) Serve(l net.Listener) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		l.Close()
		return
	}
	s.listeners = append(s.listeners, l)
	s.wg.Add(1)
	s.mu.Unlock()
	go func() {
		defer s.wg.Done()
		for {
			conn, err := l.Accept()
			if err != nil {
				if s.closeOnAcceptErr {
					s.closeConns()
				}
				return
			}
			if !s.track(conn) {
				conn.Close()
				return
			}
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				s.rpcSrv.ServeConn(conn)
				s.untrack(conn)
				conn.Close()
			}()
		}
	}()
}

func (s *Server) track(conn net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.conns[conn] = struct{}{}
	return true
}

func (s *Server) untrack(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
}

func (s *Server) closeConns() {
	s.mu.Lock()
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}

// Close stops the listeners, closes every in-flight connection, waits for
// the serving goroutines to drain and releases the worker's cached source.
// Close is idempotent.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ls := s.listeners
	s.listeners = nil
	s.mu.Unlock()
	for _, l := range ls {
		l.Close()
	}
	s.closeConns()
	s.wg.Wait()
	return s.worker.Close()
}

// Serve starts an RPC worker on the listener. It returns immediately; the
// listener owns the lifetime, and when it closes every connection it
// accepted is closed with it.
func Serve(l net.Listener, w *Worker) error {
	s, err := NewServer(w)
	if err != nil {
		return err
	}
	s.closeOnAcceptErr = true
	s.Serve(l)
	return nil
}

// StartLocalWorkers starts n in-process RPC workers on loopback addresses
// and returns their addresses plus a shutdown function. Shutdown closes
// the listeners, every served connection and the workers' cached sources,
// and is idempotent.
func StartLocalWorkers(n int, dir string) (addrs []string, shutdown func(), err error) {
	var servers []*Server
	var once sync.Once
	closeAll := func() {
		once.Do(func() {
			for _, s := range servers {
				s.Close()
			}
		})
	}
	for i := 0; i < n; i++ {
		srv, err := NewServer(NewWorker(dir))
		if err != nil {
			closeAll()
			return nil, nil, err
		}
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			closeAll()
			return nil, nil, fmt.Errorf("cluster: listen: %w", err)
		}
		servers = append(servers, srv)
		srv.Serve(l)
		addrs = append(addrs, l.Addr().String())
	}
	return addrs, closeAll, nil
}
