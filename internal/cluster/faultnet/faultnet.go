// Package faultnet wraps net.Listener and net.Conn with deterministic
// fault injection — connection drops, injected I/O errors and fixed or
// random latency, each with a configurable probability — so the cluster
// layer's retry, failover and partial-result machinery can be exercised
// under repeatable adverse conditions (the fabbench approach: prove the
// resilience code works by making the network misbehave on demand).
//
// All randomness comes from one seeded RNG, so a given seed replays the
// same fault schedule relative to the sequence of I/O operations.
package faultnet

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected is wrapped by every synthetic fault, so tests can tell
// injected failures from real ones with errors.Is.
var ErrInjected = errors.New("faultnet: injected fault")

// Config sets the fault mix. The zero value injects nothing.
type Config struct {
	Seed           int64         // RNG seed; 0 behaves as 1
	DropProb       float64       // per-I/O-op probability of abruptly closing the conn
	ErrProb        float64       // per-I/O-op probability of returning an error (conn left open)
	AcceptDropProb float64       // probability a freshly accepted conn is closed immediately
	Latency        time.Duration // fixed delay added to every I/O op
	LatencyJitter  time.Duration // extra uniform-random delay in [0, LatencyJitter)
}

// Stats counts the faults a Listener has injected.
type Stats struct {
	Accepted    int64 // connections accepted
	AcceptDrops int64 // connections killed at accept
	Drops       int64 // connections killed mid-operation
	Errors      int64 // injected I/O errors
	Delays      int64 // operations delayed
	Killed      bool  // Kill was called
}

// Listener wraps an inner listener, handing out fault-injecting conns.
type Listener struct {
	inner net.Listener
	cfg   Config

	rmu sync.Mutex
	rng *rand.Rand

	mu     sync.Mutex
	conns  map[*Conn]struct{}
	killed bool

	accepted, acceptDrops, drops, errs, delays atomic.Int64
}

// Wrap builds a fault-injecting listener around l.
func Wrap(l net.Listener, cfg Config) *Listener {
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	return &Listener{
		inner: l,
		cfg:   cfg,
		rng:   rand.New(rand.NewSource(seed)),
		conns: make(map[*Conn]struct{}),
	}
}

// Accept accepts from the inner listener and wraps the conn. With
// AcceptDropProb the conn is returned already closed, so the peer's first
// use fails — modelling a node that dies during connection setup.
func (l *Listener) Accept() (net.Conn, error) {
	c, err := l.inner.Accept()
	if err != nil {
		return nil, err
	}
	fc := &Conn{Conn: c, l: l}
	l.accepted.Add(1)
	l.mu.Lock()
	killed := l.killed
	if !killed {
		l.conns[fc] = struct{}{}
	}
	l.mu.Unlock()
	if killed {
		c.Close()
		return nil, net.ErrClosed
	}
	if l.roll(l.cfg.AcceptDropProb) {
		l.acceptDrops.Add(1)
		fc.Close()
	}
	return fc, nil
}

// Addr returns the inner listener's address.
func (l *Listener) Addr() net.Addr { return l.inner.Addr() }

// Close closes the inner listener; live connections keep running (use
// Kill to take the whole node down).
func (l *Listener) Close() error { return l.inner.Close() }

// Kill simulates the node dying: the listener and every live connection
// are closed at once, and future accepts fail.
func (l *Listener) Kill() {
	l.mu.Lock()
	l.killed = true
	conns := make([]*Conn, 0, len(l.conns))
	for c := range l.conns {
		conns = append(conns, c)
	}
	l.mu.Unlock()
	l.inner.Close()
	for _, c := range conns {
		c.Close()
	}
}

// Stats returns a snapshot of the injected-fault counters.
func (l *Listener) Stats() Stats {
	l.mu.Lock()
	killed := l.killed
	l.mu.Unlock()
	return Stats{
		Accepted:    l.accepted.Load(),
		AcceptDrops: l.acceptDrops.Load(),
		Drops:       l.drops.Load(),
		Errors:      l.errs.Load(),
		Delays:      l.delays.Load(),
		Killed:      killed,
	}
}

func (l *Listener) roll(p float64) bool {
	if p <= 0 {
		return false
	}
	l.rmu.Lock()
	defer l.rmu.Unlock()
	return l.rng.Float64() < p
}

func (l *Listener) delay() time.Duration {
	d := l.cfg.Latency
	if l.cfg.LatencyJitter > 0 {
		l.rmu.Lock()
		d += time.Duration(l.rng.Int63n(int64(l.cfg.LatencyJitter)))
		l.rmu.Unlock()
	}
	return d
}

func (l *Listener) untrack(c *Conn) {
	l.mu.Lock()
	delete(l.conns, c)
	l.mu.Unlock()
}

// Conn is a fault-injecting connection. Each Read/Write first sleeps the
// configured latency, then rolls for a drop (conn closed, error returned)
// and an injected error (conn left open).
type Conn struct {
	net.Conn
	l      *Listener
	closed atomic.Bool
}

func (c *Conn) inject(op string) error {
	l := c.l
	if d := l.delay(); d > 0 {
		l.delays.Add(1)
		time.Sleep(d)
	}
	if l.roll(l.cfg.DropProb) {
		l.drops.Add(1)
		c.Close()
		return fmt.Errorf("faultnet: %s: connection dropped: %w", op, ErrInjected)
	}
	if l.roll(l.cfg.ErrProb) {
		l.errs.Add(1)
		return fmt.Errorf("faultnet: %s: %w", op, ErrInjected)
	}
	return nil
}

func (c *Conn) Read(p []byte) (int, error) {
	if err := c.inject("read"); err != nil {
		return 0, err
	}
	return c.Conn.Read(p)
}

func (c *Conn) Write(p []byte) (int, error) {
	if err := c.inject("write"); err != nil {
		return 0, err
	}
	return c.Conn.Write(p)
}

// Close closes the underlying conn once and untracks it.
func (c *Conn) Close() error {
	if c.closed.Swap(true) {
		return nil
	}
	c.l.untrack(c)
	return c.Conn.Close()
}
