// Package faultnet wraps net.Listener and net.Conn with deterministic
// fault injection — connection drops, injected I/O errors and fixed or
// random latency, each with a configurable probability — so the cluster
// layer's retry, failover and partial-result machinery can be exercised
// under repeatable adverse conditions (the fabbench approach: prove the
// resilience code works by making the network misbehave on demand).
//
// All randomness comes from one seeded RNG, so a given seed replays the
// same fault schedule relative to the sequence of I/O operations.
package faultnet

import (
	"errors"
	"fmt"
	"log"
	"math/rand"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected is wrapped by every synthetic fault, so tests can tell
// injected failures from real ones with errors.Is.
var ErrInjected = errors.New("faultnet: injected fault")

// Logf is where Wrap logs each listener's seed and fault schedule, so any
// chaos run can be replayed from its output. Tests may redirect it.
var Logf = log.Printf

// Config sets the fault mix. The zero value injects nothing.
type Config struct {
	Seed           int64         // RNG seed; 0 behaves as 1
	DropProb       float64       // per-I/O-op probability of abruptly closing the conn
	ErrProb        float64       // per-I/O-op probability of returning an error (conn left open)
	AcceptDropProb float64       // probability a freshly accepted conn is closed immediately
	Latency        time.Duration // fixed delay added to every I/O op
	LatencyJitter  time.Duration // extra uniform-random delay in [0, LatencyJitter)
	StallProb      float64       // per-I/O-op probability of stalling Stall, then answering normally
	Stall          time.Duration // stall duration for StallProb (default 1s)
	Quiet          bool          // suppress the seed/schedule log line at Wrap
}

// String renders the schedule compactly for the Wrap log line.
func (c Config) String() string {
	parts := []string{fmt.Sprintf("seed=%d", c.Seed)}
	add := func(name string, on bool, v any) {
		if on {
			parts = append(parts, fmt.Sprintf("%s=%v", name, v))
		}
	}
	add("drop", c.DropProb > 0, c.DropProb)
	add("err", c.ErrProb > 0, c.ErrProb)
	add("accept-drop", c.AcceptDropProb > 0, c.AcceptDropProb)
	add("latency", c.Latency > 0, c.Latency)
	add("jitter", c.LatencyJitter > 0, c.LatencyJitter)
	add("stall", c.StallProb > 0, fmt.Sprintf("%v@%v", c.StallProb, c.Stall))
	if len(parts) == 1 {
		parts = append(parts, "clean")
	}
	return strings.Join(parts, " ")
}

// Stats counts the faults a Listener has injected.
type Stats struct {
	Accepted    int64 // connections accepted
	AcceptDrops int64 // connections killed at accept
	Drops       int64 // connections killed mid-operation
	Errors      int64 // injected I/O errors
	Delays      int64 // operations delayed
	Stalls      int64 // operations stalled (then served)
	Partitions  int64 // operations that blocked on a partition
	Corrupts    int64 // writes corrupted
	Truncates   int64 // writes truncated (conn closed mid-reply)
	Killed      bool  // Kill was called
}

// Listener wraps an inner listener, handing out fault-injecting conns.
type Listener struct {
	inner net.Listener
	cfg   Config

	rmu sync.Mutex
	rng *rand.Rand

	mu     sync.Mutex
	conns  map[*Conn]struct{}
	killed bool

	// Dynamic fault switches, flipped at runtime by a chaos schedule.
	partitioned atomic.Bool  // blackhole: I/O blocks until healed or the conn dies
	corrupt     atomic.Bool  // replies get a flipped byte (decode fails client-side)
	truncate    atomic.Bool  // replies are cut mid-write and the conn closed
	stall       atomic.Int64 // per-op stall in nanoseconds; 0 = off

	accepted, acceptDrops, drops, errs, delays atomic.Int64
	stalls, partitions, corrupts, truncates    atomic.Int64
}

// Wrap builds a fault-injecting listener around l. The seed and fault
// schedule are logged (see Logf) so any run can be replayed.
func Wrap(l net.Listener, cfg Config) *Listener {
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	cfg.Seed = seed
	if cfg.StallProb > 0 && cfg.Stall <= 0 {
		cfg.Stall = time.Second
	}
	if !cfg.Quiet {
		Logf("faultnet: %s schedule: %s", l.Addr(), cfg)
	}
	return &Listener{
		inner: l,
		cfg:   cfg,
		rng:   rand.New(rand.NewSource(seed)),
		conns: make(map[*Conn]struct{}),
	}
}

// SetPartitioned opens or heals a network partition: while partitioned,
// every I/O op on every conn blocks — bytes go nowhere, connections do not
// reset — until the partition heals or the conn is closed (e.g. by the
// peer's timeout machinery).
func (l *Listener) SetPartitioned(v bool) { l.partitioned.Store(v) }

// SetCorrupt turns reply corruption on or off: while on, every write has a
// byte flipped, so the peer's decoder fails on a well-delivered but
// garbage reply.
func (l *Listener) SetCorrupt(v bool) { l.corrupt.Store(v) }

// SetTruncate turns reply truncation on or off: while on, every write
// delivers only a prefix and then kills the conn — the peer sees a reply
// cut off mid-stream.
func (l *Listener) SetTruncate(v bool) { l.truncate.Store(v) }

// SetStall sets a dynamic per-op stall (0 turns it off): every I/O op goes
// quiet for d and then proceeds normally — slow, not dead, the shape that
// fools timeout-only failure detectors.
func (l *Listener) SetStall(d time.Duration) { l.stall.Store(int64(d)) }

// Accept accepts from the inner listener and wraps the conn. With
// AcceptDropProb the conn is returned already closed, so the peer's first
// use fails — modelling a node that dies during connection setup.
func (l *Listener) Accept() (net.Conn, error) {
	c, err := l.inner.Accept()
	if err != nil {
		return nil, err
	}
	fc := &Conn{Conn: c, l: l}
	l.accepted.Add(1)
	l.mu.Lock()
	killed := l.killed
	if !killed {
		l.conns[fc] = struct{}{}
	}
	l.mu.Unlock()
	if killed {
		c.Close()
		return nil, net.ErrClosed
	}
	if l.roll(l.cfg.AcceptDropProb) {
		l.acceptDrops.Add(1)
		fc.Close()
	}
	return fc, nil
}

// Addr returns the inner listener's address.
func (l *Listener) Addr() net.Addr { return l.inner.Addr() }

// Close closes the inner listener; live connections keep running (use
// Kill to take the whole node down).
func (l *Listener) Close() error { return l.inner.Close() }

// Kill simulates the node dying: the listener and every live connection
// are closed at once, and future accepts fail.
func (l *Listener) Kill() {
	l.mu.Lock()
	l.killed = true
	conns := make([]*Conn, 0, len(l.conns))
	for c := range l.conns {
		conns = append(conns, c)
	}
	l.mu.Unlock()
	l.inner.Close()
	for _, c := range conns {
		c.Close()
	}
}

// Stats returns a snapshot of the injected-fault counters.
func (l *Listener) Stats() Stats {
	l.mu.Lock()
	killed := l.killed
	l.mu.Unlock()
	return Stats{
		Accepted:    l.accepted.Load(),
		AcceptDrops: l.acceptDrops.Load(),
		Drops:       l.drops.Load(),
		Errors:      l.errs.Load(),
		Delays:      l.delays.Load(),
		Stalls:      l.stalls.Load(),
		Partitions:  l.partitions.Load(),
		Corrupts:    l.corrupts.Load(),
		Truncates:   l.truncates.Load(),
		Killed:      killed,
	}
}

func (l *Listener) roll(p float64) bool {
	if p <= 0 {
		return false
	}
	l.rmu.Lock()
	defer l.rmu.Unlock()
	return l.rng.Float64() < p
}

func (l *Listener) delay() time.Duration {
	d := l.cfg.Latency
	if l.cfg.LatencyJitter > 0 {
		l.rmu.Lock()
		d += time.Duration(l.rng.Int63n(int64(l.cfg.LatencyJitter)))
		l.rmu.Unlock()
	}
	return d
}

func (l *Listener) untrack(c *Conn) {
	l.mu.Lock()
	delete(l.conns, c)
	l.mu.Unlock()
}

// Conn is a fault-injecting connection. Each Read/Write first sleeps the
// configured latency, then rolls for a drop (conn closed, error returned)
// and an injected error (conn left open).
type Conn struct {
	net.Conn
	l      *Listener
	closed atomic.Bool
}

func (c *Conn) inject(op string) error {
	l := c.l
	// A partition blackholes the op: block — no bytes, no reset — until
	// the partition heals or the conn is torn down (the peer's deadline
	// machinery closing it is the usual exit).
	if l.partitioned.Load() {
		l.partitions.Add(1)
		for l.partitioned.Load() {
			if c.closed.Load() {
				return fmt.Errorf("faultnet: %s: closed during partition: %w", op, ErrInjected)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	if d := time.Duration(l.stall.Load()); d > 0 {
		l.stalls.Add(1)
		time.Sleep(d)
	} else if l.roll(l.cfg.StallProb) {
		// Stall-then-answer: the conn goes quiet long enough to look dead,
		// then serves the op normally — the shape that tricks timeout-only
		// failure detectors into duplicating work.
		l.stalls.Add(1)
		time.Sleep(l.cfg.Stall)
	}
	if d := l.delay(); d > 0 {
		l.delays.Add(1)
		time.Sleep(d)
	}
	if l.roll(l.cfg.DropProb) {
		l.drops.Add(1)
		c.Close()
		return fmt.Errorf("faultnet: %s: connection dropped: %w", op, ErrInjected)
	}
	if l.roll(l.cfg.ErrProb) {
		l.errs.Add(1)
		return fmt.Errorf("faultnet: %s: %w", op, ErrInjected)
	}
	return nil
}

func (c *Conn) Read(p []byte) (int, error) {
	if err := c.inject("read"); err != nil {
		return 0, err
	}
	return c.Conn.Read(p)
}

func (c *Conn) Write(p []byte) (int, error) {
	if err := c.inject("write"); err != nil {
		return 0, err
	}
	l := c.l
	if l.truncate.Load() && len(p) > 0 {
		// Deliver a prefix, then die mid-reply: the peer's decoder sees a
		// stream cut off partway through a message.
		l.truncates.Add(1)
		n, _ := c.Conn.Write(p[:(len(p)+1)/2])
		c.Close()
		return n, fmt.Errorf("faultnet: write truncated: %w", ErrInjected)
	}
	if l.corrupt.Load() && len(p) > 0 {
		// Flip one byte mid-buffer in a copy (the caller owns p): the bytes
		// arrive intact by TCP's lights but the payload is garbage.
		l.corrupts.Add(1)
		q := make([]byte, len(p))
		copy(q, p)
		q[len(q)/2] ^= 0xff
		return c.Conn.Write(q)
	}
	return c.Conn.Write(p)
}

// Close closes the underlying conn once and untracks it.
func (c *Conn) Close() error {
	if c.closed.Swap(true) {
		return nil
	}
	c.l.untrack(c)
	return c.Conn.Close()
}
