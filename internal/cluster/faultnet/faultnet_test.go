package faultnet

import (
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

// echoServe accepts conns from l and echoes bytes back until l dies.
func echoServe(l net.Listener) {
	for {
		c, err := l.Accept()
		if err != nil {
			return
		}
		go func() {
			defer c.Close()
			io.Copy(c, c)
		}()
	}
}

func startEcho(t *testing.T, cfg Config) *Listener {
	t.Helper()
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	l := Wrap(inner, cfg)
	go echoServe(l)
	t.Cleanup(l.Kill)
	return l
}

func roundTrip(addr string) error {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	defer c.Close()
	c.SetDeadline(time.Now().Add(2 * time.Second))
	if _, err := c.Write([]byte("ping")); err != nil {
		return err
	}
	buf := make([]byte, 4)
	_, err = io.ReadFull(c, buf)
	return err
}

func TestCleanPassThrough(t *testing.T) {
	l := startEcho(t, Config{})
	for i := 0; i < 5; i++ {
		if err := roundTrip(l.Addr().String()); err != nil {
			t.Fatalf("round trip %d: %v", i, err)
		}
	}
	s := l.Stats()
	if s.Accepted != 5 || s.Drops != 0 || s.Errors != 0 || s.Delays != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestInjectedErrorsAndDrops(t *testing.T) {
	l := startEcho(t, Config{Seed: 42, ErrProb: 0.5, DropProb: 0.2})
	fails := 0
	for i := 0; i < 40; i++ {
		if err := roundTrip(l.Addr().String()); err != nil {
			fails++
		}
	}
	s := l.Stats()
	if s.Errors == 0 && s.Drops == 0 {
		t.Fatalf("no faults injected: %+v", s)
	}
	if fails == 0 {
		t.Fatal("every round trip succeeded despite heavy fault injection")
	}
}

func TestDeterministicSchedule(t *testing.T) {
	// The same seed must produce the same fault decisions for the same
	// operation sequence.
	run := func() []bool {
		inner, _ := net.Listen("tcp", "127.0.0.1:0")
		defer inner.Close()
		l := Wrap(inner, Config{Seed: 7, ErrProb: 0.3})
		out := make([]bool, 50)
		for i := range out {
			out[i] = l.roll(l.cfg.ErrProb)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("roll %d differs between runs with the same seed", i)
		}
	}
}

func TestLatencyInjection(t *testing.T) {
	l := startEcho(t, Config{Latency: 20 * time.Millisecond})
	start := time.Now()
	if err := roundTrip(l.Addr().String()); err != nil {
		t.Fatal(err)
	}
	// The echo path injects latency on the server's read and write.
	if el := time.Since(start); el < 20*time.Millisecond {
		t.Fatalf("round trip took %v, expected injected latency", el)
	}
	if l.Stats().Delays == 0 {
		t.Fatal("no delays recorded")
	}
}

func TestKillClosesLiveConns(t *testing.T) {
	l := startEcho(t, Config{})
	c, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatal(err)
	}
	l.Kill()
	// The killed node's conn must die promptly, not hang.
	c.SetDeadline(time.Now().Add(2 * time.Second))
	if _, err := c.Read(buf); err == nil {
		t.Fatal("read from killed node succeeded")
	}
	if !l.Stats().Killed {
		t.Fatal("Killed not recorded")
	}
	// New dials must fail.
	if conn, err := net.Dial("tcp", l.Addr().String()); err == nil {
		conn.Close()
		t.Fatal("dial to killed node succeeded")
	}
}

func TestErrInjectedIsDetectable(t *testing.T) {
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	l := Wrap(inner, Config{Seed: 3, ErrProb: 1})
	defer l.Kill()

	var wg sync.WaitGroup
	wg.Add(1)
	var readErr error
	go func() {
		defer wg.Done()
		c, err := l.Accept()
		if err != nil {
			readErr = err
			return
		}
		defer c.Close()
		_, readErr = c.Read(make([]byte, 1))
	}()
	c, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	wg.Wait()
	if !errors.Is(readErr, ErrInjected) {
		t.Fatalf("read error %v is not ErrInjected", readErr)
	}
}
