package faultnet

import (
	"errors"
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

// echoServe accepts conns from l and echoes bytes back until l dies.
func echoServe(l net.Listener) {
	for {
		c, err := l.Accept()
		if err != nil {
			return
		}
		go func() {
			defer c.Close()
			io.Copy(c, c)
		}()
	}
}

func startEcho(t *testing.T, cfg Config) *Listener {
	t.Helper()
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	l := Wrap(inner, cfg)
	go echoServe(l)
	t.Cleanup(l.Kill)
	return l
}

func roundTrip(addr string) error {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	defer c.Close()
	c.SetDeadline(time.Now().Add(2 * time.Second))
	if _, err := c.Write([]byte("ping")); err != nil {
		return err
	}
	buf := make([]byte, 4)
	_, err = io.ReadFull(c, buf)
	return err
}

func TestCleanPassThrough(t *testing.T) {
	l := startEcho(t, Config{})
	for i := 0; i < 5; i++ {
		if err := roundTrip(l.Addr().String()); err != nil {
			t.Fatalf("round trip %d: %v", i, err)
		}
	}
	s := l.Stats()
	if s.Accepted != 5 || s.Drops != 0 || s.Errors != 0 || s.Delays != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestInjectedErrorsAndDrops(t *testing.T) {
	l := startEcho(t, Config{Seed: 42, ErrProb: 0.5, DropProb: 0.2})
	fails := 0
	for i := 0; i < 40; i++ {
		if err := roundTrip(l.Addr().String()); err != nil {
			fails++
		}
	}
	s := l.Stats()
	if s.Errors == 0 && s.Drops == 0 {
		t.Fatalf("no faults injected: %+v", s)
	}
	if fails == 0 {
		t.Fatal("every round trip succeeded despite heavy fault injection")
	}
}

func TestDeterministicSchedule(t *testing.T) {
	// The same seed must produce the same fault decisions for the same
	// operation sequence.
	run := func() []bool {
		inner, _ := net.Listen("tcp", "127.0.0.1:0")
		defer inner.Close()
		l := Wrap(inner, Config{Seed: 7, ErrProb: 0.3})
		out := make([]bool, 50)
		for i := range out {
			out[i] = l.roll(l.cfg.ErrProb)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("roll %d differs between runs with the same seed", i)
		}
	}
}

func TestLatencyInjection(t *testing.T) {
	l := startEcho(t, Config{Latency: 20 * time.Millisecond})
	start := time.Now()
	if err := roundTrip(l.Addr().String()); err != nil {
		t.Fatal(err)
	}
	// The echo path injects latency on the server's read and write.
	if el := time.Since(start); el < 20*time.Millisecond {
		t.Fatalf("round trip took %v, expected injected latency", el)
	}
	if l.Stats().Delays == 0 {
		t.Fatal("no delays recorded")
	}
}

func TestKillClosesLiveConns(t *testing.T) {
	l := startEcho(t, Config{})
	c, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatal(err)
	}
	l.Kill()
	// The killed node's conn must die promptly, not hang.
	c.SetDeadline(time.Now().Add(2 * time.Second))
	if _, err := c.Read(buf); err == nil {
		t.Fatal("read from killed node succeeded")
	}
	if !l.Stats().Killed {
		t.Fatal("Killed not recorded")
	}
	// New dials must fail.
	if conn, err := net.Dial("tcp", l.Addr().String()); err == nil {
		conn.Close()
		t.Fatal("dial to killed node succeeded")
	}
}

func TestStallThenAnswer(t *testing.T) {
	l := startEcho(t, Config{Seed: 5, StallProb: 1, Stall: 50 * time.Millisecond, Quiet: true})
	start := time.Now()
	if err := roundTrip(l.Addr().String()); err != nil {
		t.Fatalf("stalled round trip failed: %v", err)
	}
	// The op must stall but still answer — slow, not dead.
	if el := time.Since(start); el < 50*time.Millisecond {
		t.Fatalf("round trip took %v, expected a stall", el)
	}
	if l.Stats().Stalls == 0 {
		t.Fatal("no stalls recorded")
	}
}

func TestPartitionBlackholeAndHeal(t *testing.T) {
	l := startEcho(t, Config{Quiet: true})
	if err := roundTrip(l.Addr().String()); err != nil {
		t.Fatal(err)
	}

	l.SetPartitioned(true)
	c, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// During the partition nothing comes back: the read deadline fires.
	c.SetDeadline(time.Now().Add(100 * time.Millisecond))
	c.Write([]byte("ping"))
	if _, err := io.ReadFull(c, make([]byte, 4)); err == nil {
		t.Fatal("read through a partition succeeded")
	}

	// Healing restores service for fresh connections.
	l.SetPartitioned(false)
	deadline := time.Now().Add(2 * time.Second)
	for {
		if err := roundTrip(l.Addr().String()); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("service did not recover after the partition healed")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if l.Stats().Partitions == 0 {
		t.Fatal("no partition blocks recorded")
	}
}

func TestCorruptFlipsReplyBytes(t *testing.T) {
	l := startEcho(t, Config{Quiet: true})
	l.SetCorrupt(true)
	c, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetDeadline(time.Now().Add(2 * time.Second))
	if _, err := c.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatalf("corrupted reply should still arrive: %v", err)
	}
	if string(buf) == "ping" {
		t.Fatal("reply arrived uncorrupted")
	}
	if l.Stats().Corrupts == 0 {
		t.Fatal("no corruptions recorded")
	}
}

func TestTruncateCutsReply(t *testing.T) {
	l := startEcho(t, Config{Quiet: true})
	l.SetTruncate(true)
	c, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetDeadline(time.Now().Add(2 * time.Second))
	if _, err := c.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	n, err := io.ReadFull(c, make([]byte, 4))
	if err == nil {
		t.Fatal("full reply arrived despite truncation")
	}
	if n >= 4 {
		t.Fatalf("read %d bytes, want a truncated prefix", n)
	}
	if l.Stats().Truncates == 0 {
		t.Fatal("no truncations recorded")
	}
}

func TestConfigStringDescribesSchedule(t *testing.T) {
	s := Config{Seed: 9, DropProb: 0.1, Latency: time.Millisecond}.String()
	for _, want := range []string{"seed=9", "drop=0.1", "latency=1ms"} {
		if !strings.Contains(s, want) {
			t.Fatalf("schedule %q missing %q", s, want)
		}
	}
	if s := (Config{Seed: 2}).String(); !strings.Contains(s, "clean") {
		t.Fatalf("clean schedule %q not marked clean", s)
	}
}

func TestErrInjectedIsDetectable(t *testing.T) {
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	l := Wrap(inner, Config{Seed: 3, ErrProb: 1})
	defer l.Kill()

	var wg sync.WaitGroup
	wg.Add(1)
	var readErr error
	go func() {
		defer wg.Done()
		c, err := l.Accept()
		if err != nil {
			readErr = err
			return
		}
		defer c.Close()
		_, readErr = c.Read(make([]byte, 1))
	}()
	c, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	wg.Wait()
	if !errors.Is(readErr, ErrInjected) {
		t.Fatalf("read error %v is not ErrInjected", readErr)
	}
}
