package cluster

import (
	"context"
	"net"
	"runtime"
	"testing"
	"time"

	"repro/internal/cluster/faultnet"
)

// startKillableWorkers launches n workers with individual kill switches,
// for exercising CallOn's failover and hedging against a dead primary.
func startKillableWorkers(t *testing.T, n int) (addrs []string, kill []func()) {
	t.Helper()
	dir := rpcDataset(t)
	for i := 0; i < n; i++ {
		srv, err := NewServer(NewWorker(dir))
		if err != nil {
			t.Fatal(err)
		}
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		srv.Serve(l)
		s := srv
		kill = append(kill, func() { s.Close() })
		addrs = append(addrs, l.Addr().String())
	}
	t.Cleanup(func() {
		for _, k := range kill {
			k()
		}
	})
	return addrs, kill
}

func callOnConfig() PoolConfig {
	cfg := DefaultPoolConfig()
	cfg.CallTimeout = 5 * time.Second
	cfg.MaxRetries = 1
	cfg.BackoffBase = time.Millisecond
	cfg.BackoffMax = 5 * time.Millisecond
	cfg.ProbeInterval = 0
	return cfg
}

func TestCallOnPing(t *testing.T) {
	addrs, _ := startKillableWorkers(t, 3)
	p, err := DialConfig(addrs, callOnConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	for primary := 0; primary < 3; primary++ {
		var reply PingReply
		if err := p.CallOn(context.Background(), primary, "Worker.Ping", &PingArgs{}, &reply, 0); err != nil {
			t.Fatalf("primary %d: %v", primary, err)
		}
		if !reply.OK {
			t.Fatalf("primary %d: reply not OK", primary)
		}
	}
}

func TestCallOnFailover(t *testing.T) {
	addrs, kill := startKillableWorkers(t, 3)
	p, err := DialConfig(addrs, callOnConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	kill[1]()
	var reply PingReply
	if err := p.CallOn(context.Background(), 1, "Worker.Ping", &PingArgs{}, &reply, 0); err != nil {
		t.Fatalf("failover call: %v", err)
	}
	if !reply.OK {
		t.Fatal("failover reply not OK")
	}
	if st := p.Stats(); st.Failovers == 0 {
		t.Fatalf("stats = %+v, want failovers > 0", st)
	}
}

func TestCallOnHedged(t *testing.T) {
	dir := rpcDataset(t)

	// Primary behind heavy injected latency — slow, not dead — so the
	// stagger timer fires and launches a hedge that wins the race. (A
	// dead primary fails before the stagger and counts as failover, not
	// a hedge.)
	slowSrv, err := NewServer(NewWorker(dir))
	if err != nil {
		t.Fatal(err)
	}
	sl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	slow := faultnet.Wrap(sl, faultnet.Config{Seed: 3, Latency: 300 * time.Millisecond})
	slowSrv.Serve(slow)
	t.Cleanup(func() { slowSrv.Close() })

	fastSrv, err := NewServer(NewWorker(dir))
	if err != nil {
		t.Fatal(err)
	}
	fl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fastSrv.Serve(fl)
	t.Cleanup(func() { fastSrv.Close() })

	p, err := DialConfig([]string{sl.Addr().String(), fl.Addr().String()}, callOnConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	start := time.Now()
	var reply PingReply
	if err := p.CallOn(context.Background(), 0, "Worker.Ping", &PingArgs{}, &reply, 10*time.Millisecond); err != nil {
		t.Fatalf("hedged call: %v", err)
	}
	if !reply.OK {
		t.Fatal("hedged reply not OK")
	}
	if st := p.Stats(); st.Hedges == 0 {
		t.Fatalf("stats = %+v, want hedges > 0", st)
	}
	// The hedge, not the slow primary, must have answered: well under
	// the primary's injected per-op latency.
	if elapsed := time.Since(start); elapsed > 250*time.Millisecond {
		t.Fatalf("hedged call took %v — the slow primary answered", elapsed)
	}
}

// startLatencyWorker launches a worker, optionally behind injected per-op
// latency, and returns its address.
func startLatencyWorker(t *testing.T, dir string, seed int64, lat time.Duration) string {
	t.Helper()
	srv, err := NewServer(NewWorker(dir))
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var serveL net.Listener = l
	if lat > 0 {
		serveL = faultnet.Wrap(l, faultnet.Config{Seed: seed, Latency: lat})
	}
	srv.Serve(serveL)
	t.Cleanup(func() { srv.Close() })
	return l.Addr().String()
}

// waitGoroutines fails unless the process goroutine count returns to the
// baseline (plus a little slop for runtime helpers) within the window.
func waitGoroutines(t *testing.T, base int, within time.Duration) {
	t.Helper()
	deadline := time.Now().Add(within)
	for {
		n := runtime.NumGoroutine()
		if n <= base+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutine leak: %d live, baseline %d, after %v\n%s",
				n, base, within, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestCallOnHedgedLoserCancelled: when the hedge wins, the losing attempt
// must be cancelled with the race — its goroutine may not ride out the slow
// worker's latency — and the race counts exactly one hedge.
func TestCallOnHedgedLoserCancelled(t *testing.T) {
	dir := rpcDataset(t)
	slow := startLatencyWorker(t, dir, 11, 300*time.Millisecond)
	fast := startLatencyWorker(t, dir, 0, 0)

	p, err := DialConfig([]string{slow, fast}, callOnConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	// Warm both connections so the goroutine baseline includes the pool's
	// persistent rpc clients and their server-side handlers.
	for i := 0; i < 2; i++ {
		var reply PingReply
		if err := p.CallOn(context.Background(), i, "Worker.Ping", &PingArgs{}, &reply, 0); err != nil {
			t.Fatalf("warm %d: %v", i, err)
		}
	}
	base := runtime.NumGoroutine()
	before := p.Stats()

	start := time.Now()
	var reply PingReply
	if err := p.CallOn(context.Background(), 0, "Worker.Ping", &PingArgs{}, &reply, 10*time.Millisecond); err != nil {
		t.Fatalf("hedged call: %v", err)
	}
	if !reply.OK {
		t.Fatal("hedged reply not OK")
	}
	if elapsed := time.Since(start); elapsed > 250*time.Millisecond {
		t.Fatalf("hedged call took %v — the slow primary answered", elapsed)
	}
	if d := p.Stats().Hedges - before.Hedges; d != 1 {
		t.Fatalf("hedges delta = %d, want exactly 1 (no double count)", d)
	}
	// The loser must exit promptly once the winner's cancel fires, not
	// after the slow worker's full injected latency settles naturally.
	waitGoroutines(t, base, 3*time.Second)
}

// TestCallOnHedgedCallerCancel: cancelling the caller's context mid-hedge
// must propagate to both in-flight attempts — the call returns promptly and
// neither attempt goroutine leaks.
func TestCallOnHedgedCallerCancel(t *testing.T) {
	dir := rpcDataset(t)
	a := startLatencyWorker(t, dir, 21, 400*time.Millisecond)
	b := startLatencyWorker(t, dir, 22, 400*time.Millisecond)

	p, err := DialConfig([]string{a, b}, callOnConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	for i := 0; i < 2; i++ {
		var reply PingReply
		if err := p.CallOn(context.Background(), i, "Worker.Ping", &PingArgs{}, &reply, 0); err != nil {
			t.Fatalf("warm %d: %v", i, err)
		}
	}
	base := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	var reply PingReply
	err = p.CallOn(ctx, 0, "Worker.Ping", &PingArgs{}, &reply, 10*time.Millisecond)
	if err == nil {
		t.Fatal("cancelled hedged call reported success")
	}
	// Both workers sit behind 400ms-per-op latency; a prompt return proves
	// the cancel cut through rather than waiting out either attempt.
	if elapsed := time.Since(start); elapsed > 200*time.Millisecond {
		t.Fatalf("cancelled hedged call took %v, want prompt return", elapsed)
	}
	waitGoroutines(t, base, 3*time.Second)
}
