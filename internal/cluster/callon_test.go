package cluster

import (
	"context"
	"net"
	"testing"
	"time"

	"repro/internal/cluster/faultnet"
)

// startKillableWorkers launches n workers with individual kill switches,
// for exercising CallOn's failover and hedging against a dead primary.
func startKillableWorkers(t *testing.T, n int) (addrs []string, kill []func()) {
	t.Helper()
	dir := rpcDataset(t)
	for i := 0; i < n; i++ {
		srv, err := NewServer(NewWorker(dir))
		if err != nil {
			t.Fatal(err)
		}
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		srv.Serve(l)
		s := srv
		kill = append(kill, func() { s.Close() })
		addrs = append(addrs, l.Addr().String())
	}
	t.Cleanup(func() {
		for _, k := range kill {
			k()
		}
	})
	return addrs, kill
}

func callOnConfig() PoolConfig {
	cfg := DefaultPoolConfig()
	cfg.CallTimeout = 5 * time.Second
	cfg.MaxRetries = 1
	cfg.BackoffBase = time.Millisecond
	cfg.BackoffMax = 5 * time.Millisecond
	cfg.ProbeInterval = 0
	return cfg
}

func TestCallOnPing(t *testing.T) {
	addrs, _ := startKillableWorkers(t, 3)
	p, err := DialConfig(addrs, callOnConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	for primary := 0; primary < 3; primary++ {
		var reply PingReply
		if err := p.CallOn(context.Background(), primary, "Worker.Ping", &PingArgs{}, &reply, 0); err != nil {
			t.Fatalf("primary %d: %v", primary, err)
		}
		if !reply.OK {
			t.Fatalf("primary %d: reply not OK", primary)
		}
	}
}

func TestCallOnFailover(t *testing.T) {
	addrs, kill := startKillableWorkers(t, 3)
	p, err := DialConfig(addrs, callOnConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	kill[1]()
	var reply PingReply
	if err := p.CallOn(context.Background(), 1, "Worker.Ping", &PingArgs{}, &reply, 0); err != nil {
		t.Fatalf("failover call: %v", err)
	}
	if !reply.OK {
		t.Fatal("failover reply not OK")
	}
	if st := p.Stats(); st.Failovers == 0 {
		t.Fatalf("stats = %+v, want failovers > 0", st)
	}
}

func TestCallOnHedged(t *testing.T) {
	dir := rpcDataset(t)

	// Primary behind heavy injected latency — slow, not dead — so the
	// stagger timer fires and launches a hedge that wins the race. (A
	// dead primary fails before the stagger and counts as failover, not
	// a hedge.)
	slowSrv, err := NewServer(NewWorker(dir))
	if err != nil {
		t.Fatal(err)
	}
	sl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	slow := faultnet.Wrap(sl, faultnet.Config{Seed: 3, Latency: 300 * time.Millisecond})
	slowSrv.Serve(slow)
	t.Cleanup(func() { slowSrv.Close() })

	fastSrv, err := NewServer(NewWorker(dir))
	if err != nil {
		t.Fatal(err)
	}
	fl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fastSrv.Serve(fl)
	t.Cleanup(func() { fastSrv.Close() })

	p, err := DialConfig([]string{sl.Addr().String(), fl.Addr().String()}, callOnConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	start := time.Now()
	var reply PingReply
	if err := p.CallOn(context.Background(), 0, "Worker.Ping", &PingArgs{}, &reply, 10*time.Millisecond); err != nil {
		t.Fatalf("hedged call: %v", err)
	}
	if !reply.OK {
		t.Fatal("hedged reply not OK")
	}
	if st := p.Stats(); st.Hedges == 0 {
		t.Fatalf("stats = %+v, want hedges > 0", st)
	}
	// The hedge, not the slow primary, must have answered: well under
	// the primary's injected per-op latency.
	if elapsed := time.Since(start); elapsed > 250*time.Millisecond {
		t.Fatalf("hedged call took %v — the slow primary answered", elapsed)
	}
}
