// Package cluster models the distributed-memory execution environment of
// the paper's scalability study (Section V-C): timesteps are statically
// assigned to nodes in a strided fashion, each node processes its
// timesteps independently (there is no inter-node communication in either
// algorithm), and the job finishes when the slowest node finishes.
//
// Two execution modes are provided:
//
//   - Real execution: tasks run concurrently on a bounded worker pool and
//     each task's wall time is measured.
//   - Virtual strong scaling: given measured per-task durations, the
//     completion time for ANY node count is the makespan of the static
//     assignment — max over nodes of the sum of that node's task times.
//     This evaluates 1..100-node scaling faithfully on a laptop, because
//     the modelled machine's nodes are independent.
//
// An optional I/O cost model adds per-task disk time (bytes/bandwidth +
// seeks·latency), standing in for the Lustre filesystem the paper's runs
// read from.
package cluster

import (
	"fmt"
	"runtime"
	"sync"
	"time"
)

// Task is one unit of per-timestep work. Run returns the number of data
// bytes it read and the number of distinct file regions it touched, which
// feed the I/O model.
type Task struct {
	Step int
	Run  func() (bytesRead uint64, seeks int, err error)
}

// Result records one task's execution.
type Result struct {
	Step      int
	Wall      time.Duration // measured compute+real-I/O time
	IO        time.Duration // modelled extra I/O time (zero without a model)
	BytesRead uint64
	Err       error
}

// Total returns the modelled task duration (measured + modelled I/O).
func (r Result) Total() time.Duration { return r.Wall + r.IO }

// IOModel adds synthetic storage time to each task. The zero value
// disables modelling.
type IOModel struct {
	BandwidthBytesPerSec float64
	SeekLatency          time.Duration
}

// Cost returns the modelled I/O time for a task.
func (m IOModel) Cost(bytes uint64, seeks int) time.Duration {
	var d time.Duration
	if m.BandwidthBytesPerSec > 0 {
		d += time.Duration(float64(bytes) / m.BandwidthBytesPerSec * float64(time.Second))
	}
	d += time.Duration(seeks) * m.SeekLatency
	return d
}

// Assignment maps each node to the ordered task indices it processes.
type Assignment [][]int

// Strided assigns task i to node i mod nodes — the paper's static strided
// assignment of timesteps to nodes.
func Strided(nTasks, nodes int) Assignment {
	if nodes < 1 {
		nodes = 1
	}
	a := make(Assignment, nodes)
	for i := 0; i < nTasks; i++ {
		n := i % nodes
		a[n] = append(a[n], i)
	}
	return a
}

// Blocked assigns contiguous chunks of tasks to nodes, the alternative
// strategy ablated in the benchmarks.
func Blocked(nTasks, nodes int) Assignment {
	if nodes < 1 {
		nodes = 1
	}
	a := make(Assignment, nodes)
	base := nTasks / nodes
	rem := nTasks % nodes
	idx := 0
	for n := 0; n < nodes; n++ {
		cnt := base
		if n < rem {
			cnt++
		}
		for i := 0; i < cnt; i++ {
			a[n] = append(a[n], idx)
			idx++
		}
	}
	return a
}

// Run executes all tasks on a fixed pool of `workers` goroutines (0
// selects GOMAXPROCS) and returns per-task results indexed like tasks —
// the pool bounds goroutine count, not just concurrent execution. Task
// errors are recorded per task, not returned; Err aggregates the first one.
func Run(tasks []Task, workers int, model IOModel) ([]Result, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(tasks) {
		workers = len(tasks)
	}
	results := make([]Result, len(tasks))
	if len(tasks) == 0 {
		return results, nil
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				results[i] = runOne(tasks[i], model)
			}
		}()
	}
	for i := range tasks {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for i := range results {
		if results[i].Err != nil {
			return results, fmt.Errorf("cluster: task %d (step %d): %w", i, results[i].Step, results[i].Err)
		}
	}
	return results, nil
}

// RunSerial executes all tasks one after another on the calling goroutine,
// for clean single-node timings.
func RunSerial(tasks []Task, model IOModel) ([]Result, error) {
	results := make([]Result, len(tasks))
	for i := range tasks {
		results[i] = runOne(tasks[i], model)
		if results[i].Err != nil {
			return results, fmt.Errorf("cluster: task %d (step %d): %w", i, results[i].Step, results[i].Err)
		}
	}
	return results, nil
}

func runOne(t Task, model IOModel) Result {
	start := time.Now()
	bytes, seeks, err := t.Run()
	wall := time.Since(start)
	return Result{
		Step:      t.Step,
		Wall:      wall,
		IO:        model.Cost(bytes, seeks),
		BytesRead: bytes,
		Err:       err,
	}
}

// Makespan returns the virtual completion time of the assignment: the
// slowest node's total task time.
func Makespan(results []Result, a Assignment) time.Duration {
	var worst time.Duration
	for _, node := range a {
		var total time.Duration
		for _, idx := range node {
			total += results[idx].Total()
		}
		if total > worst {
			worst = total
		}
	}
	return worst
}

// ScalingPoint is one point of a strong-scaling curve.
type ScalingPoint struct {
	Nodes   int
	Time    time.Duration
	Speedup float64 // time(1 node) / time(n nodes)
}

// StrongScaling evaluates the virtual strong-scaling curve of measured
// results over the given node counts using the assignment strategy.
func StrongScaling(results []Result, nodeCounts []int, assign func(nTasks, nodes int) Assignment) []ScalingPoint {
	if assign == nil {
		assign = Strided
	}
	base := Makespan(results, assign(len(results), 1))
	out := make([]ScalingPoint, 0, len(nodeCounts))
	for _, n := range nodeCounts {
		t := Makespan(results, assign(len(results), n))
		sp := 0.0
		if t > 0 {
			sp = float64(base) / float64(t)
		}
		out = append(out, ScalingPoint{Nodes: n, Time: t, Speedup: sp})
	}
	return out
}
