package cluster

import (
	"errors"
	"net"
	"runtime"
	"testing"
	"time"

	"repro/internal/cluster/faultnet"
	"repro/internal/fastquery"
	"repro/internal/histogram"
)

// faultyCluster starts three workers over the shared test dataset:
// worker 0 clean, worker 1 behind a fault injector, worker 2 behind a
// latency injector whose Kill method simulates the node dying. It returns
// the addresses, worker 2's listener (for killing) and a cleanup func.
func faultyCluster(t *testing.T, w1cfg faultnet.Config) (addrs []string, victim *faultnet.Listener, cleanup func()) {
	t.Helper()
	dir := rpcDataset(t)
	var servers []*Server
	var fls []*faultnet.Listener
	cleanup = func() {
		for _, s := range servers {
			s.Close()
		}
		for _, fl := range fls {
			fl.Kill()
		}
	}
	for i := 0; i < 3; i++ {
		srv, err := NewServer(NewWorker(dir))
		if err != nil {
			cleanup()
			t.Fatal(err)
		}
		servers = append(servers, srv)
		inner, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			cleanup()
			t.Fatal(err)
		}
		var l net.Listener = inner
		switch i {
		case 1:
			fl := faultnet.Wrap(inner, w1cfg)
			fls = append(fls, fl)
			l = fl
		case 2:
			// Injected latency keeps worker 2's calls in flight long
			// enough that killing it mid-sweep is deterministic.
			fl := faultnet.Wrap(inner, faultnet.Config{Seed: 2, Latency: 10 * time.Millisecond})
			fls = append(fls, fl)
			victim = fl
			l = fl
		}
		srv.Serve(l)
		addrs = append(addrs, inner.Addr().String())
	}
	return addrs, victim, cleanup
}

// wantHists computes the reference histograms locally.
func wantHists(t *testing.T, spec histogram.Spec2D) []*histogram.Hist2D {
	t.Helper()
	src, err := fastquery.Open(rpcDataset(t))
	if err != nil {
		t.Fatal(err)
	}
	want := make([]*histogram.Hist2D, src.Steps())
	for s := 0; s < src.Steps(); s++ {
		st, err := src.OpenStep(s)
		if err != nil {
			t.Fatal(err)
		}
		want[s], err = st.Histogram2D(nil, spec, fastquery.FastBit)
		st.Close()
		if err != nil {
			t.Fatal(err)
		}
	}
	return want
}

func sameHist(a, b *histogram.Hist2D) bool {
	if a == nil || b == nil || len(a.Counts) != len(b.Counts) {
		return false
	}
	for i := range a.Counts {
		if a.Counts[i] != b.Counts[i] {
			return false
		}
	}
	return true
}

// sweepSteps builds a ≥16-entry step list cycling over the dataset's
// timesteps (sweeps accept repeated steps).
func sweepSteps(n, steps int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i % steps
	}
	return out
}

// TestFaultySweepFailover is the acceptance scenario: a 20-step histogram
// sweep completes with full, correct results while worker 2 is killed
// mid-sweep and worker 1 suffers 20% injected call failures.
func TestFaultySweepFailover(t *testing.T) {
	addrs, victim, cleanup := faultyCluster(t, faultnet.Config{Seed: 11, ErrProb: 0.2})
	defer cleanup()

	// The short CallTimeout matters: worker 1's injected write errors make
	// the server drop responses while leaving the conn open, so only the
	// per-call deadline rescues those calls.
	cfg := PoolConfig{
		CallTimeout:   500 * time.Millisecond,
		MaxRetries:    3,
		BackoffBase:   2 * time.Millisecond,
		BackoffMax:    30 * time.Millisecond,
		MaxFailovers:  -1,
		Partial:       FailFast,
		ProbeInterval: 50 * time.Millisecond,
		Seed:          1,
	}
	pool, err := DialConfig(addrs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	steps := sweepSteps(20, 5)
	spec := histogram.NewSpec2D("x", "px", 16, 16)
	kill := time.AfterFunc(10*time.Millisecond, victim.Kill)
	defer kill.Stop()

	hists, err := pool.HistogramSweep(steps, "", spec, fastquery.FastBit)
	if err != nil {
		t.Fatalf("sweep failed despite failover: %v", err)
	}
	want := wantHists(t, spec)
	for i, h := range hists {
		if !sameHist(h, want[steps[i]]) {
			t.Fatalf("step %d (index %d): wrong or missing histogram", steps[i], i)
		}
	}
	ss := pool.LastSweepStats()
	if ss.Failed != 0 || ss.Steps != len(steps) {
		t.Fatalf("sweep stats = %+v", ss)
	}
	if ss.Failovers == 0 {
		t.Fatalf("expected failovers after killing a worker mid-sweep; stats = %+v", ss)
	}
	if !victim.Stats().Killed {
		t.Fatal("victim was never killed")
	}
}

// TestFaultySweepPartial runs the same scenario with failover disabled and
// ReturnPartial: the sweep must return every reachable step plus a
// structured *SweepError for the steps owned by the dead worker.
func TestFaultySweepPartial(t *testing.T) {
	addrs, victim, cleanup := faultyCluster(t, faultnet.Config{Seed: 11, ErrProb: 0.2})
	defer cleanup()

	cfg := PoolConfig{
		CallTimeout:  500 * time.Millisecond,
		MaxRetries:   2,
		BackoffBase:  2 * time.Millisecond,
		BackoffMax:   20 * time.Millisecond,
		MaxFailovers: 0, // no failover: dead worker's steps must fail
		Partial:      ReturnPartial,
		Seed:         1,
	}
	pool, err := DialConfig(addrs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	steps := sweepSteps(20, 5)
	spec := histogram.NewSpec2D("x", "px", 16, 16)
	kill := time.AfterFunc(10*time.Millisecond, victim.Kill)
	defer kill.Stop()

	hists, err := pool.HistogramSweep(steps, "", spec, fastquery.FastBit)
	if err == nil {
		t.Fatal("sweep succeeded with a dead worker and no failover")
	}
	var se *SweepError
	if !errors.As(err, &se) {
		t.Fatalf("error %T is not *SweepError: %v", err, err)
	}
	if se.Total != len(steps) || len(se.Failed) == 0 || len(se.Failed) >= len(steps) {
		t.Fatalf("unexpected failure shape: %d/%d failed", len(se.Failed), se.Total)
	}
	failed := map[int]bool{}
	for _, f := range se.Failed {
		if f.Err == nil {
			t.Fatalf("failed step %d carries nil error", f.Step)
		}
		failed[f.Index] = true
	}
	want := wantHists(t, spec)
	for i, h := range hists {
		if failed[i] {
			if h != nil {
				t.Fatalf("failed step index %d has a result", i)
			}
			continue
		}
		if !sameHist(h, want[steps[i]]) {
			t.Fatalf("surviving step %d (index %d): wrong histogram", steps[i], i)
		}
	}
	if got := pool.LastSweepStats().Failed; got != len(se.Failed) {
		t.Fatalf("stats record %d failed steps, error records %d", got, len(se.Failed))
	}
}

func TestPartialSweepPerStepErrors(t *testing.T) {
	dir := rpcDataset(t)
	addrs, shutdown, err := StartLocalWorkers(2, dir)
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()
	cfg := DefaultPoolConfig()
	cfg.Partial = ReturnPartial
	pool, err := DialConfig(addrs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	// Step 99 is out of range: a fatal per-step failure amid good steps.
	steps := []int{0, 99, 1}
	spec := histogram.NewSpec2D("x", "px", 8, 8)
	hists, err := pool.HistogramSweep(steps, "", spec, fastquery.FastBit)
	var se *SweepError
	if !errors.As(err, &se) {
		t.Fatalf("error %T is not *SweepError: %v", err, err)
	}
	if len(se.Failed) != 1 || se.Failed[0].Step != 99 {
		t.Fatalf("failed steps = %+v", se.Failed)
	}
	if hists[0] == nil || hists[1] != nil || hists[2] == nil {
		t.Fatalf("partial results wrong: %v", hists)
	}
	// Fatal errors must not burn retries or failovers.
	ss := pool.LastSweepStats()
	if ss.Retries != 0 || ss.Failovers != 0 {
		t.Fatalf("fatal step was retried or failed over: %+v", ss)
	}
}

func TestFailFastStepError(t *testing.T) {
	dir := rpcDataset(t)
	addrs, shutdown, err := StartLocalWorkers(1, dir)
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()
	pool, err := Dial(addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	if _, err := pool.HistogramSweep([]int{0, 99}, "", histogram.NewSpec2D("x", "px", 4, 4), fastquery.FastBit); err == nil {
		t.Fatal("fail-fast sweep returned nil error")
	}
	// Bad queries surface through RPC as fatal, without retries.
	if _, err := pool.SelectSweep([]int{0}, "px >", false, fastquery.FastBit); err == nil {
		t.Fatal("bad query accepted")
	}
	if ss := pool.LastSweepStats(); ss.Retries != 0 {
		t.Fatalf("parse error was retried: %+v", ss)
	}
}

func TestSweepAgainstShutDownWorkers(t *testing.T) {
	dir := rpcDataset(t)
	addrs, shutdown, err := StartLocalWorkers(2, dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultPoolConfig()
	cfg.MaxRetries = 1
	cfg.BackoffBase = time.Millisecond
	cfg.BackoffMax = 5 * time.Millisecond
	cfg.CallTimeout = 2 * time.Second
	pool, err := DialConfig(addrs, cfg)
	if err != nil {
		shutdown()
		t.Fatal(err)
	}
	defer pool.Close()
	shutdown()
	// Shutdown is idempotent.
	shutdown()
	if _, err := pool.TrackSweep([]int{0, 1}, []int64{1}, fastquery.FastBit); err == nil {
		t.Fatal("sweep against shut-down workers succeeded")
	}
	if pool.HealthyNodes() != 0 {
		t.Fatalf("healthy nodes = %d after total outage", pool.HealthyNodes())
	}
}

func TestDialNeverStartedWorker(t *testing.T) {
	if _, err := DialConfig([]string{"127.0.0.1:1"}, DefaultPoolConfig()); err == nil {
		t.Fatal("dial to never-started worker succeeded")
	}
	if _, err := DialConfig(nil, DefaultPoolConfig()); err == nil {
		t.Fatal("empty address list accepted")
	}
}

func TestPoolCloseIdempotent(t *testing.T) {
	dir := rpcDataset(t)
	addrs, shutdown, err := StartLocalWorkers(1, dir)
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()
	pool, err := Dial(addrs)
	if err != nil {
		t.Fatal(err)
	}
	pool.Close()
	pool.Close() // must not panic or double-close
}

func TestWorkerCloseAndReuse(t *testing.T) {
	w := NewWorker(rpcDataset(t))
	spec := histogram.NewSpec2D("x", "px", 4, 4)
	var reply HistReply
	if err := w.Histogram2D(&HistArgs{Step: 0, Spec: spec}, &reply); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal("second Close failed:", err)
	}
	// The worker reopens its source on the next request.
	if err := w.Histogram2D(&HistArgs{Step: 0, Spec: spec}, &reply); err != nil {
		t.Fatalf("worker unusable after Close: %v", err)
	}
}

func TestShutdownClosesServedConns(t *testing.T) {
	dir := rpcDataset(t)
	addrs, shutdown, err := StartLocalWorkers(1, dir)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", addrs[0])
	if err != nil {
		shutdown()
		t.Fatal(err)
	}
	defer conn.Close()
	shutdown()
	// The served connection must be closed by shutdown, not leaked: a read
	// finishes promptly instead of blocking forever.
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := conn.Read(make([]byte, 1)); err == nil {
		t.Fatal("read returned data after shutdown")
	} else if nerr, ok := err.(net.Error); ok && nerr.Timeout() {
		t.Fatal("served connection leaked: still open after shutdown")
	}
}

func TestProbeRecoversWorker(t *testing.T) {
	dir := rpcDataset(t)
	addrs, shutdown, err := StartLocalWorkers(2, dir)
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()
	cfg := DefaultPoolConfig()
	cfg.ProbeInterval = 10 * time.Millisecond
	pool, err := DialConfig(addrs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	pool.Callers()[0].SetHealthy(false)
	if pool.HealthyNodes() != 1 {
		t.Fatalf("healthy = %d", pool.HealthyNodes())
	}
	deadline := time.Now().Add(3 * time.Second)
	for pool.HealthyNodes() != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("worker never probed back to health: stats = %+v", pool.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
	st := pool.Stats()
	if st.Probes == 0 || st.Recoveries == 0 {
		t.Fatalf("probe counters not recorded: %+v", st)
	}
}

func TestCallerTimeout(t *testing.T) {
	// A listener that accepts but never replies: calls must time out.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			defer conn.Close()
		}
	}()
	c := NewCaller(l.Addr().String(), CallerConfig{
		Timeout:     30 * time.Millisecond,
		MaxRetries:  1,
		BackoffBase: time.Millisecond,
		BackoffMax:  2 * time.Millisecond,
	})
	defer c.Close()
	var reply PingReply
	cs, err := c.CallWithStats("Worker.Ping", &PingArgs{}, &reply)
	if !errors.Is(err, ErrCallTimeout) {
		t.Fatalf("err = %v, want ErrCallTimeout", err)
	}
	if cs.Attempts != 2 || cs.Timeouts != 2 {
		t.Fatalf("stats = %+v", cs)
	}
}

func TestCallerClosed(t *testing.T) {
	c := NewCaller("127.0.0.1:1", CallerConfig{})
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal("second Close errored:", err)
	}
	if err := c.Call("Worker.Ping", &PingArgs{}, &PingReply{}); !errors.Is(err, ErrCallerClosed) {
		t.Fatalf("err = %v, want ErrCallerClosed", err)
	}
}

func TestRunBoundsGoroutines(t *testing.T) {
	release := make(chan struct{})
	tasks := make([]Task, 64)
	for i := range tasks {
		tasks[i] = Task{Step: i, Run: func() (uint64, int, error) {
			<-release
			return 0, 0, nil
		}}
	}
	before := runtime.NumGoroutine()
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, err := Run(tasks, 4, IOModel{}); err != nil {
			t.Error(err)
		}
	}()
	time.Sleep(50 * time.Millisecond)
	during := runtime.NumGoroutine()
	close(release)
	<-done
	// A fixed worker pool spawns ~workers+1 goroutines, not one per task.
	if during-before > 16 {
		t.Fatalf("Run spawned %d goroutines for 64 tasks with 4 workers", during-before)
	}
}
