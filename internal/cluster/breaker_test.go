package cluster

import (
	"context"
	"errors"
	"testing"
	"time"
)

func testBreakerConfig() BreakerConfig {
	return BreakerConfig{
		Enabled:             true,
		ConsecutiveFailures: 3,
		FailureRate:         0.5,
		Window:              8,
		MinSamples:          4,
		Cooldown:            20 * time.Millisecond,
		HalfOpenProbes:      1,
	}
}

func TestBreakerConsecutiveTrip(t *testing.T) {
	b := newBreaker("w0", testBreakerConfig())
	for i := 0; i < 2; i++ {
		if !b.Allow() {
			t.Fatalf("closed breaker refused request %d", i)
		}
		b.Failure()
	}
	if b.State() != BreakerClosed {
		t.Fatalf("state after 2 failures = %v, want closed", b.State())
	}
	b.Allow()
	b.Failure()
	if b.State() != BreakerOpen {
		t.Fatalf("state after 3 consecutive failures = %v, want open", b.State())
	}
	if b.Allow() {
		t.Fatal("open breaker admitted a request before cooldown")
	}
}

func TestBreakerSuccessResetsConsecutive(t *testing.T) {
	b := newBreaker("w0", testBreakerConfig())
	// Alternate failures and successes: consecutive count never reaches 3
	// and the windowed rate stays at 50% with MinSamples satisfied — the
	// rate trip fires instead, proving both paths are live.
	b.Failure()
	b.Success()
	b.Failure()
	b.Success()
	if b.State() != BreakerClosed {
		t.Fatalf("state = %v, want closed before MinSamples", b.State())
	}
	b.Failure() // 5 samples, 3 fails: rate 0.6 >= 0.5 → trip
	if b.State() != BreakerOpen {
		t.Fatalf("state = %v, want open on failure-rate trip", b.State())
	}
}

func TestBreakerHalfOpenRecovery(t *testing.T) {
	b := newBreaker("w0", testBreakerConfig())
	for i := 0; i < 3; i++ {
		b.Failure()
	}
	if b.State() != BreakerOpen {
		t.Fatal("breaker did not trip")
	}
	time.Sleep(25 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("breaker refused the half-open probe after cooldown")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state = %v, want half-open", b.State())
	}
	// Only one probe admitted at a time.
	if b.Allow() {
		t.Fatal("breaker admitted a second concurrent half-open probe")
	}
	b.Success()
	if b.State() != BreakerClosed {
		t.Fatalf("state after probe success = %v, want closed", b.State())
	}
}

func TestBreakerHalfOpenFailureReopens(t *testing.T) {
	b := newBreaker("w0", testBreakerConfig())
	for i := 0; i < 3; i++ {
		b.Failure()
	}
	time.Sleep(25 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("no half-open probe admitted")
	}
	b.Failure()
	if b.State() != BreakerOpen {
		t.Fatalf("state after probe failure = %v, want open", b.State())
	}
	// A fresh cooldown applies.
	if b.Allow() {
		t.Fatal("re-opened breaker admitted a request immediately")
	}
	time.Sleep(25 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("re-opened breaker never recovered")
	}
}

func TestBreakerDropReleasesProbeSlot(t *testing.T) {
	b := newBreaker("w0", testBreakerConfig())
	for i := 0; i < 3; i++ {
		b.Failure()
	}
	time.Sleep(25 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("no half-open probe admitted")
	}
	b.Drop() // canceled probe: no judgment, slot freed
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state after Drop = %v, want half-open", b.State())
	}
	if !b.Allow() {
		t.Fatal("Drop did not release the half-open probe slot")
	}
}

func TestBreakerNilSafe(t *testing.T) {
	var b *Breaker
	if !b.Allow() {
		t.Fatal("nil breaker must admit everything")
	}
	b.Success()
	b.Failure()
	b.Drop()
	b.Reset()
	if b.State() != BreakerClosed {
		t.Fatal("nil breaker must read closed")
	}
}

func TestRetryBudget(t *testing.T) {
	b := NewRetryBudget(0.5, 2)
	// Starts full.
	if !b.Spend() || !b.Spend() {
		t.Fatal("fresh budget refused its burst")
	}
	if b.Spend() {
		t.Fatal("empty budget granted a token")
	}
	// Two successes refill one token.
	b.Success()
	if b.Spend() {
		t.Fatal("half a token spent as one")
	}
	b.Success()
	if !b.Spend() {
		t.Fatal("refilled budget refused a token")
	}
	// Refill is capped at burst.
	for i := 0; i < 100; i++ {
		b.Success()
	}
	if got := b.Tokens(); got != 2 {
		t.Fatalf("tokens after overfill = %v, want burst cap 2", got)
	}
	var nilB *RetryBudget
	if !nilB.Spend() {
		t.Fatal("nil budget must be unlimited")
	}
	nilB.Success()
}

// TestPoolBreakerSkipsDeadReplica proves the point of the breaker: once
// tripped, calls against the dead primary fail over without re-dialling
// it, and a background probe closes the breaker when the replica heals.
func TestPoolBreakerSkipsDeadReplica(t *testing.T) {
	addrs, kill := startKillableWorkers(t, 2)
	cfg := callOnConfig()
	cfg.MaxRetries = 0
	cfg.Breaker = testBreakerConfig()
	cfg.Breaker.Cooldown = 5 * time.Second // stay open for the test body
	p, err := DialConfig(addrs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	kill[0]()
	// Trip the primary's breaker with consecutive failures. Calls still
	// succeed by failing over to the live replica.
	for i := 0; i < 3; i++ {
		// Health-based candidate ordering would skip the dead primary after
		// the first failure; force it healthy so the breaker sees each one.
		p.Callers()[0].SetHealthy(true)
		var reply PingReply
		if err := p.CallOn(context.Background(), 0, "Worker.Ping", &PingArgs{}, &reply, 0); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	if st := p.Callers()[0].BreakerState(); st != BreakerOpen {
		t.Fatalf("primary breaker = %v, want open", st)
	}

	// With the breaker open the dead replica is skipped without an RPC
	// attempt: the call count against it must not move.
	p.Callers()[0].SetHealthy(true)
	before := p.Stats()
	var reply PingReply
	if err := p.CallOn(context.Background(), 0, "Worker.Ping", &PingArgs{}, &reply, 0); err != nil {
		t.Fatal(err)
	}
	after := p.Stats()
	if got := after.Calls - before.Calls; got != 1 {
		t.Fatalf("attempts with open breaker = %d, want 1 (replica only)", got)
	}
}

// TestPoolAllBreakersOpenFailsFast proves the fail-fast path: when every
// candidate's breaker is open the call returns ErrBreakerOpen without
// touching the network.
func TestPoolAllBreakersOpenFailsFast(t *testing.T) {
	addrs, _ := startKillableWorkers(t, 2)
	cfg := callOnConfig()
	cfg.Breaker = testBreakerConfig()
	cfg.Breaker.Cooldown = 5 * time.Second
	p, err := DialConfig(addrs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	for _, c := range p.Callers() {
		for i := 0; i < 3; i++ {
			c.Breaker().Failure()
		}
	}
	start := time.Now()
	var reply PingReply
	err = p.CallOn(context.Background(), 0, "Worker.Ping", &PingArgs{}, &reply, 0)
	if !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("err = %v, want ErrBreakerOpen", err)
	}
	if el := time.Since(start); el > 100*time.Millisecond {
		t.Fatalf("fail-fast took %v", el)
	}
}

// TestPoolRetryBudgetStopsFailover proves an empty retry budget blocks
// extra attempts: with the budget drained, a call whose primary is dead
// fails instead of failing over.
func TestPoolRetryBudgetStopsFailover(t *testing.T) {
	addrs, kill := startKillableWorkers(t, 2)
	cfg := callOnConfig()
	cfg.MaxRetries = 0
	cfg.RetryBudget = NewRetryBudget(0, 1) // one token, never refilled
	p, err := DialConfig(addrs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	kill[0]()
	var reply PingReply
	// First call spends the lone token on its failover and succeeds.
	if err := p.CallOn(context.Background(), 0, "Worker.Ping", &PingArgs{}, &reply, 0); err != nil {
		t.Fatalf("first call: %v", err)
	}
	// Budget empty: the second call may not fail over.
	p.Callers()[0].SetHealthy(true)
	before := p.Stats()
	if err := p.CallOn(context.Background(), 0, "Worker.Ping", &PingArgs{}, &reply, 0); err == nil {
		t.Fatal("call succeeded despite empty retry budget")
	}
	after := p.Stats()
	if got := after.Failovers - before.Failovers; got != 0 {
		t.Fatalf("failovers with empty budget = %d, want 0", got)
	}
}
