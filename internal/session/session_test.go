package session

import (
	"errors"
	"testing"
	"time"

	"repro/internal/bitmap"
)

// fakeClock is an injectable test clock.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newClock() *fakeClock                   { return &fakeClock{t: time.Unix(1700000000, 0)} }

func bits(n uint64, pos ...uint64) *bitmap.Vector {
	v, err := bitmap.FromPositions(n, pos)
	if err != nil {
		panic(err)
	}
	return v
}

func sel(name string, n uint64, pos ...uint64) Selection {
	b := bits(n, pos...)
	return Selection{Name: name, Dataset: "d", Step: 0, Expr: "x > 1",
		Bits: b, Count: b.Count(), Rows: n}
}

func TestPutGetRoundTrip(t *testing.T) {
	c := newClock()
	m := NewManager(Config{Now: c.now})
	want := sel("brush", 100, 3, 7, 9)
	if err := m.Put("s1", want); err != nil {
		t.Fatalf("Put: %v", err)
	}
	got, ok := m.Selection("s1", "brush")
	if !ok {
		t.Fatal("selection missing after Put")
	}
	if got.Expr != want.Expr || got.Count != 3 || got.Rows != 100 {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	if !got.Bits.Equal(want.Bits) {
		t.Fatal("bitmap changed through store")
	}
	st := m.Stats()
	if st.Active != 1 || st.Selections != 1 || st.Bytes <= 0 {
		t.Fatalf("stats after one Put: %+v", st)
	}
	if st.Bytes != want.SizeBytes() {
		t.Fatalf("accounted bytes %d != selection SizeBytes %d", st.Bytes, want.SizeBytes())
	}
}

func TestTTLEviction(t *testing.T) {
	c := newClock()
	m := NewManager(Config{TTL: time.Minute, Now: c.now})
	if err := m.Put("old", sel("a", 10, 1)); err != nil {
		t.Fatal(err)
	}
	c.advance(30 * time.Second)
	if err := m.Put("young", sel("a", 10, 2)); err != nil {
		t.Fatal(err)
	}
	c.advance(45 * time.Second) // old idle 75s > TTL; young idle 45s
	st := m.Stats()
	if st.Active != 1 || st.TTLEvictions != 1 {
		t.Fatalf("expected exactly the idle session evicted, got %+v", st)
	}
	if _, ok := m.Get("old"); ok {
		t.Fatal("idle session survived its TTL")
	}
	if _, ok := m.Get("young"); !ok {
		t.Fatal("fresh session was evicted")
	}
}

func TestCountEvictionLRU(t *testing.T) {
	c := newClock()
	m := NewManager(Config{MaxSessions: 2, Now: c.now})
	for _, id := range []string{"a", "b", "c"} {
		c.advance(time.Second)
		if err := m.Put(id, sel("s", 10, 1)); err != nil {
			t.Fatal(err)
		}
	}
	st := m.Stats()
	if st.Active != 2 || st.CountEvictions != 1 {
		t.Fatalf("count bound not enforced: %+v", st)
	}
	if _, ok := m.Get("a"); ok {
		t.Fatal("least recently used session survived count eviction")
	}
	for _, id := range []string{"b", "c"} {
		if _, ok := m.Get(id); !ok {
			t.Fatalf("recently used session %q evicted", id)
		}
	}
}

func TestBytesEvictionLRU(t *testing.T) {
	c := newClock()
	one := sel("s", 1000, 1, 500, 999)
	per := one.SizeBytes()
	m := NewManager(Config{MaxBytes: 2*per + per/2, Now: c.now})
	for _, id := range []string{"a", "b", "c"} {
		c.advance(time.Second)
		if err := m.Put(id, one); err != nil {
			t.Fatal(err)
		}
	}
	st := m.Stats()
	if st.Active != 2 || st.BytesEvictions != 1 {
		t.Fatalf("byte bound not enforced: %+v", st)
	}
	if st.Bytes > 2*per+per/2 {
		t.Fatalf("stored bytes %d exceed bound", st.Bytes)
	}
	if _, ok := m.Get("a"); ok {
		t.Fatal("LRU session survived byte eviction")
	}
}

func TestPutTooLargeRejected(t *testing.T) {
	m := NewManager(Config{MaxBytes: 16, Now: newClock().now})
	err := m.Put("s", sel("big", 1000, 1, 2, 3, 900))
	if !errors.Is(err, ErrTooLarge) {
		t.Fatalf("expected ErrTooLarge, got %v", err)
	}
	if st := m.Stats(); st.Active != 0 || st.Bytes != 0 {
		t.Fatalf("rejected selection leaked into the store: %+v", st)
	}
}

func TestPutReplaceAccountsBytes(t *testing.T) {
	c := newClock()
	m := NewManager(Config{Now: c.now})
	if err := m.Put("s", sel("a", 100, 1, 2, 3)); err != nil {
		t.Fatal(err)
	}
	small := sel("a", 100, 1)
	if err := m.Put("s", small); err != nil {
		t.Fatal(err)
	}
	if st := m.Stats(); st.Bytes != small.SizeBytes() || st.Selections != 1 {
		t.Fatalf("replace did not re-account bytes: %+v", st)
	}
}

func TestDelete(t *testing.T) {
	m := NewManager(Config{Now: newClock().now})
	if err := m.Put("s", sel("a", 10, 1)); err != nil {
		t.Fatal(err)
	}
	if !m.Delete("s") {
		t.Fatal("Delete reported missing for a live session")
	}
	if m.Delete("s") {
		t.Fatal("Delete reported success twice")
	}
	if st := m.Stats(); st.Active != 0 || st.Bytes != 0 {
		t.Fatalf("delete left residue: %+v", st)
	}
}

func TestCombineAlgebra(t *testing.T) {
	const n = 64
	prev := bits(n, 1, 2, 3, 10, 20)
	delta := bits(n, 2, 3, 4, 30)
	cases := []struct {
		mode string
		want []uint64
	}{
		{"and", []uint64{2, 3}},
		{"or", []uint64{1, 2, 3, 4, 10, 20, 30}},
		{"andnot", []uint64{1, 10, 20}},
	}
	for _, tc := range cases {
		got, err := Combine(prev, delta, tc.mode)
		if err != nil {
			t.Fatalf("%s: %v", tc.mode, err)
		}
		if !got.Equal(bits(n, tc.want...)) {
			t.Fatalf("%s: got %v want %v", tc.mode, got.Positions(), tc.want)
		}
	}
	if _, err := Combine(prev, delta, "xor"); err == nil {
		t.Fatal("unknown refine mode accepted")
	}
}

func TestCountersAndList(t *testing.T) {
	c := newClock()
	m := NewManager(Config{Now: c.now})
	m.NoteReuse()
	m.NoteReuse()
	m.NoteScratch()
	m.NotePartialReject()
	if err := m.Put("s", sel("a", 10, 1)); err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	if st.RefineReuse != 2 || st.RefineScratch != 1 || st.PartialRejects != 1 || st.Creates != 1 {
		t.Fatalf("counters: %+v", st)
	}
	ls := m.List()
	if len(ls) != 1 || ls[0].ID != "s" || len(ls[0].Selections) != 1 {
		t.Fatalf("List: %+v", ls)
	}
	if ls[0].Selections[0].SizeBytes <= 0 {
		t.Fatal("listing lost selection size")
	}
}

func TestCreateAssignsUniqueIDs(t *testing.T) {
	m := NewManager(Config{Now: newClock().now})
	a, b := m.Create(), m.Create()
	if a.ID == "" || a.ID == b.ID {
		t.Fatalf("Create IDs not unique: %q %q", a.ID, b.ID)
	}
	if st := m.Stats(); st.Active != 2 || st.Creates != 2 {
		t.Fatalf("stats after Create: %+v", st)
	}
}
